// The benchmark suite of Table 1 (plus the minmaxdist traversal extension)
// behind a uniform interface — 12 benchmarks.
//
// Each benchmark exposes: the plain sequential recursion (Ts), the
// Cilk-style spawn version (T1/T16), and the blocked scheduler variants
// (policy × execution layer × sequential-or-pool).  Every run returns a
// digest string so the harnesses can verify that all variants computed the
// same answer (k-NN's digest is the final neighbor lists, which are
// schedule-independent even though its traversal counts are not).
//
// Scales: "test" (seconds for the whole suite), "default" (the shipped
// bench scale), "paper" (the paper's problem sizes — hours of sequential
// work; use --benchmarks= to select).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "apps/barneshut.hpp"
#include "apps/binomial.hpp"
#include "apps/fib.hpp"
#include "apps/graphcol.hpp"
#include "apps/knapsack.hpp"
#include "apps/knn.hpp"
#include "apps/minmax.hpp"
#include "apps/minmaxdist.hpp"
#include "apps/nqueens.hpp"
#include "apps/parentheses.hpp"
#include "apps/pointcorr.hpp"
#include "apps/uts.hpp"
#include "core/driver.hpp"
#include "core/ideal_restart.hpp"
#include "runtime/hybrid.hpp"
#include "simd/dispatch.hpp"

namespace tbench {

enum class Layer { Aos, Soa, Simd };

inline const char* to_string(Layer l) {
  switch (l) {
    case Layer::Aos: return "block";
    case Layer::Soa: return "soa";
    case Layer::Simd: return "simd";
  }
  return "?";
}

// Canonical "isa=<name>" variant fragment for forced-ISA bench rungs, so
// table2's hybrid rungs and serve_latency's per-ISA serving rungs agree on
// identity-key spelling (the nightly join matches on it verbatim).
inline std::string isa_variant(const tb::simd::KernelTable& t) {
  return std::string("isa=") + t.name;
}

struct BlockedConfig {
  tb::core::SeqPolicy policy = tb::core::SeqPolicy::Restart;
  Layer layer = Layer::Simd;
  tb::rt::ForkJoinPool* pool = nullptr;  // null: single-core sequential scheduler
  tb::core::Thresholds th{};
  bool elide = true;
  // > 0 selects the ideal restart scheduler (Fig 3b / §3.4; per-worker block
  // deques) with this many workers, overriding policy/pool.
  int ideal_workers = 0;
};

inline std::string digest_of(std::uint64_t v) { return std::to_string(v); }
inline std::string digest_of(const tb::apps::KnapsackResult& r) {
  return std::to_string(r.leaves) + ":" + std::to_string(r.best);
}
inline std::string digest_of(const tb::apps::MinmaxResult& r) {
  return std::to_string(r.leaves) + ":" + std::to_string(r.x_wins) + ":" +
         std::to_string(r.o_wins);
}

template <class Prog>
std::string run_blocked_generic(const Prog& prog,
                                std::span<const typename Prog::Task> roots,
                                const BlockedConfig& c, tb::core::ExecStats* st) {
  namespace core = tb::core;
  auto run_with = [&]<class Exec>(std::type_identity<Exec>) {
    if (c.ideal_workers > 0) {
      return core::run_ideal_restart<Exec>(prog, roots, c.th, c.ideal_workers, st);
    }
    if (c.pool != nullptr) {
      if (c.policy == core::SeqPolicy::Reexp) {
        return core::run_par_reexp<Exec>(*c.pool, prog, roots, c.th, st);
      }
      return core::run_par_restart<Exec>(*c.pool, prog, roots, c.th, st, 0, c.elide);
    }
    return core::run_seq<Exec>(prog, roots, c.policy, c.th, st);
  };
  switch (c.layer) {
    case Layer::Aos: return digest_of(run_with(std::type_identity<core::AosExec<Prog>>{}));
    case Layer::Soa: return digest_of(run_with(std::type_identity<core::SoaExec<Prog>>{}));
    case Layer::Simd: return digest_of(run_with(std::type_identity<core::SimdExec<Prog>>{}));
  }
  return {};
}

class IBench {
public:
  virtual ~IBench() = default;
  virtual std::string name() const = 0;
  virtual std::string problem() const = 0;
  virtual int q() const = 0;  // natural SIMD width for this kernel's lanes
  virtual tb::core::TreeInfo census() = 0;
  virtual std::string run_sequential() = 0;
  virtual std::string run_cilk(tb::rt::ForkJoinPool& pool) = 0;
  virtual std::string run_blocked(const BlockedConfig& cfg,
                                  tb::core::ExecStats* st = nullptr) = 0;
  // Default scheduler block size / restart-block size for this benchmark.
  virtual std::size_t default_block() const { return 1u << 10; }
  virtual std::size_t default_restart() const { return default_block() / 8; }

  // Hybrid vector×multicore executor: lockstep SIMD blocks on the
  // work-stealing pool for the traversal benchmarks (runtime/hybrid.hpp),
  // strip-mined root blocks for the task-block benchmarks
  // (core/hybrid_taskblock.hpp).  The traversal benchmarks route through the
  // runtime-ISA dispatch tables (simd/dispatch.hpp): `lanes` = 0 runs the
  // active table (highest ISA the host + TB_SIMD_ISA allow), 4/8/16 force the
  // sse2/avx2/avx512 table of the cores×lanes sweep.  Returns "" when the
  // forced table is not compiled in or not runnable on this host — callers
  // skip that rung.  Task-block benchmarks have a fixed lane width (their
  // vectorized expand kernel) and report hybrid_fixed_width() = true; they
  // ignore `lanes` and t_reexp.
  virtual bool has_hybrid() const { return false; }
  virtual bool hybrid_fixed_width() const { return false; }
  virtual std::string run_hybrid(tb::rt::ForkJoinPool&, const tb::rt::HybridOptions&,
                                 tb::core::PerWorkerStats* = nullptr, int lanes = 0) {
    (void)lanes;
    return {};
  }
  // Default re-expansion threshold for the hybrid engine.
  std::size_t default_hybrid_reexp() const { return 4 * static_cast<std::size_t>(q()); }

  tb::core::Thresholds thresholds(std::size_t block = 0, std::size_t restart = 0) const {
    return tb::core::Thresholds::for_block_size(
        q(), block == 0 ? default_block() : block,
        restart == 0 ? default_restart() : restart);
  }
};

// ---- concrete benchmarks --------------------------------------------------------

class FibBench final : public IBench {
public:
  explicit FibBench(int n) : n_(n), roots_{tb::apps::FibProgram::root(n)} {}
  std::string name() const override { return "fib"; }
  std::string problem() const override { return std::to_string(n_); }
  int q() const override { return tb::apps::FibProgram::simd_width; }
  tb::core::TreeInfo census() override { return tb::core::count_tree(prog_, roots_); }
  std::string run_sequential() override { return digest_of(tb::apps::fib_sequential(n_)); }
  std::string run_cilk(tb::rt::ForkJoinPool& pool) override {
    return digest_of(tb::apps::fib_cilk(pool, n_));
  }
  std::string run_blocked(const BlockedConfig& cfg, tb::core::ExecStats* st) override {
    return run_blocked_generic(prog_, roots_, cfg, st);
  }

private:
  int n_;
  tb::apps::FibProgram prog_{};
  std::vector<tb::apps::FibProgram::Task> roots_;
};

class KnapsackBench final : public IBench {
public:
  explicit KnapsackBench(int items)
      : inst_(tb::apps::KnapsackInstance::random(items)), prog_{&inst_},
        roots_{prog_.root()} {}
  std::string name() const override { return "knapsack"; }
  std::string problem() const override { return std::to_string(inst_.num_items()) + " items"; }
  int q() const override { return tb::apps::KnapsackProgram::simd_width; }
  tb::core::TreeInfo census() override { return tb::core::count_tree(prog_, roots_); }
  std::string run_sequential() override {
    return digest_of(tb::apps::knapsack_sequential(inst_, 0, inst_.capacity, 0));
  }
  std::string run_cilk(tb::rt::ForkJoinPool& pool) override {
    return digest_of(tb::apps::knapsack_cilk(pool, inst_));
  }
  std::string run_blocked(const BlockedConfig& cfg, tb::core::ExecStats* st) override {
    return run_blocked_generic(prog_, roots_, cfg, st);
  }
  std::size_t default_block() const override { return 1u << 12; }

private:
  tb::apps::KnapsackInstance inst_;
  tb::apps::KnapsackProgram prog_;
  std::vector<tb::apps::KnapsackProgram::Task> roots_;
};

class ParenthesesBench final : public IBench {
public:
  explicit ParenthesesBench(int pairs)
      : pairs_(pairs), roots_{tb::apps::ParenthesesProgram::root(pairs)} {}
  std::string name() const override { return "parentheses"; }
  std::string problem() const override { return std::to_string(pairs_); }
  int q() const override { return tb::apps::ParenthesesProgram::simd_width; }
  tb::core::TreeInfo census() override { return tb::core::count_tree(prog_, roots_); }
  std::string run_sequential() override {
    return digest_of(tb::apps::parentheses_sequential(pairs_, pairs_));
  }
  std::string run_cilk(tb::rt::ForkJoinPool& pool) override {
    return digest_of(tb::apps::parentheses_cilk(pool, pairs_));
  }
  std::string run_blocked(const BlockedConfig& cfg, tb::core::ExecStats* st) override {
    return run_blocked_generic(prog_, roots_, cfg, st);
  }
  std::size_t default_block() const override { return 1u << 12; }

private:
  int pairs_;
  tb::apps::ParenthesesProgram prog_{};
  std::vector<tb::apps::ParenthesesProgram::Task> roots_;
};

class NQueensBench final : public IBench {
public:
  explicit NQueensBench(int n) : prog_{n}, roots_{tb::apps::NQueensProgram::root()} {}
  std::string name() const override { return "nqueens"; }
  std::string problem() const override { return std::to_string(prog_.n); }
  int q() const override { return tb::apps::NQueensProgram::simd_width; }
  tb::core::TreeInfo census() override { return tb::core::count_tree(prog_, roots_); }
  std::string run_sequential() override {
    return digest_of(tb::apps::nqueens_sequential(prog_.n, 0, 0, 0));
  }
  std::string run_cilk(tb::rt::ForkJoinPool& pool) override {
    return digest_of(tb::apps::nqueens_cilk(pool, prog_.n));
  }
  std::string run_blocked(const BlockedConfig& cfg, tb::core::ExecStats* st) override {
    return run_blocked_generic(prog_, roots_, cfg, st);
  }
  bool has_hybrid() const override { return true; }
  bool hybrid_fixed_width() const override { return true; }
  std::string run_hybrid(tb::rt::ForkJoinPool& pool, const tb::rt::HybridOptions& opt,
                         tb::core::PerWorkerStats* pw, int) override {
    return digest_of(tb::apps::nqueens_hybrid(pool, prog_, thresholds(), opt, pw));
  }

private:
  tb::apps::NQueensProgram prog_;
  std::vector<tb::apps::NQueensProgram::Task> roots_;
};

class GraphColBench final : public IBench {
public:
  GraphColBench(int vertices, double avg_degree)
      : inst_(tb::apps::GraphColInstance::random(vertices, avg_degree)), prog_{&inst_},
        roots_{tb::apps::GraphColProgram::root()} {}
  std::string name() const override { return "graphcol"; }
  std::string problem() const override {
    return "3(" + std::to_string(inst_.num_vertices) + ")";
  }
  int q() const override { return tb::apps::GraphColProgram::simd_width; }
  tb::core::TreeInfo census() override { return tb::core::count_tree(prog_, roots_); }
  std::string run_sequential() override {
    return digest_of(tb::apps::graphcol_sequential(inst_, tb::apps::GraphColProgram::root()));
  }
  std::string run_cilk(tb::rt::ForkJoinPool& pool) override {
    return digest_of(tb::apps::graphcol_cilk(pool, inst_));
  }
  std::string run_blocked(const BlockedConfig& cfg, tb::core::ExecStats* st) override {
    return run_blocked_generic(prog_, roots_, cfg, st);
  }

private:
  tb::apps::GraphColInstance inst_;
  tb::apps::GraphColProgram prog_;
  std::vector<tb::apps::GraphColProgram::Task> roots_;
};

class UtsBench final : public IBench {
public:
  explicit UtsBench(tb::apps::UtsParams params) : prog_(params), roots_(prog_.roots()) {}
  std::string name() const override { return "uts"; }
  std::string problem() const override {
    return "b0=" + std::to_string(prog_.params.b0) + ",m=" + std::to_string(prog_.params.m);
  }
  int q() const override { return tb::apps::UtsProgram::simd_width; }
  tb::core::TreeInfo census() override { return tb::core::count_tree(prog_, roots_); }
  std::string run_sequential() override { return digest_of(tb::apps::uts_sequential_all(prog_)); }
  std::string run_cilk(tb::rt::ForkJoinPool& pool) override {
    return digest_of(tb::apps::uts_cilk(pool, prog_));
  }
  std::string run_blocked(const BlockedConfig& cfg, tb::core::ExecStats* st) override {
    return run_blocked_generic(prog_, roots_, cfg, st);
  }
  std::size_t default_block() const override { return 1u << 11; }
  bool has_hybrid() const override { return true; }
  bool hybrid_fixed_width() const override { return true; }
  std::string run_hybrid(tb::rt::ForkJoinPool& pool, const tb::rt::HybridOptions& opt,
                         tb::core::PerWorkerStats* pw, int) override {
    return digest_of(tb::apps::uts_hybrid(pool, prog_, thresholds(), opt, pw));
  }

private:
  tb::apps::UtsProgram prog_;
  std::vector<tb::apps::UtsProgram::Task> roots_;
};

class BinomialBench final : public IBench {
public:
  BinomialBench(int n, int k) : n_(n), k_(k), roots_{tb::apps::BinomialProgram::root(n, k)} {}
  std::string name() const override { return "binomial"; }
  std::string problem() const override {
    return "C(" + std::to_string(n_) + "," + std::to_string(k_) + ")";
  }
  int q() const override { return tb::apps::BinomialProgram::simd_width; }
  tb::core::TreeInfo census() override { return tb::core::count_tree(prog_, roots_); }
  std::string run_sequential() override {
    return digest_of(tb::apps::binomial_sequential(n_, k_));
  }
  std::string run_cilk(tb::rt::ForkJoinPool& pool) override {
    return digest_of(tb::apps::binomial_cilk(pool, n_, k_));
  }
  std::string run_blocked(const BlockedConfig& cfg, tb::core::ExecStats* st) override {
    return run_blocked_generic(prog_, roots_, cfg, st);
  }
  std::size_t default_block() const override { return 1u << 12; }

private:
  int n_, k_;
  tb::apps::BinomialProgram prog_{};
  std::vector<tb::apps::BinomialProgram::Task> roots_;
};

class MinmaxBench final : public IBench {
public:
  explicit MinmaxBench(int ply) : prog_{ply}, roots_{tb::apps::MinmaxProgram::root()} {}
  std::string name() const override { return "minmax"; }
  std::string problem() const override {
    return "4x4 ply " + std::to_string(prog_.ply_limit);
  }
  int q() const override { return tb::apps::MinmaxProgram::simd_width; }
  tb::core::TreeInfo census() override { return tb::core::count_tree(prog_, roots_); }
  std::string run_sequential() override {
    return digest_of(tb::apps::minmax_sequential(prog_, tb::apps::MinmaxProgram::root()));
  }
  std::string run_cilk(tb::rt::ForkJoinPool& pool) override {
    return digest_of(tb::apps::minmax_cilk(pool, prog_));
  }
  std::string run_blocked(const BlockedConfig& cfg, tb::core::ExecStats* st) override {
    return run_blocked_generic(prog_, roots_, cfg, st);
  }

private:
  tb::apps::MinmaxProgram prog_;
  std::vector<tb::apps::MinmaxProgram::Task> roots_;
};

class BarnesHutBench final : public IBench {
public:
  BarnesHutBench(std::size_t bodies, float theta)
      : bodies_(tb::spatial::Bodies::plummer(bodies)),
        tree_(tb::spatial::Octree::build(bodies_, 8)), ax_(bodies, 0), ay_(bodies, 0),
        az_(bodies, 0),
        prog_{&bodies_, &tree_, ax_.data(), ay_.data(), az_.data()},
        theta_(theta), roots_(prog_.roots(theta)) {}
  std::string name() const override { return "barneshut"; }
  std::string problem() const override {
    return std::to_string(bodies_.size()) + " bodies";
  }
  int q() const override { return tb::apps::BarnesHutProgram::simd_width; }
  tb::core::TreeInfo census() override { return tb::core::count_tree(prog_, roots_); }
  std::string run_sequential() override {
    reset();
    return digest_of(tb::apps::barneshut_sequential(prog_, theta_));
  }
  std::string run_cilk(tb::rt::ForkJoinPool& pool) override {
    reset();
    return digest_of(tb::apps::barneshut_cilk(pool, prog_, theta_));
  }
  std::string run_blocked(const BlockedConfig& cfg, tb::core::ExecStats* st) override {
    reset();
    return run_blocked_generic(prog_, roots_, cfg, st);
  }
  std::size_t default_block() const override { return 1u << 9; }
  bool has_hybrid() const override { return true; }
  std::string run_hybrid(tb::rt::ForkJoinPool& pool, const tb::rt::HybridOptions& opt,
                         tb::core::PerWorkerStats* pw, int lanes) override {
    const auto* kt =
        lanes == 0 ? &tb::simd::kernels() : tb::simd::kernels_for_width(lanes);
    if (kt == nullptr) return {};
    reset();
    return digest_of(kt->hybrid_barneshut(pool, prog_, theta_, opt, pw));
  }

private:
  void reset() {
    std::fill(ax_.begin(), ax_.end(), 0.0f);
    std::fill(ay_.begin(), ay_.end(), 0.0f);
    std::fill(az_.begin(), az_.end(), 0.0f);
  }

  tb::spatial::Bodies bodies_;
  tb::spatial::Octree tree_;
  std::vector<float> ax_, ay_, az_;
  tb::apps::BarnesHutProgram prog_;
  float theta_;
  std::vector<tb::apps::BarnesHutProgram::Task> roots_;
};

class PointCorrBench final : public IBench {
public:
  PointCorrBench(std::size_t points, float rad2)
      : points_(tb::spatial::Bodies::uniform_cube(points)),
        tree_(tb::spatial::KdTree::build(points_, 16)), prog_{&points_, &tree_, rad2},
        roots_(prog_.roots()) {}
  std::string name() const override { return "pointcorr"; }
  std::string problem() const override {
    return std::to_string(points_.size()) + " pts";
  }
  int q() const override { return tb::apps::PointCorrProgram::simd_width; }
  tb::core::TreeInfo census() override { return tb::core::count_tree(prog_, roots_); }
  std::string run_sequential() override {
    return digest_of(tb::apps::pointcorr_sequential(prog_));
  }
  std::string run_cilk(tb::rt::ForkJoinPool& pool) override {
    return digest_of(tb::apps::pointcorr_cilk(pool, prog_));
  }
  std::string run_blocked(const BlockedConfig& cfg, tb::core::ExecStats* st) override {
    return run_blocked_generic(prog_, roots_, cfg, st);
  }
  std::size_t default_block() const override { return 1u << 10; }
  bool has_hybrid() const override { return true; }
  std::string run_hybrid(tb::rt::ForkJoinPool& pool, const tb::rt::HybridOptions& opt,
                         tb::core::PerWorkerStats* pw, int lanes) override {
    const auto* kt =
        lanes == 0 ? &tb::simd::kernels() : tb::simd::kernels_for_width(lanes);
    if (kt == nullptr) return {};
    return digest_of(kt->hybrid_pointcorr(pool, prog_, opt, pw));
  }

private:
  tb::spatial::Bodies points_;
  tb::spatial::KdTree tree_;
  tb::apps::PointCorrProgram prog_;
  std::vector<tb::apps::PointCorrProgram::Task> roots_;
};

class KnnBench final : public IBench {
public:
  KnnBench(std::size_t points, int k)
      : points_(tb::spatial::Bodies::uniform_cube(points)),
        tree_(tb::spatial::KdTree::build(points_, 16)), k_(k) {}
  std::string name() const override { return "knn"; }
  std::string problem() const override {
    return std::to_string(points_.size()) + " pts k=" + std::to_string(k_);
  }
  int q() const override { return tb::apps::KnnProgram::simd_width; }
  tb::core::TreeInfo census() override {
    // Counts the actual pruned traversal of a fresh sequential run.
    tb::apps::KnnState state(points_.size(), k_);
    tb::apps::KnnProgram prog{&points_, &tree_, &state};
    tb::core::TreeInfo info;
    for (const auto& r : prog.roots()) census_walk(prog, r, 0, info);
    return info;
  }
  std::string run_sequential() override {
    tb::apps::KnnState state(points_.size(), k_);
    tb::apps::KnnProgram prog{&points_, &tree_, &state};
    tb::apps::knn_sequential(prog);
    return digest_state(state);
  }
  std::string run_cilk(tb::rt::ForkJoinPool& pool) override {
    tb::apps::KnnState state(points_.size(), k_);
    tb::apps::KnnProgram prog{&points_, &tree_, &state};
    tb::apps::knn_cilk(pool, prog);
    return digest_state(state);
  }
  std::string run_blocked(const BlockedConfig& cfg, tb::core::ExecStats* st) override {
    tb::apps::KnnState state(points_.size(), k_);
    tb::apps::KnnProgram prog{&points_, &tree_, &state};
    const auto roots = prog.roots();
    (void)run_blocked_generic(prog, roots, cfg, st);
    return digest_state(state);
  }
  std::size_t default_block() const override { return 1u << 9; }
  bool has_hybrid() const override { return true; }
  std::string run_hybrid(tb::rt::ForkJoinPool& pool, const tb::rt::HybridOptions& opt,
                         tb::core::PerWorkerStats* pw, int lanes) override {
    const auto* kt =
        lanes == 0 ? &tb::simd::kernels() : tb::simd::kernels_for_width(lanes);
    if (kt == nullptr) return {};
    tb::apps::KnnState state(points_.size(), k_);
    tb::apps::KnnProgram prog{&points_, &tree_, &state};
    kt->hybrid_knn(pool, prog, opt, pw);
    return digest_state(state);
  }

private:
  static void census_walk(const tb::apps::KnnProgram& prog, const tb::apps::KnnProgram::Task& t,
                          int depth, tb::core::TreeInfo& info) {
    ++info.tasks;
    info.levels = std::max(info.levels, depth + 1);
    if (prog.is_base(t)) {
      ++info.leaves;
      tb::apps::KnnProgram::Result dummy = 0;
      prog.leaf(t, dummy);  // keep bounds shrinking so the census walk prunes
      return;
    }
    prog.expand(t, [&](int, const tb::apps::KnnProgram::Task& c) {
      census_walk(prog, c, depth + 1, info);
    });
  }

  // The final k-best distances are schedule-independent.
  std::string digest_state(const tb::apps::KnnState& state) const {
    std::uint64_t h = 1469598103934665603ull;
    for (std::int32_t q = 0; q < static_cast<std::int32_t>(points_.size()); ++q) {
      for (const float d : state.distances(q)) {
        const auto bits = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(static_cast<double>(d) * 1e6));
        h = (h ^ bits) * 1099511628211ull;
      }
    }
    return std::to_string(h);
  }

  tb::spatial::Bodies points_;
  tb::spatial::KdTree tree_;
  int k_;
};

class MinmaxDistBench final : public IBench {
public:
  explicit MinmaxDistBench(std::size_t points)
      : points_(tb::spatial::Bodies::uniform_cube(points)),
        tree_(tb::spatial::KdTree::build(points_, 16)) {}
  std::string name() const override { return "minmaxdist"; }
  std::string problem() const override { return std::to_string(points_.size()) + " pts"; }
  int q() const override { return tb::apps::MinmaxDistProgram::simd_width; }
  tb::core::TreeInfo census() override {
    // Counts the actual pruned traversal of a fresh sequential run (expand
    // depends on the evolving bounds, like knn).
    tb::apps::MinmaxDistState state(points_.size());
    tb::apps::MinmaxDistProgram prog{&points_, &tree_, &state};
    tb::core::TreeInfo info;
    for (const auto& r : prog.roots()) census_walk(prog, r, 0, info);
    return info;
  }
  std::string run_sequential() override {
    tb::apps::MinmaxDistState state(points_.size());
    tb::apps::MinmaxDistProgram prog{&points_, &tree_, &state};
    tb::apps::minmaxdist_sequential(prog);
    return tb::apps::minmaxdist_digest(state);
  }
  std::string run_cilk(tb::rt::ForkJoinPool& pool) override {
    tb::apps::MinmaxDistState state(points_.size());
    tb::apps::MinmaxDistProgram prog{&points_, &tree_, &state};
    tb::apps::minmaxdist_cilk(pool, prog);
    return tb::apps::minmaxdist_digest(state);
  }
  std::string run_blocked(const BlockedConfig& cfg, tb::core::ExecStats* st) override {
    tb::apps::MinmaxDistState state(points_.size());
    tb::apps::MinmaxDistProgram prog{&points_, &tree_, &state};
    const auto roots = prog.roots();
    (void)run_blocked_generic(prog, roots, cfg, st);
    return tb::apps::minmaxdist_digest(state);
  }
  std::size_t default_block() const override { return 1u << 10; }
  bool has_hybrid() const override { return true; }
  std::string run_hybrid(tb::rt::ForkJoinPool& pool, const tb::rt::HybridOptions& opt,
                         tb::core::PerWorkerStats* pw, int lanes) override {
    const auto* kt =
        lanes == 0 ? &tb::simd::kernels() : tb::simd::kernels_for_width(lanes);
    if (kt == nullptr) return {};
    tb::apps::MinmaxDistState state(points_.size());
    tb::apps::MinmaxDistProgram prog{&points_, &tree_, &state};
    kt->hybrid_minmaxdist(pool, prog, opt, pw);
    return tb::apps::minmaxdist_digest(state);
  }

private:
  static void census_walk(const tb::apps::MinmaxDistProgram& prog,
                          const tb::apps::MinmaxDistProgram::Task& t, int depth,
                          tb::core::TreeInfo& info) {
    ++info.tasks;
    info.levels = std::max(info.levels, depth + 1);
    if (prog.is_base(t)) {
      ++info.leaves;
      tb::apps::MinmaxDistProgram::Result dummy = 0;
      prog.leaf(t, dummy);  // keep bounds moving so the census walk prunes
      return;
    }
    prog.expand(t, [&](int, const tb::apps::MinmaxDistProgram::Task& c) {
      census_walk(prog, c, depth + 1, info);
    });
  }

  tb::spatial::Bodies points_;
  tb::spatial::KdTree tree_;
};

// ---- suite factory ----------------------------------------------------------------

inline std::vector<std::unique_ptr<IBench>> make_suite(const std::string& scale) {
  std::vector<std::unique_ptr<IBench>> v;
  if (scale == "test") {
    v.push_back(std::make_unique<KnapsackBench>(16));
    v.push_back(std::make_unique<FibBench>(22));
    v.push_back(std::make_unique<ParenthesesBench>(10));
    v.push_back(std::make_unique<NQueensBench>(8));
    v.push_back(std::make_unique<GraphColBench>(14, 3.0));
    v.push_back(std::make_unique<UtsBench>(tb::apps::UtsParams{64, 4, 0.22, 19}));
    v.push_back(std::make_unique<BinomialBench>(20, 7));
    v.push_back(std::make_unique<MinmaxBench>(5));
    v.push_back(std::make_unique<BarnesHutBench>(2000, 0.5f));
    v.push_back(std::make_unique<PointCorrBench>(2000, 0.05f));
    v.push_back(std::make_unique<KnnBench>(2000, 4));
    v.push_back(std::make_unique<MinmaxDistBench>(2000));
  } else if (scale == "paper") {
    v.push_back(std::make_unique<KnapsackBench>(30));
    v.push_back(std::make_unique<FibBench>(45));
    v.push_back(std::make_unique<ParenthesesBench>(19));
    v.push_back(std::make_unique<NQueensBench>(15));
    v.push_back(std::make_unique<GraphColBench>(38, 3.4));
    v.push_back(std::make_unique<UtsBench>(tb::apps::UtsParams{2000, 8, 0.12475, 19}));
    v.push_back(std::make_unique<BinomialBench>(36, 13));
    v.push_back(std::make_unique<MinmaxBench>(12));
    v.push_back(std::make_unique<BarnesHutBench>(1000000, 0.5f));
    v.push_back(std::make_unique<PointCorrBench>(300000, 0.01f));
    v.push_back(std::make_unique<KnnBench>(100000, 4));
    v.push_back(std::make_unique<MinmaxDistBench>(300000));
  } else {  // default
    v.push_back(std::make_unique<KnapsackBench>(21));
    v.push_back(std::make_unique<FibBench>(32));
    v.push_back(std::make_unique<ParenthesesBench>(13));
    v.push_back(std::make_unique<NQueensBench>(11));
    v.push_back(std::make_unique<GraphColBench>(19, 3.0));
    v.push_back(std::make_unique<UtsBench>(tb::apps::UtsParams{2000, 4, 0.2493, 19}));
    v.push_back(std::make_unique<BinomialBench>(25, 9));
    v.push_back(std::make_unique<MinmaxBench>(6));
    v.push_back(std::make_unique<BarnesHutBench>(20000, 0.5f));
    v.push_back(std::make_unique<PointCorrBench>(20000, 0.02f));
    v.push_back(std::make_unique<KnnBench>(20000, 4));
    v.push_back(std::make_unique<MinmaxDistBench>(20000));
  }
  return v;
}

}  // namespace tbench
