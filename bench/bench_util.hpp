// Umbrella for the bench/support/ harness library: flag parsing, timing,
// and the structured-result reporter.  Kept so existing consumers
// (examples/tbrun, tests/suite_test) keep their one-line include; new code
// can include the specific bench/support/*.hpp headers directly.
#pragma once

#include "bench/support/flags.hpp"
#include "bench/support/report.hpp"
#include "bench/support/timing.hpp"
