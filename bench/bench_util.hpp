// Shared utilities for the benchmark harnesses: wall-clock timing with
// repetitions, geometric means, and a tiny flag parser (--key=value).
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace tbench {

class Timer {
public:
  Timer() : start_(clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

// Best-of-N wall time of `fn`.
template <class F>
double time_best(F&& fn, int reps = 3) {
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    fn();
    best = std::min(best, t.seconds());
  }
  return best;
}

inline double geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double lg = 0;
  for (const double x : xs) lg += std::log(std::max(x, 1e-12));
  return std::exp(lg / static_cast<double>(xs.size()));
}

// --key=value / --flag command-line options.
class Flags {
public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string_view a = argv[i];
      if (a.rfind("--", 0) != 0) continue;
      a.remove_prefix(2);
      const auto eq = a.find('=');
      if (eq == std::string_view::npos) {
        kv_.emplace_back(std::string(a), "1");
      } else {
        kv_.emplace_back(std::string(a.substr(0, eq)), std::string(a.substr(eq + 1)));
      }
    }
  }

  std::string get(const std::string& key, const std::string& def = "") const {
    for (const auto& [k, v] : kv_) {
      if (k == key) return v;
    }
    return def;
  }
  long get_int(const std::string& key, long def) const {
    const auto v = get(key);
    return v.empty() ? def : std::stol(v);
  }
  double get_double(const std::string& key, double def) const {
    const auto v = get(key);
    return v.empty() ? def : std::stod(v);
  }
  bool has(const std::string& key) const { return !get(key).empty(); }

private:
  std::vector<std::pair<std::string, std::string>> kv_;
};

// True when `name` is in the comma-separated list (or the list is empty).
inline bool selected(const std::string& list, const std::string& name) {
  if (list.empty()) return true;
  std::size_t pos = 0;
  while (pos <= list.size()) {
    const auto comma = list.find(',', pos);
    const auto item = list.substr(pos, comma == std::string::npos ? std::string::npos
                                                                  : comma - pos);
    if (item == name) return true;
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return false;
}

}  // namespace tbench
