// Baseline — lockstep (data-parallel-only) vectorization vs task blocks.
//
// §8 positions the paper against prior traversal vectorizers (Jo et al.,
// Ren et al. CGO'13): those map one outer iteration to each SIMD lane and
// walk the tree in lockstep — no nested task parallelism, no re-blocking,
// no multicore.  This harness runs the three traversal benchmarks under
//
//   seq        — plain recursive traversal (Ts)
//   lockstep   — the prior-work model (single core, masked lanes)
//   blocked    — the blocked re-expansion traversal engine (this PR's
//                lockstep/blocked.hpp): dense query blocks, streaming
//                compaction, masked fallback below t_reexp; single core
//   taskblock  — this paper: restart policy, SIMD layer, sequential core
//
// and reports wall time plus each model's lane-efficiency metric: lockstep
// lane occupancy (active lane-visits / lane-visits) vs task-block SIMD
// utilization (complete steps / steps).  Task blocks keep lanes full by
// compacting live tasks; lockstep pays for divergence with idle lanes.
//
// Flags: --scale=default|paper, --format=json, --out=
#include <cstdio>
#include <string>
#include <vector>

#include "apps/barneshut.hpp"
#include "apps/knn.hpp"
#include "apps/pointcorr.hpp"
#include "bench/support/report.hpp"
#include "core/driver.hpp"
#include "lockstep/lockstep_barneshut.hpp"
#include "lockstep/lockstep_knn.hpp"
#include "lockstep/lockstep_pointcorr.hpp"
#include "spatial/bodies.hpp"
#include "spatial/kdtree.hpp"
#include "spatial/octree.hpp"

namespace {

struct Row {
  std::string name;
  double t_seq, t_lockstep, t_blocked, t_taskblock;
  double occupancy, blocked_util, utilization;
  bool ok;
};

void print(tbench::Reporter& rep, const Row& r) {
  rep.add_metric(rep.make(r.name, "lockstep"), "occupancy", r.occupancy);
  rep.add_metric(rep.make(r.name, "blocked", "-", "simd"), "utilization", r.blocked_util);
  rep.add_metric(rep.make(r.name, "taskblock", "restart", "simd"), "utilization",
                 r.utilization);
  std::printf(
      "%-10s | %9.4f %9.4f %9.4f %9.4f | %7.2f %7.2f %7.2f | %5.1f%% %5.1f%% %5.1f%% | %s\n",
      r.name.c_str(), r.t_seq, r.t_lockstep, r.t_blocked, r.t_taskblock,
      r.t_seq / r.t_lockstep, r.t_seq / r.t_blocked, r.t_seq / r.t_taskblock,
      r.occupancy * 100.0, r.blocked_util * 100.0, r.utilization * 100.0,
      r.ok ? "ok" : "MISMATCH");
}

}  // namespace

int main(int argc, char** argv) {
  tbench::Flags flags(argc, argv);
  const bool paper = flags.get("scale", "default") == "paper";
  const std::size_t n_pc = paper ? 300000 : 20000;
  const std::size_t n_knn = paper ? 100000 : 20000;
  const std::size_t n_bh = paper ? 1000000 : 20000;
  tbench::Reporter rep("baseline_lockstep", flags);

  std::printf(
      "lockstep (prior-work) vs blocked re-expansion engine vs task blocks, single core\n");
  std::printf("%-10s | %9s %9s %9s %9s | %7s %7s %7s | %6s %6s %6s | %s\n", "benchmark",
              "seq(s)", "lockstep", "blocked", "taskblk", "Ts/lock", "Ts/blk", "Ts/tb",
              "occup", "b.util", "util", "check");

  {  // point correlation
    const auto pts = tb::spatial::Bodies::uniform_cube(n_pc);
    const auto tree = tb::spatial::KdTree::build(pts, 16);
    const tb::apps::PointCorrProgram prog{&pts, &tree, paper ? 0.01f : 0.02f};
    Row r{"pointcorr", 0, 0, 0, 0, 0, 0, 0, true};
    std::uint64_t seq = 0, lock = 0, blk = 0, tblk = 0;
    r.t_seq = rep.add_timed(rep.make("pointcorr", "seq"), 3,
                            [&] { seq = tb::apps::pointcorr_sequential(prog); });
    tb::lockstep::LockstepStats ls;
    r.t_lockstep = rep.add_timed(rep.make("pointcorr", "lockstep"), 3, [&] {
      ls = {};
      lock = tb::lockstep::lockstep_pointcorr(prog, &ls);
    });
    tb::core::ExecStats bst;
    r.t_blocked = rep.add_timed(rep.make("pointcorr", "blocked", "-", "simd"), 3, [&] {
      bst = {};
      blk = tb::lockstep::blocked_pointcorr(prog, 32, &bst);
    });
    r.blocked_util = bst.simd_utilization();
    const auto roots = prog.roots();
    const auto th = tb::core::Thresholds::for_block_size(prog.simd_width, 1024, 128);
    tb::core::ExecStats st;
    r.t_taskblock = rep.add_timed(rep.make("pointcorr", "taskblock", "restart", "simd"), 3,
                                  [&] {
                                    st = {};
                                    tblk = tb::core::run_seq<
                                        tb::core::SimdExec<tb::apps::PointCorrProgram>>(
                                        prog, roots, tb::core::SeqPolicy::Restart, th, &st);
                                  });
    r.occupancy = ls.occupancy();
    r.utilization = st.simd_utilization();
    r.ok = seq == lock && seq == blk && seq == tblk;
    print(rep, r);
  }

  {  // knn
    const auto pts = tb::spatial::Bodies::uniform_cube(n_knn);
    const auto tree = tb::spatial::KdTree::build(pts, 16);
    const int k = 4;
    Row r{"knn", 0, 0, 0, 0, 0, 0, 0, true};
    std::string d_seq, d_lock, d_blk, d_tblk;
    const auto digest = [&](const tb::apps::KnnState& state) {
      std::uint64_t h = 1469598103934665603ull;
      for (std::int32_t q = 0; q < static_cast<std::int32_t>(pts.size()); ++q) {
        for (const float d : state.distances(q)) {
          h = (h ^ static_cast<std::uint64_t>(static_cast<std::int64_t>(
                       static_cast<double>(d) * 1e6))) *
              1099511628211ull;
        }
      }
      return std::to_string(h);
    };
    r.t_seq = rep.add_timed(rep.make("knn", "seq"), 3, [&] {
      tb::apps::KnnState state(pts.size(), k);
      tb::apps::KnnProgram prog{&pts, &tree, &state};
      tb::apps::knn_sequential(prog);
      d_seq = digest(state);
    });
    tb::lockstep::LockstepStats ls;
    r.t_lockstep = rep.add_timed(rep.make("knn", "lockstep"), 3, [&] {
      ls = {};
      tb::apps::KnnState state(pts.size(), k);
      tb::apps::KnnProgram prog{&pts, &tree, &state};
      tb::lockstep::lockstep_knn(prog, &ls);
      d_lock = digest(state);
    });
    tb::core::ExecStats bst;
    r.t_blocked = rep.add_timed(rep.make("knn", "blocked", "-", "simd"), 3, [&] {
      bst = {};
      tb::apps::KnnState state(pts.size(), k);
      tb::apps::KnnProgram prog{&pts, &tree, &state};
      tb::lockstep::blocked_knn(prog, 32, &bst);
      d_blk = digest(state);
    });
    r.blocked_util = bst.simd_utilization();
    tb::core::ExecStats st;
    const auto th = tb::core::Thresholds::for_block_size(8, 512, 64);
    r.t_taskblock = rep.add_timed(rep.make("knn", "taskblock", "restart", "simd"), 3, [&] {
      st = {};
      tb::apps::KnnState state(pts.size(), k);
      tb::apps::KnnProgram prog{&pts, &tree, &state};
      const auto roots = prog.roots();
      (void)tb::core::run_seq<tb::core::SimdExec<tb::apps::KnnProgram>>(
          prog, roots, tb::core::SeqPolicy::Restart, th, &st);
      d_tblk = digest(state);
    });
    r.occupancy = ls.occupancy();
    r.utilization = st.simd_utilization();
    r.ok = d_seq == d_lock && d_seq == d_blk && d_seq == d_tblk;
    print(rep, r);
  }

  {  // barnes-hut
    const auto bodies = tb::spatial::Bodies::plummer(n_bh);
    const auto tree = tb::spatial::Octree::build(bodies, 8);
    const float theta = 0.5f;
    std::vector<float> ax(bodies.size()), ay(bodies.size()), az(bodies.size());
    tb::apps::BarnesHutProgram prog{&bodies, &tree, ax.data(), ay.data(), az.data()};
    const auto reset = [&] {
      std::fill(ax.begin(), ax.end(), 0.0f);
      std::fill(ay.begin(), ay.end(), 0.0f);
      std::fill(az.begin(), az.end(), 0.0f);
    };
    Row r{"barneshut", 0, 0, 0, 0, 0, 0, 0, true};
    std::uint64_t seq = 0, lock = 0, blk = 0, tblk = 0;
    r.t_seq = rep.add_timed(rep.make("barneshut", "seq"), 3, [&] {
      reset();
      seq = tb::apps::barneshut_sequential(prog, theta);
    });
    tb::lockstep::LockstepStats ls;
    r.t_lockstep = rep.add_timed(rep.make("barneshut", "lockstep"), 3, [&] {
      reset();
      ls = {};
      lock = tb::lockstep::lockstep_barneshut(prog, theta, &ls);
    });
    tb::core::ExecStats bst;
    r.t_blocked = rep.add_timed(rep.make("barneshut", "blocked", "-", "simd"), 3, [&] {
      reset();
      bst = {};
      blk = tb::lockstep::blocked_barneshut(prog, theta, 32, &bst);
    });
    r.blocked_util = bst.simd_utilization();
    const auto roots = prog.roots(theta);
    const auto th = tb::core::Thresholds::for_block_size(prog.simd_width, 512, 64);
    tb::core::ExecStats st;
    r.t_taskblock = rep.add_timed(rep.make("barneshut", "taskblock", "restart", "simd"), 3,
                                  [&] {
                                    reset();
                                    st = {};
                                    tblk = tb::core::run_seq<
                                        tb::core::SimdExec<tb::apps::BarnesHutProgram>>(
                                        prog, roots, tb::core::SeqPolicy::Restart, th, &st);
                                  });
    r.occupancy = ls.occupancy();
    r.utilization = st.simd_utilization();
    r.ok = seq == lock && seq == blk && seq == tblk;
    print(rep, r);
  }
  return rep.finish();
}
