// Table 1 — benchmark characteristics and performance.
//
// Per benchmark: tree census (#levels, #tasks), Ts (sequential recursion),
// T1/TP (Cilk-style, 1 and P workers), T1x/T1r (1-core blocked+SIMD
// re-expansion / restart), TPx/TPr (P workers), and the paper's speedup
// columns Ts/T1{,x,r} and Ts/TP{,x,r}.  Every run's result digest is
// verified against the sequential baseline.
//
// JSON records: raw "seconds" per rung plus geomean speedup columns as
// higher-is-better "ratio" records.
//
// Flags:
//   --scale=test|default|paper   problem sizes (default: default)
//   --workers=N                  "16-worker" column (default: 16, as in the
//                                paper; oversubscribed on small hosts)
//   --benchmarks=a,b,c           subset filter
//   --block=N --rb=N             override block / restart-block sizes
//   --reps=N                     best-of-N timing (default 1)
//   --no-census                  skip tree census (useful at --scale=paper)
//   --format=json --out=<path>   machine-readable results
#include <cstdio>
#include <string>
#include <vector>

#include "bench/support/report.hpp"
#include "bench/suite.hpp"

namespace {

struct Row {
  std::string name, problem;
  tb::core::TreeInfo info{};
  double ts = 0, t1 = 0, tp = 0, t1x = 0, t1r = 0, tpx = 0, tpr = 0;
  std::size_t block = 0, rb = 0;
  bool verified = true;
};

double safe_div(double a, double b) { return b > 0 ? a / b : 0.0; }

}  // namespace

int main(int argc, char** argv) {
  tbench::Flags flags(argc, argv);
  const std::string scale = flags.get("scale", "default");
  const int workers = static_cast<int>(flags.get_int("workers", 16));
  const int reps = static_cast<int>(flags.get_int("reps", 1));
  const std::string filter = flags.get("benchmarks");
  const bool census = !flags.has("no-census");
  tbench::Reporter rep("table1_characteristics", flags);

  auto suite = tbench::make_suite(scale);
  tb::rt::ForkJoinPool pool1(1);
  tb::rt::ForkJoinPool poolP(workers);

  std::printf("Table 1: benchmark characteristics and performance (scale=%s, P=%d)\n",
              scale.c_str(), workers);
  std::printf(
      "%-12s %-14s %8s %12s | %9s %9s %9s | %6s %6s | %7s %7s %7s | %7s %7s %7s  %s\n",
      "Benchmark", "Problem", "#Levels", "#Tasks", "Ts(s)", "T1(s)", "TP(s)", "Block", "RB",
      "Ts/T1", "Ts/T1x", "Ts/T1r", "Ts/TP", "Ts/TPx", "Ts/TPr", "ok");

  std::vector<double> g_t1, g_t1x, g_t1r, g_tp, g_tpx, g_tpr;
  bool all_verified = true;
  for (auto& b : suite) {
    if (!tbench::selected(filter, b->name())) continue;
    Row row;
    row.name = b->name();
    row.problem = b->problem();
    row.block = static_cast<std::size_t>(flags.get_int("block", 0));
    row.rb = static_cast<std::size_t>(flags.get_int("rb", 0));
    const auto th = b->thresholds(row.block, row.rb);
    row.block = th.t_dfe;
    row.rb = th.t_restart;
    if (census) row.info = b->census();

    std::string expected, last_got;
    row.ts = rep.add_timed(rep.make(row.name, "seq"), reps,
                           [&] { expected = b->run_sequential(); });
    rep.set_last_digest(expected);
    auto check = [&](const std::string& got) {
      row.verified &= (got == expected);
      last_got = got;
    };
    // Records the run's *actual* digest, so bench_diff can flag a
    // wrong-result run as a digest mismatch.
    auto timed = [&](tbench::Result proto, auto&& fn) {
      const double best = rep.add_timed(std::move(proto), reps, fn);
      rep.set_last_digest(last_got);
      return best;
    };

    row.t1 = timed(rep.make(row.name, "cilk", "-", "-", 1),
                   [&] { check(b->run_cilk(pool1)); });
    if (workers != 1) {
      row.tp = timed(rep.make(row.name, "cilk", "-", "-", workers),
                     [&] { check(b->run_cilk(poolP)); });
    } else {
      // Same configuration as the 1-worker row: recording it would collide
      // on the identity key and break the zero-delta self-diff.
      row.tp = tbench::time_best([&] { check(b->run_cilk(poolP)); }, reps);
    }

    tbench::BlockedConfig cfg;
    cfg.th = th;
    cfg.layer = tbench::Layer::Simd;
    cfg.policy = tb::core::SeqPolicy::Reexp;
    cfg.pool = nullptr;
    row.t1x = timed(rep.make(row.name, "blocked", "reexp", "simd", 0),
                    [&] { check(b->run_blocked(cfg)); });
    cfg.policy = tb::core::SeqPolicy::Restart;
    row.t1r = timed(rep.make(row.name, "blocked", "restart", "simd", 0),
                    [&] { check(b->run_blocked(cfg)); });
    cfg.pool = &poolP;
    cfg.policy = tb::core::SeqPolicy::Reexp;
    row.tpx = timed(rep.make(row.name, "blocked", "reexp", "simd", workers),
                    [&] { check(b->run_blocked(cfg)); });
    cfg.policy = tb::core::SeqPolicy::Restart;
    row.tpr = timed(rep.make(row.name, "blocked", "restart", "simd", workers),
                    [&] { check(b->run_blocked(cfg)); });

    std::printf(
        "%-12s %-14s %8d %12llu | %9.4f %9.4f %9.4f | %6zu %6zu | %7.2f %7.2f %7.2f | %7.2f "
        "%7.2f %7.2f  %s\n",
        row.name.c_str(), row.problem.c_str(), row.info.levels,
        static_cast<unsigned long long>(row.info.tasks), row.ts, row.t1, row.tp, row.block,
        row.rb, safe_div(row.ts, row.t1), safe_div(row.ts, row.t1x), safe_div(row.ts, row.t1r),
        safe_div(row.ts, row.tp), safe_div(row.ts, row.tpx), safe_div(row.ts, row.tpr),
        row.verified ? "yes" : "MISMATCH");
    g_t1.push_back(safe_div(row.ts, row.t1));
    g_t1x.push_back(safe_div(row.ts, row.t1x));
    g_t1r.push_back(safe_div(row.ts, row.t1r));
    g_tp.push_back(safe_div(row.ts, row.tp));
    g_tpx.push_back(safe_div(row.ts, row.tpx));
    g_tpr.push_back(safe_div(row.ts, row.tpr));
    all_verified &= row.verified;
  }
  const struct {
    const char* policy;
    int workers;
    const std::vector<double>* v;
  } columns[] = {{"-", 1, &g_t1},          {"reexp", 0, &g_t1x}, {"restart", 0, &g_t1r},
                 {"-", workers, &g_tp},    {"reexp", workers, &g_tpx},
                 {"restart", workers, &g_tpr}};
  for (const auto& c : columns) {
    // --workers=1 collapses the scalar P-worker column onto the 1-worker one.
    if (workers == 1 && c.v == &g_tp) continue;
    rep.add_metric(rep.make("geomean", "speedup", c.policy, c.policy[0] == '-' ? "-" : "simd",
                            c.workers),
                   "ratio", tbench::geomean(*c.v));
  }
  std::printf(
      "%-12s %-14s %8s %12s | %9s %9s %9s | %6s %6s | %7.2f %7.2f %7.2f | %7.2f %7.2f %7.2f\n",
      "Geo. mean", "", "", "", "", "", "", "", "", tbench::geomean(g_t1),
      tbench::geomean(g_t1x), tbench::geomean(g_t1r), tbench::geomean(g_tp),
      tbench::geomean(g_tpx), tbench::geomean(g_tpr));
  std::printf(
      "\nNote: this host exposes %u hardware thread(s); the P-worker columns are\n"
      "oversubscribed wall-clock here — see fig5_scalability --mode=simulated for the\n"
      "multicore scaling shape under the paper's cost model.\n",
      std::thread::hardware_concurrency());
  const int json_rc = rep.finish();
  return all_verified ? json_rc : 1;
}
