// Table 1 — benchmark characteristics and performance.
//
// Per benchmark: tree census (#levels, #tasks), Ts (sequential recursion),
// T1/TP (Cilk-style, 1 and P workers), T1x/T1r (1-core blocked+SIMD
// re-expansion / restart), TPx/TPr (P workers), and the paper's speedup
// columns Ts/T1{,x,r} and Ts/TP{,x,r}.  Every run's result digest is
// verified against the sequential baseline.
//
// Flags:
//   --scale=test|default|paper   problem sizes (default: default)
//   --workers=N                  "16-worker" column (default: 16, as in the
//                                paper; oversubscribed on small hosts)
//   --benchmarks=a,b,c           subset filter
//   --block=N --rb=N             override block / restart-block sizes
//   --reps=N                     best-of-N timing (default 1)
//   --no-census                  skip tree census (useful at --scale=paper)
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "bench/suite.hpp"

namespace {

struct Row {
  std::string name, problem;
  tb::core::TreeInfo info{};
  double ts = 0, t1 = 0, tp = 0, t1x = 0, t1r = 0, tpx = 0, tpr = 0;
  std::size_t block = 0, rb = 0;
  bool verified = true;
};

double safe_div(double a, double b) { return b > 0 ? a / b : 0.0; }

}  // namespace

int main(int argc, char** argv) {
  tbench::Flags flags(argc, argv);
  const std::string scale = flags.get("scale", "default");
  const int workers = static_cast<int>(flags.get_int("workers", 16));
  const int reps = static_cast<int>(flags.get_int("reps", 1));
  const std::string filter = flags.get("benchmarks");
  const bool census = !flags.has("no-census");

  auto suite = tbench::make_suite(scale);
  tb::rt::ForkJoinPool pool1(1);
  tb::rt::ForkJoinPool poolP(workers);

  std::printf("Table 1: benchmark characteristics and performance (scale=%s, P=%d)\n",
              scale.c_str(), workers);
  std::printf(
      "%-12s %-14s %8s %12s | %9s %9s %9s | %6s %6s | %7s %7s %7s | %7s %7s %7s  %s\n",
      "Benchmark", "Problem", "#Levels", "#Tasks", "Ts(s)", "T1(s)", "TP(s)", "Block", "RB",
      "Ts/T1", "Ts/T1x", "Ts/T1r", "Ts/TP", "Ts/TPx", "Ts/TPr", "ok");

  std::vector<double> g_t1, g_t1x, g_t1r, g_tp, g_tpx, g_tpr;
  for (auto& b : suite) {
    if (!tbench::selected(filter, b->name())) continue;
    Row row;
    row.name = b->name();
    row.problem = b->problem();
    row.block = static_cast<std::size_t>(flags.get_int("block", 0));
    row.rb = static_cast<std::size_t>(flags.get_int("rb", 0));
    const auto th = b->thresholds(row.block, row.rb);
    row.block = th.t_dfe;
    row.rb = th.t_restart;
    if (census) row.info = b->census();

    std::string expected;
    row.ts = tbench::time_best([&] { expected = b->run_sequential(); }, reps);
    auto check = [&](const std::string& got) { row.verified &= (got == expected); };

    row.t1 = tbench::time_best([&] { check(b->run_cilk(pool1)); }, reps);
    row.tp = tbench::time_best([&] { check(b->run_cilk(poolP)); }, reps);

    tbench::BlockedConfig cfg;
    cfg.th = th;
    cfg.layer = tbench::Layer::Simd;
    cfg.policy = tb::core::SeqPolicy::Reexp;
    cfg.pool = nullptr;
    row.t1x = tbench::time_best([&] { check(b->run_blocked(cfg)); }, reps);
    cfg.policy = tb::core::SeqPolicy::Restart;
    row.t1r = tbench::time_best([&] { check(b->run_blocked(cfg)); }, reps);
    cfg.pool = &poolP;
    cfg.policy = tb::core::SeqPolicy::Reexp;
    row.tpx = tbench::time_best([&] { check(b->run_blocked(cfg)); }, reps);
    cfg.policy = tb::core::SeqPolicy::Restart;
    row.tpr = tbench::time_best([&] { check(b->run_blocked(cfg)); }, reps);

    std::printf(
        "%-12s %-14s %8d %12llu | %9.4f %9.4f %9.4f | %6zu %6zu | %7.2f %7.2f %7.2f | %7.2f "
        "%7.2f %7.2f  %s\n",
        row.name.c_str(), row.problem.c_str(), row.info.levels,
        static_cast<unsigned long long>(row.info.tasks), row.ts, row.t1, row.tp, row.block,
        row.rb, safe_div(row.ts, row.t1), safe_div(row.ts, row.t1x), safe_div(row.ts, row.t1r),
        safe_div(row.ts, row.tp), safe_div(row.ts, row.tpx), safe_div(row.ts, row.tpr),
        row.verified ? "yes" : "MISMATCH");
    g_t1.push_back(safe_div(row.ts, row.t1));
    g_t1x.push_back(safe_div(row.ts, row.t1x));
    g_t1r.push_back(safe_div(row.ts, row.t1r));
    g_tp.push_back(safe_div(row.ts, row.tp));
    g_tpx.push_back(safe_div(row.ts, row.tpx));
    g_tpr.push_back(safe_div(row.ts, row.tpr));
  }
  std::printf(
      "%-12s %-14s %8s %12s | %9s %9s %9s | %6s %6s | %7.2f %7.2f %7.2f | %7.2f %7.2f %7.2f\n",
      "Geo. mean", "", "", "", "", "", "", "", "", tbench::geomean(g_t1),
      tbench::geomean(g_t1x), tbench::geomean(g_t1r), tbench::geomean(g_tp),
      tbench::geomean(g_tpx), tbench::geomean(g_tpr));
  std::printf(
      "\nNote: this host exposes %u hardware thread(s); the P-worker columns are\n"
      "oversubscribed wall-clock here — see fig5_scalability --mode=simulated for the\n"
      "multicore scaling shape under the paper's cost model.\n",
      std::thread::hardware_concurrency());
  return 0;
}
