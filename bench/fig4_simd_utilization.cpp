// Figure 4 — SIMD utilization vs block size.
//
// For each benchmark in the paper's figure (nqueens, graphcol, uts, minmax,
// Barnes-Hut, point correlation; knn is identical to point correlation per
// the caption), sweep the block size over 2^0 .. 2^16 and report, for both
// re-expansion and restart, the fraction of complete SIMD steps — the exact
// metric of §7.2, measured by the sequential schedulers, so the output is
// deterministic and host-independent.
//
// JSON records: one "utilization" record per (benchmark × policy × block).
// Deterministic, so bench_diff gates them exactly — this is the baseline
// document under bench/baselines/.
//
// The traversal benchmarks additionally sweep the hybrid executor's
// re-expansion threshold over the same exponents on a 2-worker pool with a
// *static* partition: the per-chunk step counts are independent of which
// thread runs which chunk, so the merged and per-worker utilization records
// are exactly as deterministic as the sequential ones and join the same
// gate.
//
// Output: CSV `benchmark,policy,block,utilization` plus a rendered summary.
// Flags: --scale=, --benchmarks=, --max-exp=N (default 16), --csv-only,
//        --format=json, --out=
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/support/report.hpp"
#include "bench/suite.hpp"

int main(int argc, char** argv) {
  tbench::Flags flags(argc, argv);
  const std::string scale = flags.get("scale", "default");
  const int max_exp = static_cast<int>(flags.get_int("max-exp", 16));
  const std::string filter =
      flags.get("benchmarks", "nqueens,graphcol,uts,minmax,barneshut,pointcorr,minmaxdist");
  const bool csv_only = flags.has("csv-only");
  tbench::Reporter rep("fig4_simd_utilization", flags);

  auto suite = tbench::make_suite(scale);
  std::printf("benchmark,policy,block,utilization\n");

  std::map<std::string, std::map<std::string, std::vector<double>>> series;
  for (auto& b : suite) {
    if (!tbench::selected(filter, b->name())) continue;
    for (const auto pol : {tb::core::SeqPolicy::Reexp, tb::core::SeqPolicy::Restart}) {
      for (int e = 0; e <= max_exp; ++e) {
        const std::size_t block = 1ull << e;
        tbench::BlockedConfig cfg;
        cfg.policy = pol;
        cfg.layer = tbench::Layer::Soa;  // utilization is layout-independent
        cfg.th = b->thresholds(block, std::min<std::size_t>(b->default_restart(), block));
        tb::core::ExecStats st;
        (void)b->run_blocked(cfg, &st);
        const double u = st.simd_utilization();
        std::printf("%s,%s,%zu,%.4f\n", b->name().c_str(), tb::core::to_string(pol), block, u);
        rep.add_metric(rep.make(b->name(), "block=" + std::to_string(block),
                                tb::core::to_string(pol), "soa", 0),
                       "utilization", u);
        series[b->name()][tb::core::to_string(pol)].push_back(u);
      }
    }
  }

  // Hybrid executor: deterministic static 2-chunk partition, re-expansion
  // threshold swept over the same exponents.  Merged + per-worker records.
  // Traversal benches pin the W=4 dispatch table: these records gate against
  // bench/baselines/ at --require-all, and the runtime-dispatched width would
  // otherwise vary with the CI runner's ISA generation (task-block benches
  // run at their compile-time width and take lanes=0).
  tb::rt::ForkJoinPool pool2(2);
  for (auto& b : suite) {
    if (!tbench::selected(filter, b->name()) || !b->has_hybrid()) continue;
    const int lanes = b->hybrid_fixed_width() ? 0 : 4;
    for (int e = 0; e <= max_exp; ++e) {
      const std::size_t block = 1ull << e;
      tb::rt::HybridOptions opt;
      opt.t_reexp = block;
      opt.static_partition = true;
      tb::core::PerWorkerStats pw;
      (void)b->run_hybrid(pool2, opt, &pw, lanes);
      const double u = pw.merged().simd_utilization();
      std::printf("%s,hybrid,%zu,%.4f\n", b->name().c_str(), block, u);
      const std::string variant = "block=" + std::to_string(block);
      rep.add_metric(rep.make(b->name(), variant, "hybrid", "simd", 2), "utilization", u);
      for (std::size_t s = 0; s < pw.slots(); ++s) {
        rep.add_metric(rep.make(b->name(), variant + ":worker=" + std::to_string(s),
                                "hybrid", "simd", 2),
                       "utilization", pw.utilization(s));
      }
    }
  }

  if (!csv_only) {
    std::printf("\n# Shape check (paper Fig. 4): restart >= reexp at every block size,\n");
    std::printf("# both curves rising toward 100%% with block size.\n");
    for (const auto& [bench, by_policy] : series) {
      const auto& rx = by_policy.at("reexp");
      const auto& rs = by_policy.at("restart");
      int holds = 0;
      for (std::size_t i = 0; i < rx.size(); ++i) holds += (rs[i] + 1e-9 >= rx[i]) ? 1 : 0;
      std::printf("# %-12s restart>=reexp at %d/%zu block sizes; reexp %.0f%%..%.0f%%, "
                  "restart %.0f%%..%.0f%%\n",
                  bench.c_str(), holds, rx.size(), rx.front() * 100, rx.back() * 100,
                  rs.front() * 100, rs.back() * 100);
    }
  }
  return rep.finish();
}
