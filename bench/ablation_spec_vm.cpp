// Ablation — execution tiers of the §5 specification language.
//
// The same textual program runs through five tiers:
//
//   ast      — AST-walking interpreter per task (the naive front-end)
//   vm       — scalar bytecode VM per task (compiled, short-circuit jumps)
//   jit      — the same scalar bytecode compiled to native x64 step
//              functions (spec/jit/): no dispatch, stack slots in registers
//   vm+simd  — block bytecode VM: straight-line blocked dialect evaluated
//              4 lanes at a time with masked child compaction
//   native   — the equivalent hand-written C++ kernel's SIMD rung
//              (the ceiling the compiler pipeline is chasing)
//
// All tiers run under the sequential restart scheduler with the same
// thresholds, so the delta is purely the per-task/per-block execution cost.
// Every tier's result is cross-checked against every other; a mismatch is a
// hard failure (exit 1) — the JIT's contract is bit-identity, not "close".
//
// Flags: --scale=default|paper, --programs=fib,binomial,paren,
//        --tiers=ast,vm,jit,vm+simd,native (default: all; isolate single
//        tiers when diffing), --format=json, --out=
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "apps/binomial.hpp"
#include "apps/fib.hpp"
#include "apps/parentheses.hpp"
#include "bench/support/report.hpp"
#include "core/driver.hpp"
#include "spec/spec_lang.hpp"
#include "spec/vm.hpp"

namespace {

using namespace tb;
using core::SeqPolicy;

struct ProgramCase {
  std::string name;
  const char* src;
  std::array<std::int64_t, 2> root;
  // Native-kernel runner (returns result) — the hand-written ceiling.
  std::uint64_t (*native)(const core::Thresholds&, std::array<std::int64_t, 2>);
};

template <class P>
std::uint64_t run_native(const P& prog, typename P::Task root, const core::Thresholds& th) {
  const std::vector roots{root};
  return core::run_seq<core::SimdExec<P>>(prog, roots, SeqPolicy::Restart, th);
}

std::uint64_t native_fib(const core::Thresholds& th, std::array<std::int64_t, 2> r) {
  return run_native(apps::FibProgram{}, apps::FibProgram::root(static_cast<int>(r[0])), th);
}
std::uint64_t native_binomial(const core::Thresholds& th, std::array<std::int64_t, 2> r) {
  return run_native(apps::BinomialProgram{},
                    apps::BinomialProgram::root(static_cast<int>(r[0]), static_cast<int>(r[1])),
                    th);
}
std::uint64_t native_paren(const core::Thresholds& th, std::array<std::int64_t, 2> r) {
  return run_native(apps::ParenthesesProgram{},
                    apps::ParenthesesProgram::root(static_cast<int>(r[0])), th);
}

constexpr const char* kFib = R"(
  def fib(n)
    base n < 2
    reduce n
    spawn fib(n - 1)
    spawn fib(n - 2)
)";
constexpr const char* kBinomial = R"(
  def choose(n, k)
    base k == 0 || k == n
    reduce 1
    spawn choose(n - 1, k - 1)
    spawn choose(n - 1, k)
)";
constexpr const char* kParens = R"(
  def paren(open, close)
    base open == 0 && close == 0
    reduce 1
    spawn if open > 0 : paren(open - 1, close)
    spawn if close > open : paren(open, close - 1)
)";

// One tier's measurement for one program; `run` distinguishes "filtered
// out" from "measured zero".
struct TierRun {
  bool run = false;
  double secs = 0.0;
  std::uint64_t result = 0;
};

double geo_or_nan(const std::vector<double>& v) {
  return v.empty() ? 0.0 : tbench::geomean(v);
}

void cell(char* buf, std::size_t n, const TierRun& t) {
  if (t.run) {
    std::snprintf(buf, n, "%9.4f", t.secs);
  } else {
    std::snprintf(buf, n, "%9s", "-");
  }
}

}  // namespace

int main(int argc, char** argv) {
  tbench::Flags flags(argc, argv);
  const bool paper = flags.get("scale", "default") == "paper";
  const std::string filter = flags.get("programs");
  const std::string tiers = flags.get("tiers");
  tbench::Reporter rep("ablation_spec_vm", flags);

  const bool want_ast = tbench::selected(tiers, "ast");
  const bool want_vm = tbench::selected(tiers, "vm");
  const bool want_jit = tbench::selected(tiers, "jit");
  const bool want_simd = tbench::selected(tiers, "vm+simd");
  const bool want_native = tbench::selected(tiers, "native");

  const std::vector<ProgramCase> cases = {
      {"fib", kFib, {paper ? 34 : 29, 0}, native_fib},
      {"binomial", kBinomial, {paper ? 32 : 24, paper ? 13 : 10}, native_binomial},
      {"paren", kParens, {paper ? 16 : 12, paper ? 16 : 12}, native_paren},
  };

  if (want_jit && !spec::jit::supported()) {
    std::printf("note: spec JIT unsupported on this build; jit tier runs the interpreter\n");
  }

  std::printf("spec-language execution tiers (restart policy, sequential scheduler)\n");
  std::printf("%-10s | %10s | %9s %9s %9s %9s %9s | %7s %7s %7s %7s\n", "program", "tasks",
              "ast(s)", "vm(s)", "jit(s)", "vm+simd", "native", "vm/ast", "jit/vm", "simd/ast",
              "nat/ast");

  std::vector<double> g_vm, g_jit, g_jit_vm, g_simd, g_native;
  for (const auto& c : cases) {
    if (!tbench::selected(filter, c.name)) continue;
    const auto ast = spec::SpecProgram::parse(c.src);
    const auto vm = spec::CompiledSpecProgram::parse(c.src, spec::JitMode::Off);
    const auto jit = spec::CompiledSpecProgram::parse(c.src, spec::JitMode::On);
    const auto th = core::Thresholds::for_block_size(/*Q=*/4, /*block=*/4096, /*restart=*/256);

    const std::vector ast_roots{ast.make_root({c.root[0], c.root[1]})};
    const std::vector vm_roots{vm.make_root({c.root[0], c.root[1]})};
    const auto info = core::count_tree(ast, ast_roots);

    TierRun t_ast, t_vm, t_jit, t_simd, t_native;
    if (want_ast) {
      t_ast.run = true;
      t_ast.secs = rep.add_timed(rep.make(c.name, "ast", "restart", "soa"), 3, [&] {
        t_ast.result = core::run_seq<core::SoaExec<spec::SpecProgram>>(ast, ast_roots,
                                                                       SeqPolicy::Restart, th);
      });
    }
    if (want_vm) {
      t_vm.run = true;
      t_vm.secs = rep.add_timed(rep.make(c.name, "vm", "restart", "soa"), 3, [&] {
        t_vm.result = core::run_seq<core::SoaExec<spec::CompiledSpecProgram>>(
            vm, vm_roots, SeqPolicy::Restart, th);
      });
    }
    if (want_jit) {
      t_jit.run = true;
      t_jit.secs = rep.add_timed(rep.make(c.name, "jit", "restart", "soa"), 3, [&] {
        t_jit.result = core::run_seq<core::SoaExec<spec::CompiledSpecProgram>>(
            jit, vm_roots, SeqPolicy::Restart, th);
      });
    }
    if (want_simd) {
      t_simd.run = true;
      t_simd.secs = rep.add_timed(rep.make(c.name, "vm+simd", "restart", "simd"), 3, [&] {
        t_simd.result = core::run_seq<core::SimdExec<spec::CompiledSpecProgram>>(
            vm, vm_roots, SeqPolicy::Restart, th);
      });
    }
    if (want_native) {
      t_native.run = true;
      t_native.secs = rep.add_timed(rep.make(c.name, "native", "restart", "simd"), 3,
                                    [&] { t_native.result = c.native(th, c.root); });
    }

    // Bit-identity across every tier that ran.
    std::optional<std::uint64_t> reference;
    bool mismatch = false;
    for (const TierRun* t : {&t_ast, &t_vm, &t_jit, &t_simd, &t_native}) {
      if (!t->run) continue;
      if (!reference) reference = t->result;
      if (t->result != *reference) mismatch = true;
    }
    if (mismatch) {
      std::printf("MISMATCH %s: ast=%llu vm=%llu jit=%llu simd=%llu native=%llu\n",
                  c.name.c_str(), static_cast<unsigned long long>(t_ast.result),
                  static_cast<unsigned long long>(t_vm.result),
                  static_cast<unsigned long long>(t_jit.result),
                  static_cast<unsigned long long>(t_simd.result),
                  static_cast<unsigned long long>(t_native.result));
      return 1;
    }

    char c_ast[16], c_vm[16], c_jit[16], c_simd[16], c_native[16];
    cell(c_ast, sizeof c_ast, t_ast);
    cell(c_vm, sizeof c_vm, t_vm);
    cell(c_jit, sizeof c_jit, t_jit);
    cell(c_simd, sizeof c_simd, t_simd);
    cell(c_native, sizeof c_native, t_native);
    const double r_vm = (t_ast.run && t_vm.run) ? t_ast.secs / t_vm.secs : 0.0;
    const double r_jit_vm = (t_vm.run && t_jit.run) ? t_vm.secs / t_jit.secs : 0.0;
    const double r_simd = (t_ast.run && t_simd.run) ? t_ast.secs / t_simd.secs : 0.0;
    const double r_native = (t_ast.run && t_native.run) ? t_ast.secs / t_native.secs : 0.0;
    std::printf("%-10s | %10llu | %s %s %s %s %s | %7.2f %7.2f %7.2f %7.2f\n", c.name.c_str(),
                static_cast<unsigned long long>(info.tasks), c_ast, c_vm, c_jit, c_simd,
                c_native, r_vm, r_jit_vm, r_simd, r_native);
    if (t_ast.run && t_vm.run) g_vm.push_back(t_ast.secs / t_vm.secs);
    if (t_ast.run && t_jit.run) g_jit.push_back(t_ast.secs / t_jit.secs);
    if (t_vm.run && t_jit.run) g_jit_vm.push_back(t_vm.secs / t_jit.secs);
    if (t_ast.run && t_simd.run) g_simd.push_back(t_ast.secs / t_simd.secs);
    if (t_ast.run && t_native.run) g_native.push_back(t_ast.secs / t_native.secs);
  }

  if (!g_vm.empty()) rep.add_metric(rep.make("geomean", "vm/ast"), "ratio", geo_or_nan(g_vm));
  if (!g_jit.empty()) {
    rep.add_metric(rep.make("geomean", "jit/ast"), "ratio", geo_or_nan(g_jit));
  }
  if (!g_jit_vm.empty()) {
    rep.add_metric(rep.make("geomean", "jit/vm"), "ratio", geo_or_nan(g_jit_vm));
  }
  if (!g_simd.empty()) {
    rep.add_metric(rep.make("geomean", "simd/ast"), "ratio", geo_or_nan(g_simd));
  }
  if (!g_native.empty()) {
    rep.add_metric(rep.make("geomean", "native/ast"), "ratio", geo_or_nan(g_native));
  }
  std::printf("%-10s | %10s | %9s %9s %9s %9s %9s | %7.2f %7.2f %7.2f %7.2f\n", "geomean", "",
              "", "", "", "", "", geo_or_nan(g_vm), geo_or_nan(g_jit_vm), geo_or_nan(g_simd),
              geo_or_nan(g_native));
  return rep.finish();
}
