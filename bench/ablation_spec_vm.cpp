// Ablation — execution tiers of the §5 specification language.
//
// The same textual program runs through four tiers:
//
//   ast      — AST-walking interpreter per task (the naive front-end)
//   vm       — scalar bytecode VM per task (compiled, short-circuit jumps)
//   vm+simd  — block bytecode VM: straight-line blocked dialect evaluated
//              4 lanes at a time with masked child compaction
//   native   — the equivalent hand-written C++ kernel's SIMD rung
//              (the ceiling the compiler pipeline is chasing)
//
// All tiers run under the sequential restart scheduler with the same
// thresholds, so the delta is purely the per-task/per-block execution cost.
//
// Flags: --scale=default|paper, --programs=fib,binomial,paren,
//        --format=json, --out=
#include <cstdio>
#include <string>
#include <vector>

#include "apps/binomial.hpp"
#include "apps/fib.hpp"
#include "apps/parentheses.hpp"
#include "bench/support/report.hpp"
#include "core/driver.hpp"
#include "spec/spec_lang.hpp"
#include "spec/vm.hpp"

namespace {

using namespace tb;
using core::SeqPolicy;

struct ProgramCase {
  std::string name;
  const char* src;
  std::array<std::int64_t, 2> root;
  // Native-kernel runner (returns result) — the hand-written ceiling.
  std::uint64_t (*native)(const core::Thresholds&, std::array<std::int64_t, 2>);
};

template <class P>
std::uint64_t run_native(const P& prog, typename P::Task root, const core::Thresholds& th) {
  const std::vector roots{root};
  return core::run_seq<core::SimdExec<P>>(prog, roots, SeqPolicy::Restart, th);
}

std::uint64_t native_fib(const core::Thresholds& th, std::array<std::int64_t, 2> r) {
  return run_native(apps::FibProgram{}, apps::FibProgram::root(static_cast<int>(r[0])), th);
}
std::uint64_t native_binomial(const core::Thresholds& th, std::array<std::int64_t, 2> r) {
  return run_native(apps::BinomialProgram{},
                    apps::BinomialProgram::root(static_cast<int>(r[0]), static_cast<int>(r[1])),
                    th);
}
std::uint64_t native_paren(const core::Thresholds& th, std::array<std::int64_t, 2> r) {
  return run_native(apps::ParenthesesProgram{},
                    apps::ParenthesesProgram::root(static_cast<int>(r[0])), th);
}

constexpr const char* kFib = R"(
  def fib(n)
    base n < 2
    reduce n
    spawn fib(n - 1)
    spawn fib(n - 2)
)";
constexpr const char* kBinomial = R"(
  def choose(n, k)
    base k == 0 || k == n
    reduce 1
    spawn choose(n - 1, k - 1)
    spawn choose(n - 1, k)
)";
constexpr const char* kParens = R"(
  def paren(open, close)
    base open == 0 && close == 0
    reduce 1
    spawn if open > 0 : paren(open - 1, close)
    spawn if close > open : paren(open, close - 1)
)";

}  // namespace

int main(int argc, char** argv) {
  tbench::Flags flags(argc, argv);
  const bool paper = flags.get("scale", "default") == "paper";
  const std::string filter = flags.get("programs");
  tbench::Reporter rep("ablation_spec_vm", flags);

  const std::vector<ProgramCase> cases = {
      {"fib", kFib, {paper ? 34 : 29, 0}, native_fib},
      {"binomial", kBinomial, {paper ? 32 : 24, paper ? 13 : 10}, native_binomial},
      {"paren", kParens, {paper ? 16 : 12, paper ? 16 : 12}, native_paren},
  };

  std::printf("spec-language execution tiers (restart policy, sequential scheduler)\n");
  std::printf("%-10s | %10s | %9s %9s %9s %9s | %7s %7s %7s\n", "program", "tasks", "ast(s)",
              "vm(s)", "vm+simd", "native", "vm/ast", "simd/ast", "nat/ast");

  std::vector<double> g_vm, g_simd, g_native;
  for (const auto& c : cases) {
    if (!tbench::selected(filter, c.name)) continue;
    const auto ast = spec::SpecProgram::parse(c.src);
    const auto vm = spec::CompiledSpecProgram::parse(c.src);
    const auto th = core::Thresholds::for_block_size(/*Q=*/4, /*block=*/4096, /*restart=*/256);

    const std::vector ast_roots{ast.make_root({c.root[0], c.root[1]})};
    const std::vector vm_roots{vm.make_root({c.root[0], c.root[1]})};
    const auto info = core::count_tree(ast, ast_roots);

    std::uint64_t r_ast = 0, r_vm = 0, r_simd = 0, r_native = 0;
    const double t_ast = rep.add_timed(rep.make(c.name, "ast", "restart", "soa"), 3, [&] {
      r_ast = core::run_seq<core::SoaExec<spec::SpecProgram>>(ast, ast_roots,
                                                              SeqPolicy::Restart, th);
    });
    const double t_vm = rep.add_timed(rep.make(c.name, "vm", "restart", "soa"), 3, [&] {
      r_vm = core::run_seq<core::SoaExec<spec::CompiledSpecProgram>>(vm, vm_roots,
                                                                     SeqPolicy::Restart, th);
    });
    const double t_simd = rep.add_timed(rep.make(c.name, "vm+simd", "restart", "simd"), 3, [&] {
      r_simd = core::run_seq<core::SimdExec<spec::CompiledSpecProgram>>(
          vm, vm_roots, SeqPolicy::Restart, th);
    });
    const double t_native = rep.add_timed(rep.make(c.name, "native", "restart", "simd"), 3,
                                          [&] { r_native = c.native(th, c.root); });

    if (r_vm != r_ast || r_simd != r_ast || r_native != r_ast) {
      std::printf("MISMATCH %s: ast=%llu vm=%llu simd=%llu native=%llu\n", c.name.c_str(),
                  static_cast<unsigned long long>(r_ast), static_cast<unsigned long long>(r_vm),
                  static_cast<unsigned long long>(r_simd),
                  static_cast<unsigned long long>(r_native));
      return 1;
    }
    std::printf("%-10s | %10llu | %9.4f %9.4f %9.4f %9.4f | %7.2f %7.2f %7.2f\n",
                c.name.c_str(), static_cast<unsigned long long>(info.tasks), t_ast, t_vm,
                t_simd, t_native, t_ast / t_vm, t_ast / t_simd, t_ast / t_native);
    g_vm.push_back(t_ast / t_vm);
    g_simd.push_back(t_ast / t_simd);
    g_native.push_back(t_ast / t_native);
  }
  rep.add_metric(rep.make("geomean", "vm/ast"), "ratio", tbench::geomean(g_vm));
  rep.add_metric(rep.make("geomean", "simd/ast"), "ratio", tbench::geomean(g_simd));
  rep.add_metric(rep.make("geomean", "native/ast"), "ratio", tbench::geomean(g_native));
  std::printf("%-10s | %10s | %9s %9s %9s %9s | %7.2f %7.2f %7.2f\n", "geomean", "", "", "",
              "", "", tbench::geomean(g_vm), tbench::geomean(g_simd),
              tbench::geomean(g_native));
  return rep.finish();
}
