// Query-serving latency/throughput sweep over the hybrid executor.
//
// The serving story: the paper's traversal kernels are "N queries against a
// shared tree" — the shape of an online serving system.  This driver stands
// up the src/serve/ front end (bounded MPMC queue → admission batcher →
// persistent ForkJoinPool) for knn and pointcorr and sweeps offered load ×
// batch policy:
//
//   load=low   open-loop Poisson arrivals at a fixed per-scale rate.
//              Latency stamps use *scheduled* arrival times, so queueing
//              delay from server stalls is charged to every affected query
//              (no coordinated omission).  Here batching trades a bounded
//              wait (--max-wait-us) for denser blocks.
//   load=sat   closed-loop: submit as fast as the queue accepts.  Latency
//              means time-in-system; throughput (completed/busy_seconds) is
//              the capacity measurement where batch=1 — the classic
//              serve-one-at-a-time baseline — must lose to batching,
//              because dense blocks amortize re-expansion exactly as the
//              offline path does.
//
// Multi-kernel/adaptive/deadline rungs over the same front end:
//
//   load=multi     one QueryServer multiplexing knn + pointcorr +
//                  minmaxdist lanes over one pool (closed loop, one
//                  producer thread per kernel); per-kernel records, all
//                  three digests checked against the sequential oracles.
//   load=adaptive  open-loop knn with the rate-derived batch policy
//                  (serve/policy.hpp) at 1x and 4x the base rate; records
//                  the converged max batch ("batch_max", unit "tasks" —
//                  informational, ungated).
//   load=deadline  open-loop knn with per-query deadlines (tight = 2x
//                  max-wait, loose = 100x); JSON carries only the shed
//                  fraction ("shed_rate", unit "shed" — lower-is-better,
//                  deliberately ungated: shed queries depend on host
//                  stalls, so gating them would flake).  No digest — a
//                  shed query's k-best list is legitimately unserved.
//
// Each digest-checked run serves every query id exactly once (round-robin
// over the dataset), so knn's k-best digest is comparable against the
// sequential oracle — serving a query twice would corrupt its neighbor
// list with duplicate inserts.
//
// JSON records (bench-results v1): policy = metric ("p50"/"p99"/"p999" in
// unit "seconds", "qps" in unit "qps" — higher-is-better), variant =
// "load=<mode>/...", layer = "serve".  Latency percentiles carry tail
// noise; the nightly gate uses a wider threshold for them than for
// throughput, and selects only qps/seconds so the shed/tasks records ride
// ungated (see .github/workflows/nightly-bench.yml).
//
// Output: CSV `benchmark,load,batch,p50_us,p99_us,p999_us,qps`.
// Flags: --scale=test|default|paper, --workers=4,
//        --benchmarks=knn,pointcorr,multi,adaptive,deadline,
//        --max-wait-us=1000, --format=json, --out=
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "apps/knn.hpp"
#include "apps/minmaxdist.hpp"
#include "apps/pointcorr.hpp"
#include "bench/support/report.hpp"
#include "lockstep/lockstep_knn.hpp"
#include "lockstep/lockstep_minmax.hpp"
#include "lockstep/lockstep_pointcorr.hpp"
#include "runtime/cacheline.hpp"
#include "runtime/hybrid.hpp"
#include "serve/latency.hpp"
#include "serve/loadgen.hpp"
#include "serve/policy.hpp"
#include "serve/pool_runner.hpp"
#include "serve/router.hpp"
#include "serve/server.hpp"
#include "spatial/kdtree.hpp"

namespace {

struct ScaleConfig {
  std::size_t points = 20000;
  int k = 4;
  float rad2 = 0.02f;
  double low_rate_qps = 5000.0;
  std::vector<std::size_t> batches{1, 16, 64, 256};
};

ScaleConfig scale_config(const std::string& scale) {
  if (scale == "test") return {2000, 4, 0.05f, 2000.0, {1, 32}};
  if (scale == "paper") return {100000, 4, 0.01f, 20000.0, {1, 64, 512}};
  return {};
}

struct RunResult {
  tb::serve::LatencySummary lat;
  double qps = 0.0;
  std::string digest;
};

// Serves every query id in [0, id_space) exactly once through `runner`,
// under the given load and batch policy, and summarizes what came back.
RunResult run_serve(tb::serve::QueryServer::BatchRunner runner, std::int32_t id_space,
                    double rate_qps, const tb::serve::BatchPolicy& policy) {
  tb::serve::ServerOptions sopt;
  sopt.policy = policy;
  tb::serve::QueryServer server(sopt, std::move(runner));
  server.start();
  tb::serve::LoadGenOptions lg;
  lg.rate_qps = rate_qps;
  lg.total = static_cast<std::size_t>(id_space);
  lg.id_space = id_space;
  lg.round_robin = true;
  tb::serve::generate_load(server, lg);
  server.stop();
  RunResult r;
  r.lat = tb::serve::summarize_latencies(server.latencies_s());
  const double busy = server.busy_seconds();
  r.qps = busy > 0 ? static_cast<double>(server.completed()) / busy : 0.0;
  return r;
}

// Schedule-independent knn digest: FNV-1a over the final k-best distances
// (same formula as the table2 suite, so digests cross-check the oracle).
std::string knn_digest(const tb::apps::KnnState& state, std::size_t n) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::int32_t q = 0; q < static_cast<std::int32_t>(n); ++q) {
    for (const float d : state.distances(q)) {
      const auto bits = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(static_cast<double>(d) * 1e6));
      h = (h ^ bits) * 1099511628211ull;
    }
  }
  return std::to_string(h);
}

void record(tbench::Reporter& rep, const std::string& bench, const std::string& variant,
            int workers, const RunResult& r) {
  const auto metric = [&](const char* name, const char* unit, double value) {
    auto proto = rep.make(bench, variant, name, "serve", workers);
    proto.digest = r.digest;
    rep.add_metric(std::move(proto), unit, value);
  };
  metric("p50", "seconds", r.lat.p50);
  metric("p99", "seconds", r.lat.p99);
  metric("p999", "seconds", r.lat.p999);
  metric("qps", "qps", r.qps);
}

std::string variant_name(const char* load, std::size_t batch) {
  return std::string("load=") + load + "/batch=" + std::to_string(batch);
}

void print_row(const std::string& bench, const char* load, std::size_t batch,
               const RunResult& r) {
  std::printf("%s,%s,%zu,%.1f,%.1f,%.1f,%.0f\n", bench.c_str(), load, batch,
              r.lat.p50 * 1e6, r.lat.p99 * 1e6, r.lat.p999 * 1e6, r.qps);
}

}  // namespace

int main(int argc, char** argv) {
  tbench::Flags flags(argc, argv);
  tbench::Reporter rep("serve_latency", flags);
  const ScaleConfig cfg = scale_config(rep.scale());
  const int workers = static_cast<int>(flags.get_int("workers", 4));
  const std::string filter =
      flags.get("benchmarks", "knn,pointcorr,multi,adaptive,deadline");
  const std::int64_t max_wait_ns = flags.get_int("max-wait-us", 1000) * 1000;

  tb::rt::ForkJoinPool pool(workers);
  tb::rt::HybridOptions opt;
  using KnnEngine = tb::lockstep::BlockedTraversal<tb::apps::KnnProgram::simd_width>;
  using PcEngine = tb::lockstep::BlockedTraversal<tb::apps::PointCorrProgram::simd_width>;

  std::printf("benchmark,load,batch,p50_us,p99_us,p999_us,qps\n");

  // (load mode, offered rate): rate 0 = closed-loop saturation.
  const std::pair<const char*, double> loads[] = {{"low", cfg.low_rate_qps}, {"sat", 0.0}};

  if (tbench::selected(filter, "knn")) {
    const auto points = tb::spatial::Bodies::uniform_cube(cfg.points);
    const auto tree = tb::spatial::KdTree::build(points, 16);
    const auto n = static_cast<std::int32_t>(points.size());
    opt.t_reexp = 4 * static_cast<std::size_t>(tb::apps::KnnProgram::simd_width);
    // Oracle digest for the per-run digest field.
    std::string oracle;
    {
      tb::apps::KnnState state(points.size(), cfg.k);
      tb::apps::KnnProgram prog{&points, &tree, &state};
      tb::apps::knn_sequential(prog);
      oracle = knn_digest(state, points.size());
    }
    double sat_qps_b1 = 0.0, sat_qps_batched = 0.0;
    for (const auto& [load, rate] : loads) {
      for (const std::size_t batch : cfg.batches) {
        // Fresh state per run: serving each id exactly once reproduces the
        // offline result, so the digest must match the sequential oracle.
        tb::apps::KnnState state(points.size(), cfg.k);
        tb::apps::KnnProgram prog{&points, &tree, &state};
        auto runner = tb::serve::make_pool_runner<KnnEngine>(
            pool, opt, [&prog, &tree](const std::int32_t* ids, std::size_t count,
                                      KnnEngine& engine) {
              tb::lockstep::blocked_knn_frame(prog, tree.root, ids, count, engine);
            });
        const tb::serve::BatchPolicy policy{batch, batch == 1 ? 0 : max_wait_ns};
        RunResult r = run_serve(std::move(runner), n, rate, policy);
        r.digest = knn_digest(state, points.size());
        if (r.digest != oracle) {
          std::fprintf(stderr, "error: knn serve digest mismatch (%s)\n",
                       variant_name(load, batch).c_str());
          return 1;
        }
        record(rep, "knn", variant_name(load, batch), workers, r);
        print_row("knn", load, batch, r);
        if (std::string(load) == "sat") {
          if (batch == 1) sat_qps_b1 = r.qps;
          else sat_qps_batched = std::max(sat_qps_batched, r.qps);
        }
      }
    }
    if (sat_qps_b1 > 0 && sat_qps_batched > 0) {
      std::printf("# knn saturation: best batched %.0f qps vs batch=1 %.0f qps (%.2fx)\n",
                  sat_qps_batched, sat_qps_b1, sat_qps_batched / sat_qps_b1);
    }
  }

  if (tbench::selected(filter, "pointcorr")) {
    const auto points = tb::spatial::Bodies::uniform_cube(cfg.points);
    const auto tree = tb::spatial::KdTree::build(points, 16);
    const auto n = static_cast<std::int32_t>(points.size());
    tb::apps::PointCorrProgram prog{&points, &tree, cfg.rad2};
    opt.t_reexp = 4 * static_cast<std::size_t>(tb::apps::PointCorrProgram::simd_width);
    const std::uint64_t oracle = tb::apps::pointcorr_sequential(prog);
    for (const auto& [load, rate] : loads) {
      for (const std::size_t batch : cfg.batches) {
        // Per-slot partial counts: slots never run concurrently, padded
        // against false sharing (same idiom as hybrid_pointcorr).
        std::vector<tb::rt::Padded<std::uint64_t>> parts(
            static_cast<std::size_t>(tb::rt::hybrid_slots(pool)));
        auto runner = tb::serve::make_pool_runner<PcEngine>(
            pool, opt, [&prog, &tree, &parts](const std::int32_t* ids, std::size_t count,
                                              PcEngine& engine) {
              const auto slot =
                  static_cast<std::size_t>(tb::rt::ForkJoinPool::worker_id());
              parts[slot].value +=
                  tb::lockstep::blocked_pointcorr_frame(prog, tree.root, ids, count, engine);
            });
        const tb::serve::BatchPolicy policy{batch, batch == 1 ? 0 : max_wait_ns};
        RunResult r = run_serve(std::move(runner), n, rate, policy);
        std::uint64_t total = 0;
        for (const auto& p : parts) total += p.value;
        r.digest = std::to_string(total);
        if (total != oracle) {
          std::fprintf(stderr, "error: pointcorr serve count mismatch (%s)\n",
                       variant_name(load, batch).c_str());
          return 1;
        }
        record(rep, "pointcorr", variant_name(load, batch), workers, r);
        print_row("pointcorr", load, batch, r);
      }
    }
  }

  // ---- load=multi: one server, three kernel lanes ---------------------------
  if (tbench::selected(filter, "multi")) {
    const auto points = tb::spatial::Bodies::uniform_cube(cfg.points);
    const auto tree = tb::spatial::KdTree::build(points, 16);
    const auto n = static_cast<std::int32_t>(points.size());
    using MmEngine =
        tb::lockstep::BlockedTraversal<tb::apps::MinmaxDistProgram::simd_width>;

    // Sequential oracles for all three lanes.
    std::string knn_oracle;
    {
      tb::apps::KnnState state(points.size(), cfg.k);
      tb::apps::KnnProgram prog{&points, &tree, &state};
      tb::apps::knn_sequential(prog);
      knn_oracle = knn_digest(state, points.size());
    }
    tb::apps::PointCorrProgram pc_oracle_prog{&points, &tree, cfg.rad2};
    const std::uint64_t pc_oracle = tb::apps::pointcorr_sequential(pc_oracle_prog);
    std::string mm_oracle;
    {
      tb::apps::MinmaxDistState state(points.size());
      tb::apps::MinmaxDistProgram prog{&points, &tree, &state};
      tb::apps::minmaxdist_sequential(prog);
      mm_oracle = tb::apps::minmaxdist_digest(state);
    }

    for (const std::size_t batch : cfg.batches) {
      tb::apps::KnnState knn_state(points.size(), cfg.k);
      tb::apps::KnnProgram knn_prog{&points, &tree, &knn_state};
      tb::apps::PointCorrProgram pc_prog{&points, &tree, cfg.rad2};
      tb::apps::MinmaxDistState mm_state(points.size());
      tb::apps::MinmaxDistProgram mm_prog{&points, &tree, &mm_state};
      std::vector<tb::rt::Padded<std::uint64_t>> pc_parts(
          static_cast<std::size_t>(tb::rt::hybrid_slots(pool)));

      tb::serve::ServerOptions sopt;
      tb::serve::QueryServer server(sopt);
      tb::serve::KernelOptions kopt;
      kopt.policy = {batch, batch == 1 ? 0 : max_wait_ns};
      tb::rt::HybridOptions kopt_hy = opt;
      kopt_hy.t_reexp = 4 * static_cast<std::size_t>(tb::apps::KnnProgram::simd_width);
      const int k_knn = server.register_kernel(
          "knn", kopt,
          tb::serve::make_pool_runner<KnnEngine>(
              pool, kopt_hy,
              [&knn_prog, &tree](const std::int32_t* ids, std::size_t count,
                                 KnnEngine& engine) {
                tb::lockstep::blocked_knn_frame(knn_prog, tree.root, ids, count, engine);
              }));
      kopt_hy.t_reexp = 4 * static_cast<std::size_t>(tb::apps::PointCorrProgram::simd_width);
      const int k_pc = server.register_kernel(
          "pointcorr", kopt,
          tb::serve::make_pool_runner<PcEngine>(
              pool, kopt_hy,
              [&pc_prog, &tree, &pc_parts](const std::int32_t* ids, std::size_t count,
                                           PcEngine& engine) {
                const auto slot =
                    static_cast<std::size_t>(tb::rt::ForkJoinPool::worker_id());
                pc_parts[slot].value += tb::lockstep::blocked_pointcorr_frame(
                    pc_prog, tree.root, ids, count, engine);
              }));
      kopt_hy.t_reexp =
          4 * static_cast<std::size_t>(tb::apps::MinmaxDistProgram::simd_width);
      const int k_mm = server.register_kernel(
          "minmaxdist", kopt,
          tb::serve::make_pool_runner<MmEngine>(
              pool, kopt_hy,
              [&mm_prog, &tree](const std::int32_t* ids, std::size_t count,
                                MmEngine& engine) {
                tb::lockstep::blocked_minmaxdist_frame(mm_prog, tree.root, ids, count,
                                                       engine);
              }));

      server.start();
      // One closed-loop producer per kernel so the admission thread always
      // sees a mixed stream — the EDF arbitration path, not three serial
      // single-lane phases.
      std::vector<std::thread> producers;
      for (const int k : {k_knn, k_pc, k_mm}) {
        producers.emplace_back([&server, k, n] {
          tb::serve::LoadGenOptions lg;
          lg.rate_qps = 0.0;
          lg.total = static_cast<std::size_t>(n);
          lg.id_space = n;
          lg.round_robin = true;
          lg.kernel = k;
          tb::serve::generate_load(server, lg);
        });
      }
      for (auto& t : producers) t.join();
      server.stop();

      std::uint64_t pc_total = 0;
      for (const auto& p : pc_parts) pc_total += p.value;
      const struct {
        const char* bench;
        int k;
        std::string digest;
        std::string oracle;
      } lanes[] = {
          {"knn", k_knn, knn_digest(knn_state, points.size()), knn_oracle},
          {"pointcorr", k_pc, std::to_string(pc_total), std::to_string(pc_oracle)},
          {"minmaxdist", k_mm, tb::apps::minmaxdist_digest(mm_state), mm_oracle},
      };
      for (const auto& lane : lanes) {
        if (lane.digest != lane.oracle) {
          std::fprintf(stderr, "error: %s multi-kernel serve digest mismatch (%s)\n",
                       lane.bench, variant_name("multi", batch).c_str());
          return 1;
        }
        RunResult r;
        r.lat = tb::serve::summarize_latencies(server.latencies_s(lane.k));
        const double busy = server.busy_seconds(lane.k);
        r.qps = busy > 0 ? static_cast<double>(server.completed(lane.k)) / busy : 0.0;
        r.digest = lane.digest;
        record(rep, lane.bench, variant_name("multi", batch), workers, r);
        print_row(lane.bench, "multi", batch, r);
      }
    }
  }

  // ---- load=adaptive: rate-derived batch policy -----------------------------
  if (tbench::selected(filter, "adaptive")) {
    const auto points = tb::spatial::Bodies::uniform_cube(cfg.points);
    const auto tree = tb::spatial::KdTree::build(points, 16);
    const auto n = static_cast<std::int32_t>(points.size());
    opt.t_reexp = 4 * static_cast<std::size_t>(tb::apps::KnnProgram::simd_width);
    std::string oracle;
    {
      tb::apps::KnnState state(points.size(), cfg.k);
      tb::apps::KnnProgram prog{&points, &tree, &state};
      tb::apps::knn_sequential(prog);
      oracle = knn_digest(state, points.size());
    }
    const std::pair<const char*, double> rates[] = {{"rate=1x", cfg.low_rate_qps},
                                                    {"rate=4x", 4 * cfg.low_rate_qps}};
    for (const auto& [tag, rate] : rates) {
      tb::apps::KnnState state(points.size(), cfg.k);
      tb::apps::KnnProgram prog{&points, &tree, &state};
      tb::serve::QueryServer server(tb::serve::ServerOptions{});
      tb::serve::KernelOptions kopt;
      kopt.adaptive.enabled = true;
      kopt.adaptive.target_window_ns = max_wait_ns;
      server.register_kernel(
          "knn", kopt,
          tb::serve::make_pool_runner<KnnEngine>(
              pool, opt,
              [&prog, &tree](const std::int32_t* ids, std::size_t count,
                             KnnEngine& engine) {
                tb::lockstep::blocked_knn_frame(prog, tree.root, ids, count, engine);
              }));
      server.start();
      tb::serve::LoadGenOptions lg;
      lg.rate_qps = rate;
      lg.total = static_cast<std::size_t>(n);
      lg.id_space = n;
      lg.round_robin = true;
      tb::serve::generate_load(server, lg);
      server.stop();

      RunResult r;
      r.lat = tb::serve::summarize_latencies(server.latencies_s());
      const double busy = server.busy_seconds();
      r.qps = busy > 0 ? static_cast<double>(server.completed()) / busy : 0.0;
      r.digest = knn_digest(state, points.size());
      if (r.digest != oracle) {
        std::fprintf(stderr, "error: knn adaptive serve digest mismatch (%s)\n", tag);
        return 1;
      }
      const std::string variant = std::string("load=adaptive/") + tag;
      record(rep, "knn", variant, workers, r);
      {
        // Converged batch ceiling — what the EWMA controller settled on.
        auto proto = rep.make("knn", variant, "batch_max", "serve", workers);
        proto.digest = r.digest;
        rep.add_metric(std::move(proto), "tasks",
                       static_cast<double>(server.max_batch_seen()));
      }
      print_row("knn", "adaptive", server.max_batch_seen(), r);
    }
  }

  // ---- load=deadline: shed-on-admission -------------------------------------
  if (tbench::selected(filter, "deadline")) {
    const auto points = tb::spatial::Bodies::uniform_cube(cfg.points);
    const auto tree = tb::spatial::KdTree::build(points, 16);
    const auto n = static_cast<std::int32_t>(points.size());
    opt.t_reexp = 4 * static_cast<std::size_t>(tb::apps::KnnProgram::simd_width);
    tb::apps::KnnState state(points.size(), cfg.k);  // no digest: sheds are legal
    tb::apps::KnnProgram prog{&points, &tree, &state};
    const std::pair<const char*, std::int64_t> budgets[] = {
        {"rel=tight", 2 * max_wait_ns}, {"rel=loose", 100 * max_wait_ns}};
    for (const auto& [tag, budget_ns] : budgets) {
      tb::serve::ServerOptions sopt;
      sopt.policy = {/*max_batch=*/64, max_wait_ns};
      tb::serve::QueryServer server(
          sopt, tb::serve::make_pool_runner<KnnEngine>(
                    pool, opt,
                    [&prog, &tree](const std::int32_t* ids, std::size_t count,
                                   KnnEngine& engine) {
                      tb::lockstep::blocked_knn_frame(prog, tree.root, ids, count, engine);
                    }));
      server.start();
      tb::serve::LoadGenOptions lg;
      lg.rate_qps = cfg.low_rate_qps;
      lg.total = static_cast<std::size_t>(n);
      lg.id_space = n;
      lg.deadline_rel_ns = budget_ns;
      const std::size_t offered = tb::serve::generate_load(server, lg);
      server.stop();

      RunResult r;
      r.lat = tb::serve::summarize_latencies(server.latencies_s());
      const double busy = server.busy_seconds();
      r.qps = busy > 0 ? static_cast<double>(server.completed()) / busy : 0.0;
      const double shed_rate =
          offered > 0 ? static_cast<double>(server.shed()) / static_cast<double>(offered)
                      : 0.0;
      // JSON carries only the shed fraction: latency/qps of a shedding run
      // are conditioned on which queries survived, so gating them would
      // compare different populations across hosts.
      auto proto =
          rep.make("knn", std::string("load=deadline/") + tag, "shed_rate", "serve",
                   workers);
      rep.add_metric(std::move(proto), "shed", shed_rate);
      std::printf("# knn deadline %s: offered %zu shed %zu (%.1f%%), served_late %zu\n",
                  tag, offered, server.shed(), shed_rate * 100.0, server.served_late());
      print_row("knn", "deadline", static_cast<std::size_t>(budget_ns / max_wait_ns), r);
    }
  }

  return rep.finish();
}
