// Query-serving latency/throughput sweep over the hybrid executor.
//
// The serving story: the paper's traversal kernels are "N queries against a
// shared tree" — the shape of an online serving system.  This driver stands
// up the src/serve/ front end (bounded MPMC queue → admission batcher →
// persistent ForkJoinPool) for knn and pointcorr and sweeps offered load ×
// batch policy:
//
//   load=low   open-loop Poisson arrivals at a fixed per-scale rate.
//              Latency stamps use *scheduled* arrival times, so queueing
//              delay from server stalls is charged to every affected query
//              (no coordinated omission).  Here batching trades a bounded
//              wait (--max-wait-us) for denser blocks.
//   load=sat   closed-loop: submit as fast as the queue accepts.  Latency
//              means time-in-system; throughput (completed/busy_seconds) is
//              the capacity measurement where batch=1 — the classic
//              serve-one-at-a-time baseline — must lose to batching,
//              because dense blocks amortize re-expansion exactly as the
//              offline path does.
//
// Multi-kernel/adaptive/deadline rungs over the same front end:
//
//   load=multi     one QueryServer multiplexing knn + pointcorr +
//                  minmaxdist lanes over one pool (closed loop, one
//                  producer thread per kernel); per-kernel records, all
//                  three digests checked against the sequential oracles.
//   load=adaptive  open-loop knn with the rate-derived batch policy
//                  (serve/policy.hpp) at 1x and 4x the base rate; records
//                  the converged max batch ("batch_max", unit "tasks" —
//                  informational, ungated).
//   load=deadline  open-loop knn with per-query deadlines (tight = 2x
//                  max-wait, loose = 100x); JSON carries only the shed
//                  fraction ("shed_rate", unit "shed" — lower-is-better,
//                  deliberately ungated: shed queries depend on host
//                  stalls, so gating them would flake).  No digest — a
//                  shed query's k-best list is legitimately unserved.
//   isa            per-ISA serving rungs: one closed-loop knn run and one
//                  multi-kernel run per runnable dispatch table, every
//                  lane forced to that table's width
//                  (ServerOptions::forced_width), variants carrying the
//                  "isa=<name>" identity fragment (tbench::isa_variant) so
//                  the nightly same-host pair can see serving-throughput
//                  deltas per ISA.  Digest-checked per table — serving
//                  must be bit-identical across every ISA level.
//
// All runners are table-driven (serve/pool_runner.hpp RunnerFactory): a
// lane executes whatever kernel table it was bound to at registration, so
// the default rungs follow TB_SIMD_ISA and the isa rungs pin each level.
//
// Each digest-checked run serves every query id exactly once (round-robin
// over the dataset), so knn's k-best digest is comparable against the
// sequential oracle — serving a query twice would corrupt its neighbor
// list with duplicate inserts.
//
// JSON records (bench-results v1): policy = metric ("p50"/"p99"/"p999" in
// unit "seconds", "qps" in unit "qps" — higher-is-better), variant =
// "load=<mode>/...", layer = "serve".  Latency percentiles carry tail
// noise; the nightly gate uses a wider threshold for them than for
// throughput, and selects only qps/seconds so the shed/tasks records ride
// ungated (see .github/workflows/nightly-bench.yml).
//
// Output: CSV `benchmark,load,batch,p50_us,p99_us,p999_us,qps`.
// Flags: --scale=test|default|paper, --workers=4,
//        --benchmarks=knn,pointcorr,multi,adaptive,deadline,isa,
//        --max-wait-us=1000, --format=json, --out=
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "apps/knn.hpp"
#include "apps/minmaxdist.hpp"
#include "apps/pointcorr.hpp"
#include "bench/suite.hpp"
#include "bench/support/report.hpp"
#include "runtime/cacheline.hpp"
#include "runtime/hybrid.hpp"
#include "serve/latency.hpp"
#include "serve/loadgen.hpp"
#include "serve/policy.hpp"
#include "serve/pool_runner.hpp"
#include "serve/router.hpp"
#include "serve/server.hpp"
#include "simd/dispatch.hpp"
#include "spatial/kdtree.hpp"

namespace {

struct ScaleConfig {
  std::size_t points = 20000;
  int k = 4;
  float rad2 = 0.02f;
  double low_rate_qps = 5000.0;
  std::vector<std::size_t> batches{1, 16, 64, 256};
};

ScaleConfig scale_config(const std::string& scale) {
  if (scale == "test") return {2000, 4, 0.05f, 2000.0, {1, 32}};
  if (scale == "paper") return {100000, 4, 0.01f, 20000.0, {1, 64, 512}};
  return {};
}

struct RunResult {
  tb::serve::LatencySummary lat;
  double qps = 0.0;
  std::string digest;
};

// Serves every query id in [0, id_space) exactly once through a runner
// built from the resolved kernel table (forced_width 0 = active table),
// under the given load and batch policy, and summarizes what came back.
RunResult run_serve(const tb::serve::RunnerFactory& factory, std::int32_t id_space,
                    double rate_qps, const tb::serve::BatchPolicy& policy,
                    int forced_width = 0) {
  tb::serve::ServerOptions sopt;
  sopt.policy = policy;
  sopt.forced_width = forced_width;
  tb::serve::QueryServer server(sopt, factory);
  server.start();
  tb::serve::LoadGenOptions lg;
  lg.rate_qps = rate_qps;
  lg.total = static_cast<std::size_t>(id_space);
  lg.id_space = id_space;
  lg.round_robin = true;
  tb::serve::generate_load(server, lg);
  server.stop();
  RunResult r;
  r.lat = tb::serve::summarize_latencies(server.latencies_s());
  const double busy = server.busy_seconds();
  r.qps = busy > 0 ? static_cast<double>(server.completed()) / busy : 0.0;
  return r;
}

// Schedule-independent knn digest: FNV-1a over the final k-best distances
// (same formula as the table2 suite, so digests cross-check the oracle).
std::string knn_digest(const tb::apps::KnnState& state, std::size_t n) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::int32_t q = 0; q < static_cast<std::int32_t>(n); ++q) {
    for (const float d : state.distances(q)) {
      const auto bits = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(static_cast<double>(d) * 1e6));
      h = (h ^ bits) * 1099511628211ull;
    }
  }
  return std::to_string(h);
}

void record(tbench::Reporter& rep, const std::string& bench, const std::string& variant,
            int workers, const RunResult& r) {
  const auto metric = [&](const char* name, const char* unit, double value) {
    auto proto = rep.make(bench, variant, name, "serve", workers);
    proto.digest = r.digest;
    rep.add_metric(std::move(proto), unit, value);
  };
  metric("p50", "seconds", r.lat.p50);
  metric("p99", "seconds", r.lat.p99);
  metric("p999", "seconds", r.lat.p999);
  metric("qps", "qps", r.qps);
}

std::string variant_name(const char* load, std::size_t batch) {
  return std::string("load=") + load + "/batch=" + std::to_string(batch);
}

void print_row(const std::string& bench, const char* load, std::size_t batch,
               const RunResult& r) {
  std::printf("%s,%s,%zu,%.1f,%.1f,%.1f,%.0f\n", bench.c_str(), load, batch,
              r.lat.p50 * 1e6, r.lat.p99 * 1e6, r.lat.p999 * 1e6, r.qps);
}

// Sequential-oracle digests the multi-kernel rungs check against.
struct MultiOracles {
  std::string knn;
  std::uint64_t pc = 0;
  std::string mm;
};

MultiOracles multi_oracles(const tb::spatial::Bodies& points,
                           const tb::spatial::KdTree& tree, const ScaleConfig& cfg) {
  MultiOracles o;
  {
    tb::apps::KnnState state(points.size(), cfg.k);
    tb::apps::KnnProgram prog{&points, &tree, &state};
    tb::apps::knn_sequential(prog);
    o.knn = knn_digest(state, points.size());
  }
  tb::apps::PointCorrProgram pc_prog{&points, &tree, cfg.rad2};
  o.pc = tb::apps::pointcorr_sequential(pc_prog);
  {
    tb::apps::MinmaxDistState state(points.size());
    tb::apps::MinmaxDistProgram prog{&points, &tree, &state};
    tb::apps::minmaxdist_sequential(prog);
    o.mm = tb::apps::minmaxdist_digest(state);
  }
  return o;
}

// One multi-kernel closed-loop rung: knn + pointcorr + minmaxdist lanes
// over one pool, one producer per lane, every lane forced to
// `forced_width` (0 = the active table — shared by load=multi and the
// per-ISA isa rungs).  Records per-kernel latency/qps under `variant`;
// returns false on any digest mismatch.
bool run_multi_rung(tbench::Reporter& rep, tb::rt::ForkJoinPool& pool,
                    const tb::spatial::Bodies& points, const tb::spatial::KdTree& tree,
                    const ScaleConfig& cfg, const MultiOracles& oracle, std::size_t batch,
                    std::int64_t max_wait_ns, int forced_width, const std::string& variant,
                    const char* load_label, int workers) {
  const auto n = static_cast<std::int32_t>(points.size());
  tb::apps::KnnState knn_state(points.size(), cfg.k);
  tb::apps::KnnProgram knn_prog{&points, &tree, &knn_state};
  tb::apps::PointCorrProgram pc_prog{&points, &tree, cfg.rad2};
  tb::apps::MinmaxDistState mm_state(points.size());
  tb::apps::MinmaxDistProgram mm_prog{&points, &tree, &mm_state};
  std::vector<tb::rt::Padded<std::uint64_t>> pc_parts(
      static_cast<std::size_t>(tb::rt::hybrid_slots(pool)));

  tb::serve::ServerOptions sopt;
  sopt.forced_width = forced_width;
  tb::serve::QueryServer server(sopt);
  tb::serve::KernelOptions kopt;
  kopt.policy = {batch, batch == 1 ? 0 : max_wait_ns};
  tb::rt::HybridOptions hopt;
  const int width = forced_width != 0 ? forced_width : tb::simd::kernels().width;
  hopt.t_reexp = 4 * static_cast<std::size_t>(width);
  const int k_knn =
      server.register_kernel("knn", kopt, tb::serve::knn_pool_runner(pool, hopt, knn_prog));
  const int k_pc = server.register_kernel(
      "pointcorr", kopt,
      tb::serve::pointcorr_pool_runner(pool, hopt, pc_prog, pc_parts.data()));
  const int k_mm = server.register_kernel(
      "minmaxdist", kopt, tb::serve::minmaxdist_pool_runner(pool, hopt, mm_prog));

  server.start();
  // One closed-loop producer per kernel so the admission thread always
  // sees a mixed stream — the EDF arbitration path, not three serial
  // single-lane phases.
  std::vector<std::thread> producers;
  for (const int k : {k_knn, k_pc, k_mm}) {
    producers.emplace_back([&server, k, n] {
      tb::serve::LoadGenOptions lg;
      lg.rate_qps = 0.0;
      lg.total = static_cast<std::size_t>(n);
      lg.id_space = n;
      lg.round_robin = true;
      lg.kernel = k;
      tb::serve::generate_load(server, lg);
    });
  }
  for (auto& t : producers) t.join();
  server.stop();

  std::uint64_t pc_total = 0;
  for (const auto& p : pc_parts) pc_total += p.value;
  const struct {
    const char* bench;
    int k;
    std::string digest;
    std::string want;
  } lanes[] = {
      {"knn", k_knn, knn_digest(knn_state, points.size()), oracle.knn},
      {"pointcorr", k_pc, std::to_string(pc_total), std::to_string(oracle.pc)},
      {"minmaxdist", k_mm, tb::apps::minmaxdist_digest(mm_state), oracle.mm},
  };
  for (const auto& lane : lanes) {
    if (lane.digest != lane.want) {
      std::fprintf(stderr, "error: %s multi-kernel serve digest mismatch (%s)\n",
                   lane.bench, variant.c_str());
      return false;
    }
    RunResult r;
    r.lat = tb::serve::summarize_latencies(server.latencies_s(lane.k));
    const double busy = server.busy_seconds(lane.k);
    r.qps = busy > 0 ? static_cast<double>(server.completed(lane.k)) / busy : 0.0;
    r.digest = lane.digest;
    record(rep, lane.bench, variant, workers, r);
    print_row(lane.bench, load_label, batch, r);
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  tbench::Flags flags(argc, argv);
  tbench::Reporter rep("serve_latency", flags);
  const ScaleConfig cfg = scale_config(rep.scale());
  const int workers = static_cast<int>(flags.get_int("workers", 4));
  const std::string filter =
      flags.get("benchmarks", "knn,pointcorr,multi,adaptive,deadline,isa");
  const std::int64_t max_wait_ns = flags.get_int("max-wait-us", 1000) * 1000;

  tb::rt::ForkJoinPool pool(workers);
  tb::rt::HybridOptions opt;
  // All default rungs serve at the active table's width (TB_SIMD_ISA
  // honored); re-expansion threshold follows the serving lane width.
  const int active_width = tb::simd::kernels().width;

  std::printf("benchmark,load,batch,p50_us,p99_us,p999_us,qps\n");

  // (load mode, offered rate): rate 0 = closed-loop saturation.
  const std::pair<const char*, double> loads[] = {{"low", cfg.low_rate_qps}, {"sat", 0.0}};

  if (tbench::selected(filter, "knn")) {
    const auto points = tb::spatial::Bodies::uniform_cube(cfg.points);
    const auto tree = tb::spatial::KdTree::build(points, 16);
    const auto n = static_cast<std::int32_t>(points.size());
    opt.t_reexp = 4 * static_cast<std::size_t>(active_width);
    // Oracle digest for the per-run digest field.
    std::string oracle;
    {
      tb::apps::KnnState state(points.size(), cfg.k);
      tb::apps::KnnProgram prog{&points, &tree, &state};
      tb::apps::knn_sequential(prog);
      oracle = knn_digest(state, points.size());
    }
    double sat_qps_b1 = 0.0, sat_qps_batched = 0.0;
    for (const auto& [load, rate] : loads) {
      for (const std::size_t batch : cfg.batches) {
        // Fresh state per run: serving each id exactly once reproduces the
        // offline result, so the digest must match the sequential oracle.
        tb::apps::KnnState state(points.size(), cfg.k);
        tb::apps::KnnProgram prog{&points, &tree, &state};
        const tb::serve::BatchPolicy policy{batch, batch == 1 ? 0 : max_wait_ns};
        RunResult r =
            run_serve(tb::serve::knn_pool_runner(pool, opt, prog), n, rate, policy);
        r.digest = knn_digest(state, points.size());
        if (r.digest != oracle) {
          std::fprintf(stderr, "error: knn serve digest mismatch (%s)\n",
                       variant_name(load, batch).c_str());
          return 1;
        }
        record(rep, "knn", variant_name(load, batch), workers, r);
        print_row("knn", load, batch, r);
        if (std::string(load) == "sat") {
          if (batch == 1) sat_qps_b1 = r.qps;
          else sat_qps_batched = std::max(sat_qps_batched, r.qps);
        }
      }
    }
    if (sat_qps_b1 > 0 && sat_qps_batched > 0) {
      std::printf("# knn saturation: best batched %.0f qps vs batch=1 %.0f qps (%.2fx)\n",
                  sat_qps_batched, sat_qps_b1, sat_qps_batched / sat_qps_b1);
    }
  }

  if (tbench::selected(filter, "pointcorr")) {
    const auto points = tb::spatial::Bodies::uniform_cube(cfg.points);
    const auto tree = tb::spatial::KdTree::build(points, 16);
    const auto n = static_cast<std::int32_t>(points.size());
    tb::apps::PointCorrProgram prog{&points, &tree, cfg.rad2};
    opt.t_reexp = 4 * static_cast<std::size_t>(active_width);
    const std::uint64_t oracle = tb::apps::pointcorr_sequential(prog);
    for (const auto& [load, rate] : loads) {
      for (const std::size_t batch : cfg.batches) {
        // Per-slot partial counts: slots never run concurrently, padded
        // against false sharing (same idiom as hybrid_pointcorr).
        std::vector<tb::rt::Padded<std::uint64_t>> parts(
            static_cast<std::size_t>(tb::rt::hybrid_slots(pool)));
        const tb::serve::BatchPolicy policy{batch, batch == 1 ? 0 : max_wait_ns};
        RunResult r = run_serve(
            tb::serve::pointcorr_pool_runner(pool, opt, prog, parts.data()), n, rate,
            policy);
        std::uint64_t total = 0;
        for (const auto& p : parts) total += p.value;
        r.digest = std::to_string(total);
        if (total != oracle) {
          std::fprintf(stderr, "error: pointcorr serve count mismatch (%s)\n",
                       variant_name(load, batch).c_str());
          return 1;
        }
        record(rep, "pointcorr", variant_name(load, batch), workers, r);
        print_row("pointcorr", load, batch, r);
      }
    }
  }

  // ---- load=multi: one server, three kernel lanes ---------------------------
  if (tbench::selected(filter, "multi")) {
    const auto points = tb::spatial::Bodies::uniform_cube(cfg.points);
    const auto tree = tb::spatial::KdTree::build(points, 16);
    const MultiOracles oracle = multi_oracles(points, tree, cfg);
    for (const std::size_t batch : cfg.batches) {
      if (!run_multi_rung(rep, pool, points, tree, cfg, oracle, batch, max_wait_ns,
                          /*forced_width=*/0, variant_name("multi", batch), "multi",
                          workers)) {
        return 1;
      }
    }
  }

  // ---- per-ISA rungs: every runnable table, lanes forced to its width -------
  if (tbench::selected(filter, "isa")) {
    const auto points = tb::spatial::Bodies::uniform_cube(cfg.points);
    const auto tree = tb::spatial::KdTree::build(points, 16);
    const auto n = static_cast<std::int32_t>(points.size());
    const MultiOracles oracle = multi_oracles(points, tree, cfg);
    // One representative batch size: the largest of the scale's ladder —
    // the regime where lane width actually shows in throughput.
    const std::size_t batch = cfg.batches.back();
    int num_tables = 0;
    const auto* const* tables = tb::simd::available_tables(num_tables);
    for (int ti = 0; ti < num_tables; ++ti) {
      const tb::simd::KernelTable* kt = tables[ti];
      const std::string iv = tbench::isa_variant(*kt);
      tb::rt::HybridOptions fopt;
      fopt.t_reexp = 4 * static_cast<std::size_t>(kt->width);

      // Closed-loop single-kernel knn at this table's width.
      tb::apps::KnnState state(points.size(), cfg.k);
      tb::apps::KnnProgram prog{&points, &tree, &state};
      const tb::serve::BatchPolicy policy{batch, batch == 1 ? 0 : max_wait_ns};
      RunResult r = run_serve(tb::serve::knn_pool_runner(pool, fopt, prog), n,
                              /*rate_qps=*/0.0, policy, kt->width);
      r.digest = knn_digest(state, points.size());
      if (r.digest != oracle.knn) {
        std::fprintf(stderr, "error: knn serve digest mismatch (load=sat/%s)\n",
                     iv.c_str());
        return 1;
      }
      const std::string sat_variant =
          "load=sat/" + iv + "/batch=" + std::to_string(batch);
      record(rep, "knn", sat_variant, workers, r);
      print_row("knn", ("sat/" + iv).c_str(), batch, r);

      // Mixed three-lane traffic with every lane pinned to this table.
      if (!run_multi_rung(rep, pool, points, tree, cfg, oracle, batch, max_wait_ns,
                          kt->width, "load=multi/" + iv + "/batch=" + std::to_string(batch),
                          ("multi/" + iv).c_str(), workers)) {
        return 1;
      }
    }
  }

  // ---- load=adaptive: rate-derived batch policy -----------------------------
  if (tbench::selected(filter, "adaptive")) {
    const auto points = tb::spatial::Bodies::uniform_cube(cfg.points);
    const auto tree = tb::spatial::KdTree::build(points, 16);
    const auto n = static_cast<std::int32_t>(points.size());
    opt.t_reexp = 4 * static_cast<std::size_t>(active_width);
    std::string oracle;
    {
      tb::apps::KnnState state(points.size(), cfg.k);
      tb::apps::KnnProgram prog{&points, &tree, &state};
      tb::apps::knn_sequential(prog);
      oracle = knn_digest(state, points.size());
    }
    const std::pair<const char*, double> rates[] = {{"rate=1x", cfg.low_rate_qps},
                                                    {"rate=4x", 4 * cfg.low_rate_qps}};
    for (const auto& [tag, rate] : rates) {
      tb::apps::KnnState state(points.size(), cfg.k);
      tb::apps::KnnProgram prog{&points, &tree, &state};
      tb::serve::QueryServer server(tb::serve::ServerOptions{});
      tb::serve::KernelOptions kopt;
      kopt.adaptive.enabled = true;
      kopt.adaptive.target_window_ns = max_wait_ns;
      server.register_kernel("knn", kopt, tb::serve::knn_pool_runner(pool, opt, prog));
      server.start();
      tb::serve::LoadGenOptions lg;
      lg.rate_qps = rate;
      lg.total = static_cast<std::size_t>(n);
      lg.id_space = n;
      lg.round_robin = true;
      tb::serve::generate_load(server, lg);
      server.stop();

      RunResult r;
      r.lat = tb::serve::summarize_latencies(server.latencies_s());
      const double busy = server.busy_seconds();
      r.qps = busy > 0 ? static_cast<double>(server.completed()) / busy : 0.0;
      r.digest = knn_digest(state, points.size());
      if (r.digest != oracle) {
        std::fprintf(stderr, "error: knn adaptive serve digest mismatch (%s)\n", tag);
        return 1;
      }
      const std::string variant = std::string("load=adaptive/") + tag;
      record(rep, "knn", variant, workers, r);
      {
        // Converged batch ceiling — what the EWMA controller settled on.
        auto proto = rep.make("knn", variant, "batch_max", "serve", workers);
        proto.digest = r.digest;
        rep.add_metric(std::move(proto), "tasks",
                       static_cast<double>(server.max_batch_seen()));
      }
      print_row("knn", "adaptive", server.max_batch_seen(), r);
    }
  }

  // ---- load=deadline: shed-on-admission -------------------------------------
  if (tbench::selected(filter, "deadline")) {
    const auto points = tb::spatial::Bodies::uniform_cube(cfg.points);
    const auto tree = tb::spatial::KdTree::build(points, 16);
    const auto n = static_cast<std::int32_t>(points.size());
    opt.t_reexp = 4 * static_cast<std::size_t>(active_width);
    tb::apps::KnnState state(points.size(), cfg.k);  // no digest: sheds are legal
    tb::apps::KnnProgram prog{&points, &tree, &state};
    const std::pair<const char*, std::int64_t> budgets[] = {
        {"rel=tight", 2 * max_wait_ns}, {"rel=loose", 100 * max_wait_ns}};
    for (const auto& [tag, budget_ns] : budgets) {
      tb::serve::ServerOptions sopt;
      sopt.policy = {/*max_batch=*/64, max_wait_ns};
      tb::serve::QueryServer server(sopt, tb::serve::knn_pool_runner(pool, opt, prog));
      server.start();
      tb::serve::LoadGenOptions lg;
      lg.rate_qps = cfg.low_rate_qps;
      lg.total = static_cast<std::size_t>(n);
      lg.id_space = n;
      lg.deadline_rel_ns = budget_ns;
      const std::size_t offered = tb::serve::generate_load(server, lg);
      server.stop();

      RunResult r;
      r.lat = tb::serve::summarize_latencies(server.latencies_s());
      const double busy = server.busy_seconds();
      r.qps = busy > 0 ? static_cast<double>(server.completed()) / busy : 0.0;
      const double shed_rate =
          offered > 0 ? static_cast<double>(server.shed()) / static_cast<double>(offered)
                      : 0.0;
      // JSON carries only the shed fraction: latency/qps of a shedding run
      // are conditioned on which queries survived, so gating them would
      // compare different populations across hosts.
      auto proto =
          rep.make("knn", std::string("load=deadline/") + tag, "shed_rate", "serve",
                   workers);
      rep.add_metric(std::move(proto), "shed", shed_rate);
      std::printf("# knn deadline %s: offered %zu shed %zu (%.1f%%), served_late %zu\n",
                  tag, offered, server.shed(), shed_rate * 100.0, server.served_late());
      print_row("knn", "deadline", static_cast<std::size_t>(budget_ns / max_wait_ns), r);
    }
  }

  return rep.finish();
}
