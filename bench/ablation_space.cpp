// Ablation — the space/parallelism trade of §3.5 and the Lemma 8 bound.
//
// Sweeps the block-size cap t_dfe and reports, per benchmark and policy,
// the SIMD utilization (what larger blocks buy) against the peak number of
// resident tasks (what they cost), measured by the real sequential
// schedulers.  A second section runs the multicore simulator with space
// tracking and compares the measured peak against Lemma 8's h·k·Q·P
// envelope across core counts.
//
// Flags: --scale=, --benchmarks=, --max-exp=N (default 14), --format=json, --out=
#include <cstdio>
#include <string>

#include "bench/support/report.hpp"
#include "bench/suite.hpp"
#include "sim/comp_tree.hpp"
#include "sim/par_sim.hpp"

int main(int argc, char** argv) {
  tbench::Flags flags(argc, argv);
  const std::string scale = flags.get("scale", "default");
  const std::string filter = flags.get("benchmarks", "fib,nqueens,uts,minmax");
  const int max_exp = static_cast<int>(flags.get_int("max-exp", 14));
  tbench::Reporter rep("ablation_space", flags);

  auto suite = tbench::make_suite(scale);
  std::printf("# Real schedulers: utilization vs peak resident tasks per t_dfe\n");
  std::printf("%-12s %-8s", "benchmark", "policy");
  for (int e = 4; e <= max_exp; e += 2) std::printf(" | %9s 2^%-2d", "util/spc", e);
  std::printf("\n");
  for (auto& b : suite) {
    if (!tbench::selected(filter, b->name())) continue;
    for (const auto pol : {tb::core::SeqPolicy::Reexp, tb::core::SeqPolicy::Restart}) {
      std::printf("%-12s %-8s", b->name().c_str(), tb::core::to_string(pol));
      for (int e = 4; e <= max_exp; e += 2) {
        const std::size_t block = 1ull << e;
        tbench::BlockedConfig cfg;
        cfg.policy = pol;
        cfg.layer = tbench::Layer::Soa;
        cfg.th = b->thresholds(block, std::min<std::size_t>(b->default_restart(), block));
        tb::core::ExecStats st;
        (void)b->run_blocked(cfg, &st);
        const std::string variant = "block=" + std::to_string(block);
        rep.add_metric(rep.make(b->name(), variant, tb::core::to_string(pol), "soa"),
                       "utilization", st.simd_utilization());
        rep.add_metric(rep.make(b->name(), variant, tb::core::to_string(pol), "soa"),
                       "tasks", static_cast<double>(st.peak_space_tasks));
        std::printf(" | %3.0f%% %9llu", st.simd_utilization() * 100.0,
                    static_cast<unsigned long long>(st.peak_space_tasks));
      }
      std::printf("\n");
    }
  }

  std::printf("\n# Simulator: Lemma 8 envelope (peak <= c*h*t_dfe*P), restart policy\n");
  std::printf("%-14s %3s %8s %12s %14s %8s\n", "tree", "P", "t_dfe", "peak-space",
              "h*t_dfe*P", "ratio");
  struct TreeCase {
    const char* name;
    tb::sim::CompTree tree;
  };
  const TreeCase trees[] = {
      {"perfect(16)", tb::sim::CompTree::perfect_binary(16)},
      {"fib(24)", tb::sim::CompTree::fib_tree(24)},
      {"caterpillar", tb::sim::CompTree::caterpillar(4000)},
  };
  for (const auto& tc : trees) {
    for (const int p : {1, 4, 16}) {
      for (const std::size_t t_dfe : {64u, 1024u}) {
        tb::sim::SimConfig cfg;
        cfg.policy = tb::sim::SimPolicy::Restart;
        cfg.p = p;
        cfg.q = 8;
        cfg.t_dfe = t_dfe;
        cfg.t_bfe = t_dfe;
        cfg.t_restart = std::max<std::size_t>(t_dfe / 4, 8);
        cfg.track_space = true;
        const auto res = tb::sim::simulate(tc.tree, cfg);
        const double envelope = static_cast<double>(tc.tree.height) *
                                static_cast<double>(t_dfe) * static_cast<double>(p);
        rep.add_metric(rep.make(tc.name, "sim:tdfe=" + std::to_string(t_dfe), "restart", "-",
                                p),
                       "tasks", static_cast<double>(res.peak_space_tasks));
        std::printf("%-14s %3d %8zu %12llu %14.0f %8.3f\n", tc.name, p, t_dfe,
                    static_cast<unsigned long long>(res.peak_space_tasks), envelope,
                    static_cast<double>(res.peak_space_tasks) / envelope);
      }
    }
  }
  return rep.finish();
}
