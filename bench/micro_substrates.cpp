// Google-benchmark microbenchmarks for the substrates: the Chase–Lev deque,
// streaming compaction, SoA block appends, block kernel expansion, and the
// fork-join pool's spawn/sync overhead (what makes T1 >> Ts for fine
// kernels, §7.1).
//
// The custom main wraps Google Benchmark so this driver speaks the same
// --format=json --out= protocol as the rest of bench/: every run is also
// captured as a taskbatch Result record (seconds per iteration).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "bench/support/report.hpp"

#include "apps/fib.hpp"
#include "core/program.hpp"
#include "runtime/chase_lev_deque.hpp"
#include "runtime/forkjoin.hpp"
#include "runtime/xoshiro.hpp"
#include "simd/batch.hpp"
#include "simd/compact.hpp"
#include "simd/soa.hpp"

namespace {

using namespace tb;

void BM_DequePushPop(benchmark::State& state) {
  rt::ChaseLevDeque<int> dq;
  int item = 7;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) dq.push_bottom(&item);
    for (int i = 0; i < 64; ++i) benchmark::DoNotOptimize(dq.pop_bottom());
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_DequePushPop);

void BM_DequeStealUncontended(benchmark::State& state) {
  rt::ChaseLevDeque<int> dq;
  int item = 7;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) dq.push_bottom(&item);
    for (int i = 0; i < 64; ++i) benchmark::DoNotOptimize(dq.steal_top());
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_DequeStealUncontended);

void BM_Compact32(benchmark::State& state) {
  rt::Xoshiro256 rng(1);
  const auto v = simd::batch<std::int32_t, 8>::iota(0);
  alignas(64) std::int32_t dst[16];
  std::uint32_t mask = 0x5au;
  for (auto _ : state) {
    mask = static_cast<std::uint32_t>(rng()) & 0xffu;
    benchmark::DoNotOptimize(simd::compact_store(dst, mask, v));
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_Compact32);

void BM_Compact64(benchmark::State& state) {
  rt::Xoshiro256 rng(2);
  simd::batch<std::uint64_t, 4> v;
  for (int i = 0; i < 4; ++i) v.set(i, static_cast<std::uint64_t>(i));
  alignas(64) std::uint64_t dst[8];
  for (auto _ : state) {
    const std::uint32_t mask = static_cast<std::uint32_t>(rng()) & 0xfu;
    benchmark::DoNotOptimize(simd::compact_store(dst, mask, v));
  }
  state.SetItemsProcessed(state.iterations() * 4);
}
BENCHMARK(BM_Compact64);

void BM_SoaAppendCompact(benchmark::State& state) {
  simd::SoaBlock<std::int32_t, std::int32_t> blk;
  blk.reserve(1 << 16);
  const auto a = simd::batch<std::int32_t, 8>::iota(0);
  const auto b = simd::batch<std::int32_t, 8>::iota(8);
  rt::Xoshiro256 rng(3);
  for (auto _ : state) {
    if (blk.size() > (1u << 15)) blk.clear();
    blk.append_compact<8>(static_cast<std::uint32_t>(rng()) & 0xffu, a, b);
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_SoaAppendCompact);

// One BFE expansion step of the fib kernel across the three layers — the
// per-task cost of the Table 2 rungs.
template <class Exec>
void expand_layer(benchmark::State& state) {
  apps::FibProgram prog;
  typename Exec::Block in;
  in.set_level(0);
  rt::Xoshiro256 rng(4);
  for (int i = 0; i < 4096; ++i) {
    Exec::append_task(in, apps::FibProgram::Task{static_cast<std::int32_t>(rng.below(40)) + 2});
  }
  typename Exec::Block out;
  std::array<typename Exec::Block*, 2> outs{&out, &out};
  for (auto _ : state) {
    out.clear();
    apps::FibProgram::Result r = 0;
    std::uint64_t leaves = 0;
    Exec::expand_into(prog, in, 0, in.size(), outs, r, leaves);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}

void BM_ExpandFibAos(benchmark::State& state) {
  expand_layer<core::AosExec<apps::FibProgram>>(state);
}
void BM_ExpandFibSoa(benchmark::State& state) {
  expand_layer<core::SoaExec<apps::FibProgram>>(state);
}
void BM_ExpandFibSimd(benchmark::State& state) {
  expand_layer<core::SimdExec<apps::FibProgram>>(state);
}
BENCHMARK(BM_ExpandFibAos);
BENCHMARK(BM_ExpandFibSoa);
BENCHMARK(BM_ExpandFibSimd);

void BM_SpawnSyncOverhead(benchmark::State& state) {
  rt::ForkJoinPool pool(1);
  for (auto _ : state) {
    const auto v = pool.run([&pool] { return apps::fib_cilk_rec(pool, 12); });
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations() * 465);  // fib(12) call-tree size
}
BENCHMARK(BM_SpawnSyncOverhead);

void BM_Splitmix(benchmark::State& state) {
  std::uint64_t x = 1;
  for (auto _ : state) {
    x = rt::splitmix64(x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_Splitmix);

// Console output as usual, plus capture of every run into the Reporter:
// seconds per iteration (lower is better), and — when the benchmark calls
// SetItemsProcessed — Google Benchmark's items_per_second as a
// higher-is-better "ratio" record, which is what lets the substrate
// microbenches join the nightly same-host regression gate (--units=ratio).
class CapturingReporter : public benchmark::ConsoleReporter {
public:
  explicit CapturingReporter(tbench::Reporter* rep) : rep_(rep) {}
  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred || run.iterations <= 0) continue;
      tbench::Result r = rep_->make(run.benchmark_name(), "gbench");
      r.reps = 1;
      r.seconds_best = run.real_accumulated_time / static_cast<double>(run.iterations);
      r.seconds_all = {r.seconds_best};
      rep_->add(r);
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        tbench::Result ips = rep_->make(run.benchmark_name(), "gbench");
        ips.unit = "ratio";
        ips.reps = 1;
        ips.seconds_best = static_cast<double>(items->second);
        ips.seconds_all = {ips.seconds_best};
        rep_->add(ips);
      }
    }
  }

private:
  tbench::Reporter* rep_;
};

}  // namespace

int main(int argc, char** argv) {
  const tbench::Flags flags(argc, argv);
  // Strip the reporter's flags before Google Benchmark sees (and rejects)
  // unrecognized arguments.
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--format=", 9) == 0 ||
        std::strncmp(argv[i], "--out=", 6) == 0 || std::strcmp(argv[i], "--format") == 0) {
      continue;
    }
    args.push_back(argv[i]);
  }
  int bargc = static_cast<int>(args.size());
  benchmark::Initialize(&bargc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bargc, args.data())) return 1;
  tbench::Reporter rep("micro_substrates", flags);
  CapturingReporter console(&rep);
  benchmark::RunSpecifiedBenchmarks(&console);
  benchmark::Shutdown();
  return rep.finish();
}
