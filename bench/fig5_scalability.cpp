// Figure 5 — scalability at small block size (2^5).
//
// Three modes:
//   measured   wall-clock speedup vs the 1-worker Cilk baseline for scalar /
//              reexp / restart while sweeping the worker count.  On a host
//              with few hardware threads this is oversubscription, reported
//              honestly as such.
//   simulated  the discrete §4-cost-model simulator replays each
//              benchmark's *actual* materialized computation tree on P
//              virtual cores — this reproduces the paper's scaling shape
//              independent of the host (DESIGN.md §3).  Deterministic; the
//              nightly gate diffs these records at threshold 0.
//   hybrid     the cores×lanes sweep of the hybrid executor: one rung per
//              runnable ISA dispatch table (sse2:w4 / avx2:w8 / avx512:w16,
//              whatever this host + build provide) × worker count,
//              wall-clock speedup vs each width's own 1-worker run.  Shows
//              the two parallelism dimensions composing — the paper's
//              headline claim — now with the ISA level as the lane axis.
//
// JSON records: measured/hybrid points as raw "seconds" timings; simulated
// points as deterministic "speedup" ratios (host-independent, diffable
// exactly).
//
// Output: CSV `benchmark,mode,policy,workers,speedup`.
// Flags: --scale= (measured/hybrid), --sim-scale= (simulated; default test),
//        --max-workers=16, --block=32, --benchmarks=, --mode=both|measured|
//        simulated|hybrid, --format=json, --out=
#include <cstdio>
#include <string>
#include <vector>

#include "bench/support/report.hpp"
#include "bench/suite.hpp"
#include "sim/materialize.hpp"
#include "sim/par_sim.hpp"

namespace {

constexpr const char* kFigBenches = "graphcol,uts,minmax,barneshut,pointcorr,knn";
constexpr const char* kHybridBenches = "barneshut,pointcorr,knn,minmaxdist,uts,nqueens";

// Cores×lanes scaling of the hybrid executor: one rung per runnable ISA
// dispatch table, sweeping the worker count and reporting speedup over that
// table's own 1-worker run (the lane dimension shows up as the gap between
// the per-ISA curves — sse2:w4 vs avx2:w8 vs avx512:w16).  Task-block
// benchmarks (uts, nqueens) have a fixed lane width — their vectorized
// expand kernel — so they contribute one curve at that width.
void run_hybrid_mode(const tbench::Flags& flags, tbench::Reporter& rep) {
  const std::string scale = flags.get("scale", "default");
  const int max_workers = static_cast<int>(flags.get_int("max-workers", 16));
  const std::string filter = flags.get("benchmarks", kHybridBenches);
  auto suite = tbench::make_suite(scale);
  // The sweep covers every table compiled in AND runnable on this host;
  // record labels carry the ISA name so curves from hosts with different
  // ceilings never silently merge.
  int num_tables = 0;
  const auto* const* tables = tb::simd::available_tables(num_tables);
  for (auto& b : suite) {
    if (!tbench::selected(filter, b->name()) || !b->has_hybrid()) continue;
    std::vector<int> lane_sweep;
    if (b->hybrid_fixed_width()) {
      lane_sweep.push_back(0);
    } else {
      for (int i = 0; i < num_tables; ++i) lane_sweep.push_back(tables[i]->width);
    }
    for (const int lanes : lane_sweep) {
      // Threshold proportional to the *swept* width, not the build's
      // natural width, so the per-ISA gap isn't confounded by a hidden
      // tuning difference.  lanes == 0 means "the program's own width".
      const int width = lanes == 0 ? b->q() : lanes;
      const tb::simd::KernelTable* kt =
          lanes == 0 ? nullptr : tb::simd::kernels_for_width(lanes);
      const std::string label = lanes == 0
                                    ? "w" + std::to_string(width)
                                    : std::string(kt->name) + ":w" + std::to_string(width);
      tb::rt::HybridOptions opt;
      opt.t_reexp = 4 * static_cast<std::size_t>(width);
      const std::string pol = "hybrid:" + label;
      double t1 = 0;
      for (int w = 1; w <= max_workers; w *= 2) {
        tb::rt::ForkJoinPool pool(w);
        tb::core::PerWorkerStats pw;
        const double t =
            rep.add_timed(rep.make(b->name(), "hybrid:sweep", label, "simd", w), 1,
                          [&] { (void)b->run_hybrid(pool, opt, &pw, lanes); });
        if (w == 1) t1 = t;
        std::printf("%s,hybrid,%s,%d,%.2f\n", b->name().c_str(), pol.c_str(), w, t1 / t);
        rep.add_metric(rep.make(b->name(), "hybrid:util", label, "simd", w),
                       "utilization", pw.merged().simd_utilization());
      }
    }
  }
}

void run_measured(const tbench::Flags& flags, tbench::Reporter& rep) {
  const std::string scale = flags.get("scale", "default");
  const int max_workers = static_cast<int>(flags.get_int("max-workers", 16));
  const std::size_t block = static_cast<std::size_t>(flags.get_int("block", 32));
  const std::string filter = flags.get("benchmarks", kFigBenches);
  auto suite = tbench::make_suite(scale);
  for (auto& b : suite) {
    if (!tbench::selected(filter, b->name())) continue;
    tb::rt::ForkJoinPool pool1(1);
    const double t1_scalar = rep.add_timed(rep.make(b->name(), "measured", "scalar", "-", 1), 1,
                                           [&] { (void)b->run_cilk(pool1); });
    for (int w = 1; w <= max_workers; w *= 2) {
      tb::rt::ForkJoinPool pool(w);
      const double t_scalar =
          rep.add_timed(rep.make(b->name(), "measured:sweep", "scalar", "-", w), 1,
                        [&] { (void)b->run_cilk(pool); });
      std::printf("%s,measured,scalar,%d,%.2f\n", b->name().c_str(), w,
                  t1_scalar / t_scalar);
      for (const auto pol : {tb::core::SeqPolicy::Reexp, tb::core::SeqPolicy::Restart}) {
        tbench::BlockedConfig cfg;
        cfg.policy = pol;
        cfg.layer = tbench::Layer::Simd;
        cfg.pool = &pool;
        cfg.th = b->thresholds(block, std::min<std::size_t>(block, 16));
        const double t =
            rep.add_timed(rep.make(b->name(), "measured:sweep", tb::core::to_string(pol),
                                   "simd", w),
                          1, [&] { (void)b->run_blocked(cfg); });
        std::printf("%s,measured,%s,%d,%.2f\n", b->name().c_str(),
                    tb::core::to_string(pol), w, t1_scalar / t);
      }
      {
        // Extension: the Fig 3b ideal restart scheduler (per-worker block
        // deques) on the same sweep.
        tbench::BlockedConfig cfg;
        cfg.layer = tbench::Layer::Simd;
        cfg.ideal_workers = w;
        cfg.th = b->thresholds(block, std::min<std::size_t>(block, 16));
        const double t =
            rep.add_timed(rep.make(b->name(), "measured:sweep", "ideal", "simd", w), 1,
                          [&] { (void)b->run_blocked(cfg); });
        std::printf("%s,measured,ideal,%d,%.2f\n", b->name().c_str(), w, t1_scalar / t);
      }
    }
  }
}

template <class Prog>
void simulate_bench(tbench::Reporter& rep, const std::string& name, const Prog& prog,
                    std::span<const typename Prog::Task> roots, int q, int max_workers,
                    std::size_t block, bool call_leaf = false) {
  auto mat = tb::sim::materialize(prog, roots, 64u << 20, call_leaf);
  const auto policies = {tb::sim::SimPolicy::ScalarWS, tb::sim::SimPolicy::Reexp,
                         tb::sim::SimPolicy::Restart};
  // Baseline: 1-core scalar work stealing (the paper's 1-worker Cilk).
  tb::sim::SimConfig base;
  base.p = 1;
  base.q = q;
  base.policy = tb::sim::SimPolicy::ScalarWS;
  const double t1 =
      static_cast<double>(tb::sim::simulate(mat.tree, base, mat.roots).makespan);
  for (const auto pol : policies) {
    for (int w = 1; w <= max_workers; w *= 2) {
      tb::sim::SimConfig cfg;
      cfg.p = w;
      cfg.q = q;
      cfg.t_dfe = block;
      cfg.t_bfe = block;
      cfg.t_restart = std::min<std::size_t>(block, 16);
      cfg.policy = pol;
      const auto res = tb::sim::simulate(mat.tree, cfg, mat.roots);
      const double speedup = t1 / static_cast<double>(res.makespan);
      std::printf("%s,simulated,%s,%d,%.2f\n", name.c_str(), tb::sim::to_string(pol), w,
                  speedup);
      rep.add_metric(rep.make(name, "simulated", tb::sim::to_string(pol), "-", w), "speedup",
                     speedup);
    }
  }
}

void run_simulated(const tbench::Flags& flags, tbench::Reporter& rep) {
  const int max_workers = static_cast<int>(flags.get_int("max-workers", 16));
  const std::size_t block = static_cast<std::size_t>(flags.get_int("block", 32));
  const std::string filter = flags.get("benchmarks", kFigBenches);
  // Simulation replays explicit trees in memory; the test scale keeps that
  // bounded while preserving each benchmark's shape.
  const std::string sim_scale = flags.get("sim-scale", "test");

  if (tbench::selected(filter, "graphcol")) {
    const auto g = tb::apps::GraphColInstance::random(sim_scale == "default" ? 19 : 15, 3.0);
    tb::apps::GraphColProgram prog{&g};
    const std::vector roots{tb::apps::GraphColProgram::root()};
    simulate_bench(rep, "graphcol", prog, roots, 4, max_workers, block);
  }
  if (tbench::selected(filter, "uts")) {
    tb::apps::UtsProgram prog(tb::apps::UtsParams{256, 4, 0.24, 19});
    const auto roots = prog.roots();
    simulate_bench(rep, "uts", prog, roots, 4, max_workers, block);
  }
  if (tbench::selected(filter, "minmax")) {
    tb::apps::MinmaxProgram prog{5};
    const std::vector roots{tb::apps::MinmaxProgram::root()};
    simulate_bench(rep, "minmax", prog, roots, 8, max_workers, block);
  }
  if (tbench::selected(filter, "barneshut")) {
    const auto bodies = tb::spatial::Bodies::plummer(3000);
    const auto tree = tb::spatial::Octree::build(bodies, 8);
    std::vector<float> fx(bodies.size()), fy(bodies.size()), fz(bodies.size());
    tb::apps::BarnesHutProgram prog{&bodies, &tree, fx.data(), fy.data(), fz.data()};
    const auto roots = prog.roots(0.5f);
    simulate_bench(rep, "barneshut", prog, roots, 8, max_workers, block);
  }
  if (tbench::selected(filter, "pointcorr")) {
    const auto pts = tb::spatial::Bodies::uniform_cube(3000);
    const auto tree = tb::spatial::KdTree::build(pts, 16);
    tb::apps::PointCorrProgram prog{&pts, &tree, 0.05f};
    const auto roots = prog.roots();
    simulate_bench(rep, "pointcorr", prog, roots, 8, max_workers, block);
  }
  if (tbench::selected(filter, "knn")) {
    const auto pts = tb::spatial::Bodies::uniform_cube(3000);
    const auto tree = tb::spatial::KdTree::build(pts, 16);
    tb::apps::KnnState state(pts.size(), 4);
    tb::apps::KnnProgram prog{&pts, &tree, &state};
    const auto roots = prog.roots();
    simulate_bench(rep, "knn", prog, roots, 8, max_workers, block, /*call_leaf=*/true);
  }
}

}  // namespace

int main(int argc, char** argv) {
  tbench::Flags flags(argc, argv);
  const std::string mode = flags.get("mode", "both");
  tbench::Reporter rep("fig5_scalability", flags);
  std::printf("benchmark,mode,policy,workers,speedup\n");
  if (mode == "simulated" || mode == "both") run_simulated(flags, rep);
  if (mode == "measured" || mode == "both") run_measured(flags, rep);
  if (mode == "hybrid" || mode == "both") run_hybrid_mode(flags, rep);
  if (mode == "both") {
    std::printf(
        "# simulated: §4 cost model on P virtual cores (shape of paper Fig. 5).\n"
        "# measured: wall clock on this host (%u hardware thread(s)).\n",
        std::thread::hardware_concurrency());
  }
  return rep.finish();
}
