// Ablation — the Table 2 layout/vectorization ladder, per benchmark.
//
// For each benchmark: blocked AoS → blocked SoA → hand-vectorized SIMD,
// under the restart policy on the sequential scheduler, with the speedup
// each rung adds.  This isolates where the paper's single-core gains come
// from (blocking vs layout vs vector execution).
//
// Flags: --scale=, --benchmarks=
#include <cstdio>
#include <string>

#include "bench/bench_util.hpp"
#include "bench/suite.hpp"

int main(int argc, char** argv) {
  tbench::Flags flags(argc, argv);
  const std::string scale = flags.get("scale", "default");
  const std::string filter = flags.get("benchmarks");

  auto suite = tbench::make_suite(scale);
  std::printf("%-12s | %9s | %9s %9s %9s | %7s %7s %7s\n", "benchmark", "Ts(s)", "block(s)",
              "soa(s)", "simd(s)", "Ts/blk", "Ts/soa", "Ts/simd");
  std::vector<double> g_blk, g_soa, g_simd;
  for (auto& b : suite) {
    if (!tbench::selected(filter, b->name())) continue;
    std::string expected;
    const double ts = tbench::time_best([&] { expected = b->run_sequential(); }, 2);
    double times[3] = {0, 0, 0};
    const tbench::Layer layers[3] = {tbench::Layer::Aos, tbench::Layer::Soa,
                                     tbench::Layer::Simd};
    for (int i = 0; i < 3; ++i) {
      tbench::BlockedConfig cfg;
      cfg.policy = tb::core::SeqPolicy::Restart;
      cfg.layer = layers[i];
      cfg.th = b->thresholds();
      std::string got;
      times[i] = tbench::time_best([&] { got = b->run_blocked(cfg); }, 2);
      if (got != expected) std::printf("MISMATCH %s %s\n", b->name().c_str(),
                                       tbench::to_string(layers[i]));
    }
    std::printf("%-12s | %9.4f | %9.4f %9.4f %9.4f | %7.2f %7.2f %7.2f\n", b->name().c_str(),
                ts, times[0], times[1], times[2], ts / times[0], ts / times[1],
                ts / times[2]);
    g_blk.push_back(ts / times[0]);
    g_soa.push_back(ts / times[1]);
    g_simd.push_back(ts / times[2]);
  }
  std::printf("%-12s | %9s | %9s %9s %9s | %7.2f %7.2f %7.2f\n", "geomean", "", "", "", "",
              tbench::geomean(g_blk), tbench::geomean(g_soa), tbench::geomean(g_simd));
  return 0;
}
