// Ablation — the Table 2 layout/vectorization ladder, per benchmark.
//
// For each benchmark: blocked AoS → blocked SoA → hand-vectorized SIMD,
// under the restart policy on the sequential scheduler, with the speedup
// each rung adds.  This isolates where the paper's single-core gains come
// from (blocking vs layout vs vector execution).
//
// Flags: --scale=, --benchmarks=, --format=json, --out=
#include <cstdio>
#include <string>

#include "bench/support/report.hpp"
#include "bench/suite.hpp"

int main(int argc, char** argv) {
  tbench::Flags flags(argc, argv);
  const std::string scale = flags.get("scale", "default");
  const std::string filter = flags.get("benchmarks");
  tbench::Reporter rep("ablation_layout", flags);

  auto suite = tbench::make_suite(scale);
  std::printf("%-12s | %9s | %9s %9s %9s | %7s %7s %7s\n", "benchmark", "Ts(s)", "block(s)",
              "soa(s)", "simd(s)", "Ts/blk", "Ts/soa", "Ts/simd");
  std::vector<double> g_blk, g_soa, g_simd;
  for (auto& b : suite) {
    if (!tbench::selected(filter, b->name())) continue;
    std::string expected;
    const double ts = rep.add_timed(rep.make(b->name(), "seq"), 2,
                                    [&] { expected = b->run_sequential(); });
    rep.set_last_digest(expected);
    double times[3] = {0, 0, 0};
    const tbench::Layer layers[3] = {tbench::Layer::Aos, tbench::Layer::Soa,
                                     tbench::Layer::Simd};
    for (int i = 0; i < 3; ++i) {
      tbench::BlockedConfig cfg;
      cfg.policy = tb::core::SeqPolicy::Restart;
      cfg.layer = layers[i];
      cfg.th = b->thresholds();
      std::string got;
      times[i] = rep.add_timed(
          rep.make(b->name(), "blocked", "restart", tbench::to_string(layers[i])), 2,
          [&] { got = b->run_blocked(cfg); });
      rep.set_last_digest(got);
      if (got != expected) std::printf("MISMATCH %s %s\n", b->name().c_str(),
                                       tbench::to_string(layers[i]));
    }
    std::printf("%-12s | %9.4f | %9.4f %9.4f %9.4f | %7.2f %7.2f %7.2f\n", b->name().c_str(),
                ts, times[0], times[1], times[2], ts / times[0], ts / times[1],
                ts / times[2]);
    g_blk.push_back(ts / times[0]);
    g_soa.push_back(ts / times[1]);
    g_simd.push_back(ts / times[2]);
  }
  rep.add_metric(rep.make("geomean", "speedup", "restart", "block"), "ratio",
                 tbench::geomean(g_blk));
  rep.add_metric(rep.make("geomean", "speedup", "restart", "soa"), "ratio",
                 tbench::geomean(g_soa));
  rep.add_metric(rep.make("geomean", "speedup", "restart", "simd"), "ratio",
                 tbench::geomean(g_simd));
  std::printf("%-12s | %9s | %9s %9s %9s | %7.2f %7.2f %7.2f\n", "geomean", "", "", "", "",
              tbench::geomean(g_blk), tbench::geomean(g_soa), tbench::geomean(g_simd));
  return rep.finish();
}
