// Ablation — blocked execution of computations with syncs (join frames).
//
// True minimax needs child values folded through every internal node —
// the sync-shaped computation the paper's base-case-reduction model
// excludes (§2 footnote 1) and the JoinScheduler extension supports.  This
// harness compares the plain recursive minimax (Ts) against blocked join
// execution across block sizes, reporting SIMD utilization, peak live join
// frames, and the frame overhead relative to the leaf-only scheduler on
// the identical tree (the marginal price of sync semantics).
//
// Flags: --ply=N (default 6; 7 ≈ 15 s), --format=json, --out=
#include <cstdio>

#include "apps/minmax.hpp"
#include "apps/minmax_join.hpp"
#include "bench/support/report.hpp"
#include "core/driver.hpp"
#include "core/join_scheduler.hpp"

int main(int argc, char** argv) {
  tbench::Flags flags(argc, argv);
  const int ply = static_cast<int>(flags.get_int("ply", 6));
  tbench::Reporter rep("ablation_join", flags);
  const std::string bench = "minmax_join:ply=" + std::to_string(ply);

  tb::apps::MinmaxJoinProgram prog;
  prog.inner.ply_limit = ply;
  const auto root = tb::apps::MinmaxJoinProgram::root();

  std::int32_t expected = 0;
  const double ts = rep.add_timed(rep.make(bench, "seq"), 3, [&] {
    expected = tb::apps::minmax_join_sequential(prog, root);
  });
  rep.set_last_digest(std::to_string(expected));
  std::printf("true minimax, 4x4 board, ply %d: value %d, recursive Ts = %.4fs\n", ply,
              expected, ts);
  std::printf("%8s | %9s %7s | %6s %10s %10s | %s\n", "t_dfe", "join(s)", "Ts/join", "util%",
              "peak-frames", "leaf-only", "check");

  for (const std::size_t block : {64u, 512u, 4096u, 16384u}) {
    const auto th = tb::core::Thresholds::for_block_size(8, block, block / 8);
    const std::string variant = "block=" + std::to_string(block);
    std::int32_t got = 0;
    tb::core::ExecStats st;
    const double tj =
        rep.add_timed(rep.make(bench, "join:" + variant, "restart", "soa"), 3, [&] {
          st = tb::core::ExecStats{};
          got = tb::core::run_join(prog, root, tb::core::SeqPolicy::Restart, th, &st);
        });
    rep.set_last_digest(std::to_string(got));
    // The leaf-only scheduler on the same tree: the sync-free reference.
    const tb::apps::MinmaxProgram leaf_prog{ply};
    const std::vector roots{tb::apps::MinmaxProgram::root()};
    double tl = rep.add_timed(rep.make(bench, "leaf:" + variant, "restart", "block"), 3, [&] {
      (void)tb::core::run_seq<tb::core::AosExec<tb::apps::MinmaxProgram>>(
          leaf_prog, roots, tb::core::SeqPolicy::Restart, th);
    });
    rep.add_metric(rep.make(bench, "join:" + variant, "restart", "soa"), "utilization",
                   st.simd_utilization());
    rep.add_metric(rep.make(bench, "join:" + variant, "restart", "soa"), "frames",
                   static_cast<double>(st.peak_frames));
    std::printf("%8zu | %9.4f %7.2f | %6.1f %10llu %9.4fs | %s\n", block, tj, ts / tj,
                st.simd_utilization() * 100.0,
                static_cast<unsigned long long>(st.peak_frames), tl,
                got == expected ? "ok" : "MISMATCH");
  }
  return rep.finish();
}
