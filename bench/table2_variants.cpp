// Table 2 — geometric-mean speedup of the implementation-variant ladder.
//
// Rows: 1 worker, P workers, and the scalability ratio (P-worker time of a
// variant over its own 1-worker time).  Columns: the input Cilk program
// ("scalar"), then for each of re-expansion and restart the three layers —
// blocked AoS ("Block"), blocked SoA ("SOA"), and hand-vectorized ("SIMD").
// All speedups are relative to the sequential recursion Ts, exactly as the
// paper's Table 2 reports.
//
// Flags: --scale=, --workers=, --benchmarks=, --reps=
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "bench/suite.hpp"

namespace {

using tb::core::SeqPolicy;
using tbench::Layer;

struct VariantKey {
  SeqPolicy policy;
  Layer layer;
  bool parallel;
  auto operator<=>(const VariantKey&) const = default;
};

}  // namespace

int main(int argc, char** argv) {
  tbench::Flags flags(argc, argv);
  const std::string scale = flags.get("scale", "default");
  const int workers = static_cast<int>(flags.get_int("workers", 16));
  const int reps = static_cast<int>(flags.get_int("reps", 1));
  const std::string filter = flags.get("benchmarks");

  auto suite = tbench::make_suite(scale);
  tb::rt::ForkJoinPool pool1(1);
  tb::rt::ForkJoinPool poolP(workers);

  const Layer layers[] = {Layer::Aos, Layer::Soa, Layer::Simd};
  const SeqPolicy policies[] = {SeqPolicy::Reexp, SeqPolicy::Restart};

  std::map<VariantKey, std::vector<double>> speedups;
  std::vector<double> scalar1, scalarP;

  for (auto& b : suite) {
    if (!tbench::selected(filter, b->name())) continue;
    std::string expected;
    const double ts = tbench::time_best([&] { expected = b->run_sequential(); }, reps);
    const double t1 = tbench::time_best([&] { (void)b->run_cilk(pool1); }, reps);
    const double tp = tbench::time_best([&] { (void)b->run_cilk(poolP); }, reps);
    scalar1.push_back(ts / t1);
    scalarP.push_back(ts / tp);
    for (const auto pol : policies) {
      for (const auto layer : layers) {
        tbench::BlockedConfig cfg;
        cfg.th = b->thresholds();
        cfg.policy = pol;
        cfg.layer = layer;
        cfg.pool = nullptr;
        std::string got;
        const double tv1 = tbench::time_best([&] { got = b->run_blocked(cfg); }, reps);
        if (got != expected) {
          std::printf("MISMATCH %s %s %s seq\n", b->name().c_str(),
                      tb::core::to_string(pol), tbench::to_string(layer));
        }
        cfg.pool = &poolP;
        const double tvP = tbench::time_best([&] { got = b->run_blocked(cfg); }, reps);
        if (got != expected) {
          std::printf("MISMATCH %s %s %s par\n", b->name().c_str(),
                      tb::core::to_string(pol), tbench::to_string(layer));
        }
        speedups[{pol, layer, false}].push_back(ts / tv1);
        speedups[{pol, layer, true}].push_back(ts / tvP);
      }
    }
  }

  auto gm = [&](SeqPolicy p, Layer l, bool par) {
    return tbench::geomean(speedups[{p, l, par}]);
  };

  std::printf("Table 2: geomean speedup vs Ts (scale=%s, P=%d)\n\n", scale.c_str(), workers);
  std::printf("%-12s %7s | %7s %7s %7s | %7s %7s %7s\n", "", "scalar", "reexp:B", "SOA",
              "SIMD", "restart:B", "SOA", "SIMD");
  std::printf("%-12s %7.2f | %7.2f %7.2f %7.2f | %7.2f %7.2f %7.2f\n", "1-worker",
              tbench::geomean(scalar1), gm(SeqPolicy::Reexp, Layer::Aos, false),
              gm(SeqPolicy::Reexp, Layer::Soa, false), gm(SeqPolicy::Reexp, Layer::Simd, false),
              gm(SeqPolicy::Restart, Layer::Aos, false),
              gm(SeqPolicy::Restart, Layer::Soa, false),
              gm(SeqPolicy::Restart, Layer::Simd, false));
  std::printf("%-12s %7.2f | %7.2f %7.2f %7.2f | %7.2f %7.2f %7.2f\n", "P-worker",
              tbench::geomean(scalarP), gm(SeqPolicy::Reexp, Layer::Aos, true),
              gm(SeqPolicy::Reexp, Layer::Soa, true), gm(SeqPolicy::Reexp, Layer::Simd, true),
              gm(SeqPolicy::Restart, Layer::Aos, true),
              gm(SeqPolicy::Restart, Layer::Soa, true),
              gm(SeqPolicy::Restart, Layer::Simd, true));
  std::printf("%-12s %7.2f | %7.2f %7.2f %7.2f | %7.2f %7.2f %7.2f\n", "Scalability",
              tbench::geomean(scalarP) / tbench::geomean(scalar1),
              gm(SeqPolicy::Reexp, Layer::Aos, true) / gm(SeqPolicy::Reexp, Layer::Aos, false),
              gm(SeqPolicy::Reexp, Layer::Soa, true) / gm(SeqPolicy::Reexp, Layer::Soa, false),
              gm(SeqPolicy::Reexp, Layer::Simd, true) /
                  gm(SeqPolicy::Reexp, Layer::Simd, false),
              gm(SeqPolicy::Restart, Layer::Aos, true) /
                  gm(SeqPolicy::Restart, Layer::Aos, false),
              gm(SeqPolicy::Restart, Layer::Soa, true) /
                  gm(SeqPolicy::Restart, Layer::Soa, false),
              gm(SeqPolicy::Restart, Layer::Simd, true) /
                  gm(SeqPolicy::Restart, Layer::Simd, false));
  std::printf(
      "\nExpected shape (paper): Block > scalar at 1 worker, SOA >= Block, SIMD >> SOA.\n"
      "Wall-clock scalability on this host reflects %u hardware thread(s).\n",
      std::thread::hardware_concurrency());
  return 0;
}
