// Table 2 — geometric-mean speedup of the implementation-variant ladder.
//
// Rows: 1 worker, P workers, and the scalability ratio (P-worker time of a
// variant over its own 1-worker time).  Columns: the input Cilk program
// ("scalar"), then for each of re-expansion and restart the three layers —
// blocked AoS ("Block"), blocked SoA ("SOA"), and hand-vectorized ("SIMD").
// All speedups are relative to the sequential recursion Ts, exactly as the
// paper's Table 2 reports.
//
// JSON records: one "seconds" record per (benchmark × rung) raw timing, and
// one higher-is-better "ratio" record per geomean speedup cell — the
// host-normalized numbers the nightly regression gate diffs (as a same-host
// base-vs-HEAD pair captured inside the workflow).
//
// The traversal benchmarks additionally run the hybrid vector×multicore
// executor (lockstep SIMD blocks on the work-stealing pool): timed like the
// other rungs, plus per-worker SIMD-utilization records ("utilization"
// unit, excluded from the ratio gate — per-worker attribution under work
// stealing is not deterministic).  On top of the active-table rung they get
// one forced-ISA rung per runnable dispatch table ("hybrid:isa=<name>"
// policy, "seconds" records only — which tables exist varies by host, so
// these stay out of the geomean ratio cells the nightly gate diffs); every
// forced rung's digest is checked against the sequential answer.
//
// Flags: --scale=, --workers=, --benchmarks=, --reps=, --format=json, --out=
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/support/report.hpp"
#include "bench/suite.hpp"
#include "core/autotune.hpp"

namespace {

using tb::core::SeqPolicy;
using tbench::Layer;

struct VariantKey {
  SeqPolicy policy;
  Layer layer;
  bool parallel;
  auto operator<=>(const VariantKey&) const = default;
};

}  // namespace

int main(int argc, char** argv) {
  tbench::Flags flags(argc, argv);
  const std::string scale = flags.get("scale", "default");
  const int workers = static_cast<int>(flags.get_int("workers", 16));
  const int reps = static_cast<int>(flags.get_int("reps", 1));
  const bool autotune = flags.get_int("autotune", 1) != 0;
  const std::string filter = flags.get("benchmarks");
  tbench::Reporter rep("table2_variants", flags);

  auto suite = tbench::make_suite(scale);
  tb::rt::ForkJoinPool pool1(1);
  tb::rt::ForkJoinPool poolP(workers);

  const Layer layers[] = {Layer::Aos, Layer::Soa, Layer::Simd};
  const SeqPolicy policies[] = {SeqPolicy::Reexp, SeqPolicy::Restart};

  std::map<VariantKey, std::vector<double>> speedups;
  std::vector<double> scalar1, scalarP;
  std::vector<double> hybrid1, hybridP;
  std::vector<double> taskhyb1, taskhybP;
  std::vector<double> autotuned1, autotunedP;
  // With --workers=1 the P-worker rows are the same configuration as the
  // 1-worker rows; recording both would collide on the identity key and
  // break the zero-delta self-diff contract, so the duplicates are timed
  // but not recorded.
  const bool record_p = workers != 1;
  bool all_ok = true;

  for (auto& b : suite) {
    if (!tbench::selected(filter, b->name())) continue;
    std::string expected;
    const double ts =
        rep.add_timed(rep.make(b->name(), "seq"), reps, [&] { expected = b->run_sequential(); });
    rep.set_last_digest(expected);
    std::string got;
    const double t1 = rep.add_timed(rep.make(b->name(), "cilk", "-", "-", 1), reps,
                                    [&] { got = b->run_cilk(pool1); });
    rep.set_last_digest(got);
    all_ok &= got == expected;
    double tp;
    if (record_p) {
      tp = rep.add_timed(rep.make(b->name(), "cilk", "-", "-", workers), reps,
                         [&] { got = b->run_cilk(poolP); });
      rep.set_last_digest(got);
      all_ok &= got == expected;
    } else {
      tp = tbench::time_best([&] { (void)b->run_cilk(poolP); }, reps);
    }
    scalar1.push_back(ts / t1);
    scalarP.push_back(ts / tp);
    for (const auto pol : policies) {
      for (const auto layer : layers) {
        tbench::BlockedConfig cfg;
        cfg.th = b->thresholds();
        cfg.policy = pol;
        cfg.layer = layer;
        cfg.pool = nullptr;
        const double tv1 =
            rep.add_timed(rep.make(b->name(), "blocked", tb::core::to_string(pol),
                                   tbench::to_string(layer), 0),
                          reps, [&] { got = b->run_blocked(cfg); });
        rep.set_last_digest(got);
        if (got != expected) {
          all_ok = false;
          std::printf("MISMATCH %s %s %s seq\n", b->name().c_str(),
                      tb::core::to_string(pol), tbench::to_string(layer));
        }
        cfg.pool = &poolP;
        const double tvP =
            rep.add_timed(rep.make(b->name(), "blocked", tb::core::to_string(pol),
                                   tbench::to_string(layer), workers),
                          reps, [&] { got = b->run_blocked(cfg); });
        rep.set_last_digest(got);
        if (got != expected) {
          all_ok = false;
          std::printf("MISMATCH %s %s %s par\n", b->name().c_str(),
                      tb::core::to_string(pol), tbench::to_string(layer));
        }
        speedups[{pol, layer, false}].push_back(ts / tv1);
        speedups[{pol, layer, true}].push_back(ts / tvP);
      }
    }
    if (b->has_hybrid()) {
      tb::rt::HybridOptions hopt;
      hopt.t_reexp = b->default_hybrid_reexp();
      const double th1 =
          rep.add_timed(rep.make(b->name(), "hybrid", "-", "simd", 1), reps,
                        [&] { got = b->run_hybrid(pool1, hopt); });
      rep.set_last_digest(got);
      if (got != expected) {
        all_ok = false;
        std::printf("MISMATCH %s hybrid 1-worker\n", b->name().c_str());
      }
      tb::core::PerWorkerStats pw;
      double thP;
      if (record_p) {
        thP = rep.add_timed(rep.make(b->name(), "hybrid", "-", "simd", workers), reps,
                            [&] { got = b->run_hybrid(poolP, hopt, &pw); });
        rep.set_last_digest(got);
        if (got != expected) {
          all_ok = false;
          std::printf("MISMATCH %s hybrid P-worker\n", b->name().c_str());
        }
      } else {
        thP = tbench::time_best([&] { (void)b->run_hybrid(poolP, hopt, &pw); }, reps);
      }
      // Per-worker SIMD utilization of the last P-worker run, plus the
      // merged view.  Worker attribution varies run to run, so these are
      // "utilization" records the ratio gate skips.
      for (std::size_t s = 0; s < pw.slots(); ++s) {
        rep.add_metric(rep.make(b->name(), "hybrid:worker=" + std::to_string(s), "-",
                                "simd", workers),
                       "utilization", pw.utilization(s));
      }
      rep.add_metric(rep.make(b->name(), "hybrid:merged", "-", "simd", workers),
                     "utilization", pw.merged().simd_utilization());
      // Forced-ISA rungs: one P-worker timing per runnable dispatch table,
      // pinned by lane width so the record says which ISA produced it.
      // "seconds" records only — the table set varies by host, so these
      // never feed the gated geomean ratio cells.
      if (!b->hybrid_fixed_width()) {
        int num_tables = 0;
        const auto* const* tables = tb::simd::available_tables(num_tables);
        for (int ti = 0; ti < num_tables; ++ti) {
          const tb::simd::KernelTable* kt = tables[ti];
          const std::string pol = "hybrid:" + tbench::isa_variant(*kt);
          tb::rt::HybridOptions fopt;
          fopt.t_reexp = 4 * static_cast<std::size_t>(kt->width);
          rep.add_timed(rep.make(b->name(), pol, "-", "simd", workers), reps,
                        [&] { got = b->run_hybrid(poolP, fopt, nullptr, kt->width); });
          rep.set_last_digest(got);
          if (got != expected) {
            all_ok = false;
            std::printf("MISMATCH %s %s P-worker\n", b->name().c_str(), pol.c_str());
          }
        }
      }
      // The task-block hybrid path accumulates under its own geomean so the
      // long-gated traversal "hybrid" ratio record keeps a stable benchmark
      // composition across the nightly base-vs-HEAD join.
      if (b->hybrid_fixed_width()) {
        taskhyb1.push_back(ts / th1);
        taskhybP.push_back(ts / thP);
      } else {
        hybrid1.push_back(ts / th1);
        hybridP.push_back(ts / thP);
      }
      if (autotune) {
        // Autotuned rung: sweep t_reexp (or, for the task-block path, the
        // range grain — t_reexp is a traversal-engine knob it ignores) over
        // the actual hybrid executor on the P-worker pool
        // (core::autotune_hybrid) and time the winner.  Records are
        // "seconds" only — the tuner's pick can flip between near-equal
        // candidates run to run, so these stay out of the nightly ratio
        // gate (see docs/BENCHMARKING.md).
        tb::core::HybridTuneOptions topt;
        topt.q = b->q();
        topt.reps = 1;
        if (b->hybrid_fixed_width()) {
          topt.max_reexp = 0;  // thresholds collapse to {0}
          topt.grains = {0, 16, 64};
        } else {
          topt.max_reexp = static_cast<std::size_t>(b->q()) * 64;
        }
        const auto tuned = tb::core::autotune_hybrid(
            [&](const tb::rt::HybridOptions& o, tb::core::PerWorkerStats* s) {
              (void)b->run_hybrid(poolP, o, s);
            },
            topt);
        std::printf("autotuned %s: t_reexp=%zu grain=%d\n", b->name().c_str(),
                    tuned.best.t_reexp, tuned.best.grain);
        const double ta1 =
            rep.add_timed(rep.make(b->name(), "hybrid:autotuned", "-", "simd", 1), reps,
                          [&] { got = b->run_hybrid(pool1, tuned.best); });
        rep.set_last_digest(got);
        if (got != expected) {
          all_ok = false;
          std::printf("MISMATCH %s hybrid:autotuned 1-worker\n", b->name().c_str());
        }
        double taP;
        if (record_p) {
          taP = rep.add_timed(rep.make(b->name(), "hybrid:autotuned", "-", "simd", workers),
                              reps, [&] { got = b->run_hybrid(poolP, tuned.best); });
          rep.set_last_digest(got);
          if (got != expected) {
            all_ok = false;
            std::printf("MISMATCH %s hybrid:autotuned P-worker\n", b->name().c_str());
          }
        } else {
          taP = tbench::time_best([&] { (void)b->run_hybrid(poolP, tuned.best); }, reps);
        }
        autotuned1.push_back(ts / ta1);
        autotunedP.push_back(ts / taP);
      }
    }
  }

  auto gm = [&](SeqPolicy p, Layer l, bool par) {
    return tbench::geomean(speedups[{p, l, par}]);
  };
  // Geomean speedup cells as higher-is-better ratio records: host-normalized,
  // so the nightly gate diffs these rather than raw wall times.
  rep.add_metric(rep.make("geomean", "speedup", "-", "-", 1), "ratio",
                 tbench::geomean(scalar1));
  if (record_p) {
    rep.add_metric(rep.make("geomean", "speedup", "-", "-", workers), "ratio",
                   tbench::geomean(scalarP));
  }
  for (const auto pol : policies) {
    for (const auto layer : layers) {
      rep.add_metric(rep.make("geomean", "speedup", tb::core::to_string(pol),
                              tbench::to_string(layer), 1),
                     "ratio", gm(pol, layer, false));
      if (record_p) {
        rep.add_metric(rep.make("geomean", "speedup", tb::core::to_string(pol),
                                tbench::to_string(layer), workers),
                       "ratio", gm(pol, layer, true));
      }
    }
  }
  if (!hybrid1.empty()) {
    rep.add_metric(rep.make("geomean", "speedup", "hybrid", "simd", 1), "ratio",
                   tbench::geomean(hybrid1));
    if (record_p) {
      rep.add_metric(rep.make("geomean", "speedup", "hybrid", "simd", workers), "ratio",
                     tbench::geomean(hybridP));
    }
  }
  if (!taskhyb1.empty()) {
    rep.add_metric(rep.make("geomean", "speedup", "hybrid:taskblock", "simd", 1), "ratio",
                   tbench::geomean(taskhyb1));
    if (record_p) {
      rep.add_metric(rep.make("geomean", "speedup", "hybrid:taskblock", "simd", workers),
                     "ratio", tbench::geomean(taskhybP));
    }
  }

  std::printf("Table 2: geomean speedup vs Ts (scale=%s, P=%d)\n\n", scale.c_str(), workers);
  std::printf("%-12s %7s | %7s %7s %7s | %7s %7s %7s\n", "", "scalar", "reexp:B", "SOA",
              "SIMD", "restart:B", "SOA", "SIMD");
  std::printf("%-12s %7.2f | %7.2f %7.2f %7.2f | %7.2f %7.2f %7.2f\n", "1-worker",
              tbench::geomean(scalar1), gm(SeqPolicy::Reexp, Layer::Aos, false),
              gm(SeqPolicy::Reexp, Layer::Soa, false), gm(SeqPolicy::Reexp, Layer::Simd, false),
              gm(SeqPolicy::Restart, Layer::Aos, false),
              gm(SeqPolicy::Restart, Layer::Soa, false),
              gm(SeqPolicy::Restart, Layer::Simd, false));
  std::printf("%-12s %7.2f | %7.2f %7.2f %7.2f | %7.2f %7.2f %7.2f\n", "P-worker",
              tbench::geomean(scalarP), gm(SeqPolicy::Reexp, Layer::Aos, true),
              gm(SeqPolicy::Reexp, Layer::Soa, true), gm(SeqPolicy::Reexp, Layer::Simd, true),
              gm(SeqPolicy::Restart, Layer::Aos, true),
              gm(SeqPolicy::Restart, Layer::Soa, true),
              gm(SeqPolicy::Restart, Layer::Simd, true));
  std::printf("%-12s %7.2f | %7.2f %7.2f %7.2f | %7.2f %7.2f %7.2f\n", "Scalability",
              tbench::geomean(scalarP) / tbench::geomean(scalar1),
              gm(SeqPolicy::Reexp, Layer::Aos, true) / gm(SeqPolicy::Reexp, Layer::Aos, false),
              gm(SeqPolicy::Reexp, Layer::Soa, true) / gm(SeqPolicy::Reexp, Layer::Soa, false),
              gm(SeqPolicy::Reexp, Layer::Simd, true) /
                  gm(SeqPolicy::Reexp, Layer::Simd, false),
              gm(SeqPolicy::Restart, Layer::Aos, true) /
                  gm(SeqPolicy::Restart, Layer::Aos, false),
              gm(SeqPolicy::Restart, Layer::Soa, true) /
                  gm(SeqPolicy::Restart, Layer::Soa, false),
              gm(SeqPolicy::Restart, Layer::Simd, true) /
                  gm(SeqPolicy::Restart, Layer::Simd, false));
  if (!hybrid1.empty()) {
    std::printf("\n%-12s %7.2f | %7.2f | %7.2f   (traversal benchmarks; lockstep blocks "
                "on the pool)\n",
                "Hybrid", tbench::geomean(hybrid1), tbench::geomean(hybridP),
                tbench::geomean(hybridP) / tbench::geomean(hybrid1));
  }
  if (!taskhyb1.empty()) {
    std::printf("%-12s %7.2f | %7.2f | %7.2f   (task-block benchmarks; strip-mined root "
                "blocks)\n",
                "Task-hybrid", tbench::geomean(taskhyb1), tbench::geomean(taskhybP),
                tbench::geomean(taskhybP) / tbench::geomean(taskhyb1));
  }
  if (!autotuned1.empty()) {
    std::printf("%-12s %7.2f | %7.2f | %7.2f   (t_reexp/grain swept by "
                "core::autotune_hybrid)\n",
                "Autotuned", tbench::geomean(autotuned1), tbench::geomean(autotunedP),
                tbench::geomean(autotunedP) / tbench::geomean(autotuned1));
  }
  std::printf(
      "\nExpected shape (paper): Block > scalar at 1 worker, SOA >= Block, SIMD >> SOA.\n"
      "Wall-clock scalability on this host reflects %u hardware thread(s).\n",
      std::thread::hardware_concurrency());
  const int json_rc = rep.finish();
  return all_ok ? json_rc : 1;
}
