// §4 theorems — measured steps/makespans of the real schedulers and the
// discrete simulator against the closed-form bounds (Theorems 1–4).
//
// Prints one row per (tree family × policy × block size) with the measured
// value, the bound, and their ratio; ratios should be Θ(1).  Step counts
// and makespans are deterministic, so the JSON records diff exactly.
//
// Flags: --q=N (default 8), --format=json, --out=
#include <cstdio>
#include <string>
#include <vector>

#include "bench/support/report.hpp"
#include "core/driver.hpp"
#include "sim/bounds.hpp"
#include "sim/comp_tree.hpp"
#include "sim/par_sim.hpp"
#include "sim/tree_program.hpp"

int main(int argc, char** argv) {
  using namespace tb;
  tbench::Flags flags(argc, argv);
  const int q = static_cast<int>(flags.get_int("q", 8));
  tbench::Reporter rep("theory_bounds", flags);

  struct Family {
    std::string name;
    sim::CompTree tree;
  };
  std::vector<Family> families;
  families.push_back({"perfect(2^17)", sim::CompTree::perfect_binary(17)});
  families.push_back({"caterpillar(20k)", sim::CompTree::caterpillar(20000)});
  families.push_back({"random(200k,.95)", sim::CompTree::random_binary(200000, 0.95, 11)});
  families.push_back({"fib(22)", sim::CompTree::fib_tree(22)});

  std::printf("== Sequential policies vs Theorems 1-3 (Q=%d) ==\n", q);
  std::printf("%-18s %-8s %7s | %10s %10s %10s %7s\n", "tree", "policy", "block", "steps",
              "bound", "optimal", "ratio");
  for (const auto& f : families) {
    const std::uint64_t n = f.tree.num_nodes();
    const int h = f.tree.height;
    for (const std::size_t block : {8u, 64u, 1024u}) {
      const double k = static_cast<double>(block) / q;
      for (const auto pol :
           {core::SeqPolicy::Basic, core::SeqPolicy::Reexp, core::SeqPolicy::Restart}) {
        sim::CompTreeProgram prog{&f.tree};
        const std::vector roots{sim::CompTreeProgram::root()};
        core::ExecStats st;
        const auto th =
            core::Thresholds::for_block_size(q, block, std::min<std::size_t>(block, 16));
        (void)core::run_seq<core::SoaExec<sim::CompTreeProgram>>(prog, roots, pol, th, &st);
        double bound = 0;
        switch (pol) {
          case core::SeqPolicy::Basic: bound = sim::theorem1_bound(n, h, k, q); break;
          case core::SeqPolicy::Reexp: bound = sim::theorem2_bound(n, h, k, k, q); break;
          case core::SeqPolicy::Restart: bound = sim::theorem3_bound(n, h, q); break;
        }
        rep.add_metric(rep.make(f.name, "block=" + std::to_string(block),
                                core::to_string(pol), "soa"),
                       "steps", static_cast<double>(st.steps_total));
        std::printf("%-18s %-8s %7zu | %10llu %10.0f %10.0f %7.2f\n", f.name.c_str(),
                    core::to_string(pol), block,
                    static_cast<unsigned long long>(st.steps_total), bound,
                    sim::optimal_lower_bound(n, h, q, 1),
                    static_cast<double>(st.steps_total) / bound);
      }
    }
  }

  std::printf("\n== Parallel restart vs Theorem 4 (simulator, block=128) ==\n");
  std::printf("%-18s %3s | %10s %10s %7s | %10s\n", "tree", "P", "makespan", "bound", "ratio",
              "steals");
  for (const auto& f : families) {
    const std::uint64_t n = f.tree.num_nodes();
    const int h = f.tree.height;
    const std::size_t block = 128;
    const double k = static_cast<double>(block) / q;
    for (const int p : {1, 2, 4, 8, 16}) {
      sim::SimConfig cfg;
      cfg.p = p;
      cfg.q = q;
      cfg.t_dfe = block;
      cfg.t_bfe = block;
      cfg.t_restart = 16;
      cfg.policy = sim::SimPolicy::Restart;
      const auto res = sim::simulate(f.tree, cfg);
      const double bound = sim::theorem4_bound(n, h, q, p, k);
      rep.add_metric(rep.make(f.name, "sim:block=128", "restart", "-", p), "steps",
                     static_cast<double>(res.makespan));
      std::printf("%-18s %3d | %10llu %10.0f %7.2f | %10llu\n", f.name.c_str(), p,
                  static_cast<unsigned long long>(res.makespan), bound,
                  static_cast<double>(res.makespan) / bound,
                  static_cast<unsigned long long>(res.steal_attempts));
    }
  }
  std::printf("\n# Ratios should be Θ(1): bounded above by a modest constant, independent\n"
              "# of tree family, block size (restart), and core count (Theorem 4).\n");
  return rep.finish();
}
