// --key=value flag parsing shared by every bench driver and the tools/ CLIs.
//
// Grammar: `--key=value` sets key; a bare `--flag` sets it to "1"; anything
// not starting with "--" is collected as a positional argument (bench_diff's
// two input files).  Repeated keys: the LAST occurrence wins, so wrapper
// scripts can append overrides to a fixed base command line.  The numeric
// getters parse strictly and fall back to the caller's default on malformed
// input instead of throwing mid-benchmark.
#pragma once

#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tbench {

class Flags {
public:
  Flags() = default;
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string_view a = argv[i];
      if (a.rfind("--", 0) != 0) {
        positional_.emplace_back(a);
        continue;
      }
      a.remove_prefix(2);
      const auto eq = a.find('=');
      if (eq == std::string_view::npos) {
        kv_.emplace_back(std::string(a), "1");
      } else {
        kv_.emplace_back(std::string(a.substr(0, eq)), std::string(a.substr(eq + 1)));
      }
    }
  }

  std::string get(const std::string& key, const std::string& def = "") const {
    for (auto it = kv_.rbegin(); it != kv_.rend(); ++it) {
      if (it->first == key) return it->second;
    }
    return def;
  }
  long get_int(const std::string& key, long def) const {
    const auto v = get(key);
    if (v.empty()) return def;
    char* end = nullptr;
    const long parsed = std::strtol(v.c_str(), &end, 10);
    return (end == v.c_str() || *end != '\0') ? def : parsed;
  }
  double get_double(const std::string& key, double def) const {
    const auto v = get(key);
    if (v.empty()) return def;
    char* end = nullptr;
    const double parsed = std::strtod(v.c_str(), &end);
    return (end == v.c_str() || *end != '\0') ? def : parsed;
  }
  bool has(const std::string& key) const { return !get(key).empty(); }
  const std::vector<std::string>& positional() const { return positional_; }

private:
  std::vector<std::pair<std::string, std::string>> kv_;
  std::vector<std::string> positional_;
};

// True when `name` is in the comma-separated list (or the list is empty).
inline bool selected(const std::string& list, const std::string& name) {
  if (list.empty()) return true;
  std::size_t pos = 0;
  while (pos <= list.size()) {
    const auto comma = list.find(',', pos);
    const auto item = list.substr(pos, comma == std::string::npos ? std::string::npos
                                                                  : comma - pos);
    if (item == name) return true;
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return false;
}

}  // namespace tbench
