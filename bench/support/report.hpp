// Structured benchmark results (schema "taskbatch-bench-results", v1).
//
// Every bench driver funnels its measurements through a Reporter: the
// human-readable table keeps printing exactly as before, and with
// `--format=json [--out=<path>]` the driver additionally emits a
// schema-versioned JSON document — a metadata header (driver, scale, host,
// compiler, commit, timestamp) plus one Result record per measurement.
// tools/bench_diff joins two such documents on Result::key() and gates perf
// regressions; bench/baselines/ holds checked-in reference documents.
//
// Units: a record's `unit` says what seconds_best measures and which
// direction is better.  "seconds" (wall time), "steps"/"frames"/"tasks"/
// "count" (scheduler accounting) are lower-is-better; "utilization",
// "ratio", "speedup", "occupancy", "qps" (serving throughput) are
// higher-is-better.  Deterministic
// metrics (Fig 4 utilization, simulator makespans) diff exactly; wall times
// carry host noise and are gated via ratio-unit records where possible.
#pragma once

#include <cstdio>
#include <ctime>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#if __has_include(<sys/utsname.h>)
#include <sys/utsname.h>
#define TBENCH_HAS_UTSNAME 1
#endif

#include "bench/support/flags.hpp"
#include "bench/support/json.hpp"
#include "bench/support/timing.hpp"

// Configure-time git commit, injected by CMake (taskbatch_buildinfo); stale
// until the next reconfigure, so it is best-effort metadata, not identity.
#ifndef TASKBATCH_GIT_COMMIT
#define TASKBATCH_GIT_COMMIT "unknown"
#endif

// Same GCC 12 -Warray-bounds false positive as json.hpp: the Object/Array
// emplace_back calls in to_json()/document() trip it when inlined at -O3.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Warray-bounds"
#endif

namespace tbench {

inline constexpr const char* kResultSchema = "taskbatch-bench-results";
inline constexpr int kResultSchemaVersion = 1;

struct Result {
  std::string benchmark;  // e.g. "fib", or a tree-family name for simulators
  std::string variant;    // driver-specific rung: "seq", "cilk", "blocked", "block=32", ...
  std::string policy;     // "reexp" / "restart" / "basic" / "scalar" / "-"
  std::string layer;      // "block" / "soa" / "simd" / "-"
  int workers = 0;        // 0 = sequential scheduler / not applicable
  std::string scale;      // "test" / "default" / "paper" / "-"
  int reps = 1;
  double seconds_best = 0.0;        // best observed value, in `unit`
  std::vector<double> seconds_all;  // every rep, in run order
  std::string digest;               // result digest ("" when the driver has none)
  std::string unit = "seconds";

  bool lower_is_better() const {
    return !(unit == "utilization" || unit == "ratio" || unit == "speedup" ||
             unit == "occupancy" || unit == "qps");
  }
  // Identity for joining two result files (everything but the measurements).
  std::string key() const {
    return benchmark + "|" + variant + "|" + policy + "|" + layer + "|" +
           std::to_string(workers) + "|" + scale + "|" + unit;
  }
  friend bool operator==(const Result&, const Result&) = default;
};

inline json::Value to_json(const Result& r) {
  json::Array all;
  all.reserve(r.seconds_all.size());
  for (const double t : r.seconds_all) all.emplace_back(t);
  json::Object o;
  o.emplace_back("benchmark", r.benchmark);
  o.emplace_back("variant", r.variant);
  o.emplace_back("policy", r.policy);
  o.emplace_back("layer", r.layer);
  o.emplace_back("workers", r.workers);
  o.emplace_back("scale", r.scale);
  o.emplace_back("reps", r.reps);
  o.emplace_back("seconds_best", r.seconds_best);
  o.emplace_back("seconds_all", std::move(all));
  o.emplace_back("digest", r.digest);
  o.emplace_back("unit", r.unit);
  return json::Value(std::move(o));
}

namespace detail {

inline const json::Value& require(const json::Value& v, std::string_view key) {
  const json::Value* p = v.find(key);
  if (p == nullptr) {
    throw std::runtime_error("result record missing field \"" + std::string(key) + "\"");
  }
  return *p;
}

}  // namespace detail

// Throws std::runtime_error on schema violations.
inline Result result_from_json(const json::Value& v) {
  if (!v.is_object()) throw std::runtime_error("result record is not an object");
  Result r;
  r.benchmark = detail::require(v, "benchmark").as_string();
  r.variant = detail::require(v, "variant").as_string();
  r.policy = detail::require(v, "policy").as_string();
  r.layer = detail::require(v, "layer").as_string();
  r.workers = static_cast<int>(detail::require(v, "workers").as_int());
  r.scale = detail::require(v, "scale").as_string();
  r.reps = static_cast<int>(detail::require(v, "reps").as_int());
  r.seconds_best = detail::require(v, "seconds_best").as_double();
  for (const auto& t : detail::require(v, "seconds_all").as_array()) {
    r.seconds_all.push_back(t.as_double());
  }
  r.digest = detail::require(v, "digest").as_string();
  if (const json::Value* u = v.find("unit")) r.unit = u->as_string();
  return r;
}

struct Document {
  std::string driver;
  std::string scale;
  std::vector<Result> records;
};

// Parses and validates a full results document (as written by Reporter).
inline Document document_from_json(const json::Value& v) {
  if (!v.is_object()) throw std::runtime_error("results document is not an object");
  const std::string schema = detail::require(v, "schema").as_string();
  if (schema != kResultSchema) {
    throw std::runtime_error("unexpected schema \"" + schema + "\"");
  }
  const auto version = detail::require(v, "schema_version").as_int();
  if (version > kResultSchemaVersion) {
    throw std::runtime_error("schema_version " + std::to_string(version) +
                             " is newer than this reader (" +
                             std::to_string(kResultSchemaVersion) + ")");
  }
  Document doc;
  doc.driver = detail::require(v, "driver").as_string();
  if (const json::Value* s = v.find("scale")) doc.scale = s->as_string();
  for (const auto& rec : detail::require(v, "records").as_array()) {
    doc.records.push_back(result_from_json(rec));
  }
  return doc;
}

class Reporter {
public:
  Reporter(std::string driver, const Flags& flags)
      : driver_(std::move(driver)),
        scale_(flags.get("scale", "default")),
        format_(flags.get("format", "table")),
        out_path_(flags.get("out")) {}

  bool json_enabled() const { return format_ == "json"; }
  const std::string& scale() const { return scale_; }

  // A record pre-filled with this run's scale; callers fill the rest.
  Result make(std::string benchmark, std::string variant, std::string policy = "-",
              std::string layer = "-", int workers = 0) const {
    Result r;
    r.benchmark = std::move(benchmark);
    r.variant = std::move(variant);
    r.policy = std::move(policy);
    r.layer = std::move(layer);
    r.workers = workers;
    r.scale = scale_;
    return r;
  }

  void add(Result r) { records_.push_back(std::move(r)); }

  // Times fn best-of-reps, records the Result, returns the best time — the
  // drop-in replacement for bare time_best() calls in the drivers.
  template <class F>
  double add_timed(Result proto, int reps, F&& fn) {
    proto.seconds_all = time_reps(fn, reps);
    proto.reps = reps;
    proto.seconds_best = best_of(proto.seconds_all);
    proto.unit = "seconds";
    const double best = proto.seconds_best;
    add(std::move(proto));
    return best;
  }

  // Patches the digest of the most recently added record with the digest the
  // workload actually computed — add_timed runs the workload inside itself,
  // so the result digest exists only afterwards.  Recording the *actual*
  // digest (never the expected one) is what lets bench_diff's digest gate
  // catch a scheduler change that produces wrong answers.
  void set_last_digest(std::string digest) {
    if (!records_.empty()) records_.back().digest = std::move(digest);
  }

  // Records a deterministic (non-timed) metric, e.g. SIMD utilization or a
  // simulator makespan.
  void add_metric(Result proto, std::string unit, double value) {
    proto.unit = std::move(unit);
    proto.reps = 1;
    proto.seconds_best = value;
    proto.seconds_all = {value};
    add(std::move(proto));
  }

  const std::vector<Result>& records() const { return records_; }

  json::Value document() const {
    json::Object host;
#ifdef TBENCH_HAS_UTSNAME
    struct utsname u {};
    if (uname(&u) == 0) {
      host.emplace_back("os", std::string(u.sysname) + " " + u.release);
      host.emplace_back("machine", std::string(u.machine));
    }
#endif
    host.emplace_back("hardware_threads",
                      static_cast<int>(std::thread::hardware_concurrency()));

    json::Object build;
#if defined(__clang__)
    build.emplace_back("compiler", std::string("clang ") + __clang_version__);
#elif defined(__GNUC__)
    build.emplace_back("compiler", std::string("gcc ") + __VERSION__);
#else
    build.emplace_back("compiler", "unknown");
#endif
    build.emplace_back("commit", TASKBATCH_GIT_COMMIT);

    json::Array records;
    records.reserve(records_.size());
    for (const auto& r : records_) records.push_back(to_json(r));

    json::Object doc;
    doc.emplace_back("schema", kResultSchema);
    doc.emplace_back("schema_version", kResultSchemaVersion);
    doc.emplace_back("driver", driver_);
    doc.emplace_back("scale", scale_);
    doc.emplace_back("created_unix", static_cast<long long>(std::time(nullptr)));
    doc.emplace_back("host", std::move(host));
    doc.emplace_back("build", std::move(build));
    doc.emplace_back("records", std::move(records));
    return json::Value(std::move(doc));
  }

  // Writes the JSON document when --format=json was given; with no --out
  // (or --out=-) it goes to stdout, after the human table.  Returns the
  // driver's exit-code contribution: 0 on success or nothing to do, 1 on
  // I/O failure.
  int finish() const {
    if (!json_enabled()) return 0;
    const std::string text = document().dump(2) + "\n";
    if (out_path_.empty() || out_path_ == "-") {
      std::fwrite(text.data(), 1, text.size(), stdout);
      return 0;
    }
    std::FILE* f = std::fopen(out_path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot open --out=%s for writing\n", out_path_.c_str());
      return 1;
    }
    const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
    const bool closed = std::fclose(f) == 0;
    if (!ok || !closed) {
      std::fprintf(stderr, "error: short write to --out=%s\n", out_path_.c_str());
      return 1;
    }
    return 0;
  }

private:
  std::string driver_;
  std::string scale_;
  std::string format_;
  std::string out_path_;
  std::vector<Result> records_;
};

}  // namespace tbench

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
