// Join + delta logic behind tools/bench_diff, kept header-side so the unit
// suite can exercise it without shelling out.
//
// Records from two documents are joined on Result::key().  Each matched
// pair gets a *normalized* ratio — next/base for lower-is-better units,
// base/next for higher-is-better — so ratio > 1 always means "worse than
// baseline" and one threshold gates every unit.  The geomean of normalized
// ratios summarizes the whole document the way Table 2 summarizes the
// suite.
#pragma once

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "bench/support/report.hpp"

namespace tbench {

struct DiffEntry {
  Result base;
  Result next;
  double ratio = 1.0;      // normalized: > 1 is worse than baseline
  double delta_pct = 0.0;  // (ratio - 1) * 100
  bool regressed = false;
  bool digest_mismatch = false;
};

struct DiffReport {
  std::vector<DiffEntry> matched;   // sorted worst-first
  std::vector<Result> only_base;    // present in baseline, missing in next
  std::vector<Result> only_next;    // new records with no baseline
  double geomean_ratio = 1.0;       // of matched normalized ratios
  int regressions = 0;
  int digest_mismatches = 0;
};

// `units` is a comma-separated filter ("" = all): records whose unit is not
// listed are ignored on both sides.
inline DiffReport diff_results(const std::vector<Result>& base,
                               const std::vector<Result>& next, double threshold_pct,
                               const std::string& units = "") {
  const auto wanted = [&](const Result& r) { return selected(units, r.unit); };

  DiffReport rep;
  std::map<std::string, const Result*> next_by_key;
  for (const auto& r : next) {
    if (wanted(r)) next_by_key.emplace(r.key(), &r);  // first occurrence wins
  }

  std::set<std::string> used;
  std::vector<double> ratios;
  for (const auto& b : base) {
    if (!wanted(b)) continue;
    const auto it = next_by_key.find(b.key());
    if (it == next_by_key.end()) {
      rep.only_base.push_back(b);
      continue;
    }
    used.insert(b.key());
    const Result& n = *it->second;
    const double vb = std::max(b.seconds_best, 1e-12);
    const double vn = std::max(n.seconds_best, 1e-12);
    DiffEntry e;
    e.base = b;
    e.next = n;
    e.ratio = b.lower_is_better() ? vn / vb : vb / vn;
    e.delta_pct = (e.ratio - 1.0) * 100.0;
    e.regressed = e.ratio > 1.0 + threshold_pct / 100.0;
    e.digest_mismatch = !b.digest.empty() && !n.digest.empty() && b.digest != n.digest;
    rep.regressions += e.regressed ? 1 : 0;
    rep.digest_mismatches += e.digest_mismatch ? 1 : 0;
    ratios.push_back(e.ratio);
    rep.matched.push_back(std::move(e));
  }
  for (const auto& n : next) {
    if (wanted(n) && used.count(n.key()) == 0) rep.only_next.push_back(n);
  }

  rep.geomean_ratio = ratios.empty() ? 1.0 : geomean(ratios);
  std::sort(rep.matched.begin(), rep.matched.end(),
            [](const DiffEntry& a, const DiffEntry& b) { return a.ratio > b.ratio; });
  return rep;
}

}  // namespace tbench
