// Wall-clock timing with repetitions and geometric means.
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <vector>

namespace tbench {

class Timer {
public:
  Timer() : start_(clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

// All N wall times of `fn`, in run order.
template <class F>
std::vector<double> time_reps(F&& fn, int reps) {
  std::vector<double> all;
  all.reserve(static_cast<std::size_t>(std::max(reps, 0)));
  for (int r = 0; r < reps; ++r) {
    Timer t;
    fn();
    all.push_back(t.seconds());
  }
  return all;
}

inline double best_of(const std::vector<double>& xs) {
  return xs.empty() ? 0.0 : *std::min_element(xs.begin(), xs.end());
}

// Best-of-N wall time of `fn`.
template <class F>
double time_best(F&& fn, int reps = 3) {
  return best_of(time_reps(fn, reps));
}

inline double geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double lg = 0;
  for (const double x : xs) lg += std::log(std::max(x, 1e-12));
  return std::exp(lg / static_cast<double>(xs.size()));
}

}  // namespace tbench
