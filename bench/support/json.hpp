// Minimal strict JSON for the bench reporter and tools/bench_diff.
//
// Scope: the full JSON value model (null/bool/number/string/array/object)
// with *ordered* objects (stable, diffable output), a strict recursive-
// descent parser (rejects trailing garbage, raw control characters, bad
// escapes; handles \uXXXX including surrogate pairs; depth-limited), and a
// writer that escapes every control character and emits non-finite numbers
// as null (JSON has no NaN/Inf).  Errors are std::runtime_error with a byte
// offset — benchmark results are small, so clarity beats speed here.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

// GCC 12 at -O2/-O3 issues spurious -Warray-bounds warnings ("array
// subscript 0 is outside array bounds of ... [0]") when vector
// reallocation of pair<string, Value> is inlined (gcc PR 105762 family).
// Scoped suppression; popped at end of header.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Warray-bounds"
#endif

namespace tbench::json {

class Value;
using Array = std::vector<Value>;
using Member = std::pair<std::string, Value>;
using Object = std::vector<Member>;

class Value {
public:
  Value() : v_(nullptr) {}
  Value(std::nullptr_t) : v_(nullptr) {}
  Value(bool b) : v_(b) {}
  Value(double d) : v_(d) {}
  Value(int i) : v_(static_cast<double>(i)) {}
  Value(long l) : v_(static_cast<double>(l)) {}
  Value(long long l) : v_(static_cast<double>(l)) {}
  Value(unsigned u) : v_(static_cast<double>(u)) {}
  Value(std::string s) : v_(std::move(s)) {}
  Value(std::string_view s) : v_(std::string(s)) {}
  Value(const char* s) : v_(std::string(s)) {}
  Value(Array a) : v_(std::move(a)) {}
  Value(Object o) : v_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_number() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_array() const { return std::holds_alternative<Array>(v_); }
  bool is_object() const { return std::holds_alternative<Object>(v_); }

  bool as_bool() const { return checked<bool>("bool"); }
  double as_double() const { return checked<double>("number"); }
  long long as_int() const { return static_cast<long long>(checked<double>("number")); }
  const std::string& as_string() const { return checked<std::string>("string"); }
  const Array& as_array() const { return checked<Array>("array"); }
  const Object& as_object() const { return checked<Object>("object"); }

  // Object member lookup (first match); nullptr when absent or not an object.
  const Value* find(std::string_view key) const {
    if (!is_object()) return nullptr;
    for (const auto& [k, v] : std::get<Object>(v_)) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  // Serialize; indent > 0 pretty-prints with that many spaces per level.
  std::string dump(int indent = 0) const {
    std::string out;
    dump_into(out, indent, 0);
    return out;
  }

  static Value parse(std::string_view text);

private:
  template <class T>
  const T& checked(const char* what) const {
    if (const T* p = std::get_if<T>(&v_)) return *p;
    throw std::runtime_error(std::string("json: value is not a ") + what);
  }

  void dump_into(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v_;
};

// ---- writer -----------------------------------------------------------------------

inline void escape_into(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned char>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

inline void number_into(std::string& out, double d) {
  if (!std::isfinite(d)) {
    out += "null";  // strict JSON: no NaN/Inf literals
    return;
  }
  // Integral values print as integers (stable across round-trips and easy
  // to read in baselines); everything else gets a round-trip-exact %.17g.
  constexpr double kMaxExact = 9007199254740992.0;  // 2^53
  if (d == std::floor(d) && std::abs(d) < kMaxExact) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(d));
    out += buf;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  out += buf;
}

inline void Value::dump_into(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent <= 0) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += as_bool() ? "true" : "false";
  } else if (is_number()) {
    number_into(out, as_double());
  } else if (is_string()) {
    escape_into(out, as_string());
  } else if (is_array()) {
    const Array& a = as_array();
    if (a.empty()) {
      out += "[]";
      return;
    }
    out.push_back('[');
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (i) out.push_back(',');
      newline(depth + 1);
      a[i].dump_into(out, indent, depth + 1);
    }
    newline(depth);
    out.push_back(']');
  } else {
    const Object& o = as_object();
    if (o.empty()) {
      out += "{}";
      return;
    }
    out.push_back('{');
    for (std::size_t i = 0; i < o.size(); ++i) {
      if (i) out.push_back(',');
      newline(depth + 1);
      escape_into(out, o[i].first);
      out.push_back(':');
      if (indent > 0) out.push_back(' ');
      o[i].second.dump_into(out, indent, depth + 1);
    }
    newline(depth);
    out.push_back('}');
  }
}

// ---- parser -----------------------------------------------------------------------

namespace detail {

struct Parser {
  std::string_view s;
  std::size_t i = 0;
  int depth = 0;
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("json parse error at byte " + std::to_string(i) + ": " + why);
  }
  void skip_ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r')) ++i;
  }
  char peek() const {
    if (i >= s.size()) fail("unexpected end of input");
    return s[i];
  }
  bool consume(char c) {
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }
  void expect(char c) {
    if (!consume(c)) fail(std::string("expected '") + c + "'");
  }
  void literal(std::string_view lit) {
    if (s.substr(i, lit.size()) != lit) fail("bad literal");
    i += lit.size();
  }

  Value parse_value() {
    if (++depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    Value v;
    switch (peek()) {
      case '{': v = parse_object(); break;
      case '[': v = parse_array(); break;
      case '"': v = Value(parse_string()); break;
      case 't': literal("true"); v = Value(true); break;
      case 'f': literal("false"); v = Value(false); break;
      case 'n': literal("null"); v = Value(nullptr); break;
      default: v = parse_number(); break;
    }
    --depth;
    return v;
  }

  Value parse_number() {
    const std::size_t start = i;
    const auto num_char = [](char c) {
      return (c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' || c == 'e' ||
             c == 'E';
    };
    while (i < s.size() && num_char(s[i])) ++i;
    const std::string num(s.substr(start, i - start));
    char* end = nullptr;
    const double d = std::strtod(num.c_str(), &end);
    if (num.empty() || end != num.c_str() + num.size()) fail("bad number");
    return Value(d);
  }

  unsigned parse_hex4() {
    if (i + 4 > s.size()) fail("truncated \\u escape");
    unsigned v = 0;
    for (int k = 0; k < 4; ++k) {
      const char c = s[i++];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<unsigned>(c - 'A' + 10);
      else fail("bad \\u digit");
    }
    return v;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (i >= s.size()) fail("unterminated string");
      const char c = s[i++];
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (i >= s.size()) fail("truncated escape");
      const char e = s[i++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            if (!(consume('\\') && consume('u'))) fail("unpaired high surrogate");
            const unsigned lo = parse_hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) fail("bad low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: fail("bad escape character");
      }
    }
    return out;
  }

  Value parse_array() {
    expect('[');
    Array a;
    skip_ws();
    if (consume(']')) return Value(std::move(a));
    while (true) {
      a.push_back(parse_value());
      skip_ws();
      if (consume(']')) break;
      expect(',');
    }
    return Value(std::move(a));
  }

  Value parse_object() {
    expect('{');
    Object o;
    skip_ws();
    if (consume('}')) return Value(std::move(o));
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      o.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (consume('}')) break;
      expect(',');
    }
    return Value(std::move(o));
  }
};

}  // namespace detail

inline Value Value::parse(std::string_view text) {
  detail::Parser p{text};
  Value v = p.parse_value();
  p.skip_ws();
  if (p.i != text.size()) p.fail("trailing garbage after document");
  return v;
}

}  // namespace tbench::json

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
