// Ablation — input spatial order vs traversal performance.
//
// The outer data-parallel iterations of the traversal benchmarks arrive in
// whatever order the input provides.  Sorting them along the Z-order curve
// makes adjacent block lanes follow similar tree paths: child blocks stay
// denser (less divergence), and the shared tree is reused out of cache.
// This harness measures point correlation and Barnes-Hut in both orders,
// for the blocked restart+SIMD scheduler *and* the lockstep baseline —
// lockstep leans on input order much harder, since it has no re-blocking
// to recover from divergence.
//
// Flags: --scale=default|paper, --format=json, --out=
#include <cstdio>
#include <vector>

#include "apps/barneshut.hpp"
#include "apps/pointcorr.hpp"
#include "bench/support/report.hpp"
#include "core/driver.hpp"
#include "lockstep/lockstep_barneshut.hpp"
#include "lockstep/lockstep_pointcorr.hpp"
#include "spatial/bodies.hpp"
#include "spatial/kdtree.hpp"
#include "spatial/morton.hpp"
#include "spatial/octree.hpp"

int main(int argc, char** argv) {
  tbench::Flags flags(argc, argv);
  const bool paper = flags.get("scale", "default") == "paper";
  const std::size_t n = paper ? 300000 : 20000;
  tbench::Reporter rep("ablation_locality", flags);

  std::printf("input order vs traversal time (restart+SIMD blocked, lockstep baseline)\n");
  std::printf("%-10s %-8s | %10s %10s %8s | %9s %9s\n", "benchmark", "order", "blocked(s)",
              "lockstep", "occup", "meandist", "check");

  {  // point correlation
    const auto random_order = tb::spatial::Bodies::uniform_cube(n);
    const auto sorted = tb::spatial::morton_sort(random_order);
    std::uint64_t reference = 0;
    for (int pass = 0; pass < 2; ++pass) {
      const auto& pts = pass == 0 ? random_order : sorted;
      const char* order = pass == 0 ? "random" : "morton";
      const auto tree = tb::spatial::KdTree::build(pts, 16);
      const tb::apps::PointCorrProgram prog{&pts, &tree, paper ? 0.01f : 0.02f};
      const auto roots = prog.roots();
      const auto th = tb::core::Thresholds::for_block_size(prog.simd_width, 1024, 128);
      std::uint64_t blocked = 0, lock = 0;
      const double t_blocked =
          rep.add_timed(rep.make("pointcorr", std::string("blocked:") + order, "restart",
                                 "simd"),
                        3, [&] {
                          blocked =
                              tb::core::run_seq<tb::core::SimdExec<tb::apps::PointCorrProgram>>(
                                  prog, roots, tb::core::SeqPolicy::Restart, th);
                        });
      tb::lockstep::LockstepStats ls;
      const double t_lock =
          rep.add_timed(rep.make("pointcorr", std::string("lockstep:") + order), 3, [&] {
            ls = {};
            lock = tb::lockstep::lockstep_pointcorr(prog, &ls);
          });
      rep.add_metric(rep.make("pointcorr", std::string("lockstep:") + order), "occupancy",
                     ls.occupancy());
      if (pass == 0) reference = blocked;
      std::printf("%-10s %-8s | %10.4f %10.4f %7.1f%% | %9.4f %9s\n", "pointcorr", order,
                  t_blocked, t_lock, ls.occupancy() * 100.0,
                  tb::spatial::mean_neighbor_distance(pts),
                  (blocked == lock && blocked == reference) ? "ok" : "MISMATCH");
    }
  }

  {  // barnes-hut
    const auto random_order = tb::spatial::Bodies::plummer(n);
    const auto sorted = tb::spatial::morton_sort(random_order);
    std::uint64_t reference = 0;
    for (int pass = 0; pass < 2; ++pass) {
      const auto& bodies = pass == 0 ? random_order : sorted;
      const char* order = pass == 0 ? "random" : "morton";
      const auto tree = tb::spatial::Octree::build(bodies, 8);
      std::vector<float> ax(bodies.size()), ay(bodies.size()), az(bodies.size());
      tb::apps::BarnesHutProgram prog{&bodies, &tree, ax.data(), ay.data(), az.data()};
      const float theta = 0.5f;
      const auto roots = prog.roots(theta);
      const auto th = tb::core::Thresholds::for_block_size(prog.simd_width, 512, 64);
      const auto reset = [&] {
        std::fill(ax.begin(), ax.end(), 0.0f);
        std::fill(ay.begin(), ay.end(), 0.0f);
        std::fill(az.begin(), az.end(), 0.0f);
      };
      std::uint64_t blocked = 0, lock = 0;
      const double t_blocked =
          rep.add_timed(rep.make("barneshut", std::string("blocked:") + order, "restart",
                                 "simd"),
                        3, [&] {
                          reset();
                          blocked =
                              tb::core::run_seq<tb::core::SimdExec<tb::apps::BarnesHutProgram>>(
                                  prog, roots, tb::core::SeqPolicy::Restart, th);
                        });
      tb::lockstep::LockstepStats ls;
      const double t_lock =
          rep.add_timed(rep.make("barneshut", std::string("lockstep:") + order), 3, [&] {
            reset();
            ls = {};
            lock = tb::lockstep::lockstep_barneshut(prog, theta, &ls);
          });
      rep.add_metric(rep.make("barneshut", std::string("lockstep:") + order), "occupancy",
                     ls.occupancy());
      if (pass == 0) reference = blocked;
      // Interaction totals differ between orders only through the tree
      // build (same bodies, same theta) — they must agree between engines.
      std::printf("%-10s %-8s | %10.4f %10.4f %7.1f%% | %9.4f %9s\n", "barneshut", order,
                  t_blocked, t_lock, ls.occupancy() * 100.0,
                  tb::spatial::mean_neighbor_distance(bodies),
                  blocked == lock ? "ok" : "MISMATCH");
      (void)reference;
    }
  }
  return rep.finish();
}
