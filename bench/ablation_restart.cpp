// Ablation — restart-specific design choices.
//
// (a) Restart-block threshold (the paper's "RB size" column): sweep
//     t_restart and report sequential-restart time and SIMD utilization.
// (b) The §6 no-intervening-steal merge elision: parallel restart with the
//     optimization on vs off (merge counts show why it matters).
//
// Flags: --scale=, --benchmarks=, --workers=, --format=json, --out=
#include <cstdio>
#include <string>

#include "bench/support/report.hpp"
#include "bench/suite.hpp"

int main(int argc, char** argv) {
  tbench::Flags flags(argc, argv);
  const std::string scale = flags.get("scale", "default");
  const std::string filter = flags.get("benchmarks", "nqueens,uts,parentheses,graphcol");
  const int workers = static_cast<int>(flags.get_int("workers", 4));
  tbench::Reporter rep("ablation_restart", flags);

  auto suite = tbench::make_suite(scale);

  std::printf("== (a) restart-block size sweep (sequential restart, SIMD layer) ==\n");
  std::printf("%-12s %8s | %9s %8s %10s\n", "benchmark", "t_rst", "time(s)", "util%",
              "restarts");
  for (auto& b : suite) {
    if (!tbench::selected(filter, b->name())) continue;
    for (const std::size_t rb : {8u, 32u, 128u, 512u, 2048u}) {
      if (rb > b->default_block()) continue;
      tbench::BlockedConfig cfg;
      cfg.policy = tb::core::SeqPolicy::Restart;
      cfg.layer = tbench::Layer::Simd;
      cfg.th = b->thresholds(0, rb);
      tb::core::ExecStats st;
      const std::string variant = "rb=" + std::to_string(rb);
      const double t = rep.add_timed(rep.make(b->name(), variant, "restart", "simd"), 2,
                                     [&] { (void)b->run_blocked(cfg, &st); });
      rep.add_metric(rep.make(b->name(), variant, "restart", "simd"), "utilization",
                     st.simd_utilization());
      std::printf("%-12s %8zu | %9.4f %8.1f %10llu\n", b->name().c_str(), rb, t,
                  st.simd_utilization() * 100.0,
                  static_cast<unsigned long long>(st.restart_actions));
    }
  }

  std::printf("\n== (b) merge elision (parallel restart, P=%d) ==\n", workers);
  std::printf("%-12s %8s | %9s %10s\n", "benchmark", "elide", "time(s)", "merges");
  tb::rt::ForkJoinPool pool(workers);
  for (auto& b : suite) {
    if (!tbench::selected(filter, b->name())) continue;
    for (const bool elide : {true, false}) {
      tbench::BlockedConfig cfg;
      cfg.policy = tb::core::SeqPolicy::Restart;
      cfg.layer = tbench::Layer::Simd;
      cfg.pool = &pool;
      cfg.elide = elide;
      cfg.th = b->thresholds();
      tb::core::ExecStats st;
      const std::string variant = elide ? "elide=on" : "elide=off";
      const double t =
          rep.add_timed(rep.make(b->name(), variant, "restart", "simd", workers), 2,
                        [&] { (void)b->run_blocked(cfg, &st); });
      std::printf("%-12s %8s | %9.4f %10llu\n", b->name().c_str(), elide ? "on" : "off", t,
                  static_cast<unsigned long long>(st.merges));
    }
  }
  return rep.finish();
}
