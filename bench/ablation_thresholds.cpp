// Ablation — §3.5 threshold sensitivity.
//
// (a) t_dfe (block-size cap): the BFE→DFE switch point; larger blocks give
//     more SIMD density at more space.  (b) t_bfe (re-expansion trigger)
//     with t_dfe fixed: the paper recommends k1 ≈ k; the sweep shows why.
//
// Flags: --scale=, --benchmarks=, --format=json, --out=
#include <cstdio>
#include <string>

#include "bench/support/report.hpp"
#include "bench/suite.hpp"

int main(int argc, char** argv) {
  tbench::Flags flags(argc, argv);
  const std::string scale = flags.get("scale", "default");
  const std::string filter = flags.get("benchmarks", "fib,nqueens,uts,minmax");
  tbench::Reporter rep("ablation_thresholds", flags);

  auto suite = tbench::make_suite(scale);

  std::printf("== (a) t_dfe sweep (sequential, SIMD layer, both policies) ==\n");
  std::printf("%-12s %8s | %-8s %9s %8s %12s\n", "benchmark", "t_dfe", "policy", "time(s)",
              "util%", "peak tasks");
  for (auto& b : suite) {
    if (!tbench::selected(filter, b->name())) continue;
    for (const std::size_t dfe : {32u, 256u, 2048u, 16384u}) {
      for (const auto pol : {tb::core::SeqPolicy::Reexp, tb::core::SeqPolicy::Restart}) {
        tbench::BlockedConfig cfg;
        cfg.policy = pol;
        cfg.layer = tbench::Layer::Simd;
        cfg.th = b->thresholds(dfe, std::min<std::size_t>(dfe / 8, 256));
        tb::core::ExecStats st;
        const std::string variant = "dfe=" + std::to_string(dfe);
        const double t =
            rep.add_timed(rep.make(b->name(), variant, tb::core::to_string(pol), "simd"), 2,
                          [&] { (void)b->run_blocked(cfg, &st); });
        rep.add_metric(rep.make(b->name(), variant, tb::core::to_string(pol), "simd"),
                       "utilization", st.simd_utilization());
        std::printf("%-12s %8zu | %-8s %9.4f %8.1f %12llu\n", b->name().c_str(), dfe,
                    tb::core::to_string(pol), t, st.simd_utilization() * 100.0,
                    static_cast<unsigned long long>(st.peak_space_tasks));
      }
    }
  }

  std::printf("\n== (b) t_bfe sweep at fixed t_dfe (re-expansion) ==\n");
  std::printf("%-12s %8s %8s | %9s %8s\n", "benchmark", "t_dfe", "t_bfe", "time(s)", "util%");
  for (auto& b : suite) {
    if (!tbench::selected(filter, b->name())) continue;
    const std::size_t dfe = b->default_block();
    for (const std::size_t bfe : {dfe / 64, dfe / 8, dfe / 2, dfe}) {
      if (bfe == 0) continue;
      tbench::BlockedConfig cfg;
      cfg.policy = tb::core::SeqPolicy::Reexp;
      cfg.layer = tbench::Layer::Simd;
      cfg.th = tb::core::Thresholds{b->q(), dfe, bfe, b->default_restart()}.clamped();
      tb::core::ExecStats st;
      const std::string variant =
          "dfe=" + std::to_string(dfe) + ":bfe=" + std::to_string(bfe);
      const double t = rep.add_timed(rep.make(b->name(), variant, "reexp", "simd"), 2,
                                     [&] { (void)b->run_blocked(cfg, &st); });
      std::printf("%-12s %8zu %8zu | %9.4f %8.1f\n", b->name().c_str(), dfe, bfe, t,
                  st.simd_utilization() * 100.0);
    }
  }
  std::printf("\n# Expected: utilization rises with t_dfe; k1 ≈ k (t_bfe ≈ t_dfe) is the\n"
              "# best re-expansion setting (§4.1), diminishing returns beyond ~2^11.\n");
  return rep.finish();
}
