// Ablation — steal-attempt cost sensitivity (§4.3's constant c).
//
// The Theorem 4 analysis assumes a steal attempt takes one time step and
// notes the proof generalizes to any constant c.  This harness sweeps c on
// the discrete simulator and reports makespans for the scalar, reexp, and
// restart policies on P cores.  Expected shape: steal attempts are a
// low-order term for every policy on work-rich trees (makespan is n/QP-
// dominated), so multiplying their cost by 32 should move makespans by
// percents, not factors — the concrete content of Theorem 4's O(n/QP +
// k·h) bound being steal-dominated only in its additive term.  The number
// of *attempts* also falls as c grows (a waiting thief attempts less
// often), which the attempt columns make visible.
//
// Flags: --p=N (default 8), --tree=fib|perfect|random (default fib),
//        --format=json, --out=
#include <cstdio>
#include <string>

#include "bench/support/report.hpp"
#include "sim/comp_tree.hpp"
#include "sim/par_sim.hpp"

int main(int argc, char** argv) {
  tbench::Flags flags(argc, argv);
  const int p = static_cast<int>(flags.get_int("p", 8));
  const std::string tree_name = flags.get("tree", "fib");
  tbench::Reporter rep("ablation_steal", flags);

  tb::sim::CompTree tree;
  if (tree_name == "perfect") {
    tree = tb::sim::CompTree::perfect_binary(18);
  } else if (tree_name == "random") {
    tree = tb::sim::CompTree::random_binary(300000, 0.72, 5);
  } else {
    tree = tb::sim::CompTree::fib_tree(26);
  }
  std::printf("steal-cost sensitivity: %s tree, %zu tasks, height %d, P=%d, Q=8\n",
              tree_name.c_str(), tree.num_nodes(), tree.height, p);
  std::printf("%8s | %12s %12s %12s | %10s %10s\n", "c", "scalar", "reexp", "restart",
              "steals(rx)", "steals(rs)");

  double base_scalar = 0, base_restart = 0;
  for (const std::uint64_t c : {1u, 2u, 4u, 8u, 16u, 32u}) {
    std::uint64_t makespan[3] = {0, 0, 0};
    std::uint64_t steals[3] = {0, 0, 0};
    int i = 0;
    for (const auto pol :
         {tb::sim::SimPolicy::ScalarWS, tb::sim::SimPolicy::Reexp, tb::sim::SimPolicy::Restart}) {
      tb::sim::SimConfig cfg;
      cfg.policy = pol;
      cfg.p = p;
      cfg.q = 8;
      cfg.t_dfe = 256;
      cfg.t_bfe = 256;
      cfg.t_restart = 64;
      cfg.steal_cost = c;
      const auto res = tb::sim::simulate(tree, cfg);
      makespan[i] = res.makespan;
      steals[i] = res.steal_attempts;
      rep.add_metric(rep.make(tree_name, "c=" + std::to_string(c), tb::sim::to_string(pol),
                              "-", p),
                     "steps", static_cast<double>(res.makespan));
      ++i;
    }
    if (c == 1) {
      base_scalar = static_cast<double>(makespan[0]);
      base_restart = static_cast<double>(makespan[2]);
    }
    std::printf("%8llu | %12llu %12llu %12llu | %10llu %10llu\n",
                static_cast<unsigned long long>(c),
                static_cast<unsigned long long>(makespan[0]),
                static_cast<unsigned long long>(makespan[1]),
                static_cast<unsigned long long>(makespan[2]),
                static_cast<unsigned long long>(steals[1]),
                static_cast<unsigned long long>(steals[2]));
    if (c == 32) {
      std::printf("\n# degradation at c=32 vs c=1: scalar %.2fx, restart %.2fx\n",
                  static_cast<double>(makespan[0]) / base_scalar,
                  static_cast<double>(makespan[2]) / base_restart);
    }
  }
  return rep.finish();
}
