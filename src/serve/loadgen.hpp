// Load generation for the serving bench: open-loop Poisson/uniform arrival
// streams and a closed-loop saturation mode, targeting one kernel lane of a
// (possibly multi-kernel) QueryServer.
//
// Open loop (rate_qps > 0): arrival times are SCHEDULED up front from the
// inter-arrival process and each submit carries its scheduled stamp, so a
// slow server is charged queueing delay for every query that should have
// been issued while it stalled (no coordinated omission).  The generator
// sleeps until each scheduled instant and then submits with a blocking
// `submit` — if the bounded queue is full the backpressure shows up as
// latency, never as silently dropped load.  Deadlines (deadline_rel_ns > 0)
// are likewise anchored to the *scheduled* arrival, so a stalled server
// sheds exactly the queries whose budget the stall consumed.
//
// Closed loop (rate_qps == 0): submit as fast as the queue accepts,
// stamping actual submit time.  Recorded latencies then mean "time in
// system under saturation" and throughput (completed / busy_seconds) is
// the capacity measurement the batched-vs-batch=1 gate compares.
//
// Query ids: round_robin (i % id_space) serves every id exactly once when
// total == id_space — required for digest-comparable knn runs, where
// serving the same query twice would corrupt its k-best list with
// duplicate inserts.  Otherwise ids are drawn uniformly from id_space.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "runtime/xoshiro.hpp"
#include "serve/clock.hpp"
#include "serve/server.hpp"

namespace tb::serve {

struct LoadGenOptions {
  double rate_qps = 0.0;  // 0 = closed loop (saturation)
  std::size_t total = 0;
  std::int32_t id_space = 1;
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;
  bool poisson = true;       // exponential inter-arrivals; false = fixed gaps
  bool round_robin = false;  // i % id_space instead of uniform draws
  int kernel = 0;            // target kernel lane
  // Per-query latency budget relative to the (scheduled) arrival; 0 = no
  // deadline.  The admission layer sheds queries that cannot meet it.
  std::int64_t deadline_rel_ns = 0;
};

// Runs the load in the calling thread; returns the number of queries the
// server accepted (== opt.total unless the server stopped mid-load).
inline std::size_t generate_load(QueryServer& server, const LoadGenOptions& opt) {
  rt::Xoshiro256 rng(opt.seed);
  const auto next_id = [&](std::size_t i) {
    if (opt.round_robin) {
      return static_cast<std::int32_t>(i % static_cast<std::size_t>(opt.id_space));
    }
    return static_cast<std::int32_t>(rng.below(static_cast<std::uint32_t>(opt.id_space)));
  };
  const auto deadline_of = [&](std::int64_t arrival_ns) {
    return opt.deadline_rel_ns > 0 ? arrival_ns + opt.deadline_rel_ns : kNoDeadline;
  };

  std::size_t accepted = 0;
  if (opt.rate_qps <= 0.0) {
    for (std::size_t i = 0; i < opt.total; ++i) {
      const std::int64_t t = now_ns();
      if (!server.submit(opt.kernel, next_id(i), t, deadline_of(t))) break;
      ++accepted;
    }
    return accepted;
  }

  const double gap_ns = 1e9 / opt.rate_qps;
  std::int64_t next = now_ns();
  for (std::size_t i = 0; i < opt.total; ++i) {
    const std::int32_t id = next_id(i);
    double gap = gap_ns;
    if (opt.poisson) {
      // Inverse-CDF exponential; uniform01() < 1 so the log argument is > 0.
      gap = -std::log(1.0 - rng.uniform01()) * gap_ns;
    }
    next += static_cast<std::int64_t>(gap);
    sleep_until_ns(next);
    if (!server.submit(opt.kernel, id, next, deadline_of(next))) break;
    ++accepted;
  }
  return accepted;
}

}  // namespace tb::serve
