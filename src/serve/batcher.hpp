// Admission batching: max-batch / max-wait policy over arrival timestamps.
//
// The batcher is a pure state machine over std::int64_t nanoseconds — it
// never reads a clock.  The admission thread feeds it (id, arrival_ns)
// pairs drained from the MPMC queue and asks two questions: is a batch
// ready *now*, and if not, when is the next deadline?  Because all time
// flows in through parameters, the unit tests drive the policy in exact
// virtual time and assert batch boundaries deterministically.
//
// Policy: a batch dispatches when it reaches `max_batch` queries (dense
// blocks amortize re-expansion exactly as the offline path does) or when
// the OLDEST pending query has waited `max_wait_ns` (bounding the latency
// cost of waiting for batch-mates).  max_wait_ns = 0 degenerates to
// serve-immediately: every drain dispatches whatever has arrived.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "serve/clock.hpp"

namespace tb::serve {

struct BatchPolicy {
  std::size_t max_batch = 64;
  std::int64_t max_wait_ns = 1'000'000;  // 1 ms
};

// One dispatchable batch: dense id block plus per-query arrival stamps
// (parallel arrays) so the dispatcher can compute per-query latency.
struct Batch {
  std::vector<std::int32_t> ids;
  std::vector<std::int64_t> arrival_ns;

  std::size_t size() const { return ids.size(); }
  void clear() {
    ids.clear();
    arrival_ns.clear();
  }
};

class AdmissionBatcher {
public:
  explicit AdmissionBatcher(BatchPolicy policy) : policy_(policy) {
    if (policy_.max_batch == 0) policy_.max_batch = 1;
  }

  const BatchPolicy& policy() const { return policy_; }

  // Admits one query.  Arrivals must be pushed oldest-first (the admission
  // thread drains a FIFO queue, so this holds by construction).
  void push(std::int32_t id, std::int64_t arrival_ns) {
    ids_.push_back(id);
    arrival_.push_back(arrival_ns);
  }

  std::size_t pending() const { return ids_.size() - next_; }

  // True when a batch should dispatch at virtual time `now_ns`: the size
  // trigger fired, or the oldest pending query has waited max_wait_ns.
  bool ready(std::int64_t now_ns) const {
    const std::size_t n = pending();
    if (n == 0) return false;
    if (n >= policy_.max_batch) return true;
    return now_ns - arrival_[next_] >= policy_.max_wait_ns;
  }

  // Moves up to max_batch oldest pending queries into `out` (appending).
  // Returns false (and appends nothing) when no batch is ready at `now_ns`.
  bool pop_ready(std::int64_t now_ns, Batch& out) {
    if (!ready(now_ns)) return false;
    take(std::min(pending(), policy_.max_batch), out);
    return true;
  }

  // Unconditionally drains up to max_batch pending queries (shutdown path:
  // dispatch what's left without waiting out the deadline).  Returns false
  // when nothing is pending.
  bool flush(Batch& out) {
    const std::size_t n = std::min(pending(), policy_.max_batch);
    if (n == 0) return false;
    take(n, out);
    return true;
  }

  // Virtual time at which ready() will flip true with no further arrivals:
  // kNoDeadline when empty, "now" (the oldest arrival itself — already
  // ready) when the size trigger has fired, otherwise oldest + max_wait.
  std::int64_t next_deadline_ns() const {
    if (pending() == 0) return kNoDeadline;
    if (pending() >= policy_.max_batch) return arrival_[next_];
    return arrival_[next_] + policy_.max_wait_ns;
  }

private:
  void take(std::size_t n, Batch& out) {
    out.ids.insert(out.ids.end(), ids_.begin() + static_cast<std::ptrdiff_t>(next_),
                   ids_.begin() + static_cast<std::ptrdiff_t>(next_ + n));
    out.arrival_ns.insert(out.arrival_ns.end(),
                          arrival_.begin() + static_cast<std::ptrdiff_t>(next_),
                          arrival_.begin() + static_cast<std::ptrdiff_t>(next_ + n));
    next_ += n;
    if (next_ == ids_.size()) {
      ids_.clear();
      arrival_.clear();
      next_ = 0;
    }
  }

  BatchPolicy policy_;
  // Pending queries live in [next_, ids_.size()) of these parallel arrays;
  // the consumed prefix is compacted away whenever the backlog drains.
  std::vector<std::int32_t> ids_;
  std::vector<std::int64_t> arrival_;
  std::size_t next_ = 0;
};

}  // namespace tb::serve
