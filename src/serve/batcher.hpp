// Admission batching: max-batch / max-wait / deadline policy over arrival
// timestamps.
//
// The batcher is a pure state machine over std::int64_t nanoseconds — it
// never reads a clock.  The admission thread feeds it (id, arrival_ns,
// deadline_ns) tuples drained from the MPMC queue and asks two questions:
// is a batch ready *now*, and if not, when is the next deadline?  Because
// all time flows in through parameters, the unit tests drive the policy in
// exact virtual time and assert batch boundaries deterministically.
//
// Policy: a batch dispatches when it reaches `max_batch` queries (dense
// blocks amortize re-expansion exactly as the offline path does), when the
// OLDEST pending query has waited `max_wait_ns` (bounding the latency cost
// of waiting for batch-mates), or when a pending query's completion
// deadline is close enough that only an immediate dispatch can still meet
// it.  max_wait_ns = 0 degenerates to serve-immediately: every drain
// dispatches whatever has arrived.
//
// Deadlines: a query may carry an absolute `deadline_ns` (kNoDeadline =
// none).  Admission sheds — rejects without buffering — any query whose
// deadline cannot be met even by an immediate dispatch, using the current
// per-batch service estimate (`set_service_estimate`, fed by the server's
// measured dispatch times): serving a query that is already doomed only
// steals capacity from queries that can still make it.  Admitted deadlines
// pull `ready`/`next_deadline_ns` forward so the dispatcher wakes in time.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "serve/clock.hpp"

namespace tb::serve {

struct BatchPolicy {
  std::size_t max_batch = 64;
  std::int64_t max_wait_ns = 1'000'000;  // 1 ms
};

// One dispatchable batch: dense id block plus per-query arrival and
// deadline stamps (parallel arrays) so the dispatcher can compute per-query
// latency and count deadline misses.
struct Batch {
  std::vector<std::int32_t> ids;
  std::vector<std::int64_t> arrival_ns;
  std::vector<std::int64_t> deadline_ns;

  std::size_t size() const { return ids.size(); }
  void clear() {
    ids.clear();
    arrival_ns.clear();
    deadline_ns.clear();
  }
};

class AdmissionBatcher {
public:
  // Consumed-prefix length at which the pending window is compacted to the
  // front of the arrays (see take()).  Public so the memory-bound tests can
  // assert buffered() against it.
  static constexpr std::size_t kCompactThreshold = 1024;

  explicit AdmissionBatcher(BatchPolicy policy) { set_policy(policy); }

  const BatchPolicy& policy() const { return policy_; }

  // Policy is mutable between pushes so an adaptive controller
  // (AdaptiveBatchPolicy) can re-derive it per arrival.
  void set_policy(BatchPolicy policy) {
    policy_ = policy;
    if (policy_.max_batch == 0) policy_.max_batch = 1;
  }

  // Expected time to serve one batch, used for the shed horizon and the
  // deadline-driven early dispatch.  0 (the default) means "dispatch is
  // instantaneous": only already-expired deadlines shed.
  void set_service_estimate(std::int64_t ns) {
    service_est_ns_ = std::max<std::int64_t>(ns, 0);
  }
  std::int64_t service_estimate_ns() const { return service_est_ns_; }

  // Admits one query with no deadline.  Arrivals must be pushed
  // oldest-first (the admission thread drains a FIFO queue, so this holds
  // by construction).
  void push(std::int32_t id, std::int64_t arrival_ns) {
    (void)push(id, arrival_ns, kNoDeadline, arrival_ns);
  }

  // Deadline-aware admission at virtual time `now_ns`.  Returns false —
  // and counts a shed — when the query cannot meet `deadline_ns` even if a
  // batch dispatched immediately (now + service estimate past the
  // deadline); the caller reports the rejection instead of burying it.
  bool push(std::int32_t id, std::int64_t arrival_ns, std::int64_t deadline_ns,
            std::int64_t now_ns) {
    if (deadline_ns != kNoDeadline && now_ns + service_est_ns_ > deadline_ns) {
      ++shed_;
      return false;
    }
    ids_.push_back(id);
    arrival_.push_back(arrival_ns);
    deadline_.push_back(deadline_ns);
    return true;
  }

  std::size_t pending() const { return ids_.size() - next_; }
  // Total slots held (pending window plus not-yet-compacted consumed
  // prefix) — the memory-bound observable: buffered() - pending() never
  // exceeds max(kCompactThreshold, pending()).
  std::size_t buffered() const { return ids_.size(); }
  // Queries rejected at admission because their deadline was unmeetable.
  std::size_t shed() const { return shed_; }

  // True when a batch should dispatch at virtual time `now_ns`: the size
  // trigger fired, the oldest pending query has waited max_wait_ns, or the
  // tightest deadline in the dispatch window leaves exactly one service
  // time of slack.
  bool ready(std::int64_t now_ns) const {
    const std::size_t n = pending();
    if (n == 0) return false;
    if (n >= policy_.max_batch) return true;
    if (now_ns - arrival_[next_] >= policy_.max_wait_ns) return true;
    const std::int64_t d = window_deadline_ns();
    return d != kNoDeadline && now_ns >= d - service_est_ns_;
  }

  // Moves up to max_batch oldest pending queries into `out` (appending).
  // Returns false (and appends nothing) when no batch is ready at `now_ns`.
  bool pop_ready(std::int64_t now_ns, Batch& out) {
    if (!ready(now_ns)) return false;
    take(std::min(pending(), policy_.max_batch), out);
    return true;
  }

  // Unconditionally drains up to max_batch pending queries (shutdown path:
  // dispatch what's left without waiting out the deadline).  Returns false
  // when nothing is pending.
  bool flush(Batch& out) {
    const std::size_t n = std::min(pending(), policy_.max_batch);
    if (n == 0) return false;
    take(n, out);
    return true;
  }

  // Virtual time at which ready() will flip true with no further arrivals:
  // kNoDeadline when empty, "now" (the oldest arrival itself — already
  // ready) when the size trigger has fired, otherwise the earlier of
  // oldest + max_wait and the tightest window deadline minus one service
  // time.  The dispatcher parks until exactly this instant.
  std::int64_t next_deadline_ns() const {
    if (pending() == 0) return kNoDeadline;
    if (pending() >= policy_.max_batch) return arrival_[next_];
    std::int64_t t = arrival_[next_] + policy_.max_wait_ns;
    const std::int64_t d = window_deadline_ns();
    if (d != kNoDeadline) t = std::min(t, d - service_est_ns_);
    return t;
  }

  // Earliest-deadline-first key for arbitration *across* kernels: the
  // tightest effective deadline in this batcher's dispatch window, where a
  // no-deadline query's effective deadline is its max-wait expiry.  Among
  // several ready batchers the dispatcher serves the smallest urgency
  // first, so an SLO-carrying batch is never stuck behind a best-effort
  // one.  kNoDeadline when empty.
  std::int64_t urgency_ns() const {
    const std::size_t n = std::min(pending(), policy_.max_batch);
    std::int64_t u = kNoDeadline;
    for (std::size_t i = next_; i < next_ + n; ++i) {
      const std::int64_t eff =
          deadline_[i] != kNoDeadline ? deadline_[i] : arrival_[i] + policy_.max_wait_ns;
      u = std::min(u, eff);
    }
    return u;
  }

private:
  // Tightest explicit deadline among the queries the next dispatch would
  // take (the first max_batch pending); kNoDeadline when none carry one.
  std::int64_t window_deadline_ns() const {
    const std::size_t n = std::min(pending(), policy_.max_batch);
    std::int64_t d = kNoDeadline;
    for (std::size_t i = next_; i < next_ + n; ++i) d = std::min(d, deadline_[i]);
    return d;
  }

  void take(std::size_t n, Batch& out) {
    const auto b = static_cast<std::ptrdiff_t>(next_);
    const auto e = static_cast<std::ptrdiff_t>(next_ + n);
    out.ids.insert(out.ids.end(), ids_.begin() + b, ids_.begin() + e);
    out.arrival_ns.insert(out.arrival_ns.end(), arrival_.begin() + b, arrival_.begin() + e);
    out.deadline_ns.insert(out.deadline_ns.end(), deadline_.begin() + b,
                           deadline_.begin() + e);
    next_ += n;
    if (next_ == ids_.size()) {
      ids_.clear();
      arrival_.clear();
      deadline_.clear();
      next_ = 0;
    } else if (next_ >= kCompactThreshold && next_ >= ids_.size() - next_) {
      // A workload that always keeps >= 1 query pending never hits the
      // fully-drained clear above, so the consumed prefix must be erased
      // eagerly or the arrays grow without bound.  Compacting only once the
      // prefix reaches kCompactThreshold AND at least the pending count
      // keeps the erase amortized O(1) per consumed query.
      const auto cut = static_cast<std::ptrdiff_t>(next_);
      ids_.erase(ids_.begin(), ids_.begin() + cut);
      arrival_.erase(arrival_.begin(), arrival_.begin() + cut);
      deadline_.erase(deadline_.begin(), deadline_.begin() + cut);
      next_ = 0;
    }
  }

  BatchPolicy policy_;
  std::int64_t service_est_ns_ = 0;
  std::size_t shed_ = 0;
  // Pending queries live in [next_, ids_.size()) of these parallel arrays;
  // the consumed prefix is compacted on full drain or at kCompactThreshold.
  std::vector<std::int32_t> ids_;
  std::vector<std::int64_t> arrival_;
  std::vector<std::int64_t> deadline_;
  std::size_t next_ = 0;
};

}  // namespace tb::serve
