// Latency-sample summarization for the serving bench: nearest-rank
// percentiles over per-query latencies in seconds.
//
// Nearest-rank (not interpolated) so a percentile is always an actual
// observed sample — p999 of 1000 samples is the 999th order statistic, and
// two runs over identical sample sets report identical percentiles.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace tb::serve {

struct LatencySummary {
  std::size_t count = 0;
  double p50 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
  double max = 0.0;
  double mean = 0.0;
};

// Nearest-rank percentile of an ascending-sorted sample vector:
// rank = ceil(q/100 * N), clamped to [1, N].  The epsilon keeps an exact
// mathematical rank from ceiling up one position when q has no exact
// binary representation (99.9/100 * 1000 evaluates a hair above 999).
inline double percentile_sorted(const std::vector<double>& sorted, double q_percent) {
  if (sorted.empty()) return 0.0;
  const auto n = static_cast<double>(sorted.size());
  auto rank = static_cast<std::size_t>(std::ceil(q_percent / 100.0 * n - 1e-9));
  if (rank < 1) rank = 1;
  if (rank > sorted.size()) rank = sorted.size();
  return sorted[rank - 1];
}

// Sorts `samples` in place and returns the summary.
inline LatencySummary summarize_latencies(std::vector<double>& samples) {
  LatencySummary s;
  s.count = samples.size();
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  double sum = 0.0;
  for (const double v : samples) sum += v;
  s.mean = sum / static_cast<double>(samples.size());
  s.p50 = percentile_sorted(samples, 50.0);
  s.p99 = percentile_sorted(samples, 99.0);
  s.p999 = percentile_sorted(samples, 99.9);
  s.max = samples.back();
  return s;
}

}  // namespace tb::serve
