// Bounded MPMC request queue — the admission edge of the serving layer.
//
// Vyukov-style bounded ring: each cell carries a sequence number that
// arbitrates producers and consumers without a lock.  A producer claims a
// cell whose sequence equals its ticket, writes the item, then publishes by
// bumping the sequence; a consumer mirrors that one generation later.
// Full/empty are detected from the cell sequence alone, so try_push and
// try_pop never block and never spuriously fail under contention — they
// fail only when the queue really is full/empty at that instant.
//
// This is deliberately a different structure from the runtime's Chase–Lev
// deque: the deque is owner-biased (one pusher, LIFO pop, FIFO steal)
// while the request queue has symmetric multi-producer multi-consumer
// FIFO-ish semantics and stores items BY VALUE (requests outlive their
// producer's stack frame, unlike spawn jobs).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>

#include "runtime/cacheline.hpp"

namespace tb::serve {

template <class T>
class MpmcQueue {
public:
  // Capacity is rounded up to a power of two (minimum 8).
  explicit MpmcQueue(std::size_t min_capacity) {
    std::size_t cap = 8;
    while (cap < min_capacity) cap <<= 1;
    mask_ = cap - 1;
    cells_ = std::make_unique<Cell[]>(cap);
    for (std::size_t i = 0; i < cap; ++i) cells_[i].seq.store(i, std::memory_order_relaxed);
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  // False when the queue is full.
  bool try_push(T v) {
    Cell* cell;
    std::size_t pos = head_.value.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->seq.load(std::memory_order_acquire);
      const auto diff =
          static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos);
      if (diff == 0) {
        if (head_.value.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // cell still holds the previous generation: full
      } else {
        pos = head_.value.load(std::memory_order_relaxed);
      }
    }
    cell->item = std::move(v);
    cell->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  // Empty optional when the queue is empty.
  std::optional<T> try_pop() {
    Cell* cell;
    std::size_t pos = tail_.value.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->seq.load(std::memory_order_acquire);
      const auto diff =
          static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos + 1);
      if (diff == 0) {
        if (tail_.value.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return std::nullopt;  // cell not yet published: empty
      } else {
        pos = tail_.value.load(std::memory_order_relaxed);
      }
    }
    std::optional<T> out(std::move(cell->item));
    cell->seq.store(pos + mask_ + 1, std::memory_order_release);
    return out;
  }

  // Racy size estimate (claimed minus consumed tickets); exact only when
  // the queue is externally quiescent.
  std::size_t size_approx() const {
    const std::size_t h = head_.value.load(std::memory_order_relaxed);
    const std::size_t t = tail_.value.load(std::memory_order_relaxed);
    return h >= t ? h - t : 0;
  }

private:
  struct Cell {
    std::atomic<std::size_t> seq{0};
    T item{};
  };

  std::unique_ptr<Cell[]> cells_;
  std::size_t mask_ = 0;
  // Producer and consumer cursors on separate cache lines: producers only
  // contend on head_, consumers on tail_.
  rt::Padded<std::atomic<std::size_t>> head_{};
  rt::Padded<std::atomic<std::size_t>> tail_{};
};

}  // namespace tb::serve
