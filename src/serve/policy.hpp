// Adaptive batch sizing: derive the admission policy from the observed
// arrival rate instead of a fixed max-batch/max-wait pair.
//
// DCAFE-style dynamic chunking (arXiv:1502.06086): the server is willing to
// delay a query by at most `target_window_ns` to collect batch-mates, so
// the *useful* batch size is however many arrivals one window is expected
// to contain — window / mean inter-arrival gap.  A fixed max_batch wastes
// the window at low rates (a batch of 256 never fills, every query eats the
// full max-wait) and caps density at high rates; sizing from the rate keeps
// the wait bound constant while the batch tracks the load.
//
// The estimator is an EWMA of inter-arrival gaps with a power-of-two weight
// (new = old + (sample - old) >> ewma_shift), all in std::int64_t
// nanoseconds: like AdmissionBatcher, this is a pure state machine — no
// clock reads, no floating point — so unit tests drive it in exact virtual
// time and assert the derived policy deterministically.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "serve/batcher.hpp"

namespace tb::serve {

struct AdaptiveOptions {
  bool enabled = false;
  // Clamp for the derived max_batch.
  std::size_t min_batch = 1;
  std::size_t max_batch = 1024;
  // The latency budget spent collecting batch-mates; becomes the derived
  // policy's max_wait_ns verbatim.
  std::int64_t target_window_ns = 1'000'000;  // 1 ms
  // EWMA weight 1/2^ewma_shift (3 = 1/8: smooth enough to ride out Poisson
  // jitter, fast enough to track a rate change within ~20 arrivals).
  int ewma_shift = 3;
};

class AdaptiveBatchPolicy {
public:
  explicit AdaptiveBatchPolicy(AdaptiveOptions opt) : opt_(opt) {
    if (opt_.min_batch == 0) opt_.min_batch = 1;
    if (opt_.max_batch < opt_.min_batch) opt_.max_batch = opt_.min_batch;
    if (opt_.ewma_shift < 0) opt_.ewma_shift = 0;
    if (opt_.target_window_ns < 0) opt_.target_window_ns = 0;
  }

  const AdaptiveOptions& options() const { return opt_; }

  // Feeds one arrival stamp.  Arrivals must be fed oldest-first (they come
  // off the admission thread's FIFO drain, so this holds by construction);
  // an out-of-order stamp clamps to a zero gap rather than going negative.
  void observe_arrival(std::int64_t arrival_ns) {
    if (!have_last_) {
      last_arrival_ns_ = arrival_ns;
      have_last_ = true;
      return;
    }
    const std::int64_t gap = std::max<std::int64_t>(arrival_ns - last_arrival_ns_, 0);
    last_arrival_ns_ = arrival_ns;
    if (!have_gap_) {
      ewma_gap_ns_ = gap;
      have_gap_ = true;
      return;
    }
    // Arithmetic shift (C++20) — rounds toward -inf, so the estimate can sit
    // up to 2^shift ns above a step-change target; immaterial at ns scale.
    ewma_gap_ns_ += (gap - ewma_gap_ns_) >> opt_.ewma_shift;
  }

  // Current inter-arrival estimate; meaningful once two arrivals were seen.
  std::int64_t ewma_gap_ns() const { return ewma_gap_ns_; }
  std::size_t arrivals_observed() const {
    return !have_last_ ? 0u : (have_gap_ ? 2u : 1u);
  }

  // The derived admission policy: max_batch = clamp(window / gap) — the
  // arrivals one target window is expected to contain — and max_wait =
  // the window itself.  Before two arrivals there is no rate estimate, so
  // the policy stays at min_batch (serve with minimal added latency rather
  // than waiting for batch-mates that may never come).
  BatchPolicy current() const {
    BatchPolicy p;
    p.max_wait_ns = opt_.target_window_ns;
    if (!have_gap_) {
      p.max_batch = opt_.min_batch;
      return p;
    }
    const std::int64_t gap = std::max<std::int64_t>(ewma_gap_ns_, 1);
    const std::int64_t want = opt_.target_window_ns / gap;
    p.max_batch = std::clamp(static_cast<std::size_t>(std::max<std::int64_t>(want, 0)),
                             opt_.min_batch, opt_.max_batch);
    return p;
  }

private:
  AdaptiveOptions opt_;
  std::int64_t last_arrival_ns_ = 0;
  std::int64_t ewma_gap_ns_ = 0;
  bool have_last_ = false;
  bool have_gap_ = false;
};

}  // namespace tb::serve
