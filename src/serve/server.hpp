// QueryServer: the in-process serving front end over the hybrid executor.
//
// Topology (one stage handoff, nested-dataflow style):
//
//   producers ──try_submit──▶ MpmcQueue ──drain──▶ AdmissionBatcher
//                                │                        │ ready/deadline
//                             doorbell              dense Batch
//                                ▼                        ▼
//                        admission thread ──────▶ BatchRunner (hybrid_for
//                                                 over a ForkJoinPool)
//
// A single admission thread owns the batcher and the dispatch loop: it
// drains the MPMC queue, asks the batcher for ready batches, runs each
// batch synchronously through the user-supplied BatchRunner, and stamps
// per-query latency (completion − arrival) when the batch returns.
// Batches therefore serialize on the admission thread — intra-batch
// parallelism comes from the runner fanning each dense id block out over
// the pool, which is exactly the paper's traversal shape (many queries,
// one shared tree).
//
// Parking mirrors the ForkJoinPool fix this layer depends on: when the
// batcher has no deadline the admission thread sleeps on a condition
// variable; producers ring a doorbell only when the thread advertised it
// was napping (napping_ is a seq_cst flag mirroring the pool's sleepers_
// counter), so the steady-state fast path costs producers one relaxed-ish
// atomic load per submit.  When a deadline is pending, the thread sleeps
// only until that deadline.
//
// Latency stamps use the ARRIVAL time supplied by the producer.  An
// open-loop load generator passes the *scheduled* arrival time, which
// makes the recorded latencies coordinated-omission-safe: a stalled server
// charges the stall to every query that should have been issued meanwhile.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/batcher.hpp"
#include "serve/clock.hpp"
#include "serve/queue.hpp"

namespace tb::serve {

struct ServerOptions {
  std::size_t queue_capacity = 4096;
  BatchPolicy policy{};
};

class QueryServer {
public:
  // Runs one dense batch of query ids synchronously; called only from the
  // admission thread.  Typically built with make_pool_runner (pool_runner.hpp).
  using BatchRunner = std::function<void(const std::int32_t* ids, std::size_t count)>;

  QueryServer(const ServerOptions& opt, BatchRunner runner)
      : queue_(opt.queue_capacity), batcher_(opt.policy), runner_(std::move(runner)) {}

  ~QueryServer() {
    if (thread_.joinable()) stop();
  }

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  void start() { thread_ = std::thread([this] { loop(); }); }

  // Non-blocking submit; false when the request queue is full (caller's
  // choice to drop, spin, or backpressure).  `arrival_ns` is the stamp
  // latency is measured from — open-loop generators pass the scheduled
  // arrival time, not now_ns().
  bool try_submit(std::int32_t id, std::int64_t arrival_ns) {
    if (!queue_.try_push(Request{id, arrival_ns})) return false;
    doorbell();
    return true;
  }

  // Blocking submit: yields until the queue accepts (closed-loop callers).
  void submit(std::int32_t id, std::int64_t arrival_ns) {
    while (!try_submit(id, arrival_ns)) std::this_thread::yield();
  }

  // Drains everything already admitted (flushing partial batches), then
  // joins the admission thread.  Telemetry accessors are valid after this.
  void stop() {
    stopping_.store(true, std::memory_order_seq_cst);
    {
      std::lock_guard<std::mutex> lock(mu_);
      bell_ = true;
    }
    cv_.notify_one();
    thread_.join();
  }

  // --- telemetry (admission-thread-private until stop() returns) ---

  // Per-query latencies in seconds, dispatch-completion order.
  std::vector<double>& latencies_s() { return latencies_s_; }
  std::size_t completed() const { return completed_; }
  std::size_t batches_dispatched() const { return batches_; }
  std::size_t max_batch_seen() const { return max_batch_seen_; }
  // Wall-clock span from first dispatch to last completion — the
  // throughput denominator for closed-loop (saturation) runs.
  double busy_seconds() const {
    if (batches_ == 0) return 0.0;
    return static_cast<double>(last_complete_ns_ - first_dispatch_ns_) * 1e-9;
  }

private:
  struct Request {
    std::int32_t id = 0;
    std::int64_t arrival_ns = 0;
  };

  void drain_queue() {
    while (auto req = queue_.try_pop()) batcher_.push(req->id, req->arrival_ns);
  }

  void dispatch(Batch& batch) {
    if (batches_ == 0) first_dispatch_ns_ = now_ns();
    runner_(batch.ids.data(), batch.size());
    const std::int64_t done = now_ns();
    for (const std::int64_t arrival : batch.arrival_ns) {
      latencies_s_.push_back(static_cast<double>(done - arrival) * 1e-9);
    }
    completed_ += batch.size();
    ++batches_;
    max_batch_seen_ = std::max(max_batch_seen_, batch.size());
    last_complete_ns_ = done;
    batch.clear();
  }

  void loop() {
    Batch batch;
    for (;;) {
      drain_queue();
      if (batcher_.pop_ready(now_ns(), batch)) {
        dispatch(batch);
        continue;
      }
      if (stopping_.load(std::memory_order_acquire)) {
        // Shutdown: dispatch the partial tail without waiting out max_wait,
        // re-draining in case producers raced the stop flag.
        drain_queue();
        while (batcher_.flush(batch)) dispatch(batch);
        if (queue_.size_approx() == 0 && batcher_.pending() == 0) break;
        continue;
      }
      park();
    }
  }

  // Sleeps until the batcher's next deadline, a doorbell, or stop.  The
  // napping_ flag is the Dekker handshake with doorbell(): we publish
  // napping_ (seq_cst) before the final queue emptiness check, producers
  // publish their push before loading napping_ — one side always sees the
  // other, so a submit racing with park either gets drained by the loop or
  // rings a bell we cannot miss.
  void park() {
    std::unique_lock<std::mutex> lock(mu_);
    napping_.store(true, std::memory_order_seq_cst);
    const auto wake = [this] {
      if (bell_ || stopping_.load(std::memory_order_acquire)) return true;
      return queue_.size_approx() != 0;
    };
    const std::int64_t deadline = batcher_.next_deadline_ns();
    if (deadline == kNoDeadline) {
      cv_.wait(lock, wake);
    } else {
      const std::int64_t left = deadline - now_ns();
      if (left > 0) cv_.wait_for(lock, std::chrono::nanoseconds(left), wake);
    }
    napping_.store(false, std::memory_order_relaxed);
    bell_ = false;
  }

  // Producer-side wake: skip the lock entirely unless the admission thread
  // advertised it was napping.  The empty critical section orders the
  // bell-setting store against a sleeper between its predicate check and
  // its wait (same race-closing idiom as ForkJoinPool::wake_sleepers).
  void doorbell() {
    if (!napping_.load(std::memory_order_seq_cst)) return;
    {
      std::lock_guard<std::mutex> lock(mu_);
      bell_ = true;
    }
    cv_.notify_one();
  }

  MpmcQueue<Request> queue_;
  AdmissionBatcher batcher_;
  BatchRunner runner_;
  std::thread thread_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool bell_ = false;
  std::atomic<bool> napping_{false};
  std::atomic<bool> stopping_{false};

  std::vector<double> latencies_s_;
  std::size_t completed_ = 0;
  std::size_t batches_ = 0;
  std::size_t max_batch_seen_ = 0;
  std::int64_t first_dispatch_ns_ = 0;
  std::int64_t last_complete_ns_ = 0;
};

}  // namespace tb::serve
