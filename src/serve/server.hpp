// QueryServer: the in-process serving front end over the hybrid executor.
//
// Topology (stage handoffs in the nested-dataflow style):
//
//   producers ──try_submit──▶ MpmcQueue ──route──▶ KernelRouter
//                                │                    │ per-kernel lanes:
//                             doorbell                │ AdmissionBatcher (+
//                                ▼                    │ adaptive policy)
//                        admission thread ──EDF──▶ lane BatchRunner
//                                                  (hybrid_for over a
//                                                   ForkJoinPool)
//
// A single admission thread owns the router and the dispatch loop: it
// drains the MPMC queue, routes each request to its kernel's lane (where
// adaptive policy refresh and deadline-shed admission happen), picks the
// ready batch with the earliest deadline across lanes, runs it
// synchronously through that lane's BatchRunner, and stamps per-query
// latency (completion − arrival) when the batch returns.  Batches
// serialize on the admission thread — intra-batch parallelism comes from
// the runner fanning each dense id block out over the pool, which is
// exactly the paper's traversal shape (many queries, one shared tree).
//
// Parking mirrors the ForkJoinPool fix this layer depends on: when no lane
// has a deadline the admission thread sleeps on a condition variable;
// producers ring a doorbell only when the thread advertised it was napping
// (napping_ is a seq_cst flag mirroring the pool's sleepers_ counter), so
// the steady-state fast path costs producers one atomic load per submit.
// When a deadline is pending, the thread sleeps only until the earliest
// one across all lanes.
//
// Lifecycle contract (hardened):
//   * stop() is idempotent, safe without start(), and safe to call from
//     several threads at once;
//   * every submit that returns true is accounted for exactly once in
//     completed() + shed() + unserved_at_stop(), even when the submit
//     races stop() — see the seq_cst re-check in try_submit;
//   * after stop() returns, try_submit/submit return false immediately
//     (nothing is silently enqueued into a dead queue, and blocking
//     submit cannot hang on a full queue no one drains).
//
// Latency stamps use the ARRIVAL time supplied by the producer.  An
// open-loop load generator passes the *scheduled* arrival time, which
// makes the recorded latencies coordinated-omission-safe: a stalled server
// charges the stall to every query that should have been issued meanwhile.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "serve/batcher.hpp"
#include "serve/clock.hpp"
#include "serve/queue.hpp"
#include "serve/router.hpp"

namespace tb::serve {

struct ServerOptions {
  std::size_t queue_capacity = 4096;
  // Policy for the implicit kernel registered by the single-runner
  // constructor; multi-kernel callers set policy per kernel instead.
  BatchPolicy policy{};
  // Server-wide forced serving width (0 = the process-wide active table,
  // i.e. CPUID probe + TB_SIMD_ISA; 4/8/16 pin that table).  A per-kernel
  // KernelOptions::forced_width overrides this for its lane.  Validated at
  // register_kernel time: an invalid width throws std::invalid_argument, a
  // valid-but-unrunnable one clamps down with a stderr notice — the same
  // rule TB_SIMD_ISA follows.
  int forced_width = 0;
};

class QueryServer {
public:
  using BatchRunner = serve::BatchRunner;
  using RunnerFactory = serve::RunnerFactory;

  // Multi-kernel form: register kernels, then start().
  explicit QueryServer(const ServerOptions& opt) : queue_(opt.queue_capacity) {
    router_.set_default_forced_width(opt.forced_width);
  }

  // Single-kernel convenience: the runner becomes kernel 0 ("default")
  // under opt.policy, and the kernel-less submit overloads target it.
  QueryServer(const ServerOptions& opt, BatchRunner runner) : QueryServer(opt) {
    KernelOptions kopt;
    kopt.policy = opt.policy;
    register_kernel("default", kopt, std::move(runner));
  }

  // Single-kernel, dispatch-native convenience: the factory is invoked
  // with the resolved kernel table (see ServerOptions::forced_width).
  QueryServer(const ServerOptions& opt, const RunnerFactory& factory) : QueryServer(opt) {
    KernelOptions kopt;
    kopt.policy = opt.policy;
    register_kernel("default", kopt, factory);
  }

  ~QueryServer() { stop(); }

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  // Registers a kernel lane; call before start().  Returns the kernel
  // index used by submit().
  int register_kernel(std::string name, const KernelOptions& kopt, BatchRunner runner) {
    return router_.add(std::move(name), kopt, std::move(runner));
  }

  // Dispatch-native form: the factory builds the lane's runner from the
  // kernel table resolved for this lane's forced width.  Throws
  // std::invalid_argument (leaving the server unchanged) when the width is
  // not one of 0/4/8/16.
  int register_kernel(std::string name, const KernelOptions& kopt,
                      const RunnerFactory& factory) {
    return router_.add(std::move(name), kopt, factory);
  }

  std::size_t kernels() const { return router_.size(); }
  const std::string& kernel_name(int k) const { return router_.lane(k).name(); }
  int find_kernel(std::string_view name) const { return router_.find(name); }

  // The kernel table a lane was bound to at registration, plus its width
  // and ISA name; the kernel-less forms describe kernel 0.  Valid any time
  // after registration (tables are immutable process-wide statics).
  const simd::KernelTable& serving_table(int k) const { return router_.lane(k).table(); }
  const simd::KernelTable& serving_table() const { return serving_table(0); }
  int serving_width(int k) const { return router_.lane(k).width(); }
  int serving_width() const { return serving_width(0); }
  const char* serving_isa(int k) const { return router_.lane(k).isa_name(); }
  const char* serving_isa() const { return serving_isa(0); }

  void start() {
    if (thread_.joinable()) return;  // already running
    thread_ = std::thread([this] { loop(); });
  }

  // Non-blocking submit; false when the request queue is full or the
  // server is stopping (caller's choice to drop, spin, or backpressure).
  // `arrival_ns` is the stamp latency is measured from — open-loop
  // generators pass the scheduled arrival time, not now_ns().  A true
  // return guarantees the query is eventually counted in exactly one of
  // completed / shed / unserved_at_stop.
  bool try_submit(int kernel, std::int32_t id, std::int64_t arrival_ns,
                  std::int64_t deadline_ns = kNoDeadline) {
    if (kernel < 0 || static_cast<std::size_t>(kernel) >= router_.size()) return false;
    if (stopping_.load(std::memory_order_seq_cst)) return false;
    if (!queue_.try_push(Request{kernel, id, arrival_ns, deadline_ns})) return false;
    if (stopping_.load(std::memory_order_seq_cst)) {
      // Raced stop(): the admission thread may already be past its final
      // drain.  If our pre-push stopping load saw false before stop()'s
      // store, the post-join drain in stop() is still ahead of us and will
      // account the request; the ambiguous case is exactly this one, so
      // take the stop lock (waiting out a concurrent stop()) and run the
      // same tail drain ourselves.  Either way the request ends up served
      // or counted unserved — never stranded in a dead queue.
      std::lock_guard<std::mutex> g(stop_mu_);
      drain_unserved();
    } else {
      doorbell();
    }
    return true;
  }
  bool try_submit(std::int32_t id, std::int64_t arrival_ns) {
    return try_submit(0, id, arrival_ns);
  }

  // Blocking submit: yields until the queue accepts (closed-loop callers).
  // Returns false — instead of spinning forever — once the server is
  // stopping and the request was not accepted.
  bool submit(int kernel, std::int32_t id, std::int64_t arrival_ns,
              std::int64_t deadline_ns = kNoDeadline) {
    if (kernel < 0 || static_cast<std::size_t>(kernel) >= router_.size()) return false;
    while (!try_submit(kernel, id, arrival_ns, deadline_ns)) {
      if (stopping_.load(std::memory_order_acquire)) return false;
      std::this_thread::yield();
    }
    return true;
  }
  bool submit(std::int32_t id, std::int64_t arrival_ns) { return submit(0, id, arrival_ns); }

  // Drains everything already admitted (flushing partial batches), joins
  // the admission thread, and accounts any stragglers that raced the stop
  // flag.  Idempotent; safe without start(); safe concurrently (callers
  // serialize on an internal mutex).  Telemetry accessors are valid after
  // the first stop() returns.
  void stop() {
    stopping_.store(true, std::memory_order_seq_cst);
    {
      std::lock_guard<std::mutex> lock(mu_);
      bell_ = true;
    }
    cv_.notify_one();
    std::lock_guard<std::mutex> g(stop_mu_);
    if (thread_.joinable()) thread_.join();
    // Requests pushed after the admission thread's final emptiness check
    // (or submitted before start() to a server that never started) would
    // otherwise sit in the queue unserved and uncounted.
    drain_unserved();
  }

  bool stopped() const { return stopping_.load(std::memory_order_acquire); }

  // --- telemetry (admission-thread-private until stop() returns) ---

  // Per-query latencies in seconds for one kernel, dispatch-completion
  // order; the kernel-less overload merges all lanes into a scratch vector
  // (rebuilt per call — summarize_latencies may sort it in place).
  std::vector<double>& latencies_s(int k) { return router_.lane(k).latencies_s(); }
  std::vector<double>& latencies_s() {
    merged_latencies_.clear();
    for (std::size_t k = 0; k < router_.size(); ++k) {
      const auto& lane = router_.lane(static_cast<int>(k)).latencies_s();
      merged_latencies_.insert(merged_latencies_.end(), lane.begin(), lane.end());
    }
    return merged_latencies_;
  }

  std::size_t completed(int k) const { return router_.lane(k).completed(); }
  std::size_t completed() const { return sum(&KernelLane::completed); }
  // Queries rejected at admission because their deadline was unmeetable.
  std::size_t shed(int k) const { return router_.lane(k).shed(); }
  std::size_t shed() const { return sum(&KernelLane::shed); }
  // Queries served after their deadline had already passed.
  std::size_t served_late(int k) const { return router_.lane(k).served_late(); }
  std::size_t served_late() const { return sum(&KernelLane::served_late); }
  // Accepted requests the stop()-tail drained instead of serving.
  std::size_t unserved_at_stop(int k) const { return router_.lane(k).unserved_at_stop(); }
  std::size_t unserved_at_stop() const { return sum(&KernelLane::unserved_at_stop); }
  std::size_t batches_dispatched(int k) const {
    return router_.lane(k).batches_dispatched();
  }
  std::size_t batches_dispatched() const { return sum(&KernelLane::batches_dispatched); }
  std::size_t max_batch_seen(int k) const { return router_.lane(k).max_batch_seen(); }
  std::size_t max_batch_seen() const {
    std::size_t m = 0;
    for (std::size_t k = 0; k < router_.size(); ++k) {
      m = std::max(m, router_.lane(static_cast<int>(k)).max_batch_seen());
    }
    return m;
  }

  // Wall-clock span from first dispatch to last completion — the
  // throughput denominator for closed-loop (saturation) runs.  Per-kernel
  // and across-lane (earliest first dispatch to latest completion) forms.
  double busy_seconds(int k) const { return router_.lane(k).busy_seconds(); }
  double busy_seconds() const {
    std::int64_t first = 0, last = 0;
    bool any = false;
    for (std::size_t k = 0; k < router_.size(); ++k) {
      const KernelLane& lane = router_.lane(static_cast<int>(k));
      if (lane.batches_dispatched() == 0) continue;
      if (!any || lane.first_dispatch_ns() < first) first = lane.first_dispatch_ns();
      if (!any || lane.last_complete_ns() > last) last = lane.last_complete_ns();
      any = true;
    }
    return any ? static_cast<double>(last - first) * 1e-9 : 0.0;
  }

private:
  struct Request {
    int kernel = 0;
    std::int32_t id = 0;
    std::int64_t arrival_ns = 0;
    std::int64_t deadline_ns = kNoDeadline;
  };

  std::size_t sum(std::size_t (KernelLane::*fn)() const) const {
    std::size_t n = 0;
    for (std::size_t k = 0; k < router_.size(); ++k) {
      n += (router_.lane(static_cast<int>(k)).*fn)();
    }
    return n;
  }

  void drain_queue() {
    while (auto req = queue_.try_pop()) {
      router_.lane(req->kernel).admit(req->id, req->arrival_ns, req->deadline_ns,
                                      now_ns());
    }
  }

  // Stop-tail accounting: pops leftover requests into unserved counters.
  // Called with stop_mu_ held, after (or instead of) the admission thread.
  void drain_unserved() {
    while (auto req = queue_.try_pop()) {
      router_.lane(req->kernel).count_unserved_at_stop();
    }
  }

  void dispatch(KernelLane& lane, Batch& batch) {
    const std::int64_t start = now_ns();
    lane.runner()(batch.ids.data(), batch.size());
    lane.record_dispatch(batch, start, now_ns());
    batch.clear();
  }

  void loop() {
    Batch batch;
    for (;;) {
      drain_queue();
      const int k = router_.pick_ready(now_ns());
      if (k >= 0) {
        KernelLane& lane = router_.lane(k);
        lane.batcher().pop_ready(now_ns(), batch);
        dispatch(lane, batch);
        continue;
      }
      if (stopping_.load(std::memory_order_acquire)) {
        // Shutdown: dispatch the partial tails without waiting out
        // max_wait, re-draining in case producers raced the stop flag.
        drain_queue();
        for (std::size_t i = 0; i < router_.size(); ++i) {
          KernelLane& lane = router_.lane(static_cast<int>(i));
          while (lane.batcher().flush(batch)) dispatch(lane, batch);
        }
        if (queue_.size_approx() == 0 && router_.total_pending() == 0) break;
        continue;
      }
      park();
    }
  }

  // Sleeps until the earliest lane deadline, a doorbell, or stop.  The
  // napping_ flag is the Dekker handshake with doorbell(): we publish
  // napping_ (seq_cst) before the final queue emptiness check, producers
  // publish their push before loading napping_ — one side always sees the
  // other, so a submit racing with park either gets drained by the loop or
  // rings a bell we cannot miss.
  void park() {
    std::unique_lock<std::mutex> lock(mu_);
    napping_.store(true, std::memory_order_seq_cst);
    const auto wake = [this] {
      if (bell_ || stopping_.load(std::memory_order_acquire)) return true;
      return queue_.size_approx() != 0;
    };
    const std::int64_t deadline = router_.next_deadline_ns();
    if (deadline == kNoDeadline) {
      cv_.wait(lock, wake);
    } else {
      const std::int64_t left = deadline - now_ns();
      if (left > 0) cv_.wait_for(lock, std::chrono::nanoseconds(left), wake);
    }
    napping_.store(false, std::memory_order_relaxed);
    bell_ = false;
  }

  // Producer-side wake: skip the lock entirely unless the admission thread
  // advertised it was napping.  The empty critical section orders the
  // bell-setting store against a sleeper between its predicate check and
  // its wait (same race-closing idiom as ForkJoinPool::wake_sleepers).
  void doorbell() {
    if (!napping_.load(std::memory_order_seq_cst)) return;
    {
      std::lock_guard<std::mutex> lock(mu_);
      bell_ = true;
    }
    cv_.notify_one();
  }

  MpmcQueue<Request> queue_;
  KernelRouter router_;
  std::thread thread_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::mutex stop_mu_;  // serializes stop() callers and the straggler drain
  bool bell_ = false;
  std::atomic<bool> napping_{false};
  std::atomic<bool> stopping_{false};

  std::vector<double> merged_latencies_;
};

}  // namespace tb::serve
