// Monotonic nanosecond clock for the serving layer.
//
// Every serve/ component that reasons about time does so over plain
// std::int64_t steady-clock nanoseconds rather than chrono time_points:
// the admission batcher becomes a pure state machine over integers (so the
// unit tests drive it in exact virtual time), and producer-side arrival
// stamps are trivially comparable across threads.
#pragma once

#include <chrono>
#include <cstdint>
#include <thread>

namespace tb::serve {

// Sentinel for "no deadline pending" (AdmissionBatcher::next_deadline_ns).
inline constexpr std::int64_t kNoDeadline = INT64_MAX;

inline std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Sleeps until steady-clock nanosecond `deadline_ns`: a coarse sleep that
// deliberately undershoots, then a yield tail, so open-loop load generators
// hit their scheduled arrival times without multi-millisecond OS-timer
// overshoot distorting the offered rate.
inline void sleep_until_ns(std::int64_t deadline_ns) {
  for (;;) {
    const std::int64_t left = deadline_ns - now_ns();
    if (left <= 0) return;
    if (left > 200'000) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(left - 100'000));
    } else {
      std::this_thread::yield();
    }
  }
}

}  // namespace tb::serve
