// Kernel registry and routing for the multi-kernel QueryServer.
//
// One server multiplexes several traversal kernels (knn, pointcorr,
// minmaxdist, ...) over one request queue and one ForkJoinPool.  Each
// registered kernel gets a *lane*: its own AdmissionBatcher (batch shape is
// a per-kernel property — a cheap kernel wants bigger batches than an
// expensive one), its own BatchRunner entering the hybrid executor through
// the kernel's donated-frame entry point, an optional AdaptiveBatchPolicy
// re-deriving the batcher's policy from that kernel's own arrival rate, and
// its own telemetry.  Stage dependencies stay in the nested-dataflow style
// of the single-kernel server: queue -> per-lane batcher -> dispatch; lanes
// share only the admission thread and the pool.
//
// Dispatch arbitration is earliest-deadline-first: among lanes with a ready
// batch, the router picks the one whose dispatch window holds the tightest
// effective deadline (explicit query deadline, else max-wait expiry), so a
// latency-SLO kernel is never starved behind a bulk kernel's full batches.
//
// Each lane is bound to one simd::KernelTable, resolved at registration:
// the server-wide ServerOptions::forced_width (0 = the process-wide active
// table, which already folds in the CPUID probe and TB_SIMD_ISA), possibly
// overridden per kernel by KernelOptions::forced_width.  An invalid width
// throws at add(); a valid width the host cannot run clamps down with a
// stderr notice — the same rule TB_SIMD_ISA follows (simd/isa.hpp).  Lanes
// built from a RunnerFactory execute their resolved table's dispatched
// entry points; lanes built from a plain BatchRunner still carry the table
// for telemetry, but what the runner executes is the caller's business.
//
// Everything here is admission-thread-private after QueryServer::start();
// registration happens before start, reads of telemetry after stop.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "serve/batcher.hpp"
#include "serve/clock.hpp"
#include "serve/policy.hpp"
#include "simd/dispatch.hpp"

namespace tb::serve {

// Runs one dense batch of query ids synchronously; called only from the
// admission thread.  Same call shape as simd::ServeRunner — the table
// factories in pool_runner.hpp produce these directly.
using BatchRunner = std::function<void(const std::int32_t* ids, std::size_t count)>;

// Builds a lane's BatchRunner from the lane's resolved kernel table — the
// registration-time hook that makes serving ISA-dispatch-native.  See
// pool_runner.hpp for the per-workload factories.
using RunnerFactory = std::function<BatchRunner(const simd::KernelTable&)>;

struct KernelOptions {
  // Fixed admission policy; ignored (re-derived per arrival) when
  // adaptive.enabled is set.
  BatchPolicy policy{};
  AdaptiveOptions adaptive{};
  // Seed for the per-batch service-time estimate that drives the deadline
  // shed horizon; refined by an EWMA of measured dispatch times once
  // batches start completing.  0 = assume instantaneous until measured.
  std::int64_t initial_service_estimate_ns = 0;
  // EWMA weight 1/2^shift for the measured service estimate.
  int service_ewma_shift = 2;
  // Forced serving lane width (4 / 8 / 16) for this kernel; 0 inherits the
  // server-wide ServerOptions::forced_width.  Validated when the kernel is
  // registered (see header comment for the clamp rule).
  int forced_width = 0;
};

// Pure half of the forced-width clamp so the rule is unit-testable without
// faking the host: the widest available width at or below `requested`, or
// the narrowest available one when even that is too wide (defensive — the
// w=4 table is always compiled, and 4 is the smallest valid request).
inline int clamp_serve_width(int requested, const int* available, int count) {
  int best = 0;
  for (int i = 0; i < count; ++i) {
    if (available[i] <= requested && available[i] > best) best = available[i];
  }
  if (best == 0 && count > 0) best = available[0];
  return best;
}

// Resolves a forced serving width to the kernel table a lane will execute.
// 0 defers to the process-wide selection (CPUID probe + TB_SIMD_ISA);
// 4/8/16 pin the matching table, clamping down with a notice when the host
// cannot run it (or the build compiled it out); anything else throws —
// registration is the validation point, so a typo fails loudly instead of
// silently serving at some other width.
inline const simd::KernelTable& resolve_serve_table(int forced_width) {
  if (forced_width == 0) return simd::kernels();
  if (forced_width != 4 && forced_width != 8 && forced_width != 16) {
    throw std::invalid_argument("taskbatch: forced serving width must be 0, 4, 8, or 16; got " +
                                std::to_string(forced_width));
  }
  if (const simd::KernelTable* t = simd::kernels_for_width(forced_width)) return *t;
  int count = 0;
  const simd::KernelTable* const* tables = simd::available_tables(count);
  int widths[3] = {};
  for (int i = 0; i < count; ++i) widths[i] = tables[i]->width;
  const simd::KernelTable* t =
      simd::kernels_for_width(clamp_serve_width(forced_width, widths, count));
  std::fprintf(stderr,
               "taskbatch: forced serving width %d not runnable on this host; using %s "
               "(w=%d)\n",
               forced_width, t->name, t->width);
  return *t;
}

// Per-kernel serving lane: batcher + runner + adaptive controller +
// telemetry.  Owned by the router; admission-thread-private after start().
class KernelLane {
public:
  KernelLane(std::string name, const KernelOptions& opt, BatchRunner runner,
             const simd::KernelTable* table)
      : name_(std::move(name)),
        opt_(opt),
        batcher_(opt.policy),
        adaptive_(opt.adaptive),
        runner_(std::move(runner)),
        table_(table) {
    batcher_.set_service_estimate(opt_.initial_service_estimate_ns);
    service_est_ns_ = std::max<std::int64_t>(opt_.initial_service_estimate_ns, 0);
    if (opt_.adaptive.enabled) batcher_.set_policy(adaptive_.current());
  }

  const std::string& name() const { return name_; }
  AdmissionBatcher& batcher() { return batcher_; }
  const AdmissionBatcher& batcher() const { return batcher_; }
  const AdaptiveBatchPolicy& adaptive() const { return adaptive_; }
  const BatchRunner& runner() const { return runner_; }

  // The kernel table this lane was bound to at registration; identity-
  // comparable against simd::kernels() / kernels_for_width() in tests.
  const simd::KernelTable& table() const { return *table_; }
  int width() const { return table_->width; }
  const char* isa_name() const { return table_->name; }

  // Routes one drained request into this lane: refreshes the adaptive
  // policy from the arrival stamp, then admits or sheds against the
  // deadline.  Returns false when the query was shed.
  bool admit(std::int32_t id, std::int64_t arrival_ns, std::int64_t deadline_ns,
             std::int64_t now_ns) {
    if (opt_.adaptive.enabled) {
      adaptive_.observe_arrival(arrival_ns);
      batcher_.set_policy(adaptive_.current());
    }
    return batcher_.push(id, arrival_ns, deadline_ns, now_ns);
  }

  // Books one dispatched batch: latency stamps, deadline misses, and the
  // measured per-batch service time feeding the shed horizon's EWMA.
  void record_dispatch(const Batch& batch, std::int64_t start_ns, std::int64_t done_ns) {
    if (batches_ == 0) first_dispatch_ns_ = start_ns;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      latencies_s_.push_back(static_cast<double>(done_ns - batch.arrival_ns[i]) * 1e-9);
      if (batch.deadline_ns[i] != kNoDeadline && done_ns > batch.deadline_ns[i]) {
        ++served_late_;
      }
    }
    completed_ += batch.size();
    ++batches_;
    max_batch_seen_ = std::max(max_batch_seen_, batch.size());
    last_complete_ns_ = done_ns;
    const std::int64_t measured = std::max<std::int64_t>(done_ns - start_ns, 0);
    if (!have_service_est_) {
      service_est_ns_ = measured;
      have_service_est_ = true;
    } else {
      service_est_ns_ += (measured - service_est_ns_) >> opt_.service_ewma_shift;
    }
    batcher_.set_service_estimate(service_est_ns_);
  }

  // Books one request that was accepted but never served because the
  // server stopped underneath it (stop-vs-submit race tail; see
  // QueryServer::stop).
  void count_unserved_at_stop() { ++unserved_at_stop_; }

  // --- telemetry (valid after QueryServer::stop returns) ---
  std::vector<double>& latencies_s() { return latencies_s_; }
  std::size_t completed() const { return completed_; }
  std::size_t shed() const { return batcher_.shed(); }
  std::size_t served_late() const { return served_late_; }
  std::size_t unserved_at_stop() const { return unserved_at_stop_; }
  std::size_t batches_dispatched() const { return batches_; }
  std::size_t max_batch_seen() const { return max_batch_seen_; }
  std::int64_t first_dispatch_ns() const { return first_dispatch_ns_; }
  std::int64_t last_complete_ns() const { return last_complete_ns_; }
  double busy_seconds() const {
    if (batches_ == 0) return 0.0;
    return static_cast<double>(last_complete_ns_ - first_dispatch_ns_) * 1e-9;
  }

private:
  std::string name_;
  KernelOptions opt_;
  AdmissionBatcher batcher_;
  AdaptiveBatchPolicy adaptive_;
  BatchRunner runner_;
  const simd::KernelTable* table_;

  std::int64_t service_est_ns_ = 0;
  bool have_service_est_ = false;

  std::vector<double> latencies_s_;
  std::size_t completed_ = 0;
  std::size_t served_late_ = 0;
  std::size_t unserved_at_stop_ = 0;
  std::size_t batches_ = 0;
  std::size_t max_batch_seen_ = 0;
  std::int64_t first_dispatch_ns_ = 0;
  std::int64_t last_complete_ns_ = 0;
};

// Dense kernel registry.  Lanes are heap-held so references stay stable
// across registration.
class KernelRouter {
public:
  // Server-wide fallback for lanes that leave KernelOptions::forced_width
  // at 0; set once by QueryServer from ServerOptions before registration.
  void set_default_forced_width(int width) { default_forced_width_ = width; }

  // Registers a lane running a caller-built runner.  The table is still
  // resolved (and the width validated) so telemetry reports what the lane
  // *would* serve with — virtual-time tests register no-op runners and
  // still exercise the resolution rule.
  int add(std::string name, const KernelOptions& opt, BatchRunner runner) {
    const simd::KernelTable& t = resolve_serve_table(effective_width(opt));
    lanes_.push_back(
        std::make_unique<KernelLane>(std::move(name), opt, std::move(runner), &t));
    return static_cast<int>(lanes_.size()) - 1;
  }

  // Registers a lane whose runner is built FROM the resolved table — the
  // dispatch-native path.  Resolution (and any invalid-width throw)
  // happens before the lane exists, so a failed registration leaves the
  // router unchanged.
  int add(std::string name, const KernelOptions& opt, const RunnerFactory& factory) {
    const simd::KernelTable& t = resolve_serve_table(effective_width(opt));
    BatchRunner runner = factory(t);
    lanes_.push_back(
        std::make_unique<KernelLane>(std::move(name), opt, std::move(runner), &t));
    return static_cast<int>(lanes_.size()) - 1;
  }

  std::size_t size() const { return lanes_.size(); }
  KernelLane& lane(int k) { return *lanes_[static_cast<std::size_t>(k)]; }
  const KernelLane& lane(int k) const { return *lanes_[static_cast<std::size_t>(k)]; }

  // Index of the named kernel, -1 when absent (linear scan: a server hosts
  // a handful of kernels, not thousands).
  int find(std::string_view name) const {
    for (std::size_t k = 0; k < lanes_.size(); ++k) {
      if (lanes_[k]->name() == name) return static_cast<int>(k);
    }
    return -1;
  }

  // Earliest-deadline-first arbitration: the ready lane with the smallest
  // urgency key, or -1 when no lane has a ready batch.  Ties go to the
  // lower index, keeping the choice deterministic in virtual-time tests.
  int pick_ready(std::int64_t now_ns) const {
    int best = -1;
    std::int64_t best_urgency = kNoDeadline;
    for (std::size_t k = 0; k < lanes_.size(); ++k) {
      const AdmissionBatcher& b = lanes_[k]->batcher();
      if (!b.ready(now_ns)) continue;
      const std::int64_t u = b.urgency_ns();
      if (best == -1 || u < best_urgency) {
        best = static_cast<int>(k);
        best_urgency = u;
      }
    }
    return best;
  }

  // Park horizon: the earliest instant any lane's batch becomes ready.
  std::int64_t next_deadline_ns() const {
    std::int64_t t = kNoDeadline;
    for (const auto& lane : lanes_) t = std::min(t, lane->batcher().next_deadline_ns());
    return t;
  }

  std::size_t total_pending() const {
    std::size_t n = 0;
    for (const auto& lane : lanes_) n += lane->batcher().pending();
    return n;
  }

private:
  int effective_width(const KernelOptions& opt) const {
    return opt.forced_width != 0 ? opt.forced_width : default_forced_width_;
  }

  std::vector<std::unique_ptr<KernelLane>> lanes_;
  int default_forced_width_ = 0;
};

}  // namespace tb::serve
