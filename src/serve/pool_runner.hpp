// Bridges QueryServer batches onto the hybrid executor — through the
// runtime ISA dispatch tables.
//
// A dispatched batch is an arbitrary dense id block, not a [0, n) range —
// exactly the shape of the donated-frame entry point the blocked engines
// already expose (Engine::run_frame / blocked_*_frame): re-expand an
// explicit id list into a fresh root block and traverse.  Each factory
// below returns a serve::RunnerFactory: the router invokes it with the
// lane's *resolved* kernel table (forced width honored, TB_SIMD_ISA
// honored when unforced), and the table's make_serve_* entry point builds
// the actual runner — per-slot BlockedTraversal engines at THAT table's
// width, subranges fanned over the pool with hybrid_for.  No caller
// instantiates an engine at a compile-time width anymore.
//
// Engines persist across batches (per-slot block pools stay warm), which
// is the point of a persistent serving pool: no per-request engine or
// worker setup.  Ranges mapped to one slot never run concurrently
// (hybrid_for's contract), so the per-slot engines need no locking.  In a
// multi-kernel server each registered kernel lane gets its own runner
// (hence its own per-slot engines) over the SAME pool — batches serialize
// on the admission thread, so two lanes never race on the pool's slots.
//
// Lifetimes: the pool, the program, and (for pointcorr) the per-slot
// partials array — rt::hybrid_slots(pool) Padded<uint64_t> entries,
// indexed by hybrid slot — must outlive the server that owns the runner.
#pragma once

#include "apps/knn.hpp"
#include "apps/minmaxdist.hpp"
#include "apps/pointcorr.hpp"
#include "runtime/cacheline.hpp"
#include "runtime/hybrid.hpp"
#include "serve/server.hpp"
#include "simd/dispatch.hpp"

namespace tb::serve {

inline RunnerFactory knn_pool_runner(rt::ForkJoinPool& pool, const rt::HybridOptions& opt,
                                     const apps::KnnProgram& prog) {
  return [&pool, opt, &prog](const simd::KernelTable& t) -> BatchRunner {
    return t.make_serve_knn(pool, opt, prog);
  };
}

inline RunnerFactory pointcorr_pool_runner(rt::ForkJoinPool& pool,
                                           const rt::HybridOptions& opt,
                                           const apps::PointCorrProgram& prog,
                                           rt::Padded<std::uint64_t>* parts) {
  return [&pool, opt, &prog, parts](const simd::KernelTable& t) -> BatchRunner {
    return t.make_serve_pointcorr(pool, opt, prog, parts);
  };
}

inline RunnerFactory minmaxdist_pool_runner(rt::ForkJoinPool& pool,
                                            const rt::HybridOptions& opt,
                                            const apps::MinmaxDistProgram& prog) {
  return [&pool, opt, &prog](const simd::KernelTable& t) -> BatchRunner {
    return t.make_serve_minmaxdist(pool, opt, prog);
  };
}

}  // namespace tb::serve
