// Bridges QueryServer batches onto the hybrid executor.
//
// A dispatched batch is an arbitrary dense id block, not a [0, n) range —
// exactly the shape of the donated-frame entry point the blocked engines
// already expose (Engine::run_frame / blocked_*_frame): re-expand an
// explicit id list into a fresh root block and traverse.  make_pool_runner
// therefore splits the batch over the pool with hybrid_for and hands each
// subrange of ids to a per-slot engine via the caller's frame function.
//
// Engines persist across batches (per-slot block pools stay warm), which
// is the point of a persistent serving pool: no per-request engine or
// worker setup.  Ranges mapped to one slot never run concurrently
// (hybrid_for's contract), so the per-slot engines need no locking.  In a
// multi-kernel server each registered kernel lane gets its own runner
// (hence its own per-slot engines) over the SAME pool — batches serialize
// on the admission thread, so two lanes never race on the pool's slots.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "runtime/hybrid.hpp"
#include "serve/server.hpp"

namespace tb::serve {

// frame_fn(const std::int32_t* ids, std::size_t count, Engine& engine) runs
// the kernel's blocked traversal from the tree root over `ids` — e.g. a
// lambda around blocked_knn_frame.  The returned runner owns one engine per
// hybrid slot (shared_ptr: BatchRunner is a copyable std::function).
template <class Engine, class FrameFn>
QueryServer::BatchRunner make_pool_runner(rt::ForkJoinPool& pool, const rt::HybridOptions& opt,
                                          FrameFn frame_fn) {
  const int slots = rt::hybrid_slots(pool);
  auto engines = std::make_shared<std::vector<Engine>>();
  engines->reserve(static_cast<std::size_t>(slots));
  for (int s = 0; s < slots; ++s) engines->emplace_back(opt.t_reexp);
  return [&pool, opt, engines, frame_fn = std::move(frame_fn)](const std::int32_t* ids,
                                                              std::size_t count) {
    rt::hybrid_for(pool, static_cast<std::int32_t>(count), opt,
                   [&](std::int32_t b, std::int32_t e, int slot) {
                     frame_fn(ids + b, static_cast<std::size_t>(e - b),
                              (*engines)[static_cast<std::size_t>(slot)]);
                   });
  };
}

}  // namespace tb::serve
