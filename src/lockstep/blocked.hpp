// Blocked re-expansion traversal engine — the generalization of the classic
// lockstep model (lockstep.hpp) that the hybrid vector×multicore executor
// runs on the work-stealing pool (runtime/hybrid.hpp).
//
// The classic lockstep engine fixes W queries to W lanes for the whole
// traversal: once lanes diverge, dead lanes idle until the shared walk
// leaves the subtree.  This engine instead carries a *dense block* of query
// ids per frame (an explicit frame stack of (node, payload, id-block)) and
// applies the paper's two density-recovery moves at every node:
//
//   * streaming compaction (§6, simd/compact.hpp): the per-step descend
//     masks left-pack the surviving query ids into the child frame's block,
//     so dead lanes are squeezed out instead of idling;
//   * a re-expansion threshold: a frame whose block has fewer than t_reexp
//     live queries stops re-blocking — below the threshold compaction can no
//     longer amortize its cost — and finishes in classic masked-lockstep
//     mode (the degenerate case: t_reexp larger than the query count IS the
//     prior-work model, one fixed W-group at a time).
//
// Id blocks are recycled through an engine-local pool (one engine per pool
// worker under the hybrid executor — the per-worker block_pool instances),
// and sibling frames share their parent's survivor block by refcount, so
// the steady state is allocation-free.
//
// Frame-level work donation: when a Donor is installed (set_donor), the
// main loop polls it once per frame and, when the donor reports hungry
// peers, splits the bottom-most donatable frame — the tail half of a live
// block's query ids leaves through Donor::take as a (node, payload, ids)
// triple the recipient re-expands into a fresh root block on its own engine
// via run_frame.  Bottom frames sit closest to the root, so one donation
// moves the largest available subtree share; the per-query partition keeps
// results identical because every traversal app's state is per-query (or a
// commutative sum).  Without a donor installed the engine behaves exactly
// as before.
//
// Statistics land in core::ExecStats with the paper's step accounting: a
// blocked frame of t live queries is a superstep of ceil(t/W) steps
// (floor(t/W) complete); a masked node visit is one step, complete only
// when all W lanes are live.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/stats.hpp"
#include "simd/batch.hpp"
#include "simd/compact.hpp"

namespace tb::lockstep {

template <int W, class Payload = char>
class BlockedTraversal {
public:
  using BI = simd::batch<std::int32_t, W>;
  using payload_type = Payload;
  static constexpr std::uint32_t kFullMask = simd::mask_all<W>;
  static constexpr int kMaxChildren = 8;

  // Receives donated frames (runtime/hybrid.hpp implements this on top of
  // the pool).  want() must be cheap — it is polled once per frame; take()
  // must copy the ids out before returning (the engine reuses the block).
  struct Donor {
    virtual ~Donor() = default;
    virtual bool want() = 0;
    virtual void take(std::int32_t node, const Payload& payload, const std::int32_t* ids,
                      std::size_t n) = 0;
  };

  explicit BlockedTraversal(std::size_t t_reexp = 0) : t_reexp_(t_reexp) {}

  void set_reexp_threshold(std::size_t t) { t_reexp_ = t; }
  std::size_t reexp_threshold() const { return t_reexp_; }

  // Installing a donor enables frame-level donation for subsequent runs;
  // nullptr disables it (the default).
  void set_donor(Donor* d) { donor_ = d; }
  Donor* donor() const { return donor_; }

  // Walks the shared tree from `root` with the dense query block
  // [first_query, first_query + num_queries).
  //
  //   children(node, out) -> int      writes up to kMaxChildren child ids
  //   step(node, qids, mask, payload) -> descend mask (subset of `mask`);
  //                                   lane l of `qids` is a query id, valid
  //                                   when bit l of `mask` is set (invalid
  //                                   lanes replicate a valid id so gathers
  //                                   stay in bounds); leaf work happens
  //                                   inside step, exactly as in the classic
  //                                   kernels
  //   descend(payload) -> payload     per-level payload for the children
  //
  // All surviving lanes descend into every child — the same contract as the
  // classic engine, which pushes every child with one shared descend mask;
  // step runs again at each child, so child-specific pruning happens there.
  template <class ChildrenFn, class StepFn, class DescendFn>
  void run(std::int32_t root, Payload root_payload, std::int32_t first_query,
           std::int32_t num_queries, ChildrenFn&& children, StepFn&& step,
           DescendFn&& descend, core::ExecStats* stats = nullptr) {
    if (num_queries <= 0) return;
    IdBlock* rootb = alloc(static_cast<std::size_t>(num_queries));
    for (std::int32_t i = 0; i < num_queries; ++i) {
      rootb->ids[static_cast<std::size_t>(i)] = first_query + i;
    }
    rootb->n = static_cast<std::size_t>(num_queries);
    rootb->refs = 1;
    frames_.push_back(Frame{root, root_payload, rootb});
    main_loop(children, step, descend, stats);
  }

  // Walks the shared tree from an arbitrary (node, payload, explicit id
  // list) triple — the receiving side of frame-level donation: the donated
  // ids become a fresh dense root block on THIS engine (its block pool) and
  // the subtree is traversed with the usual compaction + re-expansion.
  template <class ChildrenFn, class StepFn, class DescendFn>
  void run_frame(std::int32_t node, Payload payload, const std::int32_t* qids,
                 std::size_t num_queries, ChildrenFn&& children, StepFn&& step,
                 DescendFn&& descend, core::ExecStats* stats = nullptr) {
    if (num_queries == 0) return;
    IdBlock* rootb = alloc(num_queries);
    std::copy_n(qids, num_queries, rootb->ids.data());
    rootb->n = num_queries;
    rootb->refs = 1;
    frames_.push_back(Frame{node, payload, rootb});
    main_loop(children, step, descend, stats);
  }

private:
  struct IdBlock {
    std::vector<std::int32_t> ids;  // capacity carries W slack for compact stores
    std::size_t n = 0;
    int refs = 0;
  };

  struct Frame {
    std::int32_t node;
    Payload payload;
    IdBlock* blk;
  };

  struct MaskedFrame {
    std::int32_t node;
    std::uint32_t mask;
    Payload payload;
  };

  template <class ChildrenFn, class StepFn, class DescendFn>
  void main_loop(ChildrenFn&& children, StepFn&& step, DescendFn&& descend,
                 core::ExecStats* stats) {
    core::ExecStats local;
    core::ExecStats& st = stats ? *stats : local;
    std::int32_t kids[kMaxChildren];
    while (!frames_.empty()) {
      if (donor_ != nullptr && donor_->want()) try_donate(st);
      Frame f = frames_.back();
      frames_.pop_back();
      if (f.blk->n == 0) {
        release(f.blk);
        continue;
      }
      if (f.blk->n < t_reexp_) {
        // Below the re-expansion threshold: finish this subtree in classic
        // masked-lockstep mode (no further compaction).
        st.on_action(core::Action::Restart);
        masked_subtree(f, children, step, descend, st);
        release(f.blk);
        continue;
      }

      // Blocked superstep: evaluate the whole block W lanes at a time and
      // left-pack the survivors into a fresh dense block.
      st.on_block_executed(f.blk->n, W, std::max<std::size_t>(t_reexp_, W));
      st.on_action(core::Action::DFE);
      IdBlock* surv = alloc(f.blk->n + static_cast<std::size_t>(W));
      const std::int32_t* ids = f.blk->ids.data();
      for (std::size_t i = 0; i < f.blk->n; i += static_cast<std::size_t>(W)) {
        const int lanes =
            static_cast<int>(std::min<std::size_t>(W, f.blk->n - i));
        BI q;
        if (lanes == W) {
          q = BI::loadu(ids + i);
        } else {
          for (int l = 0; l < W; ++l) {
            q.set(l, ids[i + static_cast<std::size_t>(l < lanes ? l : 0)]);
          }
        }
        const std::uint32_t valid = lanes == W ? kFullMask : ((1u << lanes) - 1u);
        const std::uint32_t m = step(f.node, q, valid, f.payload) & valid;
        if (m != 0) {
          surv->n += static_cast<std::size_t>(
              simd::compact_store(surv->ids.data() + surv->n, m, q));
        }
      }
      release(f.blk);
      if (surv->n == 0) {
        release(surv);
        continue;
      }
      const int nk = children(f.node, kids);
      if (nk == 0) {
        release(surv);
        continue;
      }
      const Payload cp = descend(f.payload);
      surv->refs = nk;  // siblings share the survivor block
      for (int s = nk; s-- > 0;) frames_.push_back(Frame{kids[s], cp, surv});
    }
  }

  // Splits the bottom-most donatable frame and hands the tail half of its
  // query ids to the donor.  Both halves stay at or above max(t_reexp, W),
  // so a donation never flips the remaining half below the blocked regime it
  // was already in; frames below that floor (including everything in the
  // degenerate classic-lockstep configuration) are never donated.
  void try_donate(core::ExecStats& st) {
    const std::size_t min_n =
        2 * std::max<std::size_t>(t_reexp_, static_cast<std::size_t>(W));
    for (Frame& f : frames_) {  // frames_[0] is the bottom: nearest the root
      if (f.blk->n < min_n) continue;
      const std::size_t keep = f.blk->n / 2;
      donor_->take(f.node, f.payload, f.blk->ids.data() + keep, f.blk->n - keep);
      if (f.blk->refs == 1) {
        f.blk->n = keep;
      } else {
        // The block is shared with sibling frames, which each still own the
        // full survivor set — give this frame a private kept-half copy.
        IdBlock* nb = alloc(keep);
        std::copy_n(f.blk->ids.data(), keep, nb->ids.data());
        nb->n = keep;
        release(f.blk);
        f.blk = nb;
      }
      st.donated_frames += 1;
      return;
    }
  }

  // Classic masked-lockstep DFS over one small block: fixed W-groups of the
  // block's (dense) survivors, lane masks carried, no compaction — the
  // prior-work execution model, reached only below t_reexp.
  template <class ChildrenFn, class StepFn, class DescendFn>
  void masked_subtree(const Frame& f, ChildrenFn&& children, StepFn&& step,
                      DescendFn&& descend, core::ExecStats& st) {
    const std::int32_t* ids = f.blk->ids.data();
    std::int32_t kids[kMaxChildren];
    for (std::size_t g = 0; g < f.blk->n; g += static_cast<std::size_t>(W)) {
      const int lanes = static_cast<int>(std::min<std::size_t>(W, f.blk->n - g));
      BI q;
      for (int l = 0; l < W; ++l) q.set(l, ids[g + static_cast<std::size_t>(l < lanes ? l : 0)]);
      const std::uint32_t init = lanes == W ? kFullMask : ((1u << lanes) - 1u);
      st.supersteps += 1;
      st.partial_supersteps += 1;  // by construction below the threshold
      mstack_.push_back(MaskedFrame{f.node, init, f.payload});
      while (!mstack_.empty()) {
        const MaskedFrame mf = mstack_.back();
        mstack_.pop_back();
        if (mf.mask == 0) continue;
        st.steps_total += 1;
        st.steps_complete += (mf.mask == kFullMask) ? 1 : 0;
        st.tasks_executed += static_cast<std::uint64_t>(std::popcount(mf.mask));
        const std::uint32_t m = step(mf.node, q, mf.mask, mf.payload) & mf.mask;
        if (m == 0) continue;
        const int nk = children(mf.node, kids);
        if (nk == 0) continue;
        const Payload cp = descend(mf.payload);
        for (int s = nk; s-- > 0;) mstack_.push_back(MaskedFrame{kids[s], m, cp});
      }
    }
  }

  IdBlock* alloc(std::size_t cap) {
    // W slack past the logical size: compact_store always writes a full
    // vector and the caller bumps n by popcount (same contract as
    // SoaBlock::ensure_slack).
    const std::size_t want = cap + static_cast<std::size_t>(W);
    IdBlock* b;
    if (!free_.empty()) {
      b = free_.back();
      free_.pop_back();
    } else {
      arena_.push_back(std::make_unique<IdBlock>());
      b = arena_.back().get();
    }
    if (b->ids.size() < want) b->ids.resize(want);
    b->n = 0;
    b->refs = 1;
    return b;
  }

  void release(IdBlock* b) {
    if (--b->refs == 0) {
      b->n = 0;
      free_.push_back(b);
    }
  }

  std::size_t t_reexp_;
  Donor* donor_ = nullptr;
  std::vector<Frame> frames_;
  std::vector<MaskedFrame> mstack_;
  std::vector<std::unique_ptr<IdBlock>> arena_;
  std::vector<IdBlock*> free_;
};

}  // namespace tb::lockstep
