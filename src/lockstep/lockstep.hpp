// Lockstep (data-parallel-only) traversal baseline — the prior work the
// paper positions against (§8: Jo et al. [8], Ren et al. [14]).
//
// Those systems vectorize tree-traversal applications by assigning one
// *query* (outer data-parallel iteration) to each SIMD lane and walking the
// tree in a single shared order with masked execution.  Nested task
// parallelism is not exploited, there is no re-blocking: once lanes
// diverge — some prune a subtree, others descend — the divergent lanes
// simply idle, and they never consider multicore execution.  This module
// implements that execution model faithfully so the benchmarks can measure
// what task blocks add over it:
//
//   * taskblock vs lockstep = re-blocking/compaction benefit (dead lanes
//     are squeezed out of blocks instead of idling), plus multicore.
//
// The engine is a masked DFS over any tree with indexed children; a
// per-frame payload threads level-dependent values (Barnes-Hut's opening
// threshold) down the traversal.  LockstepStats records lane occupancy —
// the fraction of lane-visits that were active — which is exactly the
// divergence waste the paper's re-expansion/restart policies eliminate.
#pragma once

#include <bit>
#include <cstdint>
#include <utility>
#include <vector>

namespace tb::lockstep {

struct LockstepStats {
  std::uint64_t node_visits = 0;         // frames popped with a nonzero mask
  std::uint64_t lane_visits = 0;         // node_visits × W
  std::uint64_t active_lane_visits = 0;  // Σ popcount(mask)

  // Fraction of SIMD lanes doing useful work; 1.0 means no divergence.
  double occupancy() const {
    return lane_visits == 0
               ? 1.0
               : static_cast<double>(active_lane_visits) / static_cast<double>(lane_visits);
  }

  LockstepStats& merge(const LockstepStats& o) {
    node_visits += o.node_visits;
    lane_visits += o.lane_visits;
    active_lane_visits += o.active_lane_visits;
    return *this;
  }
};

// Masked lockstep DFS.
//
//   children(node, out) -> int   writes up to 8 child ids, returns count
//   visit(node, mask, payload)   -> {descend-mask, child-payload}
//
// The engine pushes every child with the returned mask/payload; a zero
// descend mask prunes the subtree for all lanes.  W is the lane count
// (statistics only — masking is the visitor's business).
template <int W, class Payload, class ChildrenFn, class VisitFn>
void traverse(std::int32_t root, std::uint32_t initial_mask, Payload root_payload,
              ChildrenFn&& children, VisitFn&& visit, LockstepStats* stats = nullptr) {
  struct Frame {
    std::int32_t node;
    std::uint32_t mask;
    Payload payload;
  };
  std::vector<Frame> stack;
  stack.push_back({root, initial_mask, root_payload});
  std::int32_t kids[8];
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    if (f.mask == 0) continue;
    if (stats != nullptr) {
      stats->node_visits += 1;
      stats->lane_visits += static_cast<std::uint64_t>(W);
      stats->active_lane_visits += static_cast<std::uint64_t>(std::popcount(f.mask));
    }
    const auto [descend, child_payload] = visit(f.node, f.mask, f.payload);
    if (descend == 0) continue;
    const int n = children(f.node, kids);
    for (int i = n; i-- > 0;) stack.push_back({kids[i], descend, child_payload});
  }
}

// Payload-free convenience overload: visit(node, mask) -> descend mask.
template <int W, class ChildrenFn, class VisitFn>
void traverse(std::int32_t root, std::uint32_t initial_mask, ChildrenFn&& children,
              VisitFn&& visit, LockstepStats* stats = nullptr) {
  traverse<W, char>(
      root, initial_mask, 0, std::forward<ChildrenFn>(children),
      [&](std::int32_t node, std::uint32_t mask, char) {
        return std::pair<std::uint32_t, char>{visit(node, mask), 0};
      },
      stats);
}

}  // namespace tb::lockstep
