// Barnes-Hut force computation under the lockstep model: one body per lane,
// shared octree walk, per-frame opening threshold (d² divides by 4 per
// level — the traversal payload).
//
// At each cell, lanes far enough for the center-of-mass approximation take
// it immediately and leave the subtree; near lanes descend.  Leaves direct-
// sum their bodies against all live lanes.  The terminal-interaction count
// is bit-identical to the recursive formulation (same criterion per
// (body, cell) pair); accumulated forces agree to floating-point
// reassociation tolerance, since the traversal order differs.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "apps/barneshut.hpp"
#include "core/stats.hpp"
#include "lockstep/blocked.hpp"
#include "lockstep/lockstep.hpp"
#include "runtime/cacheline.hpp"
#include "runtime/hybrid.hpp"
#include "simd/batch.hpp"

namespace tb::lockstep {

template <int W = apps::BarnesHutProgram::simd_width>
std::uint64_t lockstep_barneshut(const apps::BarnesHutProgram& prog, float theta,
                                 LockstepStats* stats = nullptr) {
  using BF = simd::batch<float, W>;
  const spatial::Octree& tree = *prog.tree;
  const spatial::Bodies& bodies = *prog.bodies;
  const BF eps2 = BF::broadcast(prog.eps2);
  const std::size_t n = bodies.size();

  std::uint64_t interactions = 0;
  for (std::size_t b0 = 0; b0 < n; b0 += W) {
    const int lanes = static_cast<int>(std::min<std::size_t>(W, n - b0));
    const std::uint32_t init = lanes == W ? simd::mask_all<W> : ((1u << lanes) - 1u);
    BF qx, qy, qz;
    std::int32_t bid[W];
    for (int l = 0; l < W; ++l) {
      const std::size_t b = b0 + static_cast<std::size_t>(l < lanes ? l : 0);
      bid[l] = static_cast<std::int32_t>(b);
      qx.set(l, bodies.x[b]);
      qy.set(l, bodies.y[b]);
      qz.set(l, bodies.z[b]);
    }
    BF fx = BF::zero(), fy = BF::zero(), fz = BF::zero();

    traverse<W, float>(
        tree.root, init, prog.root_d2(theta),
        [&](std::int32_t node, std::int32_t* out) {
          int c = 0;
          for (const std::int32_t kid : tree.children[static_cast<std::size_t>(node)]) {
            if (kid != spatial::Octree::kNoChild) out[c++] = kid;
          }
          return c;
        },
        [&](std::int32_t node, std::uint32_t mask, float d2) {
          const auto nn = static_cast<std::size_t>(node);
          const BF dx = BF::broadcast(tree.com_x[nn]) - qx;
          const BF dy = BF::broadcast(tree.com_y[nn]) - qy;
          const BF dz = BF::broadcast(tree.com_z[nn]) - qz;
          const BF dr2 = dx * dx + dy * dy + dz * dz;
          const std::uint32_t far = mask & simd::cmp_ge(dr2, BF::broadcast(d2));
          if (far != 0) {
            // Far lanes: one interaction with the cell's center of mass.
            interactions += std::popcount(far);
            const BF r2 = dr2 + eps2;
            BF f;
            for (int l = 0; l < W; ++l) {
              const float inv = 1.0f / std::sqrt(r2[l]);
              f.set(l, tree.mass[nn] * inv * inv * inv);
            }
            const BF zero = BF::zero();
            fx += simd::select(far, f * dx, zero);
            fy += simd::select(far, f * dy, zero);
            fz += simd::select(far, f * dz, zero);
          }
          const std::uint32_t near_lanes = mask & ~far;
          if (near_lanes == 0) return std::pair{0u, d2 * 0.25f};
          if (!tree.is_leaf(node)) return std::pair{near_lanes, d2 * 0.25f};
          // Leaf: direct sum of the leaf's bodies against the near lanes.
          interactions += std::popcount(near_lanes);
          for (std::int32_t j = tree.leaf_begin[nn]; j < tree.leaf_end[nn]; ++j) {
            const auto bj = static_cast<std::size_t>(
                tree.body_index[static_cast<std::size_t>(j)]);
            const BF bx = BF::broadcast(bodies.x[bj]) - qx;
            const BF by = BF::broadcast(bodies.y[bj]) - qy;
            const BF bz = BF::broadcast(bodies.z[bj]) - qz;
            const BF r2 = bx * bx + by * by + bz * bz + eps2;
            // Mask out the self lane (a body never attracts itself).
            std::uint32_t m = near_lanes;
            for (int l = 0; l < W; ++l) {
              if (bid[l] == static_cast<std::int32_t>(bj)) m &= ~(1u << l);
            }
            if (m == 0) continue;
            BF f;
            for (int l = 0; l < W; ++l) {
              const float inv = 1.0f / std::sqrt(r2[l]);
              f.set(l, bodies.mass[bj] * inv * inv * inv);
            }
            const BF zero = BF::zero();
            fx += simd::select(m, f * bx, zero);
            fy += simd::select(m, f * by, zero);
            fz += simd::select(m, f * bz, zero);
          }
          return std::pair{0u, d2 * 0.25f};
        },
        stats);

    for (int l = 0; l < lanes; ++l) {
      prog.add_force(bid[l], fx[l], fy[l], fz[l]);
    }
  }
  return interactions;
}

// ---- blocked / hybrid port ------------------------------------------------------
//
// The opening threshold d² is the per-frame payload (it only depends on the
// level), cell data is broadcast, body data gathered.  Unlike the classic
// kernel — whose W bodies keep their force accumulators in registers for the
// whole walk — compaction regroups bodies at every node, so forces scatter
// into the per-body arrays per step (far-field kicks lane-by-lane, one
// accumulated scatter per leaf).  The terminal-interaction fingerprint stays
// bit-identical to the recursive formulation; forces agree to reassociation
// tolerance.
template <int W>
struct BarnesHutBlockedKernel {
  using BF = simd::batch<float, W>;
  using BI = simd::batch<std::int32_t, W>;

  const apps::BarnesHutProgram& prog;
  std::uint64_t interactions = 0;

  int children(std::int32_t node, std::int32_t* out) const {
    int c = 0;
    for (const std::int32_t kid :
         prog.tree->children[static_cast<std::size_t>(node)]) {
      if (kid != spatial::Octree::kNoChild) out[c++] = kid;
    }
    return c;
  }

  std::uint32_t step(std::int32_t node, const BI& qid, std::uint32_t mask, float d2) {
    const spatial::Octree& tree = *prog.tree;
    const spatial::Bodies& bodies = *prog.bodies;
    const BF eps2 = BF::broadcast(prog.eps2);
    const auto nn = static_cast<std::size_t>(node);
    const BF qx = simd::gather(bodies.x.data(), qid);
    const BF qy = simd::gather(bodies.y.data(), qid);
    const BF qz = simd::gather(bodies.z.data(), qid);
    const BF dx = BF::broadcast(tree.com_x[nn]) - qx;
    const BF dy = BF::broadcast(tree.com_y[nn]) - qy;
    const BF dz = BF::broadcast(tree.com_z[nn]) - qz;
    const BF dr2 = dx * dx + dy * dy + dz * dz;
    const std::uint32_t far = mask & simd::cmp_ge(dr2, BF::broadcast(d2));
    if (far != 0) {
      // Far lanes: one interaction with the cell's center of mass.
      interactions += std::popcount(far);
      const BF r2 = dr2 + eps2;
      BF f;
      for (int l = 0; l < W; ++l) {
        const float inv = 1.0f / std::sqrt(r2[l]);
        f.set(l, tree.mass[nn] * inv * inv * inv);
      }
      const BF fx = f * dx, fy = f * dy, fz = f * dz;
      std::uint32_t m = far;
      while (m != 0) {
        const int l = std::countr_zero(m);
        m &= m - 1;
        prog.add_force(qid[l], fx[l], fy[l], fz[l]);
      }
    }
    const std::uint32_t near_lanes = mask & ~far;
    if (near_lanes == 0) return 0;
    if (!tree.is_leaf(node)) return near_lanes;
    // Leaf: direct sum of the leaf's bodies against the near lanes,
    // accumulated across the leaf loop and scattered once per lane.
    interactions += std::popcount(near_lanes);
    BF fx = BF::zero(), fy = BF::zero(), fz = BF::zero();
    const BF zero = BF::zero();
    for (std::int32_t j = tree.leaf_begin[nn]; j < tree.leaf_end[nn]; ++j) {
      const auto bj =
          static_cast<std::size_t>(tree.body_index[static_cast<std::size_t>(j)]);
      const BF bx = BF::broadcast(bodies.x[bj]) - qx;
      const BF by = BF::broadcast(bodies.y[bj]) - qy;
      const BF bz = BF::broadcast(bodies.z[bj]) - qz;
      const BF r2 = bx * bx + by * by + bz * bz + eps2;
      // Mask out the self lane (a body never attracts itself).
      const std::uint32_t m =
          near_lanes &
          ~simd::cmp_eq(qid, BI::broadcast(static_cast<std::int32_t>(bj)));
      if (m == 0) continue;
      BF f;
      for (int l = 0; l < W; ++l) {
        const float inv = 1.0f / std::sqrt(r2[l]);
        f.set(l, bodies.mass[bj] * inv * inv * inv);
      }
      fx += simd::select(m, f * bx, zero);
      fy += simd::select(m, f * by, zero);
      fz += simd::select(m, f * bz, zero);
    }
    std::uint32_t m = near_lanes;
    while (m != 0) {
      const int l = std::countr_zero(m);
      m &= m - 1;
      prog.add_force(qid[l], fx[l], fy[l], fz[l]);
    }
    return 0;
  }
};

template <int W = apps::BarnesHutProgram::simd_width>
std::uint64_t blocked_barneshut_range(const apps::BarnesHutProgram& prog, float theta,
                                      std::int32_t first, std::int32_t n,
                                      BlockedTraversal<W, float>& engine,
                                      core::ExecStats* stats = nullptr) {
  BarnesHutBlockedKernel<W> k{prog};
  engine.run(
      prog.tree->root, prog.root_d2(theta), first, n,
      [&](std::int32_t node, std::int32_t* out) { return k.children(node, out); },
      [&](std::int32_t node, const typename BarnesHutBlockedKernel<W>::BI& qid,
          std::uint32_t mask, float d2) { return k.step(node, qid, mask, d2); },
      [](float d2) { return d2 * 0.25f; }, stats);
  return k.interactions;
}

template <int W = apps::BarnesHutProgram::simd_width>
std::uint64_t blocked_barneshut(const apps::BarnesHutProgram& prog, float theta,
                                std::size_t t_reexp = 0,
                                core::ExecStats* stats = nullptr) {
  BlockedTraversal<W, float> engine(t_reexp);
  return blocked_barneshut_range<W>(
      prog, theta, 0, static_cast<std::int32_t>(prog.bodies->size()), engine, stats);
}

// Resumes a donated frame — the payload carries the opening threshold d² of
// the frame's level (frame-level work donation, runtime/hybrid.hpp).
template <int W = apps::BarnesHutProgram::simd_width>
std::uint64_t blocked_barneshut_frame(const apps::BarnesHutProgram& prog, std::int32_t node,
                                      float d2, const std::int32_t* ids, std::size_t count,
                                      BlockedTraversal<W, float>& engine,
                                      core::ExecStats* stats = nullptr) {
  BarnesHutBlockedKernel<W> k{prog};
  engine.run_frame(
      node, d2, ids, count,
      [&](std::int32_t nd, std::int32_t* out) { return k.children(nd, out); },
      [&](std::int32_t nd, const typename BarnesHutBlockedKernel<W>::BI& qid,
          std::uint32_t mask, float pd2) { return k.step(nd, qid, mask, pd2); },
      [](float pd2) { return pd2 * 0.25f; }, stats);
  return k.interactions;
}

template <int W = apps::BarnesHutProgram::simd_width>
std::uint64_t hybrid_barneshut(rt::ForkJoinPool& pool, const apps::BarnesHutProgram& prog,
                               float theta, const rt::HybridOptions& opt = {},
                               core::PerWorkerStats* stats = nullptr) {
  std::vector<rt::Padded<std::uint64_t>> parts(
      static_cast<std::size_t>(rt::hybrid_slots(pool)));
  rt::hybrid_run<BlockedTraversal<W, float>>(
      pool, static_cast<std::int32_t>(prog.bodies->size()), opt, stats,
      [&](std::int32_t b, std::int32_t e, std::size_t slot,
          BlockedTraversal<W, float>& engine, core::ExecStats& st) {
        parts[slot].value += blocked_barneshut_range<W>(prog, theta, b, e - b, engine, &st);
      },
      [&](std::int32_t node, float d2, const std::int32_t* ids, std::size_t count,
          std::size_t slot, BlockedTraversal<W, float>& engine, core::ExecStats& st) {
        parts[slot].value +=
            blocked_barneshut_frame<W>(prog, node, d2, ids, count, engine, &st);
      });
  std::uint64_t total = 0;
  for (const auto& p : parts) total += p.value;
  return total;
}

}  // namespace tb::lockstep
