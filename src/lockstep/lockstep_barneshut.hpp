// Barnes-Hut force computation under the lockstep model: one body per lane,
// shared octree walk, per-frame opening threshold (d² divides by 4 per
// level — the traversal payload).
//
// At each cell, lanes far enough for the center-of-mass approximation take
// it immediately and leave the subtree; near lanes descend.  Leaves direct-
// sum their bodies against all live lanes.  The terminal-interaction count
// is bit-identical to the recursive formulation (same criterion per
// (body, cell) pair); accumulated forces agree to floating-point
// reassociation tolerance, since the traversal order differs.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>

#include "apps/barneshut.hpp"
#include "lockstep/lockstep.hpp"
#include "simd/batch.hpp"

namespace tb::lockstep {

inline std::uint64_t lockstep_barneshut(const apps::BarnesHutProgram& prog, float theta,
                                        LockstepStats* stats = nullptr) {
  constexpr int W = apps::BarnesHutProgram::simd_width;
  using BF = simd::batch<float, W>;
  const spatial::Octree& tree = *prog.tree;
  const spatial::Bodies& bodies = *prog.bodies;
  const BF eps2 = BF::broadcast(prog.eps2);
  const std::size_t n = bodies.size();

  std::uint64_t interactions = 0;
  for (std::size_t b0 = 0; b0 < n; b0 += W) {
    const int lanes = static_cast<int>(std::min<std::size_t>(W, n - b0));
    const std::uint32_t init = lanes == W ? simd::mask_all<W> : ((1u << lanes) - 1u);
    BF qx, qy, qz;
    std::int32_t bid[W];
    for (int l = 0; l < W; ++l) {
      const std::size_t b = b0 + static_cast<std::size_t>(l < lanes ? l : 0);
      bid[l] = static_cast<std::int32_t>(b);
      qx.set(l, bodies.x[b]);
      qy.set(l, bodies.y[b]);
      qz.set(l, bodies.z[b]);
    }
    BF fx = BF::zero(), fy = BF::zero(), fz = BF::zero();

    traverse<W, float>(
        tree.root, init, prog.root_d2(theta),
        [&](std::int32_t node, std::int32_t* out) {
          int c = 0;
          for (const std::int32_t kid : tree.children[static_cast<std::size_t>(node)]) {
            if (kid != spatial::Octree::kNoChild) out[c++] = kid;
          }
          return c;
        },
        [&](std::int32_t node, std::uint32_t mask, float d2) {
          const auto nn = static_cast<std::size_t>(node);
          const BF dx = BF::broadcast(tree.com_x[nn]) - qx;
          const BF dy = BF::broadcast(tree.com_y[nn]) - qy;
          const BF dz = BF::broadcast(tree.com_z[nn]) - qz;
          const BF dr2 = dx * dx + dy * dy + dz * dz;
          const std::uint32_t far = mask & simd::cmp_ge(dr2, BF::broadcast(d2));
          if (far != 0) {
            // Far lanes: one interaction with the cell's center of mass.
            interactions += std::popcount(far);
            const BF r2 = dr2 + eps2;
            BF f;
            for (int l = 0; l < W; ++l) {
              const float inv = 1.0f / std::sqrt(r2[l]);
              f.set(l, tree.mass[nn] * inv * inv * inv);
            }
            const BF zero = BF::zero();
            fx += simd::select(far, f * dx, zero);
            fy += simd::select(far, f * dy, zero);
            fz += simd::select(far, f * dz, zero);
          }
          const std::uint32_t near_lanes = mask & ~far;
          if (near_lanes == 0) return std::pair{0u, d2 * 0.25f};
          if (!tree.is_leaf(node)) return std::pair{near_lanes, d2 * 0.25f};
          // Leaf: direct sum of the leaf's bodies against the near lanes.
          interactions += std::popcount(near_lanes);
          for (std::int32_t j = tree.leaf_begin[nn]; j < tree.leaf_end[nn]; ++j) {
            const auto bj = static_cast<std::size_t>(
                tree.body_index[static_cast<std::size_t>(j)]);
            const BF bx = BF::broadcast(bodies.x[bj]) - qx;
            const BF by = BF::broadcast(bodies.y[bj]) - qy;
            const BF bz = BF::broadcast(bodies.z[bj]) - qz;
            const BF r2 = bx * bx + by * by + bz * bz + eps2;
            // Mask out the self lane (a body never attracts itself).
            std::uint32_t m = near_lanes;
            for (int l = 0; l < W; ++l) {
              if (bid[l] == static_cast<std::int32_t>(bj)) m &= ~(1u << l);
            }
            if (m == 0) continue;
            BF f;
            for (int l = 0; l < W; ++l) {
              const float inv = 1.0f / std::sqrt(r2[l]);
              f.set(l, bodies.mass[bj] * inv * inv * inv);
            }
            const BF zero = BF::zero();
            fx += simd::select(m, f * bx, zero);
            fy += simd::select(m, f * by, zero);
            fz += simd::select(m, f * bz, zero);
          }
          return std::pair{0u, d2 * 0.25f};
        },
        stats);

    for (int l = 0; l < lanes; ++l) {
      prog.add_force(bid[l], fx[l], fy[l], fz[l]);
    }
  }
  return interactions;
}

}  // namespace tb::lockstep
