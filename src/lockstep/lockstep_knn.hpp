// k-nearest-neighbor search under the lockstep model: one query per lane,
// shared kd-tree walk, per-lane shrinking pruning bounds.
//
// The bound (current k-th best distance) is reloaded from the shared state
// at every node visit, so a lane benefits from its own earlier leaf visits
// exactly as the recursive traversal does.  The final k-best lists are
// schedule-independent — the same (query, point) distances are offered —
// so results match the recursive formulation; only the visit counts (the
// pruning efficiency) differ with traversal order.
#pragma once

#include <bit>
#include <cstdint>

#include "apps/knn.hpp"
#include "lockstep/lockstep.hpp"
#include "simd/batch.hpp"

namespace tb::lockstep {

inline void lockstep_knn(const apps::KnnProgram& prog, LockstepStats* stats = nullptr) {
  constexpr int W = apps::KnnProgram::simd_width;
  using BF = simd::batch<float, W>;
  const spatial::KdTree& tree = *prog.tree;
  const spatial::Bodies& pts = *prog.points;
  apps::KnnState& state = *prog.state;
  const BF zero = BF::zero();
  const std::size_t n = pts.size();

  for (std::size_t q0 = 0; q0 < n; q0 += W) {
    const int lanes = static_cast<int>(std::min<std::size_t>(W, n - q0));
    const std::uint32_t init = lanes == W ? simd::mask_all<W> : ((1u << lanes) - 1u);
    BF qx, qy, qz;
    std::int32_t qid[W];
    for (int l = 0; l < W; ++l) {
      const std::size_t q = q0 + static_cast<std::size_t>(l < lanes ? l : 0);
      qid[l] = static_cast<std::int32_t>(q);
      qx.set(l, pts.x[q]);
      qy.set(l, pts.y[q]);
      qz.set(l, pts.z[q]);
    }

    traverse<W>(
        tree.root, init,
        [&](std::int32_t node, std::int32_t* out) {
          int c = 0;
          const auto nn = static_cast<std::size_t>(node);
          if (tree.left[nn] != spatial::KdTree::kNoChild) out[c++] = tree.left[nn];
          if (tree.right[nn] != spatial::KdTree::kNoChild) out[c++] = tree.right[nn];
          return c;
        },
        [&](std::int32_t node, std::uint32_t mask) -> std::uint32_t {
          const auto nn = static_cast<std::size_t>(node);
          // Per-lane pruning bound, reloaded so earlier inserts tighten it.
          BF bound;
          for (int l = 0; l < W; ++l) bound.set(l, state.bound(qid[l]));
          const BF lox = BF::broadcast(tree.min_x[nn]) - qx;
          const BF hix = qx - BF::broadcast(tree.max_x[nn]);
          const BF loy = BF::broadcast(tree.min_y[nn]) - qy;
          const BF hiy = qy - BF::broadcast(tree.max_y[nn]);
          const BF loz = BF::broadcast(tree.min_z[nn]) - qz;
          const BF hiz = qz - BF::broadcast(tree.max_z[nn]);
          const BF dx = BF::max(BF::max(lox, hix), zero);
          const BF dy = BF::max(BF::max(loy, hiy), zero);
          const BF dz = BF::max(BF::max(loz, hiz), zero);
          const std::uint32_t live =
              mask & simd::cmp_lt(dx * dx + dy * dy + dz * dz, bound);
          if (live == 0 || !tree.is_leaf(node)) return live;
          // Leaf: offer every leaf point to every live lane (vector distance,
          // scalar sorted-list insertion — the insertion is inherently
          // sequential per lane, as in the prior-work systems).
          for (std::int32_t j = tree.leaf_begin[nn]; j < tree.leaf_end[nn]; ++j) {
            const auto jj = static_cast<std::size_t>(j);
            const std::int32_t id = tree.point_index[jj];
            const BF dxp = BF::broadcast(tree.px[jj]) - qx;
            const BF dyp = BF::broadcast(tree.py[jj]) - qy;
            const BF dzp = BF::broadcast(tree.pz[jj]) - qz;
            const BF d2 = dxp * dxp + dyp * dyp + dzp * dzp;
            std::uint32_t m = live;
            while (m != 0) {
              const int l = std::countr_zero(m);
              m &= m - 1;
              if (id != qid[l]) state.offer(qid[l], id, d2[l]);
            }
          }
          return 0;
        },
        stats);
  }
}

}  // namespace tb::lockstep
