// k-nearest-neighbor search under the lockstep model: one query per lane,
// shared kd-tree walk, per-lane shrinking pruning bounds.
//
// The bound (current k-th best distance) is reloaded from the shared state
// at every node visit, so a lane benefits from its own earlier leaf visits
// exactly as the recursive traversal does.  The final k-best lists are
// schedule-independent — the same (query, point) distances are offered —
// so results match the recursive formulation; only the visit counts (the
// pruning efficiency) differ with traversal order.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "apps/knn.hpp"
#include "core/stats.hpp"
#include "lockstep/blocked.hpp"
#include "lockstep/lockstep.hpp"
#include "runtime/hybrid.hpp"
#include "simd/batch.hpp"

namespace tb::lockstep {

template <int W = apps::KnnProgram::simd_width>
void lockstep_knn(const apps::KnnProgram& prog, LockstepStats* stats = nullptr) {
  using BF = simd::batch<float, W>;
  const spatial::KdTree& tree = *prog.tree;
  const spatial::Bodies& pts = *prog.points;
  apps::KnnState& state = *prog.state;
  const BF zero = BF::zero();
  const std::size_t n = pts.size();

  for (std::size_t q0 = 0; q0 < n; q0 += W) {
    const int lanes = static_cast<int>(std::min<std::size_t>(W, n - q0));
    const std::uint32_t init = lanes == W ? simd::mask_all<W> : ((1u << lanes) - 1u);
    BF qx, qy, qz;
    std::int32_t qid[W];
    for (int l = 0; l < W; ++l) {
      const std::size_t q = q0 + static_cast<std::size_t>(l < lanes ? l : 0);
      qid[l] = static_cast<std::int32_t>(q);
      qx.set(l, pts.x[q]);
      qy.set(l, pts.y[q]);
      qz.set(l, pts.z[q]);
    }

    traverse<W>(
        tree.root, init,
        [&](std::int32_t node, std::int32_t* out) {
          int c = 0;
          const auto nn = static_cast<std::size_t>(node);
          if (tree.left[nn] != spatial::KdTree::kNoChild) out[c++] = tree.left[nn];
          if (tree.right[nn] != spatial::KdTree::kNoChild) out[c++] = tree.right[nn];
          return c;
        },
        [&](std::int32_t node, std::uint32_t mask) -> std::uint32_t {
          const auto nn = static_cast<std::size_t>(node);
          // Per-lane pruning bound, reloaded so earlier inserts tighten it.
          BF bound;
          for (int l = 0; l < W; ++l) bound.set(l, state.bound(qid[l]));
          const BF lox = BF::broadcast(tree.min_x[nn]) - qx;
          const BF hix = qx - BF::broadcast(tree.max_x[nn]);
          const BF loy = BF::broadcast(tree.min_y[nn]) - qy;
          const BF hiy = qy - BF::broadcast(tree.max_y[nn]);
          const BF loz = BF::broadcast(tree.min_z[nn]) - qz;
          const BF hiz = qz - BF::broadcast(tree.max_z[nn]);
          const BF dx = BF::max(BF::max(lox, hix), zero);
          const BF dy = BF::max(BF::max(loy, hiy), zero);
          const BF dz = BF::max(BF::max(loz, hiz), zero);
          const std::uint32_t live =
              mask & simd::cmp_lt(dx * dx + dy * dy + dz * dz, bound);
          if (live == 0 || !tree.is_leaf(node)) return live;
          // Leaf: offer every leaf point to every live lane (vector distance,
          // scalar sorted-list insertion — the insertion is inherently
          // sequential per lane, as in the prior-work systems).
          for (std::int32_t j = tree.leaf_begin[nn]; j < tree.leaf_end[nn]; ++j) {
            const auto jj = static_cast<std::size_t>(j);
            const std::int32_t id = tree.point_index[jj];
            const BF dxp = BF::broadcast(tree.px[jj]) - qx;
            const BF dyp = BF::broadcast(tree.py[jj]) - qy;
            const BF dzp = BF::broadcast(tree.pz[jj]) - qz;
            const BF d2 = dxp * dxp + dyp * dyp + dzp * dzp;
            std::uint32_t m = live;
            while (m != 0) {
              const int l = std::countr_zero(m);
              m &= m - 1;
              if (id != qid[l]) state.offer(qid[l], id, d2[l]);
            }
          }
          return 0;
        },
        stats);
  }
}

// ---- blocked / hybrid port ------------------------------------------------------
//
// Same shared-node box test and leaf offers on the blocked re-expansion
// engine; per-lane pruning bounds are reloaded at every step by gathered
// query id, so compaction-regrouped lanes keep benefiting from their own
// earlier leaf visits.  The final k-best lists stay schedule-independent.
template <int W>
struct KnnBlockedKernel {
  using BF = simd::batch<float, W>;
  using BI = simd::batch<std::int32_t, W>;

  const apps::KnnProgram& prog;

  int children(std::int32_t node, std::int32_t* out) const {
    const spatial::KdTree& tree = *prog.tree;
    const auto nn = static_cast<std::size_t>(node);
    int c = 0;
    if (tree.left[nn] != spatial::KdTree::kNoChild) out[c++] = tree.left[nn];
    if (tree.right[nn] != spatial::KdTree::kNoChild) out[c++] = tree.right[nn];
    return c;
  }

  std::uint32_t step(std::int32_t node, const BI& qid, std::uint32_t mask) const {
    const spatial::KdTree& tree = *prog.tree;
    const spatial::Bodies& pts = *prog.points;
    apps::KnnState& state = *prog.state;
    const BF zero = BF::zero();
    const auto nn = static_cast<std::size_t>(node);
    const BF qx = simd::gather(pts.x.data(), qid);
    const BF qy = simd::gather(pts.y.data(), qid);
    const BF qz = simd::gather(pts.z.data(), qid);
    BF bound;
    for (int l = 0; l < W; ++l) bound.set(l, state.bound(qid[l]));
    const BF lox = BF::broadcast(tree.min_x[nn]) - qx;
    const BF hix = qx - BF::broadcast(tree.max_x[nn]);
    const BF loy = BF::broadcast(tree.min_y[nn]) - qy;
    const BF hiy = qy - BF::broadcast(tree.max_y[nn]);
    const BF loz = BF::broadcast(tree.min_z[nn]) - qz;
    const BF hiz = qz - BF::broadcast(tree.max_z[nn]);
    const BF dx = BF::max(BF::max(lox, hix), zero);
    const BF dy = BF::max(BF::max(loy, hiy), zero);
    const BF dz = BF::max(BF::max(loz, hiz), zero);
    const std::uint32_t live = mask & simd::cmp_lt(dx * dx + dy * dy + dz * dz, bound);
    if (live == 0 || !tree.is_leaf(node)) return live;
    // Leaf offers go through the program's scalar base case so the final
    // k-best lists are bit-identical to every other scheduler (vectorized
    // distance math can differ from the scalar path by an ulp under FMA
    // contraction — the LockstepKnn flake of the classic kernel).
    std::uint32_t m = live;
    while (m != 0) {
      const int l = std::countr_zero(m);
      m &= m - 1;
      apps::KnnProgram::Result dummy = 0;
      prog.leaf(apps::KnnProgram::Task{qid[l], node}, dummy);
    }
    return 0;
  }
};

template <int W = apps::KnnProgram::simd_width>
void blocked_knn_range(const apps::KnnProgram& prog, std::int32_t first, std::int32_t n,
                       BlockedTraversal<W>& engine, core::ExecStats* stats = nullptr) {
  KnnBlockedKernel<W> k{prog};
  engine.run(
      prog.tree->root, char{0}, first, n,
      [&](std::int32_t node, std::int32_t* out) { return k.children(node, out); },
      [&](std::int32_t node, const typename KnnBlockedKernel<W>::BI& qid,
          std::uint32_t mask, char) { return k.step(node, qid, mask); },
      [](char p) { return p; }, stats);
}

template <int W = apps::KnnProgram::simd_width>
void blocked_knn(const apps::KnnProgram& prog, std::size_t t_reexp = 0,
                 core::ExecStats* stats = nullptr) {
  BlockedTraversal<W> engine(t_reexp);
  blocked_knn_range<W>(prog, 0, static_cast<std::int32_t>(prog.points->size()), engine,
                       stats);
}

// Resumes a donated frame (frame-level work donation, runtime/hybrid.hpp).
template <int W = apps::KnnProgram::simd_width>
void blocked_knn_frame(const apps::KnnProgram& prog, std::int32_t node,
                       const std::int32_t* ids, std::size_t count,
                       BlockedTraversal<W>& engine, core::ExecStats* stats = nullptr) {
  KnnBlockedKernel<W> k{prog};
  engine.run_frame(
      node, char{0}, ids, count,
      [&](std::int32_t nd, std::int32_t* out) { return k.children(nd, out); },
      [&](std::int32_t nd, const typename KnnBlockedKernel<W>::BI& qid,
          std::uint32_t mask, char) { return k.step(nd, qid, mask); },
      [](char p) { return p; }, stats);
}

template <int W = apps::KnnProgram::simd_width>
void hybrid_knn(rt::ForkJoinPool& pool, const apps::KnnProgram& prog,
                const rt::HybridOptions& opt = {}, core::PerWorkerStats* stats = nullptr) {
  rt::hybrid_run<BlockedTraversal<W>>(
      pool, static_cast<std::int32_t>(prog.points->size()), opt, stats,
      [&](std::int32_t b, std::int32_t e, std::size_t, BlockedTraversal<W>& engine,
          core::ExecStats& st) { blocked_knn_range<W>(prog, b, e - b, engine, &st); },
      [&](std::int32_t node, char, const std::int32_t* ids, std::size_t count, std::size_t,
          BlockedTraversal<W>& engine, core::ExecStats& st) {
        blocked_knn_frame<W>(prog, node, ids, count, engine, &st);
      });
}

}  // namespace tb::lockstep
