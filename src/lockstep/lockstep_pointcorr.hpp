// Point correlation under the lockstep (data-parallel-only) model: one
// query per SIMD lane, all lanes walking the kd-tree in one shared order.
//
// The node being visited is uniform across lanes, so the box–ball test
// broadcasts the node's bounds against the lanes' query coordinates (no
// gathers — the locality advantage of this model), and a leaf's points
// stream against all lanes at once.  The cost is divergence: a lane whose
// ball misses the current subtree idles until the traversal leaves it.
// Counts are bit-identical to the recursive formulation — the pruning
// criterion per (query, node) pair is the same.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "apps/pointcorr.hpp"
#include "core/stats.hpp"
#include "lockstep/blocked.hpp"
#include "lockstep/lockstep.hpp"
#include "runtime/cacheline.hpp"
#include "runtime/hybrid.hpp"
#include "simd/batch.hpp"

namespace tb::lockstep {

template <int W = apps::PointCorrProgram::simd_width>
std::uint64_t lockstep_pointcorr(const apps::PointCorrProgram& prog,
                                 LockstepStats* stats = nullptr) {
  using BF = simd::batch<float, W>;
  const spatial::KdTree& tree = *prog.tree;
  const spatial::Bodies& pts = *prog.points;
  const BF r2 = BF::broadcast(prog.rad2);
  const BF zero = BF::zero();
  const std::size_t n = pts.size();

  std::uint64_t total = 0;
  for (std::size_t q0 = 0; q0 < n; q0 += W) {
    const int lanes = static_cast<int>(std::min<std::size_t>(W, n - q0));
    const std::uint32_t init =
        lanes == W ? simd::mask_all<W> : ((1u << lanes) - 1u);
    BF qx, qy, qz;
    for (int l = 0; l < W; ++l) {
      const std::size_t q = q0 + static_cast<std::size_t>(l < lanes ? l : 0);
      qx.set(l, pts.x[q]);
      qy.set(l, pts.y[q]);
      qz.set(l, pts.z[q]);
    }

    traverse<W>(
        tree.root, init,
        [&](std::int32_t node, std::int32_t* out) {
          int c = 0;
          const auto nn = static_cast<std::size_t>(node);
          if (tree.left[nn] != spatial::KdTree::kNoChild) out[c++] = tree.left[nn];
          if (tree.right[nn] != spatial::KdTree::kNoChild) out[c++] = tree.right[nn];
          return c;
        },
        [&](std::int32_t node, std::uint32_t mask) -> std::uint32_t {
          const auto nn = static_cast<std::size_t>(node);
          // Ball–box test with the node's bounds broadcast across lanes.
          const BF lox = BF::broadcast(tree.min_x[nn]) - qx;
          const BF hix = qx - BF::broadcast(tree.max_x[nn]);
          const BF loy = BF::broadcast(tree.min_y[nn]) - qy;
          const BF hiy = qy - BF::broadcast(tree.max_y[nn]);
          const BF loz = BF::broadcast(tree.min_z[nn]) - qz;
          const BF hiz = qz - BF::broadcast(tree.max_z[nn]);
          const BF dx = BF::max(BF::max(lox, hix), zero);
          const BF dy = BF::max(BF::max(loy, hiy), zero);
          const BF dz = BF::max(BF::max(loz, hiz), zero);
          const std::uint32_t live =
              mask & simd::cmp_le(dx * dx + dy * dy + dz * dz, r2);
          if (live == 0 || !tree.is_leaf(node)) return live;
          // Leaf: stream the leaf's points against all live lanes.
          for (std::int32_t j = tree.leaf_begin[nn]; j < tree.leaf_end[nn]; ++j) {
            const auto jj = static_cast<std::size_t>(j);
            const BF dxp = BF::broadcast(tree.px[jj]) - qx;
            const BF dyp = BF::broadcast(tree.py[jj]) - qy;
            const BF dzp = BF::broadcast(tree.pz[jj]) - qz;
            total += std::popcount(
                live & simd::cmp_le(dxp * dxp + dyp * dyp + dzp * dzp, r2));
          }
          return 0;  // leaves have no children
        },
        stats);
  }
  return total;
}

// ---- blocked / hybrid port ------------------------------------------------------
//
// The same ball–box test and leaf stream, ported onto the blocked
// re-expansion engine: the node is still uniform per frame (bounds
// broadcast), but query coordinates are gathered by id because compaction
// regroups queries at every node.  Pruning criteria are identical per
// (query, node) pair, so counts stay bit-identical to the recursive
// formulation.
template <int W>
struct PointCorrBlockedKernel {
  using BF = simd::batch<float, W>;
  using BI = simd::batch<std::int32_t, W>;

  const apps::PointCorrProgram& prog;
  std::uint64_t count = 0;

  int children(std::int32_t node, std::int32_t* out) const {
    const spatial::KdTree& tree = *prog.tree;
    const auto nn = static_cast<std::size_t>(node);
    int c = 0;
    if (tree.left[nn] != spatial::KdTree::kNoChild) out[c++] = tree.left[nn];
    if (tree.right[nn] != spatial::KdTree::kNoChild) out[c++] = tree.right[nn];
    return c;
  }

  std::uint32_t step(std::int32_t node, const BI& qid, std::uint32_t mask) {
    const spatial::KdTree& tree = *prog.tree;
    const spatial::Bodies& pts = *prog.points;
    const BF r2 = BF::broadcast(prog.rad2);
    const BF zero = BF::zero();
    const auto nn = static_cast<std::size_t>(node);
    const BF qx = simd::gather(pts.x.data(), qid);
    const BF qy = simd::gather(pts.y.data(), qid);
    const BF qz = simd::gather(pts.z.data(), qid);
    const BF lox = BF::broadcast(tree.min_x[nn]) - qx;
    const BF hix = qx - BF::broadcast(tree.max_x[nn]);
    const BF loy = BF::broadcast(tree.min_y[nn]) - qy;
    const BF hiy = qy - BF::broadcast(tree.max_y[nn]);
    const BF loz = BF::broadcast(tree.min_z[nn]) - qz;
    const BF hiz = qz - BF::broadcast(tree.max_z[nn]);
    const BF dx = BF::max(BF::max(lox, hix), zero);
    const BF dy = BF::max(BF::max(loy, hiy), zero);
    const BF dz = BF::max(BF::max(loz, hiz), zero);
    const std::uint32_t live = mask & simd::cmp_le(dx * dx + dy * dy + dz * dz, r2);
    if (live == 0 || !tree.is_leaf(node)) return live;
    for (std::int32_t j = tree.leaf_begin[nn]; j < tree.leaf_end[nn]; ++j) {
      const auto jj = static_cast<std::size_t>(j);
      const BF dxp = BF::broadcast(tree.px[jj]) - qx;
      const BF dyp = BF::broadcast(tree.py[jj]) - qy;
      const BF dzp = BF::broadcast(tree.pz[jj]) - qz;
      count += std::popcount(live &
                             simd::cmp_le(dxp * dxp + dyp * dyp + dzp * dzp, r2));
    }
    return 0;
  }
};

// Single-core blocked traversal of the queries [first, first + n); pass an
// engine to reuse its block pool across calls (the hybrid executor keeps one
// per worker).
template <int W = apps::PointCorrProgram::simd_width>
std::uint64_t blocked_pointcorr_range(const apps::PointCorrProgram& prog,
                                      std::int32_t first, std::int32_t n,
                                      BlockedTraversal<W>& engine,
                                      core::ExecStats* stats = nullptr) {
  PointCorrBlockedKernel<W> k{prog};
  engine.run(
      prog.tree->root, char{0}, first, n,
      [&](std::int32_t node, std::int32_t* out) { return k.children(node, out); },
      [&](std::int32_t node, const typename PointCorrBlockedKernel<W>::BI& qid,
          std::uint32_t mask, char) { return k.step(node, qid, mask); },
      [](char p) { return p; }, stats);
  return k.count;
}

template <int W = apps::PointCorrProgram::simd_width>
std::uint64_t blocked_pointcorr(const apps::PointCorrProgram& prog,
                                std::size_t t_reexp = 0,
                                core::ExecStats* stats = nullptr) {
  BlockedTraversal<W> engine(t_reexp);
  return blocked_pointcorr_range<W>(prog, 0, static_cast<std::int32_t>(prog.points->size()),
                                    engine, stats);
}

// Resumes a donated frame — the same kernel from an arbitrary (node, ids)
// start instead of the tree root (the receiving side of frame-level work
// donation, runtime/hybrid.hpp).
template <int W = apps::PointCorrProgram::simd_width>
std::uint64_t blocked_pointcorr_frame(const apps::PointCorrProgram& prog, std::int32_t node,
                                      const std::int32_t* ids, std::size_t count,
                                      BlockedTraversal<W>& engine,
                                      core::ExecStats* stats = nullptr) {
  PointCorrBlockedKernel<W> k{prog};
  engine.run_frame(
      node, char{0}, ids, count,
      [&](std::int32_t nd, std::int32_t* out) { return k.children(nd, out); },
      [&](std::int32_t nd, const typename PointCorrBlockedKernel<W>::BI& qid,
          std::uint32_t mask, char) { return k.step(nd, qid, mask); },
      [](char p) { return p; }, stats);
  return k.count;
}

// Hybrid vector×multicore: blocked traversal per worker over pool-distributed
// query ranges (runtime/hybrid.hpp).
template <int W = apps::PointCorrProgram::simd_width>
std::uint64_t hybrid_pointcorr(rt::ForkJoinPool& pool, const apps::PointCorrProgram& prog,
                               const rt::HybridOptions& opt = {},
                               core::PerWorkerStats* stats = nullptr) {
  std::vector<rt::Padded<std::uint64_t>> parts(
      static_cast<std::size_t>(rt::hybrid_slots(pool)));
  rt::hybrid_run<BlockedTraversal<W>>(
      pool, static_cast<std::int32_t>(prog.points->size()), opt, stats,
      [&](std::int32_t b, std::int32_t e, std::size_t slot, BlockedTraversal<W>& engine,
          core::ExecStats& st) {
        parts[slot].value += blocked_pointcorr_range<W>(prog, b, e - b, engine, &st);
      },
      [&](std::int32_t node, char, const std::int32_t* ids, std::size_t count,
          std::size_t slot, BlockedTraversal<W>& engine, core::ExecStats& st) {
        parts[slot].value += blocked_pointcorr_frame<W>(prog, node, ids, count, engine, &st);
      });
  std::uint64_t total = 0;
  for (const auto& p : parts) total += p.value;
  return total;
}

}  // namespace tb::lockstep
