// Point correlation under the lockstep (data-parallel-only) model: one
// query per SIMD lane, all lanes walking the kd-tree in one shared order.
//
// The node being visited is uniform across lanes, so the box–ball test
// broadcasts the node's bounds against the lanes' query coordinates (no
// gathers — the locality advantage of this model), and a leaf's points
// stream against all lanes at once.  The cost is divergence: a lane whose
// ball misses the current subtree idles until the traversal leaves it.
// Counts are bit-identical to the recursive formulation — the pruning
// criterion per (query, node) pair is the same.
#pragma once

#include <bit>
#include <cstdint>

#include "apps/pointcorr.hpp"
#include "lockstep/lockstep.hpp"
#include "simd/batch.hpp"

namespace tb::lockstep {

inline std::uint64_t lockstep_pointcorr(const apps::PointCorrProgram& prog,
                                        LockstepStats* stats = nullptr) {
  constexpr int W = apps::PointCorrProgram::simd_width;
  using BF = simd::batch<float, W>;
  const spatial::KdTree& tree = *prog.tree;
  const spatial::Bodies& pts = *prog.points;
  const BF r2 = BF::broadcast(prog.rad2);
  const BF zero = BF::zero();
  const std::size_t n = pts.size();

  std::uint64_t total = 0;
  for (std::size_t q0 = 0; q0 < n; q0 += W) {
    const int lanes = static_cast<int>(std::min<std::size_t>(W, n - q0));
    const std::uint32_t init =
        lanes == W ? simd::mask_all<W> : ((1u << lanes) - 1u);
    BF qx, qy, qz;
    for (int l = 0; l < W; ++l) {
      const std::size_t q = q0 + static_cast<std::size_t>(l < lanes ? l : 0);
      qx.set(l, pts.x[q]);
      qy.set(l, pts.y[q]);
      qz.set(l, pts.z[q]);
    }

    traverse<W>(
        tree.root, init,
        [&](std::int32_t node, std::int32_t* out) {
          int c = 0;
          const auto nn = static_cast<std::size_t>(node);
          if (tree.left[nn] != spatial::KdTree::kNoChild) out[c++] = tree.left[nn];
          if (tree.right[nn] != spatial::KdTree::kNoChild) out[c++] = tree.right[nn];
          return c;
        },
        [&](std::int32_t node, std::uint32_t mask) -> std::uint32_t {
          const auto nn = static_cast<std::size_t>(node);
          // Ball–box test with the node's bounds broadcast across lanes.
          const BF lox = BF::broadcast(tree.min_x[nn]) - qx;
          const BF hix = qx - BF::broadcast(tree.max_x[nn]);
          const BF loy = BF::broadcast(tree.min_y[nn]) - qy;
          const BF hiy = qy - BF::broadcast(tree.max_y[nn]);
          const BF loz = BF::broadcast(tree.min_z[nn]) - qz;
          const BF hiz = qz - BF::broadcast(tree.max_z[nn]);
          const BF dx = BF::max(BF::max(lox, hix), zero);
          const BF dy = BF::max(BF::max(loy, hiy), zero);
          const BF dz = BF::max(BF::max(loz, hiz), zero);
          const std::uint32_t live =
              mask & simd::cmp_le(dx * dx + dy * dy + dz * dz, r2);
          if (live == 0 || !tree.is_leaf(node)) return live;
          // Leaf: stream the leaf's points against all live lanes.
          for (std::int32_t j = tree.leaf_begin[nn]; j < tree.leaf_end[nn]; ++j) {
            const auto jj = static_cast<std::size_t>(j);
            const BF dxp = BF::broadcast(tree.px[jj]) - qx;
            const BF dyp = BF::broadcast(tree.py[jj]) - qy;
            const BF dzp = BF::broadcast(tree.pz[jj]) - qz;
            total += std::popcount(
                live & simd::cmp_le(dxp * dxp + dyp * dyp + dzp * dzp, r2));
          }
          return 0;  // leaves have no children
        },
        stats);
  }
  return total;
}

}  // namespace tb::lockstep
