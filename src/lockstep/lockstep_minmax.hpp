// min/max-extent search (apps/minmaxdist.hpp) under the lockstep model and
// its blocked/hybrid ports — the fourth vectorized traversal workload.
//
// One query per lane, shared kd-tree walk; each lane carries two monotone
// pruning bounds (nearest-so-far shrinks, farthest-so-far grows) reloaded at
// every visit.  A lane descends only while the node's box could improve one
// of its bounds, so divergence has a different shape from pointcorr/knn:
// early on every lane descends everywhere, late in the walk the min-bound
// prunes near the query while the max-bound prunes the middle of the tree.
// The final extremes are order-independent (min/max over a fixed candidate
// set), so all variants produce bit-identical state digests.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "apps/minmaxdist.hpp"
#include "core/stats.hpp"
#include "lockstep/blocked.hpp"
#include "lockstep/lockstep.hpp"
#include "runtime/hybrid.hpp"
#include "simd/batch.hpp"

namespace tb::lockstep {

// Broadcast-form dual-bound box test shared by the classic and blocked
// kernels (the gather-form twin for node vectors is
// MinmaxDistProgram::improves_mask): bit l set when `node`'s box could
// still improve lane l's nearest (min) or farthest (max) bound.
template <int W>
inline std::uint32_t minmaxdist_gain_mask(const spatial::KdTree& tree, std::int32_t node,
                                          const simd::batch<float, W>& qx,
                                          const simd::batch<float, W>& qy,
                                          const simd::batch<float, W>& qz,
                                          const simd::batch<float, W>& cur_min,
                                          const simd::batch<float, W>& cur_max) {
  using BF = simd::batch<float, W>;
  const BF zero = BF::zero();
  const auto nn = static_cast<std::size_t>(node);
  const BF lox = BF::broadcast(tree.min_x[nn]) - qx;
  const BF hix = qx - BF::broadcast(tree.max_x[nn]);
  const BF loy = BF::broadcast(tree.min_y[nn]) - qy;
  const BF hiy = qy - BF::broadcast(tree.max_y[nn]);
  const BF loz = BF::broadcast(tree.min_z[nn]) - qz;
  const BF hiz = qz - BF::broadcast(tree.max_z[nn]);
  const BF dx = BF::max(BF::max(lox, hix), zero);
  const BF dy = BF::max(BF::max(loy, hiy), zero);
  const BF dz = BF::max(BF::max(loz, hiz), zero);
  const std::uint32_t near_gain = simd::cmp_lt(dx * dx + dy * dy + dz * dz, cur_min);
  // Farthest corner: per-dim the larger one-sided offset (-lox = qx - min_x,
  // -hix = max_x - qx).
  const BF fx = BF::max(-lox, -hix);
  const BF fy = BF::max(-loy, -hiy);
  const BF fz = BF::max(-loz, -hiz);
  const std::uint32_t far_gain = simd::cmp_gt(fx * fx + fy * fy + fz * fz, cur_max);
  return near_gain | far_gain;
}

// Classic lockstep (prior-work, data-parallel-only) kernel.
template <int W = apps::MinmaxDistProgram::simd_width>
void lockstep_minmaxdist(const apps::MinmaxDistProgram& prog,
                         LockstepStats* stats = nullptr) {
  using BF = simd::batch<float, W>;
  const spatial::KdTree& tree = *prog.tree;
  const spatial::Bodies& pts = *prog.points;
  apps::MinmaxDistState& state = *prog.state;
  const std::size_t n = pts.size();

  for (std::size_t q0 = 0; q0 < n; q0 += W) {
    const int lanes = static_cast<int>(std::min<std::size_t>(W, n - q0));
    const std::uint32_t init = lanes == W ? simd::mask_all<W> : ((1u << lanes) - 1u);
    BF qx, qy, qz;
    std::int32_t qid[W];
    for (int l = 0; l < W; ++l) {
      const std::size_t q = q0 + static_cast<std::size_t>(l < lanes ? l : 0);
      qid[l] = static_cast<std::int32_t>(q);
      qx.set(l, pts.x[q]);
      qy.set(l, pts.y[q]);
      qz.set(l, pts.z[q]);
    }

    traverse<W>(
        tree.root, init,
        [&](std::int32_t node, std::int32_t* out) {
          int c = 0;
          const auto nn = static_cast<std::size_t>(node);
          if (tree.left[nn] != spatial::KdTree::kNoChild) out[c++] = tree.left[nn];
          if (tree.right[nn] != spatial::KdTree::kNoChild) out[c++] = tree.right[nn];
          return c;
        },
        [&](std::int32_t node, std::uint32_t mask) -> std::uint32_t {
          BF cur_min, cur_max;
          for (int l = 0; l < W; ++l) {
            cur_min.set(l, state.min_bound(qid[l]));
            cur_max.set(l, state.max_bound(qid[l]));
          }
          const std::uint32_t live =
              mask & minmaxdist_gain_mask<W>(tree, node, qx, qy, qz, cur_min, cur_max);
          if (live == 0 || !tree.is_leaf(node)) return live;
          // Scalar base case per live lane (bit-identical extremes across
          // schedulers; see the blocked kernel below).
          std::uint32_t m = live;
          while (m != 0) {
            const int l = std::countr_zero(m);
            m &= m - 1;
            apps::MinmaxDistProgram::Result dummy = 0;
            prog.leaf(apps::MinmaxDistProgram::Task{qid[l], node}, dummy);
          }
          return 0;
        },
        stats);
  }
}

// ---- blocked / hybrid port ------------------------------------------------------

template <int W>
struct MinmaxDistBlockedKernel {
  using BF = simd::batch<float, W>;
  using BI = simd::batch<std::int32_t, W>;

  const apps::MinmaxDistProgram& prog;

  int children(std::int32_t node, std::int32_t* out) const {
    const spatial::KdTree& tree = *prog.tree;
    const auto nn = static_cast<std::size_t>(node);
    int c = 0;
    if (tree.left[nn] != spatial::KdTree::kNoChild) out[c++] = tree.left[nn];
    if (tree.right[nn] != spatial::KdTree::kNoChild) out[c++] = tree.right[nn];
    return c;
  }

  std::uint32_t step(std::int32_t node, const BI& qid, std::uint32_t mask) const {
    const spatial::KdTree& tree = *prog.tree;
    const spatial::Bodies& pts = *prog.points;
    apps::MinmaxDistState& state = *prog.state;
    const BF qx = simd::gather(pts.x.data(), qid);
    const BF qy = simd::gather(pts.y.data(), qid);
    const BF qz = simd::gather(pts.z.data(), qid);
    BF cur_min, cur_max;
    for (int l = 0; l < W; ++l) {
      cur_min.set(l, state.min_bound(qid[l]));
      cur_max.set(l, state.max_bound(qid[l]));
    }
    const std::uint32_t live =
        mask & minmaxdist_gain_mask<W>(tree, node, qx, qy, qz, cur_min, cur_max);
    if (live == 0 || !tree.is_leaf(node)) return live;
    // Scalar base case per live lane: the final extremes must be
    // bit-identical across schedulers, and vectorized distance math can
    // differ from the scalar path by an ulp under FMA contraction.
    std::uint32_t m = live;
    while (m != 0) {
      const int l = std::countr_zero(m);
      m &= m - 1;
      apps::MinmaxDistProgram::Result dummy = 0;
      prog.leaf(apps::MinmaxDistProgram::Task{qid[l], node}, dummy);
    }
    return 0;
  }
};

template <int W = apps::MinmaxDistProgram::simd_width>
void blocked_minmaxdist_range(const apps::MinmaxDistProgram& prog, std::int32_t first,
                              std::int32_t n, BlockedTraversal<W>& engine,
                              core::ExecStats* stats = nullptr) {
  MinmaxDistBlockedKernel<W> k{prog};
  engine.run(
      prog.tree->root, char{0}, first, n,
      [&](std::int32_t node, std::int32_t* out) { return k.children(node, out); },
      [&](std::int32_t node, const typename MinmaxDistBlockedKernel<W>::BI& qid,
          std::uint32_t mask, char) { return k.step(node, qid, mask); },
      [](char p) { return p; }, stats);
}

template <int W = apps::MinmaxDistProgram::simd_width>
void blocked_minmaxdist(const apps::MinmaxDistProgram& prog, std::size_t t_reexp = 0,
                        core::ExecStats* stats = nullptr) {
  BlockedTraversal<W> engine(t_reexp);
  blocked_minmaxdist_range<W>(prog, 0, static_cast<std::int32_t>(prog.points->size()),
                              engine, stats);
}

// Resumes a donated frame (frame-level work donation, runtime/hybrid.hpp).
template <int W = apps::MinmaxDistProgram::simd_width>
void blocked_minmaxdist_frame(const apps::MinmaxDistProgram& prog, std::int32_t node,
                              const std::int32_t* ids, std::size_t count,
                              BlockedTraversal<W>& engine,
                              core::ExecStats* stats = nullptr) {
  MinmaxDistBlockedKernel<W> k{prog};
  engine.run_frame(
      node, char{0}, ids, count,
      [&](std::int32_t nd, std::int32_t* out) { return k.children(nd, out); },
      [&](std::int32_t nd, const typename MinmaxDistBlockedKernel<W>::BI& qid,
          std::uint32_t mask, char) { return k.step(nd, qid, mask); },
      [](char p) { return p; }, stats);
}

template <int W = apps::MinmaxDistProgram::simd_width>
void hybrid_minmaxdist(rt::ForkJoinPool& pool, const apps::MinmaxDistProgram& prog,
                       const rt::HybridOptions& opt = {},
                       core::PerWorkerStats* stats = nullptr) {
  rt::hybrid_run<BlockedTraversal<W>>(
      pool, static_cast<std::int32_t>(prog.points->size()), opt, stats,
      [&](std::int32_t b, std::int32_t e, std::size_t, BlockedTraversal<W>& engine,
          core::ExecStats& st) {
        blocked_minmaxdist_range<W>(prog, b, e - b, engine, &st);
      },
      [&](std::int32_t node, char, const std::int32_t* ids, std::size_t count, std::size_t,
          BlockedTraversal<W>& engine, core::ExecStats& st) {
        blocked_minmaxdist_frame<W>(prog, node, ids, count, engine, &st);
      });
}

}  // namespace tb::lockstep
