// Small deterministic PRNGs.
//
// splitmix64 doubles as (a) the seeding function for xoshiro256** and
// (b) the splittable node-hash for the UTS benchmark (substituting the
// original SHA-1 splittable stream — only the branching distribution
// matters to the scheduler, see DESIGN.md §3).
#pragma once

#include <cstdint>

namespace tb::rt {

inline constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// xoshiro256** by Blackman & Vigna — fast, high-quality, 2^256-1 period.
class Xoshiro256 {
public:
  explicit Xoshiro256(std::uint64_t seed = 0x6a09e667f3bcc908ull) {
    std::uint64_t x = seed;
    for (auto& word : s_) {
      x = splitmix64(x);
      word = x;
    }
  }

  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform integer in [0, n) via Lemire's multiply-shift reduction.
  std::uint32_t below(std::uint32_t n) {
    return static_cast<std::uint32_t>((static_cast<std::uint64_t>(
                                           static_cast<std::uint32_t>((*this)())) *
                                       n) >>
                                      32);
  }

  double uniform01() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace tb::rt
