// Child-stealing fork-join pool — the Cilk-runtime substitute (DESIGN.md §3).
//
// Spawn pushes a stack-resident job onto the spawning worker's Chase–Lev
// deque; sync pops the worker's own deque (running whatever comes off it)
// and steals from random victims while any of its children are outstanding.
// This preserves the properties the paper's schedulers rely on: LIFO local
// execution, steal-from-the-top (shallowest, largest work first), randomized
// victim selection, and a way to detect whether a particular spawn was
// stolen (used by the simplified-restart merge-elision optimization, §6).
//
// Lifetime protocol: a job object lives in its spawner's frame, and the
// spawner never leaves that frame before the job is Done, so thieves always
// dereference live memory.
#pragma once

#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "runtime/cacheline.hpp"
#include "runtime/chase_lev_deque.hpp"
#include "runtime/xoshiro.hpp"

namespace tb::rt {

enum class JobState : std::uint8_t { Pending = 0, Executing = 1, Done = 2 };

// Type-erased unit of work.  `run_fn` performs the work AND the state
// transition to Done (or self-deletes for detached jobs).
struct JobBase {
  using RunFn = void (*)(JobBase*);

  RunFn run_fn = nullptr;
  std::atomic<std::uint8_t> state{static_cast<std::uint8_t>(JobState::Pending)};

  bool try_acquire() {
    std::uint8_t expected = static_cast<std::uint8_t>(JobState::Pending);
    return state.compare_exchange_strong(expected,
                                         static_cast<std::uint8_t>(JobState::Executing),
                                         std::memory_order_acq_rel);
  }
  void finish() {
    state.store(static_cast<std::uint8_t>(JobState::Done), std::memory_order_release);
    state.notify_all();
  }
  bool done() const {
    return state.load(std::memory_order_acquire) ==
           static_cast<std::uint8_t>(JobState::Done);
  }
};

// Structured (stack-resident) spawn.  F is a void() callable.
template <class F>
struct SpawnJob : JobBase {
  explicit SpawnJob(F f) : fn(std::move(f)) {
    run_fn = [](JobBase* base) {
      auto* self = static_cast<SpawnJob*>(base);
      self->fn();
      self->finish();
    };
  }
  F fn;
};

// Completion counter for unstructured (fire-and-forget) spawn waves.
class WaitGroup {
public:
  void add(std::int64_t k = 1) { pending_.fetch_add(k, std::memory_order_relaxed); }
  void done() { pending_.fetch_sub(1, std::memory_order_acq_rel); }
  bool idle() const { return pending_.load(std::memory_order_acquire) == 0; }

private:
  std::atomic<std::int64_t> pending_{0};
};

template <class F>
struct DetachedJob : JobBase {
  DetachedJob(F f, WaitGroup* group) : fn(std::move(f)), wg(group) {
    run_fn = [](JobBase* base) {
      auto* self = static_cast<DetachedJob*>(base);
      self->fn();
      WaitGroup* g = self->wg;
      delete self;
      g->done();
    };
  }
  F fn;
  WaitGroup* wg;
};

class ForkJoinPool {
public:
  explicit ForkJoinPool(int workers)
      : workers_(static_cast<std::size_t>(workers > 0 ? workers : 1)) {
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      workers_[i] = std::make_unique<Worker>(static_cast<int>(i));
    }
    threads_.reserve(workers_.size());
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      threads_.emplace_back([this, i] { worker_loop(static_cast<int>(i)); });
    }
  }

  ForkJoinPool(const ForkJoinPool&) = delete;
  ForkJoinPool& operator=(const ForkJoinPool&) = delete;

  ~ForkJoinPool() {
    stop_.store(true, std::memory_order_release);
    // The empty critical section closes the race with a worker that checked
    // the park predicate but has not yet blocked: we cannot acquire mu_
    // between its predicate check and its wait, so our notify always lands.
    { std::lock_guard lock(mu_); }
    cv_.notify_all();
    for (auto& t : threads_) t.join();
  }

  int num_workers() const { return static_cast<int>(workers_.size()); }

  // Thread-local identity. -1 on threads that are not workers of any pool.
  static int worker_id() { return tls_.id; }
  static ForkJoinPool* current() { return tls_.pool; }

  // ---- external entry -------------------------------------------------------
  // Runs `f` as a root task on the pool and blocks until it completes.
  //
  // Reentrancy: called from one of THIS pool's workers, `f` executes inline
  // — the calling worker already participates in the pool, and routing the
  // job through the injector would deadlock a pool whose every worker is
  // blocked inside such a call (silently so in Release before this guard: a
  // 1-worker pool hung forever).  Called from a worker of a DIFFERENT pool
  // it throws std::logic_error: `f` would spawn onto the wrong pool's
  // deques, so there is no safe inline execution to fall back to.
  template <class F>
  std::invoke_result_t<F&> run(F&& f) {
    if (tls_.pool == this) return std::invoke(f);
    if (tls_.pool != nullptr) {
      throw std::logic_error("ForkJoinPool::run: called from a worker of a different pool");
    }
    using R = std::invoke_result_t<F&>;
    if constexpr (std::is_void_v<R>) {
      SpawnJob job{[&f] { std::invoke(f); }};
      submit_root(job);
      return;
    } else {
      std::optional<R> result;
      SpawnJob job{[&f, &result] { result.emplace(std::invoke(f)); }};
      submit_root(job);
      return std::move(*result);
    }
  }

  // ---- worker-side task API --------------------------------------------------
  void push(JobBase& job) {
    assert(tls_.pool == this);
    workers_[static_cast<std::size_t>(tls_.id)]->deque.push_bottom(&job);
  }

  template <class F>
  void spawn_detached(F&& f, WaitGroup& wg) {
    wg.add();
    // detached_live_ keeps the park predicate true until the job has RUN —
    // detached jobs can outlive the root that spawned them, and a worker
    // parked on an "no active roots" signal alone would never steal them.
    detached_live_.fetch_add(1);  // seq_cst: pairs with the sleepers_ handshake
    auto body = [this, fn = std::decay_t<F>(std::forward<F>(f))]() mutable {
      fn();
      detached_live_.fetch_sub(1);
    };
    auto* job = new DetachedJob<decltype(body)>(std::move(body), &wg);
    workers_[static_cast<std::size_t>(tls_.id)]->deque.push_bottom(job);
    wake_sleepers();
  }

  // Pops the calling worker's own deque.  Exposed so schedulers can run
  // their own elision-aware sync loops (see core/par_restart.hpp).
  JobBase* pop_bottom() {
    return workers_[static_cast<std::size_t>(tls_.id)]->deque.pop_bottom();
  }

  // True when the calling worker's own deque holds no stealable work — the
  // lazy-splitting signal of the hybrid executor (runtime/hybrid.hpp): an
  // empty local deque means a hungry thief would find nothing here.
  bool local_queue_empty() const {
    assert(tls_.pool == this);
    return workers_[static_cast<std::size_t>(tls_.id)]->deque.empty_approx();
  }

  // Runs a job taken from a deque or the injector.  Both queues hand each
  // entry to exactly one taker (the injector pops under its lock; the
  // Chase–Lev steal/pop protocol guarantees single ownership), so the
  // acquire cannot lose to a legitimate concurrent taker.  try_acquire is
  // defense for the enqueue-at-most-once invariant itself: a job object
  // accidentally enqueued twice runs once instead of twice.
  void execute(JobBase* job) {
    if (job->try_acquire()) job->run_fn(job);
  }

  // Wait for one structured child, helping with any available work.
  void sync(JobBase& job) {
    while (!job.done()) {
      if (!help_once()) relax();
    }
  }

  // Wait for a wave of detached jobs.
  void wait(WaitGroup& wg) {
    while (!wg.idle()) {
      if (!help_once()) relax();
    }
  }

  // Try to find and run one job (own deque, then random steals, then the
  // injector).  Returns false when no work was found.
  bool help_once() {
    Worker& self = *workers_[static_cast<std::size_t>(tls_.id)];
    if (JobBase* job = self.deque.pop_bottom()) {
      execute(job);
      return true;
    }
    if (JobBase* job = try_steal(self)) {
      execute(job);
      return true;
    }
    if (JobBase* job = injector_pop()) {
      execute(job);
      return true;
    }
    return false;
  }

  // ---- instrumentation -------------------------------------------------------
  std::uint64_t total_steals() const {
    std::uint64_t n = 0;
    for (const auto& w : workers_) n += w->steals.load(std::memory_order_relaxed);
    return n;
  }
  std::uint64_t total_steal_attempts() const {
    std::uint64_t n = 0;
    for (const auto& w : workers_) n += w->steal_attempts.load(std::memory_order_relaxed);
    return n;
  }
  // Workers currently parked on the idle condition variable.  Exact only
  // while the pool is externally quiescent; used by the idle-CPU regression
  // tests and as serving-layer telemetry.
  int parked_workers() const { return sleepers_.load(); }

private:
  struct Worker {
    explicit Worker(int worker_id) : id(worker_id), rng(0x9e3779b9u * (worker_id + 1)) {}
    int id;
    ChaseLevDeque<JobBase> deque;
    Xoshiro256 rng;
    std::atomic<std::uint64_t> steals{0};
    std::atomic<std::uint64_t> steal_attempts{0};
  };

  struct Tls {
    ForkJoinPool* pool;
    int id;
    constexpr Tls() : pool(nullptr), id(-1) {}
    constexpr Tls(ForkJoinPool* p, int i) : pool(p), id(i) {}
  };
  inline static thread_local Tls tls_;

  // True when the pool may hold runnable work: an external root is in
  // flight, or detached jobs are live (they can outlive their root).  The
  // default seq_cst loads pair with the seq_cst increments in submit_root /
  // spawn_detached and the sleepers_ handshake: either the waker observes
  // the sleeper (and notifies), or the sleeper observes the new work.
  bool maybe_work() const { return active_roots_.load() > 0 || detached_live_.load() > 0; }

  // Edge-triggered idle parking: no timed poll, so an idle pool burns no
  // CPU and the first job after a quiet period is dispatched at
  // condition-variable wake latency instead of a poll-interval stall (the
  // old 5 ms wait_for put a floor under serving-layer tail latency).
  void worker_loop(int id) {
    tls_ = {this, id};
    while (!stop_.load(std::memory_order_acquire)) {
      if (maybe_work()) {
        if (!help_once()) relax();
        continue;
      }
      std::unique_lock lock(mu_);
      sleepers_.fetch_add(1);
      cv_.wait(lock,
               [this] { return stop_.load(std::memory_order_acquire) || maybe_work(); });
      sleepers_.fetch_sub(1);
    }
    tls_ = Tls{};
  }

  // Wakes parked workers after new detached work was published.  Callers
  // must have already made the work visible through a seq_cst store; if the
  // sleepers_ load here misses a worker that is about to park, that worker's
  // predicate re-check (which follows its own seq_cst sleepers_ increment)
  // is guaranteed to see the published work instead.
  void wake_sleepers() {
    if (sleepers_.load() == 0) return;
    { std::lock_guard lock(mu_); }
    cv_.notify_all();
  }

  void submit_root(JobBase& job) {
    // Publish before taking mu_: a worker parks only after re-checking the
    // predicate under mu_, so it either sees this increment or parks before
    // we acquire the lock — in which case the notify below wakes it.
    active_roots_.fetch_add(1);
    {
      std::lock_guard lock(mu_);
      injector_.push_back(&job);
    }
    cv_.notify_all();
    job.state.wait(static_cast<std::uint8_t>(JobState::Pending));
    while (!job.done()) {
      job.state.wait(static_cast<std::uint8_t>(JobState::Executing));
    }
    active_roots_.fetch_sub(1, std::memory_order_acq_rel);
  }

  JobBase* injector_pop() {
    std::lock_guard lock(mu_);
    if (injector_.empty()) return nullptr;
    JobBase* job = injector_.front();
    injector_.pop_front();
    return job;
  }

  JobBase* try_steal(Worker& self) {
    const int n = num_workers();
    if (n == 1) return nullptr;
    // One randomized sweep over the other workers.
    const std::uint32_t start = self.rng.below(static_cast<std::uint32_t>(n));
    for (int k = 0; k < n; ++k) {
      const int victim = static_cast<int>((start + static_cast<std::uint32_t>(k)) %
                                          static_cast<std::uint32_t>(n));
      if (victim == self.id) continue;
      self.steal_attempts.fetch_add(1, std::memory_order_relaxed);
      if (JobBase* job = workers_[static_cast<std::size_t>(victim)]->deque.steal_top()) {
        self.steals.fetch_add(1, std::memory_order_relaxed);
        return job;
      }
    }
    return nullptr;
  }

  static void relax() { std::this_thread::yield(); }

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  std::atomic<bool> stop_{false};
  std::atomic<int> active_roots_{0};
  std::atomic<std::int64_t> detached_live_{0};  // spawned minus executed detached jobs
  std::atomic<int> sleepers_{0};                // workers parked on cv_
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<JobBase*> injector_;  // guarded by mu_
};

}  // namespace tb::rt
