// Cache-line padding helper to keep per-worker mutable state from false
// sharing (C++ Core Guidelines CP.3: minimize sharing of writable data).
#pragma once

#include <cstddef>
#include <utility>

namespace tb::rt {

inline constexpr std::size_t kCacheLineBytes = 64;

template <class T>
struct alignas(kCacheLineBytes) Padded {
  T value{};

  Padded() = default;
  explicit Padded(T v) : value(std::move(v)) {}

  T* operator->() { return &value; }
  const T* operator->() const { return &value; }
  T& operator*() { return value; }
  const T& operator*() const { return value; }
};

}  // namespace tb::rt
