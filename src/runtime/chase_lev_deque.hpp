// Chase–Lev work-stealing deque (Lê et al., "Correct and Efficient
// Work-Stealing for Weak Memory Models", PPoPP'13 formulation).
//
// The owner pushes and pops at the bottom; thieves steal from the top.
// Entries are raw pointers whose lifetime is managed by the fork-join
// protocol: a spawner never leaves the frame that owns a job until the job
// is Done, and the deque hands each entry to exactly one taker.
//
// Ring buffers grow geometrically; retired buffers are kept alive until the
// deque is destroyed so racing thieves can still read through a stale
// buffer pointer safely.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace tb::rt {

template <class T>
class ChaseLevDeque {
public:
  explicit ChaseLevDeque(std::int64_t initial_capacity = 1 << 8) {
    buffers_.push_back(std::make_unique<Ring>(initial_capacity));
    active_.store(buffers_.back().get(), std::memory_order_relaxed);
  }

  ChaseLevDeque(const ChaseLevDeque&) = delete;
  ChaseLevDeque& operator=(const ChaseLevDeque&) = delete;

  // Owner only.
  void push_bottom(T* item) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Ring* ring = active_.load(std::memory_order_relaxed);
    if (b - t > ring->capacity - 1) {
      ring = grow(ring, t, b);
    }
    ring->put(b, item);
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_relaxed);
  }

  // Owner only.  Returns nullptr when empty.
  T* pop_bottom() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Ring* ring = active_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    T* item = nullptr;
    if (t <= b) {
      item = ring->get(b);
      if (t == b) {
        // Single element left: race against thieves for it.
        if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
          item = nullptr;  // lost the race
        }
        bottom_.store(b + 1, std::memory_order_relaxed);
      }
    } else {
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return item;
  }

  // Any thread.  Returns nullptr when empty or when losing a race.
  T* steal_top() {
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return nullptr;
    Ring* ring = active_.load(std::memory_order_acquire);
    T* item = ring->get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;  // another thief (or the owner) got it
    }
    return item;
  }

  // Approximate size; callable by any thread (monitoring only).
  std::int64_t size_approx() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? b - t : 0;
  }

  bool empty_approx() const { return size_approx() == 0; }

private:
  struct Ring {
    explicit Ring(std::int64_t cap)
        : capacity(cap), mask(cap - 1), slots(new std::atomic<T*>[cap]) {}
    // Release/acquire on the slot itself: the algorithm's fences already
    // order the index protocol, but the *pointed-to* job contents need a
    // happens-before edge from the producer's construction to the taker's
    // execution.  Slot-level ordering provides it directly (free on x86 —
    // plain loads/stores) and keeps the handoff visible to TSan, which does
    // not model std::atomic_thread_fence.
    T* get(std::int64_t i) const { return slots[i & mask].load(std::memory_order_acquire); }
    void put(std::int64_t i, T* v) { slots[i & mask].store(v, std::memory_order_release); }

    const std::int64_t capacity;
    const std::int64_t mask;
    std::unique_ptr<std::atomic<T*>[]> slots;
  };

  Ring* grow(Ring* old, std::int64_t t, std::int64_t b) {
    buffers_.push_back(std::make_unique<Ring>(old->capacity * 2));
    Ring* bigger = buffers_.back().get();
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, old->get(i));
    active_.store(bigger, std::memory_order_release);
    return bigger;
  }

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<Ring*> active_{nullptr};
  std::vector<std::unique_ptr<Ring>> buffers_;  // owner-mutated (grow) only
};

}  // namespace tb::rt
