// Hybrid vector×multicore executor: lockstep SIMD blocks on the
// work-stealing pool.
//
// The paper's headline claim is that the two parallelism dimensions
// *compose*: blocked re-expansion keeps SIMD lanes full while work stealing
// keeps cores busy.  This header supplies the multicore half for the
// blocked-traversal engine (lockstep/blocked.hpp): the data-parallel query
// range is distributed over ForkJoinPool workers, and every range a worker
// receives is re-expanded into a fresh dense root block on that worker's
// engine (its per-worker block pool), then walked with compaction +
// re-expansion exactly as in the single-core case.
//
// Two partitioning modes:
//
//   dynamic (default) — steal-aware lazy binary splitting.  The whole
//     range starts as one job.  Before processing a range, a worker splits
//     it in half (spawning the right half as a stealable job) only while
//     its *local deque is empty* — i.e., exactly when a hungry thief would
//     find nothing to steal here — or when the range itself just arrived by
//     steal.  A worker whose deque still holds an unstolen half keeps its
//     range whole, which maximizes root block density; every actual steal
//     drains the victim's deque and thereby triggers the next split.  A
//     1-worker pool degenerates to exactly the single-core blocked
//     traversal.  Per-slot stats are attributed to the executing worker.
//
//   static — exactly one equal chunk per worker slot, spawned up front.
//     The partition (and therefore every per-slot step count) is
//     deterministic regardless of which thread executes which chunk, which
//     is what lets the fig4 nightly gate diff hybrid SIMD-utilization
//     records exactly.
//
// Frame-level work donation (HybridOptions::donation, dynamic mode only):
// pre-split ranges stop balancing once every range has been handed out — a
// single huge subtree then pins its whole remaining traversal to one
// worker.  With donation enabled, each engine polls the same empty-deque
// signal the lazy splitter uses and, when thieves would find nothing to
// steal, splits the bottom frame of its explicit frame stack: half of that
// frame's live query ids leave as a detached pool job that re-expands into
// a fresh root block on whichever worker picks it up (Engine::run_frame).
// Donated work is attributed to the executing worker's slot, so dynamic
// per-slot stats remain schedule-dependent (they already were); the static
// partition never donates and stays bit-deterministic.
//
// Per-slot ExecStats surface through core::PerWorkerStats (core/stats.hpp).
#pragma once

#include <algorithm>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "core/stats.hpp"
#include "runtime/forkjoin.hpp"

namespace tb::rt {

struct HybridOptions {
  // Re-expansion threshold handed to the per-worker blocked engines: frames
  // below this many live queries finish in masked-lockstep mode.
  std::size_t t_reexp = 0;
  // Minimum queries per spawned range (dynamic mode); 0 = auto
  // (~8 leaf ranges per worker when fully split).
  std::int32_t grain = 0;
  // Deterministic one-chunk-per-slot partition (see header comment).
  bool static_partition = false;
  // Frame-level work donation between workers (dynamic mode only; a static
  // partition never donates so its per-slot stats stay deterministic).
  bool donation = false;
};

// Number of per-slot contexts (engines, stats, partial results) a hybrid
// run over `pool` needs.  Both modes use one slot per worker.
inline int hybrid_slots(const ForkJoinPool& pool) { return pool.num_workers(); }

namespace detail {

template <class Fn>
void hybrid_range(ForkJoinPool& pool, std::int32_t b, std::int32_t e, int home,
                  std::int32_t grain, WaitGroup& wg, Fn& fn) {
  const int wid = ForkJoinPool::worker_id();
  // Steal-aware re-expansion: a stolen range (home != wid) splits so the
  // thief immediately re-seeds its own deque, and any range whose worker
  // has an empty deque splits so hungry thieves find work; each half
  // re-expands into a dense root block wherever it lands.  A worker whose
  // deque still holds an unstolen half keeps the range whole — the split
  // cascade advances one level per steal/pop, never eagerly to grain.
  while ((home != wid || pool.local_queue_empty()) && e - b > 2 * grain) {
    const std::int32_t mid = b + (e - b) / 2;
    pool.spawn_detached(
        [&pool, mid, e, wid, grain, &wg, &fn] {
          hybrid_range(pool, mid, e, wid, grain, wg, fn);
        },
        wg);
    e = mid;
    home = wid;
  }
  fn(b, e, wid);
}

// Spawns the range jobs of one hybrid run.  Must execute inside the pool
// (a root task); the caller waits on `wg` afterwards.
template <class Fn>
void hybrid_distribute(ForkJoinPool& pool, std::int32_t n, const HybridOptions& opt,
                       WaitGroup& wg, Fn& fn) {
  const int slots = hybrid_slots(pool);
  if (opt.static_partition) {
    for (int c = 0; c < slots; ++c) {
      const std::int32_t b = static_cast<std::int32_t>(
          (static_cast<std::int64_t>(n) * c) / slots);
      const std::int32_t e = static_cast<std::int32_t>(
          (static_cast<std::int64_t>(n) * (c + 1)) / slots);
      if (b >= e) continue;
      pool.spawn_detached([&fn, b, e, c] { fn(b, e, c); }, wg);
    }
    return;
  }
  if (slots == 1) {
    // Degenerate pool: one dense root block, no splitting overhead.
    fn(0, n, ForkJoinPool::worker_id());
    return;
  }
  const std::int32_t grain =
      opt.grain > 0 ? opt.grain
                    : std::max<std::int32_t>(1, n / (slots * 8));
  hybrid_range(pool, 0, n, /*home=*/-1, grain, wg, fn);
}

}  // namespace detail

// Runs fn(begin, end, slot) over disjoint subranges of [0, n) on the pool's
// workers.  `slot` indexes per-slot contexts: the chunk index in static
// mode (deterministic), the executing worker id in dynamic mode.  Ranges
// mapped to one slot never execute concurrently, so per-slot state needs no
// synchronization.  Call from a non-worker thread, or reentrantly from one
// of this pool's own workers (ForkJoinPool::run executes inline there).
template <class Fn>
void hybrid_for(ForkJoinPool& pool, std::int32_t n, const HybridOptions& opt, Fn&& fn) {
  if (n <= 0) return;
  pool.run([&] {
    WaitGroup wg;
    detail::hybrid_distribute(pool, n, opt, wg, fn);
    pool.wait(wg);
  });
}

// Shared scaffold of the kernel-level hybrid wrappers (hybrid_pointcorr &
// co.): one blocked engine per slot, per-slot ExecStats plumbing, range
// distribution.  `range_fn(begin, end, slot, engine, stats)` runs the
// kernel's blocked traversal for one range; per-slot accumulators in the
// caller should index by the same `slot` (never by worker id — in static
// mode the slot is the chunk index).
template <class Engine, class RangeFn>
void hybrid_run(ForkJoinPool& pool, std::int32_t n, const HybridOptions& opt,
                core::PerWorkerStats* stats, RangeFn&& range_fn) {
  const int slots = hybrid_slots(pool);
  core::PerWorkerStats local;
  core::PerWorkerStats& pw = stats ? *stats : local;
  pw.reset(static_cast<std::size_t>(slots));
  std::vector<Engine> engines;
  engines.reserve(static_cast<std::size_t>(slots));
  for (int s = 0; s < slots; ++s) engines.emplace_back(opt.t_reexp);
  hybrid_for(pool, n, opt, [&](std::int32_t b, std::int32_t e, int slot) {
    const auto s = static_cast<std::size_t>(slot);
    range_fn(b, e, s, engines[s], pw.workers[s]);
  });
}

// Donation-capable variant: `frame_fn(node, payload, ids, count, slot,
// engine, stats)` runs the kernel's blocked traversal from a donated frame
// (Engine::run_frame) — it is invoked on whichever worker picks the donated
// job up, always with that worker's own engine and stats slot.  Donation
// engages only in dynamic mode on a multi-worker pool with opt.donation
// set; otherwise this is exactly the range-only overload.
template <class Engine, class RangeFn, class FrameFn>
void hybrid_run(ForkJoinPool& pool, std::int32_t n, const HybridOptions& opt,
                core::PerWorkerStats* stats, RangeFn&& range_fn, FrameFn&& frame_fn) {
  if (!opt.donation || opt.static_partition || hybrid_slots(pool) <= 1) {
    // A 1-worker pool has nobody to donate to — splitting frames would only
    // add copy and spawn overhead the same worker pays for later.
    hybrid_run<Engine>(pool, n, opt, stats, std::forward<RangeFn>(range_fn));
    return;
  }
  const int slots = hybrid_slots(pool);
  core::PerWorkerStats local;
  core::PerWorkerStats& pw = stats ? *stats : local;
  pw.reset(static_cast<std::size_t>(slots));
  std::vector<Engine> engines;
  engines.reserve(static_cast<std::size_t>(slots));
  for (int s = 0; s < slots; ++s) engines.emplace_back(opt.t_reexp);
  auto body = [&](std::int32_t b, std::int32_t e, int slot) {
    const auto s = static_cast<std::size_t>(slot);
    range_fn(b, e, s, engines[s], pw.workers[s]);
  };

  // The engine-facing donor: a donated frame becomes a detached pool job so
  // hungry thieves steal it like any other work.  want() reuses the lazy
  // splitter's signal — an empty local deque means a thief scanning this
  // worker would leave empty-handed.
  using Payload = typename Engine::payload_type;
  using FrameRunner = std::remove_reference_t<FrameFn>;
  struct Sink final : Engine::Donor {
    ForkJoinPool* pool = nullptr;
    WaitGroup* wg = nullptr;
    std::vector<Engine>* engines = nullptr;
    core::PerWorkerStats* pw = nullptr;
    FrameRunner* frame_fn = nullptr;
    bool want() override { return pool->local_queue_empty(); }
    void take(std::int32_t node, const Payload& payload, const std::int32_t* ids,
              std::size_t count) override {
      std::vector<std::int32_t> copy(ids, ids + count);
      pool->spawn_detached(
          [this, node, payload, copy = std::move(copy)] {
            const auto wid = static_cast<std::size_t>(ForkJoinPool::worker_id());
            (*frame_fn)(node, payload, copy.data(), copy.size(), wid,
                        (*engines)[wid], pw->workers[wid]);
          },
          *wg);
    }
  };

  if (n <= 0) return;
  pool.run([&] {
    WaitGroup wg;
    Sink sink;
    sink.pool = &pool;
    sink.wg = &wg;
    sink.engines = &engines;
    sink.pw = &pw;
    sink.frame_fn = &frame_fn;
    for (Engine& eng : engines) eng.set_donor(&sink);
    detail::hybrid_distribute(pool, n, opt, wg, body);
    pool.wait(wg);
    for (Engine& eng : engines) eng.set_donor(nullptr);
  });
}

}  // namespace tb::rt
