// Worker-local reduction slots.
//
// The paper's base cases "perform reductions to compute the eventual program
// result"; with P workers each worker accumulates into a private, padded
// slot and the caller combines the slots once at the end (a commutative
// monoid reduction — no locks on the hot path, per Core Guidelines CP.3).
#pragma once

#include <cassert>
#include <vector>

#include "runtime/cacheline.hpp"
#include "runtime/forkjoin.hpp"

namespace tb::rt {

template <class T>
class WorkerLocal {
public:
  explicit WorkerLocal(const ForkJoinPool& pool, T init = T{})
      : init_(init), slots_(static_cast<std::size_t>(pool.num_workers()) + 1) {
    for (auto& s : slots_) s.value = init;
  }

  // Slot of the calling worker; the extra trailing slot serves non-worker
  // threads (e.g. the external thread driving a sequential section).
  T& local() {
    const int id = ForkJoinPool::worker_id();
    const std::size_t slot =
        id >= 0 ? static_cast<std::size_t>(id) : slots_.size() - 1;
    return slots_[slot].value;
  }

  template <class Combine>
  T combine(Combine&& op) const {
    T acc = init_;
    for (const auto& s : slots_) acc = op(acc, s.value);
    return acc;
  }

  void reset() {
    for (auto& s : slots_) s.value = init_;
  }

private:
  T init_;
  std::vector<Padded<T>> slots_;
};

}  // namespace tb::rt
