// knn — k-nearest-neighbor search over a kd-tree (Table 1 row 11).
//
// Each query maintains a k-best list (sorted squared distances plus ids)
// guarded by a per-query spinlock, and a monotonically shrinking pruning
// bound (an atomic float holding the current k-th distance).  Traversal
// tasks prune children whose bounding box lies beyond the bound; because
// sibling subtrees execute in parallel, reads of the bound may be stale —
// that only weakens pruning, never correctness, which is exactly the
// trade-off the paper's task-parallel traversals make.
//
// Note the consequence for verification: the *result* (the k nearest
// neighbors) is schedule-independent, but the visit counts are not, so
// tests compare the k-best lists against brute force rather than the
// traversal fingerprint.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "apps/common.hpp"
#include "core/program.hpp"
#include "runtime/forkjoin.hpp"
#include "simd/batch.hpp"
#include "simd/soa.hpp"
#include "spatial/bodies.hpp"
#include "spatial/kdtree.hpp"

namespace tb::apps {

// Shared mutable k-NN state for all queries.
class KnnState {
public:
  KnnState(std::size_t queries, int k)
      : k_(k),
        best_d2_(queries * static_cast<std::size_t>(k),
                 std::numeric_limits<float>::infinity()),
        best_id_(queries * static_cast<std::size_t>(k), -1),
        bound_(std::make_unique<std::atomic<float>[]>(queries)),
        lock_(std::make_unique<std::atomic<std::uint8_t>[]>(queries)) {
    for (std::size_t q = 0; q < queries; ++q) {
      bound_[q].store(std::numeric_limits<float>::infinity(), std::memory_order_relaxed);
      lock_[q].store(0, std::memory_order_relaxed);
    }
  }

  int k() const { return k_; }

  float bound(std::int32_t query) const {
    return bound_[static_cast<std::size_t>(query)].load(std::memory_order_relaxed);
  }

  // Offer a candidate neighbor; inserts into the query's sorted k-best list
  // if it improves on the current k-th distance.
  void offer(std::int32_t query, std::int32_t id, float d2) {
    const auto q = static_cast<std::size_t>(query);
    if (d2 >= bound(query)) return;  // fast reject (bound only shrinks)
    auto& lk = lock_[q];
    std::uint8_t expected = 0;
    while (!lk.compare_exchange_weak(expected, 1, std::memory_order_acquire,
                                     std::memory_order_relaxed)) {
      expected = 0;
    }
    float* d = best_d2_.data() + q * static_cast<std::size_t>(k_);
    std::int32_t* ids = best_id_.data() + q * static_cast<std::size_t>(k_);
    if (d2 < d[k_ - 1]) {
      int pos = k_ - 1;
      while (pos > 0 && d[pos - 1] > d2) {
        d[pos] = d[pos - 1];
        ids[pos] = ids[pos - 1];
        --pos;
      }
      d[pos] = d2;
      ids[pos] = id;
      bound_[q].store(d[k_ - 1], std::memory_order_relaxed);
    }
    lk.store(0, std::memory_order_release);
  }

  // Sorted squared distances of a query's current k-best list.
  std::vector<float> distances(std::int32_t query) const {
    const auto q = static_cast<std::size_t>(query);
    return {best_d2_.begin() + static_cast<std::ptrdiff_t>(q * static_cast<std::size_t>(k_)),
            best_d2_.begin() +
                static_cast<std::ptrdiff_t>((q + 1) * static_cast<std::size_t>(k_))};
  }

private:
  int k_;
  simd::aligned_vector<float> best_d2_;
  std::vector<std::int32_t> best_id_;
  std::unique_ptr<std::atomic<float>[]> bound_;
  std::unique_ptr<std::atomic<std::uint8_t>[]> lock_;
};

struct KnnProgram {
  struct Task {
    std::int32_t query;
    std::int32_t node;
  };
  using Result = std::uint64_t;  // leaf visits (work metric; schedule-dependent)
  static constexpr int max_children = 2;

  const spatial::Bodies* points = nullptr;
  const spatial::KdTree* tree = nullptr;
  KnnState* state = nullptr;

  static Result identity() { return 0; }
  static void combine(Result& a, const Result& b) { a += b; }

  bool is_base(const Task& t) const { return tree->is_leaf(t.node); }

  void leaf(const Task& t, Result& r) const {
    r += 1;
    const auto q = static_cast<std::size_t>(t.query);
    const auto n = static_cast<std::size_t>(t.node);
    const float qx = points->x[q], qy = points->y[q], qz = points->z[q];
    for (std::int32_t j = tree->leaf_begin[n]; j < tree->leaf_end[n]; ++j) {
      const auto jj = static_cast<std::size_t>(j);
      const std::int32_t id = tree->point_index[jj];
      if (id == t.query) continue;  // self
      const float dx = tree->px[jj] - qx;
      const float dy = tree->py[jj] - qy;
      const float dz = tree->pz[jj] - qz;
      state->offer(t.query, id, dx * dx + dy * dy + dz * dz);
    }
  }

  template <class Emit>
  void expand(const Task& t, Emit&& emit) const {
    const auto q = static_cast<std::size_t>(t.query);
    const float qx = points->x[q], qy = points->y[q], qz = points->z[q];
    const auto n = static_cast<std::size_t>(t.node);
    const float bound = state->bound(t.query);
    const std::int32_t kids[2] = {tree->left[n], tree->right[n]};
    for (int s = 0; s < 2; ++s) {
      if (kids[s] != spatial::KdTree::kNoChild &&
          tree->box_dist2(kids[s], qx, qy, qz) < bound) {
        emit(s, Task{t.query, kids[s]});
      }
    }
  }

  // ---- SoA layer -------------------------------------------------------------
  using Block = simd::SoaBlock<std::int32_t, std::int32_t>;
  static Task task_at(const Block& b, std::size_t i) {
    const auto [q, n] = b.row(i);
    return Task{q, n};
  }
  static void append_task(Block& b, const Task& t) { b.push_back(t.query, t.node); }

  // ---- SIMD layer ------------------------------------------------------------
  static constexpr int simd_width = simd::natural_width<float>;

  using BF = simd::batch<float, simd_width>;
  using BI = simd::batch<std::int32_t, simd_width>;

  // Vectorized "box within pruning bound" test; the per-lane bound is read
  // through atomic_refs (it shrinks concurrently).
  std::uint32_t within_bound_mask(const BI& node, const BF& qx, const BF& qy, const BF& qz,
                                  const BF& bound) const {
    const BF zero = BF::zero();
    const BF lox = simd::gather(tree->min_x.data(), node) - qx;
    const BF hix = qx - simd::gather(tree->max_x.data(), node);
    const BF loy = simd::gather(tree->min_y.data(), node) - qy;
    const BF hiy = qy - simd::gather(tree->max_y.data(), node);
    const BF loz = simd::gather(tree->min_z.data(), node) - qz;
    const BF hiz = qz - simd::gather(tree->max_z.data(), node);
    const BF dx = BF::max(BF::max(lox, hix), zero);
    const BF dy = BF::max(BF::max(loy, hiy), zero);
    const BF dz = BF::max(BF::max(loz, hiz), zero);
    return simd::cmp_lt(dx * dx + dy * dy + dz * dz, bound);
  }

  void expand_simd(const Block& in, std::size_t begin, std::size_t end,
                   const std::array<Block*, 2>& outs, Result& r, std::uint64_t& leaves) const {
    const std::int32_t* query_p = in.data<0>();
    const std::int32_t* node_p = in.data<1>();
    constexpr std::uint32_t full = simd::mask_all<simd_width>;
    std::uint64_t leaf_tasks = 0;
    for (std::size_t i = begin; i < end; i += simd_width) {
      const BI query = BI::loadu(query_p + i);
      const BI node = BI::loadu(node_p + i);
      const BI lb = simd::gather(tree->leaf_begin.data(), node);
      const std::uint32_t leafy = simd::cmp_ge(lb, BI::zero()) & full;
      leaf_tasks += std::popcount(leafy);
      std::uint32_t mset = leafy;
      while (mset != 0) {
        const int l = std::countr_zero(mset);
        mset &= mset - 1;
        Task t{query[l], node[l]};
        Result dummy = 0;
        leaf(t, dummy);
      }
      const std::uint32_t rec = ~leafy & full;
      if (rec == 0) continue;
      const BF qx = simd::gather(points->x.data(), query);
      const BF qy = simd::gather(points->y.data(), query);
      const BF qz = simd::gather(points->z.data(), query);
      BF bound;
      for (int l = 0; l < simd_width; ++l) bound.set(l, state->bound(query[l]));
      const BI lkid = simd::gather(tree->left.data(), node);
      const BI rkid = simd::gather(tree->right.data(), node);
      const std::uint32_t lmask = rec & within_bound_mask(lkid, qx, qy, qz, bound);
      const std::uint32_t rmask = rec & within_bound_mask(rkid, qx, qy, qz, bound);
      if (lmask != 0) outs[0]->append_compact(lmask, query, lkid);
      if (rmask != 0) outs[1]->append_compact(rmask, query, rkid);
    }
    r += leaf_tasks;
    leaves += leaf_tasks;
  }

  std::vector<Task> roots() const {
    std::vector<Task> out;
    out.reserve(points->size());
    for (std::size_t q = 0; q < points->size(); ++q) {
      out.push_back(Task{static_cast<std::int32_t>(q), tree->root});
    }
    return out;
  }
};

inline void knn_sequential_one(const KnnProgram& prog, const KnnProgram::Task& t) {
  if (prog.is_base(t)) {
    KnnProgram::Result dummy = 0;
    prog.leaf(t, dummy);
    return;
  }
  prog.expand(t, [&](int, const KnnProgram::Task& c) { knn_sequential_one(prog, c); });
}

inline void knn_sequential(const KnnProgram& prog) {
  for (const auto& t : prog.roots()) knn_sequential_one(prog, t);
}

// Brute-force k-NN distances for one query (sorted ascending).
inline std::vector<float> knn_bruteforce(const spatial::Bodies& pts, std::int32_t query,
                                         int k) {
  std::vector<float> d2;
  d2.reserve(pts.size());
  for (std::size_t j = 0; j < pts.size(); ++j) {
    if (static_cast<std::int32_t>(j) == query) continue;
    const float dx = pts.x[j] - pts.x[static_cast<std::size_t>(query)];
    const float dy = pts.y[j] - pts.y[static_cast<std::size_t>(query)];
    const float dz = pts.z[j] - pts.z[static_cast<std::size_t>(query)];
    d2.push_back(dx * dx + dy * dy + dz * dz);
  }
  std::sort(d2.begin(), d2.end());
  d2.resize(static_cast<std::size_t>(
      std::min<std::size_t>(static_cast<std::size_t>(k), d2.size())));
  return d2;
}

inline void knn_cilk_rec(rt::ForkJoinPool& pool, const KnnProgram& prog,
                         const KnnProgram::Task& t) {
  if (prog.is_base(t)) {
    KnnProgram::Result dummy = 0;
    prog.leaf(t, dummy);
    return;
  }
  std::array<KnnProgram::Task, 2> kids;
  int count = 0;
  prog.expand(t, [&](int, const KnnProgram::Task& c) {
    kids[static_cast<std::size_t>(count++)] = c;
  });
  (void)spawn_map_reduce<int>(
      pool, count,
      [&pool, &prog, &kids](int i) {
        knn_cilk_rec(pool, prog, kids[static_cast<std::size_t>(i)]);
        return 0;
      },
      0, [](int&, int) {});
}

inline void knn_cilk(rt::ForkJoinPool& pool, const KnnProgram& prog) {
  const auto roots = prog.roots();
  pool.run([&] {
    (void)spawn_map_reduce<int>(
        pool, static_cast<int>(roots.size()),
        [&pool, &prog, &roots](int i) {
          knn_cilk_rec(pool, prog, roots[static_cast<std::size_t>(i)]);
          return 0;
        },
        0, [](int&, int) {});
  });
}

}  // namespace tb::apps
