// nqueens — count placements of n non-attacking queens (Table 1 row 4).
//
// Classic bitmask formulation: a task carries three masks — occupied
// columns, left diagonals, right diagonals — and the level equals the
// number of placed queens.  The nested data-parallel loop of the paper (a
// task tries every column of the next row) appears here as the spawn-slot
// loop: slot s = "place the next queen in column s", giving out-degree n.
//
// The SIMD kernel vectorizes across tasks: for each column slot it tests
// `avail & bit` over Q tasks at once and left-packs the spawning lanes.
#pragma once

#include <array>
#include <bit>
#include <cstdint>

#include "apps/common.hpp"
#include "core/hybrid_taskblock.hpp"
#include "core/program.hpp"
#include "runtime/forkjoin.hpp"
#include "simd/batch.hpp"
#include "simd/soa.hpp"

namespace tb::apps {

struct NQueensProgram {
  struct Task {
    std::uint32_t cols;  // occupied columns
    std::uint32_t ld;    // left-diagonal attacks, shifted per row
    std::uint32_t rd;    // right-diagonal attacks
  };
  using Result = std::uint64_t;
  static constexpr int max_children = 16;  // supports boards up to n = 16

  int n = 8;

  static Result identity() { return 0; }
  static void combine(Result& a, const Result& b) { a += b; }

  std::uint32_t all_mask() const { return (n >= 32) ? ~0u : ((1u << n) - 1u); }

  bool is_base(const Task& t) const { return t.cols == all_mask(); }
  void leaf(const Task&, Result& r) const { r += 1; }

  template <class Emit>
  void expand(const Task& t, Emit&& emit) const {
    std::uint32_t avail = ~(t.cols | t.ld | t.rd) & all_mask();
    while (avail != 0) {
      const int s = std::countr_zero(avail);
      const std::uint32_t bit = 1u << s;
      avail &= avail - 1;
      emit(s, Task{t.cols | bit, ((t.ld | bit) << 1) & all_mask(), (t.rd | bit) >> 1});
    }
  }

  // ---- SoA layer -------------------------------------------------------------
  using Block = simd::SoaBlock<std::uint32_t, std::uint32_t, std::uint32_t>;
  static Task task_at(const Block& b, std::size_t i) {
    const auto [cols, ld, rd] = b.row(i);
    return Task{cols, ld, rd};
  }
  static void append_task(Block& b, const Task& t) { b.push_back(t.cols, t.ld, t.rd); }

  // ---- SIMD layer ------------------------------------------------------------
  static constexpr int simd_width = simd::natural_width<std::uint32_t>;

  void expand_simd(const Block& in, std::size_t begin, std::size_t end,
                   const std::array<Block*, 16>& outs, Result& r, std::uint64_t& leaves) const {
    using B = simd::batch<std::uint32_t, simd_width>;
    const std::uint32_t* cols_p = in.data<0>();
    const std::uint32_t* ld_p = in.data<1>();
    const std::uint32_t* rd_p = in.data<2>();
    const B all = B::broadcast(all_mask());
    const B zero = B::zero();
    std::uint64_t leaf_count = 0;
    for (std::size_t i = begin; i < end; i += simd_width) {
      const B cols = B::loadu(cols_p + i);
      const B ld = B::loadu(ld_p + i);
      const B rd = B::loadu(rd_p + i);
      const std::uint32_t base = simd::cmp_eq(cols, all);
      leaf_count += std::popcount(base);
      const B avail = ~(cols | ld | rd) & all;
      for (int s = 0; s < n; ++s) {
        const B bit = B::broadcast(1u << s);
        const std::uint32_t spawn = ~simd::cmp_eq(avail & bit, zero) & ~base &
                                    simd::mask_all<simd_width>;
        if (spawn == 0) continue;
        outs[static_cast<std::size_t>(s)]->append_compact(
            spawn, cols | bit, ((ld | bit) << 1) & all, (rd | bit) >> 1);
      }
    }
    r += leaf_count;
    leaves += leaf_count;
  }

  static Task root() { return Task{0, 0, 0}; }
};

inline std::uint64_t nqueens_sequential(int n, std::uint32_t cols, std::uint32_t ld,
                                        std::uint32_t rd) {
  const std::uint32_t all = (1u << n) - 1u;
  if (cols == all) return 1;
  std::uint64_t total = 0;
  std::uint32_t avail = ~(cols | ld | rd) & all;
  while (avail != 0) {
    const std::uint32_t bit = avail & (0u - avail);
    avail &= avail - 1;
    total += nqueens_sequential(n, cols | bit, ((ld | bit) << 1) & all, (rd | bit) >> 1);
  }
  return total;
}

inline std::uint64_t nqueens_cilk_rec(rt::ForkJoinPool& pool, int n, std::uint32_t cols,
                                      std::uint32_t ld, std::uint32_t rd) {
  const std::uint32_t all = (1u << n) - 1u;
  if (cols == all) return 1;
  // Collect feasible columns (the paper's nested data-parallel loop), then
  // spawn one task per column.
  std::array<NQueensProgram::Task, 16> kids;
  int count = 0;
  std::uint32_t avail = ~(cols | ld | rd) & all;
  while (avail != 0) {
    const std::uint32_t bit = avail & (0u - avail);
    avail &= avail - 1;
    kids[static_cast<std::size_t>(count++)] =
        NQueensProgram::Task{cols | bit, ((ld | bit) << 1) & all, (rd | bit) >> 1};
  }
  return spawn_map_reduce<std::uint64_t>(
      pool, count,
      [&pool, n, &kids](int i) {
        const auto& k = kids[static_cast<std::size_t>(i)];
        return nqueens_cilk_rec(pool, n, k.cols, k.ld, k.rd);
      },
      0ull, [](std::uint64_t& a, std::uint64_t b) { a += b; });
}

inline std::uint64_t nqueens_cilk(rt::ForkJoinPool& pool, int n) {
  return pool.run([&pool, n] { return nqueens_cilk_rec(pool, n, 0, 0, 0); });
}

// Hybrid cores×lanes path (core/hybrid_taskblock.hpp): the single root is
// amplified by breadth-first frontier expansion (row by row — level d holds
// the partial placements of d queens) until there are enough independent
// tasks to strip-mine over the pool; each range runs the SIMD task-block
// scheduler.  Placement counts are a commutative sum, so the result is
// bit-identical to the sequential recursion for any split.
inline std::uint64_t nqueens_hybrid(rt::ForkJoinPool& pool, const NQueensProgram& prog,
                                    const core::Thresholds& th,
                                    const rt::HybridOptions& opt = {},
                                    core::PerWorkerStats* stats = nullptr) {
  const NQueensProgram::Task root[] = {NQueensProgram::root()};
  return core::hybrid_taskblock_amplified<core::SimdExec<NQueensProgram>>(
      pool, prog, root, core::SeqPolicy::Restart, th, opt, stats);
}

}  // namespace tb::apps
