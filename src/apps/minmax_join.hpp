// True minimax on 4×4 tic-tac-toe via join frames.
//
// The Table 1 minmax benchmark reduces leaf statistics only, because the
// paper's base-case-reduction model cannot pass values *through* internal
// nodes (DESIGN.md documents the substitution).  With the JoinScheduler's
// frames that restriction falls away: each position folds its children
// with max (X to move) or min (O to move), yielding the game-theoretic
// value of the position under blocked execution — the same computation
// tree as the benchmark, now with sync semantics.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>

#include "apps/minmax.hpp"
#include "core/join_scheduler.hpp"

namespace tb::apps {

struct MinmaxJoinProgram {
  using Task = MinmaxProgram::Task;
  using Value = std::int32_t;  // +1 X wins, -1 O wins, 0 draw/heuristic cutoff
  static constexpr int max_children = MinmaxProgram::max_children;

  MinmaxProgram inner;  // board mechanics, base-case rule, move generation

  static bool x_to_move(const Task& t) {
    return (std::popcount(t.x | t.o) & 1) == 0;
  }

  bool is_base(const Task& t) const { return inner.is_base(t); }

  Value leaf_value(const Task& t) const {
    if (MinmaxProgram::won(t.x)) return 1;
    if (MinmaxProgram::won(t.o)) return -1;
    return 0;  // draw, or the ply-cutoff heuristic
  }

  template <class Emit>
  void expand(const Task& t, Emit&& emit) const {
    inner.expand(t, emit);
  }

  // X maximizes, O minimizes; identities sit outside the value range.
  Value join_identity(const Task& t) const { return x_to_move(t) ? -2 : 2; }
  void combine(const Task& t, Value& acc, const Value& v) const {
    acc = x_to_move(t) ? std::max(acc, v) : std::min(acc, v);
  }
  Value finalize(const Task&, const Value& acc) const { return acc; }

  static Task root() { return MinmaxProgram::root(); }
};

// Plain recursive minimax — the oracle the blocked join execution must match.
inline std::int32_t minmax_join_sequential(const MinmaxJoinProgram& prog,
                                           const MinmaxJoinProgram::Task& t) {
  if (prog.is_base(t)) return prog.leaf_value(t);
  std::int32_t acc = prog.join_identity(t);
  prog.expand(t, [&](int, const MinmaxJoinProgram::Task& c) {
    prog.combine(t, acc, minmax_join_sequential(prog, c));
  });
  return acc;
}

}  // namespace tb::apps
