// uts — Unbalanced Tree Search, binomial variant (Table 1 row 6).
//
// Every non-root node has `m` children with probability `q` and none
// otherwise, decided by a splittable deterministic hash of the node's RNG
// state (splitmix64 substitutes the original SHA-1 stream — only the
// branching distribution matters to the scheduler; see DESIGN.md §3).  With
// m·q slightly below 1 the tree is deep, highly irregular, and finite in
// expectation — the adversarial workload for block schedulers, which is why
// the paper's Fig. 4c highlights it.  The root's b0 children form the
// initial task set.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <vector>

#include "apps/common.hpp"
#include "core/hybrid_taskblock.hpp"
#include "core/program.hpp"
#include "runtime/forkjoin.hpp"
#include "runtime/xoshiro.hpp"
#include "simd/batch.hpp"
#include "simd/soa.hpp"

namespace tb::apps {

struct UtsParams {
  int b0 = 64;       // children of the (implicit) root
  int m = 4;         // children of an internal non-root node
  double q = 0.23;   // probability a node is internal (expect m*q < 1)
  std::uint64_t seed = 19;

  std::uint64_t threshold() const {
    const double clamped = q < 0.0 ? 0.0 : (q > 0.999999 ? 0.999999 : q);
    return static_cast<std::uint64_t>(clamped * 18446744073709551616.0 /* 2^64 */);
  }
};

struct UtsProgram {
  struct Task {
    std::uint64_t rng;
  };
  using Result = std::uint64_t;  // number of leaves
  static constexpr int max_children = 8;

  UtsParams params;
  std::uint64_t thresh = 0;

  explicit UtsProgram(UtsParams p = {}) : params(p), thresh(p.threshold()) {}

  static Result identity() { return 0; }
  static void combine(Result& a, const Result& b) { a += b; }

  // The node's branch decision reuses its state through one extra mix so it
  // is decorrelated from the child-state derivation below.
  static std::uint64_t decision_hash(std::uint64_t rng) { return rt::splitmix64(rng); }
  static std::uint64_t child_state(std::uint64_t rng, int i) {
    return rt::splitmix64(rng ^ (0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(i + 1)));
  }

  bool is_base(const Task& t) const { return decision_hash(t.rng) >= thresh; }
  void leaf(const Task&, Result& r) const { r += 1; }

  template <class Emit>
  void expand(const Task& t, Emit&& emit) const {
    for (int i = 0; i < params.m; ++i) emit(i, Task{child_state(t.rng, i)});
  }

  // ---- SoA layer -------------------------------------------------------------
  using Block = simd::SoaBlock<std::uint64_t>;
  static Task task_at(const Block& b, std::size_t i) { return Task{std::get<0>(b.row(i))}; }
  static void append_task(Block& b, const Task& t) { b.push_back(t.rng); }

  // ---- SIMD layer ------------------------------------------------------------
  static constexpr int simd_width = simd::natural_width<std::uint64_t>;

  using B64 = simd::batch<std::uint64_t, simd_width>;

  static B64 splitmix_batch(B64 x) {
    x = x + B64::broadcast(0x9e3779b97f4a7c15ull);
    x = (x ^ (x >> 30)) * B64::broadcast(0xbf58476d1ce4e5b9ull);
    x = (x ^ (x >> 27)) * B64::broadcast(0x94d049bb133111ebull);
    return x ^ (x >> 31);
  }

  void expand_simd(const Block& in, std::size_t begin, std::size_t end,
                   const std::array<Block*, 8>& outs, Result& r, std::uint64_t& leaves) const {
    const std::uint64_t* rngs = in.data<0>();
    const B64 th = B64::broadcast(thresh);
    std::uint64_t leaf_count = 0;
    for (std::size_t i = begin; i < end; i += simd_width) {
      const B64 state = B64::loadu(rngs + i);
      const B64 h = splitmix_batch(state);
      // Unsigned 64-bit "h < thresh" per lane.
      std::uint32_t internal = 0;
      for (int l = 0; l < simd_width; ++l) {
        internal |= static_cast<std::uint32_t>(h[l] < th[l]) << l;
      }
      leaf_count += simd_width - std::popcount(internal);
      if (internal == 0) continue;
      for (int c = 0; c < params.m; ++c) {
        const B64 salt =
            B64::broadcast(0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(c + 1));
        outs[static_cast<std::size_t>(c)]->append_compact(internal,
                                                          splitmix_batch(state ^ salt));
      }
    }
    r += leaf_count;
    leaves += leaf_count;
  }

  // The b0 root children that seed the computation.
  std::vector<Task> roots() const {
    std::vector<Task> r;
    r.reserve(static_cast<std::size_t>(params.b0));
    for (int i = 0; i < params.b0; ++i) {
      r.push_back(Task{child_state(rt::splitmix64(params.seed), i + 1000003)});
    }
    return r;
  }
};

inline std::uint64_t uts_sequential(const UtsProgram& prog, const UtsProgram::Task& t) {
  if (prog.is_base(t)) return 1;
  std::uint64_t total = 0;
  prog.expand(t, [&](int, const UtsProgram::Task& c) { total += uts_sequential(prog, c); });
  return total;
}

inline std::uint64_t uts_sequential_all(const UtsProgram& prog) {
  std::uint64_t total = 0;
  for (const auto& t : prog.roots()) total += uts_sequential(prog, t);
  return total;
}

inline std::uint64_t uts_cilk_rec(rt::ForkJoinPool& pool, const UtsProgram& prog,
                                  const UtsProgram::Task& t) {
  if (prog.is_base(t)) return 1;
  std::array<UtsProgram::Task, 8> kids;
  int count = 0;
  prog.expand(t, [&](int, const UtsProgram::Task& c) {
    kids[static_cast<std::size_t>(count++)] = c;
  });
  return spawn_map_reduce<std::uint64_t>(
      pool, count,
      [&pool, &prog, &kids](int i) {
        return uts_cilk_rec(pool, prog, kids[static_cast<std::size_t>(i)]);
      },
      0ull, [](std::uint64_t& a, std::uint64_t b) { a += b; });
}

// Hybrid cores×lanes path (core/hybrid_taskblock.hpp): the b0 root
// children — amplified a level deeper if the pool wants more slices — are
// strip-mined into ranges on the pool, each range running the SIMD
// task-block scheduler.  Leaf counts are a commutative sum, so the result
// is bit-identical to the sequential recursion for any split.
inline std::uint64_t uts_hybrid(rt::ForkJoinPool& pool, const UtsProgram& prog,
                                const core::Thresholds& th,
                                const rt::HybridOptions& opt = {},
                                core::PerWorkerStats* stats = nullptr) {
  const auto roots = prog.roots();
  return core::hybrid_taskblock_amplified<core::SimdExec<UtsProgram>>(
      pool, prog, roots, core::SeqPolicy::Restart, th, opt, stats);
}

inline std::uint64_t uts_cilk(rt::ForkJoinPool& pool, const UtsProgram& prog) {
  return pool.run([&pool, &prog] {
    const auto roots = prog.roots();
    return spawn_map_reduce<std::uint64_t>(
        pool, static_cast<int>(roots.size()),
        [&pool, &prog, &roots](int i) {
          return uts_cilk_rec(pool, prog, roots[static_cast<std::size_t>(i)]);
        },
        0ull, [](std::uint64_t& a, std::uint64_t b) { a += b; });
  });
}

}  // namespace tb::apps
