// minmaxdist — per-query nearest/farthest extremes over a kd-tree: for
// every point, the squared distance to its nearest and to its farthest
// other point, found in a single traversal with dual-bound pruning.
//
// The workload extends the traversal family (pointcorr, knn, Barnes-Hut)
// with a different divergence profile: a subtree is descended only when its
// bounding box could still *improve* either extreme — box_dist2 below the
// query's current minimum (knn-style lower-bound pruning) or box_maxdist2
// above its current maximum (the mirrored upper-bound test).  Early in the
// traversal almost everything descends; once both bounds tighten, lanes
// prune on different sides of the tree, which is exactly the divergence the
// blocked re-expansion engine compacts away.
//
// Nesting matches the paper's three levels: a data-parallel outer loop over
// queries (one root task per point), a task-parallel recursive descent, and
// a data-parallel base case streaming a leaf's points.
//
// Like knn, the per-query bounds are shared mutable state: monotone floats
// updated with relaxed CAS loops, so concurrent sibling subtrees may read
// stale bounds — weaker pruning, never wrong answers.  The final (min, max)
// pair per query is order-independent (min/max over the same candidate
// set), so every scheduler produces bit-identical state digests; only the
// visit counts are schedule-dependent.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "apps/common.hpp"
#include "core/program.hpp"
#include "runtime/forkjoin.hpp"
#include "simd/batch.hpp"
#include "simd/soa.hpp"
#include "spatial/bodies.hpp"
#include "spatial/kdtree.hpp"

namespace tb::apps {

// Shared mutable per-query extremes.  min starts at +inf, max at -1 (any
// real squared distance beats both), and each only moves one way.
class MinmaxDistState {
public:
  explicit MinmaxDistState(std::size_t queries)
      : min_d2_(queries, std::numeric_limits<float>::infinity()),
        max_d2_(queries, -1.0f) {}

  // atomic_ref<const T> lands in C++26; until then reads go through a
  // const_cast (the referenced floats are always mutable vector storage).
  float min_bound(std::int32_t query) const {
    return std::atomic_ref<float>(
               const_cast<float&>(min_d2_[static_cast<std::size_t>(query)]))
        .load(std::memory_order_relaxed);
  }
  float max_bound(std::int32_t query) const {
    return std::atomic_ref<float>(
               const_cast<float&>(max_d2_[static_cast<std::size_t>(query)]))
        .load(std::memory_order_relaxed);
  }

  // Offer a candidate squared distance (the caller already excluded self).
  void offer(std::int32_t query, float d2) {
    const auto q = static_cast<std::size_t>(query);
    std::atomic_ref<float> mn(min_d2_[q]);
    float cur = mn.load(std::memory_order_relaxed);
    while (d2 < cur &&
           !mn.compare_exchange_weak(cur, d2, std::memory_order_relaxed)) {
    }
    std::atomic_ref<float> mx(max_d2_[q]);
    cur = mx.load(std::memory_order_relaxed);
    while (d2 > cur &&
           !mx.compare_exchange_weak(cur, d2, std::memory_order_relaxed)) {
    }
  }

  std::size_t queries() const { return min_d2_.size(); }

private:
  std::vector<float> min_d2_;
  std::vector<float> max_d2_;
};

// Order-independent fingerprint of the final per-query extremes.  Raw float
// bits are hashed (min/max over a fixed candidate set is exact, so every
// correct schedule produces the same bits — including the +inf/-1 sentinels
// of a 1-point instance).
inline std::string minmaxdist_digest(const MinmaxDistState& state) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t q = 0; q < state.queries(); ++q) {
    const auto mn = static_cast<std::uint64_t>(
        std::bit_cast<std::uint32_t>(state.min_bound(static_cast<std::int32_t>(q))));
    const auto mx = static_cast<std::uint64_t>(
        std::bit_cast<std::uint32_t>(state.max_bound(static_cast<std::int32_t>(q))));
    h = (h ^ (mn | (mx << 32))) * 1099511628211ull;
  }
  return std::to_string(h);
}

struct MinmaxDistProgram {
  struct Task {
    std::int32_t query;
    std::int32_t node;
  };
  using Result = std::uint64_t;  // leaf visits (work metric; schedule-dependent)
  static constexpr int max_children = 2;

  const spatial::Bodies* points = nullptr;
  const spatial::KdTree* tree = nullptr;
  MinmaxDistState* state = nullptr;

  static Result identity() { return 0; }
  static void combine(Result& a, const Result& b) { a += b; }

  bool is_base(const Task& t) const { return tree->is_leaf(t.node); }

  void leaf(const Task& t, Result& r) const {
    r += 1;
    const auto q = static_cast<std::size_t>(t.query);
    const auto n = static_cast<std::size_t>(t.node);
    const float qx = points->x[q], qy = points->y[q], qz = points->z[q];
    for (std::int32_t j = tree->leaf_begin[n]; j < tree->leaf_end[n]; ++j) {
      const auto jj = static_cast<std::size_t>(j);
      if (tree->point_index[jj] == t.query) continue;  // self
      const float dx = tree->px[jj] - qx;
      const float dy = tree->py[jj] - qy;
      const float dz = tree->pz[jj] - qz;
      state->offer(t.query, dx * dx + dy * dy + dz * dz);
    }
  }

  // Descend only where the box could improve one of the two bounds.
  bool improves(std::int32_t node, float qx, float qy, float qz, float cur_min,
                float cur_max) const {
    return tree->box_dist2(node, qx, qy, qz) < cur_min ||
           tree->box_maxdist2(node, qx, qy, qz) > cur_max;
  }

  template <class Emit>
  void expand(const Task& t, Emit&& emit) const {
    const auto q = static_cast<std::size_t>(t.query);
    const float qx = points->x[q], qy = points->y[q], qz = points->z[q];
    const auto n = static_cast<std::size_t>(t.node);
    const float cur_min = state->min_bound(t.query);
    const float cur_max = state->max_bound(t.query);
    const std::int32_t kids[2] = {tree->left[n], tree->right[n]};
    for (int s = 0; s < 2; ++s) {
      if (kids[s] != spatial::KdTree::kNoChild &&
          improves(kids[s], qx, qy, qz, cur_min, cur_max)) {
        emit(s, Task{t.query, kids[s]});
      }
    }
  }

  // ---- SoA layer -------------------------------------------------------------
  using Block = simd::SoaBlock<std::int32_t, std::int32_t>;
  static Task task_at(const Block& b, std::size_t i) {
    const auto [q, n] = b.row(i);
    return Task{q, n};
  }
  static void append_task(Block& b, const Task& t) { b.push_back(t.query, t.node); }

  // ---- SIMD layer ------------------------------------------------------------
  static constexpr int simd_width = simd::natural_width<float>;

  using BF = simd::batch<float, simd_width>;
  using BI = simd::batch<std::int32_t, simd_width>;

  // Vectorized dual-bound test: bit i set when node i's box could improve
  // lane i's min (box min-distance below it) or max (box max-distance above).
  std::uint32_t improves_mask(const BI& node, const BF& qx, const BF& qy, const BF& qz,
                              const BF& cur_min, const BF& cur_max) const {
    const BF zero = BF::zero();
    const BF lox = simd::gather(tree->min_x.data(), node) - qx;
    const BF hix = qx - simd::gather(tree->max_x.data(), node);
    const BF loy = simd::gather(tree->min_y.data(), node) - qy;
    const BF hiy = qy - simd::gather(tree->max_y.data(), node);
    const BF loz = simd::gather(tree->min_z.data(), node) - qz;
    const BF hiz = qz - simd::gather(tree->max_z.data(), node);
    const BF dx = BF::max(BF::max(lox, hix), zero);
    const BF dy = BF::max(BF::max(loy, hiy), zero);
    const BF dz = BF::max(BF::max(loz, hiz), zero);
    const std::uint32_t near_gain =
        simd::cmp_lt(dx * dx + dy * dy + dz * dz, cur_min);
    // Farthest corner: per-dim the larger of the two one-sided offsets
    // (-lox = qx - min_x, -hix = max_x - qx).
    const BF fx = BF::max(-lox, -hix);
    const BF fy = BF::max(-loy, -hiy);
    const BF fz = BF::max(-loz, -hiz);
    const std::uint32_t far_gain =
        simd::cmp_gt(fx * fx + fy * fy + fz * fz, cur_max);
    return near_gain | far_gain;
  }

  void expand_simd(const Block& in, std::size_t begin, std::size_t end,
                   const std::array<Block*, 2>& outs, Result& r, std::uint64_t& leaves) const {
    const std::int32_t* query_p = in.data<0>();
    const std::int32_t* node_p = in.data<1>();
    constexpr std::uint32_t full = simd::mask_all<simd_width>;
    std::uint64_t leaf_tasks = 0;
    for (std::size_t i = begin; i < end; i += simd_width) {
      const BI query = BI::loadu(query_p + i);
      const BI node = BI::loadu(node_p + i);
      const BI lb = simd::gather(tree->leaf_begin.data(), node);
      const std::uint32_t leafy = simd::cmp_ge(lb, BI::zero()) & full;
      leaf_tasks += std::popcount(leafy);
      std::uint32_t mset = leafy;
      while (mset != 0) {
        const int l = std::countr_zero(mset);
        mset &= mset - 1;
        Task t{query[l], node[l]};
        Result dummy = 0;
        leaf(t, dummy);
      }
      const std::uint32_t rec = ~leafy & full;
      if (rec == 0) continue;
      const BF qx = simd::gather(points->x.data(), query);
      const BF qy = simd::gather(points->y.data(), query);
      const BF qz = simd::gather(points->z.data(), query);
      BF cur_min, cur_max;
      for (int l = 0; l < simd_width; ++l) {
        cur_min.set(l, state->min_bound(query[l]));
        cur_max.set(l, state->max_bound(query[l]));
      }
      const BI lkid = simd::gather(tree->left.data(), node);
      const BI rkid = simd::gather(tree->right.data(), node);
      const std::uint32_t lmask =
          rec & improves_mask(lkid, qx, qy, qz, cur_min, cur_max);
      const std::uint32_t rmask =
          rec & improves_mask(rkid, qx, qy, qz, cur_min, cur_max);
      if (lmask != 0) outs[0]->append_compact(lmask, query, lkid);
      if (rmask != 0) outs[1]->append_compact(rmask, query, rkid);
    }
    r += leaf_tasks;
    leaves += leaf_tasks;
  }

  // One root task per query point (§5 data-parallel outer loop).
  std::vector<Task> roots() const {
    std::vector<Task> out;
    out.reserve(points->size());
    for (std::size_t q = 0; q < points->size(); ++q) {
      out.push_back(Task{static_cast<std::int32_t>(q), tree->root});
    }
    return out;
  }
};

inline void minmaxdist_sequential_one(const MinmaxDistProgram& prog,
                                      const MinmaxDistProgram::Task& t) {
  if (prog.is_base(t)) {
    MinmaxDistProgram::Result dummy = 0;
    prog.leaf(t, dummy);
    return;
  }
  prog.expand(t, [&](int, const MinmaxDistProgram::Task& c) {
    minmaxdist_sequential_one(prog, c);
  });
}

inline void minmaxdist_sequential(const MinmaxDistProgram& prog) {
  for (const auto& t : prog.roots()) minmaxdist_sequential_one(prog, t);
}

// Brute-force extremes for one query: {min_d2, max_d2} over all other points.
inline std::pair<float, float> minmaxdist_bruteforce(const spatial::Bodies& pts,
                                                     std::int32_t query) {
  float mn = std::numeric_limits<float>::infinity();
  float mx = -1.0f;
  for (std::size_t j = 0; j < pts.size(); ++j) {
    if (static_cast<std::int32_t>(j) == query) continue;
    const float dx = pts.x[j] - pts.x[static_cast<std::size_t>(query)];
    const float dy = pts.y[j] - pts.y[static_cast<std::size_t>(query)];
    const float dz = pts.z[j] - pts.z[static_cast<std::size_t>(query)];
    const float d2 = dx * dx + dy * dy + dz * dz;
    mn = std::min(mn, d2);
    mx = std::max(mx, d2);
  }
  return {mn, mx};
}

inline void minmaxdist_cilk_rec(rt::ForkJoinPool& pool, const MinmaxDistProgram& prog,
                                const MinmaxDistProgram::Task& t) {
  if (prog.is_base(t)) {
    MinmaxDistProgram::Result dummy = 0;
    prog.leaf(t, dummy);
    return;
  }
  std::array<MinmaxDistProgram::Task, 2> kids;
  int count = 0;
  prog.expand(t, [&](int, const MinmaxDistProgram::Task& c) {
    kids[static_cast<std::size_t>(count++)] = c;
  });
  (void)spawn_map_reduce<int>(
      pool, count,
      [&pool, &prog, &kids](int i) {
        minmaxdist_cilk_rec(pool, prog, kids[static_cast<std::size_t>(i)]);
        return 0;
      },
      0, [](int&, int) {});
}

inline void minmaxdist_cilk(rt::ForkJoinPool& pool, const MinmaxDistProgram& prog) {
  const auto roots = prog.roots();
  pool.run([&] {
    (void)spawn_map_reduce<int>(
        pool, static_cast<int>(roots.size()),
        [&pool, &prog, &roots](int i) {
          minmaxdist_cilk_rec(pool, prog, roots[static_cast<std::size_t>(i)]);
          return 0;
        },
        0, [](int&, int) {});
  });
}

}  // namespace tb::apps
