// graphcol — count proper 3-colorings of a graph (Table 1 row 5).
//
// Vertices are colored in index order; a task carries the next vertex to
// color plus the packed color assignment (2 bits per vertex, two 64-bit
// words for up to 64 vertices).  A spawn slot is a color (out-degree 3);
// the per-color feasibility check over already-colored neighbors is the
// paper's nested data parallelism.  Like knapsack, the vertex index is
// uniform across a block (level == vertex), so the neighbor list and shift
// amounts are scalar-uniform inside the SIMD kernel.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <vector>

#include "apps/common.hpp"
#include "core/program.hpp"
#include "runtime/forkjoin.hpp"
#include "runtime/xoshiro.hpp"
#include "simd/batch.hpp"
#include "simd/soa.hpp"

namespace tb::apps {

struct GraphColInstance {
  int num_vertices = 0;
  // Per vertex: the neighbors with a smaller index (only those constrain
  // the coloring order).
  std::vector<std::vector<int>> lower_adj;

  // Erdős–Rényi-style random graph with expected degree `avg_degree`.
  static GraphColInstance random(int vertices, double avg_degree, std::uint64_t seed = 7) {
    GraphColInstance g;
    g.num_vertices = vertices;
    g.lower_adj.resize(static_cast<std::size_t>(vertices));
    rt::Xoshiro256 rng(seed);
    const double p = vertices > 1 ? avg_degree / static_cast<double>(vertices - 1) : 0.0;
    for (int v = 1; v < vertices; ++v) {
      for (int u = 0; u < v; ++u) {
        if (rng.uniform01() < p) g.lower_adj[static_cast<std::size_t>(v)].push_back(u);
      }
    }
    return g;
  }
};

struct GraphColProgram {
  struct Task {
    std::int32_t vertex;  // next vertex to color (== tree level)
    std::uint64_t lo;     // colors of vertices 0..31, 2 bits each
    std::uint64_t hi;     // colors of vertices 32..63
  };
  using Result = std::uint64_t;
  static constexpr int max_children = 3;
  static constexpr int num_colors = 3;

  const GraphColInstance* inst = nullptr;

  static Result identity() { return 0; }
  static void combine(Result& a, const Result& b) { a += b; }

  bool is_base(const Task& t) const { return t.vertex == inst->num_vertices; }
  void leaf(const Task&, Result& r) const { r += 1; }

  static std::uint32_t color_of(const Task& t, int u) {
    const std::uint64_t word = (u < 32) ? t.lo : t.hi;
    const int shift = 2 * (u & 31);
    return static_cast<std::uint32_t>((word >> shift) & 3u);
  }

  static Task with_color(const Task& t, int v, std::uint32_t c) {
    Task n{t.vertex + 1, t.lo, t.hi};
    const int shift = 2 * (v & 31);
    if (v < 32) {
      n.lo |= static_cast<std::uint64_t>(c) << shift;
    } else {
      n.hi |= static_cast<std::uint64_t>(c) << shift;
    }
    return n;
  }

  template <class Emit>
  void expand(const Task& t, Emit&& emit) const {
    const int v = t.vertex;
    const auto& adj = inst->lower_adj[static_cast<std::size_t>(v)];
    for (std::uint32_t c = 0; c < num_colors; ++c) {
      bool ok = true;
      for (const int u : adj) {
        if (color_of(t, u) == c) {
          ok = false;
          break;
        }
      }
      if (ok) emit(static_cast<int>(c), with_color(t, v, c));
    }
  }

  // ---- SoA layer -------------------------------------------------------------
  using Block = simd::SoaBlock<std::int32_t, std::uint64_t, std::uint64_t>;
  static Task task_at(const Block& b, std::size_t i) {
    const auto [v, lo, hi] = b.row(i);
    return Task{v, lo, hi};
  }
  static void append_task(Block& b, const Task& t) { b.push_back(t.vertex, t.lo, t.hi); }

  // ---- SIMD layer ------------------------------------------------------------
  // 64-bit color words dominate; 4 lanes on AVX2.
  static constexpr int simd_width = simd::natural_width<std::uint64_t>;

  void expand_simd(const Block& in, std::size_t begin, std::size_t end,
                   const std::array<Block*, 3>& outs, Result& r, std::uint64_t& leaves) const {
    using B64 = simd::batch<std::uint64_t, simd_width>;
    using B32 = simd::batch<std::int32_t, simd_width>;
    const std::int32_t* vs = in.data<0>();
    const std::uint64_t* los = in.data<1>();
    const std::uint64_t* his = in.data<2>();
    const int nv = inst->num_vertices;
    std::uint64_t leaf_count = 0;
    constexpr std::uint32_t full = simd::mask_all<simd_width>;
    for (std::size_t i = begin; i < end; i += simd_width) {
      const std::int32_t v = vs[i];  // uniform per level
      const B64 lo = B64::loadu(los + i);
      const B64 hi = B64::loadu(his + i);
      if (v == nv) {
        leaf_count += simd_width;
        continue;
      }
      const B32 vnext = B32::broadcast(v + 1);
      const auto& adj = inst->lower_adj[static_cast<std::size_t>(v)];
      const int shift_v = 2 * (v & 31);
      for (std::uint32_t c = 0; c < num_colors; ++c) {
        const B64 cbits = B64::broadcast(c);
        std::uint32_t ok = full;
        for (const int u : adj) {
          const B64 word = (u < 32) ? lo : hi;
          const B64 col = (word >> (2 * (u & 31))) & B64::broadcast(3);
          ok &= ~simd::cmp_eq(col, cbits) & full;
          if (ok == 0) break;
        }
        if (ok == 0) continue;
        const B64 set = B64::broadcast(static_cast<std::uint64_t>(c) << shift_v);
        const B64 nlo = (v < 32) ? (lo | set) : lo;
        const B64 nhi = (v < 32) ? hi : (hi | set);
        outs[static_cast<std::size_t>(c)]->append_compact(ok, vnext, nlo, nhi);
      }
    }
    r += leaf_count;
    leaves += leaf_count;
  }

  static Task root() { return Task{0, 0, 0}; }
};

inline std::uint64_t graphcol_sequential(const GraphColInstance& g,
                                         const GraphColProgram::Task& t) {
  GraphColProgram prog{&g};
  if (prog.is_base(t)) return 1;
  std::uint64_t total = 0;
  prog.expand(t, [&](int, const GraphColProgram::Task& child) {
    total += graphcol_sequential(g, child);
  });
  return total;
}

inline std::uint64_t graphcol_cilk_rec(rt::ForkJoinPool& pool, const GraphColInstance& g,
                                       const GraphColProgram::Task& t) {
  GraphColProgram prog{&g};
  if (prog.is_base(t)) return 1;
  std::array<GraphColProgram::Task, 3> kids;
  int count = 0;
  prog.expand(t, [&](int, const GraphColProgram::Task& child) {
    kids[static_cast<std::size_t>(count++)] = child;
  });
  return spawn_map_reduce<std::uint64_t>(
      pool, count,
      [&pool, &g, &kids](int i) {
        return graphcol_cilk_rec(pool, g, kids[static_cast<std::size_t>(i)]);
      },
      0ull, [](std::uint64_t& a, std::uint64_t b) { a += b; });
}

inline std::uint64_t graphcol_cilk(rt::ForkJoinPool& pool, const GraphColInstance& g) {
  return pool.run([&pool, &g] { return graphcol_cilk_rec(pool, g, GraphColProgram::root()); });
}

}  // namespace tb::apps
