// minmax — bounded-ply game-tree search on 4×4 tic-tac-toe (Table 1 row 8).
//
// A task is a position: two 16-bit bitboards packed in u32 (cells 0..15 for
// X and O).  The ply — and therefore the player to move — equals the tree
// level, so it is uniform across a block and derived from popcount(x|o)
// rather than stored.  A spawn slot is a board cell (out-degree 16).
//
// Reduction note (DESIGN.md §3): the paper's model reduces at base cases
// only, so this benchmark reduces leaf statistics (leaf count, X/O wins,
// and the signed score sum) rather than propagating min/max through
// internal nodes.  The tree walked — all the scheduler observes — is the
// full minimax tree.
#pragma once

#include <array>
#include <bit>
#include <cstdint>

#include "apps/common.hpp"
#include "core/program.hpp"
#include "runtime/forkjoin.hpp"
#include "simd/batch.hpp"
#include "simd/soa.hpp"

namespace tb::apps {

struct MinmaxResult {
  std::uint64_t leaves = 0;
  std::uint64_t x_wins = 0;
  std::uint64_t o_wins = 0;
  std::int64_t score_sum = 0;  // +1 per X win, -1 per O win

  friend bool operator==(const MinmaxResult&, const MinmaxResult&) = default;
};

struct MinmaxProgram {
  struct Task {
    std::uint32_t x;  // X's stones, one bit per cell
    std::uint32_t o;  // O's stones
  };
  using Result = MinmaxResult;
  static constexpr int max_children = 16;
  static constexpr int board_cells = 16;

  int ply_limit = 9;  // cut off the search at this many stones

  // 4-in-a-row lines on the 4x4 board: 4 rows, 4 columns, 2 diagonals.
  static constexpr std::array<std::uint32_t, 10> kLines = {
      0x000Fu, 0x00F0u, 0x0F00u, 0xF000u,  // rows
      0x1111u, 0x2222u, 0x4444u, 0x8888u,  // columns
      0x8421u, 0x1248u,                    // diagonals
  };

  static Result identity() { return {}; }
  static void combine(Result& a, const Result& b) {
    a.leaves += b.leaves;
    a.x_wins += b.x_wins;
    a.o_wins += b.o_wins;
    a.score_sum += b.score_sum;
  }

  static bool won(std::uint32_t board) {
    for (const std::uint32_t line : kLines) {
      if ((board & line) == line) return true;
    }
    return false;
  }

  bool is_base(const Task& t) const {
    const int filled = std::popcount(t.x | t.o);
    return won(t.x) || won(t.o) || filled >= board_cells || filled >= ply_limit;
  }

  void leaf(const Task& t, Result& r) const {
    r.leaves += 1;
    if (won(t.x)) {
      r.x_wins += 1;
      r.score_sum += 1;
    } else if (won(t.o)) {
      r.o_wins += 1;
      r.score_sum -= 1;
    }
  }

  template <class Emit>
  void expand(const Task& t, Emit&& emit) const {
    const std::uint32_t occ = t.x | t.o;
    const bool x_to_move = (std::popcount(occ) & 1) == 0;
    for (int cell = 0; cell < board_cells; ++cell) {
      const std::uint32_t bit = 1u << cell;
      if (occ & bit) continue;
      emit(cell, x_to_move ? Task{t.x | bit, t.o} : Task{t.x, t.o | bit});
    }
  }

  // ---- SoA layer -------------------------------------------------------------
  using Block = simd::SoaBlock<std::uint32_t, std::uint32_t>;
  static Task task_at(const Block& b, std::size_t i) {
    const auto [x, o] = b.row(i);
    return Task{x, o};
  }
  static void append_task(Block& b, const Task& t) { b.push_back(t.x, t.o); }

  // ---- SIMD layer ------------------------------------------------------------
  static constexpr int simd_width = simd::natural_width<std::uint32_t>;

  void expand_simd(const Block& in, std::size_t begin, std::size_t end,
                   const std::array<Block*, 16>& outs, Result& r, std::uint64_t& leaves) const {
    using B = simd::batch<std::uint32_t, simd_width>;
    const std::uint32_t* xs = in.data<0>();
    const std::uint32_t* os = in.data<1>();
    constexpr std::uint32_t full = simd::mask_all<simd_width>;
    for (std::size_t i = begin; i < end; i += simd_width) {
      const B x = B::loadu(xs + i);
      const B o = B::loadu(os + i);
      const B occ = x | o;
      // Ply is uniform across the block.
      const int filled = std::popcount(xs[i] | os[i]);
      const bool cutoff = filled >= board_cells || filled >= ply_limit;
      std::uint32_t xwin = 0;
      std::uint32_t owin = 0;
      for (const std::uint32_t line : kLines) {
        const B lv = B::broadcast(line);
        xwin |= simd::cmp_eq(x & lv, lv);
        owin |= simd::cmp_eq(o & lv, lv);
      }
      owin &= ~xwin;  // a position cannot have two winners; X checked first
      const std::uint32_t base = cutoff ? full : ((xwin | owin) & full);
      r.leaves += std::popcount(base);
      r.x_wins += std::popcount(xwin & base);
      r.o_wins += std::popcount(owin & base);
      r.score_sum += std::popcount(xwin & base) - std::popcount(owin & base);
      leaves += std::popcount(base);
      const std::uint32_t live = ~base & full;
      if (live == 0) continue;
      const bool x_to_move = (filled & 1) == 0;
      for (int cell = 0; cell < board_cells; ++cell) {
        const B bit = B::broadcast(1u << cell);
        const std::uint32_t empty =
            simd::cmp_eq(occ & bit, B::zero()) & live;
        if (empty == 0) continue;
        if (x_to_move) {
          outs[static_cast<std::size_t>(cell)]->append_compact(empty, x | bit, o);
        } else {
          outs[static_cast<std::size_t>(cell)]->append_compact(empty, x, o | bit);
        }
      }
    }
  }

  static Task root() { return Task{0, 0}; }
};

inline MinmaxResult minmax_sequential(const MinmaxProgram& prog, const MinmaxProgram::Task& t) {
  MinmaxResult r{};
  if (prog.is_base(t)) {
    prog.leaf(t, r);
    return r;
  }
  prog.expand(t, [&](int, const MinmaxProgram::Task& c) {
    MinmaxProgram::combine(r, minmax_sequential(prog, c));
  });
  return r;
}

// True minimax value of a position (internal-node min/max propagation) —
// used by the game-playing example; not part of the paper's benchmark.
inline int minmax_value(const MinmaxProgram& prog, const MinmaxProgram::Task& t) {
  if (MinmaxProgram::won(t.x)) return 1;
  if (MinmaxProgram::won(t.o)) return -1;
  if (prog.is_base(t)) return 0;
  const bool x_to_move = (std::popcount(t.x | t.o) & 1) == 0;
  int best = x_to_move ? -2 : 2;
  prog.expand(t, [&](int, const MinmaxProgram::Task& c) {
    const int v = minmax_value(prog, c);
    best = x_to_move ? std::max(best, v) : std::min(best, v);
  });
  return best;
}

inline MinmaxResult minmax_cilk_rec(rt::ForkJoinPool& pool, const MinmaxProgram& prog,
                                    const MinmaxProgram::Task& t) {
  if (prog.is_base(t)) {
    MinmaxResult r{};
    prog.leaf(t, r);
    return r;
  }
  std::array<MinmaxProgram::Task, 16> kids;
  int count = 0;
  prog.expand(t, [&](int, const MinmaxProgram::Task& c) {
    kids[static_cast<std::size_t>(count++)] = c;
  });
  return spawn_map_reduce<MinmaxResult>(
      pool, count,
      [&pool, &prog, &kids](int i) {
        return minmax_cilk_rec(pool, prog, kids[static_cast<std::size_t>(i)]);
      },
      MinmaxResult{},
      [](MinmaxResult& a, const MinmaxResult& b) { MinmaxProgram::combine(a, b); });
}

inline MinmaxResult minmax_cilk(rt::ForkJoinPool& pool, const MinmaxProgram& prog) {
  return pool.run(
      [&pool, &prog] { return minmax_cilk_rec(pool, prog, MinmaxProgram::root()); });
}

}  // namespace tb::apps
