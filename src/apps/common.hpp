// Shared helpers for the benchmark kernels' Cilk-style (scalar task
// parallel) variants.
#pragma once

#include <deque>
#include <vector>

#include "runtime/forkjoin.hpp"

namespace tb::apps {

// Spawn `count` children: children 1..count-1 become stealable jobs, child 0
// runs inline (the standard spawn-elision for the first child), then the
// results are folded with `comb`.  `child(i)` computes child i's value.
template <class R, class ChildFn, class CombineFn>
R spawn_map_reduce(rt::ForkJoinPool& pool, int count, ChildFn child, R init, CombineFn comb) {
  if (count == 0) return init;
  std::vector<R> results(static_cast<std::size_t>(count), init);
  struct Fn {
    ChildFn* child;
    R* out;
    int i;
    void operator()() const { *out = (*child)(i); }
  };
  std::deque<rt::SpawnJob<Fn>> jobs;  // deque: stable addresses, no moves
  for (int i = 1; i < count; ++i) {
    jobs.emplace_back(Fn{&child, &results[static_cast<std::size_t>(i)], i});
    pool.push(jobs.back());
  }
  R total = init;
  comb(total, child(0));
  for (int i = count - 1; i >= 1; --i) {
    pool.sync(jobs[static_cast<std::size_t>(i - 1)]);
    comb(total, results[static_cast<std::size_t>(i)]);
  }
  return total;
}

}  // namespace tb::apps
