// fib — the canonical recursive task-parallel kernel (Table 1 row 2).
//
// fib(n) spawns fib(n-1) and fib(n-2); the leaf values (n < 2) sum to
// fib(n), so the program reduces a 64-bit sum at base cases.  The task
// state is a single i32, so the SoA block is one column and the SIMD kernel
// is a pure arithmetic mask/compact loop.
#pragma once

#include <array>
#include <bit>
#include <cstdint>

#include "core/program.hpp"
#include "runtime/forkjoin.hpp"
#include "simd/batch.hpp"
#include "simd/soa.hpp"

namespace tb::apps {

struct FibProgram {
  struct Task {
    std::int32_t n;
  };
  using Result = std::uint64_t;
  static constexpr int max_children = 2;

  static Result identity() { return 0; }
  static void combine(Result& a, const Result& b) { a += b; }

  bool is_base(const Task& t) const { return t.n < 2; }
  void leaf(const Task& t, Result& r) const { r += static_cast<Result>(t.n); }

  template <class Emit>
  void expand(const Task& t, Emit&& emit) const {
    emit(0, Task{t.n - 1});
    emit(1, Task{t.n - 2});
  }

  // ---- SoA layer -------------------------------------------------------------
  using Block = simd::SoaBlock<std::int32_t>;
  static Task task_at(const Block& b, std::size_t i) { return Task{std::get<0>(b.row(i))}; }
  static void append_task(Block& b, const Task& t) { b.push_back(t.n); }

  // ---- SIMD layer ------------------------------------------------------------
  static constexpr int simd_width = simd::natural_width<std::int32_t>;

  void expand_simd(const Block& in, std::size_t begin, std::size_t end,
                   const std::array<Block*, 2>& outs, Result& r, std::uint64_t& leaves) const {
    using B = simd::batch<std::int32_t, simd_width>;
    const std::int32_t* ns = in.data<0>();
    const B one = B::broadcast(1);
    const B two = B::broadcast(2);
    Result sum = 0;
    std::uint64_t leaf_count = 0;
    for (std::size_t i = begin; i < end; i += simd_width) {
      const B n = B::loadu(ns + i);
      const std::uint32_t base = simd::cmp_lt(n, two);
      sum += simd::reduce_add_masked<Result>(base, n);
      leaf_count += std::popcount(base);
      const std::uint32_t rec = base ^ simd::mask_all<simd_width>;
      outs[0]->append_compact(rec, n - one);
      outs[1]->append_compact(rec, n - two);
    }
    r += sum;
    leaves += leaf_count;
  }

  static Task root(int n) { return Task{n}; }
};

// Plain sequential recursion — the paper's Ts baseline.
inline std::uint64_t fib_sequential(int n) {
  if (n < 2) return static_cast<std::uint64_t>(n);
  return fib_sequential(n - 1) + fib_sequential(n - 2);
}

// Cilk-style version: spawn at every recursive call (the paper's input
// program; T1/T16 baseline).
inline std::uint64_t fib_cilk_rec(rt::ForkJoinPool& pool, int n) {
  if (n < 2) return static_cast<std::uint64_t>(n);
  std::uint64_t a = 0;
  rt::SpawnJob job([&pool, &a, n] { a = fib_cilk_rec(pool, n - 1); });
  pool.push(job);
  const std::uint64_t b = fib_cilk_rec(pool, n - 2);
  pool.sync(job);
  return a + b;
}

inline std::uint64_t fib_cilk(rt::ForkJoinPool& pool, int n) {
  return pool.run([&pool, n] { return fib_cilk_rec(pool, n); });
}

}  // namespace tb::apps
