// Barnes-Hut force computation (Table 1 row 9; paper Fig. 2).
//
// The outer data-parallel loop over bodies (§5) becomes the root task set:
// one task (body, root-node, d²) per body, strip-mined into initial blocks.
// A task either terminates — the cell is far enough for its center-of-mass
// approximation (dr² ≥ d²), or it is a tree leaf (direct sum over the
// leaf's bodies: the nested data-parallel base case) — or it spawns one
// task per occupied octant with d²/4, exactly the paper's c_f.
//
// The opening threshold d² is a function of the level alone (cells at tree
// depth L share a size), so it stays uniform across a block.  Forces
// accumulate into per-body arrays with relaxed atomic float adds (the
// "update p using reduction" of Fig. 2); the monoid result counts terminal
// interactions, which is schedule-independent and exact — the tests use it
// as a cross-variant fingerprint.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>

#include "apps/common.hpp"
#include "core/program.hpp"
#include "runtime/forkjoin.hpp"
#include "simd/batch.hpp"
#include "simd/soa.hpp"
#include "spatial/bodies.hpp"
#include "spatial/octree.hpp"

namespace tb::apps {

struct BarnesHutProgram {
  struct Task {
    std::int32_t body;
    std::int32_t node;
    float d2;  // opening threshold for this level: (2·half/θ)² / 4^level
  };
  using Result = std::uint64_t;  // terminal interactions (verification fingerprint)
  static constexpr int max_children = 8;

  const spatial::Bodies* bodies = nullptr;
  const spatial::Octree* tree = nullptr;
  float* acc_x = nullptr;  // per-body force accumulators
  float* acc_y = nullptr;
  float* acc_z = nullptr;
  float eps2 = 1e-4f;

  static Result identity() { return 0; }
  static void combine(Result& a, const Result& b) { a += b; }

  float root_d2(float theta) const {
    const float d = 2.0f * tree->half[static_cast<std::size_t>(tree->root)] / theta;
    return d * d;
  }

  float dist2(const Task& t) const {
    const auto n = static_cast<std::size_t>(t.node);
    const auto b = static_cast<std::size_t>(t.body);
    const float dx = tree->com_x[n] - bodies->x[b];
    const float dy = tree->com_y[n] - bodies->y[b];
    const float dz = tree->com_z[n] - bodies->z[b];
    return dx * dx + dy * dy + dz * dz;
  }

  bool is_base(const Task& t) const {
    return tree->is_leaf(t.node) || dist2(t) >= t.d2;
  }

  void add_force(std::int32_t body, float fx, float fy, float fz) const {
    std::atomic_ref<float>(acc_x[body]).fetch_add(fx, std::memory_order_relaxed);
    std::atomic_ref<float>(acc_y[body]).fetch_add(fy, std::memory_order_relaxed);
    std::atomic_ref<float>(acc_z[body]).fetch_add(fz, std::memory_order_relaxed);
  }

  // Direct sum of the leaf's bodies against the query body — the nested
  // data-parallel loop inside the base case, vectorized over leaf points.
  void direct_sum(std::int32_t body, std::int32_t node) const {
    const auto nn = static_cast<std::size_t>(node);
    const auto qb = static_cast<std::size_t>(body);
    const float qx = bodies->x[qb], qy = bodies->y[qb], qz = bodies->z[qb];
    float fx = 0, fy = 0, fz = 0;
    for (std::int32_t j = tree->leaf_begin[nn]; j < tree->leaf_end[nn]; ++j) {
      const auto bj = static_cast<std::size_t>(tree->body_index[static_cast<std::size_t>(j)]);
      if (static_cast<std::int32_t>(bj) == body) continue;
      const float dx = bodies->x[bj] - qx;
      const float dy = bodies->y[bj] - qy;
      const float dz = bodies->z[bj] - qz;
      const float r2 = dx * dx + dy * dy + dz * dz + eps2;
      const float inv = 1.0f / std::sqrt(r2);
      const float f = bodies->mass[bj] * inv * inv * inv;
      fx += f * dx;
      fy += f * dy;
      fz += f * dz;
    }
    add_force(body, fx, fy, fz);
  }

  void leaf(const Task& t, Result& r) const {
    r += 1;
    const auto n = static_cast<std::size_t>(t.node);
    const float dr2 = dist2(t);
    if (dr2 >= t.d2) {
      // Far cell: single interaction with the center of mass.
      const auto b = static_cast<std::size_t>(t.body);
      const float dx = tree->com_x[n] - bodies->x[b];
      const float dy = tree->com_y[n] - bodies->y[b];
      const float dz = tree->com_z[n] - bodies->z[b];
      const float r2 = dr2 + eps2;
      const float inv = 1.0f / std::sqrt(r2);
      const float f = tree->mass[n] * inv * inv * inv;
      add_force(t.body, f * dx, f * dy, f * dz);
    } else {
      direct_sum(t.body, t.node);
    }
  }

  template <class Emit>
  void expand(const Task& t, Emit&& emit) const {
    const auto& kids = tree->children[static_cast<std::size_t>(t.node)];
    const float d2 = t.d2 * 0.25f;
    for (int oct = 0; oct < 8; ++oct) {
      if (kids[static_cast<std::size_t>(oct)] != spatial::Octree::kNoChild) {
        emit(oct, Task{t.body, kids[static_cast<std::size_t>(oct)], d2});
      }
    }
  }

  // ---- SoA layer -------------------------------------------------------------
  using Block = simd::SoaBlock<std::int32_t, std::int32_t, float>;
  static Task task_at(const Block& b, std::size_t i) {
    const auto [body, node, d2] = b.row(i);
    return Task{body, node, d2};
  }
  static void append_task(Block& b, const Task& t) { b.push_back(t.body, t.node, t.d2); }

  // ---- SIMD layer ------------------------------------------------------------
  static constexpr int simd_width = simd::natural_width<float>;

  void expand_simd(const Block& in, std::size_t begin, std::size_t end,
                   const std::array<Block*, 8>& outs, Result& r, std::uint64_t& leaves) const {
    using BF = simd::batch<float, simd_width>;
    using BI = simd::batch<std::int32_t, simd_width>;
    const std::int32_t* body_p = in.data<0>();
    const std::int32_t* node_p = in.data<1>();
    const float* d2_p = in.data<2>();
    constexpr std::uint32_t full = simd::mask_all<simd_width>;
    const std::int32_t* child_flat = tree->children.data()->data();
    std::uint64_t base_count = 0;
    for (std::size_t i = begin; i < end; i += simd_width) {
      const BI body = BI::loadu(body_p + i);
      const BI node = BI::loadu(node_p + i);
      const BF d2 = BF::loadu(d2_p + i);
      const BF nx = simd::gather(tree->com_x.data(), node);
      const BF ny = simd::gather(tree->com_y.data(), node);
      const BF nz = simd::gather(tree->com_z.data(), node);
      const BF qx = simd::gather(bodies->x.data(), body);
      const BF qy = simd::gather(bodies->y.data(), body);
      const BF qz = simd::gather(bodies->z.data(), body);
      const BF dx = nx - qx;
      const BF dy = ny - qy;
      const BF dz = nz - qz;
      const BF dr2 = dx * dx + dy * dy + dz * dz;
      const BI lb = simd::gather(tree->leaf_begin.data(), node);
      const std::uint32_t leafy = simd::cmp_ge(lb, BI::zero());
      const std::uint32_t far = simd::cmp_ge(dr2, d2);
      const std::uint32_t base = (leafy | far) & full;
      base_count += std::popcount(base);

      if ((far & full) != 0) {
        // Vectorized far-field kick; scalar scatter-add (two lanes may share
        // a body).
        const BF m = simd::gather(tree->mass.data(), node);
        const BF r2v = dr2 + BF::broadcast(eps2);
        BF inv;
        for (int l = 0; l < simd_width; ++l) inv.set(l, 1.0f / std::sqrt(r2v[l]));
        const BF f = m * inv * inv * inv;
        const BF fx = f * dx, fy = f * dy, fz = f * dz;
        std::uint32_t mset = far & full;
        while (mset != 0) {
          const int l = std::countr_zero(mset);
          mset &= mset - 1;
          add_force(body[l], fx[l], fy[l], fz[l]);
        }
      }
      std::uint32_t near_leaf = leafy & ~far & full;
      while (near_leaf != 0) {
        const int l = std::countr_zero(near_leaf);
        near_leaf &= near_leaf - 1;
        direct_sum(body[l], node[l]);
      }

      const std::uint32_t rec = ~base & full;
      if (rec == 0) continue;
      const BF d2q = d2 * BF::broadcast(0.25f);
      const BI node8 = node << 3;  // flat index into the children table
      for (int oct = 0; oct < 8; ++oct) {
        const BI child = simd::gather(child_flat, node8 + BI::broadcast(oct));
        const std::uint32_t has =
            rec & ~simd::cmp_eq(child, BI::broadcast(spatial::Octree::kNoChild)) & full;
        if (has == 0) continue;
        outs[static_cast<std::size_t>(oct)]->append_compact(has, body, child, d2q);
      }
    }
    r += base_count;
    leaves += base_count;
  }

  // One root task per body — the §5 data-parallel outer loop.
  std::vector<Task> roots(float theta) const {
    std::vector<Task> out;
    out.reserve(bodies->size());
    const float d2 = root_d2(theta);
    for (std::size_t b = 0; b < bodies->size(); ++b) {
      out.push_back(Task{static_cast<std::int32_t>(b), tree->root, d2});
    }
    return out;
  }
};

// Sequential recursive traversal for one body — the Ts baseline.
inline std::uint64_t barneshut_sequential_body(const BarnesHutProgram& prog,
                                               const BarnesHutProgram::Task& t) {
  if (prog.is_base(t)) {
    std::uint64_t r = 0;
    prog.leaf(t, r);
    return r;
  }
  std::uint64_t total = 0;
  prog.expand(t, [&](int, const BarnesHutProgram::Task& c) {
    total += barneshut_sequential_body(prog, c);
  });
  return total;
}

inline std::uint64_t barneshut_sequential(const BarnesHutProgram& prog, float theta) {
  std::uint64_t total = 0;
  for (const auto& t : prog.roots(theta)) total += barneshut_sequential_body(prog, t);
  return total;
}

// Cilk-style: parallel over bodies AND over octants inside the traversal.
inline std::uint64_t barneshut_cilk_rec(rt::ForkJoinPool& pool, const BarnesHutProgram& prog,
                                        const BarnesHutProgram::Task& t) {
  if (prog.is_base(t)) {
    std::uint64_t r = 0;
    prog.leaf(t, r);
    return r;
  }
  std::array<BarnesHutProgram::Task, 8> kids;
  int count = 0;
  prog.expand(t, [&](int, const BarnesHutProgram::Task& c) {
    kids[static_cast<std::size_t>(count++)] = c;
  });
  return spawn_map_reduce<std::uint64_t>(
      pool, count,
      [&pool, &prog, &kids](int i) {
        return barneshut_cilk_rec(pool, prog, kids[static_cast<std::size_t>(i)]);
      },
      0ull, [](std::uint64_t& a, std::uint64_t b) { a += b; });
}

inline std::uint64_t barneshut_cilk(rt::ForkJoinPool& pool, const BarnesHutProgram& prog,
                                    float theta) {
  const auto roots = prog.roots(theta);
  return pool.run([&] {
    return spawn_map_reduce<std::uint64_t>(
        pool, static_cast<int>(roots.size()),
        [&pool, &prog, &roots](int i) {
          return barneshut_cilk_rec(pool, prog, roots[static_cast<std::size_t>(i)]);
        },
        0ull, [](std::uint64_t& a, std::uint64_t b) { a += b; });
  });
}

}  // namespace tb::apps
