// knapsack — exhaustive 0/1 knapsack search (Table 1 row 1).
//
// A task is (item index, remaining capacity, accumulated value); the two
// spawns are include-item (slot 0, only when it fits) and exclude-item
// (slot 1).  Leaves occur when every item has been decided; the reduction
// tracks both the leaf count and the best achievable value.  With weights
// small relative to capacity the tree is (near-)perfectly balanced with all
// base cases on the last level, matching the paper's characterization.
//
// Because every task in a block sits at the same tree level, the item index
// is uniform across a block — the SIMD kernel broadcasts w[item]/v[item]
// instead of gathering.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cassert>
#include <cstdint>
#include <vector>

#include "core/program.hpp"
#include "runtime/forkjoin.hpp"
#include "runtime/xoshiro.hpp"
#include "simd/batch.hpp"
#include "simd/soa.hpp"

namespace tb::apps {

struct KnapsackInstance {
  std::vector<std::int32_t> weight;
  std::vector<std::int32_t> value;
  std::int32_t capacity = 0;

  int num_items() const { return static_cast<int>(weight.size()); }

  // Deterministic pseudo-random instance.  Weights are kept small relative
  // to the capacity so most include-branches are feasible (the paper's
  // "perfectly balanced tree" shape).
  static KnapsackInstance random(int items, std::uint64_t seed = 42) {
    KnapsackInstance inst;
    rt::Xoshiro256 rng(seed);
    inst.weight.resize(static_cast<std::size_t>(items));
    inst.value.resize(static_cast<std::size_t>(items));
    std::int32_t total = 0;
    for (int i = 0; i < items; ++i) {
      inst.weight[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(1 + rng.below(8));
      inst.value[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(1 + rng.below(100));
      total += inst.weight[static_cast<std::size_t>(i)];
    }
    inst.capacity = (3 * total) / 4;
    return inst;
  }
};

struct KnapsackResult {
  std::uint64_t leaves = 0;
  std::int64_t best = 0;
};

struct KnapsackProgram {
  struct Task {
    std::int32_t item;
    std::int32_t cap;
    std::int32_t val;
  };
  using Result = KnapsackResult;
  static constexpr int max_children = 2;

  const KnapsackInstance* inst = nullptr;

  static Result identity() { return {}; }
  static void combine(Result& a, const Result& b) {
    a.leaves += b.leaves;
    a.best = std::max(a.best, b.best);
  }

  bool is_base(const Task& t) const { return t.item == inst->num_items(); }
  void leaf(const Task& t, Result& r) const {
    r.leaves += 1;
    r.best = std::max(r.best, static_cast<std::int64_t>(t.val));
  }

  template <class Emit>
  void expand(const Task& t, Emit&& emit) const {
    const auto i = static_cast<std::size_t>(t.item);
    const std::int32_t w = inst->weight[i];
    const std::int32_t v = inst->value[i];
    if (t.cap >= w) emit(0, Task{t.item + 1, t.cap - w, t.val + v});
    emit(1, Task{t.item + 1, t.cap, t.val});
  }

  // ---- SoA layer -------------------------------------------------------------
  using Block = simd::SoaBlock<std::int32_t, std::int32_t, std::int32_t>;
  static Task task_at(const Block& b, std::size_t i) {
    const auto [item, cap, val] = b.row(i);
    return Task{item, cap, val};
  }
  static void append_task(Block& b, const Task& t) { b.push_back(t.item, t.cap, t.val); }

  // ---- SIMD layer ------------------------------------------------------------
  static constexpr int simd_width = simd::natural_width<std::int32_t>;

  void expand_simd(const Block& in, std::size_t begin, std::size_t end,
                   const std::array<Block*, 2>& outs, Result& r, std::uint64_t& leaves) const {
    using B = simd::batch<std::int32_t, simd_width>;
    const std::int32_t* items = in.data<0>();
    const std::int32_t* caps = in.data<1>();
    const std::int32_t* vals = in.data<2>();
    const std::int32_t n_items = inst->num_items();
    std::uint64_t leaf_count = 0;
    std::int64_t best = r.best;
    for (std::size_t i = begin; i < end; i += simd_width) {
      [[maybe_unused]] const B item = B::loadu(items + i);
      const B cap = B::loadu(caps + i);
      const B val = B::loadu(vals + i);
      const std::int32_t item0 = items[i];  // uniform per level
      assert(simd::cmp_eq(item, B::broadcast(item0)) == simd::mask_all<simd_width>);
      if (item0 == n_items) {
        leaf_count += simd_width;
        best = std::max(best, static_cast<std::int64_t>(simd::reduce_max(val)));
        continue;
      }
      const B w = B::broadcast(inst->weight[static_cast<std::size_t>(item0)]);
      const B v = B::broadcast(inst->value[static_cast<std::size_t>(item0)]);
      const B next = B::broadcast(item0 + 1);
      const std::uint32_t fits = simd::cmp_ge(cap, w);
      outs[0]->append_compact(fits, next, cap - w, val + v);
      outs[1]->append_compact(simd::mask_all<simd_width>, next, cap, val);
    }
    r.best = best;
    r.leaves += leaf_count;
    leaves += leaf_count;
  }

  Task root() const { return Task{0, inst->capacity, 0}; }
};

inline KnapsackResult knapsack_sequential(const KnapsackInstance& inst, int item,
                                          std::int32_t cap, std::int32_t val) {
  if (item == inst.num_items()) return {1, val};
  KnapsackResult r{};
  const auto i = static_cast<std::size_t>(item);
  if (cap >= inst.weight[i]) {
    KnapsackProgram::combine(
        r, knapsack_sequential(inst, item + 1, cap - inst.weight[i], val + inst.value[i]));
  }
  KnapsackProgram::combine(r, knapsack_sequential(inst, item + 1, cap, val));
  return r;
}

inline KnapsackResult knapsack_cilk_rec(rt::ForkJoinPool& pool, const KnapsackInstance& inst,
                                        int item, std::int32_t cap, std::int32_t val) {
  if (item == inst.num_items()) return {1, val};
  KnapsackResult incl{};
  KnapsackResult excl{};
  const auto i = static_cast<std::size_t>(item);
  if (cap >= inst.weight[i]) {
    rt::SpawnJob job([&, item, cap, val] {
      incl = knapsack_cilk_rec(pool, inst, item + 1, cap - inst.weight[i], val + inst.value[i]);
    });
    pool.push(job);
    excl = knapsack_cilk_rec(pool, inst, item + 1, cap, val);
    pool.sync(job);
  } else {
    excl = knapsack_cilk_rec(pool, inst, item + 1, cap, val);
  }
  KnapsackProgram::combine(incl, excl);
  return incl;
}

inline KnapsackResult knapsack_cilk(rt::ForkJoinPool& pool, const KnapsackInstance& inst) {
  return pool.run(
      [&pool, &inst] { return knapsack_cilk_rec(pool, inst, 0, inst.capacity, 0); });
}

}  // namespace tb::apps
