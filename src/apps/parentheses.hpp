// parentheses — count balanced parenthesizations (Table 1 row 3).
//
// A task tracks (open, close) = how many '(' and ')' remain to be placed.
// Spawning '(' (slot 0) needs open > 0; spawning ')' (slot 1) needs
// close > open.  Each completed sequence (open == close == 0) is a leaf
// contributing 1, so the result is the Catalan number C(n).  The tree is an
// unbalanced binary tree of 2n+1 levels with variable out-degree 1–2.
#pragma once

#include <array>
#include <bit>
#include <cstdint>

#include "core/program.hpp"
#include "runtime/forkjoin.hpp"
#include "simd/batch.hpp"
#include "simd/soa.hpp"

namespace tb::apps {

struct ParenthesesProgram {
  struct Task {
    std::int32_t open;
    std::int32_t close;
  };
  using Result = std::uint64_t;
  static constexpr int max_children = 2;

  static Result identity() { return 0; }
  static void combine(Result& a, const Result& b) { a += b; }

  bool is_base(const Task& t) const { return t.open == 0 && t.close == 0; }
  void leaf(const Task&, Result& r) const { r += 1; }

  template <class Emit>
  void expand(const Task& t, Emit&& emit) const {
    if (t.open > 0) emit(0, Task{t.open - 1, t.close});
    if (t.close > t.open) emit(1, Task{t.open, t.close - 1});
  }

  // ---- SoA layer -------------------------------------------------------------
  using Block = simd::SoaBlock<std::int32_t, std::int32_t>;
  static Task task_at(const Block& b, std::size_t i) {
    const auto [open, close] = b.row(i);
    return Task{open, close};
  }
  static void append_task(Block& b, const Task& t) { b.push_back(t.open, t.close); }

  // ---- SIMD layer ------------------------------------------------------------
  static constexpr int simd_width = simd::natural_width<std::int32_t>;

  void expand_simd(const Block& in, std::size_t begin, std::size_t end,
                   const std::array<Block*, 2>& outs, Result& r, std::uint64_t& leaves) const {
    using B = simd::batch<std::int32_t, simd_width>;
    const std::int32_t* opens = in.data<0>();
    const std::int32_t* closes = in.data<1>();
    const B one = B::broadcast(1);
    const B zero = B::zero();
    std::uint64_t leaf_count = 0;
    for (std::size_t i = begin; i < end; i += simd_width) {
      const B open = B::loadu(opens + i);
      const B close = B::loadu(closes + i);
      const std::uint32_t base = simd::cmp_eq(open, zero) & simd::cmp_eq(close, zero);
      leaf_count += std::popcount(base);
      const std::uint32_t can_open = simd::cmp_gt(open, zero);
      const std::uint32_t can_close = simd::cmp_gt(close, open) & ~base;
      outs[0]->append_compact(can_open, open - one, close);
      outs[1]->append_compact(can_close, open, close - one);
    }
    r += leaf_count;
    leaves += leaf_count;
  }

  static Task root(int pairs) { return Task{pairs, pairs}; }
};

inline std::uint64_t parentheses_sequential(int open, int close) {
  if (open == 0 && close == 0) return 1;
  std::uint64_t total = 0;
  if (open > 0) total += parentheses_sequential(open - 1, close);
  if (close > open) total += parentheses_sequential(open, close - 1);
  return total;
}

inline std::uint64_t parentheses_cilk_rec(rt::ForkJoinPool& pool, int open, int close) {
  if (open == 0 && close == 0) return 1;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  if (open > 0 && close > open) {
    rt::SpawnJob job(
        [&pool, &a, open, close] { a = parentheses_cilk_rec(pool, open - 1, close); });
    pool.push(job);
    b = parentheses_cilk_rec(pool, open, close - 1);
    pool.sync(job);
  } else if (open > 0) {
    a = parentheses_cilk_rec(pool, open - 1, close);
  } else {
    b = parentheses_cilk_rec(pool, open, close - 1);
  }
  return a + b;
}

inline std::uint64_t parentheses_cilk(rt::ForkJoinPool& pool, int pairs) {
  return pool.run([&pool, pairs] { return parentheses_cilk_rec(pool, pairs, pairs); });
}

}  // namespace tb::apps
