// binomial — Pascal-recursion binomial coefficient (Table 1 row 7).
//
// C(n,k) = C(n-1,k-1) + C(n-1,k); every leaf (k == 0 or k == n) contributes
// 1, so the leaf count is the coefficient itself.  Unbalanced binary tree
// of depth n.
#pragma once

#include <array>
#include <bit>
#include <cstdint>

#include "core/program.hpp"
#include "runtime/forkjoin.hpp"
#include "simd/batch.hpp"
#include "simd/soa.hpp"

namespace tb::apps {

struct BinomialProgram {
  struct Task {
    std::int32_t n;
    std::int32_t k;
  };
  using Result = std::uint64_t;
  static constexpr int max_children = 2;

  static Result identity() { return 0; }
  static void combine(Result& a, const Result& b) { a += b; }

  bool is_base(const Task& t) const { return t.k == 0 || t.k == t.n; }
  void leaf(const Task&, Result& r) const { r += 1; }

  template <class Emit>
  void expand(const Task& t, Emit&& emit) const {
    emit(0, Task{t.n - 1, t.k - 1});
    emit(1, Task{t.n - 1, t.k});
  }

  // ---- SoA layer -------------------------------------------------------------
  using Block = simd::SoaBlock<std::int32_t, std::int32_t>;
  static Task task_at(const Block& b, std::size_t i) {
    const auto [n, k] = b.row(i);
    return Task{n, k};
  }
  static void append_task(Block& b, const Task& t) { b.push_back(t.n, t.k); }

  // ---- SIMD layer ------------------------------------------------------------
  static constexpr int simd_width = simd::natural_width<std::int32_t>;

  void expand_simd(const Block& in, std::size_t begin, std::size_t end,
                   const std::array<Block*, 2>& outs, Result& r, std::uint64_t& leaves) const {
    using B = simd::batch<std::int32_t, simd_width>;
    const std::int32_t* ns = in.data<0>();
    const std::int32_t* ks = in.data<1>();
    const B one = B::broadcast(1);
    const B zero = B::zero();
    std::uint64_t leaf_count = 0;
    for (std::size_t i = begin; i < end; i += simd_width) {
      const B n = B::loadu(ns + i);
      const B k = B::loadu(ks + i);
      const std::uint32_t base = simd::cmp_eq(k, zero) | simd::cmp_eq(k, n);
      leaf_count += std::popcount(base);
      const std::uint32_t rec = base ^ simd::mask_all<simd_width>;
      outs[0]->append_compact(rec, n - one, k - one);
      outs[1]->append_compact(rec, n - one, k);
    }
    r += leaf_count;
    leaves += leaf_count;
  }

  static Task root(int n, int k) { return Task{n, k}; }
};

inline std::uint64_t binomial_sequential(int n, int k) {
  if (k == 0 || k == n) return 1;
  return binomial_sequential(n - 1, k - 1) + binomial_sequential(n - 1, k);
}

inline std::uint64_t binomial_cilk_rec(rt::ForkJoinPool& pool, int n, int k) {
  if (k == 0 || k == n) return 1;
  std::uint64_t a = 0;
  rt::SpawnJob job([&pool, &a, n, k] { a = binomial_cilk_rec(pool, n - 1, k - 1); });
  pool.push(job);
  const std::uint64_t b = binomial_cilk_rec(pool, n - 1, k);
  pool.sync(job);
  return a + b;
}

inline std::uint64_t binomial_cilk(rt::ForkJoinPool& pool, int n, int k) {
  return pool.run([&pool, n, k] { return binomial_cilk_rec(pool, n, k); });
}

}  // namespace tb::apps
