// Point correlation (Table 1 row 10): for every point, count the points
// within radius r — the two-point correlation kernel.
//
// Three nesting levels, as the paper describes: a data-parallel outer loop
// over query points (one root task per query), a task-parallel recursive
// kd-tree descent (children are spawned only when the query ball intersects
// their bounding box), and a data-parallel base case (a dense count over
// the leaf's points, vectorized in the SIMD layer).
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <vector>

#include "apps/common.hpp"
#include "core/program.hpp"
#include "runtime/forkjoin.hpp"
#include "simd/batch.hpp"
#include "simd/soa.hpp"
#include "spatial/bodies.hpp"
#include "spatial/kdtree.hpp"

namespace tb::apps {

struct PointCorrProgram {
  struct Task {
    std::int32_t query;
    std::int32_t node;
  };
  using Result = std::uint64_t;  // total in-radius count over all queries
  static constexpr int max_children = 2;

  const spatial::Bodies* points = nullptr;
  const spatial::KdTree* tree = nullptr;
  float rad2 = 0.01f;

  static Result identity() { return 0; }
  static void combine(Result& a, const Result& b) { a += b; }

  bool is_base(const Task& t) const { return tree->is_leaf(t.node); }

  void leaf(const Task& t, Result& r) const {
    const auto q = static_cast<std::size_t>(t.query);
    const auto n = static_cast<std::size_t>(t.node);
    const float qx = points->x[q], qy = points->y[q], qz = points->z[q];
    std::uint64_t count = 0;
    for (std::int32_t j = tree->leaf_begin[n]; j < tree->leaf_end[n]; ++j) {
      const auto jj = static_cast<std::size_t>(j);
      const float dx = tree->px[jj] - qx;
      const float dy = tree->py[jj] - qy;
      const float dz = tree->pz[jj] - qz;
      count += (dx * dx + dy * dy + dz * dz <= rad2) ? 1u : 0u;
    }
    r += count;
  }

  template <class Emit>
  void expand(const Task& t, Emit&& emit) const {
    const auto q = static_cast<std::size_t>(t.query);
    const float qx = points->x[q], qy = points->y[q], qz = points->z[q];
    const auto n = static_cast<std::size_t>(t.node);
    const std::int32_t kids[2] = {tree->left[n], tree->right[n]};
    for (int s = 0; s < 2; ++s) {
      if (kids[s] != spatial::KdTree::kNoChild &&
          tree->box_dist2(kids[s], qx, qy, qz) <= rad2) {
        emit(s, Task{t.query, kids[s]});
      }
    }
  }

  // ---- SoA layer -------------------------------------------------------------
  using Block = simd::SoaBlock<std::int32_t, std::int32_t>;
  static Task task_at(const Block& b, std::size_t i) {
    const auto [q, n] = b.row(i);
    return Task{q, n};
  }
  static void append_task(Block& b, const Task& t) { b.push_back(t.query, t.node); }

  // ---- SIMD layer ------------------------------------------------------------
  static constexpr int simd_width = simd::natural_width<float>;

  using BF = simd::batch<float, simd_width>;
  using BI = simd::batch<std::int32_t, simd_width>;

  // Vectorized box–ball overlap test for a vector of node ids.
  std::uint32_t overlap_mask(const BI& node, const BF& qx, const BF& qy, const BF& qz) const {
    const BF zero = BF::zero();
    const BF lox = simd::gather(tree->min_x.data(), node) - qx;
    const BF hix = qx - simd::gather(tree->max_x.data(), node);
    const BF loy = simd::gather(tree->min_y.data(), node) - qy;
    const BF hiy = qy - simd::gather(tree->max_y.data(), node);
    const BF loz = simd::gather(tree->min_z.data(), node) - qz;
    const BF hiz = qz - simd::gather(tree->max_z.data(), node);
    const BF dx = BF::max(BF::max(lox, hix), zero);
    const BF dy = BF::max(BF::max(loy, hiy), zero);
    const BF dz = BF::max(BF::max(loz, hiz), zero);
    const BF d2 = dx * dx + dy * dy + dz * dz;
    return simd::cmp_le(d2, BF::broadcast(rad2));
  }

  // Dense vectorized count over a leaf's contiguous points.
  std::uint64_t leaf_count(std::int32_t query, std::int32_t node) const {
    const auto q = static_cast<std::size_t>(query);
    const auto n = static_cast<std::size_t>(node);
    const BF qx = BF::broadcast(points->x[q]);
    const BF qy = BF::broadcast(points->y[q]);
    const BF qz = BF::broadcast(points->z[q]);
    const BF r2 = BF::broadcast(rad2);
    const std::int32_t b = tree->leaf_begin[n];
    const std::int32_t e = tree->leaf_end[n];
    std::uint64_t count = 0;
    std::int32_t j = b;
    for (; j + simd_width <= e; j += simd_width) {
      const auto jj = static_cast<std::size_t>(j);
      const BF dx = BF::loadu(tree->px.data() + jj) - qx;
      const BF dy = BF::loadu(tree->py.data() + jj) - qy;
      const BF dz = BF::loadu(tree->pz.data() + jj) - qz;
      count += std::popcount(simd::cmp_le(dx * dx + dy * dy + dz * dz, r2));
    }
    for (; j < e; ++j) {
      const auto jj = static_cast<std::size_t>(j);
      const float dx = tree->px[jj] - points->x[q];
      const float dy = tree->py[jj] - points->y[q];
      const float dz = tree->pz[jj] - points->z[q];
      count += (dx * dx + dy * dy + dz * dz <= rad2) ? 1u : 0u;
    }
    return count;
  }

  void expand_simd(const Block& in, std::size_t begin, std::size_t end,
                   const std::array<Block*, 2>& outs, Result& r, std::uint64_t& leaves) const {
    const std::int32_t* query_p = in.data<0>();
    const std::int32_t* node_p = in.data<1>();
    constexpr std::uint32_t full = simd::mask_all<simd_width>;
    std::uint64_t count = 0;
    std::uint64_t leaf_tasks = 0;
    for (std::size_t i = begin; i < end; i += simd_width) {
      const BI query = BI::loadu(query_p + i);
      const BI node = BI::loadu(node_p + i);
      const BF qx = simd::gather(points->x.data(), query);
      const BF qy = simd::gather(points->y.data(), query);
      const BF qz = simd::gather(points->z.data(), query);
      const BI lb = simd::gather(tree->leaf_begin.data(), node);
      const std::uint32_t leafy = simd::cmp_ge(lb, BI::zero()) & full;
      leaf_tasks += std::popcount(leafy);
      std::uint32_t mset = leafy;
      while (mset != 0) {
        const int l = std::countr_zero(mset);
        mset &= mset - 1;
        count += leaf_count(query[l], node[l]);
      }
      const std::uint32_t rec = ~leafy & full;
      if (rec == 0) continue;
      const BI lkid = simd::gather(tree->left.data(), node);
      const BI rkid = simd::gather(tree->right.data(), node);
      const std::uint32_t lmask = rec & overlap_mask(lkid, qx, qy, qz);
      const std::uint32_t rmask = rec & overlap_mask(rkid, qx, qy, qz);
      if (lmask != 0) outs[0]->append_compact(lmask, query, lkid);
      if (rmask != 0) outs[1]->append_compact(rmask, query, rkid);
    }
    r += count;
    leaves += leaf_tasks;
  }

  // One root task per query point (§5 data-parallel outer loop).
  std::vector<Task> roots() const {
    std::vector<Task> out;
    out.reserve(points->size());
    for (std::size_t q = 0; q < points->size(); ++q) {
      out.push_back(Task{static_cast<std::int32_t>(q), tree->root});
    }
    return out;
  }
};

inline std::uint64_t pointcorr_sequential_one(const PointCorrProgram& prog,
                                              const PointCorrProgram::Task& t) {
  if (prog.is_base(t)) {
    std::uint64_t r = 0;
    prog.leaf(t, r);
    return r;
  }
  std::uint64_t total = 0;
  prog.expand(t, [&](int, const PointCorrProgram::Task& c) {
    total += pointcorr_sequential_one(prog, c);
  });
  return total;
}

inline std::uint64_t pointcorr_sequential(const PointCorrProgram& prog) {
  std::uint64_t total = 0;
  for (const auto& t : prog.roots()) total += pointcorr_sequential_one(prog, t);
  return total;
}

// Brute-force oracle.
inline std::uint64_t pointcorr_bruteforce(const spatial::Bodies& pts, float rad2) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = 0; j < pts.size(); ++j) {
      const float dx = pts.x[i] - pts.x[j];
      const float dy = pts.y[i] - pts.y[j];
      const float dz = pts.z[i] - pts.z[j];
      total += (dx * dx + dy * dy + dz * dz <= rad2) ? 1u : 0u;
    }
  }
  return total;
}

inline std::uint64_t pointcorr_cilk_rec(rt::ForkJoinPool& pool, const PointCorrProgram& prog,
                                        const PointCorrProgram::Task& t) {
  if (prog.is_base(t)) {
    std::uint64_t r = 0;
    prog.leaf(t, r);
    return r;
  }
  std::array<PointCorrProgram::Task, 2> kids;
  int count = 0;
  prog.expand(t, [&](int, const PointCorrProgram::Task& c) {
    kids[static_cast<std::size_t>(count++)] = c;
  });
  return spawn_map_reduce<std::uint64_t>(
      pool, count,
      [&pool, &prog, &kids](int i) {
        return pointcorr_cilk_rec(pool, prog, kids[static_cast<std::size_t>(i)]);
      },
      0ull, [](std::uint64_t& a, std::uint64_t b) { a += b; });
}

inline std::uint64_t pointcorr_cilk(rt::ForkJoinPool& pool, const PointCorrProgram& prog) {
  const auto roots = prog.roots();
  return pool.run([&] {
    return spawn_map_reduce<std::uint64_t>(
        pool, static_cast<int>(roots.size()),
        [&pool, &prog, &roots](int i) {
          return pointcorr_cilk_rec(pool, prog, roots[static_cast<std::size_t>(i)]);
        },
        0ull, [](std::uint64_t& a, std::uint64_t b) { a += b; });
  });
}

}  // namespace tb::apps
