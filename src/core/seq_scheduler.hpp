// Sequential (single-core, Q-lane) task-block schedulers — §3.1–§3.3.
//
// One driver implements the three policies of the paper:
//
//   Basic   — BFE until t_dfe, then pure DFE (Theorem 1)
//   Reexp   — Basic + switch back to BFE below t_bfe (Ren et al.; Theorem 2)
//   Restart — Basic + park blocks below t_restart and scan the deque
//             bottom-up for denser same-level work (Theorems 3)
//
// The scheduler is layout-agnostic: `Exec` supplies the block type and the
// block-expansion loops (AosExec / SoaExec / SimdExec from program.hpp).
#pragma once

#include <array>
#include <cstddef>
#include <utility>

#include "core/block_pool.hpp"
#include "core/leveled_deque.hpp"
#include "core/program.hpp"
#include "core/stats.hpp"
#include "core/thresholds.hpp"

namespace tb::core {

enum class SeqPolicy { Basic, Reexp, Restart };

inline const char* to_string(SeqPolicy p) {
  switch (p) {
    case SeqPolicy::Basic: return "basic";
    case SeqPolicy::Reexp: return "reexp";
    case SeqPolicy::Restart: return "restart";
  }
  return "?";
}

template <class Exec>
class SeqScheduler {
public:
  using Program = typename Exec::Program;
  using Block = typename Exec::Block;
  using Result = typename Program::Result;
  static constexpr std::size_t C = static_cast<std::size_t>(Exec::out_degree);

  SeqScheduler(const Program& p, Thresholds th, SeqPolicy policy)
      : prog_(p), th_(th.clamped()), policy_(policy) {}

  // Executes every task reachable from `roots` (tasks at level 0, or at
  // roots.level() for strip-mined outer loops) and returns the reduced
  // result.  `stats` may be null.
  Result run(Block roots, ExecStats* stats = nullptr) {
    ExecStats local;
    ExecStats& st = stats ? *stats : local;
    Result r = Program::identity();

    Block cur = std::move(roots);
    bool bfe_mode = true;   // start in breadth-first expansion
    bool growing = true;    // keep BFE until t_dfe is first reached

    while (true) {
      if (cur.empty()) {
        if (!pick_next(cur, bfe_mode, growing, st)) break;
      }
      st.note_space(cur.size() + deque_.total_tasks());

      if (bfe_mode) {
        bfe_step(cur, r, st);
        if (cur.size() >= th_.t_dfe) {
          bfe_mode = false;
          growing = false;
        } else if (!growing && policy_ == SeqPolicy::Restart) {
          // §3.3: a failed scan triggers exactly one BFE of the top block;
          // afterwards the scheduler re-evaluates the restart condition.
          bfe_mode = false;
        }
        continue;
      }

      // DFE mode.
      if (policy_ == SeqPolicy::Reexp && cur.size() < th_.t_bfe) {
        bfe_mode = true;
        growing = true;  // re-expansion grows the block back to t_dfe
        continue;
      }
      if (policy_ == SeqPolicy::Restart && cur.size() < th_.t_restart) {
        st.on_action(Action::Restart);
        deque_.push_merge(std::move(cur));
        if (!pick_next(cur, bfe_mode, growing, st)) break;
        continue;
      }
      dfe_step(cur, r, st);
    }
    return r;
  }

  const Thresholds& thresholds() const { return th_; }

private:
  void bfe_step(Block& cur, Result& r, ExecStats& st) {
    Block next = pool_.get(cur.level() + 1);
    std::array<Block*, C> outs;
    outs.fill(&next);
    Exec::expand_into(prog_, cur, 0, cur.size(), outs, r, st.leaves);
    st.on_block_executed(cur.size(), th_.q, th_.t_restart);
    st.on_action(Action::BFE);
    pool_.put(std::move(cur));
    cur = std::move(next);
    if (policy_ == SeqPolicy::Restart && !cur.empty()) {
      // Merge with any block parked at the level BFE just reached.
      deque_.absorb_level(cur.level(), cur);
    }
  }

  void dfe_step(Block& cur, Result& r, ExecStats& st) {
    std::array<Block, C> kids;
    std::array<Block*, C> outs;
    for (std::size_t s = 0; s < C; ++s) {
      kids[s] = pool_.get(cur.level() + 1);
      outs[s] = &kids[s];
    }
    Exec::expand_into(prog_, cur, 0, cur.size(), outs, r, st.leaves);
    st.on_block_executed(cur.size(), th_.q, th_.t_restart);
    st.on_action(Action::DFE);
    pool_.put(std::move(cur));
    // Point blocking: push right siblings (deepest-executed-first order),
    // continue with the leftmost child.
    for (std::size_t s = C; s-- > 1;) {
      if (kids[s].empty()) {
        pool_.put(std::move(kids[s]));
      } else if (policy_ == SeqPolicy::Restart) {
        deque_.push_merge(std::move(kids[s]));
      } else {
        deque_.push(std::move(kids[s]));
      }
    }
    cur = std::move(kids[0]);
  }

  bool pick_next(Block& cur, bool& bfe_mode, bool& growing, ExecStats& st) {
    if (policy_ == SeqPolicy::Restart) {
      switch (deque_.restart_scan(th_.t_restart, cur, 2 * th_.t_dfe)) {
        case LeveledDeque<Block>::Scan::Empty: return false;
        case LeveledDeque<Block>::Scan::Dense:
          bfe_mode = false;
          return true;
        case LeveledDeque<Block>::Scan::Top:
          bfe_mode = true;  // single-shot BFE (growing stays false)
          return true;
      }
      return false;
    }
    if (!deque_.pop_deepest(cur)) return false;
    bfe_mode = false;
    (void)growing;
    (void)st;
    return true;
  }

  const Program& prog_;
  Thresholds th_;
  SeqPolicy policy_;
  LeveledDeque<Block> deque_;
  BlockPool<Block> pool_;
};

}  // namespace tb::core
