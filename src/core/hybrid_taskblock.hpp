// Hybrid path for the task-block apps (uts, nqueens, …): strip-mined root
// blocks on the work-stealing pool.
//
// The traversal workloads get their hybrid executor from a natural
// data-parallel query range (runtime/hybrid.hpp).  The task-parallel apps
// have no such range — their data-parallelism lives in the root task set —
// so this header manufactures one: the roots (optionally amplified by a
// breadth-first frontier expansion, so even a single-root program like
// nqueens yields enough independent slices) are strip-mined into ranges
// distributed by rt::hybrid_for, and each range runs through the sequential
// task-block scheduler (core/driver.hpp run_seq) on the worker it lands on.
// The SIMD dimension is the app's vectorized expand kernel (the SimdExec
// layer); the multicore dimension is the pool — cores×lanes for the
// task-block half of the suite.
//
// Results combine with the program's own identity/combine, per slot first
// and then in slot order, so any program whose combine is commutative and
// associative (every Table 1 app: leaf counts, best-value reductions) gets
// the same answer as the sequential scheduler regardless of how ranges were
// split or stolen.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/driver.hpp"
#include "core/seq_scheduler.hpp"
#include "core/stats.hpp"
#include "core/thresholds.hpp"
#include "runtime/cacheline.hpp"
#include "runtime/hybrid.hpp"

namespace tb::core {

// Breadth-first frontier expansion: replaces `roots` by a deeper level of
// the computation tree with at least `min_tasks` tasks (or the deepest
// level reachable, if the tree runs out first).  Leaves consumed on the way
// down contribute to `partial` through the program's own leaf/combine, so
//   result(roots) == partial + result(returned frontier).
// Fully deterministic: levels expand whole, in task order.
template <TaskProgram P>
std::vector<typename P::Task> expand_frontier(const P& p,
                                              std::span<const typename P::Task> roots,
                                              std::size_t min_tasks,
                                              typename P::Result& partial) {
  std::vector<typename P::Task> cur(roots.begin(), roots.end());
  while (cur.size() < min_tasks) {
    std::vector<typename P::Task> next;
    next.reserve(cur.size() * 2);
    typename P::Result level = P::identity();
    for (const typename P::Task& t : cur) {
      if (p.is_base(t)) {
        p.leaf(t, level);
      } else {
        p.expand(t, [&](int, const typename P::Task& c) { next.push_back(c); });
      }
    }
    P::combine(partial, level);
    if (next.empty()) return next;  // tree exhausted; everything is in partial
    cur = std::move(next);
  }
  return cur;
}

// Runs the task-block program over `roots` as a hybrid cores×lanes
// execution: rt::hybrid_for distributes root-task ranges (lazy splitting or
// the deterministic static partition, per `opt`), and each range runs the
// sequential scheduler `Exec` under `policy`/`th` on its worker.  Per-slot
// ExecStats surface through `stats` exactly as in the traversal hybrid.
// HybridOptions::t_reexp/donation are traversal-engine concepts and are
// ignored here; grain/static_partition apply as usual.
template <class Exec>
typename Exec::Program::Result hybrid_taskblock(
    rt::ForkJoinPool& pool, const typename Exec::Program& p,
    std::span<const typename Exec::Program::Task> roots, SeqPolicy policy,
    const Thresholds& th, const rt::HybridOptions& opt = {},
    PerWorkerStats* stats = nullptr) {
  using P = typename Exec::Program;
  const int slots = rt::hybrid_slots(pool);
  PerWorkerStats local;
  PerWorkerStats& pw = stats ? *stats : local;
  pw.reset(static_cast<std::size_t>(slots));
  std::vector<rt::Padded<typename P::Result>> parts(static_cast<std::size_t>(slots));
  for (auto& part : parts) part.value = P::identity();
  rt::hybrid_for(pool, static_cast<std::int32_t>(roots.size()), opt,
                 [&](std::int32_t b, std::int32_t e, int slot) {
                   const auto s = static_cast<std::size_t>(slot);
                   const auto r = run_seq<Exec>(
                       p, roots.subspan(static_cast<std::size_t>(b),
                                        static_cast<std::size_t>(e - b)),
                       policy, th, &pw.workers[s]);
                   P::combine(parts[s].value, r);
                 });
  typename P::Result total = P::identity();
  for (const auto& part : parts) P::combine(total, part.value);
  return total;
}

// Convenience wrapper: amplify the roots to ≥ min_roots tasks first (so a
// single-root program still yields one range per worker several times
// over), then run the hybrid.  min_roots = 0 picks ~8 ranges per worker at
// the executor's default grain.
template <class Exec>
typename Exec::Program::Result hybrid_taskblock_amplified(
    rt::ForkJoinPool& pool, const typename Exec::Program& p,
    std::span<const typename Exec::Program::Task> roots, SeqPolicy policy,
    const Thresholds& th, const rt::HybridOptions& opt = {},
    PerWorkerStats* stats = nullptr, std::size_t min_roots = 0) {
  using P = typename Exec::Program;
  if (min_roots == 0) {
    min_roots = static_cast<std::size_t>(rt::hybrid_slots(pool)) * 8;
  }
  typename P::Result partial = P::identity();
  const auto frontier = expand_frontier(p, roots, min_roots, partial);
  typename P::Result rest =
      hybrid_taskblock<Exec>(pool, p, frontier, policy, th, opt, stats);
  P::combine(partial, rest);
  return partial;
}

}  // namespace tb::core
