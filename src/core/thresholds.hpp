// Scheduler thresholds (§3.5).
//
//   q          — SIMD lanes per core (Q); also the step-accounting width.
//   t_dfe = kQ — switch BFE→DFE when a block reaches this size (caps block
//                size: a block never exceeds 2·t_dfe after one BFE).
//   t_bfe      — re-expansion: switch DFE→BFE below this size (t_bfe ≤ t_dfe).
//   t_restart  — restart: park the block and scan for denser work below
//                this size (also the partial-superstep threshold of §4.2).
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>

namespace tb::core {

struct Thresholds {
  int q = 8;
  std::size_t t_dfe = 1u << 12;
  std::size_t t_bfe = 1u << 12;
  std::size_t t_restart = 1u << 8;

  // §3.5 recommends recovery thresholds between Q and t_dfe, but block
  // sizes below Q stay legal (Fig. 4 sweeps from 2^0): only the ordering
  // 1 <= t_bfe, t_restart <= t_dfe is enforced.
  Thresholds clamped() const {
    Thresholds t = *this;
    t.q = std::max(1, t.q);
    t.t_dfe = std::max<std::size_t>(t.t_dfe, 1);
    t.t_bfe = std::clamp<std::size_t>(t.t_bfe, 1, t.t_dfe);
    t.t_restart = std::clamp<std::size_t>(t.t_restart, 1, t.t_dfe);
    return t;
  }

  // Convenience: block size 2^log_bs with recovery thresholds pinned to the
  // block size (k1 ≈ k, the paper's recommended setting) and a restart
  // threshold `rb` (defaults to block size / 16, floored at 1 so degenerate
  // block sizes below 16 stay legal).
  static Thresholds for_block_size(int q, std::size_t block, std::size_t restart = 0) {
    Thresholds t;
    t.q = q;
    t.t_dfe = block;
    t.t_bfe = block;
    t.t_restart = restart == 0 ? std::max<std::size_t>(block / 16, 1) : restart;
    return t.clamped();
  }
};

}  // namespace tb::core
