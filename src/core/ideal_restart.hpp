// "Ideal" parallel restart scheduler — Fig. 3b and the §3.4 steal protocol.
//
// The paper formulates this strategy (per-worker leveled deques of task
// blocks and restart blocks, block stealing with bounded BFE regrowth) but
// implements only the simplified Cilk mapping, noting that exposing both
// the continuation and the restart blocks for stealing "does not naturally
// map to Cilk-like programming models".  Because our runtime is not bound
// to spawn/sync, we can implement the ideal strategy directly — this is the
// extension scheduler whose space bound is h·k·Q per worker (Lemma 8)
// rather than the simplified version's h²·t_restart.
//
// Each worker owns a leveled deque protected by a small mutex (blocks are
// coarse-grained, so the lock is not a throughput concern); thieves lock
// the victim's deque and take its top (shallowest) block, per §3.4:
//   - a stolen block with >= t_restart tasks is executed depth-first;
//   - a sparse stolen block is regrown with a bounded number of BFE actions,
//     then re-scanned, else the worker steals again.
// Termination uses a global outstanding-task count.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "core/block_pool.hpp"
#include "core/leveled_deque.hpp"
#include "core/program.hpp"
#include "core/stats.hpp"
#include "core/thresholds.hpp"
#include "runtime/xoshiro.hpp"

namespace tb::core {

template <class Exec>
class IdealRestart {
public:
  using Program = typename Exec::Program;
  using Block = typename Exec::Block;
  using Result = typename Program::Result;
  static constexpr std::size_t C = static_cast<std::size_t>(Exec::out_degree);

  IdealRestart(const Program& p, Thresholds th, int workers, int bfe_after_steal = 2)
      : prog_(p), th_(th.clamped()), workers_(static_cast<std::size_t>(std::max(1, workers))),
        bfe_after_steal_(bfe_after_steal) {}

  Result run(Block roots, ExecStats* stats = nullptr) {
    const std::size_t p = workers_;
    states_.clear();
    states_.reserve(p);
    for (std::size_t w = 0; w < p; ++w) states_.push_back(std::make_unique<WorkerState>());
    outstanding_.store(static_cast<std::int64_t>(roots.size()), std::memory_order_relaxed);

    {
      std::lock_guard lock(states_[0]->mu);
      states_[0]->deque.push_merge(std::move(roots));
    }
    std::vector<std::thread> threads;
    threads.reserve(p - 1);
    for (std::size_t w = 1; w < p; ++w) {
      threads.emplace_back([this, w] { worker(static_cast<int>(w)); });
    }
    worker(0);
    for (auto& t : threads) t.join();

    Result total = Program::identity();
    ExecStats merged;
    for (auto& s : states_) {
      Program::combine(total, s->result);
      merged.merge(s->stats);
    }
    if (stats) *stats = merged;
    return total;
  }

private:
  struct WorkerState {
    std::mutex mu;  // guards deque
    LeveledDeque<Block> deque;
    Result result = Program::identity();
    ExecStats stats;
    rt::Xoshiro256 rng;
  };

  void worker(int id) {
    WorkerState& self = *states_[static_cast<std::size_t>(id)];
    self.rng = rt::Xoshiro256(0x51ede5 + 0x9e37u * static_cast<unsigned>(id));
    Block cur;
    bool has_cur = false;
    int bfe_budget = 0;
    BlockPool<Block> pool;

    while (outstanding_.load(std::memory_order_acquire) > 0) {
      if (!has_cur) {
        // Scan own deque for a dense merged level (restart action).
        {
          std::lock_guard lock(self.mu);
          if (self.deque.restart_scan(th_.t_restart, cur, 2 * th_.t_dfe) ==
              LeveledDeque<Block>::Scan::Dense) {
            has_cur = true;
            bfe_budget = 0;
          } else if (!cur.empty()) {
            // Scan handed back a sparse top block: put it back; stealing
            // decides what to do next (§3.4 — the parallel scheduler steals
            // instead of BFE-ing its own sparse top).
            self.deque.push_merge(std::move(cur));
          }
        }
        if (!has_cur) {
          self.stats.on_action(Action::Steal);
          if (!steal(self, cur)) {
            std::this_thread::yield();
            continue;
          }
          has_cur = true;
          bfe_budget = (cur.size() < th_.t_restart) ? bfe_after_steal_ : 0;
        }
      }

      if (bfe_budget > 0 && cur.size() < th_.t_restart) {
        // Regrow a sparse stolen block with a bounded number of BFEs.
        bfe_step(self, cur, pool);
        --bfe_budget;
        if (cur.empty()) has_cur = false;
        continue;
      }
      if (cur.size() < th_.t_restart) {
        // Still sparse: park and go find denser work.
        self.stats.on_action(Action::Restart);
        std::lock_guard lock(self.mu);
        self.deque.push_merge(std::move(cur));
        has_cur = false;
        continue;
      }
      dfe_step(self, cur, pool);
      if (cur.empty()) has_cur = false;
    }
  }

  void bfe_step(WorkerState& self, Block& cur, BlockPool<Block>& pool) {
    Block next = pool.get(cur.level() + 1);
    std::array<Block*, C> outs;
    outs.fill(&next);
    const std::size_t executed = cur.size();
    std::uint64_t leaves_before = self.stats.leaves;
    Exec::expand_into(prog_, cur, 0, cur.size(), outs, self.result, self.stats.leaves);
    self.stats.on_block_executed(executed, th_.q, th_.t_restart);
    self.stats.on_action(Action::BFE);
    retire(executed, self.stats.leaves - leaves_before, next.size());
    pool.put(std::move(cur));
    cur = std::move(next);
  }

  void dfe_step(WorkerState& self, Block& cur, BlockPool<Block>& pool) {
    std::array<Block, C> kids;
    std::array<Block*, C> outs;
    for (std::size_t s = 0; s < C; ++s) {
      kids[s] = pool.get(cur.level() + 1);
      outs[s] = &kids[s];
    }
    const std::size_t executed = cur.size();
    std::uint64_t leaves_before = self.stats.leaves;
    Exec::expand_into(prog_, cur, 0, cur.size(), outs, self.result, self.stats.leaves);
    self.stats.on_block_executed(executed, th_.q, th_.t_restart);
    self.stats.on_action(Action::DFE);
    std::size_t spawned = 0;
    {
      std::lock_guard lock(self.mu);
      for (std::size_t s = C; s-- > 1;) {
        spawned += kids[s].size();
        if (kids[s].empty()) {
          pool.put(std::move(kids[s]));
        } else {
          self.deque.push_merge(std::move(kids[s]));
        }
      }
    }
    spawned += kids[0].size();
    retire(executed, self.stats.leaves - leaves_before, spawned);
    pool.put(std::move(cur));
    cur = std::move(kids[0]);
  }

  // Account for `executed` finished tasks producing `spawned` new ones.
  void retire(std::size_t executed, std::uint64_t /*leaves*/, std::size_t spawned) {
    const auto delta =
        static_cast<std::int64_t>(spawned) - static_cast<std::int64_t>(executed);
    outstanding_.fetch_add(delta, std::memory_order_acq_rel);
  }

  // §3.4 steal: random victim (possibly self — that covers the sequential
  // policy's BFE-at-top case), take the top block of its deque.
  bool steal(WorkerState& self, Block& out) {
    const auto victim_id = self.rng.below(static_cast<std::uint32_t>(states_.size()));
    WorkerState& victim = *states_[victim_id];
    std::lock_guard lock(victim.mu);
    return victim.deque.steal_shallowest(out, 2 * th_.t_dfe);
  }

  const Program& prog_;
  Thresholds th_;
  std::size_t workers_;
  int bfe_after_steal_;
  std::vector<std::unique_ptr<WorkerState>> states_;
  std::atomic<std::int64_t> outstanding_{0};
};

// Convenience wrapper mirroring run_seq / run_par_* in driver.hpp.
template <class Exec>
typename Exec::Program::Result run_ideal_restart(
    const typename Exec::Program& p, std::span<const typename Exec::Program::Task> roots,
    const Thresholds& th, int workers, ExecStats* stats = nullptr) {
  typename Exec::Block block;
  block.set_level(0);
  block.reserve(roots.size());
  for (const auto& t : roots) Exec::append_task(block, t);
  IdealRestart<Exec> sched(p, th, workers);
  return sched.run(std::move(block), stats);
}

}  // namespace tb::core
