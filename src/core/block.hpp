// Array-of-structures task block.
//
// The baseline blocked layout (Table 2's "Block" rung): tasks stored as
// whole structs in one contiguous array.  Interface-compatible with
// simd::SoaBlock so the schedulers are layout-agnostic.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

#include "simd/aligned.hpp"

namespace tb::core {

template <class TaskT>
class AosBlock {
public:
  using task_type = TaskT;

  AosBlock() = default;

  std::size_t size() const { return tasks_.size(); }
  bool empty() const { return tasks_.empty(); }

  int level() const { return level_; }
  void set_level(int lvl) { level_ = lvl; }

  void clear() { tasks_.clear(); }
  void reserve(std::size_t cap) { tasks_.reserve(cap); }
  void ensure_slack(std::size_t n) { tasks_.reserve(tasks_.size() + n); }

  void push_back(const TaskT& t) { tasks_.push_back(t); }

  const TaskT& operator[](std::size_t i) const { return tasks_[i]; }
  TaskT& operator[](std::size_t i) { return tasks_[i]; }

  void append(const AosBlock& o) {
    tasks_.insert(tasks_.end(), o.tasks_.begin(), o.tasks_.end());
  }
  void append(AosBlock&& o) {
    if (tasks_.empty()) {
      const int lvl = level_;
      tasks_ = std::move(o.tasks_);
      level_ = lvl;
    } else {
      append(static_cast<const AosBlock&>(o));
    }
    o.tasks_.clear();
  }

  // Move up to `max_n` tasks from the back of `src` onto this block.
  std::size_t take_from(AosBlock& src, std::size_t max_n) {
    const std::size_t n = std::min(max_n, src.tasks_.size());
    tasks_.insert(tasks_.end(), src.tasks_.end() - static_cast<std::ptrdiff_t>(n),
                  src.tasks_.end());
    src.tasks_.resize(src.tasks_.size() - n);
    return n;
  }

  void swap(AosBlock& o) noexcept {
    tasks_.swap(o.tasks_);
    std::swap(level_, o.level_);
  }

private:
  simd::aligned_vector<TaskT> tasks_;
  int level_ = 0;
};

}  // namespace tb::core
