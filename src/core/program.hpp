// Program model and execution layers.
//
// A *program* describes one recursive method in the paper's specification
// language (§2.1/§5.2): a task either executes a base case (reducing into a
// monoid result) or expands into up to `max_children` child tasks.  The
// scheduler is written against task blocks only; the three execution layers
// below turn "execute this block" into actual loops:
//
//   AosExec  — scalar loop over an array-of-structs block (Table 2 "Block")
//   SoaExec  — scalar loop over a structure-of-arrays block ("SOA";
//              auto-vectorizer candidate)
//   SimdExec — the program's hand-vectorized kernel over SoA columns with
//              masked execution and streaming compaction ("SIMD")
//
// Children are emitted through a slot index in [0, max_children): BFE maps
// every slot to one next-level block, DFE maps slot s to child block s
// (point blocking, Fig. 1c).
#pragma once

#include <array>
#include <concepts>
#include <cstdint>
#include <type_traits>

#include "core/block.hpp"

namespace tb::core {

namespace detail {
template <class Task>
struct NullEmit {
  void operator()(int, const Task&) const {}
};
}  // namespace detail

// ---- concepts ----------------------------------------------------------------

template <class P>
concept TaskProgram = requires(const P p, const typename P::Task& t, typename P::Result& r) {
  typename P::Task;
  typename P::Result;
  { P::max_children } -> std::convertible_to<int>;
  { P::identity() } -> std::same_as<typename P::Result>;
  { p.is_base(t) } -> std::convertible_to<bool>;
  p.leaf(t, r);
  p.expand(t, detail::NullEmit<typename P::Task>{});
};

// A program that additionally defines a structure-of-arrays block type plus
// row<->task conversion.
template <class P>
concept SoaProgram = TaskProgram<P> && requires(const typename P::Block& b, std::size_t i,
                                                typename P::Block& mb,
                                                const typename P::Task& t) {
  typename P::Block;
  { P::task_at(b, i) } -> std::same_as<typename P::Task>;
  P::append_task(mb, t);
};

// A SoA program with a hand-written vector kernel.
template <class P>
concept SimdProgram =
    SoaProgram<P> && requires { { P::simd_width } -> std::convertible_to<int>; };

// ---- execution layers ---------------------------------------------------------

template <TaskProgram P>
struct AosExec {
  using Program = P;
  using Task = typename P::Task;
  using Result = typename P::Result;
  using Block = AosBlock<Task>;
  static constexpr int out_degree = P::max_children;
  static constexpr const char* name = "block";

  static void append_task(Block& b, const Task& t) { b.push_back(t); }

  static void expand_into(const P& p, const Block& in, std::size_t begin, std::size_t end,
                          const std::array<Block*, static_cast<std::size_t>(out_degree)>& outs,
                          Result& r, std::uint64_t& leaves) {
    for (std::size_t i = begin; i < end; ++i) {
      const Task& t = in[i];
      if (p.is_base(t)) {
        p.leaf(t, r);
        ++leaves;
      } else {
        p.expand(t, [&](int slot, const Task& c) {
          outs[static_cast<std::size_t>(slot)]->push_back(c);
        });
      }
    }
  }
};

template <SoaProgram P>
struct SoaExec {
  using Program = P;
  using Task = typename P::Task;
  using Result = typename P::Result;
  using Block = typename P::Block;
  static constexpr int out_degree = P::max_children;
  static constexpr const char* name = "soa";

  static void append_task(Block& b, const Task& t) { P::append_task(b, t); }

  static void expand_into(const P& p, const Block& in, std::size_t begin, std::size_t end,
                          const std::array<Block*, static_cast<std::size_t>(out_degree)>& outs,
                          Result& r, std::uint64_t& leaves) {
    for (std::size_t i = begin; i < end; ++i) {
      const Task t = P::task_at(in, i);
      if (p.is_base(t)) {
        p.leaf(t, r);
        ++leaves;
      } else {
        p.expand(t, [&](int slot, const Task& c) {
          P::append_task(*outs[static_cast<std::size_t>(slot)], c);
        });
      }
    }
  }
};

template <SimdProgram P>
struct SimdExec {
  using Program = P;
  using Task = typename P::Task;
  using Result = typename P::Result;
  using Block = typename P::Block;
  static constexpr int out_degree = P::max_children;
  static constexpr int width = P::simd_width;
  static constexpr const char* name = "simd";

  static void append_task(Block& b, const Task& t) { P::append_task(b, t); }

  static void expand_into(const P& p, const Block& in, std::size_t begin, std::size_t end,
                          const std::array<Block*, static_cast<std::size_t>(out_degree)>& outs,
                          Result& r, std::uint64_t& leaves) {
    const std::size_t n_vec =
        begin + (end - begin) / static_cast<std::size_t>(width) * static_cast<std::size_t>(width);
    if (n_vec > begin) p.expand_simd(in, begin, n_vec, outs, r, leaves);
    // Remainder lanes take the scalar SoA path.
    SoaExec<P>::expand_into(p, in, n_vec, end, outs, r, leaves);
  }
};

// Convenience: whole-block expansion.
template <class Exec, class P>
inline void expand_block(const P& p, const typename Exec::Block& in,
                         const std::array<typename Exec::Block*,
                                          static_cast<std::size_t>(Exec::out_degree)>& outs,
                         typename P::Result& r, std::uint64_t& leaves) {
  Exec::expand_into(p, in, 0, in.size(), outs, r, leaves);
}

}  // namespace tb::core
