// Recycling pool for task blocks.
//
// Schedulers create and retire blocks at every superstep; recycling the
// column buffers keeps the steady state allocation-free (a significant
// constant factor at small block sizes, where scheduling overhead is the
// story of Figure 5).
#pragma once

#include <utility>
#include <vector>

namespace tb::core {

template <class Block>
class BlockPool {
public:
  Block get(int level) {
    Block b;
    if (!free_.empty()) {
      b = std::move(free_.back());
      free_.pop_back();
      b.clear();
    }
    b.set_level(level);
    return b;
  }

  void put(Block&& b) {
    if (free_.size() < kMaxFree) {
      free_.push_back(std::move(b));
    }
  }

private:
  static constexpr std::size_t kMaxFree = 64;
  std::vector<Block> free_;
};

}  // namespace tb::core
