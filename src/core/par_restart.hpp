// Parallel simplified-restart scheduler (Fig. 3c + §6).
//
// Each invocation takes a task block plus a *restart stack* — a linked list
// with one (possibly empty) block per level, holding parked tasks that were
// too sparse to execute.  If the block plus the stack head are below
// t_restart the tasks are parked and the stack returned; otherwise the
// block is refilled from the stack head, expanded depth-first, the right
// child blocks are spawned, and the children's returned stacks are merged
// level-wise (a merge that crosses t_restart at some level re-enters the
// scheduler right there).
//
// The §6 merge-elision optimization is implemented through the pool's
// child-stealing protocol: right children are pushed as stealable jobs, and
// at the sync point the worker pops its own deque — any child that was NOT
// stolen is executed inline with the running restart chain as its input
// (no merge); only children that a thief actually ran (with a NIL stack)
// are merged afterwards.  This is exactly "test whether a steal immediately
// preceded the given spawn" expressed in child-stealing terms.
#pragma once

#include <array>
#include <cassert>
#include <cstddef>
#include <memory>
#include <utility>

#include "core/block_pool.hpp"
#include "core/program.hpp"
#include "core/stats.hpp"
#include "core/thresholds.hpp"
#include "runtime/forkjoin.hpp"
#include "runtime/reducer.hpp"

namespace tb::core {

// One level of parked tasks; `next` holds the level below.
template <class Block>
struct RestartNode {
  Block block;
  std::unique_ptr<RestartNode> next;
};

template <class Block>
using RestartStack = std::unique_ptr<RestartNode<Block>>;

template <class Block>
inline std::size_t restart_stack_tasks(const RestartNode<Block>* n) {
  std::size_t total = 0;
  for (; n != nullptr; n = n->next.get()) total += n->block.size();
  return total;
}

template <class Exec>
class ParRestart {
public:
  using Program = typename Exec::Program;
  using Block = typename Exec::Block;
  using Result = typename Program::Result;
  using Node = RestartNode<Block>;
  using Stack = RestartStack<Block>;
  static constexpr std::size_t C = static_cast<std::size_t>(Exec::out_degree);

  ParRestart(rt::ForkJoinPool& pool, const Program& p, Thresholds th,
             bool elide_merges = true)
      : pool_(pool), prog_(p), th_(th.clamped()), elide_merges_(elide_merges) {}

  Result run(Block roots, ExecStats* stats = nullptr) {
    rt::WorkerLocal<Result> partials(pool_, Program::identity());
    rt::WorkerLocal<ExecStats> wstats(pool_);
    rt::WorkerLocal<BlockPool<Block>> pools(pool_);

    Ctx ctx{*this, partials, wstats, pools};
    pool_.run([&ctx, &roots] {
      Stack leftovers = ctx.self.recurse(ctx, std::move(roots), nullptr);
      ctx.self.drain(ctx, std::move(leftovers));
    });

    if (stats) {
      *stats = wstats.combine([](ExecStats acc, const ExecStats& s) {
        acc.merge(s);
        return acc;
      });
    }
    return partials.combine([](Result acc, const Result& x) {
      Program::combine(acc, x);
      return acc;
    });
  }

private:
  struct Ctx {
    ParRestart& self;
    rt::WorkerLocal<Result>& partials;
    rt::WorkerLocal<ExecStats>& wstats;
    rt::WorkerLocal<BlockPool<Block>>& pools;
  };

  // Stealable right-child task: carries its block; `input` stays NIL unless
  // the owner runs it inline with the chained restart stack.
  struct ChildJob : rt::JobBase {
    Ctx* ctx = nullptr;
    Block block;
    Stack input;
    Stack result;
    bool pushed = false;
    bool ran_inline = false;

    static void thunk(rt::JobBase* base) {
      auto* self = static_cast<ChildJob*>(base);
      self->result =
          self->ctx->self.recurse(*self->ctx, std::move(self->block), std::move(self->input));
      self->finish();
    }
  };

  static Stack make_node(int level) {
    auto node = std::make_unique<Node>();
    node->block.set_level(level);
    return node;
  }

  // Fig. 3c `blocked_foo_restart`.
  Stack recurse(Ctx& ctx, Block tb, Stack rb) {
    Result& r = ctx.partials.local();
    ExecStats& st = ctx.wstats.local();
    BlockPool<Block>& bp = ctx.pools.local();

    const std::size_t head_tasks = rb ? rb->block.size() : 0;
    if (tb.size() + head_tasks < th_.t_restart) {
      // Park: move tasks from tb into the restart block for this level.
      st.on_action(Action::Restart);
      if (tb.empty()) return rb;
      if (!rb) rb = make_node(tb.level());
      rb->block.append(std::move(tb));
      return rb;
    }
    // Fill tb from the restart block up to the block-size cap.
    if (rb && tb.size() < th_.t_dfe) {
      tb.take_from(rb->block, th_.t_dfe - tb.size());
    }

    // Depth-first expansion into per-spawn-index child blocks.
    std::array<Block, C> kids;
    std::array<Block*, C> outs;
    for (std::size_t s = 0; s < C; ++s) {
      kids[s] = bp.get(tb.level() + 1);
      outs[s] = &kids[s];
    }
    Exec::expand_into(prog_, tb, 0, tb.size(), outs, r, st.leaves);
    st.on_block_executed(tb.size(), th_.q, th_.t_restart);
    st.on_action(Action::DFE);
    const int level = tb.level();
    bp.put(std::move(tb));

    // Spawn right children as stealable jobs.
    std::array<ChildJob, C> jobs;
    std::size_t outstanding = 0;
    for (std::size_t s = 1; s < C; ++s) {
      if (kids[s].empty()) {
        bp.put(std::move(kids[s]));
        continue;
      }
      jobs[s].ctx = &ctx;
      jobs[s].block = std::move(kids[s]);
      jobs[s].run_fn = &ChildJob::thunk;
      jobs[s].pushed = true;
      pool_.push(jobs[s]);
      ++outstanding;
    }

    // Leftmost child runs inline with the next-level restart stack.
    Stack chain = recurse(ctx, std::move(kids[0]), rb ? std::move(rb->next) : nullptr);

    // Elision-aware sync: children we pop back ourselves take the running
    // chain as input; stolen children are merged after completion.
    while (outstanding > 0) {
      rt::JobBase* j = pool_.pop_bottom();
      if (j == nullptr) break;  // deque empty: the rest are with thieves
      ChildJob* mine = match(jobs, j);
      if (mine != nullptr) {
        if (mine->try_acquire()) {
          if (elide_merges_) mine->input = std::move(chain);
          ChildJob::thunk(mine);
          mine->ran_inline = true;
          if (elide_merges_) {
            chain = std::move(mine->result);
          } else {
            chain = merge(ctx, std::move(chain), std::move(mine->result));
          }
          --outstanding;
        }
      } else {
        pool_.execute(j);  // help with unrelated work
      }
    }
    for (std::size_t s = 1; s < C; ++s) {
      if (!jobs[s].pushed || jobs[s].ran_inline) continue;
      pool_.sync(jobs[s]);  // a thief ran it with a NIL input stack
      st.on_action(Action::Steal);
      chain = merge(ctx, std::move(chain), std::move(jobs[s].result));
    }

    if (!rb) rb = make_node(level);
    rb->next = std::move(chain);
    return rb;
  }

  // Level-wise merge of two restart stacks; re-enters the scheduler at any
  // level that crosses t_restart (Fig. 3c `merge`).
  Stack merge(Ctx& ctx, Stack a, Stack b) {
    if (!a) return b;
    if (!b) return a;
    ctx.wstats.local().merges += 1;
    a->block.append(std::move(b->block));
    a->next = merge(ctx, std::move(a->next), std::move(b->next));
    if (a->block.size() >= th_.t_restart) {
      Block t = ctx.pools.local().get(a->block.level());
      t.take_from(a->block, th_.t_dfe);
      return recurse(ctx, std::move(t), std::move(a));
    }
    return a;
  }

  // Execute whatever is still parked after the root invocation returns:
  // breadth-first from the shallowest level, re-entering the scheduler
  // whenever a level grows past t_restart (the parallel analogue of the
  // sequential policy's BFE-at-top).
  void drain(Ctx& ctx, Stack st) {
    Result& r = ctx.partials.local();
    ExecStats& es = ctx.wstats.local();
    BlockPool<Block>& bp = ctx.pools.local();

    while (st) {
      if (st->block.empty()) {
        st = std::move(st->next);
        continue;
      }
      Block b = std::move(st->block);
      st->block = bp.get(b.level());
      Block next = bp.get(b.level() + 1);
      std::array<Block*, C> outs;
      outs.fill(&next);
      Exec::expand_into(prog_, b, 0, b.size(), outs, r, es.leaves);
      es.on_block_executed(b.size(), th_.q, th_.t_restart);
      es.on_action(Action::BFE);
      bp.put(std::move(b));
      if (!st->next) st->next = make_node(next.level());
      st->next->block.append(std::move(next));
      st = std::move(st->next);
      if (st->block.size() >= th_.t_restart) {
        Block t = bp.get(st->block.level());
        t.take_from(st->block, th_.t_dfe);
        st = recurse(ctx, std::move(t), std::move(st));
      }
    }
  }

  static ChildJob* match(std::array<ChildJob, C>& jobs, rt::JobBase* j) {
    for (std::size_t s = 1; s < C; ++s) {
      if (&jobs[s] == j) return &jobs[s];
    }
    return nullptr;
  }

  rt::ForkJoinPool& pool_;
  const Program& prog_;
  Thresholds th_;
  bool elide_merges_;
};

}  // namespace tb::core
