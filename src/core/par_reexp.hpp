// Parallel re-expansion scheduler (Fig. 3a).
//
// The blocked re-expansion recursion maps directly onto spawn/sync: a DFE
// step spawns the right child blocks as stealable tasks and continues with
// the leftmost; a re-expansion step merges all children into a single block
// (our BFE expansion emits every child slot into one block, which is the
// same thing) and loops.  Spawned block-tasks are fire-and-forget: nothing
// flows back through returns, reductions land in worker-local slots, and
// the root waits on a completion count.
#pragma once

#include <array>
#include <cstddef>
#include <utility>

#include "core/block_pool.hpp"
#include "core/program.hpp"
#include "core/stats.hpp"
#include "core/thresholds.hpp"
#include "runtime/forkjoin.hpp"
#include "runtime/reducer.hpp"

namespace tb::core {

template <class Exec>
class ParReexp {
public:
  using Program = typename Exec::Program;
  using Block = typename Exec::Block;
  using Result = typename Program::Result;
  static constexpr std::size_t C = static_cast<std::size_t>(Exec::out_degree);

  ParReexp(rt::ForkJoinPool& pool, const Program& p, Thresholds th)
      : pool_(pool), prog_(p), th_(th.clamped()) {}

  Result run(Block roots, ExecStats* stats = nullptr) {
    rt::WorkerLocal<Result> partials(pool_, Program::identity());
    rt::WorkerLocal<ExecStats> wstats(pool_);
    rt::WorkerLocal<BlockPool<Block>> pools(pool_);
    rt::WaitGroup wg;

    Ctx ctx{*this, partials, wstats, pools, wg};
    pool_.run([&ctx, &roots] {
      ctx.self.block_task(ctx, std::move(roots), /*bfe_mode=*/true);
      ctx.self.pool_.wait(ctx.wg);
    });

    if (stats) {
      *stats = wstats.combine([](ExecStats acc, const ExecStats& s) {
        acc.merge(s);
        return acc;
      });
    }
    return partials.combine([](Result acc, const Result& x) {
      Program::combine(acc, x);
      return acc;
    });
  }

private:
  struct Ctx {
    ParReexp& self;
    rt::WorkerLocal<Result>& partials;
    rt::WorkerLocal<ExecStats>& wstats;
    rt::WorkerLocal<BlockPool<Block>>& pools;
    rt::WaitGroup& wg;
  };

  void block_task(Ctx& ctx, Block b, bool bfe_mode) {
    Result& r = ctx.partials.local();
    ExecStats& st = ctx.wstats.local();
    BlockPool<Block>& bp = ctx.pools.local();

    while (!b.empty()) {
      if (bfe_mode) {
        Block next = bp.get(b.level() + 1);
        std::array<Block*, C> outs;
        outs.fill(&next);
        Exec::expand_into(prog_, b, 0, b.size(), outs, r, st.leaves);
        st.on_block_executed(b.size(), th_.q, th_.t_restart);
        st.on_action(Action::BFE);
        bp.put(std::move(b));
        b = std::move(next);
        if (b.size() >= th_.t_dfe) bfe_mode = false;
        continue;
      }
      if (b.size() < th_.t_bfe) {
        bfe_mode = true;  // re-expansion
        continue;
      }
      // DFE: spawn right children, continue with the leftmost.
      std::array<Block, C> kids;
      std::array<Block*, C> outs;
      for (std::size_t s = 0; s < C; ++s) {
        kids[s] = bp.get(b.level() + 1);
        outs[s] = &kids[s];
      }
      Exec::expand_into(prog_, b, 0, b.size(), outs, r, st.leaves);
      st.on_block_executed(b.size(), th_.q, th_.t_restart);
      st.on_action(Action::DFE);
      bp.put(std::move(b));
      for (std::size_t s = C; s-- > 1;) {
        if (kids[s].empty()) {
          bp.put(std::move(kids[s]));
        } else {
          pool_.spawn_detached(
              [&ctx, blk = std::move(kids[s])]() mutable {
                ctx.self.block_task(ctx, std::move(blk), /*bfe_mode=*/false);
              },
              ctx.wg);
        }
      }
      b = std::move(kids[0]);
    }
  }

  rt::ForkJoinPool& pool_;
  const Program& prog_;
  Thresholds th_;
};

}  // namespace tb::core
