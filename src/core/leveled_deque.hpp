// Multi-level block deque for the sequential schedulers (§3.1).
//
// Each level of the computation tree owns a list of parked blocks.  The
// basic and re-expansion policies pop the deepest block; the restart policy
// scans bottom-up, merging same-level blocks, looking for a level holding at
// least t_restart tasks (§3.3).
#pragma once

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace tb::core {

template <class Block>
class LeveledDeque {
public:
  bool empty() const { return total_tasks_ == 0; }
  std::size_t total_tasks() const { return total_tasks_; }

  std::size_t blocks_at(int level) const {
    const auto l = static_cast<std::size_t>(level);
    return l < levels_.size() ? levels_[l].size() : 0;
  }

  // Park a block, keeping it distinct from others at its level (point
  // blocking leaves one block per unexecuted spawn index).
  void push(Block&& b) {
    assert(!b.empty());
    auto& lvl = level_list(b.level());
    total_tasks_ += b.size();
    lvl.push_back(std::move(b));
  }

  // Park a block, concatenating with any block already at its level (the
  // restart mechanism merges same-level blocks, §3.1 "Restart").
  void push_merge(Block&& b) {
    assert(!b.empty());
    auto& lvl = level_list(b.level());
    total_tasks_ += b.size();
    if (lvl.empty()) {
      lvl.push_back(std::move(b));
    } else {
      lvl.front().append(std::move(b));
    }
  }

  // Pop one block from the deepest non-empty level.  Returns false when the
  // deque is empty.
  bool pop_deepest(Block& out) {
    for (std::size_t l = levels_.size(); l-- > 0;) {
      auto& lvl = levels_[l];
      if (!lvl.empty()) {
        out = std::move(lvl.back());
        lvl.pop_back();
        total_tasks_ -= out.size();
        return true;
      }
    }
    return false;
  }

  // Move every block parked at `level` into `into` (used after a BFE step
  // lands on a level that already has a parked sibling).
  void absorb_level(int level, Block& into) {
    const auto l = static_cast<std::size_t>(level);
    if (l >= levels_.size()) return;
    for (auto& b : levels_[l]) {
      total_tasks_ -= b.size();
      into.append(std::move(b));
    }
    levels_[l].clear();
  }

  enum class Scan { Empty, Dense, Top };

  // §3.3 restart scan: walk from the deepest level toward the root, merging
  // all blocks at each level.  The first merged level holding at least
  // `threshold` tasks is returned as Dense; if none qualifies, the
  // shallowest non-empty merged block is returned as Top; Empty if no work.
  // `cap` bounds the extracted block (§4: blocks stay O(t_dfe); merged
  // levels beyond the cap leave the remainder parked).
  Scan restart_scan(std::size_t threshold, Block& out, std::size_t cap) {
    std::ptrdiff_t top = -1;
    for (std::size_t l = levels_.size(); l-- > 0;) {
      auto& lvl = levels_[l];
      if (lvl.empty()) continue;
      // Merge the level's blocks into one.
      for (std::size_t i = 1; i < lvl.size(); ++i) lvl.front().append(std::move(lvl[i]));
      lvl.resize(1);
      if (lvl.front().size() >= threshold) {
        extract(lvl, cap, out);
        return Scan::Dense;
      }
      top = static_cast<std::ptrdiff_t>(l);
    }
    if (top < 0) return Scan::Empty;
    extract(levels_[static_cast<std::size_t>(top)], cap, out);
    return Scan::Top;
  }

  // Steal for the ideal parallel scheduler (§3.4): merge and take the
  // shallowest (top) level's block, capped at `cap` tasks.
  bool steal_shallowest(Block& out, std::size_t cap) {
    for (std::size_t l = 0; l < levels_.size(); ++l) {
      auto& lvl = levels_[l];
      if (lvl.empty()) continue;
      for (std::size_t i = 1; i < lvl.size(); ++i) lvl.front().append(std::move(lvl[i]));
      lvl.resize(1);
      extract(lvl, cap, out);
      return true;
    }
    return false;
  }

private:
  // Move up to `cap` tasks of the level's single merged block into `out`.
  void extract(std::vector<Block>& lvl, std::size_t cap, Block& out) {
    Block& b = lvl.front();
    if (b.size() <= cap) {
      out = std::move(b);
      lvl.clear();
      total_tasks_ -= out.size();
      return;
    }
    out.clear();
    out.set_level(b.level());
    out.take_from(b, cap);
    total_tasks_ -= out.size();
  }

  std::vector<Block>& level_list(int level) {
    assert(level >= 0);
    const auto l = static_cast<std::size_t>(level);
    if (l >= levels_.size()) levels_.resize(l + 1);
    return levels_[l];
  }

  std::vector<std::vector<Block>> levels_;
  std::size_t total_tasks_ = 0;
};

}  // namespace tb::core
