// Task blocks with joins — blocked execution of computations with syncs.
//
// The paper's model reduces only at base cases (§2.1) and notes in passing
// (§2, footnote 1) that computations with syncs "can also be represented
// using a tree; albeit a more complex and dynamic one".  This module makes
// that concrete: a JoinProgram lets every internal task combine its
// children's values through an order-insensitive fold (min/max/sum/...),
// which is what true minimax, tree accumulations, and divide-and-conquer
// returns need — and what the leaf-only model cannot express (DESIGN.md
// documents the minmax benchmark's resulting substitution).
//
// Mechanically, each expanded task allocates a *join frame* — parent link,
// outstanding-children count, accumulator — and its children carry the
// frame id.  A completing task folds its value into its parent frame;
// the frame that reaches zero pending children finalizes and completes its
// own parent in turn, so values percolate up the dynamic tree regardless
// of the order the scheduler executes blocks in.  Frames live in a
// free-list arena; peak live frames track peak live tasks, not tree size.
//
// The scheduler below drives the same three policies (basic / reexp /
// restart) over the same leveled deque as SeqScheduler; blocks are AoS
// (task + frame id per row).  The fold itself is scalar — the SIMD win for
// join programs is the same blocked child generation as everywhere else,
// while the per-child fold is pointer-chasing by nature.
#pragma once

#include <array>
#include <concepts>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/block.hpp"
#include "core/leveled_deque.hpp"
#include "core/program.hpp"
#include "core/seq_scheduler.hpp"
#include "core/stats.hpp"
#include "core/thresholds.hpp"

namespace tb::core {

template <class P>
concept JoinTaskProgram =
    requires(const P p, const typename P::Task& t, typename P::Value& acc,
             const typename P::Value& v) {
      typename P::Task;
      typename P::Value;
      { P::max_children } -> std::convertible_to<int>;
      { p.is_base(t) } -> std::convertible_to<bool>;
      { p.leaf_value(t) } -> std::same_as<typename P::Value>;
      p.expand(t, detail::NullEmit<typename P::Task>{});
      { p.join_identity(t) } -> std::same_as<typename P::Value>;
      p.combine(t, acc, v);                                   // fold one child in
      { p.finalize(t, v) } -> std::same_as<typename P::Value>;  // after the last child
    };

template <JoinTaskProgram P>
class JoinScheduler {
public:
  using Task = typename P::Task;
  using Value = typename P::Value;
  static constexpr std::size_t C = static_cast<std::size_t>(P::max_children);

  // One scheduled row: a task plus the frame that receives its value.
  // Negative frame ids address root result slots (-1 - root_index).
  struct Node {
    Task task;
    std::int32_t frame;
  };
  using Block = AosBlock<Node>;

  JoinScheduler(const P& p, Thresholds th, SeqPolicy policy)
      : prog_(p), th_(th.clamped()), policy_(policy) {}

  // Executes every task reachable from `roots` and returns one joined value
  // per root (the §5.2 outer loop keeps per-iteration results separate).
  std::vector<Value> run(std::span<const Task> roots, ExecStats* stats = nullptr) {
    ExecStats local;
    ExecStats& st = stats ? *stats : local;
    results_.assign(roots.size(), Value{});
    frames_.clear();
    free_.clear();
    peak_frames_ = 0;

    Block cur;
    cur.set_level(0);
    cur.reserve(roots.size());
    for (std::size_t i = 0; i < roots.size(); ++i) {
      cur.push_back({roots[i], static_cast<std::int32_t>(-1 - static_cast<std::int64_t>(i))});
    }

    bool bfe_mode = true;
    bool growing = true;
    while (true) {
      if (cur.empty()) {
        if (!pick_next(cur, bfe_mode, growing)) break;
      }
      st.note_space(cur.size() + deque_.total_tasks());

      if (bfe_mode) {
        bfe_step(cur, st);
        if (cur.size() >= th_.t_dfe) {
          bfe_mode = false;
          growing = false;
        } else if (!growing && policy_ == SeqPolicy::Restart) {
          bfe_mode = false;  // §3.3 single-shot BFE after a failed scan
        }
        continue;
      }
      if (policy_ == SeqPolicy::Reexp && cur.size() < th_.t_bfe) {
        bfe_mode = true;
        growing = true;
        continue;
      }
      if (policy_ == SeqPolicy::Restart && cur.size() < th_.t_restart) {
        st.on_action(Action::Restart);
        deque_.push_merge(std::move(cur));
        cur = Block{};
        if (!pick_next(cur, bfe_mode, growing)) break;
        continue;
      }
      dfe_step(cur, st);
    }
    st.peak_frames = std::max(st.peak_frames, peak_frames_);
    return std::move(results_);
  }

  const Thresholds& thresholds() const { return th_; }

private:
  struct Frame {
    Task task;
    Value acc;
    std::int32_t parent;
    std::int32_t pending;
  };

  std::int32_t alloc_frame(const Task& t, std::int32_t parent) {
    std::int32_t id;
    if (!free_.empty()) {
      id = free_.back();
      free_.pop_back();
    } else {
      id = static_cast<std::int32_t>(frames_.size());
      frames_.emplace_back();
    }
    Frame& f = frames_[static_cast<std::size_t>(id)];
    f.task = t;
    f.acc = prog_.join_identity(t);
    f.parent = parent;
    f.pending = 0;
    ++live_frames_;
    peak_frames_ = std::max<std::uint64_t>(peak_frames_, live_frames_);
    return id;
  }

  // Fold `v` into frame `fid`, completing and percolating as frames drain.
  void propagate(std::int32_t fid, Value v) {
    while (true) {
      if (fid < 0) {
        results_[static_cast<std::size_t>(-1 - fid)] = v;
        return;
      }
      Frame& f = frames_[static_cast<std::size_t>(fid)];
      prog_.combine(f.task, f.acc, v);
      if (--f.pending > 0) return;
      v = prog_.finalize(f.task, f.acc);
      const std::int32_t parent = f.parent;
      free_.push_back(fid);
      --live_frames_;
      fid = parent;
    }
  }

  // Expand one row into the sink blocks, wiring join frames.
  template <class Sink>
  void process(const Node& nd, Sink&& sink, ExecStats& st) {
    if (prog_.is_base(nd.task)) {
      ++st.leaves;
      propagate(nd.frame, prog_.leaf_value(nd.task));
      return;
    }
    const std::int32_t fid = alloc_frame(nd.task, nd.frame);
    int emitted = 0;
    prog_.expand(nd.task, [&](int slot, const Task& c) {
      sink(slot, Node{c, fid});
      ++emitted;
    });
    if (emitted == 0) {
      // Dying branch: the join completes over an empty child set.
      Frame& f = frames_[static_cast<std::size_t>(fid)];
      const Value v = prog_.finalize(f.task, f.acc);
      const std::int32_t parent = f.parent;
      free_.push_back(fid);
      --live_frames_;
      propagate(parent, v);
      return;
    }
    frames_[static_cast<std::size_t>(fid)].pending = emitted;
  }

  void bfe_step(Block& cur, ExecStats& st) {
    Block next;
    next.set_level(cur.level() + 1);
    for (std::size_t i = 0; i < cur.size(); ++i) {
      process(cur[i], [&](int, const Node& n) { next.push_back(n); }, st);
    }
    st.on_block_executed(cur.size(), th_.q, th_.t_restart);
    st.on_action(Action::BFE);
    cur = std::move(next);
    if (policy_ == SeqPolicy::Restart && !cur.empty()) {
      deque_.absorb_level(cur.level(), cur);
    }
  }

  void dfe_step(Block& cur, ExecStats& st) {
    std::array<Block, C> kids;
    for (auto& k : kids) k.set_level(cur.level() + 1);
    for (std::size_t i = 0; i < cur.size(); ++i) {
      process(cur[i],
              [&](int slot, const Node& n) { kids[static_cast<std::size_t>(slot)].push_back(n); },
              st);
    }
    st.on_block_executed(cur.size(), th_.q, th_.t_restart);
    st.on_action(Action::DFE);
    for (std::size_t s = C; s-- > 1;) {
      if (kids[s].empty()) continue;
      if (policy_ == SeqPolicy::Restart) {
        deque_.push_merge(std::move(kids[s]));
      } else {
        deque_.push(std::move(kids[s]));
      }
    }
    cur = std::move(kids[0]);
  }

  bool pick_next(Block& cur, bool& bfe_mode, bool& growing) {
    if (policy_ == SeqPolicy::Restart) {
      switch (deque_.restart_scan(th_.t_restart, cur, 2 * th_.t_dfe)) {
        case LeveledDeque<Block>::Scan::Empty: return false;
        case LeveledDeque<Block>::Scan::Dense:
          bfe_mode = false;
          return true;
        case LeveledDeque<Block>::Scan::Top:
          bfe_mode = true;
          return true;
      }
      return false;
    }
    if (!deque_.pop_deepest(cur)) return false;
    bfe_mode = false;
    (void)growing;
    return true;
  }

  const P& prog_;
  Thresholds th_;
  SeqPolicy policy_;
  LeveledDeque<Block> deque_;
  std::vector<Frame> frames_;
  std::vector<std::int32_t> free_;
  std::uint64_t live_frames_ = 0;
  std::uint64_t peak_frames_ = 0;
  std::vector<Value> results_;
};

// Convenience: single root, single joined value.
template <class P>
typename P::Value run_join(const P& p, const typename P::Task& root, SeqPolicy policy,
                           const Thresholds& th, ExecStats* stats = nullptr) {
  JoinScheduler<P> sched(p, th, policy);
  const typename P::Task roots[1] = {root};
  return sched.run(roots, stats)[0];
}

}  // namespace tb::core
