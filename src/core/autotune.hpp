// Block-size auto-tuner.
//
// The paper's Table 1 reports a hand-found "best block size" per benchmark
// (2^9–2^14) and §3.5 leaves threshold selection to the user.  This module
// automates that search: it sweeps t_dfe over powers of two, measures the
// actual scheduler on the actual program (wall time, SIMD utilization, peak
// space), geometrically refines around the winner, and returns the best
// thresholds plus the full sample table — so "best block size" becomes an
// output of the library instead of an input.
//
// autotune_hybrid extends the same idea to the hybrid vector×multicore
// executor: it sweeps the re-expansion threshold t_reexp (and optionally the
// range grain) over the *actual* hybrid run and returns the winning
// rt::HybridOptions — by wall time, or by merged SIMD utilization, which
// with a static partition is deterministic and therefore reproducible.
//
// The search measures whole runs over the supplied roots; callers control
// tuning cost by choosing a representative (smaller) root set, exactly like
// any profile-guided setup run.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "core/driver.hpp"
#include "core/seq_scheduler.hpp"
#include "core/stats.hpp"
#include "core/thresholds.hpp"
#include "runtime/hybrid.hpp"

namespace tb::core {

struct TuneSample {
  std::size_t t_dfe = 0;
  std::size_t t_restart = 0;
  double seconds = 0;
  double utilization = 0;
  std::uint64_t peak_space_tasks = 0;
};

struct TuneOptions {
  int q = 8;
  SeqPolicy policy = SeqPolicy::Restart;
  std::size_t min_block = 0;            // 0 = Q
  std::size_t max_block = std::size_t{1} << 16;
  int reps = 2;                         // best-of-N timing per candidate
  bool refine = true;                   // probe geometric midpoints around the winner
  double restart_fraction = 1.0 / 16;   // t_restart = max(frac·t_dfe, 1)
};

struct TuneReport {
  Thresholds best;
  double best_seconds = 0;
  std::vector<TuneSample> samples;  // in evaluation order

  // Render the sample table (block, time, utilization, space) for reports.
  std::string to_string() const {
    std::string out = "  t_dfe  t_restart   seconds   util%   peak-space\n";
    char line[128];
    for (const TuneSample& s : samples) {
      std::snprintf(line, sizeof line, "%7zu %10zu %9.5f %7.1f %12llu%s\n", s.t_dfe,
                    s.t_restart, s.seconds, s.utilization * 100.0,
                    static_cast<unsigned long long>(s.peak_space_tasks),
                    s.t_dfe == best.t_dfe ? "  <-- best" : "");
      out += line;
    }
    return out;
  }
};

namespace detail {

template <class Exec>
TuneSample measure_candidate(const typename Exec::Program& p,
                             std::span<const typename Exec::Program::Task> roots,
                             const TuneOptions& opts, std::size_t block) {
  TuneSample s;
  s.t_dfe = block;
  s.t_restart = std::max<std::size_t>(
      static_cast<std::size_t>(opts.restart_fraction * static_cast<double>(block)), 1);
  Thresholds th;
  th.q = opts.q;
  th.t_dfe = block;
  th.t_bfe = block;  // k1 ≈ k, the §4.1 recommendation
  th.t_restart = s.t_restart;
  s.seconds = 1e100;
  for (int r = 0; r < std::max(opts.reps, 1); ++r) {
    ExecStats st;
    const auto t0 = std::chrono::steady_clock::now();
    (void)run_seq<Exec>(p, roots, opts.policy, th, &st);
    const std::chrono::duration<double> dt = std::chrono::steady_clock::now() - t0;
    if (dt.count() < s.seconds) {
      s.seconds = dt.count();
      s.utilization = st.simd_utilization();
      s.peak_space_tasks = st.peak_space_tasks;
    }
  }
  return s;
}

}  // namespace detail

// Tune t_dfe (and the derived t_restart/t_bfe) for one program + execution
// layer under `opts.policy`.  Deterministic apart from timing noise; the
// returned report lists every candidate evaluated.
template <class Exec>
TuneReport autotune_block_size(const typename Exec::Program& p,
                               std::span<const typename Exec::Program::Task> roots,
                               TuneOptions opts = {}) {
  TuneReport rep;
  const std::size_t lo = std::max<std::size_t>(
      opts.min_block ? opts.min_block : static_cast<std::size_t>(opts.q), 1);
  const std::size_t hi = std::max(opts.max_block, lo);

  // Coarse pass: powers of two.
  std::size_t best_block = lo;
  double best_time = 1e100;
  for (std::size_t block = lo; block <= hi; block *= 2) {
    const TuneSample s = detail::measure_candidate<Exec>(p, roots, opts, block);
    rep.samples.push_back(s);
    if (s.seconds < best_time) {
      best_time = s.seconds;
      best_block = block;
    }
    if (block > hi / 2) break;  // avoid overflow past hi
  }

  // Refinement: geometric midpoints between the winner and its octave
  // neighbours (≈ ±√2), clamped to the search range.
  if (opts.refine) {
    for (const double factor : {0.7071, 1.4142}) {
      const auto cand = static_cast<std::size_t>(static_cast<double>(best_block) * factor);
      const std::size_t block = std::clamp(cand, lo, hi);
      if (block == best_block) continue;
      const TuneSample s = detail::measure_candidate<Exec>(p, roots, opts, block);
      rep.samples.push_back(s);
      if (s.seconds < best_time) {
        best_time = s.seconds;
        best_block = block;
      }
    }
  }

  rep.best.q = opts.q;
  rep.best.t_dfe = best_block;
  rep.best.t_bfe = best_block;
  rep.best.t_restart = std::max<std::size_t>(
      static_cast<std::size_t>(opts.restart_fraction * static_cast<double>(best_block)), 1);
  rep.best = rep.best.clamped();
  rep.best_seconds = best_time;
  return rep;
}

// ---- hybrid-executor tuning ---------------------------------------------------------

struct HybridTuneSample {
  std::size_t t_reexp = 0;
  std::int32_t grain = 0;  // 0 = the executor's auto grain
  double seconds = 0;
  double utilization = 0;
};

// What the winner is selected by.  Time is what production callers want;
// Utilization (maximize merged SIMD utilization) is deterministic when the
// candidates use a static partition, which is what the reproducibility
// tests pin.
enum class HybridTuneObjective { Time, Utilization };

struct HybridTuneOptions {
  int q = 8;                  // engine lane width; anchors the t_reexp grid
  int reps = 2;               // best-of-N timing per candidate
  // t_reexp candidates: 0 (pure blocked), then q·2^k up to max_reexp
  // inclusive — the degenerate classic-lockstep end of the spectrum is
  // reached by passing a max_reexp above the query count.
  std::size_t max_reexp = std::size_t{1} << 9;
  // Grain candidates for the dynamic splitter; 0 = auto.  Swept crosswise
  // against every t_reexp candidate.
  std::vector<std::int32_t> grains = {0};
  bool static_partition = false;
  bool donation = false;
  HybridTuneObjective objective = HybridTuneObjective::Time;
};

struct HybridTuneReport {
  rt::HybridOptions best;
  double best_seconds = 0;
  double best_utilization = 0;
  std::vector<HybridTuneSample> samples;  // in evaluation order

  std::string to_string() const {
    std::string out = " t_reexp    grain   seconds   util%\n";
    char line[128];
    for (const HybridTuneSample& s : samples) {
      std::snprintf(line, sizeof line, "%8zu %8d %9.5f %7.1f%s\n", s.t_reexp, s.grain,
                    s.seconds, s.utilization * 100.0,
                    s.t_reexp == best.t_reexp && s.grain == best.grain ? "  <-- best" : "");
      out += line;
    }
    return out;
  }
};

// Tunes rt::HybridOptions for one hybrid workload.  `run` executes one full
// hybrid run under the candidate options: run(const rt::HybridOptions&,
// PerWorkerStats*).  Candidates are evaluated in a fixed order and ties keep
// the earlier candidate, so under the Utilization objective with a static
// partition the winner is a pure function of the workload.
template <class RunFn>
HybridTuneReport autotune_hybrid(RunFn&& run, HybridTuneOptions opts = {}) {
  HybridTuneReport rep;
  std::vector<std::size_t> thresholds{0};
  for (std::size_t t = static_cast<std::size_t>(std::max(opts.q, 1)); t <= opts.max_reexp;
       t *= 2) {
    thresholds.push_back(t);
  }
  if (opts.grains.empty()) opts.grains.push_back(0);

  bool have_best = false;
  for (const std::size_t t : thresholds) {
    for (const std::int32_t g : opts.grains) {
      rt::HybridOptions cand;
      cand.t_reexp = t;
      cand.grain = g;
      cand.static_partition = opts.static_partition;
      cand.donation = opts.donation;
      HybridTuneSample s;
      s.t_reexp = t;
      s.grain = g;
      s.seconds = 1e100;
      for (int r = 0; r < std::max(opts.reps, 1); ++r) {
        PerWorkerStats pw;
        const auto t0 = std::chrono::steady_clock::now();
        run(cand, &pw);
        const std::chrono::duration<double> dt = std::chrono::steady_clock::now() - t0;
        if (dt.count() < s.seconds) {
          s.seconds = dt.count();
          s.utilization = pw.merged().simd_utilization();
        }
      }
      rep.samples.push_back(s);
      const bool better = opts.objective == HybridTuneObjective::Time
                              ? s.seconds < rep.best_seconds
                              : s.utilization > rep.best_utilization;
      if (!have_best || better) {
        have_best = true;
        rep.best = cand;
        rep.best_seconds = s.seconds;
        rep.best_utilization = s.utilization;
      }
    }
  }
  return rep;
}

}  // namespace tb::core
