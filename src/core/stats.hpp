// Execution statistics for task-block schedulers.
//
// The units mirror §4 of the paper: a *step* executes up to Q tasks in one
// SIMD operation (complete if exactly Q), a *superstep* is the execution of
// one whole task block, and a superstep is *partial* when the block had
// fewer than t_restart tasks.  SIMD utilization — the y-axis of Figure 4 —
// is complete steps / total steps.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace tb::core {

enum class Action : std::uint8_t { BFE = 0, DFE = 1, Restart = 2, Steal = 3 };

struct ExecStats {
  std::uint64_t steps_total = 0;
  std::uint64_t steps_complete = 0;
  std::uint64_t supersteps = 0;
  std::uint64_t partial_supersteps = 0;
  std::uint64_t tasks_executed = 0;
  std::uint64_t leaves = 0;

  std::uint64_t bfe_actions = 0;
  std::uint64_t dfe_actions = 0;
  std::uint64_t restart_actions = 0;
  std::uint64_t steal_actions = 0;
  std::uint64_t merges = 0;

  std::uint64_t max_block_size = 0;
  std::uint64_t peak_space_tasks = 0;  // max total tasks resident in blocks
  std::uint64_t peak_frames = 0;       // max live join frames (JoinScheduler only)
  std::uint64_t donated_frames = 0;    // frames split off to a peer (hybrid donation)

  // Record the SIMD-step accounting for executing a block of `t` tasks on a
  // Q-lane unit, classified against the partial-superstep threshold.
  void on_block_executed(std::size_t t, int q, std::size_t partial_threshold) {
    if (t == 0) return;
    const std::uint64_t tu = t;
    const std::uint64_t qu = static_cast<std::uint64_t>(q);
    steps_total += (tu + qu - 1) / qu;
    steps_complete += tu / qu;
    supersteps += 1;
    partial_supersteps += (tu < partial_threshold) ? 1 : 0;
    tasks_executed += tu;
    max_block_size = std::max(max_block_size, tu);
  }

  void on_action(Action a) {
    switch (a) {
      case Action::BFE: ++bfe_actions; break;
      case Action::DFE: ++dfe_actions; break;
      case Action::Restart: ++restart_actions; break;
      case Action::Steal: ++steal_actions; break;
    }
  }

  void note_space(std::uint64_t resident_tasks) {
    peak_space_tasks = std::max(peak_space_tasks, resident_tasks);
  }

  double simd_utilization() const {
    return steps_total == 0 ? 1.0
                            : static_cast<double>(steps_complete) /
                                  static_cast<double>(steps_total);
  }

  ExecStats& merge(const ExecStats& o) {
    steps_total += o.steps_total;
    steps_complete += o.steps_complete;
    supersteps += o.supersteps;
    partial_supersteps += o.partial_supersteps;
    tasks_executed += o.tasks_executed;
    leaves += o.leaves;
    bfe_actions += o.bfe_actions;
    dfe_actions += o.dfe_actions;
    restart_actions += o.restart_actions;
    steal_actions += o.steal_actions;
    merges += o.merges;
    max_block_size = std::max(max_block_size, o.max_block_size);
    peak_space_tasks = std::max(peak_space_tasks, o.peak_space_tasks);
    peak_frames = std::max(peak_frames, o.peak_frames);
    donated_frames += o.donated_frames;
    return *this;
  }
};

// Per-slot execution statistics for the hybrid vector×multicore executor
// (runtime/hybrid.hpp): one ExecStats per worker (dynamic partition) or per
// chunk (static partition — deterministic, used by the fig4 gate).  The
// per-slot SIMD utilizations expose load imbalance between workers that the
// merged view averages away.
struct PerWorkerStats {
  std::vector<ExecStats> workers;

  void reset(std::size_t slots) { workers.assign(slots, ExecStats{}); }
  std::size_t slots() const { return workers.size(); }

  ExecStats merged() const {
    ExecStats total;
    for (const auto& w : workers) total.merge(w);
    return total;
  }

  double utilization(std::size_t slot) const { return workers[slot].simd_utilization(); }

  // Min/max across slots that executed at least one step; idle slots report
  // utilization 1.0 by convention and would mask real imbalance.
  double min_utilization() const {
    double m = 1.0;
    for (const auto& w : workers) {
      if (w.steps_total > 0) m = std::min(m, w.simd_utilization());
    }
    return m;
  }
  double max_utilization() const {
    double m = 0.0;
    bool any = false;
    for (const auto& w : workers) {
      if (w.steps_total > 0) {
        m = std::max(m, w.simd_utilization());
        any = true;
      }
    }
    return any ? m : 1.0;
  }
};

}  // namespace tb::core
