// Convenience entry points: build root blocks, census a computation tree,
// and run any scheduler/policy over a set of root tasks with §5.3
// strip-mining (a data-parallel outer loop contributes its iterations as
// root tasks; oversized root sets are sliced into t_dfe-sized initial
// blocks handed to the scheduler one after another).
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/par_reexp.hpp"
#include "core/par_restart.hpp"
#include "core/program.hpp"
#include "core/seq_scheduler.hpp"

namespace tb::core {

struct TreeInfo {
  std::uint64_t tasks = 0;
  std::uint64_t leaves = 0;
  int levels = 0;  // number of levels (root level counts as 1)
};

// Exact census of the computation tree by iterative depth-first walk.
template <TaskProgram P>
TreeInfo count_tree(const P& p, std::span<const typename P::Task> roots) {
  using Task = typename P::Task;
  TreeInfo info;
  std::vector<std::pair<Task, int>> stack;
  for (const Task& t : roots) stack.emplace_back(t, 0);
  while (!stack.empty()) {
    auto [t, depth] = stack.back();
    stack.pop_back();
    ++info.tasks;
    info.levels = std::max(info.levels, depth + 1);
    if (p.is_base(t)) {
      ++info.leaves;
    } else {
      p.expand(t, [&](int, const Task& c) { stack.emplace_back(c, depth + 1); });
    }
  }
  return info;
}

template <class Exec>
typename Exec::Block make_block(std::span<const typename Exec::Program::Task> tasks,
                                int level = 0) {
  typename Exec::Block b;
  b.set_level(level);
  b.reserve(tasks.size());
  for (const auto& t : tasks) Exec::append_task(b, t);
  return b;
}

namespace detail {
template <class Exec, class RunChunk>
typename Exec::Program::Result strip_mine(std::span<const typename Exec::Program::Task> roots,
                                          std::size_t strip, RunChunk&& run_chunk) {
  using P = typename Exec::Program;
  typename P::Result total = P::identity();
  if (strip == 0) strip = roots.size();
  for (std::size_t off = 0; off < roots.size(); off += strip) {
    const std::size_t n = std::min(strip, roots.size() - off);
    auto block = make_block<Exec>(roots.subspan(off, n));
    typename P::Result r = run_chunk(std::move(block));
    P::combine(total, r);
  }
  return total;
}
}  // namespace detail

// Sequential execution under a policy.  `strip` = 0 means "one initial
// block per t_dfe root tasks" (§5.3 default).
template <class Exec>
typename Exec::Program::Result run_seq(const typename Exec::Program& p,
                                       std::span<const typename Exec::Program::Task> roots,
                                       SeqPolicy policy, const Thresholds& th,
                                       ExecStats* stats = nullptr, std::size_t strip = 0) {
  SeqScheduler<Exec> sched(p, th, policy);
  if (strip == 0) strip = sched.thresholds().t_dfe;
  return detail::strip_mine<Exec>(roots, strip, [&](typename Exec::Block block) {
    return sched.run(std::move(block), stats);
  });
}

template <class Exec>
typename Exec::Program::Result run_par_reexp(
    rt::ForkJoinPool& pool, const typename Exec::Program& p,
    std::span<const typename Exec::Program::Task> roots, const Thresholds& th,
    ExecStats* stats = nullptr, std::size_t strip = 0) {
  ParReexp<Exec> sched(pool, p, th);
  if (strip == 0) strip = th.clamped().t_dfe;
  return detail::strip_mine<Exec>(roots, strip, [&](typename Exec::Block block) {
    ExecStats chunk;
    auto r = sched.run(std::move(block), stats ? &chunk : nullptr);
    if (stats) stats->merge(chunk);
    return r;
  });
}

template <class Exec>
typename Exec::Program::Result run_par_restart(
    rt::ForkJoinPool& pool, const typename Exec::Program& p,
    std::span<const typename Exec::Program::Task> roots, const Thresholds& th,
    ExecStats* stats = nullptr, std::size_t strip = 0, bool elide_merges = true) {
  ParRestart<Exec> sched(pool, p, th, elide_merges);
  if (strip == 0) strip = th.clamped().t_dfe;
  return detail::strip_mine<Exec>(roots, strip, [&](typename Exec::Block block) {
    ExecStats chunk;
    auto r = sched.run(std::move(block), stats ? &chunk : nullptr);
    if (stats) stats->merge(chunk);
    return r;
  });
}

}  // namespace tb::core
