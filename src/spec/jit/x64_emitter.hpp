// Minimal x86-64 machine-code emitter for the spec-bytecode baseline JIT.
//
// Covers exactly the instruction set jit_compiler.hpp needs to lower
// verified stack bytecode: 64-bit moves (reg/imm/memory with [base+disp]
// addressing), the ALU ops behind the language's wrap-around arithmetic
// (add/sub/imul/neg/shl are two's-complement wrap in hardware, which is
// precisely wrap_add/wrap_sub/wrap_mul/wrap_neg/wrap_shl), cqo+idiv for the
// guarded total-division sequence, setcc/movzx for 0/1-valued comparisons,
// and rel32 jumps with single-pass forward patching (spec chunks are
// verified forward-jump-only, so one pass suffices).
//
// Code is emitted into a plain byte vector; the caller copies it into an
// ExecPage afterwards.  All generated code is position-independent — the
// only absolute values are int64 immediates.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>
#include <vector>

#include "spec/jit/exec_page.hpp"

namespace tb::spec::jit {

enum Reg : std::uint8_t {
  RAX = 0,
  RCX = 1,
  RDX = 2,
  RBX = 3,
  RSP = 4,
  RBP = 5,
  RSI = 6,
  RDI = 7,
  R8 = 8,
  R9 = 9,
  R10 = 10,
  R11 = 11,
};

// setcc / jcc condition codes (the low nibble of the 0F 9x / 0F 8x opcode).
enum class Cond : std::uint8_t {
  Eq = 0x4,   // ZF
  Ne = 0x5,
  Lt = 0xC,   // signed <
  Ge = 0xD,
  Le = 0xE,
  Gt = 0xF,
};

class X64Emitter {
public:
  const std::vector<std::uint8_t>& code() const { return code_; }
  std::size_t size() const { return code_.size(); }

  // ---- moves ----------------------------------------------------------------------
  void mov_ri(Reg dst, std::int64_t imm) {
    if (fits_i32(imm)) {
      // REX.W C7 /0 id — sign-extended 32-bit immediate.
      rex(1, 0, dst);
      u8(0xC7);
      modrm_reg(0, dst);
      i32(static_cast<std::int32_t>(imm));
    } else {
      rex(1, 0, dst);
      u8(static_cast<std::uint8_t>(0xB8 | (dst & 7)));
      i64(imm);
    }
  }
  void mov_rr(Reg dst, Reg src) {
    rex(1, src, dst);
    u8(0x89);
    modrm_reg(src, dst);
  }
  void mov_rm(Reg dst, Reg base, std::int32_t disp) {  // dst = [base+disp]
    rex(1, dst, base);
    u8(0x8B);
    modrm_mem(dst, base, disp);
  }
  void mov_mr(Reg base, std::int32_t disp, Reg src) {  // [base+disp] = src
    rex(1, src, base);
    u8(0x89);
    modrm_mem(src, base, disp);
  }
  void mov_mi32(Reg base, std::int32_t disp, std::int32_t imm) {  // [base+disp] = simm32
    rex(1, 0, base);
    u8(0xC7);
    modrm_mem(0, base, disp);
    i32(imm);
  }

  // ---- ALU ------------------------------------------------------------------------
  // op in {add 0x01/0x03, sub 0x29/0x2B, cmp 0x39/0x3B, and 0x21, or 0x09,
  // xor 0x31, test 0x85}; expressed as dedicated emitters for clarity.
  void add_rr(Reg dst, Reg src) { alu_rr(0x01, src, dst); }
  void sub_rr(Reg dst, Reg src) { alu_rr(0x29, src, dst); }
  void cmp_rr(Reg a, Reg b) { alu_rr(0x39, b, a); }
  void test_rr(Reg a, Reg b) { alu_rr(0x85, b, a); }

  void add_rm(Reg dst, Reg base, std::int32_t disp) { alu_rm(0x03, dst, base, disp); }
  void sub_rm(Reg dst, Reg base, std::int32_t disp) { alu_rm(0x2B, dst, base, disp); }
  void cmp_rm(Reg a, Reg base, std::int32_t disp) { alu_rm(0x3B, a, base, disp); }

  void imul_rr(Reg dst, Reg src) {
    rex(1, dst, src);
    u8(0x0F);
    u8(0xAF);
    modrm_reg(dst, src);
  }
  void imul_rm(Reg dst, Reg base, std::int32_t disp) {
    rex(1, dst, base);
    u8(0x0F);
    u8(0xAF);
    modrm_mem(dst, base, disp);
  }

  void neg_r(Reg r) {  // F7 /3
    rex(1, 0, r);
    u8(0xF7);
    modrm_reg(3, r);
  }
  void neg_m(Reg base, std::int32_t disp) {
    rex(1, 0, base);
    u8(0xF7);
    modrm_mem(3, base, disp);
  }

  void shl_ri(Reg r, std::uint8_t amount) {  // C1 /4 ib
    rex(1, 0, r);
    u8(0xC1);
    modrm_reg(4, r);
    u8(amount);
  }
  void shl_mi(Reg base, std::int32_t disp, std::uint8_t amount) {
    rex(1, 0, base);
    u8(0xC1);
    modrm_mem(4, base, disp);
    u8(amount);
  }

  void cmp_ri8(Reg r, std::int8_t imm) {  // 83 /7 ib
    rex(1, 0, r);
    u8(0x83);
    modrm_reg(7, r);
    u8(static_cast<std::uint8_t>(imm));
  }
  void cmp_mi8(Reg base, std::int32_t disp, std::int8_t imm) {
    rex(1, 0, base);
    u8(0x83);
    modrm_mem(7, base, disp);
    u8(static_cast<std::uint8_t>(imm));
  }

  void xor_r32(Reg r) {  // xor r32,r32 zeroes the full 64-bit register
    if (r >= R8) rex(0, r, r);
    u8(0x31);
    modrm_reg(r, r);
  }

  // ---- flags -> 0/1 ---------------------------------------------------------------
  // setcc al / cl only (no REX needed for the legacy low-byte registers).
  void setcc(Cond c, Reg r8lo) {
    assert(r8lo == RAX || r8lo == RCX);
    u8(0x0F);
    u8(static_cast<std::uint8_t>(0x90 | static_cast<std::uint8_t>(c)));
    modrm_reg(0, r8lo);
  }
  void movzx_r64_r8(Reg dst, Reg src8) {  // REX.W 0F B6 /r
    rex(1, dst, src8);
    u8(0x0F);
    u8(0xB6);
    modrm_reg(dst, src8);
  }
  void and_r8(Reg dst8, Reg src8) {  // and al, cl (byte form 0x20)
    assert(dst8 <= RDX && src8 <= RDX);
    u8(0x20);
    modrm_reg(src8, dst8);
  }
  void or_r8(Reg dst8, Reg src8) {
    assert(dst8 <= RDX && src8 <= RDX);
    u8(0x08);
    modrm_reg(src8, dst8);
  }

  // ---- division -------------------------------------------------------------------
  void cqo() {
    u8(0x48);
    u8(0x99);
  }
  void idiv_r(Reg r) {  // F7 /7; quotient -> rax, remainder -> rdx
    rex(1, 0, r);
    u8(0xF7);
    modrm_reg(7, r);
  }

  // ---- control flow ---------------------------------------------------------------
  // jcc/jmp emit a rel32 placeholder and return its patch position.
  std::size_t jcc(Cond c) {
    u8(0x0F);
    u8(static_cast<std::uint8_t>(0x80 | static_cast<std::uint8_t>(c)));
    const std::size_t at = code_.size();
    i32(0);
    return at;
  }
  std::size_t jmp() {
    u8(0xE9);
    const std::size_t at = code_.size();
    i32(0);
    return at;
  }
  // Point the rel32 at `fixup` to the current end of code.
  void patch_to_here(std::size_t fixup) {
    const std::int64_t rel = static_cast<std::int64_t>(code_.size()) -
                             static_cast<std::int64_t>(fixup + 4);
    assert(fits_i32(rel));
    const std::int32_t r32 = static_cast<std::int32_t>(rel);
    std::memcpy(code_.data() + fixup, &r32, 4);
  }

  // ---- frame ----------------------------------------------------------------------
  void sub_rsp(std::int32_t n) {
    rex(1, 0, RSP);
    u8(0x81);
    modrm_reg(5, RSP);
    i32(n);
  }
  void add_rsp(std::int32_t n) {
    rex(1, 0, RSP);
    u8(0x81);
    modrm_reg(0, RSP);
    i32(n);
  }
  void ret() { u8(0xC3); }

  static bool fits_i32(std::int64_t v) {
    return v >= INT32_MIN && v <= INT32_MAX;
  }

private:
  void u8(std::uint8_t b) { code_.push_back(b); }
  void i32(std::int32_t v) {
    const std::size_t at = code_.size();
    code_.resize(at + 4);
    std::memcpy(code_.data() + at, &v, 4);
  }
  void i64(std::int64_t v) {
    const std::size_t at = code_.size();
    code_.resize(at + 8);
    std::memcpy(code_.data() + at, &v, 8);
  }

  // REX prefix; `r` is the ModRM.reg field operand, `b` the r/m (or opcode
  // register) operand.  Emitted whenever W, R or B is set.
  void rex(int w, int r, int b) {
    const std::uint8_t v = static_cast<std::uint8_t>(
        0x40 | (w << 3) | (((r >> 3) & 1) << 2) | ((b >> 3) & 1));
    if (v != 0x40 || w) code_.push_back(v);
  }

  void modrm_reg(int reg, int rm) {
    code_.push_back(static_cast<std::uint8_t>(0xC0 | ((reg & 7) << 3) | (rm & 7)));
  }

  // [base + disp] with mod=01 (disp8) or mod=10 (disp32); RSP/R12 as base
  // needs the SIB escape.  mod=00 is never used so RBP/R13 need no special
  // case.
  void modrm_mem(int reg, Reg base, std::int32_t disp) {
    const bool d8 = disp >= -128 && disp <= 127;
    const std::uint8_t mod = d8 ? 0x40 : 0x80;
    code_.push_back(static_cast<std::uint8_t>(mod | ((reg & 7) << 3) | (base & 7)));
    if ((base & 7) == RSP) code_.push_back(0x24);  // SIB: no index, base=rsp
    if (d8) {
      code_.push_back(static_cast<std::uint8_t>(disp));
    } else {
      i32(disp);
    }
  }

  // ALU helpers.  alu_rr uses the /r "MR" form (op r/m64, r64): reg field =
  // src, r/m = dst.  alu_rm uses the "RM" form opcode passed in.
  void alu_rr(std::uint8_t opcode, Reg regfield, Reg rm) {
    rex(1, regfield, rm);
    u8(opcode);
    modrm_reg(regfield, rm);
  }
  void alu_rm(std::uint8_t opcode, Reg regfield, Reg base, std::int32_t disp) {
    rex(1, regfield, base);
    u8(opcode);
    modrm_mem(regfield, base, disp);
  }

  std::vector<std::uint8_t> code_;
};

}  // namespace tb::spec::jit
