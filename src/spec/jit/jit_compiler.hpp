// Baseline JIT: verified spec bytecode -> straight-line x86-64 step functions.
//
// Each chunk compiles to one native function
//
//     std::int64_t fn(const std::int64_t* params)   // params in rdi
//
// that reproduces the scalar VM (vm.hpp run_chunk) bit for bit: wrap-around
// add/sub/mul/neg/shl map to the hardware instructions (two's-complement
// wrap *is* the hardware behaviour), comparisons and logic produce exact
// 0/1 values via setcc, and Div/Mod emit the guarded total-division
// sequence (b == 0 -> 0; INT64_MIN / -1 -> INT64_MIN, INT64_MIN % -1 -> 0;
// otherwise cqo+idiv) so the verifier's totality contract survives
// compilation.  Short-circuit jumps become forward rel32 branches.
//
// The operand stack disappears at compile time: the bytecode verifier
// proves a single static stack depth per program point, so every slot gets
// a fixed home — slots 0..3 live in r8..r11, deeper slots in the native
// frame at [rsp + 8*(slot-4)].  No dispatch, no stack-pointer arithmetic,
// no memory traffic for shallow expressions (the common case: spec chunks
// rarely exceed depth 4).
//
// Fallback rules (the interpreter is always the reference tier):
//   * non-x86-64 or forced-off builds: compile_chunks() reports no code;
//   * TB_SPEC_JIT=off|0|false at runtime: callers skip compilation;
//   * a chunk that fails verification or uses an unsupported opcode:
//     that chunk's entry is null, the interpreter runs it.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "spec/bytecode.hpp"
#include "spec/jit/exec_page.hpp"
#include "spec/jit/x64_emitter.hpp"

namespace tb::spec::jit {

using Fn = std::int64_t (*)(const std::int64_t* params);

constexpr bool supported() { return TB_SPEC_JIT_SUPPORTED != 0; }

// Runtime kill switch: TB_SPEC_JIT=off (or 0/false) forces the interpreter
// even on supported hosts.  Read once; serving processes don't re-poll env.
inline bool runtime_enabled() {
  static const bool on = [] {
    const char* v = std::getenv("TB_SPEC_JIT");
    if (v == nullptr) return true;
    const std::string_view s(v);
    return !(s == "off" || s == "OFF" || s == "0" || s == "false");
  }();
  return on;
}

// Compiled code for a set of chunks (one method).  Entry i is null when
// chunk i fell back to the interpreter.  The ExecPage is shared so copies
// of a program stay cheap and keep the code alive.
class ChunkSet {
public:
  ChunkSet() = default;

  bool valid() const { return page_ != nullptr && page_->is_executable(); }
  std::size_t size() const { return fns_.size(); }
  Fn fn(std::size_t i) const { return i < fns_.size() ? fns_[i] : nullptr; }

private:
  friend ChunkSet compile_chunks(std::span<const Chunk* const>, int);
  std::shared_ptr<ExecPage> page_;
  std::vector<Fn> fns_;
};

#if TB_SPEC_JIT_SUPPORTED

namespace detail {

// Static stack depth before each instruction, recomputed exactly as the
// verifier propagates it.  Returns false on any inconsistency — callers
// only hand us verified chunks, but the JIT re-derives rather than trusts.
inline bool depths_before(const Chunk& ch, std::vector<int>& depth_at) {
  const auto& code = ch.code();
  depth_at.assign(code.size(), -1);
  if (code.empty()) return false;
  depth_at[0] = 0;
  for (std::size_t i = 0; i < code.size(); ++i) {
    const int d = depth_at[i];
    if (d < 0) return false;
    const Instr in = code[i];
    int out = d;
    switch (in.op) {
      case OpCode::PushConst:
      case OpCode::PushParam:
        out = d + 1;
        break;
      case OpCode::Neg:
      case OpCode::Shl:
      case OpCode::LogicNot:
      case OpCode::Bool:
        break;
      case OpCode::Add:
      case OpCode::Sub:
      case OpCode::Mul:
      case OpCode::Div:
      case OpCode::Mod:
      case OpCode::CmpEq:
      case OpCode::CmpNe:
      case OpCode::CmpLt:
      case OpCode::CmpLe:
      case OpCode::CmpGt:
      case OpCode::CmpGe:
      case OpCode::LogicAnd:
      case OpCode::LogicOr:
        out = d - 1;
        break;
      case OpCode::JumpIfZero:
      case OpCode::JumpIfNonZero: {
        const std::size_t target = i + 1 + static_cast<std::size_t>(in.arg);
        if (in.arg < 0 || target >= code.size()) return false;
        if (depth_at[target] >= 0 && depth_at[target] != d) return false;
        depth_at[target] = d;  // taken edge keeps the tested value
        out = d - 1;
        break;
      }
      case OpCode::Return:
        continue;  // no fall-through successor
    }
    if (i + 1 < code.size()) {
      if (depth_at[i + 1] >= 0 && depth_at[i + 1] != out) return false;
      depth_at[i + 1] = out;
    }
  }
  return true;
}

// Where a stack slot lives: a register for the hot shallow slots, the
// native frame beyond.
struct Loc {
  bool in_reg;
  Reg reg;            // valid when in_reg
  std::int32_t disp;  // [rsp + disp] when !in_reg
};

inline Loc slot_loc(int slot) {
  static constexpr Reg kSlotRegs[4] = {R8, R9, R10, R11};
  if (slot < 4) return {true, kSlotRegs[slot], 0};
  return {false, RSP, static_cast<std::int32_t>(8 * (slot - 4))};
}

class ChunkCompiler {
public:
  ChunkCompiler(X64Emitter& em, const Chunk& ch) : em_(em), ch_(ch) {}

  // Appends one complete function to the emitter; false = unsupported
  // chunk (nothing emitted beyond a possibly partial prologue is a bug, so
  // the check runs before emission starts).
  bool compile(int arity) {
    const VerifyResult v = ch_.verify(arity);
    if (!v.ok) return false;
    std::vector<int> depth_at;
    if (!detail::depths_before(ch_, depth_at)) return false;
    frame_ = v.max_stack > 4 ? 8 * (v.max_stack - 4) : 0;

    if (frame_ > 0) em_.sub_rsp(frame_);
    const auto& code = ch_.code();
    const auto& consts = ch_.consts();
    std::vector<std::vector<std::size_t>> fixups(code.size());
    for (std::size_t i = 0; i < code.size(); ++i) {
      for (const std::size_t f : fixups[i]) em_.patch_to_here(f);
      const Instr in = code[i];
      const int d = depth_at[i];
      switch (in.op) {
        case OpCode::PushConst:
          emit_push_const(consts[static_cast<std::size_t>(in.arg)], slot_loc(d));
          break;
        case OpCode::PushParam:
          emit_push_param(in.arg, slot_loc(d));
          break;
        case OpCode::Add:
          emit_arith(OpCode::Add, slot_loc(d - 2), slot_loc(d - 1));
          break;
        case OpCode::Sub:
          emit_arith(OpCode::Sub, slot_loc(d - 2), slot_loc(d - 1));
          break;
        case OpCode::Mul:
          emit_arith(OpCode::Mul, slot_loc(d - 2), slot_loc(d - 1));
          break;
        case OpCode::Div:
          emit_divmod(/*want_rem=*/false, slot_loc(d - 2), slot_loc(d - 1));
          break;
        case OpCode::Mod:
          emit_divmod(/*want_rem=*/true, slot_loc(d - 2), slot_loc(d - 1));
          break;
        case OpCode::Neg: {
          const Loc t = slot_loc(d - 1);
          if (t.in_reg) {
            em_.neg_r(t.reg);
          } else {
            em_.neg_m(RSP, t.disp);
          }
          break;
        }
        case OpCode::Shl: {
          const Loc t = slot_loc(d - 1);
          const auto amount = static_cast<std::uint8_t>(in.arg);
          if (t.in_reg) {
            em_.shl_ri(t.reg, amount);
          } else {
            em_.shl_mi(RSP, t.disp, amount);
          }
          break;
        }
        case OpCode::CmpEq:
          emit_compare(Cond::Eq, slot_loc(d - 2), slot_loc(d - 1));
          break;
        case OpCode::CmpNe:
          emit_compare(Cond::Ne, slot_loc(d - 2), slot_loc(d - 1));
          break;
        case OpCode::CmpLt:
          emit_compare(Cond::Lt, slot_loc(d - 2), slot_loc(d - 1));
          break;
        case OpCode::CmpLe:
          emit_compare(Cond::Le, slot_loc(d - 2), slot_loc(d - 1));
          break;
        case OpCode::CmpGt:
          emit_compare(Cond::Gt, slot_loc(d - 2), slot_loc(d - 1));
          break;
        case OpCode::CmpGe:
          emit_compare(Cond::Ge, slot_loc(d - 2), slot_loc(d - 1));
          break;
        case OpCode::LogicNot:
          emit_truth(Cond::Eq, slot_loc(d - 1));
          break;
        case OpCode::Bool:
          emit_truth(Cond::Ne, slot_loc(d - 1));
          break;
        case OpCode::LogicAnd:
          emit_logic(/*is_and=*/true, slot_loc(d - 2), slot_loc(d - 1));
          break;
        case OpCode::LogicOr:
          emit_logic(/*is_and=*/false, slot_loc(d - 2), slot_loc(d - 1));
          break;
        case OpCode::JumpIfZero:
        case OpCode::JumpIfNonZero: {
          emit_cmp_zero(slot_loc(d - 1));
          const std::size_t fix =
              em_.jcc(in.op == OpCode::JumpIfZero ? Cond::Eq : Cond::Ne);
          fixups[i + 1 + static_cast<std::size_t>(in.arg)].push_back(fix);
          break;
        }
        case OpCode::Return: {
          const Loc t = slot_loc(d - 1);
          if (t.in_reg) {
            em_.mov_rr(RAX, t.reg);
          } else {
            em_.mov_rm(RAX, RSP, t.disp);
          }
          if (frame_ > 0) em_.add_rsp(frame_);
          em_.ret();
          break;
        }
      }
    }
    return true;
  }

private:
  void load(Reg dst, const Loc& l) {
    if (l.in_reg) {
      em_.mov_rr(dst, l.reg);
    } else {
      em_.mov_rm(dst, RSP, l.disp);
    }
  }
  void store(const Loc& l, Reg src) {
    if (l.in_reg) {
      em_.mov_rr(l.reg, src);
    } else {
      em_.mov_mr(RSP, l.disp, src);
    }
  }

  void emit_push_const(std::int64_t v, const Loc& t) {
    if (t.in_reg) {
      em_.mov_ri(t.reg, v);
    } else if (X64Emitter::fits_i32(v)) {
      em_.mov_mi32(RSP, t.disp, static_cast<std::int32_t>(v));
    } else {
      em_.mov_ri(RAX, v);
      em_.mov_mr(RSP, t.disp, RAX);
    }
  }

  void emit_push_param(std::int32_t idx, const Loc& t) {
    const auto off = static_cast<std::int32_t>(8 * idx);
    if (t.in_reg) {
      em_.mov_rm(t.reg, RDI, off);
    } else {
      em_.mov_rm(RAX, RDI, off);
      em_.mov_mr(RSP, t.disp, RAX);
    }
  }

  // a <- a op b for the wrap-around ops (hardware semantics already match).
  void emit_arith(OpCode op, const Loc& a, const Loc& b) {
    if (a.in_reg) {
      if (b.in_reg) {
        switch (op) {
          case OpCode::Add: em_.add_rr(a.reg, b.reg); break;
          case OpCode::Sub: em_.sub_rr(a.reg, b.reg); break;
          default: em_.imul_rr(a.reg, b.reg); break;
        }
      } else {
        switch (op) {
          case OpCode::Add: em_.add_rm(a.reg, RSP, b.disp); break;
          case OpCode::Sub: em_.sub_rm(a.reg, RSP, b.disp); break;
          default: em_.imul_rm(a.reg, RSP, b.disp); break;
        }
      }
      return;
    }
    em_.mov_rm(RAX, RSP, a.disp);
    if (b.in_reg) {
      switch (op) {
        case OpCode::Add: em_.add_rr(RAX, b.reg); break;
        case OpCode::Sub: em_.sub_rr(RAX, b.reg); break;
        default: em_.imul_rr(RAX, b.reg); break;
      }
    } else {
      switch (op) {
        case OpCode::Add: em_.add_rm(RAX, RSP, b.disp); break;
        case OpCode::Sub: em_.sub_rm(RAX, RSP, b.disp); break;
        default: em_.imul_rm(RAX, RSP, b.disp); break;
      }
    }
    em_.mov_mr(RSP, a.disp, RAX);
  }

  // a <- (a cond b) ? 1 : 0
  void emit_compare(Cond c, const Loc& a, const Loc& b) {
    if (a.in_reg && b.in_reg) {
      em_.cmp_rr(a.reg, b.reg);
    } else if (a.in_reg) {
      em_.cmp_rm(a.reg, RSP, b.disp);
    } else {
      em_.mov_rm(RAX, RSP, a.disp);
      if (b.in_reg) {
        em_.cmp_rr(RAX, b.reg);
      } else {
        em_.cmp_rm(RAX, RSP, b.disp);
      }
    }
    em_.setcc(c, RAX);
    em_.movzx_r64_r8(RAX, RAX);
    store(a, RAX);
  }

  void emit_cmp_zero(const Loc& l) {
    if (l.in_reg) {
      em_.test_rr(l.reg, l.reg);
    } else {
      em_.cmp_mi8(RSP, l.disp, 0);
    }
  }

  // t <- (t == 0) for LogicNot (cond Eq), (t != 0) for Bool (cond Ne).
  void emit_truth(Cond c, const Loc& t) {
    emit_cmp_zero(t);
    em_.setcc(c, RAX);
    em_.movzx_r64_r8(RAX, RAX);
    store(t, RAX);
  }

  // a <- (a != 0) &/| (b != 0); both sides already evaluated (eager dialect).
  void emit_logic(bool is_and, const Loc& a, const Loc& b) {
    emit_cmp_zero(a);
    em_.setcc(Cond::Ne, RAX);
    emit_cmp_zero(b);
    em_.setcc(Cond::Ne, RCX);
    if (is_and) {
      em_.and_r8(RAX, RCX);
    } else {
      em_.or_r8(RAX, RCX);
    }
    em_.movzx_r64_r8(RAX, RAX);
    store(a, RAX);
  }

  // a <- div_total(a, b) / mod_total(a, b):
  //   b == 0                    -> 0
  //   a == INT64_MIN && b == -1 -> a (div) / 0 (mod)    [idiv would #DE]
  //   otherwise                 -> cqo; idiv
  void emit_divmod(bool want_rem, const Loc& a, const Loc& b) {
    load(RAX, a);
    load(RCX, b);
    em_.test_rr(RCX, RCX);
    const std::size_t to_nonzero = em_.jcc(Cond::Ne);
    em_.xor_r32(RAX);  // b == 0: result 0
    const std::size_t to_end_zero = em_.jmp();
    em_.patch_to_here(to_nonzero);
    em_.cmp_ri8(RCX, -1);
    const std::size_t to_div1 = em_.jcc(Cond::Ne);
    em_.mov_ri(RDX, std::numeric_limits<std::int64_t>::min());
    em_.cmp_rr(RAX, RDX);
    const std::size_t to_div2 = em_.jcc(Cond::Ne);
    if (want_rem) em_.xor_r32(RAX);  // INT64_MIN % -1 == 0; div keeps rax == a
    const std::size_t to_end_min = em_.jmp();
    em_.patch_to_here(to_div1);
    em_.patch_to_here(to_div2);
    em_.cqo();
    em_.idiv_r(RCX);
    if (want_rem) em_.mov_rr(RAX, RDX);
    em_.patch_to_here(to_end_zero);
    em_.patch_to_here(to_end_min);
    store(a, RAX);
  }

  X64Emitter& em_;
  const Chunk& ch_;
  std::int32_t frame_ = 0;
};

}  // namespace detail

// Compile a method's chunks into one executable page.  Per-chunk fallback:
// an unsupported chunk yields a null entry; page-allocation or mprotect
// failure yields an entirely invalid (all-interpreter) set.
inline ChunkSet compile_chunks(std::span<const Chunk* const> chunks, int arity) {
  ChunkSet out;
  X64Emitter em;
  std::vector<std::size_t> offsets(chunks.size());
  std::vector<bool> ok(chunks.size(), false);
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    offsets[i] = em.size();
    detail::ChunkCompiler cc(em, *chunks[i]);
    ok[i] = cc.compile(arity);
  }
  if (em.size() == 0) return out;
  auto page = std::make_shared<ExecPage>(ExecPage::allocate(em.size()));
  if (!page->is_valid()) return out;
  std::memcpy(page->writable(), em.code().data(), em.size());
  if (!page->protect_exec()) return out;
  out.page_ = std::move(page);
  out.fns_.resize(chunks.size(), nullptr);
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    if (ok[i]) {
      out.fns_[i] = reinterpret_cast<Fn>(
          const_cast<std::uint8_t*>(out.page_->code() + offsets[i]));
    }
  }
  return out;
}

#else  // !TB_SPEC_JIT_SUPPORTED

// Fallback build: no code is ever produced; every entry stays null and the
// interpreter runs everything.
inline ChunkSet compile_chunks(std::span<const Chunk* const>, int) { return {}; }

#endif  // TB_SPEC_JIT_SUPPORTED

}  // namespace tb::spec::jit
