// Executable-memory allocation for the spec-bytecode JIT.
//
// The page lifecycle is strict W^X: pages are mmap'd READ|WRITE, machine
// code is copied in, and `protect_exec()` flips them to READ|EXEC before
// the first call — at no point is a mapping both writable and executable.
// Once executable, a page is immutable until munmap; re-compilation
// allocates a fresh mapping rather than re-opening an old one.
//
// TB_SPEC_JIT_SUPPORTED gates the whole JIT subsystem: it requires an
// x86-64 target and a POSIX mmap/mprotect host, and can be forced off with
// -DTASKBATCH_SPEC_JIT_OFF (the CMake option TASKBATCH_SPEC_JIT=OFF) so the
// interpreter-fallback build is testable on x86 hosts too.  Everything
// downstream (emitter, compiler, VM dispatch) compiles to the fallback on
// unsupported targets instead of #error-ing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>

#if !defined(TASKBATCH_SPEC_JIT_OFF) && defined(__x86_64__) && \
    (defined(__linux__) || defined(__APPLE__) || defined(__FreeBSD__))
#define TB_SPEC_JIT_SUPPORTED 1
#else
#define TB_SPEC_JIT_SUPPORTED 0
#endif

#if TB_SPEC_JIT_SUPPORTED
#include <sys/mman.h>
#include <unistd.h>
#endif

namespace tb::spec::jit {

#if TB_SPEC_JIT_SUPPORTED

// One anonymous private mapping holding jitted code.  Move-only; the
// destructor unmaps.  Allocation failure is reported by is_valid() == false
// (callers fall back to the interpreter, they never throw on OOM here).
class ExecPage {
public:
  ExecPage() = default;

  static ExecPage allocate(std::size_t bytes) {
    ExecPage p;
    if (bytes == 0) return p;
    const long page = ::sysconf(_SC_PAGESIZE);
    const std::size_t ps = page > 0 ? static_cast<std::size_t>(page) : 4096;
    p.size_ = (bytes + ps - 1) / ps * ps;
    void* mem = ::mmap(nullptr, p.size_, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (mem == MAP_FAILED) {
      p.size_ = 0;
      return p;
    }
    p.base_ = static_cast<std::uint8_t*>(mem);
    return p;
  }

  ExecPage(ExecPage&& o) noexcept
      : base_(std::exchange(o.base_, nullptr)),
        size_(std::exchange(o.size_, 0)),
        exec_(std::exchange(o.exec_, false)) {}
  ExecPage& operator=(ExecPage&& o) noexcept {
    if (this != &o) {
      release();
      base_ = std::exchange(o.base_, nullptr);
      size_ = std::exchange(o.size_, 0);
      exec_ = std::exchange(o.exec_, false);
    }
    return *this;
  }
  ExecPage(const ExecPage&) = delete;
  ExecPage& operator=(const ExecPage&) = delete;
  ~ExecPage() { release(); }

  bool is_valid() const { return base_ != nullptr; }
  bool is_executable() const { return exec_; }
  std::size_t size() const { return size_; }

  // Writable view; only meaningful before protect_exec().
  std::uint8_t* writable() { return exec_ ? nullptr : base_; }

  // W -> X transition.  After this the mapping is never writable again.
  bool protect_exec() {
    if (!base_ || exec_) return exec_;
    if (::mprotect(base_, size_, PROT_READ | PROT_EXEC) != 0) return false;
    exec_ = true;
    return true;
  }

  const std::uint8_t* code() const { return exec_ ? base_ : nullptr; }

private:
  void release() {
    if (base_) ::munmap(base_, size_);
    base_ = nullptr;
    size_ = 0;
    exec_ = false;
  }

  std::uint8_t* base_ = nullptr;
  std::size_t size_ = 0;
  bool exec_ = false;
};

#else  // !TB_SPEC_JIT_SUPPORTED

// Fallback stub: never valid, so the compiler reports "no code" and every
// caller takes the interpreter path.  Keeps non-x86 / forced-off builds
// compiling the exact same call sites.
class ExecPage {
public:
  static ExecPage allocate(std::size_t) { return {}; }
  bool is_valid() const { return false; }
  bool is_executable() const { return false; }
  std::size_t size() const { return 0; }
  std::uint8_t* writable() { return nullptr; }
  bool protect_exec() { return false; }
  const std::uint8_t* code() const { return nullptr; }
};

#endif  // TB_SPEC_JIT_SUPPORTED

}  // namespace tb::spec::jit
