// Bytecode virtual machines for the §5 specification language.
//
// Two evaluators over the chunks produced by compiler.hpp:
//
//   run_chunk     — scalar stack machine (short-circuit jumps supported);
//                   one task at a time.  This is the per-task tier a
//                   conventional runtime would use.
//   eval_blocked  — W-lane batch machine over jump-free (Blocked-dialect)
//                   chunks: every stack slot is a batch<int64,W>, every
//                   instruction executes on all lanes, and divergence is
//                   handled by the *caller's* masks — the masked-execution
//                   discipline of the paper's hand-vectorized kernels (§6),
//                   obtained here mechanically from the program text.
//
// A third tier sits behind the same entry: each scalar chunk can carry a
// jitted native step function (spec/jit/jit_compiler.hpp), and the
// PreparedChunk overload of run_chunk dispatches to it when present.  The
// interpreter remains the always-available fallback — non-x86 builds,
// TB_SPEC_JIT=off, or any chunk the JIT declines compile to exactly the
// same results (the JIT reproduces wrap/total semantics bit for bit).
//
// CompiledSpecProgram packages both into a program satisfying the same
// TaskProgram / SoaProgram / SimdProgram concepts as the hand-written
// kernels, which means a *text* spec program runs through every scheduler
// and every execution layer (Block / SOA / SIMD) unchanged — the full §5.3
// transformation pipeline: parse → compile → blocked, vectorized execution.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/program.hpp"
#include "simd/batch.hpp"
#include "simd/soa.hpp"
#include "spec/arith.hpp"
#include "spec/bytecode.hpp"
#include "spec/compiler.hpp"
#include "spec/jit/jit_compiler.hpp"
#include "spec/spec_lang.hpp"

namespace tb::spec {

// ---- scalar VM --------------------------------------------------------------------

// Evaluates `ch` with the given parameters.  `stack` must provide at least
// `ch.verify(arity).max_stack` slots; CompiledSpecProgram sizes it statically.
inline std::int64_t run_chunk(const Chunk& ch, std::span<const std::int64_t> params,
                              std::span<std::int64_t> stack) {
  const std::vector<Instr>& code = ch.code();
  const std::vector<std::int64_t>& consts = ch.consts();
  std::size_t sp = 0;
  for (std::size_t pc = 0; pc < code.size(); ++pc) {
    const Instr in = code[pc];
    switch (in.op) {
      case OpCode::PushConst:
        stack[sp++] = consts[static_cast<std::size_t>(in.arg)];
        break;
      case OpCode::PushParam:
        stack[sp++] = params[static_cast<std::size_t>(in.arg)];
        break;
      case OpCode::Add:
        stack[sp - 2] = wrap_add(stack[sp - 2], stack[sp - 1]);
        --sp;
        break;
      case OpCode::Sub:
        stack[sp - 2] = wrap_sub(stack[sp - 2], stack[sp - 1]);
        --sp;
        break;
      case OpCode::Mul:
        stack[sp - 2] = wrap_mul(stack[sp - 2], stack[sp - 1]);
        --sp;
        break;
      case OpCode::Div:
        stack[sp - 2] = div_total(stack[sp - 2], stack[sp - 1]);
        --sp;
        break;
      case OpCode::Mod:
        stack[sp - 2] = mod_total(stack[sp - 2], stack[sp - 1]);
        --sp;
        break;
      case OpCode::Neg:
        stack[sp - 1] = wrap_neg(stack[sp - 1]);
        break;
      case OpCode::Shl:
        stack[sp - 1] = wrap_shl(stack[sp - 1], in.arg);
        break;
      case OpCode::CmpEq:
        stack[sp - 2] = stack[sp - 2] == stack[sp - 1];
        --sp;
        break;
      case OpCode::CmpNe:
        stack[sp - 2] = stack[sp - 2] != stack[sp - 1];
        --sp;
        break;
      case OpCode::CmpLt:
        stack[sp - 2] = stack[sp - 2] < stack[sp - 1];
        --sp;
        break;
      case OpCode::CmpLe:
        stack[sp - 2] = stack[sp - 2] <= stack[sp - 1];
        --sp;
        break;
      case OpCode::CmpGt:
        stack[sp - 2] = stack[sp - 2] > stack[sp - 1];
        --sp;
        break;
      case OpCode::CmpGe:
        stack[sp - 2] = stack[sp - 2] >= stack[sp - 1];
        --sp;
        break;
      case OpCode::LogicNot:
        stack[sp - 1] = stack[sp - 1] == 0 ? 1 : 0;
        break;
      case OpCode::LogicAnd:
        stack[sp - 2] = (stack[sp - 2] != 0 && stack[sp - 1] != 0) ? 1 : 0;
        --sp;
        break;
      case OpCode::LogicOr:
        stack[sp - 2] = (stack[sp - 2] != 0 || stack[sp - 1] != 0) ? 1 : 0;
        --sp;
        break;
      case OpCode::Bool:
        stack[sp - 1] = stack[sp - 1] != 0 ? 1 : 0;
        break;
      case OpCode::JumpIfZero:
        if (stack[sp - 1] == 0) {
          pc += static_cast<std::size_t>(in.arg);
        } else {
          --sp;
        }
        break;
      case OpCode::JumpIfNonZero:
        if (stack[sp - 1] != 0) {
          pc += static_cast<std::size_t>(in.arg);
        } else {
          --sp;
        }
        break;
      case OpCode::Return:
        return stack[sp - 1];
    }
  }
  throw std::logic_error("chunk fell off the end (verifier should reject this)");
}

// ---- jitted chunks ----------------------------------------------------------------

// A chunk paired with its (optional) jitted entry.  run_chunk on a
// PreparedChunk is the tier switch: native code when the JIT produced it,
// the interpreter above otherwise.  The jitted function allocates its own
// evaluation frame, so `stack` is only touched on the fallback path.
struct PreparedChunk {
  const Chunk* chunk = nullptr;
  jit::Fn fn = nullptr;
};

inline std::int64_t run_chunk(const PreparedChunk& pc, std::span<const std::int64_t> params,
                              std::span<std::int64_t> stack) {
  if (pc.fn != nullptr) return pc.fn(params.data());
  return run_chunk(*pc.chunk, params, stack);
}

// Whether CompiledSpecProgram compiles its scalar chunks to native code.
//   Auto — platform support AND the TB_SPEC_JIT env switch (the default);
//   Off  — interpreter only (the bench's `vm` tier, fallback tests);
//   On   — ignore the env switch; still interpreter on unsupported builds.
enum class JitMode { Auto, Off, On };

inline bool jit_mode_active(JitMode m) {
  switch (m) {
    case JitMode::Off: return false;
    case JitMode::On: return jit::supported();
    case JitMode::Auto: return jit::supported() && jit::runtime_enabled();
  }
  return false;
}

// ---- block VM ---------------------------------------------------------------------

// Wrap-around batch arithmetic: route through unsigned lanes, where overflow
// is defined, and cast back (bit pattern preserved).
template <int W>
using IBatch = simd::batch<std::int64_t, W>;
template <int W>
using UBatch = simd::batch<std::uint64_t, W>;

namespace detail {
template <int W>
inline IBatch<W> wrap_add(IBatch<W> a, IBatch<W> b) {
  return std::bit_cast<IBatch<W>>(std::bit_cast<UBatch<W>>(a) + std::bit_cast<UBatch<W>>(b));
}
template <int W>
inline IBatch<W> wrap_sub(IBatch<W> a, IBatch<W> b) {
  return std::bit_cast<IBatch<W>>(std::bit_cast<UBatch<W>>(a) - std::bit_cast<UBatch<W>>(b));
}
template <int W>
inline IBatch<W> wrap_mul(IBatch<W> a, IBatch<W> b) {
  return std::bit_cast<IBatch<W>>(std::bit_cast<UBatch<W>>(a) * std::bit_cast<UBatch<W>>(b));
}
template <int W>
inline IBatch<W> wrap_shl(IBatch<W> a, int s) {
  return std::bit_cast<IBatch<W>>(std::bit_cast<UBatch<W>>(a) << s);
}
template <int W>
inline IBatch<W> bool_batch(std::uint32_t mask) {
  return simd::select(mask, IBatch<W>::broadcast(1), IBatch<W>::zero());
}
template <int W>
inline std::uint32_t truthy(const IBatch<W>& v) {
  return simd::cmp_ne(v, IBatch<W>::zero());
}
}  // namespace detail

// Evaluates a jump-free chunk on W lanes at once.  `params[i]` supplies
// parameter i for all lanes; `stack` must provide max_stack batches.
template <int W>
inline IBatch<W> eval_blocked(const Chunk& ch, std::span<const IBatch<W>> params,
                              std::span<IBatch<W>> stack) {
  using B = IBatch<W>;
  const std::vector<Instr>& code = ch.code();
  const std::vector<std::int64_t>& consts = ch.consts();
  std::size_t sp = 0;
  for (const Instr in : code) {
    switch (in.op) {
      case OpCode::PushConst:
        stack[sp++] = B::broadcast(consts[static_cast<std::size_t>(in.arg)]);
        break;
      case OpCode::PushParam:
        stack[sp++] = params[static_cast<std::size_t>(in.arg)];
        break;
      case OpCode::Add:
        stack[sp - 2] = detail::wrap_add(stack[sp - 2], stack[sp - 1]);
        --sp;
        break;
      case OpCode::Sub:
        stack[sp - 2] = detail::wrap_sub(stack[sp - 2], stack[sp - 1]);
        --sp;
        break;
      case OpCode::Mul:
        stack[sp - 2] = detail::wrap_mul(stack[sp - 2], stack[sp - 1]);
        --sp;
        break;
      case OpCode::Div: {
        // No vector integer division on the target ISA; per-lane totals.
        B r;
        for (int i = 0; i < W; ++i) {
          r.lane[i] = div_total(stack[sp - 2].lane[i], stack[sp - 1].lane[i]);
        }
        stack[sp - 2] = r;
        --sp;
        break;
      }
      case OpCode::Mod: {
        B r;
        for (int i = 0; i < W; ++i) {
          r.lane[i] = mod_total(stack[sp - 2].lane[i], stack[sp - 1].lane[i]);
        }
        stack[sp - 2] = r;
        --sp;
        break;
      }
      case OpCode::Neg:
        stack[sp - 1] = detail::wrap_sub(B::zero(), stack[sp - 1]);
        break;
      case OpCode::Shl:
        stack[sp - 1] = detail::wrap_shl(stack[sp - 1], in.arg);
        break;
      case OpCode::CmpEq:
        stack[sp - 2] = detail::bool_batch<W>(simd::cmp_eq(stack[sp - 2], stack[sp - 1]));
        --sp;
        break;
      case OpCode::CmpNe:
        stack[sp - 2] = detail::bool_batch<W>(simd::cmp_ne(stack[sp - 2], stack[sp - 1]));
        --sp;
        break;
      case OpCode::CmpLt:
        stack[sp - 2] = detail::bool_batch<W>(simd::cmp_lt(stack[sp - 2], stack[sp - 1]));
        --sp;
        break;
      case OpCode::CmpLe:
        stack[sp - 2] = detail::bool_batch<W>(simd::cmp_le(stack[sp - 2], stack[sp - 1]));
        --sp;
        break;
      case OpCode::CmpGt:
        stack[sp - 2] = detail::bool_batch<W>(simd::cmp_gt(stack[sp - 2], stack[sp - 1]));
        --sp;
        break;
      case OpCode::CmpGe:
        stack[sp - 2] = detail::bool_batch<W>(simd::cmp_ge(stack[sp - 2], stack[sp - 1]));
        --sp;
        break;
      case OpCode::LogicNot:
        stack[sp - 1] = detail::bool_batch<W>(~detail::truthy(stack[sp - 1]) &
                                              simd::mask_all<W>);
        break;
      case OpCode::LogicAnd:
        stack[sp - 2] = detail::bool_batch<W>(detail::truthy(stack[sp - 2]) &
                                              detail::truthy(stack[sp - 1]));
        --sp;
        break;
      case OpCode::LogicOr:
        stack[sp - 2] = detail::bool_batch<W>(detail::truthy(stack[sp - 2]) |
                                              detail::truthy(stack[sp - 1]));
        --sp;
        break;
      case OpCode::Bool:
        stack[sp - 1] = detail::bool_batch<W>(detail::truthy(stack[sp - 1]));
        break;
      case OpCode::JumpIfZero:
      case OpCode::JumpIfNonZero:
        throw std::logic_error("blocked chunks must be jump-free (use CompileMode::Blocked)");
      case OpCode::Return:
        return stack[sp - 1];
    }
  }
  throw std::logic_error("chunk fell off the end (verifier should reject this)");
}

// ---- compiled spec program ----------------------------------------------------------

// A spec method compiled to bytecode in both dialects, exposed as a
// SimdProgram: the scalar tiers (is_base/leaf/expand) run the short-circuit
// scalar VM; expand_simd runs the block VM over batches of 4 tasks with
// masked child compaction.  Drop-in replacement for the AST-walking
// SpecProgram — same Task, same Block, same results.
class CompiledSpecProgram {
public:
  using Task = SpecProgram::Task;
  using Result = std::uint64_t;
  static constexpr int max_children = SpecProgram::max_children;
  static constexpr int kMaxStack = 64;

  explicit CompiledSpecProgram(const Method& m, JitMode jit_mode = JitMode::Auto)
      : scalar_(compile_method(m, CompileMode::Scalar)),
        blocked_(compile_method(m, CompileMode::Blocked)) {
    if (scalar_.max_stack > kMaxStack || blocked_.max_stack > kMaxStack) {
      throw CompileError("expression too deep: needs stack " +
                         std::to_string(std::max(scalar_.max_stack, blocked_.max_stack)));
    }
    if (scalar_.spawns.size() > static_cast<std::size_t>(max_children)) {
      throw CompileError("too many spawns (max 8)");
    }
    prepare_chunks(jit_mode);
  }

  static CompiledSpecProgram parse(std::string_view source,
                                   JitMode jit_mode = JitMode::Auto) {
    return CompiledSpecProgram(Parser(source).parse_method(), jit_mode);
  }

  // Copies and moves share the executable page (ChunkSet holds it via
  // shared_ptr) but must re-point the prepared chunks at their own
  // CompiledMethod storage.
  CompiledSpecProgram(const CompiledSpecProgram& o)
      : scalar_(o.scalar_), blocked_(o.blocked_), jit_code_(o.jit_code_) {
    rebind();
  }
  CompiledSpecProgram(CompiledSpecProgram&& o)
      : scalar_(std::move(o.scalar_)),
        blocked_(std::move(o.blocked_)),
        jit_code_(std::move(o.jit_code_)) {
    rebind();
  }
  CompiledSpecProgram& operator=(const CompiledSpecProgram& o) {
    if (this != &o) {
      scalar_ = o.scalar_;
      blocked_ = o.blocked_;
      jit_code_ = o.jit_code_;
      rebind();
    }
    return *this;
  }
  CompiledSpecProgram& operator=(CompiledSpecProgram&& o) {
    if (this != &o) {
      scalar_ = std::move(o.scalar_);
      blocked_ = std::move(o.blocked_);
      jit_code_ = std::move(o.jit_code_);
      rebind();
    }
    return *this;
  }

  const CompiledMethod& scalar_method() const { return scalar_; }
  const CompiledMethod& blocked_method() const { return blocked_; }
  int arity() const { return scalar_.arity; }

  // True when at least the base chunk runs jitted (all-or-nothing in
  // practice: the baseline JIT covers the whole verified opcode set).
  bool jit_active() const { return base_pc_.fn != nullptr; }

  static Result identity() { return 0; }
  static void combine(Result& a, const Result& b) { a += b; }

  bool is_base(const Task& t) const { return eval_scalar(base_pc_, t) != 0; }
  void leaf(const Task& t, Result& r) const {
    r += static_cast<Result>(eval_scalar(reduce_pc_, t));
  }

  template <class Emit>
  void expand(const Task& t, Emit&& emit) const {
    int slot = 0;
    for (const PreparedSpawn& s : spawn_pcs_) {
      if (!s.has_guard || eval_scalar(s.guard, t) != 0) {
        Task child{};
        for (std::size_t i = 0; i < s.args.size(); ++i) {
          child.p[i] = eval_scalar(s.args[i], t);
        }
        emit(slot, child);
      }
      ++slot;
    }
  }

  // ---- SoA layer (same storage as SpecProgram) --------------------------------
  using Block = SpecProgram::Block;
  static Task task_at(const Block& b, std::size_t i) { return SpecProgram::task_at(b, i); }
  static void append_task(Block& b, const Task& t) { SpecProgram::append_task(b, t); }

  // ---- SIMD layer ---------------------------------------------------------------
  static constexpr int simd_width = 4;  // 4 × i64 per 256-bit vector

  void expand_simd(const Block& in, std::size_t begin, std::size_t end,
                   const std::array<Block*, static_cast<std::size_t>(max_children)>& outs,
                   Result& r, std::uint64_t& leaves) const {
    using B = IBatch<simd_width>;
    std::array<B, kMaxStack> stack;
    std::array<B, 4> params;
    Result sum = 0;
    std::uint64_t leaf_count = 0;
    for (std::size_t i = begin; i < end; i += simd_width) {
      params[0] = B::loadu(in.data<0>() + i);
      params[1] = B::loadu(in.data<1>() + i);
      params[2] = B::loadu(in.data<2>() + i);
      params[3] = B::loadu(in.data<3>() + i);
      const B base_v = eval_blocked<simd_width>(blocked_.base, params, stack);
      const std::uint32_t base = detail::truthy(base_v);
      if (base != 0) {
        const B red = eval_blocked<simd_width>(blocked_.reduce, params, stack);
        sum += static_cast<Result>(
            simd::reduce_add_masked<std::int64_t>(base, red));
        leaf_count += std::popcount(base);
      }
      const std::uint32_t rec = base ^ simd::mask_all<simd_width>;
      if (rec == 0) continue;
      int slot = 0;
      for (const CompiledSpawn& s : blocked_.spawns) {
        std::uint32_t m = rec;
        if (s.has_guard) {
          m &= detail::truthy(eval_blocked<simd_width>(s.guard, params, stack));
        }
        if (m != 0) {
          std::array<B, 4> child{B::zero(), B::zero(), B::zero(), B::zero()};
          for (std::size_t a = 0; a < s.args.size(); ++a) {
            child[a] = eval_blocked<simd_width>(s.args[a], params, stack);
          }
          outs[static_cast<std::size_t>(slot)]->append_compact(m, child[0], child[1],
                                                               child[2], child[3]);
        }
        ++slot;
      }
    }
    r += sum;
    leaves += leaf_count;
  }

  Task make_root(std::initializer_list<std::int64_t> args) const {
    Task t{};
    std::size_t i = 0;
    for (const auto a : args) t.p[i++] = a;
    return t;
  }

private:
  struct PreparedSpawn {
    bool has_guard = false;
    PreparedChunk guard;
    std::vector<PreparedChunk> args;
  };

  std::int64_t eval_scalar(const PreparedChunk& pc, const Task& t) const {
    std::array<std::int64_t, kMaxStack> stack;
    return run_chunk(pc, std::span<const std::int64_t>(t.p.data(), t.p.size()), stack);
  }

  // Scalar chunks in a fixed order; index into this list == function index
  // in the ChunkSet.
  std::vector<const Chunk*> collect_chunks() const {
    std::vector<const Chunk*> chunks;
    chunks.push_back(&scalar_.base);
    chunks.push_back(&scalar_.reduce);
    for (const CompiledSpawn& s : scalar_.spawns) {
      if (s.has_guard) chunks.push_back(&s.guard);
      for (const Chunk& a : s.args) chunks.push_back(&a);
    }
    return chunks;
  }

  // Pair every scalar chunk with its jitted entry (or null).
  void prepare_chunks(JitMode jit_mode) {
    if (jit_mode_active(jit_mode)) {
      jit_code_ = jit::compile_chunks(collect_chunks(), scalar_.arity);
    }
    rebind();
  }

  // (Re)point the prepared chunks into this instance's own CompiledMethod.
  // Runs after construction and after every copy/move — PreparedChunk holds
  // raw pointers into scalar_, which must never alias another instance.
  void rebind() {
    std::size_t idx = 0;
    const auto next = [&](const Chunk& ch) {
      PreparedChunk pc{&ch, jit_code_.fn(idx)};
      ++idx;
      return pc;
    };
    base_pc_ = next(scalar_.base);
    reduce_pc_ = next(scalar_.reduce);
    spawn_pcs_.clear();
    spawn_pcs_.reserve(scalar_.spawns.size());
    for (const CompiledSpawn& s : scalar_.spawns) {
      PreparedSpawn ps;
      ps.has_guard = s.has_guard;
      if (s.has_guard) ps.guard = next(s.guard);
      ps.args.reserve(s.args.size());
      for (const Chunk& a : s.args) ps.args.push_back(next(a));
      spawn_pcs_.push_back(std::move(ps));
    }
  }

  CompiledMethod scalar_;
  CompiledMethod blocked_;
  jit::ChunkSet jit_code_;
  PreparedChunk base_pc_;
  PreparedChunk reduce_pc_;
  std::vector<PreparedSpawn> spawn_pcs_;
};

static_assert(tb::core::SimdProgram<CompiledSpecProgram>);

}  // namespace tb::spec
