// §5 specification-language front-end.
//
// The paper expresses programs in a small language — a single k-ary
// recursive method
//
//     f(p1,…,pk) ≡ if eb then sb else si
//
// optionally enclosed by a data-parallel loop (`foreach (d : data) f(d,…)`).
// This module provides that language concretely: a tokenizer, a
// recursive-descent parser, and an *interpreted* TaskProgram whose tasks
// carry the parameter tuple — so a program written as text runs through
// exactly the same task-block schedulers as the hand-written kernels
// (the §5.3 transformation: the foreach iterations become the root block,
// spawns become child emissions).
//
// Grammar (integer-valued, k ≤ 4 parameters):
//
//   program  := [foreach] method
//   foreach  := 'foreach' ident 'in' const-expr '..' const-expr ':'
//               ident '(' expr (',' expr)* ')'
//   method   := 'def' ident '(' ident (',' ident)* ')'
//               'base' expr 'reduce' expr
//               ('spawn' ['if' expr ':'] ident '(' expr (',' expr)* ')')*
//   expr     := or-expr with || && ! == != < <= > >= + - * / % unary- ( )
//               integer literals and parameter names
//
// The base expression is the paper's eb (truthy ⇒ base case); `reduce e`
// is sb (adds e to a 64-bit sum — reductions at base cases, §2.1); each
// spawn is one term of si, with an optional guard.  The optional foreach
// header is §5.2's data-parallel enclosing loop (`foreach (d : data) f(d,
// p1,…,pk)`): the loop variable ranges over [lo, hi), the call arguments
// are expressions over it, and each iteration contributes one root task —
// realized exactly as §5.3 prescribes, by strip-mining the iteration space
// into the scheduler's initial task blocks.
#pragma once

#include <array>
#include <cctype>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/program.hpp"
#include "simd/soa.hpp"
#include "spec/arith.hpp"

namespace tb::spec {

// ---- expression AST ------------------------------------------------------------

enum class Op {
  Const, Param,                       // leaves
  Add, Sub, Mul, Div, Mod, Neg,       // arithmetic
  Eq, Ne, Lt, Le, Gt, Ge,             // comparisons (0/1 valued)
  And, Or, Not,                       // logic (0/1 valued)
};

struct Expr {
  Op op = Op::Const;
  std::int64_t value = 0;  // Const: literal; Param: parameter index
  std::unique_ptr<Expr> lhs, rhs;
};

// Arithmetic follows arith.hpp: wrap-around overflow, total division (the
// semantics every execution tier — AST walk, constant folder, scalar VM,
// block VM — implements identically).
inline std::int64_t eval(const Expr& e, std::span<const std::int64_t> params) {
  switch (e.op) {
    case Op::Const: return e.value;
    case Op::Param: return params[static_cast<std::size_t>(e.value)];
    case Op::Neg: return wrap_neg(eval(*e.lhs, params));
    case Op::Not: return eval(*e.lhs, params) == 0 ? 1 : 0;
    default: break;
  }
  const std::int64_t a = eval(*e.lhs, params);
  // Short-circuit logic.
  if (e.op == Op::And) return (a != 0 && eval(*e.rhs, params) != 0) ? 1 : 0;
  if (e.op == Op::Or) return (a != 0 || eval(*e.rhs, params) != 0) ? 1 : 0;
  const std::int64_t b = eval(*e.rhs, params);
  switch (e.op) {
    case Op::Add: return wrap_add(a, b);
    case Op::Sub: return wrap_sub(a, b);
    case Op::Mul: return wrap_mul(a, b);
    case Op::Div: return div_total(a, b);
    case Op::Mod: return mod_total(a, b);
    case Op::Eq: return a == b;
    case Op::Ne: return a != b;
    case Op::Lt: return a < b;
    case Op::Le: return a <= b;
    case Op::Gt: return a > b;
    case Op::Ge: return a >= b;
    default: throw std::logic_error("bad expr");
  }
}

// ---- parsed method ---------------------------------------------------------------

struct SpawnClause {
  std::unique_ptr<Expr> guard;              // may be null (unconditional)
  std::vector<std::unique_ptr<Expr>> args;  // one per parameter
};

struct Method {
  std::string name;
  std::vector<std::string> params;
  std::unique_ptr<Expr> base;    // eb
  std::unique_ptr<Expr> reduce;  // sb's reduced value
  std::vector<SpawnClause> spawns;
};

// §5.2 data-parallel enclosing loop: `foreach d in lo..hi : f(args(d)…)`.
// Bounds are compile-time constants; call arguments are expressions over
// the single loop variable.
struct ForeachClause {
  std::string var;
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  std::vector<std::unique_ptr<Expr>> args;  // one per method parameter, over {var}
};

// One parsed source unit: a method, optionally enclosed by a foreach loop.
struct SpecUnit {
  Method method;
  std::unique_ptr<ForeachClause> loop;  // null when the unit is a bare method

  bool has_foreach() const { return loop != nullptr; }
};

// ---- parser ------------------------------------------------------------------------

class ParseError : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

class Parser {
public:
  explicit Parser(std::string_view src) : src_(src) {}

  // program := [foreach] method
  SpecUnit parse_unit() {
    SpecUnit unit;
    std::string callee;
    if (try_word("foreach")) {
      auto loop = std::make_unique<ForeachClause>();
      loop->var = ident();
      expect_word("in");
      // Bounds are constant expressions: parse with no parameters in scope.
      static const std::vector<std::string> kNoParams;
      params_ = &kNoParams;
      const auto lo = expr();
      if (!try_token("..")) throw ParseError("expected '..' in foreach range");
      const auto hi = expr();
      loop->lo = eval(*lo, {});
      loop->hi = eval(*hi, {});
      expect(':');
      callee = ident();
      expect('(');
      const std::vector<std::string> loop_params{loop->var};
      params_ = &loop_params;
      loop->args.push_back(expr());
      while (peek() == ',') {
        get();
        loop->args.push_back(expr());
      }
      expect(')');
      params_ = nullptr;
      unit.loop = std::move(loop);
    }
    unit.method = parse_method();
    if (unit.loop) {
      if (callee != unit.method.name) {
        throw ParseError("foreach must call the method it encloses");
      }
      if (unit.loop->args.size() != unit.method.params.size()) {
        throw ParseError("foreach call arity mismatch");
      }
    }
    return unit;
  }

  Method parse_method() {
    expect_word("def");
    Method m;
    m.name = ident();
    expect('(');
    m.params.push_back(ident());
    while (peek() == ',') {
      get();
      m.params.push_back(ident());
    }
    expect(')');
    if (m.params.size() > 4) throw ParseError("at most 4 parameters supported");
    params_ = &m.params;
    expect_word("base");
    m.base = expr();
    expect_word("reduce");
    m.reduce = expr();
    while (try_word("spawn")) {
      SpawnClause s;
      if (try_word("if")) {
        s.guard = expr();
        expect(':');
      }
      const std::string callee = ident();
      if (callee != m.name) throw ParseError("spawn must call the recursive method");
      expect('(');
      s.args.push_back(expr());
      while (peek() == ',') {
        get();
        s.args.push_back(expr());
      }
      expect(')');
      if (s.args.size() != m.params.size()) throw ParseError("spawn arity mismatch");
      m.spawns.push_back(std::move(s));
    }
    skip_ws();
    if (pos_ != src_.size()) throw ParseError("trailing input");
    if (m.spawns.empty()) throw ParseError("method never spawns");
    return m;
  }

private:
  // expr := and ('||' and)*
  std::unique_ptr<Expr> expr() { return binary_chain({"||"}, [&] { return and_(); }); }
  std::unique_ptr<Expr> and_() { return binary_chain({"&&"}, [&] { return cmp(); }); }
  std::unique_ptr<Expr> cmp() {
    auto lhs = sum();
    skip_ws();
    static constexpr std::pair<const char*, Op> kCmp[] = {
        {"==", Op::Eq}, {"!=", Op::Ne}, {"<=", Op::Le},
        {">=", Op::Ge}, {"<", Op::Lt},  {">", Op::Gt}};
    for (const auto& [tok, op] : kCmp) {
      if (try_token(tok)) {
        auto node = std::make_unique<Expr>();
        node->op = op;
        node->lhs = std::move(lhs);
        node->rhs = sum();
        return node;
      }
    }
    return lhs;
  }
  std::unique_ptr<Expr> sum() {
    auto lhs = term();
    while (true) {
      skip_ws();
      if (try_token("+")) {
        lhs = make(Op::Add, std::move(lhs), term());
      } else if (peek() == '-' ) {
        get();
        lhs = make(Op::Sub, std::move(lhs), term());
      } else {
        return lhs;
      }
    }
  }
  std::unique_ptr<Expr> term() {
    auto lhs = unary();
    while (true) {
      skip_ws();
      if (try_token("*")) {
        lhs = make(Op::Mul, std::move(lhs), unary());
      } else if (try_token("/")) {
        lhs = make(Op::Div, std::move(lhs), unary());
      } else if (try_token("%")) {
        lhs = make(Op::Mod, std::move(lhs), unary());
      } else {
        return lhs;
      }
    }
  }
  std::unique_ptr<Expr> unary() {
    skip_ws();
    if (try_token("!")) {
      auto node = std::make_unique<Expr>();
      node->op = Op::Not;
      node->lhs = unary();
      return node;
    }
    if (peek() == '-') {
      get();
      auto node = std::make_unique<Expr>();
      node->op = Op::Neg;
      node->lhs = unary();
      return node;
    }
    return atom();
  }
  std::unique_ptr<Expr> atom() {
    skip_ws();
    if (peek() == '(') {
      get();
      auto node = expr();
      expect(')');
      return node;
    }
    if (std::isdigit(static_cast<unsigned char>(peek()))) {
      auto node = std::make_unique<Expr>();
      node->op = Op::Const;
      while (std::isdigit(static_cast<unsigned char>(peek()))) {
        node->value = node->value * 10 + (get() - '0');
      }
      return node;
    }
    const std::string name = ident();
    for (std::size_t i = 0; i < params_->size(); ++i) {
      if ((*params_)[i] == name) {
        auto node = std::make_unique<Expr>();
        node->op = Op::Param;
        node->value = static_cast<std::int64_t>(i);
        return node;
      }
    }
    throw ParseError("unknown identifier: " + name);
  }

  template <class Sub>
  std::unique_ptr<Expr> binary_chain(std::initializer_list<const char*> toks, Sub&& sub) {
    auto lhs = sub();
    while (true) {
      skip_ws();
      bool matched = false;
      for (const char* tok : toks) {
        if (try_token(tok)) {
          lhs = make(tok[0] == '|' ? Op::Or : Op::And, std::move(lhs), sub());
          matched = true;
          break;
        }
      }
      if (!matched) return lhs;
    }
  }

  static std::unique_ptr<Expr> make(Op op, std::unique_ptr<Expr> l, std::unique_ptr<Expr> r) {
    auto node = std::make_unique<Expr>();
    node->op = op;
    node->lhs = std::move(l);
    node->rhs = std::move(r);
    return node;
  }

  void skip_ws() {
    while (pos_ < src_.size() &&
           (std::isspace(static_cast<unsigned char>(src_[pos_])) || src_[pos_] == '#')) {
      if (src_[pos_] == '#') {  // comment to end of line
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
      } else {
        ++pos_;
      }
    }
  }
  char peek() {
    skip_ws();
    return pos_ < src_.size() ? src_[pos_] : '\0';
  }
  char get() { return pos_ < src_.size() ? src_[pos_++] : '\0'; }
  void expect(char c) {
    if (peek() != c) throw ParseError(std::string("expected '") + c + "'");
    get();
  }
  bool try_token(std::string_view tok) {
    skip_ws();
    if (src_.substr(pos_, tok.size()) != tok) return false;
    // Don't let "<" match the prefix of "<=".
    if ((tok == "<" || tok == ">") && pos_ + 1 < src_.size() && src_[pos_ + 1] == '=') {
      return false;
    }
    pos_ += tok.size();
    return true;
  }
  std::string ident() {
    skip_ws();
    std::string out;
    while (pos_ < src_.size() &&
           (std::isalnum(static_cast<unsigned char>(src_[pos_])) || src_[pos_] == '_')) {
      out.push_back(src_[pos_++]);
    }
    if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0]))) {
      throw ParseError("expected identifier");
    }
    return out;
  }
  bool try_word(std::string_view word) {
    skip_ws();
    if (src_.substr(pos_, word.size()) != word) return false;
    const std::size_t after = pos_ + word.size();
    if (after < src_.size() &&
        (std::isalnum(static_cast<unsigned char>(src_[after])) || src_[after] == '_')) {
      return false;
    }
    pos_ += word.size();
    return true;
  }
  void expect_word(std::string_view word) {
    if (!try_word(word)) throw ParseError("expected '" + std::string(word) + "'");
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  const std::vector<std::string>* params_ = nullptr;
};

// ---- interpreted task program --------------------------------------------------------
//
// Tasks carry the parameter tuple (padded to 4 lanes); the program
// satisfies the same TaskProgram/SoaProgram concepts as the hand-written
// kernels, so every scheduler, layer, and statistic works unchanged.

class SpecProgram {
public:
  struct Task {
    std::array<std::int64_t, 4> p;
  };
  using Result = std::uint64_t;
  static constexpr int max_children = 8;

  explicit SpecProgram(Method m) : method_(std::move(m)) {
    if (method_.spawns.size() > static_cast<std::size_t>(max_children)) {
      throw ParseError("too many spawns (max 8)");
    }
  }

  static SpecProgram parse(std::string_view source) {
    return SpecProgram(Parser(source).parse_method());
  }

  const Method& method() const { return method_; }
  std::size_t arity() const { return method_.params.size(); }

  static Result identity() { return 0; }
  static void combine(Result& a, const Result& b) { a += b; }

  bool is_base(const Task& t) const { return eval(*method_.base, t.p) != 0; }
  void leaf(const Task& t, Result& r) const {
    r += static_cast<Result>(eval(*method_.reduce, t.p));
  }

  template <class Emit>
  void expand(const Task& t, Emit&& emit) const {
    int slot = 0;
    for (const auto& s : method_.spawns) {
      if (s.guard == nullptr || eval(*s.guard, t.p) != 0) {
        Task child{};
        for (std::size_t i = 0; i < s.args.size(); ++i) {
          child.p[i] = eval(*s.args[i], t.p);
        }
        emit(slot, child);
      }
      ++slot;
    }
  }

  using Block = simd::SoaBlock<std::int64_t, std::int64_t, std::int64_t, std::int64_t>;
  static Task task_at(const Block& b, std::size_t i) {
    const auto [a, c, d, e] = b.row(i);
    return Task{{a, c, d, e}};
  }
  static void append_task(Block& b, const Task& t) {
    b.push_back(t.p[0], t.p[1], t.p[2], t.p[3]);
  }

  Task make_root(std::initializer_list<std::int64_t> args) const {
    Task t{};
    std::size_t i = 0;
    for (const auto a : args) t.p[i++] = a;
    return t;
  }

  // §5.3: a data-parallel outer loop contributes one root task per
  // iteration, d in [lo, hi), bound to the first parameter; the remaining
  // parameters are shared.
  std::vector<Task> foreach_roots(std::int64_t lo, std::int64_t hi,
                                  std::initializer_list<std::int64_t> rest = {}) const {
    std::vector<Task> roots;
    roots.reserve(static_cast<std::size_t>(hi - lo));
    for (std::int64_t d = lo; d < hi; ++d) {
      Task t{};
      t.p[0] = d;
      std::size_t i = 1;
      for (const auto a : rest) t.p[i++] = a;
      roots.push_back(t);
    }
    return roots;
  }

private:
  Method method_;
};

// Materialize the root tasks of a foreach clause (§5.3: one root per loop
// iteration, argument expressions evaluated over the loop variable).  The
// task layout is shared by SpecProgram and CompiledSpecProgram.
inline std::vector<SpecProgram::Task> clause_roots(const ForeachClause& c) {
  std::vector<SpecProgram::Task> roots;
  if (c.hi > c.lo) roots.reserve(static_cast<std::size_t>(c.hi - c.lo));
  for (std::int64_t d = c.lo; d < c.hi; ++d) {
    SpecProgram::Task t{};
    const std::int64_t env[1] = {d};
    for (std::size_t i = 0; i < c.args.size(); ++i) {
      t.p[i] = eval(*c.args[i], env);
    }
    roots.push_back(t);
  }
  return roots;
}

// Parse a full source unit and return the program together with its root
// tasks: the foreach iterations when present, else the single root built
// from `fallback_root`.
struct LoadedSpec {
  SpecProgram program;
  std::vector<SpecProgram::Task> roots;
  bool had_foreach = false;
};

inline LoadedSpec load_spec(std::string_view source,
                            std::initializer_list<std::int64_t> fallback_root = {}) {
  SpecUnit unit = Parser(source).parse_unit();
  const bool has_loop = unit.has_foreach();
  std::vector<SpecProgram::Task> roots;
  if (has_loop) roots = clause_roots(*unit.loop);
  SpecProgram program(std::move(unit.method));
  if (!has_loop) roots.push_back(program.make_root(fallback_root));
  return {std::move(program), std::move(roots), has_loop};
}

// Reference interpreter (plain recursion) — the Ts oracle for spec programs.
inline std::uint64_t interpret_sequential(const SpecProgram& prog,
                                          const SpecProgram::Task& t) {
  if (prog.is_base(t)) {
    std::uint64_t r = 0;
    prog.leaf(t, r);
    return r;
  }
  std::uint64_t total = 0;
  prog.expand(t, [&](int, const SpecProgram::Task& c) {
    total += interpret_sequential(prog, c);
  });
  return total;
}

}  // namespace tb::spec
