// Arithmetic semantics of the specification language.
//
// Spec-language integers are 64-bit two's-complement with wrap-around
// overflow, and division/modulo are *total*: x/0 == x%0 == 0 and
// INT64_MIN / -1 wraps to INT64_MIN.  Totality is what lets blocked
// execution evaluate every lane of a task block eagerly under a mask (the
// paper's §6 masked-SIMD discipline) without lane-dependent traps, and
// wrap-around keeps the AST interpreter, the constant folder, the scalar
// VM, and the block VM bit-identical on any input — including the random
// expressions the property tests generate.
#pragma once

#include <cstdint>
#include <limits>

namespace tb::spec {

inline std::int64_t wrap_add(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) +
                                   static_cast<std::uint64_t>(b));
}
inline std::int64_t wrap_sub(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) -
                                   static_cast<std::uint64_t>(b));
}
inline std::int64_t wrap_mul(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) *
                                   static_cast<std::uint64_t>(b));
}
inline std::int64_t wrap_neg(std::int64_t a) {
  return static_cast<std::int64_t>(0 - static_cast<std::uint64_t>(a));
}
inline std::int64_t wrap_shl(std::int64_t a, int s) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a)
                                   << static_cast<unsigned>(s));
}
inline std::int64_t div_total(std::int64_t a, std::int64_t b) {
  if (b == 0) return 0;
  if (a == std::numeric_limits<std::int64_t>::min() && b == -1) return a;
  return a / b;
}
inline std::int64_t mod_total(std::int64_t a, std::int64_t b) {
  if (b == 0) return 0;
  if (a == std::numeric_limits<std::int64_t>::min() && b == -1) return 0;
  return a % b;
}

}  // namespace tb::spec
