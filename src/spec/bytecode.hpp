// Bytecode representation for §5 specification-language expressions.
//
// The spec-language front-end (spec_lang.hpp) interprets expression ASTs one
// task at a time.  That is the "input program" of the paper; its blocked
// execution wants the same expression evaluated over a whole task block.
// This module defines the compilation target that makes that efficient: a
// small stack machine whose instructions are total (no traps — division by
// zero yields 0, as in the AST interpreter), so a block VM can evaluate all
// lanes eagerly under a mask, exactly the masked-execution discipline the
// paper's hand-vectorized kernels use (§6).
//
// Two dialects share the opcode set:
//   * scalar chunks may use short-circuit jumps (JumpIfZero/JumpIfNonZero)
//     for && and ||;
//   * blocked chunks are jump-free (logic is eager: LogicAnd/LogicOr), so
//     every lane runs the same straight-line instruction sequence.
//
// A chunk carries its own static verifier (stack-effect analysis) and a
// disassembler for debugging and tests.
#pragma once

#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

namespace tb::spec {

enum class OpCode : std::uint8_t {
  // Stack pushes.
  PushConst,   // push consts[arg]
  PushParam,   // push params[arg]
  // Arithmetic (binary ops pop rhs then lhs, push result).
  Add,
  Sub,
  Mul,
  Div,         // total: x / 0 == 0
  Mod,         // total: x % 0 == 0
  Neg,
  Shl,         // strength-reduced multiply: push(pop() << arg), arg in [0,62]
  // Comparisons (push 0 or 1).
  CmpEq,
  CmpNe,
  CmpLt,
  CmpLe,
  CmpGt,
  CmpGe,
  // Logic (0/1-valued).
  LogicNot,
  LogicAnd,    // eager: (a != 0) & (b != 0)
  LogicOr,     // eager: (a != 0) | (b != 0)
  Bool,        // normalize: push(pop() != 0)
  // Control flow (scalar dialect only).  The jump is relative to the *next*
  // instruction; the tested value stays on the stack when the jump is taken
  // and is popped otherwise (the classic short-circuit encoding).
  JumpIfZero,
  JumpIfNonZero,
  Return,      // stop; the result is the single remaining stack slot
};

inline const char* mnemonic(OpCode op) {
  switch (op) {
    case OpCode::PushConst: return "push.const";
    case OpCode::PushParam: return "push.param";
    case OpCode::Add: return "add";
    case OpCode::Sub: return "sub";
    case OpCode::Mul: return "mul";
    case OpCode::Div: return "div";
    case OpCode::Mod: return "mod";
    case OpCode::Neg: return "neg";
    case OpCode::Shl: return "shl";
    case OpCode::CmpEq: return "cmp.eq";
    case OpCode::CmpNe: return "cmp.ne";
    case OpCode::CmpLt: return "cmp.lt";
    case OpCode::CmpLe: return "cmp.le";
    case OpCode::CmpGt: return "cmp.gt";
    case OpCode::CmpGe: return "cmp.ge";
    case OpCode::LogicNot: return "not";
    case OpCode::LogicAnd: return "and";
    case OpCode::LogicOr: return "or";
    case OpCode::Bool: return "bool";
    case OpCode::JumpIfZero: return "jz";
    case OpCode::JumpIfNonZero: return "jnz";
    case OpCode::Return: return "ret";
  }
  return "?";
}

struct Instr {
  OpCode op;
  std::int32_t arg = 0;  // const-pool index, param index, shift amount, or jump offset

  friend bool operator==(const Instr&, const Instr&) = default;
};

// Verification outcome: max operand-stack depth, or an error description.
struct VerifyResult {
  bool ok = false;
  int max_stack = 0;
  std::string error;
};

class Chunk {
public:
  void emit(OpCode op, std::int32_t arg = 0) { code_.push_back({op, arg}); }

  // Returns the index of the emitted instruction (for later patching).
  std::size_t emit_jump(OpCode op) {
    code_.push_back({op, 0});
    return code_.size() - 1;
  }
  // Point the jump at `at` to the instruction *after* the current end.
  void patch_jump_to_here(std::size_t at) {
    code_[at].arg = static_cast<std::int32_t>(code_.size() - (at + 1));
  }

  std::int32_t add_const(std::int64_t v) {
    for (std::size_t i = 0; i < consts_.size(); ++i) {
      if (consts_[i] == v) return static_cast<std::int32_t>(i);
    }
    consts_.push_back(v);
    return static_cast<std::int32_t>(consts_.size() - 1);
  }

  const std::vector<Instr>& code() const { return code_; }
  const std::vector<std::int64_t>& consts() const { return consts_; }
  bool empty() const { return code_.empty(); }

  // Convenience for optimizer tests: a chunk of the form [push.const, ret].
  std::optional<std::int64_t> as_constant() const {
    if (code_.size() == 2 && code_[0].op == OpCode::PushConst &&
        code_[1].op == OpCode::Return) {
      return consts_[static_cast<std::size_t>(code_[0].arg)];
    }
    return std::nullopt;
  }

  bool has_jumps() const {
    for (const Instr& in : code_) {
      if (in.op == OpCode::JumpIfZero || in.op == OpCode::JumpIfNonZero) return true;
    }
    return false;
  }

  // ---- static verification ---------------------------------------------------
  //
  // Abstract interpretation over stack depths: walks the instruction list,
  // tracking the depth at each program point; jump targets must agree on
  // depth from every incoming edge.  Rejects underflow, out-of-range
  // operands, missing/early Return, and inconsistent join depths.  The
  // returned max depth lets VMs allocate fixed-size evaluation stacks.
  VerifyResult verify(int arity) const {
    VerifyResult res;
    if (code_.empty() || code_.back().op != OpCode::Return) {
      res.error = "chunk must end with ret";
      return res;
    }
    std::vector<int> depth_at(code_.size() + 1, -1);  // -1 = not yet reached
    depth_at[0] = 0;
    int max_depth = 0;
    for (std::size_t i = 0; i < code_.size(); ++i) {
      const int d = depth_at[i];
      if (d < 0) {
        res.error = "unreachable instruction at " + std::to_string(i);
        return res;
      }
      const Instr& in = code_[i];
      int out = d;
      switch (in.op) {
        case OpCode::PushConst:
          if (in.arg < 0 || static_cast<std::size_t>(in.arg) >= consts_.size()) {
            res.error = "const index out of range at " + std::to_string(i);
            return res;
          }
          out = d + 1;
          break;
        case OpCode::PushParam:
          if (in.arg < 0 || in.arg >= arity) {
            res.error = "param index out of range at " + std::to_string(i);
            return res;
          }
          out = d + 1;
          break;
        case OpCode::Neg:
        case OpCode::LogicNot:
        case OpCode::Bool:
          if (d < 1) {
            res.error = "stack underflow at " + std::to_string(i);
            return res;
          }
          break;  // depth unchanged
        case OpCode::Shl:
          if (d < 1) {
            res.error = "stack underflow at " + std::to_string(i);
            return res;
          }
          if (in.arg < 0 || in.arg > 62) {
            res.error = "shift amount out of range at " + std::to_string(i);
            return res;
          }
          break;
        case OpCode::Add:
        case OpCode::Sub:
        case OpCode::Mul:
        case OpCode::Div:
        case OpCode::Mod:
        case OpCode::CmpEq:
        case OpCode::CmpNe:
        case OpCode::CmpLt:
        case OpCode::CmpLe:
        case OpCode::CmpGt:
        case OpCode::CmpGe:
        case OpCode::LogicAnd:
        case OpCode::LogicOr:
          if (d < 2) {
            res.error = "stack underflow at " + std::to_string(i);
            return res;
          }
          out = d - 1;
          break;
        case OpCode::JumpIfZero:
        case OpCode::JumpIfNonZero: {
          if (d < 1) {
            res.error = "stack underflow at " + std::to_string(i);
            return res;
          }
          const std::size_t target = i + 1 + static_cast<std::size_t>(in.arg);
          if (in.arg < 0 || target > code_.size() - 1) {
            res.error = "jump out of range at " + std::to_string(i);
            return res;
          }
          // Taken edge keeps the tested value (depth d); fall-through pops it.
          if (depth_at[target] >= 0 && depth_at[target] != d) {
            res.error = "inconsistent stack depth at jump target " + std::to_string(target);
            return res;
          }
          depth_at[target] = d;
          out = d - 1;
          break;
        }
        case OpCode::Return:
          if (d != 1) {
            res.error = "ret requires exactly one stack slot, have " + std::to_string(d);
            return res;
          }
          out = 0;
          break;
      }
      max_depth = std::max(max_depth, out);
      if (in.op != OpCode::Return) {
        if (depth_at[i + 1] >= 0 && depth_at[i + 1] != out) {
          res.error = "inconsistent stack depth at " + std::to_string(i + 1);
          return res;
        }
        depth_at[i + 1] = out;
      }
    }
    res.ok = true;
    res.max_stack = max_depth;
    return res;
  }

  // ---- disassembly -------------------------------------------------------------
  std::string disassemble(const std::string& label = "") const {
    std::ostringstream os;
    if (!label.empty()) os << label << ":\n";
    for (std::size_t i = 0; i < code_.size(); ++i) {
      const Instr& in = code_[i];
      os << "  " << i << "\t" << mnemonic(in.op);
      switch (in.op) {
        case OpCode::PushConst:
          os << "\t" << consts_[static_cast<std::size_t>(in.arg)];
          break;
        case OpCode::PushParam:
          os << "\tp" << in.arg;
          break;
        case OpCode::Shl:
          os << "\t" << in.arg;
          break;
        case OpCode::JumpIfZero:
        case OpCode::JumpIfNonZero:
          os << "\t-> " << (i + 1 + static_cast<std::size_t>(in.arg));
          break;
        default:
          break;
      }
      os << "\n";
    }
    return os.str();
  }

private:
  std::vector<Instr> code_;
  std::vector<std::int64_t> consts_;
};

}  // namespace tb::spec
