// Expression and method compiler for the §5 specification language.
//
// Lowers the parser's AST (spec_lang.hpp) to stack bytecode (bytecode.hpp),
// in one of two dialects:
//
//   CompileMode::Scalar  — && and || compile to short-circuit jumps; this is
//                          the fastest per-task form and mirrors what a
//                          conventional compiler would emit.
//   CompileMode::Blocked — && and || compile to eager LogicAnd/LogicOr so
//                          the chunk is straight-line (jump-free) and a
//                          block VM can run all SIMD lanes in lock-step.
//                          Eager evaluation is semantics-preserving because
//                          spec expressions are total and side-effect-free
//                          (arith.hpp) — this is precisely the transformation
//                          that makes the language vectorizable (§6).
//
// The compiler performs constant folding (bottom-up, with the language's
// wrap-around/total semantics), the algebraic identities x+0, x-0, x*0, x*1,
// !!x, and strength-reduces multiplication by powers of two to shifts.
// Every produced chunk is run through the bytecode verifier; compilation
// fails loudly rather than emit an unverifiable chunk.
#pragma once

#include <algorithm>
#include <bit>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "spec/arith.hpp"
#include "spec/bytecode.hpp"
#include "spec/spec_lang.hpp"

namespace tb::spec {

enum class CompileMode { Scalar, Blocked };

class CompileError : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

class Compiler {
public:
  explicit Compiler(CompileMode mode) : mode_(mode) {}

  // Compile one expression into a verified chunk ending in `ret`.
  Chunk compile(const Expr& e, int arity) const {
    Chunk ch;
    emit(e, ch);
    ch.emit(OpCode::Return);
    const VerifyResult v = ch.verify(arity);
    if (!v.ok) throw CompileError("compiler produced invalid chunk: " + v.error);
    return ch;
  }

private:
  // Bottom-up constant evaluation; nullopt when the subtree reads a
  // parameter.  Logic short-circuits exactly like the AST interpreter, so a
  // constant lhs can decide && / || even when the rhs is non-constant — the
  // emitter handles that case separately.
  static std::optional<std::int64_t> fold(const Expr& e) {
    switch (e.op) {
      case Op::Const: return e.value;
      case Op::Param: return std::nullopt;
      case Op::Neg: {
        const auto a = fold(*e.lhs);
        return a ? std::optional(wrap_neg(*a)) : std::nullopt;
      }
      case Op::Not: {
        const auto a = fold(*e.lhs);
        return a ? std::optional<std::int64_t>(*a == 0 ? 1 : 0) : std::nullopt;
      }
      case Op::And: {
        const auto a = fold(*e.lhs);
        if (a && *a == 0) return 0;
        const auto b = fold(*e.rhs);
        return (a && b) ? std::optional<std::int64_t>((*a != 0 && *b != 0) ? 1 : 0)
                        : std::nullopt;
      }
      case Op::Or: {
        const auto a = fold(*e.lhs);
        if (a && *a != 0) return 1;
        const auto b = fold(*e.rhs);
        return (a && b) ? std::optional<std::int64_t>((*a != 0 || *b != 0) ? 1 : 0)
                        : std::nullopt;
      }
      default: break;
    }
    const auto a = fold(*e.lhs);
    const auto b = fold(*e.rhs);
    if (!a || !b) return std::nullopt;
    switch (e.op) {
      case Op::Add: return wrap_add(*a, *b);
      case Op::Sub: return wrap_sub(*a, *b);
      case Op::Mul: return wrap_mul(*a, *b);
      case Op::Div: return div_total(*a, *b);
      case Op::Mod: return mod_total(*a, *b);
      case Op::Eq: return *a == *b;
      case Op::Ne: return *a != *b;
      case Op::Lt: return *a < *b;
      case Op::Le: return *a <= *b;
      case Op::Gt: return *a > *b;
      case Op::Ge: return *a >= *b;
      default: throw CompileError("unexpected op in fold");
    }
  }

  void emit_const(std::int64_t v, Chunk& ch) const {
    ch.emit(OpCode::PushConst, ch.add_const(v));
  }

  void emit(const Expr& e, Chunk& ch) const {
    if (const auto c = fold(e)) {
      emit_const(*c, ch);
      return;
    }
    switch (e.op) {
      case Op::Const:
      case Op::Param:
        // Const is handled by fold; Param is the only non-constant leaf.
        ch.emit(OpCode::PushParam, static_cast<std::int32_t>(e.value));
        return;
      case Op::Neg:
        emit(*e.lhs, ch);
        ch.emit(OpCode::Neg);
        return;
      case Op::Not:
        // !!x normalizes to bool(x); deeper stacks of ! reduce pairwise.
        if (e.lhs->op == Op::Not) {
          emit(*e.lhs->lhs, ch);
          ch.emit(OpCode::Bool);
        } else {
          emit(*e.lhs, ch);
          ch.emit(OpCode::LogicNot);
        }
        return;
      case Op::And:
        emit_logic(e, /*is_and=*/true, ch);
        return;
      case Op::Or:
        emit_logic(e, /*is_and=*/false, ch);
        return;
      case Op::Add:
        if (is_const_zero(*e.lhs)) return emit(*e.rhs, ch);
        if (is_const_zero(*e.rhs)) return emit(*e.lhs, ch);
        return emit_binary(e, OpCode::Add, ch);
      case Op::Sub:
        if (is_const_zero(*e.rhs)) return emit(*e.lhs, ch);
        return emit_binary(e, OpCode::Sub, ch);
      case Op::Mul:
        if (const auto r = try_mul_simplify(*e.lhs, *e.rhs, ch)) return;
        if (const auto r = try_mul_simplify(*e.rhs, *e.lhs, ch)) return;
        return emit_binary(e, OpCode::Mul, ch);
      case Op::Div: return emit_binary(e, OpCode::Div, ch);
      case Op::Mod: return emit_binary(e, OpCode::Mod, ch);
      case Op::Eq: return emit_binary(e, OpCode::CmpEq, ch);
      case Op::Ne: return emit_binary(e, OpCode::CmpNe, ch);
      case Op::Lt: return emit_binary(e, OpCode::CmpLt, ch);
      case Op::Le: return emit_binary(e, OpCode::CmpLe, ch);
      case Op::Gt: return emit_binary(e, OpCode::CmpGt, ch);
      case Op::Ge: return emit_binary(e, OpCode::CmpGe, ch);
    }
    throw CompileError("unexpected op in emit");
  }

  void emit_binary(const Expr& e, OpCode op, Chunk& ch) const {
    emit(*e.lhs, ch);
    emit(*e.rhs, ch);
    ch.emit(op);
  }

  // Multiplication by a constant 0, 1, or 2^k (k >= 1); returns true when a
  // simplified form was emitted.  Safe because operands are side-effect-free.
  std::optional<bool> try_mul_simplify(const Expr& konst, const Expr& other, Chunk& ch) const {
    const auto c = fold(konst);
    if (!c) return std::nullopt;
    if (*c == 0) {
      emit_const(0, ch);
      return true;
    }
    if (*c == 1) {
      emit(other, ch);
      return true;
    }
    if (*c > 1 && std::has_single_bit(static_cast<std::uint64_t>(*c))) {
      emit(other, ch);
      ch.emit(OpCode::Shl, std::countr_zero(static_cast<std::uint64_t>(*c)));
      return true;
    }
    return std::nullopt;
  }

  void emit_logic(const Expr& e, bool is_and, Chunk& ch) const {
    // A constant side decides (or reduces to bool(other)); fold() already
    // handled the fully-constant case.
    if (const auto a = fold(*e.lhs)) {
      if (is_and ? (*a == 0) : (*a != 0)) {
        emit_const(is_and ? 0 : 1, ch);
      } else {
        emit(*e.rhs, ch);
        ch.emit(OpCode::Bool);
      }
      return;
    }
    if (mode_ == CompileMode::Blocked) {
      emit(*e.lhs, ch);
      emit(*e.rhs, ch);
      ch.emit(is_and ? OpCode::LogicAnd : OpCode::LogicOr);
      return;
    }
    // Scalar short-circuit.  The taken edge keeps the (already 0/1) tested
    // value; the fall-through pops it and evaluates the other side.
    emit(*e.lhs, ch);
    std::size_t j;
    if (is_and) {
      j = ch.emit_jump(OpCode::JumpIfZero);  // taken value is 0: normalized
    } else {
      ch.emit(OpCode::Bool);                 // normalize so the taken value is 1
      j = ch.emit_jump(OpCode::JumpIfNonZero);
    }
    emit(*e.rhs, ch);
    ch.emit(OpCode::Bool);
    ch.patch_jump_to_here(j);
  }

  static bool is_const_zero(const Expr& e) {
    const auto c = fold(e);
    return c && *c == 0;
  }

  CompileMode mode_;
};

// ---- whole-method compilation ---------------------------------------------------

struct CompiledSpawn {
  bool has_guard = false;
  Chunk guard;              // valid when has_guard
  std::vector<Chunk> args;  // one per method parameter
};

struct CompiledMethod {
  std::string name;
  int arity = 0;
  CompileMode mode = CompileMode::Scalar;
  Chunk base;    // eb: nonzero => base case
  Chunk reduce;  // sb: value added to the running sum at base cases
  std::vector<CompiledSpawn> spawns;
  int max_stack = 0;  // max over all chunks; VMs size evaluation stacks from this

  std::string disassemble() const {
    std::string out = base.disassemble(name + ".base");
    out += reduce.disassemble(name + ".reduce");
    for (std::size_t s = 0; s < spawns.size(); ++s) {
      const std::string tag = name + ".spawn" + std::to_string(s);
      if (spawns[s].has_guard) out += spawns[s].guard.disassemble(tag + ".guard");
      for (std::size_t a = 0; a < spawns[s].args.size(); ++a) {
        out += spawns[s].args[a].disassemble(tag + ".arg" + std::to_string(a));
      }
    }
    return out;
  }
};

inline CompiledMethod compile_method(const Method& m, CompileMode mode) {
  Compiler c(mode);
  const int arity = static_cast<int>(m.params.size());
  CompiledMethod out;
  out.name = m.name;
  out.arity = arity;
  out.mode = mode;
  const auto track = [&out, arity](Chunk ch) {
    out.max_stack = std::max(out.max_stack, ch.verify(arity).max_stack);
    return ch;
  };
  out.base = track(c.compile(*m.base, arity));
  out.reduce = track(c.compile(*m.reduce, arity));
  out.spawns.reserve(m.spawns.size());
  for (const SpawnClause& s : m.spawns) {
    CompiledSpawn cs;
    if (s.guard) {
      cs.has_guard = true;
      cs.guard = track(c.compile(*s.guard, arity));
    }
    cs.args.reserve(s.args.size());
    for (const auto& a : s.args) cs.args.push_back(track(c.compile(*a, arity)));
    out.spawns.push_back(std::move(cs));
  }
  return out;
}

}  // namespace tb::spec
