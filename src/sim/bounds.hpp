// Closed-form step bounds from §4 (Theorems 1–4).
//
// All bounds are asymptotic (Θ/O); the tests multiply them by explicit
// constants when comparing against measured step counts.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace tb::sim {

inline double lg(double x) { return std::log2(std::max(1.0, x)); }

// ε in h = lg n + ε.
inline double epsilon_of(std::uint64_t n, int h) {
  return std::max(0.0, static_cast<double>(h) - lg(static_cast<double>(n)));
}

// Theorem 1 (basic, no re-expansion): Θ(min{2^ε·n/(kQ) + n/Q + lg n + ε, n}).
inline double theorem1_bound(std::uint64_t n, int h, double k, int q) {
  const double eps = epsilon_of(n, h);
  const double nn = static_cast<double>(n);
  const double qq = static_cast<double>(q);
  const double main_term =
      std::exp2(std::min(eps, 60.0)) * nn / (k * qq) + nn / qq + lg(nn) + eps;
  return std::min(main_term, nn);
}

// Theorem 2 (re-expansion): Θ(min{((ε − lg k)/k₁ + 1)·n/Q + lg n + ε, n}).
inline double theorem2_bound(std::uint64_t n, int h, double k, double k1, int q) {
  const double eps = epsilon_of(n, h);
  const double nn = static_cast<double>(n);
  const double qq = static_cast<double>(q);
  const double factor = std::max(0.0, (eps - lg(k)) / std::max(1.0, k1)) + 1.0;
  return std::min(factor * nn / qq + lg(nn) + eps, nn);
}

// Theorem 3 (sequential restart): Θ(n/Q + h) — optimal, independent of k.
inline double theorem3_bound(std::uint64_t n, int h, int q) {
  return static_cast<double>(n) / static_cast<double>(q) + static_cast<double>(h);
}

// Theorem 4 (work-stealing restart, P cores): O(n/(QP) + k·h) expected.
inline double theorem4_bound(std::uint64_t n, int h, int q, int p, double k) {
  return static_cast<double>(n) / (static_cast<double>(q) * static_cast<double>(p)) +
         k * static_cast<double>(h);
}

// Lower bound for any scheduler: max(n/(QP), h).
inline double optimal_lower_bound(std::uint64_t n, int h, int q, int p) {
  return std::max(static_cast<double>(n) / (static_cast<double>(q) * static_cast<double>(p)),
                  static_cast<double>(h));
}

}  // namespace tb::sim
