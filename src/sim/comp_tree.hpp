// Synthetic computation trees (§4 model: unit-time tasks, out-degree ≤ 2).
//
// The theory of the paper is stated over abstract trees, so the theorem
// tests and the multicore simulator run on explicitly materialized trees in
// CSR form.  Generators cover the regimes the analysis distinguishes
// through h = lg n + ε: perfect trees (ε ≈ 0), caterpillar/comb trees
// (ε ≈ h), random unbalanced trees, and fib/UTS-shaped trees.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <deque>
#include <vector>

#include "runtime/xoshiro.hpp"

namespace tb::sim {

struct CompTree {
  // CSR children: children of node v are child[first[v]] .. child[first[v+1]).
  std::vector<std::int32_t> first;
  std::vector<std::int32_t> child;
  std::vector<std::int32_t> depth;
  int height = 0;  // number of levels

  std::size_t num_nodes() const { return depth.size(); }

  int degree(std::int32_t v) const {
    return first[static_cast<std::size_t>(v) + 1] - first[static_cast<std::size_t>(v)];
  }
  bool is_leaf(std::int32_t v) const { return degree(v) == 0; }

  std::uint64_t num_leaves() const {
    std::uint64_t n = 0;
    for (std::size_t v = 0; v < num_nodes(); ++v) {
      n += is_leaf(static_cast<std::int32_t>(v)) ? 1 : 0;
    }
    return n;
  }

  // Build from a parent array (parent[0] == -1 for the root, parents appear
  // before children).
  static CompTree from_parents(const std::vector<std::int32_t>& parent) {
    assert(!parent.empty() && parent[0] == -1);
    return from_parents_multi_root(parent);
  }

  // Multi-root variant: any entry with parent -1 is a root (data-parallel
  // outer loops contribute one root per iteration, §5.3).  Parents must
  // still precede children.
  static CompTree from_parents_multi_root(const std::vector<std::int32_t>& parent) {
    CompTree t;
    const std::size_t n = parent.size();
    t.first.assign(n + 1, 0);
    t.depth.assign(n, 0);
    for (std::size_t v = 0; v < n; ++v) {
      if (parent[v] < 0) continue;
      assert(static_cast<std::size_t>(parent[v]) < v);
      t.first[static_cast<std::size_t>(parent[v]) + 1] += 1;
    }
    for (std::size_t v = 0; v < n; ++v) t.first[v + 1] += t.first[v];
    t.child.resize(t.first[n]);
    std::vector<std::int32_t> cursor(t.first.begin(), t.first.end() - 1);
    for (std::size_t v = 0; v < n; ++v) {
      if (parent[v] < 0) continue;
      t.child[static_cast<std::size_t>(cursor[static_cast<std::size_t>(parent[v])]++)] =
          static_cast<std::int32_t>(v);
      t.depth[v] = t.depth[static_cast<std::size_t>(parent[v])] + 1;
      t.height = std::max(t.height, t.depth[v] + 1);
    }
    if (n > 0) t.height = std::max(t.height, 1);
    return t;
  }

  int max_degree() const {
    int d = 0;
    for (std::size_t v = 0; v < num_nodes(); ++v) {
      d = std::max(d, degree(static_cast<std::int32_t>(v)));
    }
    return d;
  }

  // Perfect binary tree with `levels` levels (2^levels - 1 nodes).
  static CompTree perfect_binary(int levels) {
    std::vector<std::int32_t> parent;
    parent.push_back(-1);
    for (std::int32_t v = 1; v < (1 << levels) - 1; ++v) {
      parent.push_back((v - 1) / 2);
    }
    return from_parents(parent);
  }

  // A path of `length` nodes — the degenerate, zero-parallelism tree.
  static CompTree chain(int length) {
    std::vector<std::int32_t> parent(static_cast<std::size_t>(length));
    parent[0] = -1;
    for (int v = 1; v < length; ++v) parent[static_cast<std::size_t>(v)] = v - 1;
    return from_parents(parent);
  }

  // Caterpillar: a spine of `spine` nodes, each spine node also sprouting a
  // leaf — h ≈ n/2, the high-ε regime where the basic policy collapses.
  static CompTree caterpillar(int spine) {
    std::vector<std::int32_t> parent;
    parent.push_back(-1);
    std::int32_t prev = 0;
    for (int s = 1; s < spine; ++s) {
      parent.push_back(prev);                                  // leaf child
      parent.push_back(prev);                                  // next spine node
      prev = static_cast<std::int32_t>(parent.size()) - 1;
    }
    return from_parents(parent);
  }

  // Random binary tree: every node is internal with probability p_internal,
  // capped at roughly n_target nodes (generation is breadth-first so the
  // cap yields a frontier of leaves, keeping the tree well-formed).
  static CompTree random_binary(std::size_t n_target, double p_internal, std::uint64_t seed) {
    rt::Xoshiro256 rng(seed);
    std::vector<std::int32_t> parent;
    parent.push_back(-1);
    std::deque<std::int32_t> frontier{0};
    // Force the first few expansions so the tree is never degenerate.
    const std::size_t forced = std::min<std::size_t>(63, n_target / 4);
    while (!frontier.empty() && parent.size() + 2 <= n_target) {
      const std::int32_t v = frontier.front();
      frontier.pop_front();
      if (parent.size() < forced || rng.uniform01() < p_internal) {
        for (int c = 0; c < 2; ++c) {
          parent.push_back(v);
          frontier.push_back(static_cast<std::int32_t>(parent.size()) - 1);
        }
      }
    }
    return from_parents(parent);
  }

  // Fibonacci call tree: node for fib(m) has children fib(m-1), fib(m-2).
  static CompTree fib_tree(int m) {
    std::vector<std::int32_t> parent;
    std::vector<int> value;
    parent.push_back(-1);
    value.push_back(m);
    for (std::size_t v = 0; v < parent.size(); ++v) {
      if (value[v] >= 2) {
        parent.push_back(static_cast<std::int32_t>(v));
        value.push_back(value[v] - 1);
        parent.push_back(static_cast<std::int32_t>(v));
        value.push_back(value[v] - 2);
      }
    }
    return from_parents(parent);
  }
};

}  // namespace tb::sim
