// Materialize the computation tree of any TaskProgram into a CompTree so
// the discrete multicore simulator can replay the benchmark's exact tree
// shape (fig5_scalability --mode=simulated).
//
// Nodes are assigned ids in depth-first preorder, so parents always precede
// children (the CompTree CSR invariant).  Multi-root programs (data-
// parallel outer loops) become multi-root trees — the simulator seeds the
// first core's initial block with all roots, mirroring §5.3.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/program.hpp"
#include "sim/comp_tree.hpp"

namespace tb::sim {

struct MaterializeResult {
  CompTree tree;
  std::vector<std::int32_t> roots;
};

template <core::TaskProgram P>
MaterializeResult materialize(const P& p, std::span<const typename P::Task> root_tasks,
                              std::size_t max_nodes = 64u << 20,
                              bool call_leaf = false) {
  using Task = typename P::Task;
  std::vector<std::int32_t> parent;
  std::vector<std::int32_t> roots;
  std::vector<std::pair<Task, std::int32_t>> stack;  // (task, parent id)
  for (auto it = root_tasks.rbegin(); it != root_tasks.rend(); ++it) {
    stack.emplace_back(*it, -1);
  }
  typename P::Result sink = P::identity();
  while (!stack.empty()) {
    auto [t, par] = stack.back();
    stack.pop_back();
    const auto id = static_cast<std::int32_t>(parent.size());
    if (parent.size() >= max_nodes) {
      throw std::runtime_error("materialize: tree exceeds max_nodes");
    }
    parent.push_back(par);
    if (par < 0) roots.push_back(id);
    if (p.is_base(t)) {
      if (call_leaf) p.leaf(t, sink);  // e.g. knn: bounds must shrink to prune
      continue;
    }
    // Push children in reverse so preorder visits them left-to-right.
    std::vector<Task> kids;
    p.expand(t, [&](int, const Task& c) { kids.push_back(c); });
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) stack.emplace_back(*it, id);
  }
  MaterializeResult out;
  out.tree = CompTree::from_parents_multi_root(parent);
  out.roots = std::move(roots);
  return out;
}

}  // namespace tb::sim
