// Execution traces for the discrete-time simulator.
//
// When SimConfig.trace is set, the simulator appends one event per scheduler
// action — block executions (BFE/DFE) with their start time and step cost,
// restart parks, and steal attempts/successes.  Traces serve three purposes:
//
//   * validation — check_trace() cross-checks the event stream against the
//     aggregate SimResult (step/task conservation, per-core interval
//     disjointness, level sanity), catching simulator bugs the aggregate
//     counters would hide;
//   * visibility — render_timeline() draws an ASCII Gantt chart (one row
//     per core) and utilization_series() produces the per-time-bucket SIMD
//     utilization, making Figure 5's "why does policy X scale" inspectable;
//   * analysis — steal/park densities over time expose the scheduler's
//     work-finding behaviour, e.g. restart's park-then-merge bursts when a
//     subtree dies out.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace tb::sim {

enum class TraceKind : std::uint8_t {
  ExecBFE,       // block executed breadth-first (dur = ceil(size/Q) steps)
  ExecDFE,       // block executed depth-first
  Park,          // restart: block parked/merged into the deque (dur = 0)
  StealAttempt,  // one failed or self steal attempt (dur = 1)
  Steal,         // successful steal of a block from another core (dur = 1)
};

inline const char* to_string(TraceKind k) {
  switch (k) {
    case TraceKind::ExecBFE: return "bfe";
    case TraceKind::ExecDFE: return "dfe";
    case TraceKind::Park: return "park";
    case TraceKind::StealAttempt: return "steal?";
    case TraceKind::Steal: return "steal";
  }
  return "?";
}

struct TraceEvent {
  std::uint64_t t = 0;    // simulator clock when the action started
  std::uint64_t dur = 0;  // simulated steps the action occupies
  std::int32_t core = 0;
  TraceKind kind = TraceKind::ExecBFE;
  std::int32_t level = -1;   // block level, -1 when not applicable
  std::uint32_t size = 0;    // tasks in the block, 0 when not applicable

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

class Trace {
public:
  void record(std::uint64_t t, std::uint64_t dur, std::int32_t core, TraceKind kind,
              std::int32_t level, std::uint32_t size) {
    events_.push_back({t, dur, core, kind, level, size});
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }
  void clear() { events_.clear(); }

  std::uint64_t end_time() const {
    std::uint64_t end = 0;
    for (const TraceEvent& e : events_) end = std::max(end, e.t + e.dur);
    return end;
  }

  std::uint64_t count(TraceKind k) const {
    std::uint64_t n = 0;
    for (const TraceEvent& e : events_) n += (e.kind == k) ? 1 : 0;
    return n;
  }

private:
  std::vector<TraceEvent> events_;
};

// ---- validation -----------------------------------------------------------------

struct TraceCheck {
  bool ok = true;
  std::string error;

  static TraceCheck fail(std::string msg) { return {false, std::move(msg)}; }
};

// Structural invariants every valid blocked-policy trace satisfies:
//   1. a core never runs two actions that overlap in time;
//   2. executed-task total equals the sum of executed block sizes;
//   3. steal successes never exceed steal attempts (per trace totals);
//   4. levels are non-negative and sizes positive on exec events.
// `expected_tasks` / `expected_steps` (pass the SimResult counters) tie the
// trace back to the aggregate accounting; pass 0 to skip either.
inline TraceCheck check_trace(const Trace& trace, int num_cores,
                              std::uint64_t expected_tasks = 0,
                              std::uint64_t expected_steps = 0, int q = 0) {
  std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>> busy(
      static_cast<std::size_t>(num_cores));
  std::uint64_t tasks = 0, steps = 0, complete = 0, steals = 0, attempts = 0;
  for (const TraceEvent& e : trace.events()) {
    if (e.core < 0 || e.core >= num_cores) {
      return TraceCheck::fail("event on core " + std::to_string(e.core) + " out of range");
    }
    switch (e.kind) {
      case TraceKind::ExecBFE:
      case TraceKind::ExecDFE:
        if (e.size == 0) return TraceCheck::fail("exec event with empty block");
        if (e.level < 0) return TraceCheck::fail("exec event without a level");
        if (e.dur == 0) return TraceCheck::fail("exec event with zero duration");
        tasks += e.size;
        steps += e.dur;
        if (q > 0) complete += e.size / static_cast<std::uint32_t>(q);
        busy[static_cast<std::size_t>(e.core)].emplace_back(e.t, e.t + e.dur);
        break;
      case TraceKind::StealAttempt:
        ++attempts;
        busy[static_cast<std::size_t>(e.core)].emplace_back(e.t, e.t + e.dur);
        break;
      case TraceKind::Steal:
        ++steals;
        ++attempts;
        busy[static_cast<std::size_t>(e.core)].emplace_back(e.t, e.t + e.dur);
        break;
      case TraceKind::Park:
        if (e.level < 0) return TraceCheck::fail("park event without a level");
        break;  // parks are instantaneous bookkeeping
    }
  }
  for (std::size_t c = 0; c < busy.size(); ++c) {
    auto& iv = busy[c];
    std::sort(iv.begin(), iv.end());
    for (std::size_t i = 1; i < iv.size(); ++i) {
      if (iv[i].first < iv[i - 1].second) {
        return TraceCheck::fail("core " + std::to_string(c) + " actions overlap at t=" +
                                std::to_string(iv[i].first));
      }
    }
  }
  if (expected_tasks != 0 && tasks != expected_tasks) {
    return TraceCheck::fail("trace executes " + std::to_string(tasks) + " tasks, expected " +
                            std::to_string(expected_tasks));
  }
  if (expected_steps != 0 && steps != expected_steps) {
    return TraceCheck::fail("trace spans " + std::to_string(steps) + " exec steps, expected " +
                            std::to_string(expected_steps));
  }
  if (steals > attempts) return TraceCheck::fail("more steals than attempts");
  return {};
}

// ---- rendering ------------------------------------------------------------------

// ASCII Gantt chart: one row per core, `width` time buckets over the trace
// span.  Bucket glyph is the dominant activity: '#' full-rate execution
// (all steps complete), 'o' partially-utilized execution, 's' stealing,
// '.' idle.  A header row marks the time axis.
inline std::string render_timeline(const Trace& trace, int num_cores, int q, int width = 72) {
  const std::uint64_t span = std::max<std::uint64_t>(trace.end_time(), 1);
  const auto bucket_of = [&](std::uint64_t t) {
    return std::min<std::size_t>(
        static_cast<std::size_t>(t * static_cast<std::uint64_t>(width) / span),
                                 static_cast<std::size_t>(width - 1));
  };
  // Per core × bucket: accumulated exec steps, complete steps, steal steps.
  struct Cell {
    double exec = 0, complete = 0, steal = 0;
  };
  std::vector<std::vector<Cell>> grid(static_cast<std::size_t>(num_cores),
                                      std::vector<Cell>(static_cast<std::size_t>(width)));
  for (const TraceEvent& e : trace.events()) {
    if (e.kind == TraceKind::Park) continue;
    const std::size_t b0 = bucket_of(e.t);
    const std::size_t b1 = bucket_of(e.t + std::max<std::uint64_t>(e.dur, 1) - 1);
    const double per = 1.0 / static_cast<double>(b1 - b0 + 1);
    for (std::size_t b = b0; b <= b1; ++b) {
      Cell& cell = grid[static_cast<std::size_t>(e.core)][b];
      if (e.kind == TraceKind::ExecBFE || e.kind == TraceKind::ExecDFE) {
        const double steps = static_cast<double>(e.dur) * per;
        cell.exec += steps;
        cell.complete +=
            static_cast<double>(e.size / static_cast<std::uint32_t>(std::max(q, 1))) * per;
      } else {
        cell.steal += per;
      }
    }
  }
  std::string out;
  out.reserve(static_cast<std::size_t>((num_cores + 1) * (width + 16)));
  out += "t=0";
  for (int i = 3; i < width - 6; ++i) out += ' ';
  out += "t=" + std::to_string(span) + "\n";
  for (int c = 0; c < num_cores; ++c) {
    out += "core" + std::to_string(c) + (c < 10 ? " |" : "|");
    for (int b = 0; b < width; ++b) {
      const Cell& cell = grid[static_cast<std::size_t>(c)][static_cast<std::size_t>(b)];
      char glyph = '.';
      if (cell.exec > 0 && cell.exec >= cell.steal) {
        glyph = (cell.complete >= 0.95 * cell.exec) ? '#' : 'o';
      } else if (cell.steal > 0) {
        glyph = 's';
      }
      out += glyph;
    }
    out += "|\n";
  }
  return out;
}

// Per-bucket SIMD utilization (complete steps / total steps), for plotting
// utilization over time.  Buckets with no execution report 0.
inline std::vector<double> utilization_series(const Trace& trace, int q, int buckets = 64) {
  const std::uint64_t span = std::max<std::uint64_t>(trace.end_time(), 1);
  std::vector<double> total(static_cast<std::size_t>(buckets), 0.0);
  std::vector<double> complete(static_cast<std::size_t>(buckets), 0.0);
  for (const TraceEvent& e : trace.events()) {
    if (e.kind != TraceKind::ExecBFE && e.kind != TraceKind::ExecDFE) continue;
    const auto b0 = static_cast<std::size_t>(
        std::min<std::uint64_t>(e.t * static_cast<std::uint64_t>(buckets) / span,
                                static_cast<std::uint64_t>(buckets - 1)));
    const auto b1 = static_cast<std::size_t>(std::min<std::uint64_t>(
        (e.t + std::max<std::uint64_t>(e.dur, 1) - 1) * static_cast<std::uint64_t>(buckets) /
            span,
        static_cast<std::uint64_t>(buckets - 1)));
    const double per = 1.0 / static_cast<double>(b1 - b0 + 1);
    for (std::size_t b = b0; b <= b1; ++b) {
      total[b] += static_cast<double>(e.dur) * per;
      complete[b] +=
          static_cast<double>(e.size / static_cast<std::uint32_t>(std::max(q, 1))) * per;
    }
  }
  std::vector<double> out(static_cast<std::size_t>(buckets), 0.0);
  for (std::size_t b = 0; b < out.size(); ++b) {
    out[b] = total[b] > 0 ? complete[b] / total[b] : 0.0;
  }
  return out;
}

}  // namespace tb::sim
