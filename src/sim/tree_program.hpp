// Adapter that runs a materialized CompTree through the *real* task-block
// schedulers.  The theorem tests use this to measure actual step counts of
// the production scheduler implementation against the §4 closed forms,
// rather than trusting a separate model.
#pragma once

#include <array>
#include <cstdint>

#include "core/program.hpp"
#include "sim/comp_tree.hpp"
#include "simd/soa.hpp"

namespace tb::sim {

struct CompTreeProgram {
  struct Task {
    std::int32_t node;
  };
  using Result = std::uint64_t;  // leaves visited
  static constexpr int max_children = 2;

  const CompTree* tree = nullptr;

  static Result identity() { return 0; }
  static void combine(Result& a, const Result& b) { a += b; }

  bool is_base(const Task& t) const { return tree->is_leaf(t.node); }
  void leaf(const Task&, Result& r) const { r += 1; }

  template <class Emit>
  void expand(const Task& t, Emit&& emit) const {
    const auto v = static_cast<std::size_t>(t.node);
    const std::int32_t b = tree->first[v];
    const std::int32_t e = tree->first[v + 1];
    for (std::int32_t i = b; i < e; ++i) {
      emit(static_cast<int>(i - b), Task{tree->child[static_cast<std::size_t>(i)]});
    }
  }

  using Block = simd::SoaBlock<std::int32_t>;
  static Task task_at(const Block& b, std::size_t i) { return Task{std::get<0>(b.row(i))}; }
  static void append_task(Block& b, const Task& t) { b.push_back(t.node); }

  static Task root() { return Task{0}; }
};

}  // namespace tb::sim
