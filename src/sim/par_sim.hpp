// Discrete-time simulator of the parallel schedulers (§3.4) on P virtual
// cores with Q-lane SIMD units.
//
// The host for this reproduction has a single physical core, so wall-clock
// multicore scaling cannot be observed directly; this simulator executes
// the same scheduling policies under the §4 cost model — a block of t tasks
// costs ceil(t/Q) time steps, a steal attempt costs `steal_cost` steps
// (§4.3's constant c, default 1) — and reports the makespan.  Speedup
// curves T_sim(1)/T_sim(P) reproduce the *shape* of Figure 5 and validate
// Theorem 4's O(n/QP + k·h) bound.
//
// Three policies:
//   ScalarWS — classic Cilk-style work stealing on individual unit tasks
//              (the paper's "scalar" baseline)
//   Reexp    — blocked re-expansion; steals the top block when out of work
//   Restart  — blocked restart; parks sparse blocks, scans/merges, steals
//              with the §3.4 protocol (bounded BFE regrowth after a steal)
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <deque>
#include <limits>
#include <utility>
#include <vector>

#include "runtime/xoshiro.hpp"
#include "sim/comp_tree.hpp"
#include "sim/trace.hpp"

namespace tb::sim {

enum class SimPolicy { ScalarWS, Reexp, Restart };

inline const char* to_string(SimPolicy p) {
  switch (p) {
    case SimPolicy::ScalarWS: return "scalar";
    case SimPolicy::Reexp: return "reexp";
    case SimPolicy::Restart: return "restart";
  }
  return "?";
}

struct SimConfig {
  int p = 1;
  int q = 8;
  std::size_t t_dfe = 256;
  std::size_t t_bfe = 256;
  std::size_t t_restart = 32;
  SimPolicy policy = SimPolicy::Restart;
  std::uint64_t seed = 1;
  int bfe_after_steal = 2;  // §3.4: "a constant number of BFE actions"
  // §4.3: "the proof can be generalized so that a steal attempt takes c
  // time for any constant c" — the simulated cost of one steal attempt.
  std::uint64_t steal_cost = 1;
  // Opt-in instrumentation (blocked policies only).
  Trace* trace = nullptr;       // event stream (see sim/trace.hpp)
  bool track_space = false;     // record peak resident tasks (Lemma 8)
};

struct SimResult {
  std::uint64_t makespan = 0;
  std::uint64_t steal_attempts = 0;
  std::uint64_t steals = 0;
  std::uint64_t steps_total = 0;
  std::uint64_t steps_complete = 0;
  std::uint64_t supersteps = 0;
  std::uint64_t partial_supersteps = 0;
  std::uint64_t tasks = 0;
  std::uint64_t peak_space_tasks = 0;  // only when SimConfig.track_space

  double utilization() const {
    return steps_total == 0 ? 1.0
                            : static_cast<double>(steps_complete) /
                                  static_cast<double>(steps_total);
  }
};

class ParSimulator {
public:
  ParSimulator(const CompTree& tree, SimConfig cfg) : tree_(tree), cfg_(cfg) {
    cfg_.t_dfe = std::max<std::size_t>(cfg_.t_dfe, static_cast<std::size_t>(cfg_.q));
    cfg_.t_bfe = std::clamp<std::size_t>(cfg_.t_bfe, static_cast<std::size_t>(cfg_.q),
                                         cfg_.t_dfe);
    cfg_.t_restart = std::clamp<std::size_t>(cfg_.t_restart,
                                             static_cast<std::size_t>(cfg_.q), cfg_.t_dfe);
    cfg_.steal_cost = std::max<std::uint64_t>(cfg_.steal_cost, 1);
  }

  // `roots` defaults to the single node 0; multi-root trees (data-parallel
  // outer loops) seed the first core with a block of all roots.
  SimResult run(std::vector<std::int32_t> roots = {0}) {
    max_degree_ = std::max(2, tree_.max_degree());
    if (cfg_.policy == SimPolicy::ScalarWS) return run_scalar(std::move(roots));
    return run_blocked(std::move(roots));
  }

private:
  struct Blk {
    int level = 0;
    std::vector<std::int32_t> nodes;
    std::size_t size() const { return nodes.size(); }
    bool empty() const { return nodes.empty(); }
  };

  enum class Kind { BFE, DFE };

  struct Core {
    std::uint64_t free_at = 0;
    // Pending block execution, applied when the clock reaches free_at.
    bool exec_pending = false;
    Kind exec_kind = Kind::DFE;
    Blk exec_block;
    // Scheduling state.
    std::vector<std::vector<Blk>> levels;  // parked blocks per level
    Blk cur;
    bool has_cur = false;
    bool bfe_mode = true;
    bool growing = true;
    int bfe_budget = 0;  // forced BFE actions after a sparse steal (restart)
    rt::Xoshiro256 rng{0};
    // Scalar-WS state.
    std::deque<std::int32_t> nodes;
    bool node_pending = false;
    std::int32_t exec_node = -1;
  };

  // ---- scalar work stealing -------------------------------------------------

  SimResult run_scalar(std::vector<std::int32_t> roots) {
    SimResult res;
    std::vector<Core> cores(static_cast<std::size_t>(cfg_.p));
    for (std::size_t w = 0; w < cores.size(); ++w) {
      cores[w].rng = rt::Xoshiro256(cfg_.seed + 0x9e37 * (w + 1));
    }
    for (const auto r : roots) cores[0].nodes.push_back(r);
    const std::uint64_t total = tree_.num_nodes();
    std::uint64_t executed = 0;
    std::uint64_t t = 0;
    std::uint64_t last_completion = 0;
    while (executed < total) {
      // Advance the clock to the next actionable core.
      std::uint64_t next = std::numeric_limits<std::uint64_t>::max();
      for (const auto& w : cores) next = std::min(next, w.free_at);
      t = std::max(t, next);
      for (auto& w : cores) {
        if (w.free_at > t) continue;
        if (w.node_pending) {
          // Completion: children become available.
          const auto v = static_cast<std::size_t>(w.exec_node);
          for (std::int32_t i = tree_.first[v]; i < tree_.first[v + 1]; ++i) {
            w.nodes.push_back(tree_.child[static_cast<std::size_t>(i)]);
          }
          w.node_pending = false;
          ++executed;
          last_completion = t;
          res.tasks += 1;
          res.steps_total += 1;
          res.steps_complete += 1;
          if (executed == total) break;
        }
        if (!w.nodes.empty()) {
          w.exec_node = w.nodes.back();
          w.nodes.pop_back();
          w.node_pending = true;
          w.free_at = t + 1;  // unit-time task (§4 model)
        } else {
          // Steal attempt: costs cfg_.steal_cost steps (§4.3, constant c).
          res.steal_attempts += 1;
          w.free_at = t + cfg_.steal_cost;
          if (cores.size() > 1) {
            const auto victim =
                w.rng.below(static_cast<std::uint32_t>(cores.size()));
            auto& vic = cores[victim];
            if (&vic != &w && !vic.nodes.empty()) {
              w.nodes.push_back(vic.nodes.front());
              vic.nodes.pop_front();
              res.steals += 1;
            }
          }
        }
      }
    }
    res.makespan = last_completion;
    return res;
  }

  // ---- blocked policies (reexp / restart) ------------------------------------

  void expand_bfe(const Blk& in, Blk& next) {
    next.level = in.level + 1;
    for (const std::int32_t v : in.nodes) {
      const auto vv = static_cast<std::size_t>(v);
      for (std::int32_t i = tree_.first[vv]; i < tree_.first[vv + 1]; ++i) {
        next.nodes.push_back(tree_.child[static_cast<std::size_t>(i)]);
      }
    }
  }

  // Point blocking over arbitrary (bounded) out-degree: child i of every
  // node goes to kids[i].
  void expand_dfe(const Blk& in, std::vector<Blk>& kids) {
    kids.assign(static_cast<std::size_t>(max_degree_), Blk{});
    for (auto& k : kids) k.level = in.level + 1;
    for (const std::int32_t v : in.nodes) {
      const auto vv = static_cast<std::size_t>(v);
      const std::int32_t deg = tree_.first[vv + 1] - tree_.first[vv];
      for (std::int32_t i = 0; i < deg; ++i) {
        kids[static_cast<std::size_t>(i)].nodes.push_back(
            tree_.child[static_cast<std::size_t>(tree_.first[vv] + i)]);
      }
    }
  }

  static void park_merge(Core& w, Blk&& b) {
    if (b.empty()) return;
    const auto l = static_cast<std::size_t>(b.level);
    if (w.levels.size() <= l) w.levels.resize(l + 1);
    if (w.levels[l].empty()) {
      w.levels[l].push_back(std::move(b));
    } else {
      auto& dst = w.levels[l].front();
      dst.nodes.insert(dst.nodes.end(), b.nodes.begin(), b.nodes.end());
    }
  }

  static bool pop_deepest(Core& w, Blk& out) {
    for (std::size_t l = w.levels.size(); l-- > 0;) {
      if (!w.levels[l].empty()) {
        out = std::move(w.levels[l].back());
        w.levels[l].pop_back();
        return true;
      }
    }
    return false;
  }

  // Restart scan (§3.3): deepest level holding >= t_restart, else nothing.
  // Extracted blocks are capped at 2·t_dfe (§3.5 block-size bound); the
  // remainder stays parked.
  bool restart_scan(Core& w, Blk& out) {
    const std::size_t cap = 2 * cfg_.t_dfe;
    for (std::size_t l = w.levels.size(); l-- > 0;) {
      auto& lvl = w.levels[l];
      if (lvl.empty()) continue;
      for (std::size_t i = 1; i < lvl.size(); ++i) {
        lvl.front().nodes.insert(lvl.front().nodes.end(), lvl[i].nodes.begin(),
                                 lvl[i].nodes.end());
      }
      lvl.resize(1);
      if (lvl.front().size() >= cfg_.t_restart) {
        Blk& b = lvl.front();
        if (b.size() <= cap) {
          out = std::move(b);
          lvl.clear();
        } else {
          out.level = b.level;
          out.nodes.assign(b.nodes.end() - static_cast<std::ptrdiff_t>(cap), b.nodes.end());
          b.nodes.resize(b.nodes.size() - cap);
        }
        return true;
      }
    }
    return false;
  }

  // Take the victim's shallowest (top) block.
  static bool steal_top(Core& victim, Blk& out) {
    for (std::size_t l = 0; l < victim.levels.size(); ++l) {
      if (!victim.levels[l].empty()) {
        out = std::move(victim.levels[l].back());
        victim.levels[l].pop_back();
        return true;
      }
    }
    return false;
  }

  void start_execution(Core& w, SimResult& res, std::uint64_t t, std::int32_t core) {
    const std::size_t s = w.cur.size();
    assert(s > 0);
    const auto qu = static_cast<std::uint64_t>(cfg_.q);
    const std::uint64_t cost = (s + qu - 1) / qu;
    res.steps_total += cost;
    res.steps_complete += s / qu;
    res.supersteps += 1;
    res.partial_supersteps += (s < cfg_.t_restart) ? 1 : 0;
    res.tasks += s;
    w.exec_block = std::move(w.cur);
    w.has_cur = false;
    w.exec_kind = w.bfe_mode ? Kind::BFE : Kind::DFE;
    w.exec_pending = true;
    w.free_at = t + cost;
    if (cfg_.trace) {
      cfg_.trace->record(t, cost, core,
                         w.exec_kind == Kind::BFE ? TraceKind::ExecBFE : TraceKind::ExecDFE,
                         w.exec_block.level, static_cast<std::uint32_t>(s));
    }
  }

  void trace_park(std::uint64_t t, std::int32_t core, const Blk& b) {
    if (cfg_.trace && !b.empty()) {
      cfg_.trace->record(t, 0, core, TraceKind::Park, b.level,
                         static_cast<std::uint32_t>(b.size()));
    }
  }

  void complete_execution(Core& w, std::uint64_t& executed, std::uint64_t& last_completion,
                          std::uint64_t t, std::int32_t core) {
    executed += w.exec_block.size();
    last_completion = t;
    if (w.exec_kind == Kind::BFE) {
      Blk next;
      expand_bfe(w.exec_block, next);
      if (!next.empty()) {
        w.cur = std::move(next);
        w.has_cur = true;
        if (w.cur.size() >= cfg_.t_dfe) {
          w.bfe_mode = false;
          w.growing = false;
        } else if (!w.growing) {
          // Restart's single-shot BFE (after a failed scan / sparse steal).
          w.bfe_mode = false;
        }
      }
      if (w.bfe_budget > 0) {
        --w.bfe_budget;
        if (w.has_cur && w.cur.size() < cfg_.t_restart && w.bfe_budget > 0) {
          w.bfe_mode = true;  // keep regrowing, budget permitting
        }
      }
    } else {
      std::vector<Blk> kids;
      expand_dfe(w.exec_block, kids);
      for (std::size_t s = kids.size(); s-- > 1;) {
        trace_park(t, core, kids[s]);
        park_merge(w, std::move(kids[s]));
      }
      if (!kids[0].empty()) {
        w.cur = std::move(kids[0]);
        w.has_cur = true;
      }
    }
    w.exec_block = Blk{};
    w.exec_pending = false;
  }

  SimResult run_blocked(std::vector<std::int32_t> roots) {
    SimResult res;
    std::vector<Core> cores(static_cast<std::size_t>(cfg_.p));
    for (std::size_t w = 0; w < cores.size(); ++w) {
      cores[w].rng = rt::Xoshiro256(cfg_.seed + 0x9e37 * (w + 1));
    }
    cores[0].cur = Blk{0, std::move(roots)};
    cores[0].has_cur = true;
    const std::uint64_t total = tree_.num_nodes();
    std::uint64_t executed = 0;
    std::uint64_t t = 0;
    std::uint64_t last_completion = 0;
    const bool restart = cfg_.policy == SimPolicy::Restart;

    while (executed < total) {
      std::uint64_t next = std::numeric_limits<std::uint64_t>::max();
      for (const auto& w : cores) next = std::min(next, w.free_at);
      t = std::max(t, next);
      for (auto& w : cores) {
        const auto self = static_cast<std::int32_t>(&w - cores.data());
        if (w.free_at > t) continue;
        if (w.exec_pending) {
          complete_execution(w, executed, last_completion, t, self);
          if (executed == total) break;
        }
        // Mode adjustments on the current block.
        if (w.has_cur && !w.bfe_mode) {
          if (!restart && w.cur.size() < cfg_.t_bfe) {
            w.bfe_mode = true;
            w.growing = true;  // re-expansion regrows to t_dfe
          } else if (restart && w.cur.size() < cfg_.t_restart && w.bfe_budget == 0) {
            trace_park(t, self, w.cur);
            park_merge(w, std::move(w.cur));
            w.has_cur = false;
          }
        }
        if (w.has_cur && !w.cur.empty()) {
          start_execution(w, res, t, self);
          continue;
        }
        w.has_cur = false;
        // Acquire work.
        if (restart) {
          Blk found;
          if (restart_scan(w, found)) {
            w.cur = std::move(found);
            w.has_cur = true;
            w.bfe_mode = false;
            start_execution(w, res, t, self);
            continue;
          }
          // Steal (victim may be self: then this is the BFE-at-top case).
          res.steal_attempts += 1;
          w.free_at = t + cfg_.steal_cost;
          const auto victim = w.rng.below(static_cast<std::uint32_t>(cores.size()));
          Blk stolen;
          if (steal_top(cores[victim], stolen)) {
            const bool remote = victim != static_cast<std::uint32_t>(self);
            res.steals += remote ? 1 : 0;
            if (cfg_.trace) {
              cfg_.trace->record(t, cfg_.steal_cost, self,
                                 remote ? TraceKind::Steal : TraceKind::StealAttempt,
                                 stolen.level, static_cast<std::uint32_t>(stolen.size()));
            }
            w.cur = std::move(stolen);
            w.has_cur = true;
            if (w.cur.size() >= cfg_.t_restart) {
              w.bfe_mode = false;
            } else {
              w.bfe_mode = true;  // §3.4: regrow with a bounded number of BFEs
              w.growing = false;
              w.bfe_budget = cfg_.bfe_after_steal;
            }
          } else if (cfg_.trace) {
            cfg_.trace->record(t, cfg_.steal_cost, self, TraceKind::StealAttempt, -1, 0);
          }
        } else {
          Blk popped;
          if (pop_deepest(w, popped)) {
            w.cur = std::move(popped);
            w.has_cur = true;
            w.bfe_mode = false;
            start_execution(w, res, t, self);
            continue;
          }
          res.steal_attempts += 1;
          w.free_at = t + cfg_.steal_cost;
          bool stole = false;
          if (cores.size() > 1) {
            const auto victim = w.rng.below(static_cast<std::uint32_t>(cores.size()));
            if (victim != static_cast<std::uint32_t>(self)) {
              Blk stolen;
              if (steal_top(cores[victim], stolen)) {
                res.steals += 1;
                stole = true;
                if (cfg_.trace) {
                  cfg_.trace->record(t, cfg_.steal_cost, self, TraceKind::Steal, stolen.level,
                                     static_cast<std::uint32_t>(stolen.size()));
                }
                w.cur = std::move(stolen);
                w.has_cur = true;
                // Reexp steal rule: DFE if above t_bfe, else regrow with BFE.
                w.bfe_mode = w.cur.size() < cfg_.t_bfe;
                w.growing = w.bfe_mode;
              }
            }
          }
          if (!stole && cfg_.trace) {
            cfg_.trace->record(t, cfg_.steal_cost, self, TraceKind::StealAttempt, -1, 0);
          }
        }
      }
      if (cfg_.track_space) {
        std::uint64_t resident = 0;
        for (const auto& w : cores) {
          resident += w.exec_block.size() + (w.has_cur ? w.cur.size() : 0);
          for (const auto& lvl : w.levels) {
            for (const auto& b : lvl) resident += b.size();
          }
        }
        res.peak_space_tasks = std::max(res.peak_space_tasks, resident);
      }
    }
    res.makespan = last_completion;
    return res;
  }

  const CompTree& tree_;
  SimConfig cfg_;
  int max_degree_ = 2;
};

inline SimResult simulate(const CompTree& tree, SimConfig cfg,
                          std::vector<std::int32_t> roots = {0}) {
  return ParSimulator(tree, cfg).run(std::move(roots));
}

}  // namespace tb::sim
