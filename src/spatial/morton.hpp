// Morton (Z-order) curve sorting for body/point sets.
//
// Tree-traversal kernels touch memory in tree order; when the outer
// data-parallel iterations (queries/bodies) arrive in spatial order,
// adjacent lanes of a task block follow similar root-to-leaf paths — fewer
// divergent expansions, denser child blocks, better cache reuse on the
// shared tree.  Production n-body codes sort on the Z-order curve between
// timesteps for exactly this reason, and the locality sensitivity of both
// the lockstep baseline and the blocked schedulers is an ablation of its
// own (bench/ablation_locality).
//
// Codes are 30 bits (10 per axis, interleaved x→bit0), computed after
// quantizing each coordinate to a 1024-cell grid over the set's bounding
// box.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <numeric>
#include <vector>

#include "spatial/bodies.hpp"

namespace tb::spatial {

// Spread the low 10 bits of v so that bit i lands at bit 3i.
inline std::uint32_t morton_spread10(std::uint32_t v) {
  v &= 0x3ffu;
  v = (v | (v << 16)) & 0x030000ffu;
  v = (v | (v << 8)) & 0x0300f00fu;
  v = (v | (v << 4)) & 0x030c30c3u;
  v = (v | (v << 2)) & 0x09249249u;
  return v;
}

// 30-bit Morton code of a quantized grid cell (each coordinate in [0, 1024)).
inline std::uint32_t morton3(std::uint32_t gx, std::uint32_t gy, std::uint32_t gz) {
  return morton_spread10(gx) | (morton_spread10(gy) << 1) | (morton_spread10(gz) << 2);
}

// Quantize a coordinate in [lo, hi] to a 10-bit grid index.
inline std::uint32_t morton_quantize(float v, float lo, float hi) {
  if (hi <= lo) return 0;
  const float t = (v - lo) / (hi - lo);
  const auto g = static_cast<std::int32_t>(t * 1024.0f);
  return static_cast<std::uint32_t>(std::clamp(g, 0, 1023));
}

// Permutation that sorts the bodies along the Z-order curve (stable, so
// equal cells keep their relative order and results stay deterministic).
inline std::vector<std::int32_t> morton_order(const Bodies& b) {
  const std::size_t n = b.size();
  float lo[3] = {std::numeric_limits<float>::max(), std::numeric_limits<float>::max(),
                 std::numeric_limits<float>::max()};
  float hi[3] = {std::numeric_limits<float>::lowest(), std::numeric_limits<float>::lowest(),
                 std::numeric_limits<float>::lowest()};
  for (std::size_t i = 0; i < n; ++i) {
    lo[0] = std::min(lo[0], b.x[i]);
    hi[0] = std::max(hi[0], b.x[i]);
    lo[1] = std::min(lo[1], b.y[i]);
    hi[1] = std::max(hi[1], b.y[i]);
    lo[2] = std::min(lo[2], b.z[i]);
    hi[2] = std::max(hi[2], b.z[i]);
  }
  std::vector<std::uint32_t> code(n);
  for (std::size_t i = 0; i < n; ++i) {
    code[i] = morton3(morton_quantize(b.x[i], lo[0], hi[0]),
                      morton_quantize(b.y[i], lo[1], hi[1]),
                      morton_quantize(b.z[i], lo[2], hi[2]));
  }
  std::vector<std::int32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  std::stable_sort(perm.begin(), perm.end(), [&](std::int32_t a, std::int32_t c) {
    return code[static_cast<std::size_t>(a)] < code[static_cast<std::size_t>(c)];
  });
  return perm;
}

// Bodies reordered by `perm` (new index i holds old body perm[i]).
inline Bodies apply_permutation(const Bodies& b, const std::vector<std::int32_t>& perm) {
  Bodies out;
  out.resize(b.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    const auto j = static_cast<std::size_t>(perm[i]);
    out.x[i] = b.x[j];
    out.y[i] = b.y[j];
    out.z[i] = b.z[j];
    out.mass[i] = b.mass[j];
  }
  return out;
}

inline Bodies morton_sort(const Bodies& b) { return apply_permutation(b, morton_order(b)); }

// Mean distance between consecutive bodies — the locality metric the sort
// improves; exposed so tests and benches can quantify the effect.
inline double mean_neighbor_distance(const Bodies& b) {
  if (b.size() < 2) return 0.0;
  double sum = 0;
  for (std::size_t i = 1; i < b.size(); ++i) {
    const double dx = static_cast<double>(b.x[i]) - b.x[i - 1];
    const double dy = static_cast<double>(b.y[i]) - b.y[i - 1];
    const double dz = static_cast<double>(b.z[i]) - b.z[i - 1];
    sum += std::sqrt(dx * dx + dy * dy + dz * dz);
  }
  return sum / static_cast<double>(b.size() - 1);
}

}  // namespace tb::spatial
