// Balanced kd-tree over 3-D points for the point-correlation and k-NN
// traversal benchmarks.  Median splits on the widest axis; nodes carry
// bounding boxes (for ball-overlap pruning) in flat SoA columns, and leaf
// points are stored permuted and contiguous so the data-parallel base case
// is a dense loop.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <numeric>
#include <vector>

#include "simd/aligned.hpp"
#include "spatial/bodies.hpp"

namespace tb::spatial {

class KdTree {
public:
  static constexpr std::int32_t kNoChild = -1;

  // Node columns (index = node id).
  simd::aligned_vector<float> min_x, min_y, min_z, max_x, max_y, max_z;
  std::vector<std::int32_t> left, right;
  std::vector<std::int32_t> leaf_begin, leaf_end;  // point range for leaves
  // Leaf point storage, permuted into contiguous ranges.
  simd::aligned_vector<float> px, py, pz;
  std::vector<std::int32_t> point_index;  // permuted original ids
  std::int32_t root = 0;

  int num_nodes() const { return static_cast<int>(left.size()); }
  bool is_leaf(std::int32_t node) const {
    return leaf_begin[static_cast<std::size_t>(node)] >= 0;
  }

  // Squared distance from (x,y,z) to the node's bounding box.
  float box_dist2(std::int32_t node, float x, float y, float z) const {
    const auto i = static_cast<std::size_t>(node);
    const float dx = std::max({min_x[i] - x, 0.0f, x - max_x[i]});
    const float dy = std::max({min_y[i] - y, 0.0f, y - max_y[i]});
    const float dz = std::max({min_z[i] - z, 0.0f, z - max_z[i]});
    return dx * dx + dy * dy + dz * dz;
  }

  // Squared distance from (x,y,z) to the farthest corner of the node's
  // bounding box — the upper-bound companion of box_dist2, used by the
  // min/max-extent traversal (apps/minmaxdist.hpp) to prune subtrees that
  // cannot improve a query's farthest-point bound.
  float box_maxdist2(std::int32_t node, float x, float y, float z) const {
    const auto i = static_cast<std::size_t>(node);
    const float dx = std::max(x - min_x[i], max_x[i] - x);
    const float dy = std::max(y - min_y[i], max_y[i] - y);
    const float dz = std::max(z - min_z[i], max_z[i] - z);
    return dx * dx + dy * dy + dz * dz;
  }

  static KdTree build(const Bodies& pts, int leaf_capacity = 16) {
    KdTree t;
    const std::size_t n = pts.size();
    std::vector<std::int32_t> ids(n);
    std::iota(ids.begin(), ids.end(), 0);
    t.px.reserve(n);
    t.py.reserve(n);
    t.pz.reserve(n);
    t.point_index.reserve(n);
    t.root = t.build_node(pts, ids, 0, static_cast<std::int32_t>(n), leaf_capacity);
    return t;
  }

private:
  std::int32_t new_node() {
    const auto id = static_cast<std::int32_t>(left.size());
    min_x.push_back(0);
    min_y.push_back(0);
    min_z.push_back(0);
    max_x.push_back(0);
    max_y.push_back(0);
    max_z.push_back(0);
    left.push_back(kNoChild);
    right.push_back(kNoChild);
    leaf_begin.push_back(-1);
    leaf_end.push_back(-1);
    return id;
  }

  std::int32_t build_node(const Bodies& pts, std::vector<std::int32_t>& ids,
                          std::int32_t begin, std::int32_t end, int leaf_capacity) {
    const std::int32_t id = new_node();
    float lo[3] = {std::numeric_limits<float>::max(), std::numeric_limits<float>::max(),
                   std::numeric_limits<float>::max()};
    float hi[3] = {std::numeric_limits<float>::lowest(), std::numeric_limits<float>::lowest(),
                   std::numeric_limits<float>::lowest()};
    for (std::int32_t i = begin; i < end; ++i) {
      const auto p = static_cast<std::size_t>(ids[static_cast<std::size_t>(i)]);
      lo[0] = std::min(lo[0], pts.x[p]);
      hi[0] = std::max(hi[0], pts.x[p]);
      lo[1] = std::min(lo[1], pts.y[p]);
      hi[1] = std::max(hi[1], pts.y[p]);
      lo[2] = std::min(lo[2], pts.z[p]);
      hi[2] = std::max(hi[2], pts.z[p]);
    }
    const auto i = static_cast<std::size_t>(id);
    min_x[i] = lo[0];
    min_y[i] = lo[1];
    min_z[i] = lo[2];
    max_x[i] = hi[0];
    max_y[i] = hi[1];
    max_z[i] = hi[2];

    if (end - begin <= leaf_capacity) {
      leaf_begin[i] = static_cast<std::int32_t>(px.size());
      for (std::int32_t j = begin; j < end; ++j) {
        const auto p = static_cast<std::size_t>(ids[static_cast<std::size_t>(j)]);
        px.push_back(pts.x[p]);
        py.push_back(pts.y[p]);
        pz.push_back(pts.z[p]);
        point_index.push_back(ids[static_cast<std::size_t>(j)]);
      }
      leaf_end[i] = static_cast<std::int32_t>(px.size());
      return id;
    }

    int axis = 0;
    if (hi[1] - lo[1] > hi[axis] - lo[axis]) axis = 1;
    if (hi[2] - lo[2] > hi[axis] - lo[axis]) axis = 2;
    const float* coord = axis == 0 ? pts.x.data() : axis == 1 ? pts.y.data() : pts.z.data();
    const std::int32_t mid = begin + (end - begin) / 2;
    std::nth_element(ids.begin() + begin, ids.begin() + mid, ids.begin() + end,
                     [&](std::int32_t a, std::int32_t b) {
                       return coord[static_cast<std::size_t>(a)] <
                              coord[static_cast<std::size_t>(b)];
                     });
    const std::int32_t l = build_node(pts, ids, begin, mid, leaf_capacity);
    const std::int32_t r = build_node(pts, ids, mid, end, leaf_capacity);
    left[i] = l;
    right[i] = r;
    return id;
  }
};

}  // namespace tb::spatial
