// Linear octree for Barnes-Hut.
//
// Built top-down by partitioning a permutation of body indices into octants
// until a leaf capacity is reached.  Node attributes (center of mass, mass,
// cell half-width, children) live in flat SoA arrays so the traversal
// kernels can fetch them with vector gathers keyed by node id.
#pragma once

#include <algorithm>
#include <array>
#include <cassert>
#include <cstdint>
#include <numeric>
#include <vector>

#include "simd/aligned.hpp"
#include "spatial/bodies.hpp"

namespace tb::spatial {

class Octree {
public:
  static constexpr std::int32_t kNoChild = -1;

  // Node attribute columns (index = node id).
  simd::aligned_vector<float> com_x, com_y, com_z;  // center of mass
  simd::aligned_vector<float> mass;                 // subtree mass
  simd::aligned_vector<float> half;                 // cell half-width
  std::vector<std::array<std::int32_t, 8>> children;
  std::vector<std::int32_t> leaf_begin, leaf_end;  // body range for leaves
  std::vector<std::int32_t> body_index;            // permuted body ids
  std::int32_t root = 0;

  int num_nodes() const { return static_cast<int>(mass.size()); }
  bool is_leaf(std::int32_t node) const {
    return leaf_begin[static_cast<std::size_t>(node)] >= 0;
  }

  static Octree build(const Bodies& bodies, int leaf_capacity = 8) {
    Octree t;
    const std::size_t n = bodies.size();
    t.body_index.resize(n);
    std::iota(t.body_index.begin(), t.body_index.end(), 0);
    // Cubic bounding box around all bodies.
    float lo = bodies.x.empty() ? -1.0f : bodies.x[0];
    float hi = lo;
    for (std::size_t i = 0; i < n; ++i) {
      lo = std::min({lo, bodies.x[i], bodies.y[i], bodies.z[i]});
      hi = std::max({hi, bodies.x[i], bodies.y[i], bodies.z[i]});
    }
    const float cx = (lo + hi) * 0.5f;
    const float hw = std::max((hi - lo) * 0.5f, 1e-6f) * 1.0001f;
    t.root = t.build_node(bodies, 0, static_cast<std::int32_t>(n), cx, cx, cx, hw,
                          leaf_capacity, 0);
    return t;
  }

private:
  std::int32_t new_node(float hw) {
    const auto id = static_cast<std::int32_t>(mass.size());
    com_x.push_back(0);
    com_y.push_back(0);
    com_z.push_back(0);
    mass.push_back(0);
    half.push_back(hw);
    children.push_back({kNoChild, kNoChild, kNoChild, kNoChild, kNoChild, kNoChild, kNoChild,
                        kNoChild});
    leaf_begin.push_back(-1);
    leaf_end.push_back(-1);
    return id;
  }

  std::int32_t build_node(const Bodies& b, std::int32_t begin, std::int32_t end, float cx,
                          float cy, float cz, float hw, int leaf_capacity, int depth) {
    const std::int32_t id = new_node(hw);
    // Center of mass of the range.
    double mx = 0, my = 0, mz = 0, m = 0;
    for (std::int32_t i = begin; i < end; ++i) {
      const auto bi = static_cast<std::size_t>(body_index[static_cast<std::size_t>(i)]);
      mx += static_cast<double>(b.mass[bi]) * b.x[bi];
      my += static_cast<double>(b.mass[bi]) * b.y[bi];
      mz += static_cast<double>(b.mass[bi]) * b.z[bi];
      m += b.mass[bi];
    }
    mass[static_cast<std::size_t>(id)] = static_cast<float>(m);
    if (m > 0) {
      com_x[static_cast<std::size_t>(id)] = static_cast<float>(mx / m);
      com_y[static_cast<std::size_t>(id)] = static_cast<float>(my / m);
      com_z[static_cast<std::size_t>(id)] = static_cast<float>(mz / m);
    } else {
      com_x[static_cast<std::size_t>(id)] = cx;
      com_y[static_cast<std::size_t>(id)] = cy;
      com_z[static_cast<std::size_t>(id)] = cz;
    }
    if (end - begin <= leaf_capacity || depth > 60) {
      leaf_begin[static_cast<std::size_t>(id)] = begin;
      leaf_end[static_cast<std::size_t>(id)] = end;
      return id;
    }
    // Partition the range into the eight octants.
    const auto octant_of = [&](std::int32_t body) {
      const auto bi = static_cast<std::size_t>(body);
      return (b.x[bi] >= cx ? 1 : 0) | (b.y[bi] >= cy ? 2 : 0) | (b.z[bi] >= cz ? 4 : 0);
    };
    std::array<std::int32_t, 9> bounds{};
    bounds[0] = begin;
    auto* base = body_index.data();
    std::int32_t cursor = begin;
    for (int oct = 0; oct < 8; ++oct) {
      auto* mid = std::partition(base + cursor, base + end,
                                 [&](std::int32_t body) { return octant_of(body) == oct; });
      cursor = static_cast<std::int32_t>(mid - base);
      bounds[static_cast<std::size_t>(oct) + 1] = cursor;
    }
    const float qw = hw * 0.5f;
    for (int oct = 0; oct < 8; ++oct) {
      const std::int32_t s = bounds[static_cast<std::size_t>(oct)];
      const std::int32_t e = bounds[static_cast<std::size_t>(oct) + 1];
      if (s == e) continue;
      const float ox = cx + ((oct & 1) ? qw : -qw);
      const float oy = cy + ((oct & 2) ? qw : -qw);
      const float oz = cz + ((oct & 4) ? qw : -qw);
      const std::int32_t kid = build_node(b, s, e, ox, oy, oz, qw, leaf_capacity, depth + 1);
      children[static_cast<std::size_t>(id)][static_cast<std::size_t>(oct)] = kid;
    }
    return id;
  }
};

}  // namespace tb::spatial
