// Point and body sets in structure-of-arrays layout, plus the generators
// used by the tree-traversal benchmarks: a uniform cube and the Plummer
// model (the standard N-body benchmark distribution, strongly clustered —
// which is what makes Barnes-Hut traversals irregular).
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "runtime/xoshiro.hpp"
#include "simd/aligned.hpp"

namespace tb::spatial {

struct Bodies {
  simd::aligned_vector<float> x, y, z, mass;

  std::size_t size() const { return x.size(); }

  void resize(std::size_t n) {
    x.resize(n);
    y.resize(n);
    z.resize(n);
    mass.resize(n);
  }

  static Bodies uniform_cube(std::size_t n, std::uint64_t seed = 1234) {
    Bodies b;
    b.resize(n);
    rt::Xoshiro256 rng(seed);
    for (std::size_t i = 0; i < n; ++i) {
      b.x[i] = static_cast<float>(rng.uniform01()) * 2.0f - 1.0f;
      b.y[i] = static_cast<float>(rng.uniform01()) * 2.0f - 1.0f;
      b.z[i] = static_cast<float>(rng.uniform01()) * 2.0f - 1.0f;
      b.mass[i] = 1.0f / static_cast<float>(n);
    }
    return b;
  }

  // Plummer sphere (Aarseth, Henon & Wielen 1974 sampling), truncated to
  // keep outliers from blowing up the tree's bounding box.
  static Bodies plummer(std::size_t n, std::uint64_t seed = 1234) {
    Bodies b;
    b.resize(n);
    rt::Xoshiro256 rng(seed);
    constexpr double kScale = 16.0;  // truncation radius
    for (std::size_t i = 0; i < n; ++i) {
      double r;
      do {
        const double m = rng.uniform01() * 0.999;
        r = 1.0 / std::sqrt(std::pow(m, -2.0 / 3.0) - 1.0);
      } while (r > kScale);
      const double ctheta = 2.0 * rng.uniform01() - 1.0;
      const double stheta = std::sqrt(1.0 - ctheta * ctheta);
      const double phi = 2.0 * 3.14159265358979323846 * rng.uniform01();
      b.x[i] = static_cast<float>(r * stheta * std::cos(phi));
      b.y[i] = static_cast<float>(r * stheta * std::sin(phi));
      b.z[i] = static_cast<float>(r * ctheta);
      b.mass[i] = 1.0f / static_cast<float>(n);
    }
    return b;
  }
};

}  // namespace tb::spatial
