// Dispatch-table registry: binds the per-ISA tables (compiled in their own
// flag-isolated TUs) to the runtime selection rules.  Compiled under
// baseline flags — this TU must stay executable on any host the binary
// reaches, which is also why the per-ISA tables are reached through
// declarations only.
//
// Which tables exist is a build-time fact (TB_DISPATCH_HAVE_* from CMake:
// compiler support, x86 target, TASKBATCH_DISPATCH_* options); which are
// *runnable* folds in the CPUID probe.  kernels() additionally folds in the
// TB_SIMD_ISA override via active_isa().
#include "simd/dispatch.hpp"

namespace tb::simd {

namespace sse2_impl {
const KernelTable& table();
}
#if TB_DISPATCH_HAVE_AVX2
namespace avx2_impl {
const KernelTable& table();
}
#endif
#if TB_DISPATCH_HAVE_AVX512
namespace avx512_impl {
const KernelTable& table();
}
#endif

const KernelTable* kernels_for(Isa isa) {
  if (isa > detect_isa()) return nullptr;  // compiled in or not, the host can't run it
  switch (isa) {
    case Isa::sse2:
      return &sse2_impl::table();
    case Isa::avx2:
#if TB_DISPATCH_HAVE_AVX2
      return &avx2_impl::table();
#else
      return nullptr;
#endif
    case Isa::avx512:
#if TB_DISPATCH_HAVE_AVX512
      return &avx512_impl::table();
#else
      return nullptr;
#endif
  }
  return nullptr;
}

const KernelTable* kernels_for_width(int width) {
  switch (width) {
    case 4: return kernels_for(Isa::sse2);
    case 8: return kernels_for(Isa::avx2);
    case 16: return kernels_for(Isa::avx512);
    default: return nullptr;
  }
}

const KernelTable& kernels() {
  // Selected once: highest compiled level at or below active_isa(), walking
  // down past levels the build left out (e.g. an AVX-512 host running a
  // binary whose compiler lacked -mavx512f support).
  static const KernelTable* const active = [] {
    for (int i = static_cast<int>(active_isa()); i > 0; --i) {
      if (const KernelTable* t = kernels_for(static_cast<Isa>(i))) return t;
    }
    return &sse2_impl::table();
  }();
  return *active;
}

const KernelTable* const* available_tables(int& count) {
  static const KernelTable* tables[3];
  static const int n = [] {
    int k = 0;
    for (int i = 0; i <= static_cast<int>(Isa::avx512); ++i) {
      if (const KernelTable* t = kernels_for(static_cast<Isa>(i))) tables[k++] = t;
    }
    return k;
  }();
  count = n;
  return tables;
}

}  // namespace tb::simd
