// Runtime ISA detection and the process-wide active SIMD level.
//
// `natural_width` (batch.hpp) keys the kernel templates off the *compiled*
// ISA; this header supplies the *runtime* half of multi-ISA dispatch: a
// CPUID probe classifying the host as SSE2 / AVX2 / AVX-512 and a
// process-wide `active_isa()` selected once at first use.  The selection is
// overridable through the `TB_SIMD_ISA` environment variable (values
// `sse2`, `avx2`, `avx512`) — the same kill-switch shape as `TB_SPEC_JIT`:
// lowering below the detected level always works (that is how the forced-ISA
// CTest variants pin a binary to its SSE2 tables), requesting a level the
// host cannot execute clamps back down with a one-time stderr notice, and an
// unparseable value is ignored the same way.
//
// The probe checks OS state as well as CPU feature bits: AVX requires
// OSXSAVE + XCR0 YMM enablement, AVX-512 additionally the opmask/ZMM/Hi16
// XCR0 bits and the F+BW+VL feature trio the dispatch kernels are compiled
// against (dispatch.hpp).  Non-x86 builds detect `sse2`, which names the
// portable baseline tables (scalar `simd::batch` loops), not the x86 ISA.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string_view>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#define TB_ISA_X86 1
#else
#define TB_ISA_X86 0
#endif

namespace tb::simd {

// Ordered: each level is a strict superset of the previous, so levels
// compare with <.  `sse2` doubles as the portable baseline on non-x86.
enum class Isa : int { sse2 = 0, avx2 = 1, avx512 = 2 };

inline constexpr const char* to_string(Isa isa) {
  switch (isa) {
    case Isa::sse2: return "sse2";
    case Isa::avx2: return "avx2";
    case Isa::avx512: return "avx512";
  }
  return "?";
}

inline std::optional<Isa> parse_isa(std::string_view s) {
  if (s == "sse2") return Isa::sse2;
  if (s == "avx2") return Isa::avx2;
  if (s == "avx512") return Isa::avx512;
  return std::nullopt;
}

namespace detail {

#if TB_ISA_X86
// XGETBV encoded as bytes so no -mxsave compile flag is needed in baseline
// translation units (the instruction itself predates AVX-512 and is legal
// whenever CPUID reports OSXSAVE).
inline std::uint64_t xgetbv0() {
  std::uint32_t eax, edx;
  __asm__ volatile(".byte 0x0f, 0x01, 0xd0" : "=a"(eax), "=d"(edx) : "c"(0));
  return (static_cast<std::uint64_t>(edx) << 32) | eax;
}
#endif

inline Isa probe_isa() {
#if TB_ISA_X86
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) return Isa::sse2;
  const bool osxsave = (ecx & (1u << 27)) != 0;
  const bool avx = (ecx & (1u << 28)) != 0;
  if (!osxsave || !avx) return Isa::sse2;
  const std::uint64_t xcr0 = xgetbv0();
  if ((xcr0 & 0x6) != 0x6) return Isa::sse2;  // XMM + YMM state not OS-enabled
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) == 0) return Isa::sse2;
  const bool avx2 = (ebx & (1u << 5)) != 0;
  if (!avx2) return Isa::sse2;
  // AVX-512: opmask (bit 5), ZMM_Hi256 (bit 6), Hi16_ZMM (bit 7) OS state
  // plus the F+BW+VL trio the W=16 dispatch kernels are compiled with.
  const bool zmm_os = (xcr0 & 0xE6) == 0xE6;
  const bool f = (ebx & (1u << 16)) != 0;
  const bool bw = (ebx & (1u << 30)) != 0;
  const bool vl = (ebx & (1u << 31)) != 0;
  if (zmm_os && f && bw && vl) return Isa::avx512;
  return Isa::avx2;
#else
  return Isa::sse2;
#endif
}

}  // namespace detail

// Host capability, memoized (CPUID is cheap but called from hot-path-ish
// dispatch helpers).
inline Isa detect_isa() {
  static const Isa detected = detail::probe_isa();
  return detected;
}

// Pure resolution of (detected level, TB_SIMD_ISA value) → active level;
// split out so the clamping rules are unit-testable without setenv games.
// Returns the level plus whether the override was honored as given (false
// means clamped or unparseable — the caller may want to warn).
struct IsaResolution {
  Isa active;
  bool honored;
};

inline IsaResolution resolve_active(Isa detected, const char* env) {
  if (env == nullptr || *env == '\0') return {detected, true};
  const auto parsed = parse_isa(env);
  if (!parsed) return {detected, false};
  if (*parsed > detected) return {detected, false};  // cannot raise above the host
  return {*parsed, true};
}

// Process-wide active ISA level, selected once at first use from the CPUID
// probe and the TB_SIMD_ISA override.  Dispatch tables above this level are
// never selected implicitly (simd/dispatch.hpp).
inline Isa active_isa() {
  static const Isa active = [] {
    const char* env = std::getenv("TB_SIMD_ISA");
    const IsaResolution r = resolve_active(detect_isa(), env);
    if (!r.honored) {
      std::fprintf(stderr,
                   "taskbatch: TB_SIMD_ISA=%s not usable on this host (detected %s); "
                   "using %s\n",
                   env, to_string(detect_isa()), to_string(r.active));
    }
    return r.active;
  }();
  return active;
}

}  // namespace tb::simd
