// W=16 dispatch kernels under -mavx512f -mavx512bw -mavx512vl -mno-fma
// -ffp-contract=off (CMake) — the top rung: 16-lane traversal frames with
// mask-register compares and VPCOMPRESS streaming compaction
// (simd/compact.hpp).  Runtime selection requires the host to report the
// same F+BW+VL trio (simd/isa.hpp), so these kernels never execute on a
// narrower machine.
#define TB_DISPATCH_ISA_NS avx512_impl
#define TB_DISPATCH_ISA_ENUM avx512
#define TB_DISPATCH_WIDTH 16

#include "simd/dispatch_table.ipp"

#if !TB_HAVE_AVX512
#error "dispatch_avx512.cpp compiled without AVX-512 F+BW+VL — check the dispatch CMake flags"
#endif
