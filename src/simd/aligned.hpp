// Cache-line-aligned allocation utilities.
//
// Task blocks are streamed through SIMD lanes; keeping every column of a
// structure-of-arrays block 64-byte aligned lets block kernels use aligned
// vector loads/stores and avoids false sharing between per-worker blocks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace tb::simd {

inline constexpr std::size_t kCacheLineBytes = 64;

// Minimal C++17-style allocator that over-aligns every allocation.
template <class T, std::size_t Align = kCacheLineBytes>
class AlignedAllocator {
  static_assert((Align & (Align - 1)) == 0, "alignment must be a power of two");
  static_assert(Align >= alignof(T), "alignment must not be weaker than alignof(T)");

public:
  using value_type = T;
  using size_type = std::size_t;
  using difference_type = std::ptrdiff_t;

  template <class U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  AlignedAllocator() noexcept = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T), std::align_val_t{Align}));
  }

  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Align});
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) { return true; }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) { return false; }
};

template <class T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

}  // namespace tb::simd
