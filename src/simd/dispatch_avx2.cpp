// W=8 dispatch kernels under -mavx2 -mno-fma -ffp-contract=off (CMake).
// FMA stays off so per-lane float sequences are the same IEEE ops as the
// other widths — the bit-identical-digests contract of the dispatch-
// equivalence matrix.
#define TB_DISPATCH_ISA_NS avx2_impl
#define TB_DISPATCH_ISA_ENUM avx2
#define TB_DISPATCH_WIDTH 8

#include "simd/dispatch_table.ipp"

#if !TB_HAVE_AVX2
#error "dispatch_avx2.cpp compiled without AVX2 — check the dispatch CMake flags"
#endif
