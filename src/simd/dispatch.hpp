// Runtime multi-ISA kernel dispatch.
//
// One binary, many hosts: the width-templated traversal kernels
// (lockstep_*.hpp) are compiled three times — W=4 under baseline SSE2
// flags, W=8 under -mavx2, W=16 under -mavx512{f,bw,vl} — in separate
// translation units (per-ISA OBJECT libraries in CMake), and bound here by
// a table of plain function pointers.  Callers never instantiate a kernel
// template at an explicit width; they ask for a `KernelTable` and call
// through it, so baseline code paths contain no AVX instructions and the
// AVX paths execute only after the CPUID probe (simd/isa.hpp) has cleared
// them.
//
// ODR discipline (why this stays correct under one definition rule):
//   * Width-disjoint instantiation — the sse2 TU instantiates only W=4
//     kernels, avx2 only W=8, avx512 only W=16, so no two differently-
//     flagged TUs emit the same kernel symbol.
//   * Link order — binaries list their own objects before the dispatch
//     archive, and the archive orders sse2 before avx2 before avx512, so
//     any COMDAT shared across TUs (scalar inline helpers such as
//     KnnState::offer) resolves to baseline codegen first.  Shared scalar
//     helpers collapsing to one copy is also what makes digests bit-
//     comparable across ISA levels.
//   * Per-op float math — the per-ISA TUs compile with -ffp-contract=off
//     and without FMA, so a lane's float sequence is the same IEEE op
//     sequence at every width and the dispatch-equivalence matrix
//     (tests/dispatch_test.cpp) can assert bit-identical digests.
//
// Selection: `kernels()` picks the highest table that is (a) compiled in,
// (b) at or below `active_isa()` — which already folds in the host probe
// and the TB_SIMD_ISA override.  `kernels_for()` / `kernels_for_width()`
// fetch a specific level for forced-ISA sweeps and return nullptr when the
// level is missing or the host cannot execute it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "apps/barneshut.hpp"
#include "apps/knn.hpp"
#include "apps/minmaxdist.hpp"
#include "apps/pointcorr.hpp"
#include "core/stats.hpp"
#include "lockstep/lockstep.hpp"
#include "runtime/cacheline.hpp"
#include "runtime/hybrid.hpp"
#include "simd/isa.hpp"

namespace tb::simd {

// A type-erased serving runner: traverses one dense batch of query ids
// from the tree root.  Built by a table's make_serve_* factory and owned
// by a QueryServer kernel lane (serve/router.hpp BatchRunner has the same
// call shape — the serving layer binds lanes to tables through these).
using ServeRunner = std::function<void(const std::int32_t* ids, std::size_t count)>;

// Entry points of one ISA level.  The three scheduler rows mirror the
// kernel headers: classic masked lockstep, single-core blocked
// re-expansion (t_reexp threshold), and the hybrid vector×multicore
// executor.  `compact_store_u32` exposes the level's streaming-compaction
// rung (VPCOMPRESS / VPERMD / scalar) for differential testing: it
// left-packs the first `width` lanes of `src` by `mask` into `dst`
// (which needs `width` slots of slack) and returns the count.
struct KernelTable {
  Isa isa;
  int width;
  const char* name;

  int (*compact_store_u32)(std::uint32_t* dst, std::uint32_t mask, const std::uint32_t* src);

  void (*lockstep_knn)(const apps::KnnProgram&, lockstep::LockstepStats*);
  std::uint64_t (*lockstep_pointcorr)(const apps::PointCorrProgram&,
                                      lockstep::LockstepStats*);
  std::uint64_t (*lockstep_barneshut)(const apps::BarnesHutProgram&, float theta,
                                      lockstep::LockstepStats*);
  void (*lockstep_minmaxdist)(const apps::MinmaxDistProgram&, lockstep::LockstepStats*);

  void (*blocked_knn)(const apps::KnnProgram&, std::size_t t_reexp, core::ExecStats*);
  std::uint64_t (*blocked_pointcorr)(const apps::PointCorrProgram&, std::size_t t_reexp,
                                     core::ExecStats*);
  std::uint64_t (*blocked_barneshut)(const apps::BarnesHutProgram&, float theta,
                                     std::size_t t_reexp, core::ExecStats*);
  void (*blocked_minmaxdist)(const apps::MinmaxDistProgram&, std::size_t t_reexp,
                             core::ExecStats*);

  void (*hybrid_knn)(rt::ForkJoinPool&, const apps::KnnProgram&, const rt::HybridOptions&,
                     core::PerWorkerStats*);
  std::uint64_t (*hybrid_pointcorr)(rt::ForkJoinPool&, const apps::PointCorrProgram&,
                                    const rt::HybridOptions&, core::PerWorkerStats*);
  std::uint64_t (*hybrid_barneshut)(rt::ForkJoinPool&, const apps::BarnesHutProgram&,
                                    float theta, const rt::HybridOptions&,
                                    core::PerWorkerStats*);
  void (*hybrid_minmaxdist)(rt::ForkJoinPool&, const apps::MinmaxDistProgram&,
                            const rt::HybridOptions&, core::PerWorkerStats*);

  // Serving factories: each returns a runner that fans a dense id batch out
  // over `pool` with rt::hybrid_for and re-expands every subrange through
  // THIS table's blocked frame entry point on a persistent per-slot engine
  // of the table's width (engines stay warm across batches; ranges mapped
  // to one slot never run concurrently, so the engines need no locking —
  // the same contract as serve/pool_runner.hpp).  The program — and for
  // pointcorr the per-slot partials array, rt::hybrid_slots(pool) entries,
  // indexed by hybrid slot — must outlive the returned runner.
  ServeRunner (*make_serve_knn)(rt::ForkJoinPool&, const rt::HybridOptions&,
                                const apps::KnnProgram&);
  ServeRunner (*make_serve_pointcorr)(rt::ForkJoinPool&, const rt::HybridOptions&,
                                      const apps::PointCorrProgram&,
                                      rt::Padded<std::uint64_t>* parts);
  ServeRunner (*make_serve_minmaxdist)(rt::ForkJoinPool&, const rt::HybridOptions&,
                                       const apps::MinmaxDistProgram&);
};

// The table for `isa`, or nullptr when that level was not compiled in or
// the host cannot execute it.  Lower levels always run on higher hosts.
const KernelTable* kernels_for(Isa isa);

// The table whose lane width is `width` (4 → sse2, 8 → avx2, 16 → avx512);
// nullptr under the same conditions as kernels_for.
const KernelTable* kernels_for_width(int width);

// The process-wide active table: the highest compiled level at or below
// active_isa().  The sse2 table is always compiled, so this never fails.
const KernelTable& kernels();

// Runnable-on-this-host tables, ascending by width (sse2 first).  `count`
// receives the number of entries; the pointer is to static storage.
const KernelTable* const* available_tables(int& count);

}  // namespace tb::simd
