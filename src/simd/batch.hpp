// Portable fixed-width SIMD batch type.
//
// `batch<T, W>` models W lanes of T stored in an addressable, aligned array.
// Arithmetic is written as plain fixed-trip-count loops, which GCC/Clang
// compile to single vector instructions at -O3; the operations a compiler
// cannot derive on its own — lane-mask extraction, masked blends and
// gathers — carry explicit AVX2 fast paths.  Lane masks are plain
// `uint32_t` bitmasks (bit i == lane i), which is what the streaming
// compaction in compact.hpp consumes.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>
#include <type_traits>

#if defined(__AVX2__)
#include <immintrin.h>
#define TB_HAVE_AVX2 1
#else
#define TB_HAVE_AVX2 0
#endif

// The AVX-512 fast paths require the F+BW+VL trio — the same set the
// runtime probe (simd/isa.hpp) demands before selecting an avx512 dispatch
// table, so compile-time and runtime gates can never disagree.
#if defined(__AVX512F__) && defined(__AVX512BW__) && defined(__AVX512VL__)
#define TB_HAVE_AVX512 1
#else
#define TB_HAVE_AVX512 0
#endif

namespace tb::simd {

template <int W>
inline constexpr std::uint32_t mask_all = (W >= 32) ? 0xffffffffu : ((1u << W) - 1u);

namespace detail {
constexpr std::size_t batch_align(std::size_t bytes) { return bytes < 64 ? bytes : 64; }

#if TB_HAVE_AVX2
template <class B>
inline __m256i as_m256i(const B& b) {
  return std::bit_cast<__m256i>(b);
}
template <class B>
inline B from_m256i(__m256i v) {
  return std::bit_cast<B>(v);
}
#endif
#if TB_HAVE_AVX512
template <class B>
inline __m512i as_m512i(const B& b) {
  return std::bit_cast<__m512i>(b);
}
#endif
}  // namespace detail

template <class T, int W>
struct batch {
  static_assert(std::is_arithmetic_v<T>, "batch lanes must be arithmetic");
  static_assert(W > 0 && (W & (W - 1)) == 0, "batch width must be a power of two");

  using value_type = T;
  static constexpr int width = W;

  alignas(detail::batch_align(sizeof(T) * W)) T lane[W];

  // ---- constructors / fills -------------------------------------------------
  static batch broadcast(T x) {
    batch r;
    for (int i = 0; i < W; ++i) r.lane[i] = x;
    return r;
  }
  static batch zero() { return broadcast(T{0}); }
  static batch iota(T first, T step = T{1}) {
    batch r;
    for (int i = 0; i < W; ++i) r.lane[i] = static_cast<T>(first + static_cast<T>(i) * step);
    return r;
  }

  // ---- memory ---------------------------------------------------------------
  static batch load(const T* p) {  // p must be aligned to the batch alignment
    batch r;
    std::memcpy(r.lane, std::assume_aligned<detail::batch_align(sizeof(T) * W)>(p),
                sizeof(r.lane));
    return r;
  }
  static batch loadu(const T* p) {
    batch r;
    std::memcpy(r.lane, p, sizeof(r.lane));
    return r;
  }
  void store(T* p) const {
    std::memcpy(std::assume_aligned<detail::batch_align(sizeof(T) * W)>(p), lane, sizeof(lane));
  }
  void storeu(T* p) const { std::memcpy(p, lane, sizeof(lane)); }

  T operator[](int i) const { return lane[i]; }
  void set(int i, T v) { lane[i] = v; }

  // ---- arithmetic -----------------------------------------------------------
  friend batch operator+(batch a, batch b) {
    batch r;
    for (int i = 0; i < W; ++i) r.lane[i] = static_cast<T>(a.lane[i] + b.lane[i]);
    return r;
  }
  friend batch operator-(batch a, batch b) {
    batch r;
    for (int i = 0; i < W; ++i) r.lane[i] = static_cast<T>(a.lane[i] - b.lane[i]);
    return r;
  }
  friend batch operator*(batch a, batch b) {
    batch r;
    for (int i = 0; i < W; ++i) r.lane[i] = static_cast<T>(a.lane[i] * b.lane[i]);
    return r;
  }
  friend batch operator-(batch a) {
    batch r;
    for (int i = 0; i < W; ++i) r.lane[i] = static_cast<T>(-a.lane[i]);
    return r;
  }
  batch& operator+=(batch o) { return *this = *this + o; }
  batch& operator-=(batch o) { return *this = *this - o; }
  batch& operator*=(batch o) { return *this = *this * o; }

  // ---- bitwise (integral lanes only) ---------------------------------------
  friend batch operator&(batch a, batch b) requires std::is_integral_v<T> {
    batch r;
    for (int i = 0; i < W; ++i) r.lane[i] = static_cast<T>(a.lane[i] & b.lane[i]);
    return r;
  }
  friend batch operator|(batch a, batch b) requires std::is_integral_v<T> {
    batch r;
    for (int i = 0; i < W; ++i) r.lane[i] = static_cast<T>(a.lane[i] | b.lane[i]);
    return r;
  }
  friend batch operator^(batch a, batch b) requires std::is_integral_v<T> {
    batch r;
    for (int i = 0; i < W; ++i) r.lane[i] = static_cast<T>(a.lane[i] ^ b.lane[i]);
    return r;
  }
  friend batch operator~(batch a) requires std::is_integral_v<T> {
    batch r;
    for (int i = 0; i < W; ++i) r.lane[i] = static_cast<T>(~a.lane[i]);
    return r;
  }
  friend batch operator<<(batch a, int s) requires std::is_integral_v<T> {
    batch r;
    for (int i = 0; i < W; ++i) r.lane[i] = static_cast<T>(a.lane[i] << s);
    return r;
  }
  friend batch operator>>(batch a, int s) requires std::is_integral_v<T> {
    batch r;
    for (int i = 0; i < W; ++i) r.lane[i] = static_cast<T>(a.lane[i] >> s);
    return r;
  }

  // ---- min / max ------------------------------------------------------------
  static batch min(batch a, batch b) {
    batch r;
    for (int i = 0; i < W; ++i) r.lane[i] = std::min(a.lane[i], b.lane[i]);
    return r;
  }
  static batch max(batch a, batch b) {
    batch r;
    for (int i = 0; i < W; ++i) r.lane[i] = std::max(a.lane[i], b.lane[i]);
    return r;
  }
};

// ---- lane-mask comparisons --------------------------------------------------
// Return a bitmask with bit i set when the predicate holds in lane i.

namespace detail {

#if TB_HAVE_AVX2
// movemask over 32-bit lanes of an __m256i comparison result.
inline std::uint32_t movemask32(__m256i cmp) {
  return static_cast<std::uint32_t>(_mm256_movemask_ps(_mm256_castsi256_ps(cmp)));
}
inline std::uint32_t movemask64(__m256i cmp) {
  return static_cast<std::uint32_t>(_mm256_movemask_pd(_mm256_castsi256_pd(cmp)));
}
#endif

template <class T, int W, class Pred>
inline std::uint32_t mask_loop(const batch<T, W>& a, const batch<T, W>& b, Pred&& p) {
  std::uint32_t m = 0;
  for (int i = 0; i < W; ++i) m |= static_cast<std::uint32_t>(p(a.lane[i], b.lane[i])) << i;
  return m;
}

}  // namespace detail

template <class T, int W>
inline std::uint32_t cmp_eq(const batch<T, W>& a, const batch<T, W>& b) {
#if TB_HAVE_AVX512
  if constexpr (std::is_integral_v<T> && sizeof(T) == 4 && W == 16) {
    return static_cast<std::uint32_t>(
        _mm512_cmpeq_epi32_mask(detail::as_m512i(a), detail::as_m512i(b)));
  } else if constexpr (std::is_integral_v<T> && sizeof(T) == 8 && W == 8) {
    return static_cast<std::uint32_t>(
        _mm512_cmpeq_epi64_mask(detail::as_m512i(a), detail::as_m512i(b)));
  }
#endif
#if TB_HAVE_AVX2
  if constexpr (std::is_integral_v<T> && sizeof(T) == 4 && W == 8) {
    return detail::movemask32(
        _mm256_cmpeq_epi32(detail::as_m256i(a), detail::as_m256i(b)));
  } else if constexpr (std::is_integral_v<T> && sizeof(T) == 8 && W == 4) {
    return detail::movemask64(
        _mm256_cmpeq_epi64(detail::as_m256i(a), detail::as_m256i(b)));
  }
#endif
  return detail::mask_loop(a, b, [](T x, T y) { return x == y; });
}

template <class T, int W>
inline std::uint32_t cmp_ne(const batch<T, W>& a, const batch<T, W>& b) {
  return cmp_eq(a, b) ^ mask_all<W>;
}

template <class T, int W>
inline std::uint32_t cmp_lt(const batch<T, W>& a, const batch<T, W>& b) {
#if TB_HAVE_AVX512
  if constexpr (std::is_same_v<T, std::int32_t> && W == 16) {
    return static_cast<std::uint32_t>(
        _mm512_cmpgt_epi32_mask(detail::as_m512i(b), detail::as_m512i(a)));
  } else if constexpr (std::is_same_v<T, float> && W == 16) {
    const auto av = std::bit_cast<__m512>(a);
    const auto bv = std::bit_cast<__m512>(b);
    return static_cast<std::uint32_t>(_mm512_cmp_ps_mask(av, bv, _CMP_LT_OQ));
  } else if constexpr (std::is_same_v<T, std::int64_t> && W == 8) {
    return static_cast<std::uint32_t>(
        _mm512_cmpgt_epi64_mask(detail::as_m512i(b), detail::as_m512i(a)));
  }
#endif
#if TB_HAVE_AVX2
  if constexpr (std::is_same_v<T, std::int32_t> && W == 8) {
    return detail::movemask32(
        _mm256_cmpgt_epi32(detail::as_m256i(b), detail::as_m256i(a)));
  } else if constexpr (std::is_same_v<T, float> && W == 8) {
    const auto av = std::bit_cast<__m256>(a);
    const auto bv = std::bit_cast<__m256>(b);
    return static_cast<std::uint32_t>(_mm256_movemask_ps(_mm256_cmp_ps(av, bv, _CMP_LT_OQ)));
  } else if constexpr (std::is_same_v<T, std::int64_t> && W == 4) {
    return detail::movemask64(
        _mm256_cmpgt_epi64(detail::as_m256i(b), detail::as_m256i(a)));
  }
#endif
  return detail::mask_loop(a, b, [](T x, T y) { return x < y; });
}

template <class T, int W>
inline std::uint32_t cmp_gt(const batch<T, W>& a, const batch<T, W>& b) {
  return cmp_lt(b, a);
}
template <class T, int W>
inline std::uint32_t cmp_le(const batch<T, W>& a, const batch<T, W>& b) {
  return cmp_gt(a, b) ^ mask_all<W>;
}
template <class T, int W>
inline std::uint32_t cmp_ge(const batch<T, W>& a, const batch<T, W>& b) {
  return cmp_lt(a, b) ^ mask_all<W>;
}

// ---- blend ------------------------------------------------------------------
// Lane i of the result is `ifset` when mask bit i is 1, else `ifclear`.
template <class T, int W>
inline batch<T, W> select(std::uint32_t mask, const batch<T, W>& ifset,
                          const batch<T, W>& ifclear) {
#if TB_HAVE_AVX512
  if constexpr (sizeof(T) == 4 && W == 16) {
    return std::bit_cast<batch<T, W>>(_mm512_mask_mov_epi32(
        detail::as_m512i(ifclear), static_cast<__mmask16>(mask), detail::as_m512i(ifset)));
  }
#endif
  batch<T, W> r;
  for (int i = 0; i < W; ++i) r.lane[i] = (mask >> i) & 1u ? ifset.lane[i] : ifclear.lane[i];
  return r;
}

// ---- gathers ----------------------------------------------------------------
// r.lane[i] = base[idx.lane[i]].  AVX2 provides hardware gathers for 4-byte
// elements with 4-byte indices; everything else uses the scalar loop.
template <class T, int W>
inline batch<T, W> gather(const T* base, const batch<std::int32_t, W>& idx) {
#if TB_HAVE_AVX512
  // The all-ones-mask gather forms: the plain _mm512_i32gather_* intrinsics
  // source their masked-off lanes from an "undefined" vector, which trips
  // -Wmaybe-uninitialized on GCC; with a full mask the source never shows
  // through, so zero is both quiet and equivalent.
  if constexpr (std::is_same_v<T, float> && W == 16) {
    return std::bit_cast<batch<T, W>>(_mm512_mask_i32gather_ps(
        _mm512_setzero_ps(), static_cast<__mmask16>(0xffff), detail::as_m512i(idx), base,
        sizeof(float)));
  } else if constexpr (std::is_integral_v<T> && sizeof(T) == 4 && W == 16) {
    return std::bit_cast<batch<T, W>>(_mm512_mask_i32gather_epi32(
        _mm512_setzero_si512(), static_cast<__mmask16>(0xffff), detail::as_m512i(idx), base,
        sizeof(T)));
  }
#endif
#if TB_HAVE_AVX2
  if constexpr (std::is_same_v<T, float> && W == 8) {
    return std::bit_cast<batch<T, W>>(
        _mm256_i32gather_ps(base, detail::as_m256i(idx), sizeof(float)));
  } else if constexpr (std::is_integral_v<T> && sizeof(T) == 4 && W == 8) {
    return std::bit_cast<batch<T, W>>(_mm256_i32gather_epi32(
        reinterpret_cast<const int*>(base), detail::as_m256i(idx), sizeof(T)));
  }
#endif
  batch<T, W> r;
  for (int i = 0; i < W; ++i) r.lane[i] = base[idx.lane[i]];
  return r;
}

// ---- horizontal reductions ---------------------------------------------------
template <class Acc, class T, int W>
inline Acc reduce_add_as(const batch<T, W>& v) {
  Acc acc{};
  for (int i = 0; i < W; ++i) acc += static_cast<Acc>(v.lane[i]);
  return acc;
}
template <class T, int W>
inline T reduce_add(const batch<T, W>& v) {
  return reduce_add_as<T>(v);
}
template <class T, int W>
inline T reduce_min(const batch<T, W>& v) {
  T m = v.lane[0];
  for (int i = 1; i < W; ++i) m = std::min(m, v.lane[i]);
  return m;
}
template <class T, int W>
inline T reduce_max(const batch<T, W>& v) {
  T m = v.lane[0];
  for (int i = 1; i < W; ++i) m = std::max(m, v.lane[i]);
  return m;
}

// Masked horizontal add: sums only the lanes whose mask bit is set.
template <class Acc, class T, int W>
inline Acc reduce_add_masked(std::uint32_t mask, const batch<T, W>& v) {
  Acc acc{};
  for (int i = 0; i < W; ++i)
    if ((mask >> i) & 1u) acc += static_cast<Acc>(v.lane[i]);
  return acc;
}

// Natural vector width for a lane type on the compiled-for ISA: how many
// lanes of T fit in the widest available vector register (256-bit with AVX2,
// 128-bit baseline).  This is the Q the paper parameterizes schedulers with.
// It is deliberately a *compile-time* property of the current translation
// unit — the runtime-selected width of a one-binary-many-hosts build lives
// in the dispatch tables (simd/dispatch.hpp), whose per-ISA translation
// units instantiate the kernels at W ∈ {4, 8, 16} explicitly.
template <class T>
inline constexpr int natural_width = TB_HAVE_AVX2 ? static_cast<int>(32 / sizeof(T))
                                                  : static_cast<int>(16 / sizeof(T));

}  // namespace tb::simd
