// Structure-of-arrays task storage.
//
// A SoaBlock<Ts...> holds N rows, each a tuple of scalar fields, stored as
// one aligned column per field.  This is the AoS→SoA layout transformation
// the paper applies to task blocks so that a SIMD step can load one field of
// Q consecutive tasks with a single vector load (§6, Table 2's "SOA" rung).
//
// Capacity is managed manually (columns are raw aligned buffers sized to
// capacity), so vectorized appends may write a full vector of W lanes past
// the logical size and then bump it by popcount(mask).
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <tuple>
#include <utility>

#include "simd/aligned.hpp"
#include "simd/batch.hpp"
#include "simd/compact.hpp"

namespace tb::simd {

template <class... Ts>
class SoaBlock {
  static_assert(sizeof...(Ts) >= 1, "a block needs at least one field");

public:
  static constexpr std::size_t num_fields = sizeof...(Ts);
  using row_type = std::tuple<Ts...>;

  SoaBlock() = default;
  SoaBlock(const SoaBlock&) = default;
  SoaBlock& operator=(const SoaBlock&) = default;
  // Moves must zero the source's manual size/capacity bookkeeping (the
  // moved-from column vectors are empty).
  SoaBlock(SoaBlock&& o) noexcept
      : cols_(std::move(o.cols_)), size_(o.size_), capacity_(o.capacity_), level_(o.level_) {
    o.size_ = 0;
    o.capacity_ = 0;
  }
  SoaBlock& operator=(SoaBlock&& o) noexcept {
    cols_ = std::move(o.cols_);
    size_ = o.size_;
    capacity_ = o.capacity_;
    level_ = o.level_;
    o.size_ = 0;
    o.capacity_ = 0;
    return *this;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return capacity_; }

  // Depth of this block's tasks in the computation tree.
  int level() const { return level_; }
  void set_level(int lvl) { level_ = lvl; }

  void clear() { size_ = 0; }

  void reserve(std::size_t cap) {
    if (cap > capacity_) grow(cap);
  }

  // Guarantee room for `n` more rows (vector appends need W slots of slack).
  void ensure_slack(std::size_t n) {
    if (size_ + n > capacity_) grow(size_ + n);
  }

  void push_back(Ts... vals) {
    ensure_slack(1);
    std::size_t i = size_++;
    set_row_impl(i, std::index_sequence_for<Ts...>{}, vals...);
  }

  row_type row(std::size_t i) const {
    assert(i < size_);
    return row_impl(i, std::index_sequence_for<Ts...>{});
  }

  void set_row(std::size_t i, Ts... vals) {
    assert(i < size_);
    set_row_impl(i, std::index_sequence_for<Ts...>{}, vals...);
  }

  template <std::size_t I>
  auto* data() {
    return std::get<I>(cols_).data();
  }
  template <std::size_t I>
  const auto* data() const {
    return std::get<I>(cols_).data();
  }

  // Concatenate all rows of `o` onto this block (stable order).
  void append(const SoaBlock& o) {
    ensure_slack(o.size_);
    append_impl(o, std::index_sequence_for<Ts...>{});
    size_ += o.size_;
  }

  // Move-append: steals the other block's buffers when this block is empty.
  void append(SoaBlock&& o) {
    if (empty() && o.capacity_ > capacity_) {
      const int lvl = level_;
      *this = std::move(o);
      level_ = lvl;
    } else {
      append(static_cast<const SoaBlock&>(o));
      o.clear();
    }
  }

  // Move up to `max_n` rows from the back of `src` to the back of this
  // block.  Returns the number of rows moved.  Used to refill an executing
  // block from a parked restart block (§6 "fill tb with tasks from rb").
  std::size_t take_from(SoaBlock& src, std::size_t max_n) {
    const std::size_t n = std::min(max_n, src.size_);
    if (n == 0) return 0;
    ensure_slack(n);
    take_impl(src, n, std::index_sequence_for<Ts...>{});
    size_ += n;
    src.size_ -= n;
    return n;
  }

  // Vectorized masked append: for each column, left-pack the lanes of the
  // corresponding batch whose mask bit is set and append them.
  template <int W>
  void append_compact(std::uint32_t mask, const batch<Ts, W>&... v) {
    mask &= mask_all<W>;
    if (mask == 0) return;
    ensure_slack(static_cast<std::size_t>(W));
    append_compact_impl<W>(mask, std::index_sequence_for<Ts...>{}, v...);
    size_ += static_cast<std::size_t>(std::popcount(mask));
  }

  void resize_down(std::size_t n) {
    assert(n <= size_);
    size_ = n;
  }

  void swap(SoaBlock& o) noexcept {
    cols_.swap(o.cols_);
    std::swap(size_, o.size_);
    std::swap(capacity_, o.capacity_);
    std::swap(level_, o.level_);
  }

private:
  void grow(std::size_t need) {
    std::size_t cap = capacity_ == 0 ? 64 : capacity_;
    while (cap < need) cap *= 2;
    std::apply([&](auto&... col) { ((col.resize(cap)), ...); }, cols_);
    capacity_ = cap;
  }

  template <std::size_t... Is>
  row_type row_impl(std::size_t i, std::index_sequence<Is...>) const {
    return row_type{std::get<Is>(cols_)[i]...};
  }

  template <std::size_t... Is>
  void set_row_impl(std::size_t i, std::index_sequence<Is...>, Ts... vals) {
    ((std::get<Is>(cols_)[i] = vals), ...);
  }

  template <std::size_t... Is>
  void append_impl(const SoaBlock& o, std::index_sequence<Is...>) {
    ((std::copy_n(std::get<Is>(o.cols_).data(), o.size_, std::get<Is>(cols_).data() + size_)),
     ...);
  }

  template <std::size_t... Is>
  void take_impl(SoaBlock& src, std::size_t n, std::index_sequence<Is...>) {
    ((std::copy_n(std::get<Is>(src.cols_).data() + (src.size_ - n), n,
                  std::get<Is>(cols_).data() + size_)),
     ...);
  }

  template <int W, std::size_t... Is>
  void append_compact_impl(std::uint32_t mask, std::index_sequence<Is...>,
                           const batch<Ts, W>&... v) {
    ((compact_store(std::get<Is>(cols_).data() + size_, mask, v)), ...);
  }

  std::tuple<aligned_vector<Ts>...> cols_;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
  int level_ = 0;
};

}  // namespace tb::simd
