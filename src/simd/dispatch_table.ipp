// Shared body of the per-ISA dispatch translation units.
//
// Each of dispatch_sse2.cpp / dispatch_avx2.cpp / dispatch_avx512.cpp
// defines TB_DISPATCH_ISA_NS (the implementation namespace), the matching
// TB_DISPATCH_ISA_ENUM, and TB_DISPATCH_WIDTH, then includes this file —
// the only place the width-templated kernels are instantiated at an
// explicit W.  The wrappers live in an anonymous namespace so every TU's
// table points at its own flag-matched code; only `table()` is exported
// (picked up by simd/dispatch.cpp).
//
// Keep this file free of width-independent logic: anything added here is
// compiled under per-ISA flags three times, and a shared helper that lands
// in a COMDAT section relies on the sse2-first link order to stay
// baseline-codegen (see simd/dispatch.hpp).

#if !defined(TB_DISPATCH_ISA_NS) || !defined(TB_DISPATCH_ISA_ENUM) || \
    !defined(TB_DISPATCH_WIDTH)
#error "dispatch_table.ipp requires TB_DISPATCH_ISA_NS / TB_DISPATCH_ISA_ENUM / TB_DISPATCH_WIDTH"
#endif

#include <memory>
#include <vector>

#include "lockstep/lockstep_barneshut.hpp"
#include "lockstep/lockstep_knn.hpp"
#include "lockstep/lockstep_minmax.hpp"
#include "lockstep/lockstep_pointcorr.hpp"
#include "simd/compact.hpp"
#include "simd/dispatch.hpp"

namespace tb::simd::TB_DISPATCH_ISA_NS {
namespace {

constexpr int kW = TB_DISPATCH_WIDTH;

int compact_u32(std::uint32_t* dst, std::uint32_t mask, const std::uint32_t* src) {
  return compact_store<std::uint32_t, kW>(dst, mask, batch<std::uint32_t, kW>::loadu(src));
}

void ls_knn(const apps::KnnProgram& prog, lockstep::LockstepStats* stats) {
  lockstep::lockstep_knn<kW>(prog, stats);
}
std::uint64_t ls_pointcorr(const apps::PointCorrProgram& prog,
                           lockstep::LockstepStats* stats) {
  return lockstep::lockstep_pointcorr<kW>(prog, stats);
}
std::uint64_t ls_barneshut(const apps::BarnesHutProgram& prog, float theta,
                           lockstep::LockstepStats* stats) {
  return lockstep::lockstep_barneshut<kW>(prog, theta, stats);
}
void ls_minmaxdist(const apps::MinmaxDistProgram& prog, lockstep::LockstepStats* stats) {
  lockstep::lockstep_minmaxdist<kW>(prog, stats);
}

void bl_knn(const apps::KnnProgram& prog, std::size_t t_reexp, core::ExecStats* stats) {
  lockstep::blocked_knn<kW>(prog, t_reexp, stats);
}
std::uint64_t bl_pointcorr(const apps::PointCorrProgram& prog, std::size_t t_reexp,
                           core::ExecStats* stats) {
  return lockstep::blocked_pointcorr<kW>(prog, t_reexp, stats);
}
std::uint64_t bl_barneshut(const apps::BarnesHutProgram& prog, float theta,
                           std::size_t t_reexp, core::ExecStats* stats) {
  return lockstep::blocked_barneshut<kW>(prog, theta, t_reexp, stats);
}
void bl_minmaxdist(const apps::MinmaxDistProgram& prog, std::size_t t_reexp,
                   core::ExecStats* stats) {
  lockstep::blocked_minmaxdist<kW>(prog, t_reexp, stats);
}

void hy_knn(rt::ForkJoinPool& pool, const apps::KnnProgram& prog,
            const rt::HybridOptions& opt, core::PerWorkerStats* stats) {
  lockstep::hybrid_knn<kW>(pool, prog, opt, stats);
}
std::uint64_t hy_pointcorr(rt::ForkJoinPool& pool, const apps::PointCorrProgram& prog,
                           const rt::HybridOptions& opt, core::PerWorkerStats* stats) {
  return lockstep::hybrid_pointcorr<kW>(pool, prog, opt, stats);
}
std::uint64_t hy_barneshut(rt::ForkJoinPool& pool, const apps::BarnesHutProgram& prog,
                           float theta, const rt::HybridOptions& opt,
                           core::PerWorkerStats* stats) {
  return lockstep::hybrid_barneshut<kW>(pool, prog, theta, opt, stats);
}
void hy_minmaxdist(rt::ForkJoinPool& pool, const apps::MinmaxDistProgram& prog,
                   const rt::HybridOptions& opt, core::PerWorkerStats* stats) {
  lockstep::hybrid_minmaxdist<kW>(pool, prog, opt, stats);
}

// Serving runners: one persistent blocked engine per hybrid slot at this
// TU's width, shared_ptr-held because ServeRunner is a copyable
// std::function.  The capture lambdas are anonymous-namespace types, so
// their std::function managers are TU-private — no cross-ISA COMDAT.
std::shared_ptr<std::vector<lockstep::BlockedTraversal<kW>>> slot_engines(
    const rt::ForkJoinPool& pool, const rt::HybridOptions& opt) {
  const int slots = rt::hybrid_slots(pool);
  auto engines = std::make_shared<std::vector<lockstep::BlockedTraversal<kW>>>();
  engines->reserve(static_cast<std::size_t>(slots));
  for (int s = 0; s < slots; ++s) engines->emplace_back(opt.t_reexp);
  return engines;
}

ServeRunner sv_knn(rt::ForkJoinPool& pool, const rt::HybridOptions& opt,
                   const apps::KnnProgram& prog) {
  auto engines = slot_engines(pool, opt);
  return [&pool, opt, &prog, engines](const std::int32_t* ids, std::size_t count) {
    rt::hybrid_for(pool, static_cast<std::int32_t>(count), opt,
                   [&](std::int32_t b, std::int32_t e, int slot) {
                     lockstep::blocked_knn_frame<kW>(
                         prog, prog.tree->root, ids + b, static_cast<std::size_t>(e - b),
                         (*engines)[static_cast<std::size_t>(slot)]);
                   });
  };
}

ServeRunner sv_pointcorr(rt::ForkJoinPool& pool, const rt::HybridOptions& opt,
                         const apps::PointCorrProgram& prog,
                         rt::Padded<std::uint64_t>* parts) {
  auto engines = slot_engines(pool, opt);
  return [&pool, opt, &prog, parts, engines](const std::int32_t* ids, std::size_t count) {
    rt::hybrid_for(pool, static_cast<std::int32_t>(count), opt,
                   [&](std::int32_t b, std::int32_t e, int slot) {
                     const auto s = static_cast<std::size_t>(slot);
                     parts[s].value += lockstep::blocked_pointcorr_frame<kW>(
                         prog, prog.tree->root, ids + b, static_cast<std::size_t>(e - b),
                         (*engines)[s]);
                   });
  };
}

ServeRunner sv_minmaxdist(rt::ForkJoinPool& pool, const rt::HybridOptions& opt,
                          const apps::MinmaxDistProgram& prog) {
  auto engines = slot_engines(pool, opt);
  return [&pool, opt, &prog, engines](const std::int32_t* ids, std::size_t count) {
    rt::hybrid_for(pool, static_cast<std::int32_t>(count), opt,
                   [&](std::int32_t b, std::int32_t e, int slot) {
                     lockstep::blocked_minmaxdist_frame<kW>(
                         prog, prog.tree->root, ids + b, static_cast<std::size_t>(e - b),
                         (*engines)[static_cast<std::size_t>(slot)]);
                   });
  };
}

}  // namespace

const KernelTable& table() {
  static const KernelTable t{
      Isa::TB_DISPATCH_ISA_ENUM,
      kW,
      to_string(Isa::TB_DISPATCH_ISA_ENUM),
      &compact_u32,
      &ls_knn,
      &ls_pointcorr,
      &ls_barneshut,
      &ls_minmaxdist,
      &bl_knn,
      &bl_pointcorr,
      &bl_barneshut,
      &bl_minmaxdist,
      &hy_knn,
      &hy_pointcorr,
      &hy_barneshut,
      &hy_minmaxdist,
      &sv_knn,
      &sv_pointcorr,
      &sv_minmaxdist,
  };
  return t;
}

}  // namespace tb::simd::TB_DISPATCH_ISA_NS
