// Streaming compaction (left-packing).
//
// The vectorized task-block kernels compute, per SIMD step, a lane mask of
// "this lane spawned a child" plus the child's field values in vector
// registers.  Appending the surviving lanes densely to the target block is
// the compaction step of Ren et al. (the paper calls it Streaming
// Compaction, §6).  With AVX2 this is a single table-driven VPERMD; without
// it, a scalar bit-scan loop.
//
// Contract: `dst` must have at least W writable slots — compaction writes a
// full vector and the caller advances its size by popcount(mask).
// SoaBlock::ensure_slack provides that headroom.
#pragma once

#include <bit>
#include <cstdint>

#include "simd/batch.hpp"

namespace tb::simd {

namespace detail {

// LUT mapping an 8-bit lane mask to the permutation that moves the selected
// 32-bit lanes to the front (unused trailing entries point at lane 7).
struct CompactLut8 {
  alignas(32) std::uint32_t idx[256][8];
};

constexpr CompactLut8 make_compact_lut8() {
  CompactLut8 lut{};
  for (int m = 0; m < 256; ++m) {
    int k = 0;
    for (int i = 0; i < 8; ++i)
      if ((m >> i) & 1) lut.idx[m][k++] = static_cast<std::uint32_t>(i);
    for (; k < 8; ++k) lut.idx[m][k] = 7;
  }
  return lut;
}

inline constexpr CompactLut8 kCompactLut8 = make_compact_lut8();

// 4-bit mask over 64-bit lanes, expressed as pairs of 32-bit lane indices so
// the same VPERMD can left-pack 64-bit elements.
struct CompactLut4 {
  alignas(32) std::uint32_t idx[16][8];
};

constexpr CompactLut4 make_compact_lut4() {
  CompactLut4 lut{};
  for (int m = 0; m < 16; ++m) {
    int k = 0;
    for (int i = 0; i < 4; ++i) {
      if ((m >> i) & 1) {
        lut.idx[m][k++] = static_cast<std::uint32_t>(2 * i);
        lut.idx[m][k++] = static_cast<std::uint32_t>(2 * i + 1);
      }
    }
    for (; k < 8; ++k) lut.idx[m][k] = 7;
  }
  return lut;
}

inline constexpr CompactLut4 kCompactLut4 = make_compact_lut4();

}  // namespace detail

// Writes the lanes of `v` whose mask bit is set, contiguously, to `dst`.
// Lane order is preserved (stable).  Returns the number of lanes written.
//
// Rungs, best first: AVX-512 masked VPCOMPRESS (a single compressing store,
// no table lookup — and the only rung wide enough for W=16), the AVX2
// table-driven VPERMD, the scalar bit-scan loop.  All three implement the
// same stable left-pack, so digests never depend on which rung ran; the
// AVX-512 rung stores only popcount(mask) elements where VPERMD stores a
// full vector, both within the contract's W-slot slack.
template <class T, int W>
inline int compact_store(T* dst, std::uint32_t mask, const batch<T, W>& v) {
  mask &= mask_all<W>;
#if TB_HAVE_AVX512
  if constexpr (sizeof(T) == 4 && W == 16) {
    _mm512_mask_compressstoreu_epi32(dst, static_cast<__mmask16>(mask),
                                     detail::as_m512i(v));
    return std::popcount(mask);
  } else if constexpr (sizeof(T) == 4 && W == 8) {
    _mm256_mask_compressstoreu_epi32(dst, static_cast<__mmask8>(mask),
                                     detail::as_m256i(v));
    return std::popcount(mask);
  } else if constexpr (sizeof(T) == 8 && W == 4) {
    _mm256_mask_compressstoreu_epi64(dst, static_cast<__mmask8>(mask),
                                     detail::as_m256i(v));
    return std::popcount(mask);
  }
#endif
#if TB_HAVE_AVX2
  if constexpr (sizeof(T) == 4 && W == 8) {
    const __m256i perm =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(detail::kCompactLut8.idx[mask]));
    const __m256i packed = _mm256_permutevar8x32_epi32(detail::as_m256i(v), perm);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst), packed);
    return std::popcount(mask);
  } else if constexpr (sizeof(T) == 8 && W == 4) {
    const __m256i perm =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(detail::kCompactLut4.idx[mask]));
    const __m256i packed = _mm256_permutevar8x32_epi32(detail::as_m256i(v), perm);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst), packed);
    return std::popcount(mask);
  }
#endif
  int k = 0;
  std::uint32_t m = mask;
  while (m != 0) {
    const int i = std::countr_zero(m);
    dst[k++] = v.lane[i];
    m &= m - 1;
  }
  return k;
}

}  // namespace tb::simd
