// W=4 dispatch kernels under baseline flags (plain x86-64 = SSE2; the
// portable scalar batch loops elsewhere).  Always compiled — this is the
// table `kernels()` falls back to on any host — and deliberately *without*
// -march=native even in native builds, so a forced-SSE2 run executes
// genuinely AVX-free kernel code.
#define TB_DISPATCH_ISA_NS sse2_impl
#define TB_DISPATCH_ISA_ENUM sse2
#define TB_DISPATCH_WIDTH 4

#include "simd/dispatch_table.ipp"

// The dispatch build must not hand this TU AVX flags by accident: the whole
// point of the per-ISA OBJECT libraries is that the baseline table carries
// baseline codegen.
#if TB_HAVE_AVX2
#error "dispatch_sse2.cpp compiled with AVX2 enabled — check the dispatch CMake flags"
#endif
