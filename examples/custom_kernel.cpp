// Tutorial: bringing your own recursive kernel to the task-block framework.
//
// The walkthrough implements subset-sum counting — how many subsets of a
// multiset of weights sum exactly to a target — as a brand-new program (it
// is not one of the paper's 11 benchmarks), in the three layers the
// framework understands:
//
//   1. the *task program*: Task state + is_base/leaf/expand   (required)
//   2. the *SoA layer*: a column-per-field block + row codecs (optional —
//      enables the auto-vectorizable loops and is required by 3)
//   3. the *SIMD layer*: a hand-vectorized expand over batches (optional —
//      the paper's "SIMD" rung; masked compare + streaming compaction)
//
// then runs it through the sequential policies, the auto-tuner, and the
// multicore pool, verifying everything against a plain recursion.
//
// Usage: ./custom_kernel [num-weights]
#include <bit>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "core/autotune.hpp"
#include "core/driver.hpp"
#include "runtime/forkjoin.hpp"
#include "simd/batch.hpp"
#include "simd/soa.hpp"

namespace {

// ---- 1. the task program ---------------------------------------------------------
//
// A task is a suspended call f(item, remaining): "count subsets of
// weights[item..] that sum to exactly `remaining`".  Tasks at the same
// depth share `item`, so per-level state stays uniform — the property that
// makes blocks SIMD-friendly.
struct SubsetSumProgram {
  struct Task {
    std::int32_t item;
    std::int32_t remaining;
  };
  using Result = std::uint64_t;       // number of exact-sum subsets
  static constexpr int max_children = 2;

  const std::vector<std::int32_t>* weights = nullptr;

  static Result identity() { return 0; }
  static void combine(Result& a, const Result& b) { a += b; }

  bool is_base(const Task& t) const {
    return t.remaining == 0 || t.item == static_cast<std::int32_t>(weights->size());
  }
  void leaf(const Task& t, Result& r) const { r += (t.remaining == 0) ? 1 : 0; }

  template <class Emit>
  void expand(const Task& t, Emit&& emit) const {
    const std::int32_t w = (*weights)[static_cast<std::size_t>(t.item)];
    if (t.remaining >= w) emit(0, Task{t.item + 1, t.remaining - w});  // take
    emit(1, Task{t.item + 1, t.remaining});                            // skip
  }

  // ---- 2. the SoA layer ------------------------------------------------------
  using Block = tb::simd::SoaBlock<std::int32_t, std::int32_t>;
  static Task task_at(const Block& b, std::size_t i) {
    const auto [item, remaining] = b.row(i);
    return Task{item, remaining};
  }
  static void append_task(Block& b, const Task& t) { b.push_back(t.item, t.remaining); }

  // ---- 3. the SIMD layer -----------------------------------------------------
  static constexpr int simd_width = tb::simd::natural_width<std::int32_t>;

  void expand_simd(const Block& in, std::size_t begin, std::size_t end,
                   const std::array<Block*, 2>& outs, Result& r,
                   std::uint64_t& leaves) const {
    using B = tb::simd::batch<std::int32_t, simd_width>;
    const std::int32_t* items = in.data<0>();
    const std::int32_t* rems = in.data<1>();
    const auto n_items = static_cast<std::int32_t>(weights->size());
    const B zero = B::zero();
    std::uint64_t found = 0, leaf_count = 0;
    for (std::size_t i = begin; i < end; i += simd_width) {
      const B item = B::loadu(items + i);
      const B rem = B::loadu(rems + i);
      // Base lanes: remaining == 0 (counts 1) or items exhausted (counts 0).
      const std::uint32_t done = tb::simd::cmp_eq(rem, zero);
      const std::uint32_t exhausted = tb::simd::cmp_eq(item, B::broadcast(n_items));
      const std::uint32_t base = done | exhausted;
      found += std::popcount(done);
      leaf_count += std::popcount(base);
      const std::uint32_t rec = ~base & tb::simd::mask_all<simd_width>;
      if (rec == 0) continue;
      // `item` is uniform within a level, so the weight broadcasts.
      const B w = B::broadcast((*weights)[static_cast<std::size_t>(items[i])]);
      const B next = item + B::broadcast(1);
      const std::uint32_t take = rec & tb::simd::cmp_ge(rem, w);
      outs[0]->append_compact(take, next, rem - w);  // streaming compaction
      outs[1]->append_compact(rec, next, rem);
    }
    r += found;
    leaves += leaf_count;
  }
};

// The plain recursion — every framework run is verified against this.
std::uint64_t subset_sum_recursive(const std::vector<std::int32_t>& w, std::size_t i,
                                   std::int32_t remaining) {
  if (remaining == 0) return 1;
  if (i == w.size()) return 0;
  std::uint64_t total = subset_sum_recursive(w, i + 1, remaining);
  if (remaining >= w[i]) total += subset_sum_recursive(w, i + 1, remaining - w[i]);
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 26;
  std::vector<std::int32_t> weights;
  std::int32_t total = 0;
  for (int i = 0; i < n; ++i) {
    weights.push_back(1 + (i * 7919) % 23);  // deterministic pseudo-random weights
    total += weights.back();
  }
  const std::int32_t target = total / 3;

  SubsetSumProgram prog{&weights};
  const std::vector<SubsetSumProgram::Task> roots{{0, target}};
  const std::uint64_t expected = subset_sum_recursive(weights, 0, target);
  std::printf("subset-sum: %d weights, target %d -> %llu subsets (oracle)\n", n, target,
              static_cast<unsigned long long>(expected));

  // Sequential policies × the SIMD layer.
  using Simd = tb::core::SimdExec<SubsetSumProgram>;
  for (const auto pol : {tb::core::SeqPolicy::Basic, tb::core::SeqPolicy::Reexp,
                         tb::core::SeqPolicy::Restart}) {
    tb::core::ExecStats st;
    const auto th = tb::core::Thresholds::for_block_size(SubsetSumProgram::simd_width, 2048);
    const auto got = tb::core::run_seq<Simd>(prog, roots, pol, th, &st);
    std::printf("  %-8s: %llu  (%s, utilization %.1f%%)\n", tb::core::to_string(pol),
                static_cast<unsigned long long>(got), got == expected ? "ok" : "MISMATCH",
                st.simd_utilization() * 100.0);
  }

  // Let the auto-tuner pick the block size.
  tb::core::TuneOptions opts;
  opts.q = SubsetSumProgram::simd_width;
  const auto rep = tb::core::autotune_block_size<Simd>(prog, roots, opts);
  std::printf("  autotuned t_dfe=%zu (%.2f ms best)\n", rep.best.t_dfe,
              rep.best_seconds * 1e3);

  // Multicore: the parallel restart scheduler on a work-stealing pool.
  tb::rt::ForkJoinPool pool(4);
  const auto par = tb::core::run_par_restart<Simd>(pool, prog, roots, rep.best);
  std::printf("  parallel restart (4 workers): %llu  (%s)\n",
              static_cast<unsigned long long>(par), par == expected ? "ok" : "MISMATCH");
  return par == expected ? 0 : 1;
}
