// N-body simulation: Barnes-Hut force computation driven by the task-block
// scheduler, inside a leapfrog time integrator — the §5 motivating workload
// (a data-parallel loop over bodies enclosing a task-parallel octree
// traversal) used as a real application.
//
// Each step rebuilds the octree, computes forces with the parallel restart
// scheduler, and kicks/drifts the bodies.  Prints per-step wall time and a
// momentum diagnostic (total momentum should stay ~0 for the Plummer
// model's symmetric initial conditions).
//
// Usage: ./nbody_timestep [bodies] [steps] [workers]
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "apps/barneshut.hpp"
#include "core/driver.hpp"
#include "spatial/bodies.hpp"
#include "spatial/octree.hpp"

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? static_cast<std::size_t>(std::atol(argv[1])) : 10000;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 4;
  const int workers = argc > 3 ? std::atoi(argv[3]) : 4;
  const float dt = 0.05f;
  const float theta = 0.5f;

  auto bodies = tb::spatial::Bodies::plummer(n);
  std::vector<float> vx(n, 0), vy(n, 0), vz(n, 0);
  std::vector<float> ax(n, 0), ay(n, 0), az(n, 0);

  tb::rt::ForkJoinPool pool(workers);
  std::printf("n-body: %zu bodies, %d steps, %d workers, theta=%.2f\n", n, steps, workers,
              theta);

  for (int s = 0; s < steps; ++s) {
    const auto t0 = std::chrono::steady_clock::now();
    auto tree = tb::spatial::Octree::build(bodies, 8);
    std::fill(ax.begin(), ax.end(), 0.0f);
    std::fill(ay.begin(), ay.end(), 0.0f);
    std::fill(az.begin(), az.end(), 0.0f);
    tb::apps::BarnesHutProgram prog{&bodies, &tree, ax.data(), ay.data(), az.data()};
    const auto roots = prog.roots(theta);

    using Exec = tb::core::SimdExec<tb::apps::BarnesHutProgram>;
    const auto th = tb::core::Thresholds::for_block_size(prog.simd_width, 512, 64);
    const auto interactions =
        tb::core::run_par_restart<Exec>(pool, prog, roots, th);

    // Leapfrog kick + drift.
    double px = 0, py = 0, pz = 0;
    for (std::size_t i = 0; i < n; ++i) {
      vx[i] += ax[i] * dt;
      vy[i] += ay[i] * dt;
      vz[i] += az[i] * dt;
      bodies.x[i] += vx[i] * dt;
      bodies.y[i] += vy[i] * dt;
      bodies.z[i] += vz[i] * dt;
      px += static_cast<double>(bodies.mass[i]) * vx[i];
      py += static_cast<double>(bodies.mass[i]) * vy[i];
      pz += static_cast<double>(bodies.mass[i]) * vz[i];
    }
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    std::printf("step %d: %.3fs  %llu interactions  |p|=%.3e\n", s, wall,
                static_cast<unsigned long long>(interactions),
                std::sqrt(px * px + py * py + pz * pz));
  }
  return 0;
}
