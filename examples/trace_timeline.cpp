// Visualize how the blocked schedulers use a multicore machine over time.
//
// Simulates re-expansion and restart on P virtual cores (the §4 cost model:
// a block of t tasks costs ceil(t/Q) steps, a steal attempt one step), then
// renders an ASCII Gantt chart per policy — '#' full-width SIMD execution,
// 'o' under-filled execution, 's' stealing, '.' idle — plus the SIMD
// utilization over time.  Restart's merging visibly turns reexp's ragged
// late-phase 'o' regions into dense '#' ones on unbalanced trees.
//
// Usage: ./trace_timeline [fib-depth] [cores] [block-size]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/comp_tree.hpp"
#include "sim/par_sim.hpp"
#include "sim/trace.hpp"

namespace {

std::string sparkline(const std::vector<double>& xs) {
  static const char* kLevels[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
  std::string out;
  for (const double x : xs) {
    const int idx = std::min(7, static_cast<int>(x * 8.0));
    out += kLevels[idx < 0 ? 0 : idx];
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const int depth = argc > 1 ? std::atoi(argv[1]) : 24;
  const int cores = argc > 2 ? std::atoi(argv[2]) : 4;
  const int block = argc > 3 ? std::atoi(argv[3]) : 16;

  const auto tree = tb::sim::CompTree::fib_tree(depth);
  std::printf("fib(%d) call tree: %zu tasks, height %d, simulated on %d cores × Q=8, "
              "t_dfe=%d\n\n",
              depth, tree.num_nodes(), tree.height, cores, block);

  for (const auto policy : {tb::sim::SimPolicy::Reexp, tb::sim::SimPolicy::Restart}) {
    tb::sim::Trace trace;
    tb::sim::SimConfig cfg;
    cfg.policy = policy;
    cfg.p = cores;
    cfg.q = 8;
    cfg.t_dfe = static_cast<std::size_t>(block);
    cfg.t_bfe = cfg.t_dfe;
    cfg.t_restart = std::max<std::size_t>(cfg.t_dfe / 4, 1);
    cfg.trace = &trace;
    cfg.track_space = true;
    const auto res = tb::sim::simulate(tree, cfg);

    const auto check = tb::sim::check_trace(trace, cores, res.tasks, res.steps_total, cfg.q);
    std::printf("=== %s ===  makespan %llu steps, utilization %.1f%%, %llu steals, "
                "peak space %llu tasks%s\n",
                tb::sim::to_string(policy), static_cast<unsigned long long>(res.makespan),
                res.utilization() * 100.0, static_cast<unsigned long long>(res.steals),
                static_cast<unsigned long long>(res.peak_space_tasks),
                check.ok ? "" : "  [TRACE CHECK FAILED]");
    std::printf("%s", tb::sim::render_timeline(trace, cores, cfg.q, 72).c_str());
    std::printf("util  |%s|\n\n",
                sparkline(tb::sim::utilization_series(trace, cfg.q, 72)).c_str());
  }
  return 0;
}
