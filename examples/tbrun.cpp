// tbrun — run any of the paper's 11 benchmarks under any scheduler
// configuration, verify the answer against the sequential oracle, and
// report time, speedup, SIMD utilization, step mix, steals, and peak space.
//
// This is the "downstream user" front door to the library: every knob the
// schedulers expose is a flag.
//
//   ./tbrun --list
//   ./tbrun --bench=nqueens --policy=restart --layer=simd --block=2048
//   ./tbrun --bench=uts --workers=4
//   ./tbrun --bench=knapsack --tune
//   ./tbrun --scale=paper --bench=fib
//
// Flags:
//   --list                 show available benchmarks and defaults
//   --bench=a,b,…          comma list (default: all)
//   --scale=test|default|paper
//   --policy=basic|reexp|restart|ideal  (basic is sequential-only; ideal =
//                          the Fig 3b per-worker block-deque scheduler and
//                          requires --workers)
//   --layer=block|soa|simd
//   --block=N --restart=N  thresholds (defaults: per-benchmark)
//   --workers=N            N>0 runs the parallel scheduler on a pool
//   --tune                 sweep block sizes first, use the fastest
//   --reps=N               best-of-N timing (default 3)
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "bench/suite.hpp"

namespace {

tb::core::SeqPolicy parse_policy(const std::string& s) {
  if (s == "basic") return tb::core::SeqPolicy::Basic;
  if (s == "reexp") return tb::core::SeqPolicy::Reexp;
  return tb::core::SeqPolicy::Restart;  // "restart" and "ideal" (see main)
}

tbench::Layer parse_layer(const std::string& s) {
  if (s == "block" || s == "aos") return tbench::Layer::Aos;
  if (s == "soa") return tbench::Layer::Soa;
  return tbench::Layer::Simd;
}

// Sweep t_dfe over powers of two for this benchmark/config and return the
// fastest thresholds (the IBench-level analogue of core::autotune_block_size).
tb::core::Thresholds tune(tbench::IBench& b, tbench::BlockedConfig cfg, int reps) {
  std::printf("  tuning %s: ", b.name().c_str());
  double best_time = 1e100;
  tb::core::Thresholds best = cfg.th;
  for (std::size_t block = static_cast<std::size_t>(b.q()); block <= (1u << 15); block *= 2) {
    cfg.th = b.thresholds(block, std::min(b.default_restart(), block));
    const double t = tbench::time_best([&] { (void)b.run_blocked(cfg); }, reps);
    if (t < best_time) {
      best_time = t;
      best = cfg.th;
    }
  }
  std::printf("best t_dfe=%zu (%.1f ms)\n", best.t_dfe, best_time * 1e3);
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  tbench::Flags flags(argc, argv);
  const std::string scale = flags.get("scale", "default");
  auto suite = tbench::make_suite(scale);

  if (flags.has("list")) {
    std::printf("%-12s %-16s %4s %12s %12s\n", "benchmark", "problem", "Q", "def.block",
                "def.restart");
    for (const auto& b : suite) {
      std::printf("%-12s %-16s %4d %12zu %12zu\n", b->name().c_str(), b->problem().c_str(),
                  b->q(), b->default_block(), b->default_restart());
    }
    return 0;
  }

  const std::string filter = flags.get("bench");
  const auto policy = parse_policy(flags.get("policy", "restart"));
  const auto layer = parse_layer(flags.get("layer", "simd"));
  const long block = flags.get_int("block", 0);
  const long restart = flags.get_int("restart", 0);
  const long workers = flags.get_int("workers", 0);
  const int reps = static_cast<int>(flags.get_int("reps", 3));

  const bool ideal = flags.get("policy") == "ideal";
  if (workers > 0 && policy == tb::core::SeqPolicy::Basic) {
    std::fprintf(stderr, "basic policy has no parallel scheduler; use reexp or restart\n");
    return 1;
  }
  if (ideal && workers <= 0) {
    std::fprintf(stderr, "--policy=ideal requires --workers=N\n");
    return 1;
  }

  std::unique_ptr<tb::rt::ForkJoinPool> pool;
  if (workers > 0 && !ideal) {
    pool = std::make_unique<tb::rt::ForkJoinPool>(static_cast<int>(workers));
  }

  std::printf("%-12s | %9s %9s %7s | %6s %10s %8s %8s | %s\n", "benchmark", "Ts(s)", "run(s)",
              "Ts/run", "util%", "steps", "steals", "space", "check");
  int failures = 0;
  for (auto& b : suite) {
    if (!tbench::selected(filter, b->name())) continue;

    tbench::BlockedConfig cfg;
    cfg.policy = policy;
    cfg.layer = layer;
    cfg.pool = pool.get();
    cfg.ideal_workers = ideal ? static_cast<int>(workers) : 0;
    cfg.th = b->thresholds(static_cast<std::size_t>(block), static_cast<std::size_t>(restart));
    if (flags.has("tune")) cfg.th = tune(*b, cfg, std::max(1, reps / 2));

    std::string expected;
    const double ts = tbench::time_best([&] { expected = b->run_sequential(); }, reps);
    std::string got;
    tb::core::ExecStats st;
    const double tr = tbench::time_best(
        [&] {
          st = tb::core::ExecStats{};
          got = b->run_blocked(cfg, &st);
        },
        reps);
    const bool ok = got == expected;
    failures += ok ? 0 : 1;
    std::printf("%-12s | %9.4f %9.4f %7.2f | %6.1f %10llu %8llu %8llu | %s\n",
                b->name().c_str(), ts, tr, ts / tr, st.simd_utilization() * 100.0,
                static_cast<unsigned long long>(st.steps_total),
                static_cast<unsigned long long>(st.steal_actions),
                static_cast<unsigned long long>(st.peak_space_tasks),
                ok ? "ok" : "MISMATCH");
  }
  return failures == 0 ? 0 : 1;
}
