// Reproduce Table 1's "best block size" column automatically.
//
// The paper reports a hand-tuned block size per benchmark (2^9–2^14).  This
// demo runs the auto-tuner on three kernels with very different tree
// shapes — fib (fine-grained binary), knapsack (perfectly balanced),
// nqueens (fan-out 16 with nested data parallelism) — and prints each
// search table: wall time, SIMD utilization, and peak space per candidate,
// with the chosen thresholds at the bottom.  Larger blocks raise
// utilization but cost space (§3.5's trade); the winner sits where the
// time curve bottoms out.  A final section sweeps the hybrid executor's
// re-expansion threshold the same way (core::autotune_hybrid) on the
// pointcorr traversal.
//
// Usage: ./autotune_demo
#include <cstdio>
#include <vector>

#include "apps/fib.hpp"
#include "apps/knapsack.hpp"
#include "apps/nqueens.hpp"
#include "apps/pointcorr.hpp"
#include "core/autotune.hpp"
#include "lockstep/lockstep_pointcorr.hpp"
#include "spatial/bodies.hpp"
#include "spatial/kdtree.hpp"

namespace {

template <class Exec>
void tune_and_print(const char* name, const typename Exec::Program& prog,
                    const std::vector<typename Exec::Program::Task>& roots, int q) {
  tb::core::TuneOptions opts;
  opts.q = q;
  opts.policy = tb::core::SeqPolicy::Restart;
  opts.max_block = 1u << 14;
  const auto rep = tb::core::autotune_block_size<Exec>(prog, roots, opts);
  std::printf("=== %s (Q=%d, restart policy) ===\n%s", name, q, rep.to_string().c_str());
  std::printf("chosen: t_dfe=%zu t_bfe=%zu t_restart=%zu  (%.2f ms)\n\n", rep.best.t_dfe,
              rep.best.t_bfe, rep.best.t_restart, rep.best_seconds * 1e3);
}

}  // namespace

int main() {
  {
    const tb::apps::FibProgram prog;
    const std::vector roots{tb::apps::FibProgram::root(27)};
    tune_and_print<tb::core::SimdExec<tb::apps::FibProgram>>(
        "fib(27)", prog, roots, tb::apps::FibProgram::simd_width);
  }
  {
    const auto inst = tb::apps::KnapsackInstance::random(22);
    const tb::apps::KnapsackProgram prog{&inst};
    const std::vector roots{prog.root()};
    tune_and_print<tb::core::SimdExec<tb::apps::KnapsackProgram>>(
        "knapsack(22 items)", prog, roots, tb::apps::KnapsackProgram::simd_width);
  }
  {
    const tb::apps::NQueensProgram prog{11};
    const std::vector roots{tb::apps::NQueensProgram::root()};
    tune_and_print<tb::core::SoaExec<tb::apps::NQueensProgram>>("nqueens(11)", prog, roots,
                                                                8);
  }
  {
    // The hybrid analogue: sweep t_reexp over the real executor.
    const auto pts = tb::spatial::Bodies::uniform_cube(8000);
    const auto tree = tb::spatial::KdTree::build(pts, 16);
    const tb::apps::PointCorrProgram prog{&pts, &tree, 0.02f};
    tb::rt::ForkJoinPool pool(4);
    tb::core::HybridTuneOptions opts;
    opts.q = tb::apps::PointCorrProgram::simd_width;
    opts.max_reexp = 256;
    const auto rep = tb::core::autotune_hybrid(
        [&](const tb::rt::HybridOptions& o, tb::core::PerWorkerStats* pw) {
          (void)tb::lockstep::hybrid_pointcorr(pool, prog, o, pw);
        },
        opts);
    std::printf("=== hybrid pointcorr (8000 pts, 4 workers) ===\n%s",
                rep.to_string().c_str());
    std::printf("chosen: t_reexp=%zu grain=%d  (%.2f ms, %.1f%% SIMD utilization)\n",
                rep.best.t_reexp, rep.best.grain, rep.best_seconds * 1e3,
                rep.best_utilization * 100.0);
  }
  return 0;
}
