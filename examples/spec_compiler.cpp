// The full §5 compiler pipeline, end to end: parse a recursive method from
// text, compile it to stack bytecode in both dialects (scalar short-circuit
// and blocked jump-free), print the disassembly, then execute the *same
// program text* at three tiers — AST interpreter, scalar bytecode VM, and
// the 4-lane block VM with masked child compaction — through the restart
// scheduler, verifying they agree.
//
// Usage: ./spec_compiler [file.spec [root-args...]]
// With no arguments, runs a built-in binomial-coefficient program.  Sources
// with a §5.2 `foreach` header supply their own roots (see
// specs/foreach_fib.spec); bare methods take theirs from the command line.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/driver.hpp"
#include "spec/spec_lang.hpp"
#include "spec/vm.hpp"

namespace {

constexpr const char* kDefaultProgram = R"(
  # C(n, k): paths in Pascal's triangle — every leaf contributes 1.
  def choose(n, k)
    base k == 0 || k == n
    reduce 1
    spawn choose(n - 1, k - 1)
    spawn choose(n - 1, k)
)";

template <class F>
double time_best(F&& fn, int reps = 3) {
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const std::chrono::duration<double> dt = std::chrono::steady_clock::now() - t0;
    best = std::min(best, dt.count());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  std::string source = kDefaultProgram;
  std::vector<std::int64_t> root_args = {26, 11};
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    source = ss.str();
    root_args.clear();
    for (int i = 2; i < argc; ++i) root_args.push_back(std::atoll(argv[i]));
  }

  using namespace tb;
  spec::SpecUnit unit = spec::Parser(source).parse_unit();
  spec::CompiledSpecProgram vm(unit.method);  // compiles; does not consume the method
  std::vector<spec::SpecProgram::Task> roots;
  if (unit.has_foreach()) {
    roots = spec::clause_roots(*unit.loop);
    std::printf("foreach %s in %lld..%lld: %zu root tasks\n\n", unit.loop->var.c_str(),
                static_cast<long long>(unit.loop->lo), static_cast<long long>(unit.loop->hi),
                roots.size());
  } else {
    if (root_args.size() != unit.method.params.size()) {
      std::fprintf(stderr, "program takes %zu root arguments, got %zu\n",
                   unit.method.params.size(), root_args.size());
      return 1;
    }
    spec::SpecProgram::Task root{};
    for (std::size_t i = 0; i < root_args.size(); ++i) root.p[i] = root_args[i];
    roots.push_back(root);
  }
  spec::SpecProgram ast(std::move(unit.method));

  std::printf("=== scalar dialect (short-circuit jumps) ===\n%s\n",
              vm.scalar_method().disassemble().c_str());
  std::printf("=== blocked dialect (jump-free, block-VM input) ===\n%s\n",
              vm.blocked_method().disassemble().c_str());

  const std::vector<spec::SpecProgram::Task>& ast_roots = roots;
  const std::vector<spec::SpecProgram::Task>& vm_roots = roots;
  const auto th = core::Thresholds::for_block_size(/*Q=*/4, /*block=*/2048, /*restart=*/128);

  std::uint64_t r_ast = 0, r_vm = 0, r_simd = 0;
  const double t_ast = time_best([&] {
    r_ast = core::run_seq<core::SoaExec<spec::SpecProgram>>(ast, ast_roots,
                                                            core::SeqPolicy::Restart, th);
  });
  const double t_vm = time_best([&] {
    r_vm = core::run_seq<core::SoaExec<spec::CompiledSpecProgram>>(vm, vm_roots,
                                                                   core::SeqPolicy::Restart, th);
  });
  core::ExecStats st;
  const double t_simd = time_best([&] {
    st = core::ExecStats{};
    r_simd = core::run_seq<core::SimdExec<spec::CompiledSpecProgram>>(
        vm, vm_roots, core::SeqPolicy::Restart, th, &st);
  });

  std::printf("result: ast=%llu  vm=%llu  vm+simd=%llu  (%s)\n",
              static_cast<unsigned long long>(r_ast), static_cast<unsigned long long>(r_vm),
              static_cast<unsigned long long>(r_simd),
              (r_ast == r_vm && r_vm == r_simd) ? "agree" : "MISMATCH");
  std::printf("time:   ast=%.4fs  vm=%.4fs (%.2fx)  vm+simd=%.4fs (%.2fx)\n", t_ast, t_vm,
              t_ast / t_vm, t_simd, t_ast / t_simd);
  std::printf("schedule: %llu tasks, SIMD utilization %.1f%%\n",
              static_cast<unsigned long long>(st.tasks_executed),
              st.simd_utilization() * 100.0);
  return (r_ast == r_vm && r_vm == r_simd) ? 0 : 1;
}
