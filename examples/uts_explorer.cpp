// Unbalanced Tree Search explorer: traverses a parameterized UTS tree with
// all four parallel execution strategies (Cilk-style scalar, blocked
// re-expansion, simplified restart, ideal restart) and reports wall time
// plus runtime steal counts — the workload where dynamic load balancing
// and vector density pull in opposite directions.
//
// Usage: ./uts_explorer [b0] [m] [q] [workers]
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "apps/uts.hpp"
#include "core/driver.hpp"
#include "core/ideal_restart.hpp"

namespace {

template <class F>
double timed(F&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  tb::apps::UtsParams params;
  params.b0 = argc > 1 ? std::atoi(argv[1]) : 1000;
  params.m = argc > 2 ? std::atoi(argv[2]) : 4;
  params.q = argc > 3 ? std::atof(argv[3]) : 0.246;
  const int workers = argc > 4 ? std::atoi(argv[4]) : 4;

  tb::apps::UtsProgram prog(params);
  const auto roots = prog.roots();
  const auto info = tb::core::count_tree(prog, roots);
  std::printf("uts: b0=%d m=%d q=%.4f -> %llu nodes, %llu leaves, %d levels\n", params.b0,
              params.m, params.q, static_cast<unsigned long long>(info.tasks),
              static_cast<unsigned long long>(info.leaves), info.levels);

  using Exec = tb::core::SimdExec<tb::apps::UtsProgram>;
  const auto th = tb::core::Thresholds::for_block_size(prog.simd_width, 2048, 128);

  std::uint64_t leaves = 0;
  double t = timed([&] { leaves = tb::apps::uts_sequential_all(prog); });
  std::printf("%-16s %9.4fs  leaves=%llu\n", "sequential", t,
              static_cast<unsigned long long>(leaves));

  tb::rt::ForkJoinPool pool(workers);
  t = timed([&] { leaves = tb::apps::uts_cilk(pool, prog); });
  std::printf("%-16s %9.4fs  leaves=%llu  steals=%llu\n", "cilk-scalar", t,
              static_cast<unsigned long long>(leaves),
              static_cast<unsigned long long>(pool.total_steals()));

  t = timed([&] { leaves = tb::core::run_par_reexp<Exec>(pool, prog, roots, th); });
  std::printf("%-16s %9.4fs  leaves=%llu\n", "blocked-reexp", t,
              static_cast<unsigned long long>(leaves));

  tb::core::ExecStats st;
  t = timed([&] { leaves = tb::core::run_par_restart<Exec>(pool, prog, roots, th, &st); });
  std::printf("%-16s %9.4fs  leaves=%llu  merges=%llu\n", "blocked-restart", t,
              static_cast<unsigned long long>(leaves),
              static_cast<unsigned long long>(st.merges));

  tb::core::ExecStats sti;
  t = timed([&] {
    leaves = tb::core::run_ideal_restart<Exec>(prog, roots, th, workers, &sti);
  });
  std::printf("%-16s %9.4fs  leaves=%llu  steal-actions=%llu\n", "ideal-restart", t,
              static_cast<unsigned long long>(leaves),
              static_cast<unsigned long long>(sti.steal_actions));
  return 0;
}
