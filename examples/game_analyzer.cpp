// 4×4 tic-tac-toe opening analyzer: for every legal first move, walk the
// bounded-ply game tree with the parallel restart scheduler and report the
// leaf statistics (X wins / O wins within the horizon) plus the true
// minimax verdict — the data-parallel-over-moves ∘ task-parallel-search
// nesting of §5 applied to game analysis.
//
// Usage: ./game_analyzer [ply_limit] [workers]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "apps/minmax.hpp"
#include "core/driver.hpp"

int main(int argc, char** argv) {
  const int ply = argc > 1 ? std::atoi(argv[1]) : 7;
  const int workers = argc > 2 ? std::atoi(argv[2]) : 4;

  tb::apps::MinmaxProgram prog{ply};
  tb::rt::ForkJoinPool pool(workers);
  using Exec = tb::core::SimdExec<tb::apps::MinmaxProgram>;
  const auto th = tb::core::Thresholds::for_block_size(prog.simd_width, 1024, 64);

  std::printf("4x4 tic-tac-toe, horizon %d plies, %d workers\n", ply, workers);
  std::printf("%-6s | %12s %10s %10s | %s\n", "move", "leaves", "X wins", "O wins",
              "minimax(shallow)");

  // Symmetry classes of the 4x4 board's 16 opening cells: corner, edge,
  // center — analyze one representative per class plus one generic cell.
  for (const int cell : {0, 1, 5, 6}) {
    tb::apps::MinmaxProgram::Task after{1u << cell, 0};
    const std::vector roots{after};
    const auto r = tb::core::run_par_restart<Exec>(pool, prog, roots, th);
    // A cheap 5-ply exact minimax for a qualitative verdict.
    tb::apps::MinmaxProgram shallow{5};
    const int v = tb::apps::minmax_value(shallow, after);
    std::printf("%-6d | %12llu %10llu %10llu | %s\n", cell,
                static_cast<unsigned long long>(r.leaves),
                static_cast<unsigned long long>(r.x_wins),
                static_cast<unsigned long long>(r.o_wins),
                v > 0 ? "X forces win" : (v < 0 ? "O forces win" : "draw-ish"));
  }
  std::printf("\n(Leaf statistics reduce at base cases, per the paper's model; the\n"
              "minimax column is the exact shallow-search value for orientation.)\n");
  return 0;
}
