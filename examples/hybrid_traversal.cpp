// Hybrid vector×multicore execution in ~60 lines: run the blocked
// re-expansion traversal engine for point correlation and minmaxdist on the
// work-stealing pool, and read the per-worker SIMD-utilization stats.
//
//   ./hybrid_traversal [points] [workers] [t_reexp] [donation]
//
// Prints the sequential oracle, the hybrid result (they must match), and
// one utilization row per worker.  With donation (the default), workers
// whose range ran dry receive bottom frames split off a loaded peer's
// stack; the donated-frame count is reported per run.
#include <cstdio>
#include <cstdlib>

#include "apps/minmaxdist.hpp"
#include "apps/pointcorr.hpp"
#include "lockstep/lockstep_minmax.hpp"
#include "lockstep/lockstep_pointcorr.hpp"
#include "spatial/bodies.hpp"
#include "spatial/kdtree.hpp"

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4000;
  const int workers = argc > 2 ? std::atoi(argv[2]) : 4;
  const std::size_t t_reexp = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 32;
  const bool donation = argc > 4 ? std::atoi(argv[4]) != 0 : true;

  const auto pts = tb::spatial::Bodies::uniform_cube(n);
  const auto tree = tb::spatial::KdTree::build(pts, 16);
  tb::rt::ForkJoinPool pool(workers);
  tb::rt::HybridOptions opt;
  opt.t_reexp = t_reexp;
  opt.donation = donation;

  std::printf("hybrid traversal: %zu points, %d workers, t_reexp=%zu, donation=%s\n\n", n,
              workers, t_reexp, donation ? "on" : "off");

  {
    const tb::apps::PointCorrProgram prog{&pts, &tree, 0.02f};
    const std::uint64_t seq = tb::apps::pointcorr_sequential(prog);
    tb::core::PerWorkerStats pw;
    const std::uint64_t hyb = tb::lockstep::hybrid_pointcorr(pool, prog, opt, &pw);
    std::printf("pointcorr   seq=%llu hybrid=%llu  %s\n",
                static_cast<unsigned long long>(seq),
                static_cast<unsigned long long>(hyb), seq == hyb ? "ok" : "MISMATCH");
    for (std::size_t s = 0; s < pw.slots(); ++s) {
      std::printf("  worker %zu: %8llu steps, SIMD utilization %5.1f%%\n", s,
                  static_cast<unsigned long long>(pw.workers[s].steps_total),
                  pw.utilization(s) * 100.0);
    }
    std::printf("  merged: %5.1f%% (min %5.1f%%, max %5.1f%% across workers), "
                "%llu frame(s) donated\n\n",
                pw.merged().simd_utilization() * 100.0, pw.min_utilization() * 100.0,
                pw.max_utilization() * 100.0,
                static_cast<unsigned long long>(pw.merged().donated_frames));
    if (seq != hyb) return 1;
  }

  {
    tb::apps::MinmaxDistState seq_state(pts.size());
    tb::apps::MinmaxDistProgram seq_prog{&pts, &tree, &seq_state};
    tb::apps::minmaxdist_sequential(seq_prog);

    tb::apps::MinmaxDistState state(pts.size());
    tb::apps::MinmaxDistProgram prog{&pts, &tree, &state};
    tb::core::PerWorkerStats pw;
    tb::lockstep::hybrid_minmaxdist(pool, prog, opt, &pw);
    const bool ok =
        tb::apps::minmaxdist_digest(state) == tb::apps::minmaxdist_digest(seq_state);
    std::printf("minmaxdist  merged utilization %5.1f%%  %s\n",
                pw.merged().simd_utilization() * 100.0, ok ? "ok" : "MISMATCH");
    if (!ok) return 1;
  }
  return 0;
}
