// Quickstart: define a recursive task-parallel program from scratch and run
// it through the task-block schedulers.
//
// The program counts the subsets of {1..n} whose sum is at most `budget` —
// a tiny branch-and-bound: each task decides whether element `next` joins
// the subset.  Tasks are plain PODs; the SoA block layout plus a scalar
// `expand` is all the framework needs (a hand-vectorized kernel is
// optional — see src/apps/*.hpp for examples of those).
//
// Build & run:  ./quickstart [n] [budget]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/driver.hpp"
#include "core/ideal_restart.hpp"
#include "simd/soa.hpp"

namespace {

struct SubsetSumProgram {
  // One task = "elements < next are decided; `sum` so far".
  struct Task {
    std::int32_t next;
    std::int32_t sum;
  };
  using Result = std::uint64_t;  // number of feasible subsets
  static constexpr int max_children = 2;

  int n = 20;
  int budget = 60;

  static Result identity() { return 0; }
  static void combine(Result& a, const Result& b) { a += b; }

  bool is_base(const Task& t) const { return t.next > n; }
  void leaf(const Task&, Result& r) const { r += 1; }

  template <class Emit>
  void expand(const Task& t, Emit&& emit) const {
    if (t.sum + t.next <= budget) emit(0, Task{t.next + 1, t.sum + t.next});  // take it
    emit(1, Task{t.next + 1, t.sum});                                         // skip it
  }

  // Structure-of-arrays block layout: one column per field.
  using Block = tb::simd::SoaBlock<std::int32_t, std::int32_t>;
  static Task task_at(const Block& b, std::size_t i) {
    const auto [next, sum] = b.row(i);
    return Task{next, sum};
  }
  static void append_task(Block& b, const Task& t) { b.push_back(t.next, t.sum); }
};

}  // namespace

int main(int argc, char** argv) {
  SubsetSumProgram prog;
  prog.n = argc > 1 ? std::atoi(argv[1]) : 24;
  prog.budget = argc > 2 ? std::atoi(argv[2]) : 3 * prog.n;
  const std::vector<SubsetSumProgram::Task> roots{{1, 0}};

  using Exec = tb::core::SoaExec<SubsetSumProgram>;
  const auto th = tb::core::Thresholds::for_block_size(/*Q=*/8, /*block=*/1024);

  // 1. Sequential schedulers: one core, Q SIMD lanes, three policies.
  for (const auto pol : {tb::core::SeqPolicy::Basic, tb::core::SeqPolicy::Reexp,
                         tb::core::SeqPolicy::Restart}) {
    tb::core::ExecStats st;
    const auto count = tb::core::run_seq<Exec>(prog, roots, pol, th, &st);
    std::printf("seq/%-8s subsets=%llu  tasks=%llu  SIMD-utilization=%.1f%%\n",
                tb::core::to_string(pol), static_cast<unsigned long long>(count),
                static_cast<unsigned long long>(st.tasks_executed),
                st.simd_utilization() * 100.0);
  }

  // 2. Multicore: work-stealing pool + the two parallel block schedulers.
  tb::rt::ForkJoinPool pool(4);
  const auto rx = tb::core::run_par_reexp<Exec>(pool, prog, roots, th);
  const auto rr = tb::core::run_par_restart<Exec>(pool, prog, roots, th);
  // 3. The ideal restart scheduler (block stealing, Fig. 3b of the paper).
  const auto ri = tb::core::run_ideal_restart<Exec>(prog, roots, th, 4);
  std::printf("par/reexp    subsets=%llu\n", static_cast<unsigned long long>(rx));
  std::printf("par/restart  subsets=%llu\n", static_cast<unsigned long long>(rr));
  std::printf("par/ideal    subsets=%llu\n", static_cast<unsigned long long>(ri));
  return rx == rr && rr == ri ? 0 : 1;
}
