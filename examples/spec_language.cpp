// The §5 specification language end to end: parse a recursive method from
// text, run it through the task-block schedulers — including a foreach
// outer loop (data parallelism enclosing task parallelism) — and print the
// schedule statistics.
//
// Usage: ./spec_language [n]
#include <cstdio>
#include <cstdlib>

#include "core/driver.hpp"
#include "spec/spec_lang.hpp"

int main(int argc, char** argv) {
  const std::int64_t n = argc > 1 ? std::atol(argv[1]) : 22;

  const auto prog = tb::spec::SpecProgram::parse(R"(
    # Count leaves of the fib(n) call tree weighted by their value:
    # the sum of leaf n's (n < 2) is exactly fib(n).
    def fib(n)
      base n < 2
      reduce n
      spawn fib(n - 1)
      spawn fib(n - 2)
  )");

  using Exec = tb::core::SoaExec<tb::spec::SpecProgram>;
  const auto th = tb::core::Thresholds::for_block_size(/*Q=*/4, /*block=*/512);

  // Single recursive method (the paper's original model).
  const std::vector roots{prog.make_root({n})};
  tb::core::ExecStats st;
  const auto v = tb::core::run_seq<Exec>(prog, roots, tb::core::SeqPolicy::Restart, th, &st);
  std::printf("fib(%lld) = %llu   [%llu tasks, SIMD utilization %.1f%%]\n",
              static_cast<long long>(n), static_cast<unsigned long long>(v),
              static_cast<unsigned long long>(st.tasks_executed),
              st.simd_utilization() * 100.0);

  // foreach (d : [0, n)) fib(d) — §5.2's data-parallel enclosing loop.
  const auto many = prog.foreach_roots(0, n);
  tb::rt::ForkJoinPool pool(4);
  const auto total = tb::core::run_par_restart<Exec>(pool, prog, many, th);
  std::printf("sum of fib(0..%lld) = %llu   (parallel restart, foreach roots)\n",
              static_cast<long long>(n - 1), static_cast<unsigned long long>(total));
  return 0;
}
