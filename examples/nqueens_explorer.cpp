// N-queens policy explorer: counts solutions while comparing the three
// scheduling policies and the three execution layers side by side — a
// worked tour of the scheduler statistics API (SIMD utilization, action
// counts, peak space) on a fan-out-16 search tree with nested data
// parallelism.
//
// Usage: ./nqueens_explorer [n] [block_size]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "apps/nqueens.hpp"
#include "core/driver.hpp"

namespace {

template <class Exec>
void report(const char* layer, const tb::apps::NQueensProgram& prog,
            const std::vector<tb::apps::NQueensProgram::Task>& roots,
            const tb::core::Thresholds& th) {
  for (const auto pol : {tb::core::SeqPolicy::Basic, tb::core::SeqPolicy::Reexp,
                         tb::core::SeqPolicy::Restart}) {
    tb::core::ExecStats st;
    const auto t0 = std::chrono::steady_clock::now();
    const auto count = tb::core::run_seq<Exec>(prog, roots, pol, th, &st);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    std::printf(
        "%-6s %-8s | %10llu solutions | %8.4fs | util %5.1f%% | bfe %6llu dfe %6llu "
        "restarts %6llu | peak %7llu tasks\n",
        layer, tb::core::to_string(pol), static_cast<unsigned long long>(count), wall,
        st.simd_utilization() * 100.0, static_cast<unsigned long long>(st.bfe_actions),
        static_cast<unsigned long long>(st.dfe_actions),
        static_cast<unsigned long long>(st.restart_actions),
        static_cast<unsigned long long>(st.peak_space_tasks));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 11;
  const std::size_t block = argc > 2 ? static_cast<std::size_t>(std::atol(argv[2])) : 512;

  tb::apps::NQueensProgram prog{n};
  const std::vector roots{tb::apps::NQueensProgram::root()};
  const auto th = tb::core::Thresholds::for_block_size(prog.simd_width, block);

  std::printf("nqueens(%d), block=%zu, Q=%d\n", n, block, prog.simd_width);
  report<tb::core::AosExec<tb::apps::NQueensProgram>>("block", prog, roots, th);
  report<tb::core::SoaExec<tb::apps::NQueensProgram>>("soa", prog, roots, th);
  report<tb::core::SimdExec<tb::apps::NQueensProgram>>("simd", prog, roots, th);

  std::printf("reference: sequential recursion gives %llu\n",
              static_cast<unsigned long long>(tb::apps::nqueens_sequential(n, 0, 0, 0)));
  return 0;
}
