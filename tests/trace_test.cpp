// Tests for simulator execution traces (sim/trace.hpp): event-stream
// consistency with the aggregate SimResult, the structural checker's
// negative cases, timeline rendering, utilization series, determinism, and
// the Lemma 8 space accounting.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "sim/comp_tree.hpp"
#include "sim/par_sim.hpp"
#include "sim/trace.hpp"

namespace {

using namespace tb;
using sim::CompTree;
using sim::SimConfig;
using sim::SimPolicy;
using sim::Trace;
using sim::TraceEvent;
using sim::TraceKind;

SimConfig base_config(SimPolicy policy, int p, Trace* trace = nullptr) {
  SimConfig cfg;
  cfg.policy = policy;
  cfg.p = p;
  cfg.q = 8;
  cfg.t_dfe = 64;
  cfg.t_bfe = 64;
  cfg.t_restart = 16;
  cfg.trace = trace;
  return cfg;
}

struct TraceCase {
  const char* tree_name;
  CompTree (*make)();
};

CompTree make_perfect() { return CompTree::perfect_binary(13); }
CompTree make_fib() { return CompTree::fib_tree(21); }
CompTree make_caterpillar() { return CompTree::caterpillar(600); }
CompTree make_random() { return CompTree::random_binary(20000, 0.72, 7); }

class TraceConsistency
    : public ::testing::TestWithParam<std::tuple<TraceCase, SimPolicy, int>> {};

TEST_P(TraceConsistency, EventStreamMatchesAggregateCounters) {
  const auto& [tc, policy, p] = GetParam();
  const CompTree tree = tc.make();
  Trace trace;
  SimConfig cfg = base_config(policy, p, &trace);
  const auto res = sim::simulate(tree, cfg);
  ASSERT_EQ(res.tasks, tree.num_nodes());
  const auto check = sim::check_trace(trace, p, res.tasks, res.steps_total, cfg.q);
  EXPECT_TRUE(check.ok) << check.error;
  // Steal accounting: Steal events are successful remote steals; attempts
  // cover both kinds.
  EXPECT_EQ(trace.count(TraceKind::Steal), res.steals);
  EXPECT_EQ(trace.count(TraceKind::Steal) + trace.count(TraceKind::StealAttempt),
            res.steal_attempts);
  // Supersteps = number of exec events.
  EXPECT_EQ(trace.count(TraceKind::ExecBFE) + trace.count(TraceKind::ExecDFE),
            res.supersteps);
  // The trace never outlives the makespan.
  EXPECT_GE(trace.end_time(), res.makespan);
}

INSTANTIATE_TEST_SUITE_P(
    TreesPoliciesCores, TraceConsistency,
    ::testing::Combine(::testing::Values(TraceCase{"perfect", make_perfect},
                                         TraceCase{"fib", make_fib},
                                         TraceCase{"caterpillar", make_caterpillar},
                                         TraceCase{"random", make_random}),
                       ::testing::Values(SimPolicy::Reexp, SimPolicy::Restart),
                       ::testing::Values(1, 4)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param).tree_name) + "_" +
             sim::to_string(std::get<1>(info.param)) + "_p" +
             std::to_string(std::get<2>(info.param));
    });

TEST(Trace, DeterministicForFixedSeed) {
  const CompTree tree = CompTree::fib_tree(18);
  Trace a, b;
  SimConfig cfg = base_config(SimPolicy::Restart, 4);
  cfg.trace = &a;
  (void)sim::simulate(tree, cfg);
  cfg.trace = &b;
  (void)sim::simulate(tree, cfg);
  EXPECT_EQ(a.events(), b.events());
}

TEST(Trace, ParkEventsCoverDfeSiblingPushes) {
  // Park records every block deposited on the leveled deque: DFE right
  // siblings under both policies, plus restart's sparse-block parks — so
  // restart on an unbalanced tree parks strictly more often than reexp.
  const CompTree tree = CompTree::fib_tree(20);
  std::uint64_t parks_reexp = 0, parks_restart = 0;
  for (const auto policy : {SimPolicy::Reexp, SimPolicy::Restart}) {
    Trace trace;
    SimConfig cfg = base_config(policy, 1, &trace);
    (void)sim::simulate(tree, cfg);
    EXPECT_GT(trace.count(TraceKind::Park), 0u);
    (policy == SimPolicy::Reexp ? parks_reexp : parks_restart) =
        trace.count(TraceKind::Park);
  }
  EXPECT_GT(parks_restart, parks_reexp);
}

TEST(Trace, MultiRootSeedsAreTraced) {
  // Multi-root trees model §5.3 data-parallel outer loops.
  std::vector<std::int32_t> parent;
  std::vector<std::int32_t> roots;
  for (int r = 0; r < 40; ++r) {
    const auto root = static_cast<std::int32_t>(parent.size());
    roots.push_back(root);
    parent.push_back(-1);
    parent.push_back(root);  // two children per root
    parent.push_back(root);
  }
  const CompTree tree = CompTree::from_parents_multi_root(parent);
  Trace trace;
  SimConfig cfg = base_config(SimPolicy::Restart, 2, &trace);
  const auto res = sim::simulate(tree, cfg, roots);
  EXPECT_EQ(res.tasks, tree.num_nodes());
  const auto check = sim::check_trace(trace, 2, res.tasks, res.steps_total, cfg.q);
  EXPECT_TRUE(check.ok) << check.error;
}

// ---- checker negative cases ---------------------------------------------------------

TEST(TraceCheck, DetectsOverlappingExecution) {
  Trace t;
  t.record(0, 10, 0, TraceKind::ExecDFE, 0, 80);
  t.record(5, 10, 0, TraceKind::ExecDFE, 1, 80);  // overlaps on core 0
  const auto check = sim::check_trace(t, 1);
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.error.find("overlap"), std::string::npos);
}

TEST(TraceCheck, AcceptsBackToBackExecution) {
  Trace t;
  t.record(0, 10, 0, TraceKind::ExecDFE, 0, 80);
  t.record(10, 10, 0, TraceKind::ExecDFE, 1, 80);
  EXPECT_TRUE(sim::check_trace(t, 1).ok);
}

TEST(TraceCheck, DetectsEmptyExecBlock) {
  Trace t;
  t.record(0, 1, 0, TraceKind::ExecBFE, 0, 0);
  EXPECT_FALSE(sim::check_trace(t, 1).ok);
}

TEST(TraceCheck, DetectsCoreOutOfRange) {
  Trace t;
  t.record(0, 1, 3, TraceKind::ExecBFE, 0, 8);
  EXPECT_FALSE(sim::check_trace(t, 2).ok);
}

TEST(TraceCheck, DetectsTaskCountMismatch) {
  Trace t;
  t.record(0, 1, 0, TraceKind::ExecBFE, 0, 8);
  const auto check = sim::check_trace(t, 1, /*expected_tasks=*/9);
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.error.find("tasks"), std::string::npos);
}

TEST(TraceCheck, DetectsMissingLevelOnExec) {
  Trace t;
  t.record(0, 1, 0, TraceKind::ExecBFE, -1, 8);
  EXPECT_FALSE(sim::check_trace(t, 1).ok);
}

// ---- rendering ------------------------------------------------------------------------

TEST(Timeline, HasOneRowPerCorePlusHeader) {
  const CompTree tree = CompTree::fib_tree(20);
  Trace trace;
  SimConfig cfg = base_config(SimPolicy::Restart, 4, &trace);
  (void)sim::simulate(tree, cfg);
  const std::string art = sim::render_timeline(trace, 4, cfg.q, 60);
  int rows = 0;
  for (const char c : art) rows += (c == '\n') ? 1 : 0;
  EXPECT_EQ(rows, 5);  // header + 4 cores
  EXPECT_NE(art.find("core0 |"), std::string::npos);
  EXPECT_NE(art.find("core3 |"), std::string::npos);
  // A dense tree must show some full-rate execution.
  EXPECT_NE(art.find('#'), std::string::npos);
}

TEST(Timeline, RowsHaveRequestedWidth) {
  Trace t;
  t.record(0, 4, 0, TraceKind::ExecDFE, 0, 32);
  t.record(4, 1, 0, TraceKind::Steal, 1, 8);
  const std::string art = sim::render_timeline(t, 1, 8, 40);
  const auto row_start = art.find("core0 |");
  ASSERT_NE(row_start, std::string::npos);
  const auto row_end = art.find('\n', row_start);
  // "core0 |" + 40 glyphs + "|"
  EXPECT_EQ(row_end - row_start, 7u + 40u + 1u);
}

TEST(Timeline, IdleCoresRenderAsDots) {
  Trace t;
  t.record(0, 8, 0, TraceKind::ExecDFE, 0, 64);
  const std::string art = sim::render_timeline(t, 2, 8, 20);
  // Core 1 had no events: its row is all '.'.
  const auto row = art.find("core1 |");
  ASSERT_NE(row, std::string::npos);
  const std::string glyphs = art.substr(row + 7, 20);
  EXPECT_EQ(glyphs, std::string(20, '.'));
}

TEST(UtilizationSeries, ValuesAreInUnitRange) {
  const CompTree tree = CompTree::fib_tree(22);
  Trace trace;
  SimConfig cfg = base_config(SimPolicy::Restart, 4, &trace);
  (void)sim::simulate(tree, cfg);
  const auto series = sim::utilization_series(trace, cfg.q, 48);
  ASSERT_EQ(series.size(), 48u);
  for (const double u : series) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0 + 1e-9);
  }
}

TEST(UtilizationSeries, DenseTreeReachesHighUtilization) {
  const CompTree tree = CompTree::perfect_binary(15);
  Trace trace;
  SimConfig cfg = base_config(SimPolicy::Restart, 1, &trace);
  (void)sim::simulate(tree, cfg);
  const auto series = sim::utilization_series(trace, cfg.q, 16);
  double peak = 0;
  for (const double u : series) peak = std::max(peak, u);
  EXPECT_GT(peak, 0.9);
}

// ---- space accounting (Lemma 8) ---------------------------------------------------------

TEST(SpaceAccounting, DisabledByDefault) {
  const CompTree tree = CompTree::fib_tree(18);
  SimConfig cfg = base_config(SimPolicy::Restart, 2);
  const auto res = sim::simulate(tree, cfg);
  EXPECT_EQ(res.peak_space_tasks, 0u);
}

class SpaceBound : public ::testing::TestWithParam<std::tuple<TraceCase, SimPolicy, int, int>> {
};

TEST_P(SpaceBound, PeakResidencyWithinLemma8Envelope) {
  const auto& [tc, policy, p, t_dfe] = GetParam();
  const CompTree tree = tc.make();
  SimConfig cfg = base_config(policy, p);
  cfg.t_dfe = static_cast<std::size_t>(t_dfe);
  cfg.t_bfe = cfg.t_dfe;
  cfg.t_restart = std::max<std::size_t>(cfg.t_dfe / 4, 1);
  cfg.track_space = true;
  const auto res = sim::simulate(tree, cfg);
  EXPECT_GT(res.peak_space_tasks, 0u);
  // Lemma 8: total space O(h·k·Q·P) with ≤2 blocks per level per worker,
  // blocks capped at 2·t_dfe (BFE doubling); the constant here absorbs
  // out-degree > 2 merges.  The bound must also never exceed n trivially.
  const std::uint64_t envelope =
      4ull * static_cast<std::uint64_t>(tree.height) * cfg.t_dfe * static_cast<std::uint64_t>(p);
  EXPECT_LE(res.peak_space_tasks, std::max<std::uint64_t>(envelope, 4ull * cfg.t_dfe))
      << "h=" << tree.height << " t_dfe=" << cfg.t_dfe << " p=" << p;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SpaceBound,
    ::testing::Combine(::testing::Values(TraceCase{"perfect", make_perfect},
                                         TraceCase{"fib", make_fib},
                                         TraceCase{"caterpillar", make_caterpillar}),
                       ::testing::Values(SimPolicy::Reexp, SimPolicy::Restart),
                       ::testing::Values(1, 4), ::testing::Values(32, 256)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param).tree_name) + "_" +
             sim::to_string(std::get<1>(info.param)) + "_p" +
             std::to_string(std::get<2>(info.param)) + "_k" +
             std::to_string(std::get<3>(info.param));
    });

// ---- steal cost (§4.3's constant c) --------------------------------------------------

TEST(StealCost, TraceStealDurationsEqualC) {
  const CompTree tree = CompTree::fib_tree(18);
  for (const std::uint64_t c : {1u, 3u, 8u}) {
    Trace trace;
    SimConfig cfg = base_config(SimPolicy::Restart, 4, &trace);
    cfg.steal_cost = c;
    (void)sim::simulate(tree, cfg);
    for (const auto& e : trace.events()) {
      if (e.kind == TraceKind::Steal || e.kind == TraceKind::StealAttempt) {
        ASSERT_EQ(e.dur, c);
      }
    }
    const auto check = sim::check_trace(trace, 4);
    EXPECT_TRUE(check.ok) << check.error;
  }
}

TEST(StealCost, ExpensiveStealsNeverSpeedThingsUp) {
  const CompTree tree = CompTree::fib_tree(20);
  for (const auto policy : {SimPolicy::ScalarWS, SimPolicy::Reexp, SimPolicy::Restart}) {
    SimConfig cfg = base_config(policy, 4);
    cfg.steal_cost = 1;
    const auto cheap = sim::simulate(tree, cfg);
    cfg.steal_cost = 16;
    const auto dear = sim::simulate(tree, cfg);
    EXPECT_GE(dear.makespan, cheap.makespan) << sim::to_string(policy);
    EXPECT_EQ(dear.tasks, cheap.tasks);
  }
}

TEST(StealCost, ZeroClampsToOne) {
  // steal_cost = 0 would let an idle thief spin without advancing the
  // clock; the simulator clamps it.
  const CompTree tree = CompTree::fib_tree(14);
  SimConfig cfg = base_config(SimPolicy::Restart, 2);
  cfg.steal_cost = 0;
  const auto res = sim::simulate(tree, cfg);
  EXPECT_EQ(res.tasks, tree.num_nodes());
}

TEST(SpaceAccounting, GrowsWithBlockSizeCap) {
  // §3.5's space/parallelism trade: larger t_dfe ⇒ more resident tasks.
  const CompTree tree = CompTree::perfect_binary(16);
  std::uint64_t small = 0, large = 0;
  for (const std::size_t t_dfe : {16u, 1024u}) {
    SimConfig cfg = base_config(SimPolicy::Restart, 1);
    cfg.t_dfe = t_dfe;
    cfg.t_bfe = t_dfe;
    cfg.t_restart = t_dfe / 4;
    cfg.track_space = true;
    const auto res = sim::simulate(tree, cfg);
    (t_dfe == 16u ? small : large) = res.peak_space_tasks;
  }
  EXPECT_GT(large, 4 * small);
}

}  // namespace
