// Paper-shape regression tests.
//
// The evaluation section's qualitative claims, pinned as properties of the
// *real* schedulers (not the simulator), so a refactor that silently breaks
// the headline behaviour fails CI:
//
//   * Fig 4: restart's SIMD utilization matches or beats re-expansion at
//     small block sizes, on every benchmark family;
//   * Fig 4: utilization grows toward ~100% as the block size grows;
//   * §4.2/Theorem 3: sequential restart's step count stays within a small
//     constant of the n/Q + h optimum even at block size Q, while basic
//     needs large blocks;
//   * §3.5: peak space grows with t_dfe (the space/parallelism trade).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "apps/fib.hpp"
#include "apps/parentheses.hpp"
#include "core/driver.hpp"
#include "tests/support/harness.hpp"

namespace {

using namespace tb;
using core::ExecStats;
using core::SeqPolicy;
using core::Thresholds;
using tbtest::StatsKernel;
using tbtest::stats_kernels;

class Fig4Shape : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Fig4Shape, RestartUtilizationMatchesOrBeatsReexpAtSmallBlocks) {
  const std::size_t block = GetParam();
  for (const StatsKernel& k : stats_kernels()) {
    const double u_reexp = k.run(SeqPolicy::Reexp, block).simd_utilization();
    const double u_restart = k.run(SeqPolicy::Restart, block).simd_utilization();
    // Paper: "at each block size restart matches or exceeds the SIMD
    // utilization achieved by reexp" — allow 2% slack for the large-block
    // tail where both are near-saturated.
    EXPECT_GE(u_restart, u_reexp - 0.02)
        << k.name << " at block " << block << ": restart " << u_restart << " vs reexp "
        << u_reexp;
  }
}

INSTANTIATE_TEST_SUITE_P(SmallBlocks, Fig4Shape, ::testing::Values(8u, 16u, 32u, 128u),
                         [](const auto& info) {
                           return "block" + std::to_string(info.param);
                         });

TEST(Fig4Shape, UtilizationGrowsWithBlockSize) {
  for (const StatsKernel& k : stats_kernels()) {
    for (const auto policy : {SeqPolicy::Reexp, SeqPolicy::Restart}) {
      const double u_small = k.run(policy, 4).simd_utilization();
      const double u_large = k.run(policy, 4096).simd_utilization();
      EXPECT_GT(u_large, u_small) << k.name << " " << core::to_string(policy);
      EXPECT_GT(u_large, 0.85) << k.name << " " << core::to_string(policy);
    }
  }
}

TEST(Fig4Shape, RestartReachesHighUtilizationAtSmallerBlocks) {
  // The paper's headline (Fig 4b/4c): restart achieves >90% utilization at
  // block sizes an order of magnitude smaller than reexp needs.  Aggregate
  // form: at block 32, restart's mean utilization across kernels beats
  // reexp's by a clear margin on the search kernels.
  double gain = 0;
  int n = 0;
  for (const StatsKernel& k : stats_kernels()) {
    const double u_reexp = k.run(SeqPolicy::Reexp, 32).simd_utilization();
    const double u_restart = k.run(SeqPolicy::Restart, 32).simd_utilization();
    gain += u_restart - u_reexp;
    ++n;
  }
  EXPECT_GT(gain / n, 0.02);
}

TEST(Theorem3Shape, RestartStepsNearOptimalAtBlockSizeQ) {
  // Theorem 3: restart's running time is Θ(n/Q + h) *independent of k* — so
  // even at t_dfe = Q the step count stays within a small constant of the
  // lower bound, where basic degenerates toward one-task steps.
  const apps::ParenthesesProgram prog;
  const std::vector roots{apps::ParenthesesProgram::root(11)};
  const auto info = core::count_tree(prog, roots);
  const double lower =
      static_cast<double>(info.tasks) / 8.0 + static_cast<double>(info.levels);

  ExecStats restart, basic;
  const Thresholds th = Thresholds::for_block_size(8, 8, 8);
  (void)core::run_seq<core::SoaExec<apps::ParenthesesProgram>>(prog, roots,
                                                               SeqPolicy::Restart, th, &restart);
  (void)core::run_seq<core::SoaExec<apps::ParenthesesProgram>>(prog, roots, SeqPolicy::Basic,
                                                               th, &basic);
  EXPECT_LT(static_cast<double>(restart.steps_total), 4.0 * lower);
  // Basic at tiny blocks executes mostly-partial steps: strictly worse.
  EXPECT_GT(basic.steps_total, restart.steps_total);
}

TEST(SpaceShape, PeakSpaceGrowsWithBlockSize) {
  const apps::FibProgram prog;
  const std::vector roots{apps::FibProgram::root(24)};
  std::uint64_t prev = 0;
  for (const std::size_t block : {64u, 1024u, 16384u}) {
    ExecStats st;
    const Thresholds th = Thresholds::for_block_size(8, block);
    (void)core::run_seq<core::SoaExec<apps::FibProgram>>(prog, roots, SeqPolicy::Restart, th,
                                                         &st);
    EXPECT_GT(st.peak_space_tasks, prev);
    prev = st.peak_space_tasks;
  }
}

TEST(SpaceShape, RestartNoWorseSpaceThanReexpAtEqualUtilization) {
  // §4.4: "since restart can provide linear speedup at smaller block sizes,
  // it may use less space for the same performance."  Concrete form: find
  // the smallest block size at which each policy reaches 90% utilization;
  // restart's is no larger, and its peak space there is no larger either.
  const apps::ParenthesesProgram prog;
  const std::vector roots{apps::ParenthesesProgram::root(11)};
  auto first_block_reaching = [&](SeqPolicy pol, double target, std::uint64_t& space) {
    for (std::size_t block = 8; block <= (1u << 15); block *= 2) {
      ExecStats st;
      const Thresholds th = Thresholds::for_block_size(8, block, block);
      (void)core::run_seq<core::SoaExec<apps::ParenthesesProgram>>(prog, roots, pol, th, &st);
      if (st.simd_utilization() >= target) {
        space = st.peak_space_tasks;
        return block;
      }
    }
    space = ~0ull;
    return std::size_t{0};
  };
  std::uint64_t space_reexp = 0, space_restart = 0;
  const std::size_t blk_reexp = first_block_reaching(SeqPolicy::Reexp, 0.9, space_reexp);
  const std::size_t blk_restart = first_block_reaching(SeqPolicy::Restart, 0.9, space_restart);
  ASSERT_GT(blk_reexp, 0u);
  ASSERT_GT(blk_restart, 0u);
  EXPECT_LE(blk_restart, blk_reexp);
  EXPECT_LE(space_restart, space_reexp);
}

}  // namespace
