// Theory validation (§4): the real schedulers and the discrete multicore
// simulator are measured against the closed-form bounds of Theorems 1–4
// across the tree families the analysis distinguishes.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/driver.hpp"
#include "sim/bounds.hpp"
#include "sim/comp_tree.hpp"
#include "sim/par_sim.hpp"
#include "sim/tree_program.hpp"
#include "tests/support/harness.hpp"

namespace {

using namespace tb;
using sim::CompTree;
using sim::CompTreeProgram;
using sim::SimConfig;
using sim::SimPolicy;

// ---- generators ---------------------------------------------------------------

TEST(CompTree, PerfectBinaryShape) {
  const auto t = CompTree::perfect_binary(5);
  EXPECT_EQ(t.num_nodes(), 31u);
  EXPECT_EQ(t.height, 5);
  EXPECT_EQ(t.num_leaves(), 16u);
}

TEST(CompTree, ChainShape) {
  const auto t = CompTree::chain(100);
  EXPECT_EQ(t.num_nodes(), 100u);
  EXPECT_EQ(t.height, 100);
  EXPECT_EQ(t.num_leaves(), 1u);
}

TEST(CompTree, CaterpillarShape) {
  const auto t = CompTree::caterpillar(50);
  EXPECT_EQ(t.num_nodes(), 99u);  // 2*spine - 1
  EXPECT_EQ(t.height, 50);
  // Every internal node has degree exactly 2.
  for (std::size_t v = 0; v < t.num_nodes(); ++v) {
    const int d = t.degree(static_cast<std::int32_t>(v));
    EXPECT_TRUE(d == 0 || d == 2);
  }
}

TEST(CompTree, FibTreeMatchesCallTreeSize) {
  const auto t = CompTree::fib_tree(15);
  // Nodes in the fib call tree: 2*fib(n+1) - 1, fib(16) = 987.
  EXPECT_EQ(t.num_nodes(), 2u * 987u - 1u);
}

TEST(CompTree, RandomBinaryRespectsTarget) {
  const auto t = CompTree::random_binary(5000, 0.9, 3);
  EXPECT_LE(t.num_nodes(), 5000u);
  EXPECT_GT(t.num_nodes(), 100u);
  // CSR integrity: every non-root node appears exactly once as a child.
  std::vector<int> seen(t.num_nodes(), 0);
  for (const auto c : t.child) seen[static_cast<std::size_t>(c)] += 1;
  EXPECT_EQ(seen[0], 0);
  for (std::size_t v = 1; v < t.num_nodes(); ++v) EXPECT_EQ(seen[v], 1);
}

TEST(CompTree, DepthsAreConsistent) {
  const auto t = CompTree::random_binary(2000, 0.8, 7);
  for (std::size_t v = 0; v < t.num_nodes(); ++v) {
    for (std::int32_t i = t.first[v]; i < t.first[v + 1]; ++i) {
      EXPECT_EQ(t.depth[static_cast<std::size_t>(t.child[static_cast<std::size_t>(i)])],
                t.depth[v] + 1);
    }
  }
}

// ---- Theorem 3 on the real scheduler --------------------------------------------

struct TreeCase {
  const char* name;
  CompTree tree;
};

std::vector<TreeCase> theorem_trees() {
  std::vector<TreeCase> cases;
  cases.push_back({"perfect", CompTree::perfect_binary(14)});
  cases.push_back({"caterpillar", CompTree::caterpillar(4000)});
  cases.push_back({"random_dense", CompTree::random_binary(30000, 0.95, 11)});
  cases.push_back({"random_sparse", CompTree::random_binary(30000, 0.7, 12)});
  cases.push_back({"fib", CompTree::fib_tree(18)});
  return cases;
}

TEST(Theorem3, RestartStepsWithinConstantOfOptimal) {
  // Θ(n/Q + h) with the restart policy, for every tree family and several
  // block sizes — including tiny blocks, where basic/reexp degrade but
  // restart must not.
  for (const auto& tc : theorem_trees()) {
    for (const std::size_t block : {8u, 32u, 256u, 4096u}) {
      SCOPED_TRACE(std::string(tc.name) + " block=" + std::to_string(block));
      CompTreeProgram prog{&tc.tree};
      const auto roots = std::vector{CompTreeProgram::root()};
      core::ExecStats st;
      const auto th = core::Thresholds::for_block_size(8, block, 8);
      (void)core::run_seq<core::SoaExec<CompTreeProgram>>(prog, roots,
                                                          core::SeqPolicy::Restart, th, &st);
      EXPECT_EQ(st.tasks_executed, tc.tree.num_nodes());
      const double bound = sim::theorem3_bound(tc.tree.num_nodes(), tc.tree.height, 8);
      EXPECT_LE(static_cast<double>(st.steps_total), 4.0 * bound)
          << "steps=" << st.steps_total << " bound=" << bound;
    }
  }
}

TEST(Theorem3, PartialSuperstepsBoundedByHeight) {
  // Lemma 1: at most h partial supersteps in a sequential restart run.
  for (const auto& tc : theorem_trees()) {
    SCOPED_TRACE(tc.name);
    CompTreeProgram prog{&tc.tree};
    const auto roots = std::vector{CompTreeProgram::root()};
    core::ExecStats st;
    const auto th = core::Thresholds::for_block_size(8, 128, 16);
    (void)core::run_seq<core::SoaExec<CompTreeProgram>>(prog, roots, core::SeqPolicy::Restart,
                                                        th, &st);
    // Merged-at-same-level blocks can re-split across strip boundaries, so
    // allow a small constant factor over the idealized h bound.
    EXPECT_LE(st.partial_supersteps, 3u * static_cast<std::uint64_t>(tc.tree.height) + 8u);
  }
}

TEST(Theorems, BasicSuffersOnHighEpsilonTreesRestartDoesNot) {
  // The caterpillar has h ≈ n/2 (ε huge): Theorem 1 says the basic policy
  // degenerates toward n steps, while restart stays near n/Q + h.
  const auto tree = CompTree::caterpillar(4000);
  CompTreeProgram prog{&tree};
  const auto roots = std::vector{CompTreeProgram::root()};
  const auto th = core::Thresholds::for_block_size(8, 64, 8);
  core::ExecStats basic, restart;
  (void)core::run_seq<core::SoaExec<CompTreeProgram>>(prog, roots, core::SeqPolicy::Basic, th,
                                                      &basic);
  (void)core::run_seq<core::SoaExec<CompTreeProgram>>(prog, roots, core::SeqPolicy::Restart, th,
                                                      &restart);
  // Restart needs no more steps than basic (up to slack), and on this tree
  // basic is close to one node per step.
  EXPECT_LE(restart.steps_total, basic.steps_total + 16);
}

TEST(Theorems, UtilizationOrderRestartGeBasic) {
  for (const auto& tc : theorem_trees()) {
    SCOPED_TRACE(tc.name);
    CompTreeProgram prog{&tc.tree};
    const auto roots = std::vector{CompTreeProgram::root()};
    const auto th = core::Thresholds::for_block_size(8, 32, 16);
    core::ExecStats b, r;
    (void)core::run_seq<core::SoaExec<CompTreeProgram>>(prog, roots, core::SeqPolicy::Basic, th,
                                                        &b);
    (void)core::run_seq<core::SoaExec<CompTreeProgram>>(prog, roots, core::SeqPolicy::Restart,
                                                        th, &r);
    EXPECT_GE(r.simd_utilization() + 0.02, b.simd_utilization());
  }
}

// ---- discrete multicore simulator ------------------------------------------------

TEST(ParSim, ExecutesEveryTaskOnce) {
  const auto tree = CompTree::random_binary(20000, 0.9, 5);
  tbtest::for_each_sim_policy([&](SimPolicy pol) {
    for (const int p : {1, 2, 4, 8}) {
      SCOPED_TRACE("P=" + std::to_string(p));
      SimConfig cfg;
      cfg.p = p;
      cfg.q = 8;
      cfg.policy = pol;
      const auto res = sim::simulate(tree, cfg);
      EXPECT_EQ(res.tasks, tree.num_nodes());
      EXPECT_GT(res.makespan, 0u);
    }
  });
}

TEST(ParSim, ScalarSingleCoreTakesNSteps) {
  const auto tree = CompTree::perfect_binary(12);
  SimConfig cfg;
  cfg.p = 1;
  cfg.policy = SimPolicy::ScalarWS;
  const auto res = sim::simulate(tree, cfg);
  // One unit-time task per step, no steals needed.
  EXPECT_EQ(res.makespan, tree.num_nodes());
}

TEST(ParSim, Theorem4MakespanBound) {
  const auto tree = CompTree::random_binary(60000, 0.92, 9);
  const std::size_t block = 128;
  const double k = static_cast<double>(block) / 8.0;
  for (const int p : {1, 2, 4, 8, 16}) {
    SCOPED_TRACE("P=" + std::to_string(p));
    SimConfig cfg;
    cfg.p = p;
    cfg.q = 8;
    cfg.t_dfe = block;
    cfg.t_bfe = block;
    cfg.t_restart = 16;
    cfg.policy = SimPolicy::Restart;
    const auto res = sim::simulate(tree, cfg);
    const double bound = sim::theorem4_bound(tree.num_nodes(), tree.height, 8, p, k);
    EXPECT_LE(static_cast<double>(res.makespan), 8.0 * bound)
        << "makespan=" << res.makespan << " bound=" << bound;
  }
}

TEST(ParSim, RestartSpeedupScalesOnWideTrees) {
  const auto tree = CompTree::perfect_binary(17);  // wide, plenty parallel
  SimConfig base;
  base.q = 8;
  base.t_dfe = 128;
  base.t_bfe = 128;
  base.t_restart = 16;
  base.policy = SimPolicy::Restart;
  SimConfig c1 = base;
  c1.p = 1;
  const auto t1 = sim::simulate(tree, c1).makespan;
  SimConfig c8 = base;
  c8.p = 8;
  const auto t8 = sim::simulate(tree, c8).makespan;
  EXPECT_LT(static_cast<double>(t8), static_cast<double>(t1) / 3.0)
      << "t1=" << t1 << " t8=" << t8;
}

TEST(ParSim, ChainHasNoParallelism) {
  const auto tree = CompTree::chain(2000);
  tbtest::for_each_sim_policy([&](SimPolicy pol) {
    SimConfig c1, c4;
    c1.policy = c4.policy = pol;
    c1.p = 1;
    c4.p = 4;
    const auto t1 = sim::simulate(tree, c1).makespan;
    const auto t4 = sim::simulate(tree, c4).makespan;
    // Makespan is h regardless of P (lower bound T ≥ h).
    EXPECT_GE(t4 + 1, static_cast<std::uint64_t>(tree.height));
    EXPECT_NEAR(static_cast<double>(t4), static_cast<double>(t1),
                0.1 * static_cast<double>(t1));
  });
}

TEST(ParSim, DeterministicForFixedSeed) {
  const auto tree = CompTree::random_binary(10000, 0.9, 42);
  SimConfig cfg;
  cfg.p = 4;
  cfg.policy = SimPolicy::Restart;
  cfg.seed = 77;
  const auto a = sim::simulate(tree, cfg);
  const auto b = sim::simulate(tree, cfg);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.steal_attempts, b.steal_attempts);
}

TEST(Bounds, ClosedFormsBehave) {
  // ε = 0 for perfect trees: theorem 1 and 2 collapse toward n/Q-ish terms.
  EXPECT_NEAR(sim::epsilon_of(1 << 14, 14), 0.0, 0.01);
  EXPECT_GT(sim::epsilon_of(99, 50), 40.0);
  // Theorem 3 is monotone in n and h.
  EXPECT_LT(sim::theorem3_bound(1000, 10, 8), sim::theorem3_bound(2000, 10, 8));
  EXPECT_LT(sim::theorem3_bound(1000, 10, 8), sim::theorem3_bound(1000, 20, 8));
  // Theorem 4 improves with P.
  EXPECT_GT(sim::theorem4_bound(100000, 20, 8, 1, 16.0),
            sim::theorem4_bound(100000, 20, 8, 8, 16.0));
  // All bounds dominate the lower bound.
  EXPECT_GE(sim::theorem3_bound(5000, 30, 8), sim::optimal_lower_bound(5000, 30, 8, 1));
}

}  // namespace
