// Runtime multi-ISA dispatch (simd/isa.hpp + simd/dispatch.hpp): selection
// rules, the TB_SIMD_ISA override, per-table compact_store correctness, and
// the dispatch-equivalence matrix — state digests bit-identical across every
// runnable ISA table × scheduler for the four traversal workloads.
//
// The whole suite re-runs under TB_SIMD_ISA=sse2 and =avx2 (whole-binary
// CTest variants, tests/CMakeLists.txt), which is when ActiveHonorsEnv
// actually exercises the lowering path.
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "simd/dispatch.hpp"

namespace {

using tb::simd::Isa;
using tb::simd::KernelTable;

std::vector<const KernelTable*> runnable_tables() {
  int n = 0;
  const KernelTable* const* t = tb::simd::available_tables(n);
  return {t, t + n};
}

TEST(Isa, NamesRoundTrip) {
  for (const Isa isa : {Isa::sse2, Isa::avx2, Isa::avx512}) {
    const auto parsed = tb::simd::parse_isa(tb::simd::to_string(isa));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, isa);
  }
  EXPECT_FALSE(tb::simd::parse_isa("").has_value());
  EXPECT_FALSE(tb::simd::parse_isa("avx9000").has_value());
  EXPECT_FALSE(tb::simd::parse_isa("SSE2 ").has_value());
}

TEST(Isa, ResolveActiveRules) {
  using tb::simd::resolve_active;
  // No override: detected level, honored trivially.
  EXPECT_EQ(resolve_active(Isa::avx2, nullptr).active, Isa::avx2);
  EXPECT_TRUE(resolve_active(Isa::avx2, nullptr).honored);
  EXPECT_EQ(resolve_active(Isa::avx2, "").active, Isa::avx2);
  EXPECT_TRUE(resolve_active(Isa::avx2, "").honored);
  // Lowering is honored.
  EXPECT_EQ(resolve_active(Isa::avx512, "sse2").active, Isa::sse2);
  EXPECT_TRUE(resolve_active(Isa::avx512, "sse2").honored);
  EXPECT_EQ(resolve_active(Isa::avx2, "avx2").active, Isa::avx2);
  EXPECT_TRUE(resolve_active(Isa::avx2, "avx2").honored);
  // Raising past the host clamps (the binary must never execute an
  // instruction the CPU lacks), and reports the request as not honored.
  EXPECT_EQ(resolve_active(Isa::sse2, "avx512").active, Isa::sse2);
  EXPECT_FALSE(resolve_active(Isa::sse2, "avx512").honored);
  // Garbage is ignored, not fatal — a kill switch must never brick startup.
  EXPECT_EQ(resolve_active(Isa::avx2, "pentium3").active, Isa::avx2);
  EXPECT_FALSE(resolve_active(Isa::avx2, "pentium3").honored);
}

TEST(Isa, ActiveHonorsEnv) {
  const Isa detected = tb::simd::detect_isa();
  const Isa active = tb::simd::active_isa();
  EXPECT_LE(static_cast<int>(active), static_cast<int>(detected));
  const char* env = std::getenv("TB_SIMD_ISA");
  const auto requested = env != nullptr ? tb::simd::parse_isa(env) : std::nullopt;
  if (requested.has_value() && *requested <= detected) {
    EXPECT_EQ(active, *requested);  // the forced-ISA rerun's whole point
  } else {
    EXPECT_EQ(active, detected);
  }
}

TEST(Dispatch, TableInvariants) {
  // The baseline table always exists and always runs.
  const KernelTable* sse2 = tb::simd::kernels_for(Isa::sse2);
  ASSERT_NE(sse2, nullptr);
  EXPECT_EQ(sse2->isa, Isa::sse2);
  EXPECT_EQ(sse2->width, 4);
  EXPECT_EQ(tb::simd::kernels_for_width(4), sse2);
  EXPECT_EQ(tb::simd::kernels_for_width(5), nullptr);

  const auto tables = runnable_tables();
  ASSERT_GE(tables.size(), 1u);
  EXPECT_EQ(tables.front(), sse2);
  for (std::size_t i = 0; i < tables.size(); ++i) {
    const KernelTable* kt = tables[i];
    EXPECT_LE(static_cast<int>(kt->isa), static_cast<int>(tb::simd::detect_isa()));
    EXPECT_EQ(kt->width, 4 << static_cast<int>(kt->isa));
    EXPECT_EQ(tb::simd::kernels_for(kt->isa), kt);
    EXPECT_EQ(tb::simd::kernels_for_width(kt->width), kt);
    if (i > 0) EXPECT_LT(static_cast<int>(tables[i - 1]->isa), static_cast<int>(kt->isa));
  }

  // The active table is runnable and respects the (possibly env-lowered)
  // active ISA level.
  const KernelTable& active = tb::simd::kernels();
  EXPECT_LE(static_cast<int>(active.isa), static_cast<int>(tb::simd::active_isa()));
  EXPECT_NE(tb::simd::kernels_for(active.isa), nullptr);
}

TEST(Dispatch, CompactStoreMatchesScalarReference) {
  for (const KernelTable* kt : runnable_tables()) {
    SCOPED_TRACE(kt->name);
    const int w = kt->width;
    std::vector<std::uint32_t> src(static_cast<std::size_t>(w));
    for (int i = 0; i < w; ++i) {
      src[static_cast<std::size_t>(i)] = 0xABu * 1000003u + static_cast<std::uint32_t>(i);
    }
    const std::uint32_t mask_count = 1u << w;
    for (std::uint32_t mask = 0; mask < mask_count; ++mask) {
      // Contract: dst has a full W slots of slack; only the first popcount
      // entries are meaningful.
      std::vector<std::uint32_t> dst(static_cast<std::size_t>(w), 0xDEADBEEFu);
      const int got = kt->compact_store_u32(dst.data(), mask, src.data());
      ASSERT_EQ(got, std::popcount(mask)) << "mask=" << mask;
      int k = 0;
      for (int i = 0; i < w; ++i) {  // stable left-pack, ascending lanes
        if ((mask >> i) & 1u) {
          ASSERT_EQ(dst[static_cast<std::size_t>(k)], src[static_cast<std::size_t>(i)])
              << "mask=" << mask << " lane=" << i;
          ++k;
        }
      }
    }
  }
}

// ---- dispatch-equivalence matrix ---------------------------------------------------
//
// For each traversal workload: the sequential recursion is the reference;
// every runnable ISA table runs the classic-lockstep, blocked (two t_reexp
// settings), and hybrid (dynamic / static-partition / donation) schedulers,
// and the resulting state digests must be bit-identical.
//
// knn's classic-lockstep kernel offers vectorized distances (an ulp apart
// from the scalar path under FMA contraction in the native-compiled main
// TU), so its lockstep digests are compared across tables only, never
// against seq; its blocked/hybrid schedulers offer through the program's
// scalar base case and must equal seq exactly.  The per-ISA TUs compile
// with -mno-fma -ffp-contract=off precisely so the across-table comparison
// is bit-exact at every width.

constexpr std::size_t kPoints = 2000;
constexpr int kK = 4;
constexpr float kRad2 = 0.05f;
constexpr float kTheta = 0.5f;
constexpr int kWorkers = 4;

std::string knn_digest(const tb::apps::KnnState& state, std::size_t n) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::int32_t q = 0; q < static_cast<std::int32_t>(n); ++q) {
    for (const float d : state.distances(q)) {
      const auto bits = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(static_cast<double>(d) * 1e6));
      h = (h ^ bits) * 1099511628211ull;
    }
  }
  return std::to_string(h);
}

std::vector<tb::rt::HybridOptions> hybrid_variants(int width) {
  tb::rt::HybridOptions dynamic;
  dynamic.t_reexp = 4 * static_cast<std::size_t>(width);
  tb::rt::HybridOptions statics = dynamic;
  statics.static_partition = true;
  tb::rt::HybridOptions donating = dynamic;
  donating.donation = true;
  return {dynamic, statics, donating};
}

TEST(DispatchEquivalence, Knn) {
  tb::spatial::Bodies pts = tb::spatial::Bodies::uniform_cube(kPoints);
  tb::spatial::KdTree tree = tb::spatial::KdTree::build(pts, 16);
  tb::apps::KnnState seq_state(pts.size(), kK);
  tb::apps::KnnProgram seq_prog{&pts, &tree, &seq_state};
  tb::apps::knn_sequential(seq_prog);
  const std::string seq = knn_digest(seq_state, pts.size());

  tb::rt::ForkJoinPool pool(kWorkers);
  std::string lockstep_ref;
  for (const KernelTable* kt : runnable_tables()) {
    SCOPED_TRACE(kt->name);
    {
      tb::apps::KnnState st(pts.size(), kK);
      tb::apps::KnnProgram prog{&pts, &tree, &st};
      kt->lockstep_knn(prog, nullptr);
      const std::string d = knn_digest(st, pts.size());
      if (lockstep_ref.empty()) {
        lockstep_ref = d;
      } else {
        EXPECT_EQ(d, lockstep_ref) << "classic lockstep digest differs across ISA tables";
      }
    }
    for (const std::size_t t_reexp : {std::size_t{0}, 2 * static_cast<std::size_t>(kt->width)}) {
      tb::apps::KnnState st(pts.size(), kK);
      tb::apps::KnnProgram prog{&pts, &tree, &st};
      kt->blocked_knn(prog, t_reexp, nullptr);
      EXPECT_EQ(knn_digest(st, pts.size()), seq) << "blocked t_reexp=" << t_reexp;
    }
    for (const auto& opt : hybrid_variants(kt->width)) {
      tb::apps::KnnState st(pts.size(), kK);
      tb::apps::KnnProgram prog{&pts, &tree, &st};
      kt->hybrid_knn(pool, prog, opt, nullptr);
      EXPECT_EQ(knn_digest(st, pts.size()), seq)
          << "hybrid static=" << opt.static_partition << " donation=" << opt.donation;
    }
  }
}

TEST(DispatchEquivalence, PointCorr) {
  tb::spatial::Bodies pts = tb::spatial::Bodies::uniform_cube(kPoints);
  tb::spatial::KdTree tree = tb::spatial::KdTree::build(pts, 16);
  tb::apps::PointCorrProgram prog{&pts, &tree, kRad2};
  const std::uint64_t seq = tb::apps::pointcorr_sequential(prog);

  tb::rt::ForkJoinPool pool(kWorkers);
  for (const KernelTable* kt : runnable_tables()) {
    SCOPED_TRACE(kt->name);
    EXPECT_EQ(kt->lockstep_pointcorr(prog, nullptr), seq);
    for (const std::size_t t_reexp : {std::size_t{0}, 2 * static_cast<std::size_t>(kt->width)}) {
      EXPECT_EQ(kt->blocked_pointcorr(prog, t_reexp, nullptr), seq)
          << "blocked t_reexp=" << t_reexp;
    }
    for (const auto& opt : hybrid_variants(kt->width)) {
      EXPECT_EQ(kt->hybrid_pointcorr(pool, prog, opt, nullptr), seq)
          << "hybrid static=" << opt.static_partition << " donation=" << opt.donation;
    }
  }
}

TEST(DispatchEquivalence, BarnesHut) {
  tb::spatial::Bodies bodies = tb::spatial::Bodies::plummer(kPoints);
  tb::spatial::Octree tree = tb::spatial::Octree::build(bodies, 8);
  std::vector<float> ax(bodies.size(), 0), ay(bodies.size(), 0), az(bodies.size(), 0);
  tb::apps::BarnesHutProgram prog{&bodies, &tree, ax.data(), ay.data(), az.data()};
  const std::uint64_t seq = tb::apps::barneshut_sequential(prog, kTheta);

  // Only the interaction count is asserted — force accumulation order is
  // scheduler-dependent, so the float outputs are not bit-comparable.
  tb::rt::ForkJoinPool pool(kWorkers);
  for (const KernelTable* kt : runnable_tables()) {
    SCOPED_TRACE(kt->name);
    EXPECT_EQ(kt->lockstep_barneshut(prog, kTheta, nullptr), seq);
    for (const std::size_t t_reexp : {std::size_t{0}, 2 * static_cast<std::size_t>(kt->width)}) {
      EXPECT_EQ(kt->blocked_barneshut(prog, kTheta, t_reexp, nullptr), seq)
          << "blocked t_reexp=" << t_reexp;
    }
    for (const auto& opt : hybrid_variants(kt->width)) {
      EXPECT_EQ(kt->hybrid_barneshut(pool, prog, kTheta, opt, nullptr), seq)
          << "hybrid static=" << opt.static_partition << " donation=" << opt.donation;
    }
  }
}

TEST(DispatchEquivalence, MinmaxDist) {
  tb::spatial::Bodies pts = tb::spatial::Bodies::uniform_cube(kPoints);
  tb::spatial::KdTree tree = tb::spatial::KdTree::build(pts, 16);
  tb::apps::MinmaxDistState seq_state(pts.size());
  tb::apps::MinmaxDistProgram seq_prog{&pts, &tree, &seq_state};
  tb::apps::minmaxdist_sequential(seq_prog);
  const std::string seq = tb::apps::minmaxdist_digest(seq_state);

  tb::rt::ForkJoinPool pool(kWorkers);
  for (const KernelTable* kt : runnable_tables()) {
    SCOPED_TRACE(kt->name);
    {
      tb::apps::MinmaxDistState st(pts.size());
      tb::apps::MinmaxDistProgram prog{&pts, &tree, &st};
      kt->lockstep_minmaxdist(prog, nullptr);
      EXPECT_EQ(tb::apps::minmaxdist_digest(st), seq);
    }
    for (const std::size_t t_reexp : {std::size_t{0}, 2 * static_cast<std::size_t>(kt->width)}) {
      tb::apps::MinmaxDistState st(pts.size());
      tb::apps::MinmaxDistProgram prog{&pts, &tree, &st};
      kt->blocked_minmaxdist(prog, t_reexp, nullptr);
      EXPECT_EQ(tb::apps::minmaxdist_digest(st), seq) << "blocked t_reexp=" << t_reexp;
    }
    for (const auto& opt : hybrid_variants(kt->width)) {
      tb::apps::MinmaxDistState st(pts.size());
      tb::apps::MinmaxDistProgram prog{&pts, &tree, &st};
      kt->hybrid_minmaxdist(pool, prog, opt, nullptr);
      EXPECT_EQ(tb::apps::minmaxdist_digest(st), seq)
          << "hybrid static=" << opt.static_partition << " donation=" << opt.donation;
    }
  }
}

}  // namespace
