// Tests for the §5 specification-language front-end: parsing, expression
// evaluation, and end-to-end agreement between spec-language programs run
// through the task-block schedulers and (a) the reference interpreter,
// (b) the equivalent hand-written kernels.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <vector>

#include "apps/binomial.hpp"
#include "apps/fib.hpp"
#include "apps/parentheses.hpp"
#include "core/driver.hpp"
#include "core/ideal_restart.hpp"
#include "spec/spec_lang.hpp"
#include "tests/support/harness.hpp"

namespace {

using namespace tb;
using core::SeqPolicy;
using spec::SpecProgram;
using tbtest::for_each_policy;

constexpr const char* kFib = R"(
  # fib(n): leaves (n < 2) sum to fib(n)
  def fib(n)
    base n < 2
    reduce n
    spawn fib(n - 1)
    spawn fib(n - 2)
)";

constexpr const char* kBinomial = R"(
  def choose(n, k)
    base k == 0 || k == n
    reduce 1
    spawn choose(n - 1, k - 1)
    spawn choose(n - 1, k)
)";

constexpr const char* kParens = R"(
  def paren(open, close)
    base open == 0 && close == 0
    reduce 1
    spawn if open > 0 : paren(open - 1, close)
    spawn if close > open : paren(open, close - 1)
)";

TEST(SpecParser, AcceptsTheThreeClassicPrograms) {
  EXPECT_NO_THROW((void)SpecProgram::parse(kFib));
  EXPECT_NO_THROW((void)SpecProgram::parse(kBinomial));
  EXPECT_NO_THROW((void)SpecProgram::parse(kParens));
}

TEST(SpecParser, ReportsErrors) {
  EXPECT_THROW((void)SpecProgram::parse("def f(n) base n reduce 1"), spec::ParseError);
  EXPECT_THROW((void)SpecProgram::parse("def f(n) base n reduce 1 spawn g(n)"),
               spec::ParseError);
  EXPECT_THROW((void)SpecProgram::parse("def f(n) base n reduce 1 spawn f(n, n)"),
               spec::ParseError);
  EXPECT_THROW((void)SpecProgram::parse("def f(a,b,c,d,e) base a reduce 1 spawn f(a,b,c,d,e)"),
               spec::ParseError);
  EXPECT_THROW((void)SpecProgram::parse("def f(n) base q < 2 reduce 1 spawn f(n)"),
               spec::ParseError);
}

TEST(SpecExpr, EvaluatesOperatorsAndPrecedence) {
  const auto prog = SpecProgram::parse(R"(
    def f(n)
      base 2 + 3 * 4 == 14 && !(n < 0) && (10 % 3) == 1 && 7 / 2 == 3
      reduce n * n - 1
      spawn f(n - 1)
  )");
  // With the base expression a tautology for n >= 0, the root is a leaf.
  const auto t = prog.make_root({5});
  EXPECT_TRUE(prog.is_base(t));
  SpecProgram::Result r = 0;
  prog.leaf(t, r);
  EXPECT_EQ(r, 24u);
}

TEST(SpecLang, FibMatchesHandWrittenKernel) {
  const auto prog = SpecProgram::parse(kFib);
  const auto roots = std::vector{prog.make_root({21})};
  const std::uint64_t expected = apps::fib_sequential(21);
  EXPECT_EQ(spec::interpret_sequential(prog, roots[0]), expected);
  tbtest::expect_seq_matrix(prog, roots, core::Thresholds::for_block_size(4, 256, 32),
                            expected, tbtest::kAos | tbtest::kSoa);
}

TEST(SpecLang, BinomialMatchesHandWrittenKernel) {
  const auto prog = SpecProgram::parse(kBinomial);
  const auto roots = std::vector{prog.make_root({19, 8})};
  const std::uint64_t expected = apps::binomial_sequential(19, 8);
  const auto th = core::Thresholds::for_block_size(4, 128, 16);
  EXPECT_EQ(core::run_seq<core::SoaExec<SpecProgram>>(prog, roots, SeqPolicy::Restart, th),
            expected);
}

TEST(SpecLang, GuardedSpawnsParenthesesMatch) {
  const auto prog = SpecProgram::parse(kParens);
  const auto roots = std::vector{prog.make_root({9, 9})};
  const std::uint64_t expected = apps::parentheses_sequential(9, 9);
  tbtest::expect_seq_matrix(prog, roots, core::Thresholds::for_block_size(4, 64, 8), expected,
                            tbtest::kSoa);
}

TEST(SpecLang, RunsOnParallelSchedulers) {
  const auto prog = SpecProgram::parse(kParens);
  const auto roots = std::vector{prog.make_root({10, 10})};
  const std::uint64_t expected = apps::parentheses_sequential(10, 10);
  const auto th = core::Thresholds::for_block_size(4, 128, 16);
  rt::ForkJoinPool pool(3);
  EXPECT_EQ(core::run_par_reexp<core::SoaExec<SpecProgram>>(pool, prog, roots, th), expected);
  EXPECT_EQ(core::run_par_restart<core::SoaExec<SpecProgram>>(pool, prog, roots, th), expected);
  EXPECT_EQ(core::run_ideal_restart<core::SoaExec<SpecProgram>>(prog, roots, th, 3), expected);
}

TEST(SpecLang, ForeachOuterLoopIsDataParallel) {
  // §5.2: foreach (d : data) f(d, …) — each iteration roots one traversal;
  // here: sum of fib(d) for d in [0, 18).
  const auto prog = SpecProgram::parse(kFib);
  const auto roots = prog.foreach_roots(0, 18);
  std::uint64_t expected = 0;
  for (int d = 0; d < 18; ++d) expected += apps::fib_sequential(d);
  const auto th = core::Thresholds::for_block_size(4, 32, 8);
  EXPECT_EQ(core::run_seq<core::SoaExec<SpecProgram>>(prog, roots, SeqPolicy::Restart, th),
            expected);
  rt::ForkJoinPool pool(2);
  EXPECT_EQ(core::run_par_restart<core::SoaExec<SpecProgram>>(pool, prog, roots, th), expected);
}

TEST(SpecLang, StatsCensusMatchesTreeWalk) {
  const auto prog = SpecProgram::parse(kFib);
  const auto roots = std::vector{prog.make_root({16})};
  const auto info = core::count_tree(prog, roots);
  core::ExecStats st;
  const auto th = core::Thresholds::for_block_size(4, 64, 8);
  (void)core::run_seq<core::SoaExec<SpecProgram>>(prog, roots, SeqPolicy::Restart, th, &st);
  EXPECT_EQ(st.tasks_executed, info.tasks);
  EXPECT_EQ(st.leaves, info.leaves);
}

TEST(SpecLang, CommentsAndWhitespaceIgnored) {
  const auto prog = SpecProgram::parse(
      "def f(n) # comment\n base n<1 # another\n reduce 1\n spawn f(n-1)");
  EXPECT_EQ(spec::interpret_sequential(prog, prog.make_root({5})), 1u);
}

// ---- §5.2 foreach front-end ---------------------------------------------------------

constexpr const char* kForeachFib = R"(
  # sum of fib(2d+1) for d in [0, 9)
  foreach d in 0 .. 9 : fib(2 * d + 1)
  def fib(n)
    base n < 2
    reduce n
    spawn fib(n - 1)
    spawn fib(n - 2)
)";

TEST(SpecForeach, ParsesClauseAndGeneratesRoots) {
  const auto unit = spec::Parser(kForeachFib).parse_unit();
  ASSERT_TRUE(unit.has_foreach());
  EXPECT_EQ(unit.loop->var, "d");
  EXPECT_EQ(unit.loop->lo, 0);
  EXPECT_EQ(unit.loop->hi, 9);
  const auto roots = spec::clause_roots(*unit.loop);
  ASSERT_EQ(roots.size(), 9u);
  for (std::size_t d = 0; d < roots.size(); ++d) {
    EXPECT_EQ(roots[d].p[0], static_cast<std::int64_t>(2 * d + 1));
  }
}

TEST(SpecForeach, BareMethodHasNoClause) {
  const auto unit = spec::Parser("def f(n) base n<1 reduce 1 spawn f(n-1)").parse_unit();
  EXPECT_FALSE(unit.has_foreach());
}

TEST(SpecForeach, ConstantExpressionBounds) {
  const auto unit = spec::Parser(R"(
    foreach i in 2*3 .. 40/4 : f(i)
    def f(n) base n < 1 reduce 1 spawn f(n - 1)
  )").parse_unit();
  ASSERT_TRUE(unit.has_foreach());
  EXPECT_EQ(unit.loop->lo, 6);
  EXPECT_EQ(unit.loop->hi, 10);
}

TEST(SpecForeach, EmptyRangeYieldsNoRoots) {
  const auto unit = spec::Parser(R"(
    foreach i in 5 .. 5 : f(i)
    def f(n) base n < 1 reduce 1 spawn f(n - 1)
  )").parse_unit();
  EXPECT_TRUE(spec::clause_roots(*unit.loop).empty());
}

TEST(SpecForeach, RejectsMalformedClauses) {
  const char* kBody = "def f(n) base n<1 reduce 1 spawn f(n-1)";
  // Wrong callee.
  EXPECT_THROW((void)spec::Parser(("foreach d in 0..3 : g(d)\n" + std::string(kBody)))
                   .parse_unit(),
               spec::ParseError);
  // Arity mismatch.
  EXPECT_THROW((void)spec::Parser(("foreach d in 0..3 : f(d, d)\n" + std::string(kBody)))
                   .parse_unit(),
               spec::ParseError);
  // Missing '..'.
  EXPECT_THROW((void)spec::Parser(("foreach d in 0 : f(d)\n" + std::string(kBody)))
                   .parse_unit(),
               spec::ParseError);
  // Parameters are not in scope in the bounds.
  EXPECT_THROW((void)spec::Parser(("foreach d in n..3 : f(d)\n" + std::string(kBody)))
                   .parse_unit(),
               spec::ParseError);
}

TEST(SpecForeach, LoadSpecRunsEndToEnd) {
  const auto loaded = spec::load_spec(kForeachFib);
  ASSERT_TRUE(loaded.had_foreach);
  std::uint64_t expected = 0;
  for (int d = 0; d < 9; ++d) expected += apps::fib_sequential(2 * d + 1);
  tbtest::expect_seq_matrix(loaded.program, loaded.roots,
                            core::Thresholds::for_block_size(4, 64, 8), expected, tbtest::kSoa);
}

TEST(SpecForeach, LoadSpecFallbackRootForBareMethod) {
  const auto loaded = spec::load_spec("def f(n) base n<2 reduce n spawn f(n-1) spawn f(n-2)",
                                      {20});
  EXPECT_FALSE(loaded.had_foreach);
  ASSERT_EQ(loaded.roots.size(), 1u);
  EXPECT_EQ(loaded.roots[0].p[0], 20);
  EXPECT_EQ(spec::interpret_sequential(loaded.program, loaded.roots[0]),
            apps::fib_sequential(20));
}

TEST(SpecForeach, NegativeBoundsWork) {
  const auto unit = spec::Parser(R"(
    foreach i in -3 .. 3 : f(i * i)
    def f(n) base n < 1 reduce 1 spawn f(n - 1)
  )").parse_unit();
  const auto roots = spec::clause_roots(*unit.loop);
  ASSERT_EQ(roots.size(), 6u);
  EXPECT_EQ(roots[0].p[0], 9);   // (-3)^2
  EXPECT_EQ(roots[5].p[0], 4);   // 2^2
}

#ifdef TB_SOURCE_DIR
// The .spec files shipped under examples/specs/ must stay parseable and
// runnable — they are user-facing artifacts, not documentation.
TEST(SpecFiles, ShippedExamplesParseAndRun) {
  const struct {
    const char* path;
    std::initializer_list<std::int64_t> fallback;
    std::uint64_t expected;
  } cases[] = {
      {TB_SOURCE_DIR "/examples/specs/fib.spec", {20}, 6765u},
      {TB_SOURCE_DIR "/examples/specs/paren.spec", {8, 8}, 1430u},
      // foreach_fib: sum of fib(0..23) = fib(25) - 1.
      {TB_SOURCE_DIR "/examples/specs/foreach_fib.spec", {}, 75024u},
  };
  for (const auto& c : cases) {
    SCOPED_TRACE(c.path);
    std::ifstream in(c.path);
    ASSERT_TRUE(in.good()) << "missing shipped spec file";
    std::ostringstream ss;
    ss << in.rdbuf();
    const auto loaded = spec::load_spec(ss.str(), c.fallback);
    const auto th = core::Thresholds::for_block_size(4, 64, 8);
    EXPECT_EQ(core::run_seq<core::SoaExec<SpecProgram>>(loaded.program, loaded.roots,
                                                        SeqPolicy::Restart, th),
              c.expected);
  }
}
#endif

}  // namespace
