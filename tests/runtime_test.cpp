// Tests for the work-stealing runtime: deque semantics (sequential and
// under concurrent stealing), fork-join pool correctness, reducers.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "apps/fib.hpp"
#include "runtime/chase_lev_deque.hpp"
#include "runtime/forkjoin.hpp"
#include "runtime/reducer.hpp"
#include "runtime/xoshiro.hpp"

namespace {

using tb::rt::ChaseLevDeque;
using tb::rt::ForkJoinPool;
using tb::rt::WaitGroup;
using tb::rt::WorkerLocal;

TEST(ChaseLev, LifoForOwner) {
  ChaseLevDeque<int> dq;
  int items[3] = {1, 2, 3};
  dq.push_bottom(&items[0]);
  dq.push_bottom(&items[1]);
  dq.push_bottom(&items[2]);
  EXPECT_EQ(dq.pop_bottom(), &items[2]);
  EXPECT_EQ(dq.pop_bottom(), &items[1]);
  EXPECT_EQ(dq.pop_bottom(), &items[0]);
  EXPECT_EQ(dq.pop_bottom(), nullptr);
}

TEST(ChaseLev, FifoForThief) {
  ChaseLevDeque<int> dq;
  int items[3] = {1, 2, 3};
  for (auto& it : items) dq.push_bottom(&it);
  EXPECT_EQ(dq.steal_top(), &items[0]);
  EXPECT_EQ(dq.steal_top(), &items[1]);
  EXPECT_EQ(dq.pop_bottom(), &items[2]);
  EXPECT_EQ(dq.steal_top(), nullptr);
}

TEST(ChaseLev, GrowthBeyondInitialCapacity) {
  ChaseLevDeque<int> dq(/*initial_capacity=*/4);
  std::vector<int> items(1000);
  std::iota(items.begin(), items.end(), 0);
  for (auto& it : items) dq.push_bottom(&it);
  EXPECT_EQ(dq.size_approx(), 1000);
  for (int i = 999; i >= 0; --i) {
    int* p = dq.pop_bottom();
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(*p, i);
  }
}

// Conservation under concurrent stealing: every pushed item is taken
// exactly once, across the owner and several thieves.
TEST(ChaseLev, ConcurrentStealConservation) {
  constexpr int kItems = 20000;
  constexpr int kThieves = 4;
  ChaseLevDeque<int> dq(8);
  std::vector<int> items(kItems);
  std::iota(items.begin(), items.end(), 0);
  std::vector<std::atomic<int>> taken(kItems);
  for (auto& t : taken) t.store(0);
  std::atomic<bool> done{false};

  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        if (int* p = dq.steal_top()) taken[static_cast<std::size_t>(*p)].fetch_add(1);
      }
      // Final drain.
      while (int* p = dq.steal_top()) taken[static_cast<std::size_t>(*p)].fetch_add(1);
    });
  }

  tb::rt::Xoshiro256 rng(7);
  int pushed = 0;
  while (pushed < kItems) {
    const int burst = static_cast<int>(rng.below(64)) + 1;
    for (int i = 0; i < burst && pushed < kItems; ++i) {
      dq.push_bottom(&items[static_cast<std::size_t>(pushed++)]);
    }
    if (rng.below(4) == 0) {
      if (int* p = dq.pop_bottom()) taken[static_cast<std::size_t>(*p)].fetch_add(1);
    }
  }
  while (int* p = dq.pop_bottom()) taken[static_cast<std::size_t>(*p)].fetch_add(1);
  done.store(true, std::memory_order_release);
  for (auto& t : thieves) t.join();

  for (int i = 0; i < kItems; ++i) {
    EXPECT_EQ(taken[static_cast<std::size_t>(i)].load(), 1) << "item " << i;
  }
}

TEST(Pool, RunReturnsValue) {
  ForkJoinPool pool(2);
  const int v = pool.run([] { return 41 + 1; });
  EXPECT_EQ(v, 42);
}

TEST(Pool, RunVoid) {
  ForkJoinPool pool(1);
  int x = 0;
  pool.run([&x] { x = 7; });
  EXPECT_EQ(x, 7);
}

TEST(Pool, SequentialReuse) {
  ForkJoinPool pool(2);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(pool.run([i] { return i * i; }), i * i);
  }
}

class PoolFibTest : public ::testing::TestWithParam<int> {};

TEST_P(PoolFibTest, RecursiveSpawnSyncMatchesSequential) {
  ForkJoinPool pool(GetParam());
  EXPECT_EQ(tb::apps::fib_cilk(pool, 20), tb::apps::fib_sequential(20));
}

INSTANTIATE_TEST_SUITE_P(Workers, PoolFibTest, ::testing::Values(1, 2, 3, 4, 8));

TEST(Pool, DetachedWave) {
  ForkJoinPool pool(4);
  std::atomic<int> count{0};
  pool.run([&] {
    WaitGroup wg;
    for (int i = 0; i < 1000; ++i) {
      pool.spawn_detached([&count] { count.fetch_add(1, std::memory_order_relaxed); }, wg);
    }
    pool.wait(wg);
  });
  EXPECT_EQ(count.load(), 1000);
}

TEST(Pool, NestedDetachedWaves) {
  ForkJoinPool pool(4);
  std::atomic<int> count{0};
  pool.run([&] {
    WaitGroup outer;
    for (int i = 0; i < 16; ++i) {
      pool.spawn_detached(
          [&] {
            WaitGroup inner;
            for (int j = 0; j < 50; ++j) {
              pool.spawn_detached([&count] { count.fetch_add(1); }, inner);
            }
            pool.wait(inner);
          },
          outer);
    }
    pool.wait(outer);
  });
  EXPECT_EQ(count.load(), 16 * 50);
}

TEST(Pool, WorkerIdVisibleInsideTasks) {
  ForkJoinPool pool(3);
  const int id = pool.run([] { return ForkJoinPool::worker_id(); });
  EXPECT_GE(id, 0);
  EXPECT_LT(id, 3);
  EXPECT_EQ(ForkJoinPool::worker_id(), -1);  // external thread
}

TEST(WorkerLocalReducer, CombinesAllSlots) {
  ForkJoinPool pool(4);
  WorkerLocal<std::uint64_t> sum(pool, 0);
  pool.run([&] {
    WaitGroup wg;
    for (int i = 1; i <= 200; ++i) {
      pool.spawn_detached([&sum, i] { sum.local() += static_cast<std::uint64_t>(i); }, wg);
    }
    pool.wait(wg);
  });
  EXPECT_EQ(sum.combine([](std::uint64_t a, std::uint64_t b) { return a + b; }),
            200u * 201u / 2u);
}

TEST(WorkerLocalReducer, ExternalThreadUsesOverflowSlot) {
  ForkJoinPool pool(2);
  WorkerLocal<int> slot(pool, 0);
  slot.local() = 5;  // external thread slot
  EXPECT_EQ(slot.combine([](int a, int b) { return a + b; }), 5);
}

TEST(Pool, StealsHappenWithMultipleWorkers) {
  ForkJoinPool pool(4);
  // A deep recursion generates plenty of stealable jobs.
  (void)tb::apps::fib_cilk(pool, 22);
  // With 4 workers at least one steal is overwhelmingly likely; this also
  // sanity-checks the counter plumbing.
  EXPECT_GT(pool.total_steal_attempts(), 0u);
}

// Polls until pred() holds or ~deadline_ms elapses; returns pred()'s final
// value.  The idle/parking behaviour under test is asynchronous, so the
// tests wait for it with a deadline instead of asserting instantaneously.
template <class Pred>
bool eventually(Pred pred, int deadline_ms = 2000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(deadline_ms);
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) return pred();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

// Regression (serving-layer prerequisite): an idle pool must park every
// worker on the condition variable — the old worker loop woke 200×/s per
// worker forever, burning CPU on an idle serving daemon.
TEST(Pool, IdleWorkersPark) {
  ForkJoinPool pool(2);
  (void)pool.run([] { return 1; });  // spin up, then go idle
  EXPECT_TRUE(eventually([&] { return pool.parked_workers() == 2; }));
}

// Regression: first-job dispatch latency after an idle period must be CV
// wake latency, not quantized to the former 5 ms wait_for poll.  Best-of-N
// against a bound well under 5 ms keeps this robust to scheduler noise
// while still failing hard if the timed poll ever comes back.
TEST(Pool, DispatchLatencyAfterIdleIsWellUnderOldPollInterval) {
  ForkJoinPool pool(2);
  double best_s = 1e9;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(eventually([&] { return pool.parked_workers() == 2; }));
    const auto t0 = std::chrono::steady_clock::now();
    (void)pool.run([] { return 1; });
    const auto t1 = std::chrono::steady_clock::now();
    best_s = std::min(best_s, std::chrono::duration<double>(t1 - t0).count());
  }
  EXPECT_LT(best_s, 2.5e-3);
}

// Regression: run() from one of the pool's own workers used to be
// assert-only — a Release build deadlocked a 1-worker pool.  It now
// executes inline (it is already inside the pool's dispatch scope).
TEST(Pool, ReentrantRunExecutesInline) {
  ForkJoinPool pool(1);
  const int v = pool.run([&] { return pool.run([] { return 42; }); });
  EXPECT_EQ(v, 42);
}

// run() on a *different* pool from a worker thread cannot execute inline
// (spawns inside f would land in the wrong pool's deques) and must throw.
// The throw is caught inside the job body: an exception escaping a pool
// job would terminate the worker thread.
TEST(Pool, RunFromForeignWorkerThrows) {
  ForkJoinPool outer(1);
  ForkJoinPool inner(1);
  const bool threw = outer.run([&] {
    try {
      inner.run([] {});
      return false;
    } catch (const std::logic_error&) {
      return true;
    }
  });
  EXPECT_TRUE(threw);
}

// Regression: detached jobs spawned by a root that returns without waiting
// must still run promptly — workers may park between the root's completion
// and the detached jobs' execution, so spawn_detached has to wake sleepers
// (the park predicate tracks live detached jobs).
TEST(Pool, DetachedJobsOutliveRootAndComplete) {
  ForkJoinPool pool(2);
  WaitGroup wg;
  std::atomic<int> count{0};
  pool.run([&] {
    for (int i = 0; i < 64; ++i) {
      pool.spawn_detached([&count] { count.fetch_add(1, std::memory_order_relaxed); }, wg);
    }
    // Return with the wave still in flight; the external thread observes
    // completion through the WaitGroup (never pool.wait from outside).
  });
  EXPECT_TRUE(eventually([&] { return wg.idle(); }, 5000));
  EXPECT_EQ(count.load(), 64);
}

TEST(Xoshiro, DeterministicAndBelowBound) {
  tb::rt::Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
  for (int i = 0; i < 1000; ++i) EXPECT_LT(a.below(17), 17u);
}

TEST(Splitmix, KnownAvalanche) {
  // Distinct inputs map to distinct, well-mixed outputs.
  EXPECT_NE(tb::rt::splitmix64(0), tb::rt::splitmix64(1));
  EXPECT_NE(tb::rt::splitmix64(1), tb::rt::splitmix64(2));
  std::uint64_t x = tb::rt::splitmix64(0xdeadbeef);
  EXPECT_NE(x >> 32, 0u);
}

}  // namespace
