// Integration tests for the task-block scheduling framework: every policy ×
// every execution layer × worker count × threshold preset must reproduce the
// sequential-recursion oracle, and the recorded statistics must satisfy the
// structural claims of §4.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "apps/binomial.hpp"
#include "apps/fib.hpp"
#include "apps/knapsack.hpp"
#include "apps/parentheses.hpp"
#include "core/driver.hpp"
#include "tests/support/harness.hpp"

namespace {

using namespace tb;
using core::ExecStats;
using core::SeqPolicy;
using core::Thresholds;

// ---- scheduler matrix: result correctness --------------------------------------
//
// The full policy × {seq, par×workers} × threshold-preset cross product from
// tests/support/harness.hpp, each cell run through all three data layouts.

class SchedMatrix : public tbtest::SchedulerMatrixTest {};

TEST_P(SchedMatrix, Fib) {
  const auto& c = GetParam();
  apps::FibProgram prog;
  const auto roots = std::vector{apps::FibProgram::root(21)};
  const std::uint64_t expected = apps::fib_sequential(21);
  EXPECT_EQ(tbtest::run_cell<core::AosExec<apps::FibProgram>>(c, prog, roots), expected);
  EXPECT_EQ(tbtest::run_cell<core::SoaExec<apps::FibProgram>>(c, prog, roots), expected);
  EXPECT_EQ(tbtest::run_cell<core::SimdExec<apps::FibProgram>>(c, prog, roots), expected);
}

TEST_P(SchedMatrix, Binomial) {
  const auto& c = GetParam();
  apps::BinomialProgram prog;
  const auto roots = std::vector{apps::BinomialProgram::root(20, 7)};
  const std::uint64_t expected = apps::binomial_sequential(20, 7);  // 77520
  ASSERT_EQ(expected, 77520u);
  EXPECT_EQ(tbtest::run_cell<core::AosExec<apps::BinomialProgram>>(c, prog, roots), expected);
  EXPECT_EQ(tbtest::run_cell<core::SoaExec<apps::BinomialProgram>>(c, prog, roots), expected);
  EXPECT_EQ(tbtest::run_cell<core::SimdExec<apps::BinomialProgram>>(c, prog, roots), expected);
}

TEST_P(SchedMatrix, Parentheses) {
  const auto& c = GetParam();
  apps::ParenthesesProgram prog;
  const auto roots = std::vector{apps::ParenthesesProgram::root(9)};
  const std::uint64_t expected = apps::parentheses_sequential(9, 9);  // Catalan(9) = 4862
  ASSERT_EQ(expected, 4862u);
  EXPECT_EQ(tbtest::run_cell<core::AosExec<apps::ParenthesesProgram>>(c, prog, roots),
            expected);
  EXPECT_EQ(tbtest::run_cell<core::SoaExec<apps::ParenthesesProgram>>(c, prog, roots),
            expected);
  EXPECT_EQ(tbtest::run_cell<core::SimdExec<apps::ParenthesesProgram>>(c, prog, roots),
            expected);
}

TEST_P(SchedMatrix, Knapsack) {
  const auto& c = GetParam();
  const auto inst = apps::KnapsackInstance::random(14);
  apps::KnapsackProgram prog{&inst};
  const auto roots = std::vector{prog.root()};
  const auto expected = apps::knapsack_sequential(inst, 0, inst.capacity, 0);
  const auto a = tbtest::run_cell<core::AosExec<apps::KnapsackProgram>>(c, prog, roots);
  const auto s = tbtest::run_cell<core::SoaExec<apps::KnapsackProgram>>(c, prog, roots);
  const auto v = tbtest::run_cell<core::SimdExec<apps::KnapsackProgram>>(c, prog, roots);
  for (const auto& r : {a, s, v}) {
    EXPECT_EQ(r.leaves, expected.leaves);
    EXPECT_EQ(r.best, expected.best);
  }
}

INSTANTIATE_TEST_SUITE_P(Matrix, SchedMatrix, ::testing::ValuesIn(tbtest::matrix_cases()),
                         tbtest::matrix_name);

// ---- statistics invariants -----------------------------------------------------

TEST(ExecStatsInvariants, TaskAndLeafCensusMatchesTree) {
  apps::FibProgram prog;
  const auto roots = std::vector{apps::FibProgram::root(18)};
  const auto info = core::count_tree(prog, roots);
  tbtest::for_each_policy([&](SeqPolicy pol) {
    ExecStats st;
    const Thresholds th{8, 128, 128, 32};
    (void)core::run_seq<core::SimdExec<apps::FibProgram>>(prog, roots, pol, th, &st);
    EXPECT_EQ(st.tasks_executed, info.tasks);
    EXPECT_EQ(st.leaves, info.leaves);
    // Claim 2: complete steps <= n / Q.
    EXPECT_LE(st.steps_complete, info.tasks / 8);
    // Steps sandwich: n/Q <= total steps <= n.
    EXPECT_GE(st.steps_total, info.tasks / 8);
    EXPECT_LE(st.steps_total, info.tasks);
    EXPECT_GT(st.simd_utilization(), 0.0);
    EXPECT_LE(st.simd_utilization(), 1.0);
  });
}

TEST(ExecStatsInvariants, RestartBeatsBasicUtilizationOnSmallBlocks) {
  // The headline qualitative claim of Fig. 4 at small block sizes, checked
  // on an unbalanced tree where the basic policy starves.
  apps::ParenthesesProgram prog;
  const auto roots = std::vector{apps::ParenthesesProgram::root(10)};
  const Thresholds th{8, 32, 32, 16};
  ExecStats basic, restart;
  (void)core::run_seq<core::SoaExec<apps::ParenthesesProgram>>(prog, roots, SeqPolicy::Basic, th,
                                                               &basic);
  (void)core::run_seq<core::SoaExec<apps::ParenthesesProgram>>(prog, roots, SeqPolicy::Restart,
                                                               th, &restart);
  EXPECT_GE(restart.simd_utilization() + 1e-9, basic.simd_utilization());
}

TEST(ExecStatsInvariants, SequentialRestartStepsNearOptimal) {
  // Theorem 3: restart runs in Θ(n/Q + h) — check a generous constant.
  apps::FibProgram prog;
  const auto roots = std::vector{apps::FibProgram::root(20)};
  const auto info = core::count_tree(prog, roots);
  ExecStats st;
  const Thresholds th{8, 64, 64, 8};
  (void)core::run_seq<core::SimdExec<apps::FibProgram>>(prog, roots, SeqPolicy::Restart, th, &st);
  const double bound = static_cast<double>(info.tasks) / 8.0 +
                       static_cast<double>(info.levels) * 8.0;
  EXPECT_LE(static_cast<double>(st.steps_total), 4.0 * bound);
}

TEST(TreeCensus, FibKnownCounts) {
  apps::FibProgram prog;
  const auto roots = std::vector{apps::FibProgram::root(10)};
  const auto info = core::count_tree(prog, roots);
  // Nodes in the fib call tree: 2*fib(n+1)-1.
  EXPECT_EQ(info.tasks, 2 * apps::fib_sequential(11) - 1);
  EXPECT_EQ(info.levels, 10);  // depth of fib tree for n=10: levels 0..9
}

TEST(StripMining, OuterDataParallelRoots) {
  // Many root tasks (a data-parallel outer loop) sliced into t_dfe-sized
  // initial blocks must still produce the combined reduction.
  apps::FibProgram prog;
  std::vector<apps::FibProgram::Task> roots;
  std::uint64_t expected = 0;
  for (int n = 3; n < 40; ++n) {
    roots.push_back(apps::FibProgram::root(n % 17));
    expected += apps::fib_sequential(n % 17);
  }
  const Thresholds th{8, 16, 16, 8};
  tbtest::for_each_policy([&](SeqPolicy pol) {
    EXPECT_EQ(core::run_seq<core::SimdExec<apps::FibProgram>>(prog, roots, pol, th), expected);
  });
}

// ---- parallel schedulers --------------------------------------------------------
//
// Layer and elision corners the matrix above doesn't carry.

class ParSchedulerTest : public ::testing::TestWithParam<int> {};

TEST_P(ParSchedulerTest, ReexpMatchesOracle) {
  rt::ForkJoinPool pool(GetParam());
  apps::FibProgram prog;
  const auto roots = std::vector{apps::FibProgram::root(22)};
  const std::uint64_t expected = apps::fib_sequential(22);
  const Thresholds th{8, 256, 128, 32};
  EXPECT_EQ(core::run_par_reexp<core::SimdExec<apps::FibProgram>>(pool, prog, roots, th),
            expected);
  EXPECT_EQ(core::run_par_reexp<core::AosExec<apps::FibProgram>>(pool, prog, roots, th),
            expected);
}

TEST_P(ParSchedulerTest, RestartWithoutElisionMatchesOracle) {
  rt::ForkJoinPool pool(GetParam());
  apps::ParenthesesProgram prog;
  const auto roots = std::vector{apps::ParenthesesProgram::root(10)};
  const std::uint64_t expected = apps::parentheses_sequential(10, 10);
  const Thresholds th{8, 128, 64, 32};
  EXPECT_EQ(core::run_par_restart<core::SoaExec<apps::ParenthesesProgram>>(
                pool, prog, roots, th, nullptr, 0, /*elide_merges=*/false),
            expected);
}

TEST_P(ParSchedulerTest, ParallelStatsCensusIsExact) {
  rt::ForkJoinPool pool(GetParam());
  apps::BinomialProgram prog;
  const auto roots = std::vector{apps::BinomialProgram::root(18, 6)};
  const auto info = core::count_tree(prog, roots);
  ExecStats st_reexp, st_restart;
  const Thresholds th{8, 64, 64, 16};
  (void)core::run_par_reexp<core::SoaExec<apps::BinomialProgram>>(pool, prog, roots, th,
                                                                  &st_reexp);
  (void)core::run_par_restart<core::SoaExec<apps::BinomialProgram>>(pool, prog, roots, th,
                                                                    &st_restart);
  EXPECT_EQ(st_reexp.tasks_executed, info.tasks);
  EXPECT_EQ(st_restart.tasks_executed, info.tasks);
  EXPECT_EQ(st_reexp.leaves, info.leaves);
  EXPECT_EQ(st_restart.leaves, info.leaves);
}

INSTANTIATE_TEST_SUITE_P(Workers, ParSchedulerTest, ::testing::Values(1, 2, 4, 8));

// Repeated parallel runs are deterministic in value (schedule varies).
TEST(ParSchedulerStress, RepeatedRunsStayCorrect) {
  rt::ForkJoinPool pool(4);
  apps::ParenthesesProgram prog;
  const auto roots = std::vector{apps::ParenthesesProgram::root(11)};
  const std::uint64_t expected = apps::parentheses_sequential(11, 11);
  const Thresholds th{8, 64, 32, 16};
  for (int round = 0; round < 10; ++round) {
    EXPECT_EQ(core::run_par_restart<core::SimdExec<apps::ParenthesesProgram>>(pool, prog, roots,
                                                                              th),
              expected)
        << "round " << round;
  }
}

}  // namespace
