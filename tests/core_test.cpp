// Integration tests for the task-block scheduling framework: every policy ×
// every execution layer × several threshold settings must reproduce the
// sequential-recursion oracle, and the recorded statistics must satisfy the
// structural claims of §4.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "apps/binomial.hpp"
#include "apps/fib.hpp"
#include "apps/knapsack.hpp"
#include "apps/parentheses.hpp"
#include "core/driver.hpp"

namespace {

using namespace tb;
using core::ExecStats;
using core::SeqPolicy;
using core::Thresholds;

constexpr SeqPolicy kPolicies[] = {SeqPolicy::Basic, SeqPolicy::Reexp, SeqPolicy::Restart};

// ---- sequential schedulers: result correctness --------------------------------

struct ThresholdCase {
  int q;
  std::size_t t_dfe;
  std::size_t t_bfe;
  std::size_t t_restart;
};

class SeqSchedulerTest : public ::testing::TestWithParam<ThresholdCase> {};

TEST_P(SeqSchedulerTest, FibAllLayersAllPolicies) {
  const auto tc = GetParam();
  const Thresholds th{tc.q, tc.t_dfe, tc.t_bfe, tc.t_restart};
  apps::FibProgram prog;
  const auto roots = std::vector{apps::FibProgram::root(21)};
  const std::uint64_t expected = apps::fib_sequential(21);
  for (auto pol : kPolicies) {
    SCOPED_TRACE(core::to_string(pol));
    EXPECT_EQ(core::run_seq<core::AosExec<apps::FibProgram>>(prog, roots, pol, th), expected);
    EXPECT_EQ(core::run_seq<core::SoaExec<apps::FibProgram>>(prog, roots, pol, th), expected);
    EXPECT_EQ(core::run_seq<core::SimdExec<apps::FibProgram>>(prog, roots, pol, th), expected);
  }
}

TEST_P(SeqSchedulerTest, BinomialAllLayersAllPolicies) {
  const auto tc = GetParam();
  const Thresholds th{tc.q, tc.t_dfe, tc.t_bfe, tc.t_restart};
  apps::BinomialProgram prog;
  const auto roots = std::vector{apps::BinomialProgram::root(20, 7)};
  const std::uint64_t expected = apps::binomial_sequential(20, 7);  // 77520
  ASSERT_EQ(expected, 77520u);
  for (auto pol : kPolicies) {
    SCOPED_TRACE(core::to_string(pol));
    EXPECT_EQ(core::run_seq<core::AosExec<apps::BinomialProgram>>(prog, roots, pol, th), expected);
    EXPECT_EQ(core::run_seq<core::SoaExec<apps::BinomialProgram>>(prog, roots, pol, th), expected);
    EXPECT_EQ(core::run_seq<core::SimdExec<apps::BinomialProgram>>(prog, roots, pol, th), expected);
  }
}

TEST_P(SeqSchedulerTest, ParenthesesAllLayersAllPolicies) {
  const auto tc = GetParam();
  const Thresholds th{tc.q, tc.t_dfe, tc.t_bfe, tc.t_restart};
  apps::ParenthesesProgram prog;
  const auto roots = std::vector{apps::ParenthesesProgram::root(9)};
  const std::uint64_t expected = apps::parentheses_sequential(9, 9);  // Catalan(9) = 4862
  ASSERT_EQ(expected, 4862u);
  for (auto pol : kPolicies) {
    SCOPED_TRACE(core::to_string(pol));
    EXPECT_EQ(core::run_seq<core::AosExec<apps::ParenthesesProgram>>(prog, roots, pol, th),
              expected);
    EXPECT_EQ(core::run_seq<core::SoaExec<apps::ParenthesesProgram>>(prog, roots, pol, th),
              expected);
    EXPECT_EQ(core::run_seq<core::SimdExec<apps::ParenthesesProgram>>(prog, roots, pol, th),
              expected);
  }
}

TEST_P(SeqSchedulerTest, KnapsackAllLayersAllPolicies) {
  const auto tc = GetParam();
  const Thresholds th{tc.q, tc.t_dfe, tc.t_bfe, tc.t_restart};
  const auto inst = apps::KnapsackInstance::random(14);
  apps::KnapsackProgram prog{&inst};
  const auto roots = std::vector{prog.root()};
  const auto expected = apps::knapsack_sequential(inst, 0, inst.capacity, 0);
  for (auto pol : kPolicies) {
    SCOPED_TRACE(core::to_string(pol));
    const auto a = core::run_seq<core::AosExec<apps::KnapsackProgram>>(prog, roots, pol, th);
    const auto s = core::run_seq<core::SoaExec<apps::KnapsackProgram>>(prog, roots, pol, th);
    const auto v = core::run_seq<core::SimdExec<apps::KnapsackProgram>>(prog, roots, pol, th);
    for (const auto& r : {a, s, v}) {
      EXPECT_EQ(r.leaves, expected.leaves);
      EXPECT_EQ(r.best, expected.best);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Thresholds, SeqSchedulerTest,
    ::testing::Values(ThresholdCase{8, 8, 8, 8},       // minimal blocks
                      ThresholdCase{8, 64, 64, 16},    // small
                      ThresholdCase{8, 256, 128, 32},  // t_bfe < t_dfe
                      ThresholdCase{8, 4096, 4096, 256},
                      ThresholdCase{4, 32, 16, 8},
                      ThresholdCase{1, 1, 1, 1}),  // degenerate: pure depth-first
    [](const auto& info) {
      const auto& t = info.param;
      return "q" + std::to_string(t.q) + "_dfe" + std::to_string(t.t_dfe) + "_bfe" +
             std::to_string(t.t_bfe) + "_rs" + std::to_string(t.t_restart);
    });

// ---- statistics invariants -----------------------------------------------------

TEST(ExecStatsInvariants, TaskAndLeafCensusMatchesTree) {
  apps::FibProgram prog;
  const auto roots = std::vector{apps::FibProgram::root(18)};
  const auto info = core::count_tree(prog, roots);
  for (auto pol : kPolicies) {
    SCOPED_TRACE(core::to_string(pol));
    ExecStats st;
    const Thresholds th{8, 128, 128, 32};
    (void)core::run_seq<core::SimdExec<apps::FibProgram>>(prog, roots, pol, th, &st);
    EXPECT_EQ(st.tasks_executed, info.tasks);
    EXPECT_EQ(st.leaves, info.leaves);
    // Claim 2: complete steps <= n / Q.
    EXPECT_LE(st.steps_complete, info.tasks / 8);
    // Steps sandwich: n/Q <= total steps <= n.
    EXPECT_GE(st.steps_total, info.tasks / 8);
    EXPECT_LE(st.steps_total, info.tasks);
    EXPECT_GT(st.simd_utilization(), 0.0);
    EXPECT_LE(st.simd_utilization(), 1.0);
  }
}

TEST(ExecStatsInvariants, RestartBeatsBasicUtilizationOnSmallBlocks) {
  // The headline qualitative claim of Fig. 4 at small block sizes, checked
  // on an unbalanced tree where the basic policy starves.
  apps::ParenthesesProgram prog;
  const auto roots = std::vector{apps::ParenthesesProgram::root(10)};
  const Thresholds th{8, 32, 32, 16};
  ExecStats basic, restart;
  (void)core::run_seq<core::SoaExec<apps::ParenthesesProgram>>(prog, roots, SeqPolicy::Basic, th,
                                                               &basic);
  (void)core::run_seq<core::SoaExec<apps::ParenthesesProgram>>(prog, roots, SeqPolicy::Restart,
                                                               th, &restart);
  EXPECT_GE(restart.simd_utilization() + 1e-9, basic.simd_utilization());
}

TEST(ExecStatsInvariants, SequentialRestartStepsNearOptimal) {
  // Theorem 3: restart runs in Θ(n/Q + h) — check a generous constant.
  apps::FibProgram prog;
  const auto roots = std::vector{apps::FibProgram::root(20)};
  const auto info = core::count_tree(prog, roots);
  ExecStats st;
  const Thresholds th{8, 64, 64, 8};
  (void)core::run_seq<core::SimdExec<apps::FibProgram>>(prog, roots, SeqPolicy::Restart, th, &st);
  const double bound = static_cast<double>(info.tasks) / 8.0 +
                       static_cast<double>(info.levels) * 8.0;
  EXPECT_LE(static_cast<double>(st.steps_total), 4.0 * bound);
}

TEST(TreeCensus, FibKnownCounts) {
  apps::FibProgram prog;
  const auto roots = std::vector{apps::FibProgram::root(10)};
  const auto info = core::count_tree(prog, roots);
  // Nodes in the fib call tree: 2*fib(n+1)-1.
  EXPECT_EQ(info.tasks, 2 * apps::fib_sequential(11) - 1);
  EXPECT_EQ(info.levels, 10);  // depth of fib tree for n=10: levels 0..9
}

TEST(StripMining, OuterDataParallelRoots) {
  // Many root tasks (a data-parallel outer loop) sliced into t_dfe-sized
  // initial blocks must still produce the combined reduction.
  apps::FibProgram prog;
  std::vector<apps::FibProgram::Task> roots;
  std::uint64_t expected = 0;
  for (int n = 3; n < 40; ++n) {
    roots.push_back(apps::FibProgram::root(n % 17));
    expected += apps::fib_sequential(n % 17);
  }
  const Thresholds th{8, 16, 16, 8};
  for (auto pol : kPolicies) {
    SCOPED_TRACE(core::to_string(pol));
    EXPECT_EQ(core::run_seq<core::SimdExec<apps::FibProgram>>(prog, roots, pol, th), expected);
  }
}

// ---- parallel schedulers --------------------------------------------------------

class ParSchedulerTest : public ::testing::TestWithParam<int> {};

TEST_P(ParSchedulerTest, ReexpMatchesOracle) {
  rt::ForkJoinPool pool(GetParam());
  apps::FibProgram prog;
  const auto roots = std::vector{apps::FibProgram::root(22)};
  const std::uint64_t expected = apps::fib_sequential(22);
  const Thresholds th{8, 256, 128, 32};
  EXPECT_EQ(core::run_par_reexp<core::SimdExec<apps::FibProgram>>(pool, prog, roots, th),
            expected);
  EXPECT_EQ(core::run_par_reexp<core::AosExec<apps::FibProgram>>(pool, prog, roots, th),
            expected);
}

TEST_P(ParSchedulerTest, RestartMatchesOracle) {
  rt::ForkJoinPool pool(GetParam());
  apps::FibProgram prog;
  const auto roots = std::vector{apps::FibProgram::root(22)};
  const std::uint64_t expected = apps::fib_sequential(22);
  const Thresholds th{8, 256, 128, 32};
  EXPECT_EQ(core::run_par_restart<core::SimdExec<apps::FibProgram>>(pool, prog, roots, th),
            expected);
}

TEST_P(ParSchedulerTest, RestartWithoutElisionMatchesOracle) {
  rt::ForkJoinPool pool(GetParam());
  apps::ParenthesesProgram prog;
  const auto roots = std::vector{apps::ParenthesesProgram::root(10)};
  const std::uint64_t expected = apps::parentheses_sequential(10, 10);
  const Thresholds th{8, 128, 64, 32};
  EXPECT_EQ(core::run_par_restart<core::SoaExec<apps::ParenthesesProgram>>(
                pool, prog, roots, th, nullptr, 0, /*elide_merges=*/false),
            expected);
}

TEST_P(ParSchedulerTest, RestartKnapsackMatchesOracle) {
  rt::ForkJoinPool pool(GetParam());
  const auto inst = apps::KnapsackInstance::random(15);
  apps::KnapsackProgram prog{&inst};
  const auto roots = std::vector{prog.root()};
  const auto expected = apps::knapsack_sequential(inst, 0, inst.capacity, 0);
  const Thresholds th{8, 128, 64, 16};
  const auto r = core::run_par_restart<core::SimdExec<apps::KnapsackProgram>>(pool, prog, roots, th);
  EXPECT_EQ(r.leaves, expected.leaves);
  EXPECT_EQ(r.best, expected.best);
}

TEST_P(ParSchedulerTest, ParallelStatsCensusIsExact) {
  rt::ForkJoinPool pool(GetParam());
  apps::BinomialProgram prog;
  const auto roots = std::vector{apps::BinomialProgram::root(18, 6)};
  const auto info = core::count_tree(prog, roots);
  ExecStats st_reexp, st_restart;
  const Thresholds th{8, 64, 64, 16};
  (void)core::run_par_reexp<core::SoaExec<apps::BinomialProgram>>(pool, prog, roots, th,
                                                                  &st_reexp);
  (void)core::run_par_restart<core::SoaExec<apps::BinomialProgram>>(pool, prog, roots, th,
                                                                    &st_restart);
  EXPECT_EQ(st_reexp.tasks_executed, info.tasks);
  EXPECT_EQ(st_restart.tasks_executed, info.tasks);
  EXPECT_EQ(st_reexp.leaves, info.leaves);
  EXPECT_EQ(st_restart.leaves, info.leaves);
}

INSTANTIATE_TEST_SUITE_P(Workers, ParSchedulerTest, ::testing::Values(1, 2, 4, 8));

// Repeated parallel runs are deterministic in value (schedule varies).
TEST(ParSchedulerStress, RepeatedRunsStayCorrect) {
  rt::ForkJoinPool pool(4);
  apps::ParenthesesProgram prog;
  const auto roots = std::vector{apps::ParenthesesProgram::root(11)};
  const std::uint64_t expected = apps::parentheses_sequential(11, 11);
  const Thresholds th{8, 64, 32, 16};
  for (int round = 0; round < 10; ++round) {
    EXPECT_EQ(core::run_par_restart<core::SimdExec<apps::ParenthesesProgram>>(pool, prog, roots,
                                                                              th),
              expected)
        << "round " << round;
  }
}

}  // namespace
