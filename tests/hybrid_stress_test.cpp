// Stress suite for the hybrid vector×multicore executor, picked up by the
// weekly TSan soak (label `stress`, tsan-soak.yml): oversubscribed pools,
// repeated dynamic-partition runs (different steal interleavings each
// time), and the shared-mutable-state apps — knn's spinlocked k-best lists
// and atomic bounds, minmaxdist's CAS loops, Barnes-Hut's atomic force
// scatter — all driven through per-worker engines concurrently.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "apps/barneshut.hpp"
#include "apps/knn.hpp"
#include "apps/minmaxdist.hpp"
#include "apps/pointcorr.hpp"
#include "core/driver.hpp"
#include "lockstep/lockstep_barneshut.hpp"
#include "lockstep/lockstep_knn.hpp"
#include "lockstep/lockstep_minmax.hpp"
#include "lockstep/lockstep_pointcorr.hpp"
#include "spatial/bodies.hpp"
#include "spatial/kdtree.hpp"
#include "spatial/octree.hpp"

namespace {

using namespace tb;

constexpr std::size_t kPoints = 4000;
constexpr int kWorkers = 8;  // oversubscribes typical CI hosts: steals mid-run
constexpr int kRepeats = 3;

struct Fixture {
  spatial::Bodies pts = spatial::Bodies::uniform_cube(kPoints, 41);
  spatial::KdTree kdtree = spatial::KdTree::build(pts, 16);
  spatial::Bodies bodies = spatial::Bodies::plummer(kPoints, 43);
  spatial::Octree octree = spatial::Octree::build(bodies, 8);
};

Fixture& fix() {
  static Fixture f;
  return f;
}

rt::HybridOptions opts(std::size_t t_reexp, std::int32_t grain, bool donation = false) {
  rt::HybridOptions o;
  o.t_reexp = t_reexp;
  o.grain = grain;  // small grain: many spawned ranges, heavy stealing
  o.donation = donation;
  return o;
}

TEST(HybridStress, PointCorrRepeatedDynamicRuns) {
  auto& f = fix();
  const apps::PointCorrProgram prog{&f.pts, &f.kdtree, 0.02f};
  const std::uint64_t expected = apps::pointcorr_sequential(prog);
  rt::ForkJoinPool pool(kWorkers);
  for (int r = 0; r < kRepeats; ++r) {
    for (const std::size_t t : {std::size_t{0}, std::size_t{32}}) {
      EXPECT_EQ(lockstep::hybrid_pointcorr<8>(pool, prog, opts(t, 64)), expected);
    }
  }
}

TEST(HybridStress, KnnSharedStateUnderStealing) {
  auto& f = fix();
  const int k = 4;
  apps::KnnState oracle(f.pts.size(), k);
  {
    apps::KnnProgram prog{&f.pts, &f.kdtree, &oracle};
    apps::knn_sequential(prog);
  }
  rt::ForkJoinPool pool(kWorkers);
  for (int r = 0; r < kRepeats; ++r) {
    apps::KnnState state(f.pts.size(), k);
    apps::KnnProgram prog{&f.pts, &f.kdtree, &state};
    lockstep::hybrid_knn<8>(pool, prog, opts(16, 32));
    for (const std::int32_t q : {0, 999, 2500, 3999}) {
      EXPECT_EQ(state.distances(q), oracle.distances(q)) << "query " << q;
    }
  }
}

TEST(HybridStress, MinmaxDistCasLoopsUnderStealing) {
  auto& f = fix();
  apps::MinmaxDistState oracle(f.pts.size());
  {
    apps::MinmaxDistProgram prog{&f.pts, &f.kdtree, &oracle};
    apps::minmaxdist_sequential(prog);
  }
  const std::string expected = apps::minmaxdist_digest(oracle);
  rt::ForkJoinPool pool(kWorkers);
  for (int r = 0; r < kRepeats; ++r) {
    apps::MinmaxDistState state(f.pts.size());
    apps::MinmaxDistProgram prog{&f.pts, &f.kdtree, &state};
    lockstep::hybrid_minmaxdist<8>(pool, prog, opts(16, 32));
    EXPECT_EQ(apps::minmaxdist_digest(state), expected);
  }
}

TEST(HybridStress, BarnesHutAtomicForceScatter) {
  auto& f = fix();
  const float theta = 0.5f;
  const std::size_t n = f.bodies.size();
  std::vector<float> ax(n, 0), ay(n, 0), az(n, 0);
  apps::BarnesHutProgram seq_prog{&f.bodies, &f.octree, ax.data(), ay.data(), az.data()};
  const std::uint64_t expected = apps::barneshut_sequential(seq_prog, theta);
  rt::ForkJoinPool pool(kWorkers);
  for (int r = 0; r < kRepeats; ++r) {
    std::vector<float> hx(n, 0), hy(n, 0), hz(n, 0);
    apps::BarnesHutProgram prog{&f.bodies, &f.octree, hx.data(), hy.data(), hz.data()};
    EXPECT_EQ(lockstep::hybrid_barneshut<8>(pool, prog, theta, opts(32, 64)), expected);
  }
}

// Frame-level donation under oversubscribed stealing: a huge grain keeps
// the range in a handful of pieces, so most workers are hungry and the
// loaded engines donate bottom frames continuously — concurrent donated
// subtrees hammer the same shared per-query state (knn spinlocks,
// minmaxdist CAS loops, Barnes-Hut atomic adds) from both sides.
TEST(HybridStress, DonationStormKeepsSharedStateCorrect) {
  auto& f = fix();
  rt::ForkJoinPool pool(kWorkers);
  const auto big_grain = static_cast<std::int32_t>(kPoints / 2);
  const apps::PointCorrProgram pc_prog{&f.pts, &f.kdtree, 0.02f};
  const std::uint64_t pc_expected = apps::pointcorr_sequential(pc_prog);
  apps::KnnState knn_oracle(f.pts.size(), 4);
  {
    apps::KnnProgram prog{&f.pts, &f.kdtree, &knn_oracle};
    apps::knn_sequential(prog);
  }
  apps::MinmaxDistState mmd_oracle(f.pts.size());
  {
    apps::MinmaxDistProgram prog{&f.pts, &f.kdtree, &mmd_oracle};
    apps::minmaxdist_sequential(prog);
  }
  const std::string mmd_expected = apps::minmaxdist_digest(mmd_oracle);
  for (int r = 0; r < kRepeats; ++r) {
    EXPECT_EQ(lockstep::hybrid_pointcorr<8>(pool, pc_prog, opts(16, big_grain, true)),
              pc_expected);
    apps::KnnState knn_state(f.pts.size(), 4);
    apps::KnnProgram knn_prog{&f.pts, &f.kdtree, &knn_state};
    lockstep::hybrid_knn<8>(pool, knn_prog, opts(16, big_grain, true));
    for (const std::int32_t q : {0, 999, 2500, 3999}) {
      EXPECT_EQ(knn_state.distances(q), knn_oracle.distances(q)) << "query " << q;
    }
    apps::MinmaxDistState mmd_state(f.pts.size());
    apps::MinmaxDistProgram mmd_prog{&f.pts, &f.kdtree, &mmd_state};
    lockstep::hybrid_minmaxdist<8>(pool, mmd_prog, opts(16, big_grain, true));
    EXPECT_EQ(apps::minmaxdist_digest(mmd_state), mmd_expected);
  }
}

// Mixed W=4/W=8 hybrid runs interleaved on one pool — engine contexts are
// per-invocation, so alternating widths must not interfere.
TEST(HybridStress, AlternatingLaneWidths) {
  auto& f = fix();
  const apps::PointCorrProgram prog{&f.pts, &f.kdtree, 0.02f};
  const std::uint64_t expected = apps::pointcorr_sequential(prog);
  rt::ForkJoinPool pool(kWorkers);
  for (int r = 0; r < kRepeats; ++r) {
    EXPECT_EQ(lockstep::hybrid_pointcorr<4>(pool, prog, opts(8, 48)), expected);
    EXPECT_EQ(lockstep::hybrid_pointcorr<8>(pool, prog, opts(8, 48)), expected);
  }
}

}  // namespace
