// Stress and failure-injection tests for the work-stealing runtime and the
// parallel schedulers: spawn storms, deep spawn chains, adversarial yield
// injection inside kernels (forcing steal interleavings the happy path
// never sees), pool lifecycle churn, and contended deque chaos.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "apps/fib.hpp"
#include "apps/parentheses.hpp"
#include "core/driver.hpp"
#include "runtime/chase_lev_deque.hpp"
#include "runtime/forkjoin.hpp"
#include "runtime/xoshiro.hpp"

namespace {

using namespace tb;
using core::SeqPolicy;

// ---- pool stress ---------------------------------------------------------------------

TEST(PoolStress, DetachedSpawnStorm) {
  rt::ForkJoinPool pool(4);
  std::atomic<std::uint64_t> sum{0};
  pool.run([&] {
    rt::WaitGroup wg;
    for (int i = 0; i < 20000; ++i) {
      rt::ForkJoinPool::current()->spawn_detached(
          [&sum, i] { sum.fetch_add(static_cast<std::uint64_t>(i), std::memory_order_relaxed); },
          wg);
    }
    rt::ForkJoinPool::current()->wait(wg);
  });
  EXPECT_EQ(sum.load(), 19999ull * 20000ull / 2);
}

TEST(PoolStress, DeepStructuredSpawnChain) {
  // Each level spawns one child and syncs: exercises deque growth and the
  // sync help-loop at depth.  Iterative driver keeps the C++ stack shallow.
  rt::ForkJoinPool pool(2);
  constexpr int kDepth = 4000;
  const std::uint64_t got = pool.run([&] {
    std::uint64_t acc = 0;
    for (int d = 0; d < kDepth; ++d) {
      std::uint64_t child = 0;
      rt::SpawnJob job([&child, d] { child = static_cast<std::uint64_t>(d); });
      rt::ForkJoinPool::current()->push(job);
      rt::ForkJoinPool::current()->sync(job);
      acc += child;
    }
    return acc;
  });
  EXPECT_EQ(got, static_cast<std::uint64_t>(kDepth - 1) * kDepth / 2);
}

TEST(PoolStress, PoolLifecycleChurn) {
  // Create/destroy pools back to back; each must start, work, and join
  // cleanly (no leaked threads, no stuck condition variables).
  for (int round = 0; round < 12; ++round) {
    rt::ForkJoinPool pool(1 + round % 4);
    EXPECT_EQ(pool.run([&] { return apps::fib_cilk_rec(pool, 15); }), 610u);
  }
}

TEST(PoolStress, OversubscribedWorkers) {
  // More workers than cores (this host has few): heavy interleaving.
  rt::ForkJoinPool pool(8);
  for (int round = 0; round < 5; ++round) {
    EXPECT_EQ(pool.run([&] { return apps::fib_cilk_rec(pool, 20); }), 6765u);
  }
}

TEST(PoolStress, AlternatingRunsFromExternalThread) {
  rt::ForkJoinPool pool(3);
  for (int i = 20; i <= 24; ++i) {
    EXPECT_EQ(pool.run([&, i] { return apps::fib_cilk_rec(pool, i); }),
              apps::fib_sequential(i));
  }
}

// ---- failure injection: yield-happy kernels -----------------------------------------

// A parentheses program whose leaf handler sporadically yields, forcing the
// OS to interleave thieves mid-superstep.  Results must be unaffected.
struct YieldyParens {
  using Task = apps::ParenthesesProgram::Task;
  using Result = std::uint64_t;
  static constexpr int max_children = 2;

  apps::ParenthesesProgram inner;

  static Result identity() { return 0; }
  static void combine(Result& a, const Result& b) { a += b; }

  bool is_base(const Task& t) const { return inner.is_base(t); }
  void leaf(const Task& t, Result& r) const {
    if ((static_cast<std::uint32_t>(t.open * 31 + t.close) & 127u) == 0) {
      std::this_thread::yield();
    }
    inner.leaf(t, r);
  }
  template <class Emit>
  void expand(const Task& t, Emit&& emit) const {
    inner.expand(t, emit);
  }

  using Block = apps::ParenthesesProgram::Block;
  static Task task_at(const Block& b, std::size_t i) {
    return apps::ParenthesesProgram::task_at(b, i);
  }
  static void append_task(Block& b, const Task& t) {
    apps::ParenthesesProgram::append_task(b, t);
  }
};

class YieldInjection : public ::testing::TestWithParam<int> {};

TEST_P(YieldInjection, ParallelSchedulersSurviveInterleaving) {
  const int workers = GetParam();
  const YieldyParens prog{};
  const std::vector roots{apps::ParenthesesProgram::root(10)};
  const std::uint64_t expected = apps::parentheses_sequential(10, 10);
  const auto th = core::Thresholds::for_block_size(8, 64, 16);
  rt::ForkJoinPool pool(workers);
  for (int round = 0; round < 6; ++round) {
    EXPECT_EQ((core::run_par_reexp<core::SoaExec<YieldyParens>>(pool, prog, roots, th)),
              expected);
    EXPECT_EQ((core::run_par_restart<core::SoaExec<YieldyParens>>(pool, prog, roots, th)),
              expected);
    EXPECT_EQ((core::run_par_restart<core::SoaExec<YieldyParens>>(pool, prog, roots, th,
                                                                  nullptr, 0,
                                                                  /*elide_merges=*/false)),
              expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Workers, YieldInjection, ::testing::Values(2, 4, 7),
                         [](const auto& info) {
                           return "w" + std::to_string(info.param);
                         });

// ---- deque chaos ---------------------------------------------------------------------

TEST(DequeChaos, InterleavedPushPopStealConservation) {
  // Owner interleaves pushes and pops while three thieves steal; every
  // pushed token is consumed exactly once (sum conservation), regardless of
  // interleaving.
  constexpr int kTokens = 30000;
  std::vector<rt::JobBase> jobs(kTokens);
  rt::ChaseLevDeque<rt::JobBase> deque;
  std::atomic<std::uint64_t> stolen_sum{0};
  std::atomic<bool> done{false};

  auto thief = [&] {
    rt::Xoshiro256 rng(std::hash<std::thread::id>{}(std::this_thread::get_id()));
    std::uint64_t local = 0;
    while (!done.load(std::memory_order_acquire)) {
      if (rt::JobBase* j = deque.steal_top()) {
        local += static_cast<std::uint64_t>(j - jobs.data());
      } else if (rng.below(4) == 0) {
        std::this_thread::yield();
      }
    }
    // Drain whatever is left after the owner finished.
    while (rt::JobBase* j = deque.steal_top()) {
      local += static_cast<std::uint64_t>(j - jobs.data());
    }
    stolen_sum.fetch_add(local, std::memory_order_acq_rel);
  };
  std::vector<std::thread> thieves;
  for (int i = 0; i < 3; ++i) thieves.emplace_back(thief);

  rt::Xoshiro256 rng(7);
  std::uint64_t own_sum = 0;
  int pushed = 0;
  while (pushed < kTokens) {
    // Bias toward pushes so thieves stay busy.
    const int burst = 1 + static_cast<int>(rng.below(8));
    for (int b = 0; b < burst && pushed < kTokens; ++b) {
      deque.push_bottom(&jobs[static_cast<std::size_t>(pushed)]);
      ++pushed;
    }
    if (rng.below(3) == 0) {
      if (rt::JobBase* j = deque.pop_bottom()) {
        own_sum += static_cast<std::uint64_t>(j - jobs.data());
      }
    }
  }
  done.store(true, std::memory_order_release);
  for (auto& t : thieves) t.join();
  // Owner drains the remainder.
  while (rt::JobBase* j = deque.pop_bottom()) {
    own_sum += static_cast<std::uint64_t>(j - jobs.data());
  }
  EXPECT_EQ(own_sum + stolen_sum.load(), static_cast<std::uint64_t>(kTokens - 1) * kTokens / 2);
}

// ---- scheduler robustness under repetition -------------------------------------------

TEST(SchedulerStress, ManyRoundsAlternatingPoliciesAndWorkers) {
  const apps::FibProgram prog;
  const std::vector roots{apps::FibProgram::root(22)};
  const std::uint64_t expected = apps::fib_sequential(22);
  for (const int workers : {1, 3, 5}) {
    rt::ForkJoinPool pool(workers);
    for (const std::size_t block : {16u, 256u}) {
      const auto th =
          core::Thresholds::for_block_size(8, block, std::max<std::size_t>(block / 8, 1));
      EXPECT_EQ((core::run_par_reexp<core::SimdExec<apps::FibProgram>>(pool, prog, roots, th)),
                expected)
          << workers << "w block " << block;
      EXPECT_EQ(
          (core::run_par_restart<core::SimdExec<apps::FibProgram>>(pool, prog, roots, th)),
          expected)
          << workers << "w block " << block;
    }
  }
}

}  // namespace
