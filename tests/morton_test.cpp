// Tests for Morton (Z-order) sorting: bit interleaving, quantization,
// permutation validity, the locality improvement it exists to deliver, and
// result preservation when traversal kernels run on sorted inputs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "apps/pointcorr.hpp"
#include "spatial/bodies.hpp"
#include "spatial/kdtree.hpp"
#include "spatial/morton.hpp"

namespace {

using namespace tb;
using spatial::Bodies;

TEST(Morton, SpreadPlacesBitsThreeApart) {
  EXPECT_EQ(spatial::morton_spread10(0b1u), 0b1u);
  EXPECT_EQ(spatial::morton_spread10(0b10u), 0b1000u);
  EXPECT_EQ(spatial::morton_spread10(0b11u), 0b1001u);
  EXPECT_EQ(spatial::morton_spread10(0x3ffu), 0x09249249u);
  // Bits above the low 10 are ignored.
  EXPECT_EQ(spatial::morton_spread10(0xfc00u), 0u);
}

TEST(Morton, CodeInterleavesAxes) {
  // gx=1, gy=0, gz=0 -> bit 0; gy=1 -> bit 1; gz=1 -> bit 2.
  EXPECT_EQ(spatial::morton3(1, 0, 0), 0b001u);
  EXPECT_EQ(spatial::morton3(0, 1, 0), 0b010u);
  EXPECT_EQ(spatial::morton3(0, 0, 1), 0b100u);
  EXPECT_EQ(spatial::morton3(1, 1, 1), 0b111u);
  // Code ordering follows the grid along each axis.
  EXPECT_LT(spatial::morton3(0, 0, 0), spatial::morton3(1023, 1023, 1023));
}

TEST(Morton, QuantizeClampsAndScales) {
  EXPECT_EQ(spatial::morton_quantize(0.0f, 0.0f, 1.0f), 0u);
  EXPECT_EQ(spatial::morton_quantize(1.0f, 0.0f, 1.0f), 1023u);
  EXPECT_EQ(spatial::morton_quantize(-5.0f, 0.0f, 1.0f), 0u);
  EXPECT_EQ(spatial::morton_quantize(5.0f, 0.0f, 1.0f), 1023u);
  EXPECT_EQ(spatial::morton_quantize(0.5f, 0.0f, 1.0f), 512u);
  // Degenerate range: everything lands in cell 0.
  EXPECT_EQ(spatial::morton_quantize(3.0f, 2.0f, 2.0f), 0u);
}

TEST(Morton, OrderIsAPermutation) {
  const auto b = Bodies::plummer(997, 5);
  const auto perm = spatial::morton_order(b);
  ASSERT_EQ(perm.size(), b.size());
  std::vector<std::int32_t> sorted(perm);
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    EXPECT_EQ(sorted[i], static_cast<std::int32_t>(i));
  }
}

TEST(Morton, SortPreservesTheMultiset) {
  const auto b = Bodies::uniform_cube(500, 9);
  const auto s = spatial::morton_sort(b);
  ASSERT_EQ(s.size(), b.size());
  double sum_b = 0, sum_s = 0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    sum_b += static_cast<double>(b.x[i]) + b.y[i] + b.z[i];
    sum_s += static_cast<double>(s.x[i]) + s.y[i] + s.z[i];
  }
  EXPECT_NEAR(sum_b, sum_s, 1e-6);
}

TEST(Morton, SortImprovesNeighborLocality) {
  // The module's reason to exist: consecutive bodies end up spatially close.
  for (const std::uint64_t seed : {1ull, 7ull, 42ull}) {
    const auto random_order = Bodies::uniform_cube(4000, seed);
    const auto sorted = spatial::morton_sort(random_order);
    const double before = spatial::mean_neighbor_distance(random_order);
    const double after = spatial::mean_neighbor_distance(sorted);
    EXPECT_LT(after, before * 0.25) << "seed " << seed;
  }
}

TEST(Morton, SortedInputPreservesKernelResults) {
  // Point correlation's total count is order-independent: running on the
  // sorted set gives the same answer (each point still queries all others).
  const auto pts = Bodies::uniform_cube(1200, 3);
  const auto sorted = spatial::morton_sort(pts);
  const auto tree = spatial::KdTree::build(pts, 16);
  const auto tree_sorted = spatial::KdTree::build(sorted, 16);
  const apps::PointCorrProgram prog{&pts, &tree, 0.03f};
  const apps::PointCorrProgram prog_sorted{&sorted, &tree_sorted, 0.03f};
  EXPECT_EQ(apps::pointcorr_sequential(prog_sorted), apps::pointcorr_sequential(prog));
}

TEST(Morton, EmptyAndSingletonInputs) {
  Bodies empty;
  EXPECT_TRUE(spatial::morton_order(empty).empty());
  EXPECT_EQ(spatial::mean_neighbor_distance(empty), 0.0);
  const auto one = Bodies::uniform_cube(1, 2);
  const auto perm = spatial::morton_order(one);
  ASSERT_EQ(perm.size(), 1u);
  EXPECT_EQ(perm[0], 0);
}

}  // namespace
