// Tests for the spec-language compiler pipeline: bytecode verifier,
// AST→bytecode compilation (constant folding, algebraic simplification,
// short-circuit vs eager logic), the scalar VM, the block VM, and the
// CompiledSpecProgram end-to-end through every scheduler and layer.
//
// The core property, checked on thousands of random expressions: the AST
// interpreter, the scalar VM on both dialects, and the block VM agree
// bit-for-bit on every input (the language's wrap-around/total arithmetic
// makes this exact, not approximate).
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "apps/binomial.hpp"
#include "apps/fib.hpp"
#include "apps/parentheses.hpp"
#include "core/driver.hpp"
#include "runtime/xoshiro.hpp"
#include "spec/compiler.hpp"
#include "spec/spec_lang.hpp"
#include "spec/vm.hpp"
#include "tests/support/harness.hpp"

namespace {

using namespace tb;
using core::SeqPolicy;
using spec::Chunk;
using spec::CompiledSpecProgram;
using spec::CompileMode;
using spec::Compiler;
using spec::Expr;
using spec::Op;
using spec::OpCode;
using spec::SpecProgram;

// ---- helpers -----------------------------------------------------------------------

std::unique_ptr<Expr> konst(std::int64_t v) {
  auto e = std::make_unique<Expr>();
  e->op = Op::Const;
  e->value = v;
  return e;
}
std::unique_ptr<Expr> param(int i) {
  auto e = std::make_unique<Expr>();
  e->op = Op::Param;
  e->value = i;
  return e;
}
std::unique_ptr<Expr> node(Op op, std::unique_ptr<Expr> l, std::unique_ptr<Expr> r = nullptr) {
  auto e = std::make_unique<Expr>();
  e->op = op;
  e->lhs = std::move(l);
  e->rhs = std::move(r);
  return e;
}

std::int64_t run_scalar(const Chunk& ch, std::span<const std::int64_t> params) {
  std::array<std::int64_t, 64> stack;
  return spec::run_chunk(ch, params, stack);
}

// Evaluate a blocked chunk on one logical lane (others get sentinel values
// that must not leak into lane 0).
std::int64_t run_blocked_lane0(const Chunk& ch, std::span<const std::int64_t> params) {
  using B = spec::IBatch<4>;
  std::array<B, 64> stack;
  std::array<B, 4> p{B::broadcast(-77), B::broadcast(-77), B::broadcast(-77),
                     B::broadcast(-77)};
  for (std::size_t i = 0; i < params.size(); ++i) {
    p[i] = B::broadcast(params[i]);
    p[i].set(1, spec::wrap_add(params[i], 1));  // perturb other lanes
  }
  return spec::eval_blocked<4>(ch, p, stack)[0];
}

// ---- bytecode verifier -----------------------------------------------------------

TEST(BytecodeVerify, AcceptsMinimalChunk) {
  Chunk ch;
  ch.emit(OpCode::PushConst, ch.add_const(42));
  ch.emit(OpCode::Return);
  const auto v = ch.verify(0);
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.max_stack, 1);
  EXPECT_EQ(ch.as_constant(), 42);
}

TEST(BytecodeVerify, ComputesMaxStackDepth) {
  Chunk ch;  // ((p0 + 1) * (p0 + 2)) needs 3 slots with naive left-to-right order
  ch.emit(OpCode::PushParam, 0);
  ch.emit(OpCode::PushConst, ch.add_const(1));
  ch.emit(OpCode::Add);
  ch.emit(OpCode::PushParam, 0);
  ch.emit(OpCode::PushConst, ch.add_const(2));
  ch.emit(OpCode::Add);
  ch.emit(OpCode::Mul);
  ch.emit(OpCode::Return);
  const auto v = ch.verify(1);
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.max_stack, 3);
}

TEST(BytecodeVerify, RejectsMissingReturn) {
  Chunk ch;
  ch.emit(OpCode::PushConst, ch.add_const(1));
  EXPECT_FALSE(ch.verify(0).ok);
}

TEST(BytecodeVerify, RejectsStackUnderflow) {
  Chunk ch;
  ch.emit(OpCode::Add);
  ch.emit(OpCode::Return);
  const auto v = ch.verify(0);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("underflow"), std::string::npos);
}

TEST(BytecodeVerify, RejectsBadConstIndex) {
  Chunk ch;
  ch.emit(OpCode::PushConst, 3);  // no consts added
  ch.emit(OpCode::Return);
  EXPECT_FALSE(ch.verify(0).ok);
}

TEST(BytecodeVerify, RejectsBadParamIndex) {
  Chunk ch;
  ch.emit(OpCode::PushParam, 2);
  ch.emit(OpCode::Return);
  EXPECT_FALSE(ch.verify(2).ok);  // arity 2 => params 0..1
  EXPECT_TRUE(ch.verify(3).ok);
}

TEST(BytecodeVerify, RejectsJumpOutOfRange) {
  Chunk ch;
  ch.emit(OpCode::PushConst, ch.add_const(1));
  ch.emit(OpCode::JumpIfZero, 100);
  ch.emit(OpCode::PushConst, 0);
  ch.emit(OpCode::Return);
  EXPECT_FALSE(ch.verify(0).ok);
}

TEST(BytecodeVerify, RejectsReturnWithDeepStack) {
  Chunk ch;
  ch.emit(OpCode::PushConst, ch.add_const(1));
  ch.emit(OpCode::PushConst, ch.add_const(2));
  ch.emit(OpCode::Return);
  const auto v = ch.verify(0);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("ret"), std::string::npos);
}

TEST(BytecodeVerify, RejectsShiftOutOfRange) {
  Chunk ch;
  ch.emit(OpCode::PushConst, ch.add_const(1));
  ch.emit(OpCode::Shl, 63);
  ch.emit(OpCode::Return);
  EXPECT_FALSE(ch.verify(0).ok);
}

TEST(BytecodeVerify, ConstPoolDeduplicates) {
  Chunk ch;
  const auto a = ch.add_const(7);
  const auto b = ch.add_const(7);
  const auto c = ch.add_const(9);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(ch.consts().size(), 2u);
}

TEST(BytecodeDisassemble, ShowsMnemonicsAndOperands) {
  Chunk ch;
  ch.emit(OpCode::PushParam, 1);
  ch.emit(OpCode::PushConst, ch.add_const(10));
  ch.emit(OpCode::CmpLt);
  ch.emit(OpCode::Return);
  const std::string text = ch.disassemble("test");
  EXPECT_NE(text.find("test:"), std::string::npos);
  EXPECT_NE(text.find("push.param\tp1"), std::string::npos);
  EXPECT_NE(text.find("push.const\t10"), std::string::npos);
  EXPECT_NE(text.find("cmp.lt"), std::string::npos);
  EXPECT_NE(text.find("ret"), std::string::npos);
}

// ---- compiler: folding and simplification ------------------------------------------

TEST(SpecCompiler, FoldsConstantExpressions) {
  // (2 + 3 * 4) == 14  =>  1
  auto e = node(Op::Eq, node(Op::Add, konst(2), node(Op::Mul, konst(3), konst(4))), konst(14));
  const Chunk ch = Compiler(CompileMode::Scalar).compile(*e, 0);
  EXPECT_EQ(ch.as_constant(), 1);
}

TEST(SpecCompiler, FoldsTotalDivisionByZero) {
  auto e = node(Op::Div, konst(5), konst(0));
  EXPECT_EQ(Compiler(CompileMode::Scalar).compile(*e, 0).as_constant(), 0);
  auto m = node(Op::Mod, konst(5), konst(0));
  EXPECT_EQ(Compiler(CompileMode::Scalar).compile(*m, 0).as_constant(), 0);
}

TEST(SpecCompiler, FoldsIntMinNegationByWrapping) {
  const std::int64_t int_min = std::numeric_limits<std::int64_t>::min();
  auto e = node(Op::Neg, konst(int_min));
  EXPECT_EQ(Compiler(CompileMode::Scalar).compile(*e, 0).as_constant(), int_min);
}

TEST(SpecCompiler, ElidesAdditiveIdentity) {
  auto e = node(Op::Add, param(0), konst(0));
  const Chunk ch = Compiler(CompileMode::Scalar).compile(*e, 1);
  ASSERT_EQ(ch.code().size(), 2u);  // push.param, ret — no add
  EXPECT_EQ(ch.code()[0].op, OpCode::PushParam);
}

TEST(SpecCompiler, ElidesMultiplicativeIdentity) {
  auto e = node(Op::Mul, konst(1), param(0));
  const Chunk ch = Compiler(CompileMode::Scalar).compile(*e, 1);
  ASSERT_EQ(ch.code().size(), 2u);
  EXPECT_EQ(ch.code()[0].op, OpCode::PushParam);
}

TEST(SpecCompiler, MulByZeroBecomesConstant) {
  auto e = node(Op::Mul, param(0), konst(0));
  EXPECT_EQ(Compiler(CompileMode::Scalar).compile(*e, 1).as_constant(), 0);
}

TEST(SpecCompiler, StrengthReducesMulByPowerOfTwo) {
  auto e = node(Op::Mul, param(0), konst(8));
  const Chunk ch = Compiler(CompileMode::Scalar).compile(*e, 1);
  ASSERT_EQ(ch.code().size(), 3u);  // push.param, shl 3, ret
  EXPECT_EQ(ch.code()[1].op, OpCode::Shl);
  EXPECT_EQ(ch.code()[1].arg, 3);
  const std::int64_t p[] = {11};
  EXPECT_EQ(run_scalar(ch, p), 88);
}

TEST(SpecCompiler, DoubleNegationNormalizesToBool) {
  auto e = node(Op::Not, node(Op::Not, param(0)));
  const Chunk ch = Compiler(CompileMode::Scalar).compile(*e, 1);
  ASSERT_EQ(ch.code().size(), 3u);  // push.param, bool, ret
  EXPECT_EQ(ch.code()[1].op, OpCode::Bool);
  const std::int64_t p5[] = {5};
  const std::int64_t p0[] = {0};
  EXPECT_EQ(run_scalar(ch, p5), 1);
  EXPECT_EQ(run_scalar(ch, p0), 0);
}

TEST(SpecCompiler, ConstantLhsDecidesLogic) {
  // 0 && p0  =>  0 without evaluating p0
  auto e1 = node(Op::And, konst(0), param(0));
  EXPECT_EQ(Compiler(CompileMode::Scalar).compile(*e1, 1).as_constant(), 0);
  // 7 || p0  =>  1
  auto e2 = node(Op::Or, konst(7), param(0));
  EXPECT_EQ(Compiler(CompileMode::Scalar).compile(*e2, 1).as_constant(), 1);
  // 1 && p0  =>  bool(p0)
  auto e3 = node(Op::And, konst(1), param(0));
  const Chunk ch = Compiler(CompileMode::Scalar).compile(*e3, 1);
  EXPECT_FALSE(ch.has_jumps());
  const std::int64_t p[] = {-4};
  EXPECT_EQ(run_scalar(ch, p), 1);
}

TEST(SpecCompiler, ScalarDialectEmitsShortCircuitJumps) {
  auto e = node(Op::And, node(Op::Gt, param(0), konst(0)), node(Op::Lt, param(1), konst(9)));
  const Chunk scalar = Compiler(CompileMode::Scalar).compile(*e, 2);
  const Chunk blocked = Compiler(CompileMode::Blocked).compile(*e, 2);
  EXPECT_TRUE(scalar.has_jumps());
  EXPECT_FALSE(blocked.has_jumps());
  for (const std::int64_t a : {-1, 0, 1, 5}) {
    for (const std::int64_t b : {3, 9, 20}) {
      const std::int64_t p[] = {a, b};
      const std::int64_t expect = (a > 0 && b < 9) ? 1 : 0;
      EXPECT_EQ(run_scalar(scalar, p), expect);
      EXPECT_EQ(run_scalar(blocked, p), expect);
      EXPECT_EQ(run_blocked_lane0(blocked, p), expect);
    }
  }
}

TEST(SpecCompiler, OrShortCircuitNormalizesTakenValue) {
  // 2 is truthy but not 1: the || result must still be exactly 1.
  auto e = node(Op::Or, param(0), param(1));
  const Chunk ch = Compiler(CompileMode::Scalar).compile(*e, 2);
  const std::int64_t p[] = {2, 0};
  EXPECT_EQ(run_scalar(ch, p), 1);
}

TEST(SpecCompiler, RejectsTooDeepExpressions) {
  // 70 nested additions exceed the 64-slot VM stack budget.
  auto e = param(0);
  for (int i = 0; i < 70; ++i) e = node(Op::Add, param(0), std::move(e));
  const std::string src_unused;  // (builder-based; no parser involvement)
  spec::Method m;
  m.name = "f";
  m.params = {"n"};
  m.base = konst(1);
  m.reduce = std::move(e);
  spec::SpawnClause s;
  s.args.push_back(param(0));
  m.spawns.push_back(std::move(s));
  EXPECT_THROW((void)CompiledSpecProgram(std::move(m)), spec::CompileError);
}

TEST(BytecodeVerify, RejectsBackwardJumps) {
  // Forward-only jumps are what makes chunk execution obviously
  // terminating; the verifier rejects negative offsets.
  Chunk ch;
  ch.emit(OpCode::PushConst, ch.add_const(1));
  ch.emit(OpCode::JumpIfZero, -1);
  ch.emit(OpCode::PushConst, ch.add_const(0));
  ch.emit(OpCode::Return);
  EXPECT_FALSE(ch.verify(0).ok);
}

// Mutation fuzzing: corrupt one instruction of a valid compiled chunk.  The
// verifier must never crash; if it accepts the mutant, the scalar VM must
// execute it without leaving the stack bounds the verifier computed.
class VerifierMutation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VerifierMutation, CorruptedChunksAreRejectedOrStillSafe) {
  rt::Xoshiro256 rng(GetParam());
  const Compiler scalar_c(CompileMode::Scalar);
  for (int trial = 0; trial < 60; ++trial) {
    // Small random expression over 2 params.
    auto e = node(Op::Add, node(Op::Mul, param(0), konst(static_cast<std::int64_t>(rng()))),
                  node(Op::And, node(Op::Lt, param(1), konst(9)), param(0)));
    Chunk ch = scalar_c.compile(*e, 2);
    ASSERT_TRUE(ch.verify(2).ok);
    // Mutate one instruction in place via a rebuilt chunk.
    const auto& code = ch.code();
    const std::size_t victim = rng.below(static_cast<std::uint32_t>(code.size()));
    Chunk mutant;
    for (std::int64_t c : ch.consts()) (void)mutant.add_const(c);
    for (std::size_t i = 0; i < code.size(); ++i) {
      spec::Instr in = code[i];
      if (i == victim) {
        switch (rng.below(3)) {
          case 0: in.op = static_cast<OpCode>(rng.below(22)); break;  // random opcode
          case 1: in.arg = static_cast<std::int32_t>(rng()) % 100 - 50; break;
          default:
            in.op = static_cast<OpCode>(rng.below(22));
            in.arg = static_cast<std::int32_t>(rng()) % 100 - 50;
        }
      }
      mutant.emit(in.op, in.arg);
    }
    const auto v = mutant.verify(2);
    if (!v.ok) continue;  // rejected: fine
    // Accepted mutants must still execute within the verified stack bound.
    ASSERT_LE(v.max_stack, 64);
    const std::int64_t params[2] = {5, -3};
    (void)run_scalar(mutant, params);  // must not crash / overrun
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VerifierMutation, ::testing::Values(101u, 202u, 303u, 404u));

// ---- random differential testing -----------------------------------------------------

class ExprGen {
public:
  ExprGen(std::uint64_t seed, int arity) : rng_(seed), arity_(arity) {}

  std::unique_ptr<Expr> gen(int depth) {
    if (depth <= 0 || rng_.below(5) == 0) return leaf();
    switch (rng_.below(15)) {
      case 0: return node(Op::Add, gen(depth - 1), gen(depth - 1));
      case 1: return node(Op::Sub, gen(depth - 1), gen(depth - 1));
      case 2: return node(Op::Mul, gen(depth - 1), gen(depth - 1));
      case 3: return node(Op::Div, gen(depth - 1), gen(depth - 1));
      case 4: return node(Op::Mod, gen(depth - 1), gen(depth - 1));
      case 5: return node(Op::Neg, gen(depth - 1));
      case 6: return node(Op::Not, gen(depth - 1));
      case 7: return node(Op::And, gen(depth - 1), gen(depth - 1));
      case 8: return node(Op::Or, gen(depth - 1), gen(depth - 1));
      case 9: return node(Op::Eq, gen(depth - 1), gen(depth - 1));
      case 10: return node(Op::Ne, gen(depth - 1), gen(depth - 1));
      case 11: return node(Op::Lt, gen(depth - 1), gen(depth - 1));
      case 12: return node(Op::Le, gen(depth - 1), gen(depth - 1));
      case 13: return node(Op::Gt, gen(depth - 1), gen(depth - 1));
      default: return node(Op::Ge, gen(depth - 1), gen(depth - 1));
    }
  }

  std::int64_t pick_value() {
    switch (rng_.below(8)) {
      case 0: return 0;
      case 1: return 1;
      case 2: return 2;
      case 3: return 16;  // power of two: exercises strength reduction
      case 4: return -5;
      case 5: return std::numeric_limits<std::int64_t>::min();
      case 6: return std::numeric_limits<std::int64_t>::max();
      default: return static_cast<std::int64_t>(rng_());
    }
  }

private:
  std::unique_ptr<Expr> leaf() {
    if (arity_ > 0 && rng_.below(2) == 0) {
      return param(static_cast<int>(rng_.below(static_cast<std::uint32_t>(arity_))));
    }
    return konst(pick_value());
  }

  rt::Xoshiro256 rng_;
  int arity_;
};

class RandomExprDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomExprDifferential, AstScalarVmAndBlockVmAgree) {
  const std::uint64_t seed = GetParam();
  ExprGen gen(seed, 4);
  const Compiler scalar_c(CompileMode::Scalar);
  const Compiler blocked_c(CompileMode::Blocked);
  for (int trial = 0; trial < 200; ++trial) {
    const auto e = gen.gen(5);
    const Chunk sc = scalar_c.compile(*e, 4);
    const Chunk bc = blocked_c.compile(*e, 4);
    ASSERT_TRUE(sc.verify(4).ok);
    ASSERT_TRUE(bc.verify(4).ok);
    ASSERT_FALSE(bc.has_jumps());
    for (int pv = 0; pv < 4; ++pv) {
      const std::int64_t params[4] = {gen.pick_value(), gen.pick_value(), gen.pick_value(),
                                      gen.pick_value()};
      const std::int64_t expect = spec::eval(*e, params);
      ASSERT_EQ(run_scalar(sc, params), expect) << "scalar dialect, trial " << trial;
      ASSERT_EQ(run_scalar(bc, params), expect) << "blocked dialect, trial " << trial;
      ASSERT_EQ(run_blocked_lane0(bc, params), expect) << "block VM, trial " << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomExprDifferential,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u, 55u, 89u));

TEST(BlockVm, LanesAreIndependent) {
  // p0 % p1 with a zero divisor in exactly one lane: only that lane is 0.
  auto e = node(Op::Mod, param(0), param(1));
  const Chunk ch = Compiler(CompileMode::Blocked).compile(*e, 2);
  using B = spec::IBatch<4>;
  std::array<B, 64> stack;
  std::array<B, 4> params{B::zero(), B::zero(), B::zero(), B::zero()};
  params[0] = B::iota(10, 1);                    // 10 11 12 13
  params[1] = B{{3, 0, 5, 7}};                   // lane 1 divides by zero
  const B r = spec::eval_blocked<4>(ch, params, stack);
  EXPECT_EQ(r[0], 1);
  EXPECT_EQ(r[1], 0);
  EXPECT_EQ(r[2], 2);
  EXPECT_EQ(r[3], 6);
}

// ---- totality / wrap / jump-chain edge cases ---------------------------------------

// Assert AST eval, scalar VM (both dialects) and block VM lane 0 agree.
void expect_tiers_agree(const Expr& e, int arity, std::span<const std::int64_t> params) {
  const std::int64_t expect = spec::eval(e, params);
  const Chunk sc = Compiler(CompileMode::Scalar).compile(e, arity);
  const Chunk bc = Compiler(CompileMode::Blocked).compile(e, arity);
  ASSERT_EQ(run_scalar(sc, params), expect);
  ASSERT_EQ(run_scalar(bc, params), expect);
  ASSERT_EQ(run_blocked_lane0(bc, params), expect);
}

TEST(EdgeCases, DivModTotalityAcrossTiers) {
  constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  const auto div = node(Op::Div, param(0), param(1));
  const auto mod = node(Op::Mod, param(0), param(1));
  const std::int64_t cases[][2] = {
      {kMin, -1},  // the hardware-trap pair: wraps to kMin / 0
      {kMax, -1},  {kMin, 1}, {7, 0}, {-7, 0}, {kMin, 0}, {0, kMin}, {kMax, kMax},
  };
  for (const auto& c : cases) {
    const std::int64_t params[] = {c[0], c[1]};
    expect_tiers_agree(*div, 2, params);
    expect_tiers_agree(*mod, 2, params);
    // Oracle values for the trap pair, straight from §5's total semantics.
    if (c[0] == kMin && c[1] == -1) {
      EXPECT_EQ(spec::eval(*div, params), kMin);
      EXPECT_EQ(spec::eval(*mod, params), 0);
    }
  }
}

TEST(EdgeCases, ShlBeyondVerifierBoundIsRejected) {
  // The strength-reduction window is 0..62; 63 and beyond (where native shl
  // semantics diverge from wrap_shl) must never reach an execution tier.
  for (const int amount : {63, 64, 100}) {
    Chunk ch;
    ch.emit(OpCode::PushConst, ch.add_const(1));
    ch.emit(OpCode::Shl, amount);
    ch.emit(OpCode::Return);
    EXPECT_FALSE(ch.verify(0).ok) << "Shl " << amount;
  }
  // Shl 62 (p0 * 2^62) is admitted and wraps identically everywhere.
  constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  const auto e = node(Op::Mul, param(0), konst(std::int64_t{1} << 62));
  for (const std::int64_t v : {std::int64_t{1}, std::int64_t{3}, std::int64_t{-1}, kMin, kMax}) {
    const std::int64_t params[] = {v};
    expect_tiers_agree(*e, 1, params);
  }
}

TEST(EdgeCases, NestedShortCircuitJumpChains) {
  // (p0 && (p1 || (p2 && p3))) || (p1 && p2): the scalar dialect lowers this
  // to nested forward jumps whose targets land on other jumps' targets.
  const auto e = node(Op::Or,
                      node(Op::And, param(0),
                           node(Op::Or, param(1), node(Op::And, param(2), param(3)))),
                      node(Op::And, param(1), param(2)));
  const Chunk sc = Compiler(CompileMode::Scalar).compile(*e, 4);
  ASSERT_TRUE(sc.has_jumps());
  constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
  const std::int64_t vals[] = {0, 1, -1, kMin};
  for (const std::int64_t a : vals) {
    for (const std::int64_t b : vals) {
      for (const std::int64_t c : vals) {
        for (const std::int64_t d : vals) {
          const std::int64_t params[] = {a, b, c, d};
          expect_tiers_agree(*e, 4, params);
        }
      }
    }
  }
}

// ---- compiled method / end-to-end ---------------------------------------------------

constexpr const char* kFib = R"(
  def fib(n)
    base n < 2
    reduce n
    spawn fib(n - 1)
    spawn fib(n - 2)
)";

constexpr const char* kBinomial = R"(
  def choose(n, k)
    base k == 0 || k == n
    reduce 1
    spawn choose(n - 1, k - 1)
    spawn choose(n - 1, k)
)";

constexpr const char* kParens = R"(
  def paren(open, close)
    base open == 0 && close == 0
    reduce 1
    spawn if open > 0 : paren(open - 1, close)
    spawn if close > open : paren(open, close - 1)
)";

TEST(CompiledMethod, DisassemblyListsAllChunks) {
  const auto prog = CompiledSpecProgram::parse(kParens);
  const std::string text = prog.scalar_method().disassemble();
  EXPECT_NE(text.find("paren.base:"), std::string::npos);
  EXPECT_NE(text.find("paren.reduce:"), std::string::npos);
  EXPECT_NE(text.find("paren.spawn0.guard:"), std::string::npos);
  EXPECT_NE(text.find("paren.spawn1.arg1:"), std::string::npos);
}

TEST(CompiledMethod, BlockedDialectIsJumpFreeEverywhere) {
  for (const char* src : {kFib, kBinomial, kParens}) {
    const auto prog = CompiledSpecProgram::parse(src);
    const auto& m = prog.blocked_method();
    EXPECT_FALSE(m.base.has_jumps());
    EXPECT_FALSE(m.reduce.has_jumps());
    for (const auto& s : m.spawns) {
      if (s.has_guard) {
        EXPECT_FALSE(s.guard.has_jumps());
      }
      for (const auto& a : s.args) EXPECT_FALSE(a.has_jumps());
    }
  }
}

TEST(CompiledProgram, TaskLevelSemanticsMatchAstProgram) {
  const auto ast = SpecProgram::parse(kParens);
  const auto vm = CompiledSpecProgram::parse(kParens);
  rt::Xoshiro256 rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    SpecProgram::Task t{};
    t.p[0] = static_cast<std::int64_t>(rng.below(12));
    t.p[1] = static_cast<std::int64_t>(rng.below(12));
    ASSERT_EQ(vm.is_base(t), ast.is_base(t));
    if (ast.is_base(t)) {
      std::uint64_t ra = 0, rv = 0;
      ast.leaf(t, ra);
      vm.leaf(t, rv);
      ASSERT_EQ(rv, ra);
    } else {
      std::vector<std::pair<int, std::array<std::int64_t, 4>>> ca, cv;
      ast.expand(t, [&](int s, const SpecProgram::Task& c) { ca.emplace_back(s, c.p); });
      vm.expand(t, [&](int s, const SpecProgram::Task& c) { cv.emplace_back(s, c.p); });
      ASSERT_EQ(cv, ca);
    }
  }
}

struct E2ECase {
  const char* name;
  const char* src;
  std::array<std::int64_t, 2> root;
  std::uint64_t expected;
};

class CompiledProgramE2E : public ::testing::TestWithParam<std::tuple<E2ECase, SeqPolicy>> {};

TEST_P(CompiledProgramE2E, AllLayersMatchSequentialOracle) {
  const auto& [c, policy] = GetParam();
  const auto prog = CompiledSpecProgram::parse(c.src);
  const auto roots = std::vector{prog.make_root({c.root[0], c.root[1]})};
  const auto th = core::Thresholds::for_block_size(4, 128, 16);
  EXPECT_EQ((core::run_seq<core::AosExec<CompiledSpecProgram>>(prog, roots, policy, th)),
            c.expected);
  EXPECT_EQ((core::run_seq<core::SoaExec<CompiledSpecProgram>>(prog, roots, policy, th)),
            c.expected);
  EXPECT_EQ((core::run_seq<core::SimdExec<CompiledSpecProgram>>(prog, roots, policy, th)),
            c.expected);
}

INSTANTIATE_TEST_SUITE_P(
    ProgramsAndPolicies, CompiledProgramE2E,
    ::testing::Combine(
        ::testing::Values(E2ECase{"fib", kFib, {21, 0}, 10946u},
                          E2ECase{"binomial", kBinomial, {19, 8}, 75582u},
                          E2ECase{"paren", kParens, {9, 9}, 4862u}),
        ::testing::ValuesIn(tbtest::kPolicies)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param).name) + "_" +
             core::to_string(std::get<1>(info.param));
    });

TEST(CompiledProgram, SimdRungHandlesRemainderLanes) {
  // Block sizes that are not multiples of the 4-lane width force the scalar
  // remainder path inside SimdExec.
  const auto prog = CompiledSpecProgram::parse(kFib);
  for (const std::size_t block : {1u, 3u, 5u, 7u, 13u}) {
    const auto th = core::Thresholds::for_block_size(4, block, 1);
    const auto roots = std::vector{prog.make_root({18})};
    EXPECT_EQ((core::run_seq<core::SimdExec<CompiledSpecProgram>>(
                  prog, roots, SeqPolicy::Restart, th)),
              apps::fib_sequential(18));
  }
}

TEST(CompiledProgram, SimdStatsCensusMatchesTreeWalk) {
  const auto prog = CompiledSpecProgram::parse(kBinomial);
  const auto roots = std::vector{prog.make_root({16, 7})};
  const auto info = core::count_tree(prog, roots);
  core::ExecStats st;
  const auto th = core::Thresholds::for_block_size(4, 64, 8);
  (void)core::run_seq<core::SimdExec<CompiledSpecProgram>>(prog, roots, SeqPolicy::Restart,
                                                           th, &st);
  EXPECT_EQ(st.tasks_executed, info.tasks);
  EXPECT_EQ(st.leaves, info.leaves);
}

TEST(CompiledProgram, RunsOnParallelSchedulers) {
  const auto prog = CompiledSpecProgram::parse(kParens);
  const auto roots = std::vector{prog.make_root({10, 10})};
  const std::uint64_t expected = apps::parentheses_sequential(10, 10);
  const auto th = core::Thresholds::for_block_size(4, 128, 16);
  rt::ForkJoinPool pool(3);
  EXPECT_EQ((core::run_par_reexp<core::SimdExec<CompiledSpecProgram>>(pool, prog, roots, th)),
            expected);
  EXPECT_EQ(
      (core::run_par_restart<core::SimdExec<CompiledSpecProgram>>(pool, prog, roots, th)),
      expected);
}

TEST(CompiledProgram, AgreesWithAstProgramAcrossBlockSizes) {
  const auto ast = SpecProgram::parse(kBinomial);
  const auto vm = CompiledSpecProgram::parse(kBinomial);
  for (const std::size_t block : {4u, 32u, 256u, 2048u}) {
    const auto th = core::Thresholds::for_block_size(4, block);
    const auto ast_roots = std::vector{ast.make_root({20, 9})};
    const auto vm_roots = std::vector{vm.make_root({20, 9})};
    const auto a =
        core::run_seq<core::SoaExec<SpecProgram>>(ast, ast_roots, SeqPolicy::Restart, th);
    const auto v = core::run_seq<core::SimdExec<CompiledSpecProgram>>(vm, vm_roots,
                                                                      SeqPolicy::Restart, th);
    EXPECT_EQ(v, a);
  }
}

}  // namespace
