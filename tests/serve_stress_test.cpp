// Stress tests for the serving layer (label: stress — repeated under TSan
// by the weekly soak): MPMC queue conservation under concurrent producers
// and consumers, the full QueryServer under multi-producer load with
// batches executing on a real ForkJoinPool — single- and multi-kernel,
// including lanes pinned to different forced SIMD widths — and the
// stop-vs-submit race's accounting invariant.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "apps/knn.hpp"
#include "runtime/forkjoin.hpp"
#include "serve/clock.hpp"
#include "serve/pool_runner.hpp"
#include "serve/queue.hpp"
#include "serve/router.hpp"
#include "serve/server.hpp"
#include "simd/dispatch.hpp"
#include "spatial/kdtree.hpp"

namespace {

using tb::serve::KernelOptions;
using tb::serve::MpmcQueue;
using tb::serve::QueryServer;
using tb::serve::ServerOptions;

// Conservation: with 4 producers and 4 consumers hammering a small ring,
// every pushed item is popped exactly once — no losses, no duplicates.
TEST(ServeStress, MpmcConservation) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 20000;
  constexpr int kTotal = kProducers * kPerProducer;
  MpmcQueue<std::int32_t> q(256);
  std::vector<std::atomic<int>> taken(kTotal);
  for (auto& t : taken) t.store(0);
  std::atomic<int> popped{0};

  std::vector<std::thread> consumers;
  consumers.reserve(kConsumers);
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (popped.load(std::memory_order_acquire) < kTotal) {
        if (auto v = q.try_pop()) {
          taken[static_cast<std::size_t>(*v)].fetch_add(1);
          popped.fetch_add(1, std::memory_order_acq_rel);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const auto v = static_cast<std::int32_t>(p * kPerProducer + i);
        while (!q.try_push(v)) std::this_thread::yield();
      }
    });
  }

  for (auto& t : producers) t.join();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(popped.load(), kTotal);
  for (int i = 0; i < kTotal; ++i) {
    ASSERT_EQ(taken[static_cast<std::size_t>(i)].load(), 1) << "item " << i;
  }
}

// Full pipeline under multi-producer load: four submitter threads feed the
// server concurrently while batches execute as parallel pool jobs; every
// submitted query must be dispatched exactly once.
TEST(ServeStress, MultiProducerServerConservation) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5000;
  constexpr int kTotal = kProducers * kPerProducer;

  tb::rt::ForkJoinPool pool(4);
  std::vector<std::atomic<int>> seen(kTotal);
  for (auto& s : seen) s.store(0);
  std::atomic<std::int64_t> sum{0};

  ServerOptions opt;
  opt.queue_capacity = 512;  // small queue: exercises producer backpressure
  opt.policy = {/*max_batch=*/128, /*max_wait_ns=*/100'000};
  QueryServer server(opt, [&](const std::int32_t* ids, std::size_t count) {
    // Touch every id as a parallel pool job, like a real batch traversal.
    pool.run([&] {
      tb::rt::WaitGroup wg;
      for (std::size_t i = 0; i < count; ++i) {
        const std::int32_t id = ids[i];
        pool.spawn_detached(
            [&, id] {
              seen[static_cast<std::size_t>(id)].fetch_add(1);
              sum.fetch_add(id, std::memory_order_relaxed);
            },
            wg);
      }
      pool.wait(wg);
    });
  });
  server.start();

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        server.submit(p * kPerProducer + i, tb::serve::now_ns());
      }
    });
  }
  for (auto& t : producers) t.join();
  server.stop();

  EXPECT_EQ(server.completed(), static_cast<std::size_t>(kTotal));
  for (int i = 0; i < kTotal; ++i) {
    ASSERT_EQ(seen[static_cast<std::size_t>(i)].load(), 1) << "query " << i;
  }
  EXPECT_EQ(sum.load(), static_cast<std::int64_t>(kTotal) * (kTotal - 1) / 2);
  EXPECT_EQ(server.latencies_s().size(), static_cast<std::size_t>(kTotal));
}

// Multi-kernel pipeline under concurrent producers: three lanes with
// different batch shapes share one admission thread and one pool; every
// (kernel, id) pair must be dispatched exactly once, on its own lane.
TEST(ServeStress, MultiKernelPipelineConservation) {
  constexpr int kKernels = 3;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 4000;
  constexpr int kTotal = kProducers * kPerProducer;  // per kernel

  tb::rt::ForkJoinPool pool(4);
  // seen[kernel * kTotal + id]
  std::vector<std::atomic<int>> seen(static_cast<std::size_t>(kKernels) * kTotal);
  for (auto& s : seen) s.store(0);

  ServerOptions opt;
  opt.queue_capacity = 512;  // small queue: exercises producer backpressure
  QueryServer server(opt);
  const std::size_t batch_caps[kKernels] = {128, 32, 1};
  for (int k = 0; k < kKernels; ++k) {
    KernelOptions kopt;
    kopt.policy = {batch_caps[k], /*max_wait_ns=*/100'000};
    server.register_kernel("lane" + std::to_string(k), kopt,
                           [&, k](const std::int32_t* ids, std::size_t count) {
                             pool.run([&] {
                               tb::rt::WaitGroup wg;
                               for (std::size_t i = 0; i < count; ++i) {
                                 const std::int32_t id = ids[i];
                                 pool.spawn_detached(
                                     [&, id] {
                                       seen[static_cast<std::size_t>(k) * kTotal +
                                            static_cast<std::size_t>(id)]
                                           .fetch_add(1);
                                     },
                                     wg);
                               }
                               pool.wait(wg);
                             });
                           });
  }
  server.start();

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const std::int32_t id = p * kPerProducer + i;
        // Interleave kernels so every drain mixes lanes.
        for (int k = 0; k < kKernels; ++k) server.submit(k, id, tb::serve::now_ns());
      }
    });
  }
  for (auto& t : producers) t.join();
  server.stop();

  for (int k = 0; k < kKernels; ++k) {
    EXPECT_EQ(server.completed(k), static_cast<std::size_t>(kTotal)) << "kernel " << k;
    EXPECT_EQ(server.latencies_s(k).size(), static_cast<std::size_t>(kTotal));
  }
  EXPECT_EQ(server.completed(), static_cast<std::size_t>(kKernels) * kTotal);
  for (std::size_t i = 0; i < seen.size(); ++i) {
    ASSERT_EQ(seen[i].load(), 1) << "(kernel,id) slot " << i;
  }
}

// Stop-vs-submit race: producers hammer submit while another thread stops
// the server mid-stream (and a second thread races a concurrent stop()).
// The lifecycle contract says every submit that returned true is counted
// exactly once in completed + shed + unserved_at_stop, and submits after
// stop fail fast instead of hanging — regardless of where the stop flag
// lands relative to each push.
TEST(ServeStress, ConcurrentStopAccountsEveryAcceptedSubmit) {
  constexpr int kRounds = 50;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;

  for (int round = 0; round < kRounds; ++round) {
    ServerOptions opt;
    opt.queue_capacity = 256;
    opt.policy = {/*max_batch=*/64, /*max_wait_ns=*/0};
    QueryServer server(opt, [](const std::int32_t*, std::size_t) {});
    server.start();

    std::atomic<std::size_t> accepted{0};
    std::vector<std::thread> producers;
    producers.reserve(kProducers);
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        std::size_t mine = 0;
        for (int i = 0; i < kPerProducer; ++i) {
          if (server.try_submit(p * kPerProducer + i, tb::serve::now_ns())) ++mine;
        }
        accepted.fetch_add(mine, std::memory_order_relaxed);
      });
    }
    std::thread stopper([&] { server.stop(); });
    std::thread second_stopper([&] { server.stop(); });
    for (auto& t : producers) t.join();
    stopper.join();
    second_stopper.join();
    server.stop();  // and once more from the main thread: still idempotent

    ASSERT_EQ(accepted.load(),
              server.completed() + server.shed() + server.unserved_at_stop())
        << "round " << round;
    EXPECT_EQ(server.shed(), 0u);  // no deadlines in this stream
    EXPECT_FALSE(server.try_submit(0, tb::serve::now_ns()));
  }
}

// Mixed-width hot serving: one knn lane per runnable kernel table, each
// pinned to its forced width, all sharing one admission thread and one
// pool, while concurrent producers hammer every lane and a stopper races
// the stream.  The dispatch-native claim under stress: per-lane table
// binding survives hot traffic, and the lifecycle accounting invariant
// (accepted == completed + shed + unserved_at_stop, per lane) holds no
// matter which width a lane executes at.  Producers partition the id
// space so each (lane, id) pair is submitted at most once — duplicate ids
// inside one batch would make two hybrid subranges offer into the same
// k-best list concurrently, which is a real data race, not a test bug.
TEST(ServeStress, MixedWidthLanesConservation) {
  constexpr std::size_t kPoints = 1200;
  constexpr int kK = 4;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = static_cast<int>(kPoints) / kProducers;
  const auto points = tb::spatial::Bodies::uniform_cube(kPoints);
  const auto tree = tb::spatial::KdTree::build(points, 16);

  int count = 0;
  const tb::simd::KernelTable* const* tables = tb::simd::available_tables(count);
  ASSERT_GT(count, 0);

  tb::rt::ForkJoinPool pool(4);
  std::vector<tb::apps::KnnState> states;
  std::vector<tb::apps::KnnProgram> progs;
  states.reserve(static_cast<std::size_t>(count));
  progs.reserve(static_cast<std::size_t>(count));

  ServerOptions opt;
  opt.queue_capacity = 256;  // small queue: producers hit backpressure
  QueryServer server(opt);
  for (int ti = 0; ti < count; ++ti) {
    states.emplace_back(kPoints, kK);
    progs.push_back(tb::apps::KnnProgram{&points, &tree, &states.back()});
    tb::rt::HybridOptions hopt;
    hopt.t_reexp = 4 * static_cast<std::size_t>(tables[ti]->width);
    KernelOptions kopt;
    kopt.policy = {/*max_batch=*/64, /*max_wait_ns=*/50'000};
    kopt.forced_width = tables[ti]->width;
    const int k = server.register_kernel(std::string("knn_") + tables[ti]->name, kopt,
                                         tb::serve::knn_pool_runner(pool, hopt, progs.back()));
    ASSERT_EQ(&server.serving_table(k), tables[ti]);
  }
  server.start();

  std::atomic<std::size_t> accepted{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      std::size_t mine = 0;
      for (int i = 0; i < kPerProducer; ++i) {
        const auto id = static_cast<std::int32_t>(p * kPerProducer + i);
        for (int k = 0; k < count; ++k) {
          if (server.try_submit(k, id, tb::serve::now_ns())) ++mine;
        }
      }
      accepted.fetch_add(mine, std::memory_order_relaxed);
    });
  }
  std::thread stopper([&] { server.stop(); });
  for (auto& t : producers) t.join();
  stopper.join();
  server.stop();

  ASSERT_EQ(accepted.load(),
            server.completed() + server.shed() + server.unserved_at_stop());
  EXPECT_EQ(server.shed(), 0u);  // no deadlines in this stream
  for (int k = 0; k < count; ++k) {
    EXPECT_EQ(server.serving_width(k), tables[k]->width);
    EXPECT_EQ(server.latencies_s(k).size(), server.completed(k));
  }
}

}  // namespace
