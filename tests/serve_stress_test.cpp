// Stress tests for the serving layer (label: stress — repeated under TSan
// by the weekly soak): MPMC queue conservation under concurrent producers
// and consumers, and the full QueryServer under multi-producer load with
// batches executing on a real ForkJoinPool.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "runtime/forkjoin.hpp"
#include "serve/clock.hpp"
#include "serve/queue.hpp"
#include "serve/server.hpp"

namespace {

using tb::serve::MpmcQueue;
using tb::serve::QueryServer;
using tb::serve::ServerOptions;

// Conservation: with 4 producers and 4 consumers hammering a small ring,
// every pushed item is popped exactly once — no losses, no duplicates.
TEST(ServeStress, MpmcConservation) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 20000;
  constexpr int kTotal = kProducers * kPerProducer;
  MpmcQueue<std::int32_t> q(256);
  std::vector<std::atomic<int>> taken(kTotal);
  for (auto& t : taken) t.store(0);
  std::atomic<int> popped{0};

  std::vector<std::thread> consumers;
  consumers.reserve(kConsumers);
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (popped.load(std::memory_order_acquire) < kTotal) {
        if (auto v = q.try_pop()) {
          taken[static_cast<std::size_t>(*v)].fetch_add(1);
          popped.fetch_add(1, std::memory_order_acq_rel);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const auto v = static_cast<std::int32_t>(p * kPerProducer + i);
        while (!q.try_push(v)) std::this_thread::yield();
      }
    });
  }

  for (auto& t : producers) t.join();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(popped.load(), kTotal);
  for (int i = 0; i < kTotal; ++i) {
    ASSERT_EQ(taken[static_cast<std::size_t>(i)].load(), 1) << "item " << i;
  }
}

// Full pipeline under multi-producer load: four submitter threads feed the
// server concurrently while batches execute as parallel pool jobs; every
// submitted query must be dispatched exactly once.
TEST(ServeStress, MultiProducerServerConservation) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5000;
  constexpr int kTotal = kProducers * kPerProducer;

  tb::rt::ForkJoinPool pool(4);
  std::vector<std::atomic<int>> seen(kTotal);
  for (auto& s : seen) s.store(0);
  std::atomic<std::int64_t> sum{0};

  ServerOptions opt;
  opt.queue_capacity = 512;  // small queue: exercises producer backpressure
  opt.policy = {/*max_batch=*/128, /*max_wait_ns=*/100'000};
  QueryServer server(opt, [&](const std::int32_t* ids, std::size_t count) {
    // Touch every id as a parallel pool job, like a real batch traversal.
    pool.run([&] {
      tb::rt::WaitGroup wg;
      for (std::size_t i = 0; i < count; ++i) {
        const std::int32_t id = ids[i];
        pool.spawn_detached(
            [&, id] {
              seen[static_cast<std::size_t>(id)].fetch_add(1);
              sum.fetch_add(id, std::memory_order_relaxed);
            },
            wg);
      }
      pool.wait(wg);
    });
  });
  server.start();

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        server.submit(p * kPerProducer + i, tb::serve::now_ns());
      }
    });
  }
  for (auto& t : producers) t.join();
  server.stop();

  EXPECT_EQ(server.completed(), static_cast<std::size_t>(kTotal));
  for (int i = 0; i < kTotal; ++i) {
    ASSERT_EQ(seen[static_cast<std::size_t>(i)].load(), 1) << "query " << i;
  }
  EXPECT_EQ(sum.load(), static_cast<std::int64_t>(kTotal) * (kTotal - 1) / 2);
  EXPECT_EQ(server.latencies_s().size(), static_cast<std::size_t>(kTotal));
}

}  // namespace
