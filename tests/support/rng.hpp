// Deterministic RNG seeding for randomized tests.
//
// Every randomized fixture derives its stream from one golden seed, salted
// per call site, so a failure reproduces bit-identically on any machine.
// Split out of harness.hpp so substrate suites (simd_test) can use it
// without pulling in the scheduler stack.
#pragma once

#include <cstdint>

#include "runtime/xoshiro.hpp"

namespace tbtest {

inline constexpr std::uint64_t kGoldenSeed = 0x5eed0f00d5eedull;

inline tb::rt::Xoshiro256 golden_rng(std::uint64_t salt = 0) {
  return tb::rt::Xoshiro256(kGoldenSeed ^ salt);
}

}  // namespace tbtest
