// Shared scheduler-matrix harness for the gtest suites.
//
// Nearly every suite proves the same theorem — "this variant reproduces the
// sequential-recursion oracle" — over the same axes: sequential policy
// (Basic/Reexp/Restart), data layout (AoS/SoA/SIMD), worker count, and
// threshold preset.  This header owns those axes so a suite states only the
// program, the roots, and the oracle.
//
// Include as "tests/support/harness.hpp" (repo-root-relative, like
// "bench/bench_util.hpp" — src/-relative spellings are reserved for library
// headers; see the root CMakeLists.txt).
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "apps/fib.hpp"
#include "apps/knapsack.hpp"
#include "apps/nqueens.hpp"
#include "apps/parentheses.hpp"
#include "core/driver.hpp"
#include "runtime/forkjoin.hpp"
#include "runtime/hybrid.hpp"
#include "sim/par_sim.hpp"
#include "tests/support/rng.hpp"

namespace tbtest {

// ---- axes -------------------------------------------------------------------------

inline constexpr tb::core::SeqPolicy kPolicies[] = {
    tb::core::SeqPolicy::Basic, tb::core::SeqPolicy::Reexp, tb::core::SeqPolicy::Restart};

// The discrete multicore simulator's policy axis (sim/par_sim.hpp) — the
// simulator-side mirror of kPolicies.
inline constexpr tb::sim::SimPolicy kSimPolicies[] = {
    tb::sim::SimPolicy::ScalarWS, tb::sim::SimPolicy::Reexp, tb::sim::SimPolicy::Restart};

// Worker counts for the parallel schedulers; 1 pins the degenerate pool, 8
// oversubscribes typical CI hosts so steals preempt mid-superstep.
inline constexpr int kWorkerCounts[] = {1, 2, 4, 8};

// Data-layout axis.  Mirrors core::{Aos,Soa,Simd}Exec; a bitmask because a
// few programs support only a subset (e.g. the spec interpreter has no SIMD
// kernel).
inline constexpr unsigned kAos = 1u;
inline constexpr unsigned kSoa = 2u;
inline constexpr unsigned kSimd = 4u;
inline constexpr unsigned kAllLayers = kAos | kSoa | kSimd;

// Threshold presets spanning degenerate depth-first (t_dfe = 1) through
// huge breadth-first blocks — the sweep of core_test's original
// ThresholdCase table, shared so every suite exercises the same corners.
inline const std::vector<tb::core::Thresholds>& threshold_presets() {
  static const std::vector<tb::core::Thresholds> kPresets = {
      {8, 8, 8, 8},          // minimal blocks
      {8, 64, 64, 16},       // small
      {8, 256, 128, 32},     // t_bfe < t_dfe
      {8, 4096, 4096, 256},  // defaults-sized
      {4, 32, 16, 8},        // narrow SIMD
      {1, 1, 1, 1},          // degenerate: pure depth-first
  };
  return kPresets;
}

inline std::string threshold_name(const tb::core::Thresholds& t) {
  return "q" + std::to_string(t.q) + "_dfe" + std::to_string(t.t_dfe) + "_bfe" +
         std::to_string(t.t_bfe) + "_rs" + std::to_string(t.t_restart);
}

// ---- policy / variant iteration ---------------------------------------------------

// Invokes fn(policy) for every sequential policy under a SCOPED_TRACE naming
// the policy, so a failure pinpoints the variant.
template <class F>
void for_each_policy(F&& fn) {
  for (const auto pol : kPolicies) {
    SCOPED_TRACE(tb::core::to_string(pol));
    fn(pol);
  }
}

// Same, over the simulator's policy enum.
template <class F>
void for_each_sim_policy(F&& fn) {
  for (const auto pol : kSimPolicies) {
    SCOPED_TRACE(tb::sim::to_string(pol));
    fn(pol);
  }
}

// Runs `prog` sequentially through every (policy × enabled layer) cell and
// hands each result to `check`.  `before` runs before every cell — for
// programs with external side-effect state that must be reset (Barnes-Hut
// accumulators).  Layers the program's concepts can't satisfy are compiled
// out (the spec interpreter has no SIMD kernel), so asking for a layer the
// program lacks is a silent skip, not a build break.
template <class Program, class Check, class Before>
void for_each_seq_result(const Program& prog, std::span<const typename Program::Task> roots,
                         const tb::core::Thresholds& th, unsigned layers, Check&& check,
                         Before&& before) {
  namespace core = tb::core;
  int cells = 0;
  for_each_policy([&](core::SeqPolicy pol) {
    if (layers & kAos) {
      SCOPED_TRACE("layer=aos");
      before();
      check(core::run_seq<core::AosExec<Program>>(prog, roots, pol, th));
      ++cells;
    }
    if constexpr (core::SoaProgram<Program>) {
      if (layers & kSoa) {
        SCOPED_TRACE("layer=soa");
        before();
        check(core::run_seq<core::SoaExec<Program>>(prog, roots, pol, th));
        ++cells;
      }
    }
    if constexpr (core::SimdProgram<Program>) {
      if (layers & kSimd) {
        SCOPED_TRACE("layer=simd");
        before();
        check(core::run_seq<core::SimdExec<Program>>(prog, roots, pol, th));
        ++cells;
      }
    }
  });
  // Guard against a vacuous pass: if every requested layer was compiled out
  // (the program stopped satisfying its concepts), fail instead of silently
  // asserting nothing.
  EXPECT_GT(cells, 0) << "no (policy × layer) cell ran — requested layer mask " << layers
                      << " unsupported by this program";
}

// ---- golden-value matrix checks ---------------------------------------------------

// Every sequential (policy × layer) cell must equal `expected` — the
// bit-identical-to-sequential-recursion claim the paper rests on.
template <class Program, class Expected, class Before>
void expect_seq_matrix(const Program& prog, std::span<const typename Program::Task> roots,
                       const tb::core::Thresholds& th, const Expected& expected,
                       unsigned layers, Before&& before) {
  for_each_seq_result(
      prog, roots, th, layers, [&](const auto& result) { EXPECT_EQ(result, expected); },
      before);
}

template <class Program, class Expected>
void expect_seq_matrix(const Program& prog, std::span<const typename Program::Task> roots,
                       const tb::core::Thresholds& th, const Expected& expected,
                       unsigned layers = kAllLayers) {
  expect_seq_matrix(prog, roots, th, expected, layers, [] {});
}

// Both parallel schedulers over every worker count must equal `expected`.
// SIMD layer only — run_cell covers the AoS/SoA parallel paths; use it
// directly when a program needs per-layer parallel coverage.
template <class Program, class Expected>
void expect_par_matrix(const Program& prog, std::span<const typename Program::Task> roots,
                       const tb::core::Thresholds& th, const Expected& expected) {
  namespace core = tb::core;
  for (const int workers : kWorkerCounts) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    tb::rt::ForkJoinPool pool(workers);
    EXPECT_EQ((core::run_par_reexp<core::SimdExec<Program>>(pool, prog, roots, th)), expected);
    EXPECT_EQ((core::run_par_restart<core::SimdExec<Program>>(pool, prog, roots, th)),
              expected);
  }
}

// ---- hybrid-executor matrix -------------------------------------------------------

// One cell of the hybrid vector×multicore matrix (runtime/hybrid.hpp): the
// acceptance axes are worker count × re-expansion threshold × partition
// mode × frame donation; the engine width W ∈ {4, 8} is a template
// parameter the suites loop at compile time.  Thresholds span pure-blocked
// (0), a mid value that exercises both modes, and "larger than any query
// set" (the degenerate classic-lockstep case).  Donation cells exist only
// for the dynamic partition — a static partition never donates — and pin
// the acceptance claim that donated frames leave results bit-identical.
struct HybridCase {
  int workers;
  std::size_t t_reexp;
  bool static_partition;
  bool donation = false;

  tb::rt::HybridOptions options() const {
    tb::rt::HybridOptions o;
    o.t_reexp = t_reexp;
    o.static_partition = static_partition;
    o.donation = donation;
    return o;
  }
};

inline const std::vector<HybridCase>& hybrid_cases() {
  static const std::vector<HybridCase> kCases = [] {
    std::vector<HybridCase> v;
    for (const int w : {1, 2, 4}) {
      for (const std::size_t t : {std::size_t{0}, std::size_t{16}, std::size_t{1} << 30}) {
        for (const bool s : {false, true}) v.push_back({w, t, s});
        v.push_back({w, t, /*static_partition=*/false, /*donation=*/true});
      }
    }
    return v;
  }();
  return kCases;
}

inline std::string hybrid_name(const HybridCase& c) {
  return "w" + std::to_string(c.workers) + "_t" + std::to_string(c.t_reexp) +
         (c.static_partition ? "_static" : "_dynamic") + (c.donation ? "_donate" : "");
}

// Invokes fn(pool, case) for every hybrid cell, constructing the pool once
// per worker count, under a SCOPED_TRACE naming the cell.
template <class F>
void for_each_hybrid_case(F&& fn) {
  int last_workers = 0;
  std::unique_ptr<tb::rt::ForkJoinPool> pool;
  for (const auto& c : hybrid_cases()) {
    if (c.workers != last_workers) {
      pool = std::make_unique<tb::rt::ForkJoinPool>(c.workers);
      last_workers = c.workers;
    }
    SCOPED_TRACE(hybrid_name(c));
    fn(*pool, c);
  }
}

// ---- stats-kernel table -----------------------------------------------------------

// Type-erased (policy, block size) -> ExecStats runner over a fixed small
// kernel — the shape-suite sweep unit.  Thresholds pin t_bfe = t_restart =
// t_dfe (the k1 ≈ k, k2 ≈ k setting §4 recommends and Fig 4 sweeps), so
// every policy hunts for density equally aggressively.
struct StatsKernel {
  std::string name;
  std::function<tb::core::ExecStats(tb::core::SeqPolicy, std::size_t)> run;
};

template <class Exec>
tb::core::ExecStats run_kernel_stats(const typename Exec::Program& p,
                                     const std::vector<typename Exec::Program::Task>& roots,
                                     tb::core::SeqPolicy policy, std::size_t block) {
  tb::core::ExecStats st;
  const auto th = tb::core::Thresholds::for_block_size(/*q=*/8, block, /*restart=*/block);
  (void)tb::core::run_seq<Exec>(p, roots, policy, th, &st);
  return st;
}

// The four small search kernels the paper-shape regression suite sweeps —
// shared here so no suite hand-rolls its own kernel table.
inline const std::vector<StatsKernel>& stats_kernels() {
  using tb::core::SeqPolicy;
  static const std::vector<StatsKernel> kKernels = {
      {"fib",
       [](SeqPolicy pol, std::size_t blk) {
         static const tb::apps::FibProgram prog;
         static const std::vector roots{tb::apps::FibProgram::root(24)};
         return run_kernel_stats<tb::core::SoaExec<tb::apps::FibProgram>>(prog, roots, pol,
                                                                          blk);
       }},
      {"parentheses",
       [](SeqPolicy pol, std::size_t blk) {
         static const tb::apps::ParenthesesProgram prog;
         static const std::vector roots{tb::apps::ParenthesesProgram::root(11)};
         return run_kernel_stats<tb::core::SoaExec<tb::apps::ParenthesesProgram>>(prog, roots,
                                                                                 pol, blk);
       }},
      {"knapsack",
       [](SeqPolicy pol, std::size_t blk) {
         static const auto inst = tb::apps::KnapsackInstance::random(20, 3);
         static const tb::apps::KnapsackProgram prog{&inst};
         static const std::vector roots{prog.root()};
         return run_kernel_stats<tb::core::SoaExec<tb::apps::KnapsackProgram>>(prog, roots,
                                                                              pol, blk);
       }},
      {"nqueens",
       [](SeqPolicy pol, std::size_t blk) {
         static const tb::apps::NQueensProgram prog{10};
         static const std::vector roots{tb::apps::NQueensProgram::root()};
         return run_kernel_stats<tb::core::SoaExec<tb::apps::NQueensProgram>>(prog, roots,
                                                                             pol, blk);
       }},
  };
  return kKernels;
}

// ---- full scheduler-matrix fixture ------------------------------------------------

// One cell of the policy × workers × thresholds cross product.  workers == 0
// means "sequential scheduler"; Basic has no parallel driver, so cells with
// workers > 0 only carry Reexp/Restart.
struct MatrixCase {
  tb::core::SeqPolicy policy;
  int workers;
  tb::core::Thresholds th;
};

inline std::vector<MatrixCase> matrix_cases() {
  std::vector<MatrixCase> cases;
  for (const auto pol : kPolicies) {
    for (const auto& th : threshold_presets()) {
      cases.push_back({pol, 0, th});
      if (pol == tb::core::SeqPolicy::Basic) continue;
      for (const int w : kWorkerCounts) cases.push_back({pol, w, th});
    }
  }
  return cases;
}

inline std::string matrix_name(const ::testing::TestParamInfo<MatrixCase>& info) {
  const auto& c = info.param;
  const std::string sched =
      c.workers == 0 ? std::string("seq") : "par" + std::to_string(c.workers);
  return std::string(tb::core::to_string(c.policy)) + "_" + sched + "_" +
         threshold_name(c.th);
}

// Fixture for suites instantiating the full matrix:
//   INSTANTIATE_TEST_SUITE_P(Matrix, MyTest,
//       ::testing::ValuesIn(tbtest::matrix_cases()), tbtest::matrix_name);
class SchedulerMatrixTest : public ::testing::TestWithParam<MatrixCase> {};

// Runs one matrix cell through data layout `Exec` and returns its result.
template <class Exec>
typename Exec::Program::Result run_cell(const MatrixCase& c,
                                        const typename Exec::Program& prog,
                                        std::span<const typename Exec::Program::Task> roots) {
  namespace core = tb::core;
  if (c.workers == 0) return core::run_seq<Exec>(prog, roots, c.policy, c.th);
  tb::rt::ForkJoinPool pool(c.workers);
  if (c.policy == core::SeqPolicy::Reexp)
    return core::run_par_reexp<Exec>(pool, prog, roots, c.th);
  return core::run_par_restart<Exec>(pool, prog, roots, c.th);
}

}  // namespace tbtest
