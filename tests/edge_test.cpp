// Edge cases and adversarial inputs: degenerate trees, dying branches,
// empty work, threshold extremes, and cross-variant digest agreement on
// randomized instances.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "apps/fib.hpp"
#include "apps/graphcol.hpp"
#include "apps/knapsack.hpp"
#include "apps/nqueens.hpp"
#include "apps/parentheses.hpp"
#include "apps/uts.hpp"
#include "core/driver.hpp"
#include "core/ideal_restart.hpp"
#include "tests/support/harness.hpp"

namespace {

using namespace tb;
using core::SeqPolicy;
using core::Thresholds;
using tbtest::for_each_policy;

// ---- core::Thresholds contract -------------------------------------------------

TEST(ThresholdsContract, ClampedEnforcesOrderingAndFloors) {
  // Recovery thresholds above t_dfe clamp down; everything floors at 1.
  const Thresholds wild{0, 0, 1000, 1000};
  const auto c = wild.clamped();
  EXPECT_EQ(c.q, 1);
  EXPECT_EQ(c.t_dfe, 1u);
  EXPECT_EQ(c.t_bfe, 1u);
  EXPECT_EQ(c.t_restart, 1u);

  const Thresholds mixed{8, 64, 4096, 4096};
  const auto m = mixed.clamped();
  EXPECT_EQ(m.t_dfe, 64u);
  EXPECT_EQ(m.t_bfe, 64u);      // clamped to t_dfe
  EXPECT_EQ(m.t_restart, 64u);  // clamped to t_dfe
}

TEST(ThresholdsContract, ClampedIsIdempotentAndPreservesLegalSettings) {
  const Thresholds legal{8, 256, 128, 32};
  const auto c = legal.clamped();
  EXPECT_EQ(c.q, 8);
  EXPECT_EQ(c.t_dfe, 256u);
  EXPECT_EQ(c.t_bfe, 128u);
  EXPECT_EQ(c.t_restart, 32u);
  const auto cc = c.clamped();
  EXPECT_EQ(cc.t_dfe, c.t_dfe);
  EXPECT_EQ(cc.t_bfe, c.t_bfe);
  EXPECT_EQ(cc.t_restart, c.t_restart);
}

TEST(ThresholdsContract, ForBlockSizePinsRecoveryToBlock) {
  const auto t = Thresholds::for_block_size(8, 1024);
  EXPECT_EQ(t.q, 8);
  EXPECT_EQ(t.t_dfe, 1024u);
  EXPECT_EQ(t.t_bfe, 1024u);
  EXPECT_EQ(t.t_restart, 64u);  // block / 16 default

  const auto explicit_restart = Thresholds::for_block_size(8, 1024, 100);
  EXPECT_EQ(explicit_restart.t_restart, 100u);
}

TEST(ThresholdsContract, ForBlockSizeDegenerateBlockOfOne) {
  // Fig. 4 sweeps block sizes from 2^0: block = 1 must stay legal (all
  // thresholds 1), not underflow the block/16 restart default.
  const auto t = Thresholds::for_block_size(8, 1);
  EXPECT_EQ(t.t_dfe, 1u);
  EXPECT_EQ(t.t_bfe, 1u);
  EXPECT_EQ(t.t_restart, 1u);
}

// A program whose every branch dies without reaching a leaf beyond depth d:
// exercises blocks that empty out with no reduction at all.
struct DyingProgram {
  struct Task {
    std::int32_t depth;
  };
  using Result = std::uint64_t;
  static constexpr int max_children = 2;
  int die_at = 5;

  static Result identity() { return 0; }
  static void combine(Result& a, const Result& b) { a += b; }
  bool is_base(const Task&) const { return false; }  // never a leaf...
  void leaf(const Task&, Result& r) const { r += 1; }
  template <class Emit>
  void expand(const Task& t, Emit&& emit) const {
    if (t.depth + 1 >= die_at) return;  // ...branches just stop spawning
    emit(0, Task{t.depth + 1});
    emit(1, Task{t.depth + 1});
  }
  using Block = simd::SoaBlock<std::int32_t>;
  static Task task_at(const Block& b, std::size_t i) { return Task{std::get<0>(b.row(i))}; }
  static void append_task(Block& b, const Task& t) { b.push_back(t.depth); }
};

TEST(EdgeCases, AllBranchesDieWithoutLeaves) {
  DyingProgram prog;
  const std::vector<DyingProgram::Task> roots{{0}};
  for_each_policy([&](SeqPolicy pol) {
    core::ExecStats st;
    const auto th = Thresholds::for_block_size(8, 64, 8);
    EXPECT_EQ(core::run_seq<core::SoaExec<DyingProgram>>(prog, roots, pol, th, &st), 0u);
    EXPECT_EQ(st.leaves, 0u);
    EXPECT_EQ(st.tasks_executed, (1u << prog.die_at) - 1);  // full binary to depth
  });
}

TEST(EdgeCases, EmptyRootSetIsANoop) {
  apps::FibProgram prog;
  const std::vector<apps::FibProgram::Task> roots;
  const auto th = Thresholds::for_block_size(8, 64, 8);
  EXPECT_EQ(core::run_seq<core::SimdExec<apps::FibProgram>>(prog, roots,
                                                            SeqPolicy::Restart, th),
            0u);
  tbtest::expect_par_matrix(prog, roots, th, std::uint64_t{0});
}

TEST(EdgeCases, RootIsAlreadyALeaf) {
  apps::FibProgram prog;
  const std::vector roots{apps::FibProgram::root(1)};
  const auto th = Thresholds::for_block_size(8, 64, 8);
  for_each_policy([&](SeqPolicy pol) {
    EXPECT_EQ(core::run_seq<core::SimdExec<apps::FibProgram>>(prog, roots, pol, th), 1u);
  });
  EXPECT_EQ(core::run_ideal_restart<core::SimdExec<apps::FibProgram>>(prog, roots, th, 2), 1u);
}

TEST(EdgeCases, BlockSizeOneDegeneratesToDepthFirst) {
  // t_dfe = 1: every block holds one task; all policies must still be
  // correct (this is the far-left end of Fig. 4).
  apps::ParenthesesProgram prog;
  const std::vector roots{apps::ParenthesesProgram::root(8)};
  const std::uint64_t expected = apps::parentheses_sequential(8, 8);
  tbtest::expect_seq_matrix(prog, roots, Thresholds{8, 1, 1, 1}, expected, tbtest::kSoa);
}

TEST(EdgeCases, HugeBlockSizeDegeneratesToBreadthFirst) {
  apps::ParenthesesProgram prog;
  const std::vector roots{apps::ParenthesesProgram::root(8)};
  const std::uint64_t expected = apps::parentheses_sequential(8, 8);
  const Thresholds th{8, 1u << 30, 1u << 30, 1u << 20};
  for_each_policy([&](SeqPolicy pol) {
    core::ExecStats st;
    EXPECT_EQ(core::run_seq<core::SoaExec<apps::ParenthesesProgram>>(prog, roots, pol, th, &st),
              expected);
    // Pure BFE: exactly one superstep per level.
    EXPECT_LE(st.supersteps, 17u);
  });
}

TEST(EdgeCases, InfeasibleKnapsackStillTerminates) {
  // Capacity 0: only the all-exclude path survives.
  apps::KnapsackInstance inst;
  inst.weight = {5, 3, 9};
  inst.value = {1, 2, 3};
  inst.capacity = 0;
  apps::KnapsackProgram prog{&inst};
  const std::vector roots{prog.root()};
  const auto th = Thresholds::for_block_size(8, 16, 4);
  tbtest::for_each_seq_result(
      prog, roots, th, tbtest::kSimd,
      [](const auto& r) {
        EXPECT_EQ(r.leaves, 1u);
        EXPECT_EQ(r.best, 0);
      },
      [] {});
}

TEST(EdgeCases, UnsatisfiableGraphColoring) {
  // K4 needs 4 colors: zero leaves through every variant.
  apps::GraphColInstance g;
  g.num_vertices = 4;
  g.lower_adj = {{}, {0}, {0, 1}, {0, 1, 2}};
  apps::GraphColProgram prog{&g};
  const std::vector roots{apps::GraphColProgram::root()};
  const auto th = Thresholds::for_block_size(4, 32, 4);
  tbtest::expect_seq_matrix(prog, roots, th, std::uint64_t{0}, tbtest::kSimd);
  tbtest::expect_par_matrix(prog, roots, th, std::uint64_t{0});
}

TEST(EdgeCases, NQueensNoSolutionBoards) {
  // n=2 and n=3 have zero solutions but non-trivial partial trees.
  for (const int n : {2, 3}) {
    SCOPED_TRACE("n=" + std::to_string(n));
    apps::NQueensProgram prog{n};
    const std::vector roots{apps::NQueensProgram::root()};
    const auto th = Thresholds::for_block_size(8, 16, 4);
    tbtest::expect_seq_matrix(prog, roots, th, std::uint64_t{0}, tbtest::kSimd);
  }
}

TEST(EdgeCases, StripSizeSmallerThanRootCount) {
  // Strip-mining with a tiny strip: many sequential scheduler invocations.
  apps::FibProgram prog;
  std::vector<apps::FibProgram::Task> roots;
  std::uint64_t expected = 0;
  for (int i = 0; i < 37; ++i) {
    roots.push_back(apps::FibProgram::root(10 + (i % 5)));
    expected += apps::fib_sequential(10 + (i % 5));
  }
  const auto th = Thresholds::for_block_size(8, 64, 8);
  EXPECT_EQ(core::run_seq<core::SimdExec<apps::FibProgram>>(prog, roots, SeqPolicy::Restart,
                                                            th, nullptr, /*strip=*/3),
            expected);
  rt::ForkJoinPool pool(2);
  EXPECT_EQ(core::run_par_restart<core::SimdExec<apps::FibProgram>>(pool, prog, roots, th,
                                                                    nullptr, /*strip=*/5),
            expected);
}

// Property sweep: on random knapsack instances, every (policy × layer ×
// scheduler) combination agrees with the oracle.
class RandomInstanceAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomInstanceAgreement, KnapsackAllVariants) {
  const auto inst = apps::KnapsackInstance::random(13, GetParam());
  apps::KnapsackProgram prog{&inst};
  const std::vector roots{prog.root()};
  const auto expected = apps::knapsack_sequential(inst, 0, inst.capacity, 0);
  const auto th = Thresholds::for_block_size(8, 128, 16);
  const auto check = [&](const auto& r) {
    EXPECT_EQ(r.leaves, expected.leaves);
    EXPECT_EQ(r.best, expected.best);
  };
  tbtest::for_each_seq_result(prog, roots, th, tbtest::kSimd, check, [] {});
  rt::ForkJoinPool pool(3);
  check(core::run_par_restart<core::SimdExec<apps::KnapsackProgram>>(pool, prog, roots, th));
  check(core::run_ideal_restart<core::SimdExec<apps::KnapsackProgram>>(prog, roots, th, 3));
}

TEST_P(RandomInstanceAgreement, GraphColAllVariants) {
  const auto g = apps::GraphColInstance::random(11, 2.8, GetParam());
  apps::GraphColProgram prog{&g};
  const std::vector roots{apps::GraphColProgram::root()};
  const std::uint64_t expected = apps::graphcol_sequential(g, apps::GraphColProgram::root());
  const auto th = Thresholds::for_block_size(4, 64, 8);
  tbtest::expect_seq_matrix(prog, roots, th, expected, tbtest::kAos | tbtest::kSimd);
}

TEST_P(RandomInstanceAgreement, UtsAllVariants) {
  apps::UtsProgram prog(apps::UtsParams{24, 4, 0.2, GetParam()});
  const auto roots = prog.roots();
  const std::uint64_t expected = apps::uts_sequential_all(prog);
  const auto th = Thresholds::for_block_size(4, 32, 8);
  tbtest::expect_seq_matrix(prog, roots, th, expected, tbtest::kSimd);
  rt::ForkJoinPool pool(2);
  EXPECT_EQ(core::run_par_reexp<core::SimdExec<apps::UtsProgram>>(pool, prog, roots, th),
            expected);
  EXPECT_EQ(core::run_ideal_restart<core::SimdExec<apps::UtsProgram>>(prog, roots, th, 2),
            expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomInstanceAgreement,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707, 808));

// Threshold torture: weird combinations must never affect results.
class ThresholdTorture : public ::testing::TestWithParam<Thresholds> {};

TEST_P(ThresholdTorture, ParenthesesAgrees) {
  apps::ParenthesesProgram prog;
  const std::vector roots{apps::ParenthesesProgram::root(9)};
  const std::uint64_t expected = apps::parentheses_sequential(9, 9);
  tbtest::expect_seq_matrix(prog, roots, GetParam(), expected, tbtest::kSimd);
}

INSTANTIATE_TEST_SUITE_P(
    Combos, ThresholdTorture,
    ::testing::Values(Thresholds{1, 1, 1, 1}, Thresholds{3, 7, 5, 2}, Thresholds{8, 9, 9, 9},
                      Thresholds{16, 1000000, 1, 1},
                      Thresholds{8, 2, 1000, 1000},  // recovery thresholds clamp down
                      Thresholds{5, 33, 17, 31}),
    [](const auto& info) { return tbtest::threshold_name(info.param); });

// A unary chain: every task spawns exactly one child until depth runs out.
// Zero parallelism, maximal tree height — the deque grows one level per
// task and every block has exactly one task (all steps incomplete).
struct ChainProgram {
  struct Task {
    std::int32_t remaining;
  };
  using Result = std::uint64_t;
  static constexpr int max_children = 1;

  static Result identity() { return 0; }
  static void combine(Result& a, const Result& b) { a += b; }
  bool is_base(const Task& t) const { return t.remaining == 0; }
  void leaf(const Task&, Result& r) const { r += 1; }
  template <class Emit>
  void expand(const Task& t, Emit&& emit) const {
    emit(0, Task{t.remaining - 1});
  }
  using Block = simd::SoaBlock<std::int32_t>;
  static Task task_at(const Block& b, std::size_t i) { return Task{std::get<0>(b.row(i))}; }
  static void append_task(Block& b, const Task& t) { b.push_back(t.remaining); }
};

TEST(EdgeCases, DeepUnaryChainTwentyThousandLevels) {
  // 20k levels: the iterative schedulers must neither overflow the C++
  // stack nor mismanage a 20k-level deque; exactly one leaf at the bottom.
  ChainProgram prog;
  const std::vector<ChainProgram::Task> roots{{20000}};
  for_each_policy([&](SeqPolicy pol) {
    core::ExecStats st;
    const auto th = Thresholds::for_block_size(8, 64, 8);
    EXPECT_EQ(core::run_seq<core::SoaExec<ChainProgram>>(prog, roots, pol, th, &st), 1u);
    EXPECT_EQ(st.tasks_executed, 20001u);
    EXPECT_EQ(st.leaves, 1u);
    // Every step is a 1-task (incomplete) step at Q=8.
    EXPECT_EQ(st.steps_total, 20001u);
    EXPECT_EQ(st.steps_complete, 0u);
  });
}

TEST(EdgeCases, ManyChainRootsRecoverDensity) {
  // 64 independent chains: a single chain has no parallelism, but the
  // strip-mined root block keeps 64 lanes alive all the way down — blocked
  // execution turns a pathological shape into a dense one (the §5.3 story).
  ChainProgram prog;
  std::vector<ChainProgram::Task> roots(64, ChainProgram::Task{500});
  core::ExecStats st;
  const auto th = Thresholds::for_block_size(8, 64, 8);
  EXPECT_EQ(
      core::run_seq<core::SoaExec<ChainProgram>>(prog, roots, SeqPolicy::Restart, th, &st),
      64u);
  EXPECT_GT(st.simd_utilization(), 0.99);
}

}  // namespace
