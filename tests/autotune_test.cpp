// Tests for the block-size auto-tuner (core/autotune.hpp): search-space
// coverage, clamping, report consistency, policy coverage, and the
// correctness guarantee that tuned thresholds change only performance,
// never results.  The hybrid-executor tuner (autotune_hybrid) is pinned the
// same way: grid coverage, candidate propagation, winner reproducibility
// under the deterministic utilization objective, and result preservation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "apps/fib.hpp"
#include "apps/knapsack.hpp"
#include "apps/pointcorr.hpp"
#include "core/autotune.hpp"
#include "core/driver.hpp"
#include "lockstep/lockstep_pointcorr.hpp"
#include "spatial/bodies.hpp"
#include "spatial/kdtree.hpp"

namespace {

using namespace tb;
using core::SeqPolicy;
using core::TuneOptions;
using core::TuneReport;

using FibExec = core::SimdExec<apps::FibProgram>;

TuneOptions small_search(SeqPolicy policy = SeqPolicy::Restart) {
  TuneOptions opts;
  opts.q = 8;
  opts.policy = policy;
  opts.min_block = 8;
  opts.max_block = 1u << 10;
  opts.reps = 1;
  return opts;
}

TEST(Autotune, CoarsePassCoversPowerOfTwoGrid) {
  const apps::FibProgram prog;
  const std::vector roots{apps::FibProgram::root(20)};
  TuneOptions opts = small_search();
  opts.refine = false;
  const TuneReport rep = core::autotune_block_size<FibExec>(prog, roots, opts);
  std::vector<std::size_t> blocks;
  for (const auto& s : rep.samples) blocks.push_back(s.t_dfe);
  for (std::size_t b = 8; b <= (1u << 10); b *= 2) {
    EXPECT_NE(std::find(blocks.begin(), blocks.end(), b), blocks.end())
        << "missing block size " << b;
  }
  EXPECT_EQ(blocks.size(), 8u);  // 2^3 .. 2^10
}

TEST(Autotune, BestIsArgminOfSamples) {
  const apps::FibProgram prog;
  const std::vector roots{apps::FibProgram::root(20)};
  const TuneReport rep = core::autotune_block_size<FibExec>(prog, roots, small_search());
  ASSERT_FALSE(rep.samples.empty());
  double min_seconds = 1e100;
  for (const auto& s : rep.samples) min_seconds = std::min(min_seconds, s.seconds);
  EXPECT_DOUBLE_EQ(rep.best_seconds, min_seconds);
  bool best_in_samples = false;
  for (const auto& s : rep.samples) {
    if (s.t_dfe == rep.best.t_dfe && s.seconds == rep.best_seconds) best_in_samples = true;
  }
  EXPECT_TRUE(best_in_samples);
}

TEST(Autotune, RefinementAddsOffGridCandidates) {
  const apps::FibProgram prog;
  const std::vector roots{apps::FibProgram::root(20)};
  TuneOptions opts = small_search();
  opts.refine = true;
  const TuneReport rep = core::autotune_block_size<FibExec>(prog, roots, opts);
  // 8 coarse samples plus up to 2 refinement probes.
  EXPECT_GE(rep.samples.size(), 9u);
  EXPECT_LE(rep.samples.size(), 10u);
  bool has_off_grid = false;
  for (const auto& s : rep.samples) {
    if ((s.t_dfe & (s.t_dfe - 1)) != 0) has_off_grid = true;
  }
  EXPECT_TRUE(has_off_grid);
}

TEST(Autotune, RespectsSearchRange) {
  const apps::FibProgram prog;
  const std::vector roots{apps::FibProgram::root(18)};
  TuneOptions opts = small_search();
  opts.min_block = 32;
  opts.max_block = 256;
  const TuneReport rep = core::autotune_block_size<FibExec>(prog, roots, opts);
  for (const auto& s : rep.samples) {
    EXPECT_GE(s.t_dfe, 32u);
    EXPECT_LE(s.t_dfe, 256u);
  }
  EXPECT_GE(rep.best.t_dfe, 32u);
  EXPECT_LE(rep.best.t_dfe, 256u);
}

TEST(Autotune, DefaultMinBlockIsQ) {
  const apps::FibProgram prog;
  const std::vector roots{apps::FibProgram::root(16)};
  TuneOptions opts = small_search();
  opts.min_block = 0;  // default: Q
  opts.max_block = 64;
  opts.refine = false;
  const TuneReport rep = core::autotune_block_size<FibExec>(prog, roots, opts);
  ASSERT_FALSE(rep.samples.empty());
  EXPECT_EQ(rep.samples.front().t_dfe, 8u);
}

TEST(Autotune, SamplesCarryUtilizationAndSpace) {
  const apps::FibProgram prog;
  const std::vector roots{apps::FibProgram::root(20)};
  const TuneReport rep = core::autotune_block_size<FibExec>(prog, roots, small_search());
  for (const auto& s : rep.samples) {
    EXPECT_GT(s.seconds, 0.0);
    EXPECT_GE(s.utilization, 0.0);
    EXPECT_LE(s.utilization, 1.0);
    EXPECT_GT(s.peak_space_tasks, 0u);
    EXPECT_GE(s.t_restart, 1u);
    EXPECT_LE(s.t_restart, s.t_dfe);
  }
  // Larger blocks never *reduce* utilization on fib (monotone in practice);
  // check the endpoints rather than full monotonicity to avoid flakiness.
  const auto& first = rep.samples.front();
  double best_util = 0;
  for (const auto& s : rep.samples) best_util = std::max(best_util, s.utilization);
  EXPECT_GE(best_util, first.utilization);
}

TEST(Autotune, WorksForAllPolicies) {
  const apps::FibProgram prog;
  const std::vector roots{apps::FibProgram::root(18)};
  for (const auto policy : {SeqPolicy::Basic, SeqPolicy::Reexp, SeqPolicy::Restart}) {
    SCOPED_TRACE(core::to_string(policy));
    const TuneReport rep =
        core::autotune_block_size<FibExec>(prog, roots, small_search(policy));
    EXPECT_FALSE(rep.samples.empty());
    EXPECT_GT(rep.best.t_dfe, 0u);
  }
}

TEST(Autotune, TunedThresholdsPreserveResults) {
  const auto inst = apps::KnapsackInstance::random(18, 7);
  apps::KnapsackProgram prog{&inst};
  const std::vector roots{prog.root()};
  using Exec = core::SimdExec<apps::KnapsackProgram>;
  TuneOptions opts = small_search();
  opts.q = apps::KnapsackProgram::simd_width;
  const TuneReport rep = core::autotune_block_size<Exec>(prog, roots, opts);
  const auto tuned =
      core::run_seq<Exec>(prog, roots, SeqPolicy::Restart, rep.best);
  const auto reference = core::run_seq<Exec>(
      prog, roots, SeqPolicy::Restart, core::Thresholds::for_block_size(opts.q, 64, 8));
  EXPECT_EQ(tuned.leaves, reference.leaves);
  EXPECT_EQ(tuned.best, reference.best);
}

TEST(Autotune, ReportRendersSampleTable) {
  const apps::FibProgram prog;
  const std::vector roots{apps::FibProgram::root(16)};
  const TuneReport rep = core::autotune_block_size<FibExec>(prog, roots, small_search());
  const std::string text = rep.to_string();
  EXPECT_NE(text.find("t_dfe"), std::string::npos);
  EXPECT_NE(text.find("<-- best"), std::string::npos);
}

// ---- hybrid-executor tuner ----------------------------------------------------------

TEST(AutotuneHybrid, SweepsThresholdGridCrossGrains) {
  // Synthetic run function: records every candidate and reports a synthetic
  // utilization that peaks at (t_reexp=16, grain=4).
  std::vector<std::pair<std::size_t, std::int32_t>> evaluated;
  const auto run = [&](const tb::rt::HybridOptions& o, core::PerWorkerStats* pw) {
    evaluated.emplace_back(o.t_reexp, o.grain);
    EXPECT_TRUE(o.static_partition);  // opts below request it
    pw->reset(1);
    pw->workers[0].steps_total = 100;
    pw->workers[0].steps_complete = (o.t_reexp == 16 && o.grain == 4) ? 90 : 10;
  };
  core::HybridTuneOptions opts;
  opts.q = 8;
  opts.reps = 1;
  opts.max_reexp = 64;
  opts.grains = {0, 4};
  opts.static_partition = true;
  opts.objective = core::HybridTuneObjective::Utilization;
  const core::HybridTuneReport rep = core::autotune_hybrid(run, opts);
  // Thresholds 0, 8, 16, 32, 64 × grains {0, 4}, in fixed order.
  const std::vector<std::pair<std::size_t, std::int32_t>> want = {
      {0, 0}, {0, 4}, {8, 0}, {8, 4}, {16, 0}, {16, 4}, {32, 0}, {32, 4}, {64, 0}, {64, 4}};
  EXPECT_EQ(evaluated, want);
  EXPECT_EQ(rep.samples.size(), want.size());
  EXPECT_EQ(rep.best.t_reexp, 16u);
  EXPECT_EQ(rep.best.grain, 4);
  EXPECT_TRUE(rep.best.static_partition);
  EXPECT_DOUBLE_EQ(rep.best_utilization, 0.9);
}

TEST(AutotuneHybrid, TimeObjectiveTracksSampleMinimum) {
  const auto run = [&](const tb::rt::HybridOptions&, core::PerWorkerStats* pw) {
    pw->reset(1);
  };
  core::HybridTuneOptions opts;
  opts.q = 8;
  opts.reps = 1;
  opts.max_reexp = 32;
  const core::HybridTuneReport rep = core::autotune_hybrid(run, opts);
  ASSERT_FALSE(rep.samples.empty());
  double min_seconds = 1e100;
  for (const auto& s : rep.samples) min_seconds = std::min(min_seconds, s.seconds);
  EXPECT_DOUBLE_EQ(rep.best_seconds, min_seconds);
}

// The acceptance claim: under the deterministic objective (utilization,
// static partition) on the actual hybrid executor, the winner is a pure
// function of the workload — two sweeps over a fixed root set agree on the
// winning options AND every sample's utilization bit-exactly.
TEST(AutotuneHybrid, UtilizationWinnerIsReproducibleOnRealExecutor) {
  const auto pts = spatial::Bodies::uniform_cube(1200, 29);
  const auto tree = spatial::KdTree::build(pts, 16);
  const apps::PointCorrProgram prog{&pts, &tree, 0.03f};
  rt::ForkJoinPool pool(3);
  core::HybridTuneOptions opts;
  opts.q = 8;
  opts.reps = 1;
  opts.max_reexp = 128;
  opts.static_partition = true;
  opts.objective = core::HybridTuneObjective::Utilization;
  const auto sweep = [&] {
    return core::autotune_hybrid(
        [&](const tb::rt::HybridOptions& o, core::PerWorkerStats* pw) {
          (void)lockstep::hybrid_pointcorr<8>(pool, prog, o, pw);
        },
        opts);
  };
  const core::HybridTuneReport a = sweep();
  const core::HybridTuneReport b = sweep();
  EXPECT_EQ(a.best.t_reexp, b.best.t_reexp);
  EXPECT_EQ(a.best.grain, b.best.grain);
  EXPECT_DOUBLE_EQ(a.best_utilization, b.best_utilization);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.samples[i].utilization, b.samples[i].utilization) << "sample " << i;
  }
}

TEST(AutotuneHybrid, TunedOptionsPreserveResults) {
  const auto pts = spatial::Bodies::uniform_cube(1000, 31);
  const auto tree = spatial::KdTree::build(pts, 16);
  const apps::PointCorrProgram prog{&pts, &tree, 0.04f};
  const std::uint64_t expected = apps::pointcorr_sequential(prog);
  rt::ForkJoinPool pool(2);
  core::HybridTuneOptions opts;
  opts.q = 8;
  opts.reps = 1;
  opts.max_reexp = 64;
  const core::HybridTuneReport rep = core::autotune_hybrid(
      [&](const tb::rt::HybridOptions& o, core::PerWorkerStats* pw) {
        (void)lockstep::hybrid_pointcorr<8>(pool, prog, o, pw);
      },
      opts);
  EXPECT_EQ(lockstep::hybrid_pointcorr<8>(pool, prog, rep.best), expected);
  const std::string text = rep.to_string();
  EXPECT_NE(text.find("t_reexp"), std::string::npos);
  EXPECT_NE(text.find("<-- best"), std::string::npos);
}

}  // namespace
